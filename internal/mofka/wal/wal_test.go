package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func rec(i int) Record {
	return Record{
		Meta: []byte(fmt.Sprintf(`{"key":"task-%04d","at":%d.5}`, i, i)),
		Data: []byte(fmt.Sprintf("payload-%d", i)),
	}
}

func collect(t *testing.T, l *Log, from uint64) []Record {
	t.Helper()
	var out []Record
	start := uint64(0)
	err := l.Replay(from, func(off uint64, r Record) bool {
		if len(out) == 0 {
			start = off // the horizon may be past `from` when retention dropped segments
		}
		if off != start+uint64(len(out)) {
			t.Fatalf("offset %d out of order (want %d)", off, start+uint64(len(out)))
		}
		out = append(out, Record{
			Meta: append([]byte(nil), r.Meta...),
			Data: append([]byte(nil), r.Data...),
		})
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	defer l.Close()
	var batch []Record
	for i := 0; i < 100; i++ {
		batch = append(batch, rec(i))
		if len(batch) == 7 {
			if _, err := l.AppendBatch(batch); err != nil {
				t.Fatal(err)
			}
			batch = nil
		}
	}
	if _, err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l, 0)
	if len(got) != 100 {
		t.Fatalf("replayed %d records, want 100", len(got))
	}
	for i, r := range got {
		want := rec(i)
		if !bytes.Equal(r.Meta, want.Meta) || !bytes.Equal(r.Data, want.Data) {
			t.Fatalf("record %d = %q/%q, want %q/%q", i, r.Meta, r.Data, want.Meta, want.Data)
		}
	}
	if l.NextOffset() != 100 {
		t.Fatalf("NextOffset = %d", l.NextOffset())
	}
	// Replay from the middle.
	mid := collect(t, l, 40)
	if len(mid) != 60 || !bytes.Equal(mid[0].Meta, rec(40).Meta) {
		t.Fatalf("partial replay got %d records starting %q", len(mid), mid[0].Meta)
	}
}

func TestNilDataAndEmptyMetaRoundTrip(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	defer l.Close()
	if _, err := l.AppendBatch([]Record{{Meta: []byte(`{}`)}, {Data: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l, 0)
	if len(got) != 2 {
		t.Fatalf("got %d records", len(got))
	}
	if got[0].Data != nil {
		t.Fatalf("nil data came back as %q", got[0].Data)
	}
	if len(got[1].Meta) != 0 || string(got[1].Data) != "x" {
		t.Fatalf("empty-meta record = %q/%q", got[1].Meta, got[1].Data)
	}
}

func TestReopenContinuesOffsets(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if _, err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	if l2.NextOffset() != 10 {
		t.Fatalf("reopened NextOffset = %d, want 10", l2.NextOffset())
	}
	off, err := l2.Append(rec(10))
	if err != nil || off != 10 {
		t.Fatalf("append after reopen: off=%d err=%v", off, err)
	}
	if got := collect(t, l2, 0); len(got) != 11 {
		t.Fatalf("replayed %d records", len(got))
	}
}

// newestSegment returns the path of the segment with the highest base.
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segments in %s (%v)", dir, err)
	}
	return matches[len(matches)-1]
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	for i := 0; i < 20; i++ {
		if _, err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill -9 mid-append: chop the last record in half.
	seg := newestSegment(t, dir)
	info, _ := os.Stat(seg)
	if err := os.Truncate(seg, info.Size()-9); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	if l2.NextOffset() != 19 {
		t.Fatalf("NextOffset after torn tail = %d, want 19", l2.NextOffset())
	}
	if l2.TornBytes() == 0 {
		t.Fatal("TornBytes = 0, want > 0")
	}
	got := collect(t, l2, 0)
	if len(got) != 19 || !bytes.Equal(got[18].Meta, rec(18).Meta) {
		t.Fatalf("replay after truncation: %d records", len(got))
	}
	// The log stays appendable and dense after recovery.
	off, err := l2.Append(rec(19))
	if err != nil || off != 19 {
		t.Fatalf("append after recovery: off=%d err=%v", off, err)
	}
}

func TestCorruptTailCRCDiscarded(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if _, err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Flip a byte inside the last record's payload.
	seg := newestSegment(t, dir)
	b, _ := os.ReadFile(seg)
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	if l2.NextOffset() != 4 {
		t.Fatalf("NextOffset = %d, want 4 (corrupt record dropped)", l2.NextOffset())
	}
}

func TestReadOnlyOpenDoesNotTruncate(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	for i := 0; i < 8; i++ {
		if _, err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	seg := newestSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = f.Write([]byte("garbage torn tail"))
	_ = f.Close()
	sizeBefore, _ := os.Stat(seg)

	ro := mustOpen(t, dir, Options{ReadOnly: true})
	if ro.NextOffset() != 8 {
		t.Fatalf("read-only NextOffset = %d", ro.NextOffset())
	}
	if got := collect(t, ro, 0); len(got) != 8 {
		t.Fatalf("read-only replay got %d records", len(got))
	}
	if _, err := ro.Append(rec(99)); err == nil {
		t.Fatal("append on read-only log succeeded")
	}
	sizeAfter, _ := os.Stat(seg)
	if sizeAfter.Size() != sizeBefore.Size() {
		t.Fatalf("read-only open mutated the segment: %d -> %d bytes", sizeBefore.Size(), sizeAfter.Size())
	}
}

func TestInteriorCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 256})
	for i := 0; i < 50; i++ {
		if _, err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	if n := len(glob(t, dir)); n < 3 {
		t.Fatalf("expected several segments, got %d", n)
	}
	// Corrupt the FIRST segment (not the tail): that is interior damage a
	// crash cannot cause, and recovery must refuse rather than silently
	// reinterpret offsets.
	first := glob(t, dir)[0]
	b, _ := os.ReadFile(first)
	b[2] ^= 0xFF // clobber the first record's length field
	if err := os.WriteFile(first, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over interior corruption: %v, want ErrCorrupt", err)
	}
}

func glob(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 512})
	defer l.Close()
	for i := 0; i < 100; i++ {
		if _, err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 4 {
		t.Fatalf("segments = %d, want rotation to have produced several", l.Segments())
	}
	if got := collect(t, l, 0); len(got) != 100 {
		t.Fatalf("replay across segments: %d records", len(got))
	}
}

func TestRetentionMaxSegments(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 512, Retention: Retention{MaxSegments: 3}})
	defer l.Close()
	for i := 0; i < 200; i++ {
		if _, err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := l.Segments(); n > 3 {
		t.Fatalf("segments = %d, want <= 3", n)
	}
	first := l.FirstOffset()
	if first == 0 {
		t.Fatal("retention never advanced FirstOffset")
	}
	got := collect(t, l, 0) // from 0 silently starts at the horizon
	if uint64(len(got)) != l.NextOffset()-first {
		t.Fatalf("replayed %d, want %d", len(got), l.NextOffset()-first)
	}
	if !bytes.Equal(got[0].Meta, rec(int(first)).Meta) {
		t.Fatalf("replay horizon starts at %q, want record %d", got[0].Meta, first)
	}
}

func TestRetentionMaxAge(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 256, Retention: Retention{MaxAge: time.Nanosecond}})
	defer l.Close()
	for i := 0; i < 60; i++ {
		if _, err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Microsecond)
	}
	if n := l.Segments(); n > 2 {
		t.Fatalf("age retention kept %d segments", n)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, p := range []SyncPolicy{SyncBatch, SyncInterval, SyncNever} {
		dir := t.TempDir()
		l := mustOpen(t, dir, Options{Sync: p, SyncEvery: time.Millisecond})
		if _, err := l.AppendBatch([]Record{rec(0), rec(1)}); err != nil {
			t.Fatalf("policy %d: %v", p, err)
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2 := mustOpen(t, dir, Options{})
		if l2.NextOffset() != 2 {
			t.Fatalf("policy %d: NextOffset = %d", p, l2.NextOffset())
		}
		l2.Close()
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"batch": SyncBatch, "": SyncBatch, "interval": SyncInterval, "never": SyncNever, "none": SyncNever} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %d, %v", s, got, err)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	l.Close()
	if _, err := l.Append(rec(0)); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{MaxRecordBytes: 64})
	defer l.Close()
	if _, err := l.Append(Record{Meta: []byte("{}"), Data: make([]byte, 128)}); err == nil {
		t.Fatal("oversize record accepted")
	}
}

func TestCursorStore(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cursors.json")
	s, err := OpenCursorStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Set("analysis/task-executions/p0000", 42); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("analysis/task-executions/p0001", 7); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("analysis/task-executions/p0000"); !ok || v != 42 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
	// Reopen: cursors survive.
	s2, err := OpenCursorStore(path)
	if err != nil {
		t.Fatal(err)
	}
	all := s2.All()
	if len(all) != 2 || all["analysis/task-executions/p0001"] != 7 {
		t.Fatalf("reloaded cursors = %v", all)
	}
	// No leftover temp files from the atomic writes.
	leftovers, _ := filepath.Glob(filepath.Join(dir, ".cursors-*"))
	if len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
}

func TestCursorStoreCorruptFileErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cursors.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCursorStore(path); err == nil {
		t.Fatal("corrupt cursor store opened")
	}
}

func TestConcurrentAppendReplay(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{Sync: SyncNever, SegmentBytes: 4096})
	defer l.Close()
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 100; i++ {
				if _, err := l.Append(rec(i)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := collect(t, l, 0); len(got) != 400 {
		t.Fatalf("replayed %d records, want 400", len(got))
	}
}

func TestTruncateTo(t *testing.T) {
	dir := t.TempDir()
	// Small segments so the truncation point and whole-segment removal are
	// both exercised.
	l := mustOpen(t, dir, Options{SegmentBytes: 256})
	for i := 0; i < 40; i++ {
		if _, err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 3 {
		t.Fatalf("want >=3 segments for a meaningful test, have %d", l.Segments())
	}

	if err := l.TruncateTo(100); err != nil {
		t.Fatalf("no-op truncate: %v", err)
	}
	if got := l.NextOffset(); got != 40 {
		t.Fatalf("NextOffset after no-op = %d, want 40", got)
	}

	if err := l.TruncateTo(17); err != nil {
		t.Fatalf("TruncateTo: %v", err)
	}
	if got := l.NextOffset(); got != 17 {
		t.Fatalf("NextOffset = %d, want 17", got)
	}
	got := collect(t, l, 0)
	if len(got) != 17 {
		t.Fatalf("replay returned %d records, want 17", len(got))
	}
	for i, r := range got {
		if !bytes.Equal(r.Meta, rec(i).Meta) {
			t.Fatalf("record %d corrupted after truncate", i)
		}
	}

	// Appends continue at the cut with dense offsets.
	off, err := l.Append(Record{Meta: []byte(`{"key":"new"}`), Data: []byte("new")})
	if err != nil {
		t.Fatal(err)
	}
	if off != 17 {
		t.Fatalf("post-truncate append got offset %d, want 17", off)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The truncation is durable: a reopen sees the clamped log, not the tail.
	r := mustOpen(t, dir, Options{SegmentBytes: 256})
	defer r.Close()
	if got := r.NextOffset(); got != 18 {
		t.Fatalf("reopened NextOffset = %d, want 18", got)
	}
	recovered := collect(t, r, 0)
	if len(recovered) != 18 {
		t.Fatalf("reopened replay %d records, want 18", len(recovered))
	}
	if !bytes.Equal(recovered[17].Data, []byte("new")) {
		t.Fatalf("post-truncate append lost across reopen")
	}
}

func TestTruncateToWholeLogAndReadOnly(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 128})
	for i := 0; i < 10; i++ {
		if _, err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateTo(0); err != nil {
		t.Fatalf("truncate to 0: %v", err)
	}
	if got := l.NextOffset(); got != 0 {
		t.Fatalf("NextOffset = %d, want 0", got)
	}
	if len(collect(t, l, 0)) != 0 {
		t.Fatal("records survived a truncate-to-zero")
	}
	if _, err := l.Append(rec(0)); err != nil {
		t.Fatalf("append after full truncate: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	ro := mustOpen(t, dir, Options{ReadOnly: true})
	defer ro.Close()
	if err := ro.TruncateTo(0); err == nil {
		t.Fatal("read-only TruncateTo succeeded")
	}
}
