package mofka

import (
	"testing"

	"taskprov/internal/mochi/mercury"
)

func newRemotePair(t *testing.T) (*Broker, *Remote) {
	t.Helper()
	b := NewStandaloneBroker()
	reg := mercury.NewRegistry()
	ep := reg.Listen("local://mofka")
	b.RegisterRPCs(ep)
	return b, NewRemote(reg.Bind("local://mofka"))
}

func TestRemoteCreateAndList(t *testing.T) {
	_, r := newRemotePair(t)
	if err := r.CreateTopic(TopicConfig{Name: "tasks", Partitions: 2}); err != nil {
		t.Fatal(err)
	}
	// Idempotent through OpenOrCreate semantics.
	if err := r.CreateTopic(TopicConfig{Name: "tasks"}); err != nil {
		t.Fatal(err)
	}
	topics, err := r.Topics()
	if err != nil || len(topics) != 1 || topics[0] != "tasks" {
		t.Fatalf("Topics = %v, %v", topics, err)
	}
	parts, events, err := r.TopicInfo("tasks")
	if err != nil || parts != 2 || events != 0 {
		t.Fatalf("TopicInfo = %d, %d, %v", parts, events, err)
	}
}

func TestRemotePushPull(t *testing.T) {
	_, r := newRemotePair(t)
	if err := r.CreateTopic(TopicConfig{Name: "t", Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	metas := [][]byte{[]byte(`{"i":0}`), []byte(`{"i":1}`)}
	datas := [][]byte{[]byte("d0"), []byte("d1")}
	if err := r.PushBatch("t", 0, metas, datas); err != nil {
		t.Fatal(err)
	}
	evs, err := r.Pull("t", 0, 0, 10, true)
	if err != nil || len(evs) != 2 {
		t.Fatalf("Pull = %d events, %v", len(evs), err)
	}
	if string(evs[1].Data) != "d1" || string(evs[0].Metadata) != `{"i":0}` {
		t.Fatalf("events = %+v", evs)
	}
	// Offset-based pull.
	evs, err = r.Pull("t", 0, 1, 10, false)
	if err != nil || len(evs) != 1 || evs[0].ID != 1 {
		t.Fatalf("offset pull = %+v, %v", evs, err)
	}
	if evs[0].Data != nil {
		t.Fatal("withData=false returned data")
	}
}

func TestRemoteCursor(t *testing.T) {
	_, r := newRemotePair(t)
	if err := r.CreateTopic(TopicConfig{Name: "t", Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Commit("c1", "t", 0, 42); err != nil {
		t.Fatal(err)
	}
	next, err := r.Cursor("c1", "t", 0)
	if err != nil || next != 42 {
		t.Fatalf("Cursor = %d, %v", next, err)
	}
	next, err = r.Cursor("nobody", "t", 0)
	if err != nil || next != 0 {
		t.Fatalf("unknown consumer cursor = %d, %v", next, err)
	}
}

func TestRemoteErrorsPropagate(t *testing.T) {
	_, r := newRemotePair(t)
	if _, err := r.Pull("ghost", 0, 0, 1, false); err == nil {
		t.Fatal("pull from missing topic succeeded")
	}
	if err := r.PushBatch("ghost", 0, nil, nil); err == nil {
		t.Fatal("push to missing topic succeeded")
	}
	if _, _, err := r.TopicInfo("ghost"); err == nil {
		t.Fatal("info for missing topic succeeded")
	}
}

func TestRemoteOverTCP(t *testing.T) {
	b := NewStandaloneBroker()
	ep := mercury.NewEndpoint("mofkad")
	b.RegisterRPCs(ep)
	srv, err := mercury.Serve(ep, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	cli, err := mercury.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cli.Close() }()
	r := NewRemote(cli)
	if err := r.CreateTopic(TopicConfig{Name: "net", Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.PushBatch("net", 0, [][]byte{[]byte(`{"a":1}`)}, [][]byte{[]byte("payload")}); err != nil {
		t.Fatal(err)
	}
	evs, err := r.Pull("net", 0, 0, 10, true)
	if err != nil || len(evs) != 1 || string(evs[0].Data) != "payload" {
		t.Fatalf("TCP pull = %+v, %v", evs, err)
	}
	// Broker-side view agrees.
	tp, err := b.OpenTopic("net")
	if err != nil || tp.Events() != 1 {
		t.Fatalf("broker topic events = %d, %v", tp.Events(), err)
	}
}
