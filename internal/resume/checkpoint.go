// Package resume turns a crashed run's provenance back into scheduler
// state: it replays the durable event log (single broker or cluster dirs)
// plus the latest frontier checkpoint and produces the completion frontier a
// new session incarnation seeds itself with — completed tasks memoized,
// outputs revalidated against surviving proxy-store blobs, everything else
// rescheduled. It also owns the attempt-lineage record (attempts.json) that
// fences incarnations of the same data dir against each other.
//
// It is deliberately below internal/core in the dependency order (core
// imports resume, never the reverse) so the reconstruction logic is testable
// against raw data dirs.
package resume

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"taskprov/internal/dask"
)

// CheckpointFile is the frontier checkpoint's file name inside a run's data
// directory.
const CheckpointFile = "checkpoint.json"

// GraphFrontier is one graph's completion high-water mark.
type GraphFrontier struct {
	// Completed counts this graph's finished tasks at checkpoint time.
	Completed int `json:"completed"`
	// Done marks that the graph-done provenance event was emitted.
	Done bool `json:"done"`
}

// FrontierTask is one completed task in the frontier: enough to memoize it
// without its full execution record.
type FrontierTask struct {
	GraphID     int               `json:"graph_id"`
	Size        int64             `json:"size"`
	StopSeconds float64           `json:"stop_seconds"`
	Files       []dask.FileEffect `json:"files,omitempty"`
}

// FrontierBlob is one live proxy-store blob at checkpoint time.
type FrontierBlob struct {
	Key   string `json:"key"`
	Owner int    `json:"owner"`
	Size  int64  `json:"size"`
}

// Checkpoint is the periodic lightweight frontier snapshot a session writes
// next to its event log: completed tasks per graph, live blobs, and the
// snapshot time. It exists so resume cost is O(crash tail), not O(run) —
// only WAL events newer than AtSeconds must be replayed on top. Unlike the
// event stream it bypasses producer batching, so it is often fresher than
// the log it summarizes.
type Checkpoint struct {
	Attempt   int                      `json:"attempt"`
	AtSeconds float64                  `json:"at_seconds"`
	Graphs    map[string]GraphFrontier `json:"graphs"`
	Tasks     map[string]FrontierTask  `json:"tasks"`
	Blobs     []FrontierBlob           `json:"blobs,omitempty"`
}

// NewCheckpoint returns an empty checkpoint for the given attempt.
func NewCheckpoint(attempt int) *Checkpoint {
	return &Checkpoint{
		Attempt: attempt,
		Graphs:  make(map[string]GraphFrontier),
		Tasks:   make(map[string]FrontierTask),
	}
}

// WriteCheckpoint atomically installs the checkpoint in dataDir (temp file +
// fsync + rename), so a crash mid-write leaves the previous checkpoint
// intact.
func WriteCheckpoint(dataDir string, cp *Checkpoint) error {
	b, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("resume: encode checkpoint: %w", err)
	}
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return fmt.Errorf("resume: checkpoint dir: %w", err)
	}
	if err := atomicWriteFile(filepath.Join(dataDir, CheckpointFile), b); err != nil {
		return fmt.Errorf("resume: write checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads dataDir's frontier checkpoint. A missing file is not
// an error: it returns (nil, nil), and reconstruction replays the whole log.
func LoadCheckpoint(dataDir string) (*Checkpoint, error) {
	b, err := os.ReadFile(filepath.Join(dataDir, CheckpointFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("resume: read checkpoint: %w", err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(b, &cp); err != nil {
		return nil, fmt.Errorf("resume: corrupt checkpoint: %w", err)
	}
	if cp.Graphs == nil {
		cp.Graphs = make(map[string]GraphFrontier)
	}
	if cp.Tasks == nil {
		cp.Tasks = make(map[string]FrontierTask)
	}
	return &cp, nil
}

// atomicWriteFile installs data at path via temp file + fsync + rename.
func atomicWriteFile(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.Remove(tmp.Name()) }() // no-op after the rename
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
