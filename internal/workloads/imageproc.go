package workloads

import (
	"fmt"

	"taskprov/internal/core"
	"taskprov/internal/dask"
	"taskprov/internal/posixio"
	"taskprov/internal/sim"
)

// ImageProcessing reproduces the paper's four-step image pipeline
// (normalization, grayscale, Gaussian filter, segmentation) over the Breast
// Cancer Semantic Segmentation dataset, expressed as three sequential task
// graphs (Table I). Each step reads its input from the PFS and writes its
// output back, producing the three read-phase/write-phase bursts of Fig. 4;
// each original image is read in 4 MiB chunks (10–25 reads per image).
type ImageProcessing struct {
	// Dataset structure (fixed across runs).
	NumImages   int
	Shards      int
	chunks      []int // chunks (=4 MiB reads) per image
	smallReads  []int // phase-3 reads per image (mostly 2)
	totalChunks int
}

// Image chunk size: the 4 MiB accesses the paper observes per
// dask_image.imread task.
const ipChunk = 4 << 20

// NewImageProcessing builds the generator with the calibrated dataset:
// 80 images totalling 1653 chunks, 70 output shards — yielding exactly
// Table I's 5440 tasks across 3 graphs over 151 distinct files.
func NewImageProcessing() *ImageProcessing {
	w := &ImageProcessing{NumImages: 80, Shards: 70}
	rng := datasetRNG("imageprocessing")
	const wantChunks = 1653
	w.chunks = make([]int, w.NumImages)
	sum := 0
	for i := range w.chunks {
		w.chunks[i] = rng.IntBetween(14, 25)
		sum += w.chunks[i]
	}
	// Adjust within [10, 25] until the dataset hits the calibrated total.
	for sum != wantChunks {
		i := rng.Intn(w.NumImages)
		if sum < wantChunks && w.chunks[i] < 25 {
			w.chunks[i]++
			sum++
		} else if sum > wantChunks && w.chunks[i] > 10 {
			w.chunks[i]--
			sum--
		}
	}
	w.totalChunks = sum
	// Three images have a single-op phase-3 read (tiny outputs), the rest
	// two ops.
	w.smallReads = make([]int, w.NumImages)
	for i := range w.smallReads {
		w.smallReads[i] = 2
	}
	for _, i := range []int{11, 37, 63} {
		w.smallReads[i] = 1
	}
	return w
}

// Name implements core.Workflow.
func (w *ImageProcessing) Name() string { return "imageprocessing" }

func (w *ImageProcessing) inputPath(i int) string {
	return fmt.Sprintf("/lus/grand/bcss/images/TCGA-%04d.png", i)
}

func (w *ImageProcessing) shardPath(s int) string {
	return fmt.Sprintf("/lus/grand/bcss/out/stage-%03d.zarr", s)
}

const ipReportPath = "/lus/grand/bcss/out/segmentation-report.json"

// Stage implements core.Workflow: place the input images on the PFS.
func (w *ImageProcessing) Stage(env *core.Env) {
	for i := 0; i < w.NumImages; i++ {
		env.PFS.CreateNow(w.inputPath(i), int64(w.chunks[i])*ipChunk)
	}
}

// ExpectedTasks returns the total task count across the three graphs.
func (w *ImageProcessing) ExpectedTasks() int {
	return 3*w.totalChunks + 6*w.NumImages + 1
}

// ExpectedFiles returns the distinct file count (inputs + shards + report).
func (w *ImageProcessing) ExpectedFiles() int { return w.NumImages + w.Shards + 1 }

// Run implements core.Workflow: three sequential graphs.
func (w *ImageProcessing) Run(p *sim.Proc, cl *dask.Client, env *core.Env) {
	cl.SubmitAndWait(p, w.graph1())
	cl.SubmitAndWait(p, w.graph2())
	cl.SubmitAndWait(p, w.graph3())
}

// graph1: imread -> normalize (per chunk) -> grayscale (per chunk) ->
// store. Reads originals in 4 MiB chunks, writes full-size normalized
// images to shard files.
func (w *ImageProcessing) graph1() *dask.Graph {
	g := dask.NewGraph(1)
	for i := 0; i < w.NumImages; i++ {
		i := i
		ci := w.chunks[i]
		imread := dask.TaskKey(fmt.Sprintf("imread-%s", pseudoHash("imread", i)))
		g.Add(&dask.TaskSpec{
			Key:        imread,
			OutputSize: int64(ci) * ipChunk,
			Run: func(ctx *dask.TaskContext) {
				f, err := ctx.Open(w.inputPath(i), posixio.RDONLY)
				if err != nil {
					panic(err)
				}
				reads := ci
				// Occasional client-side re-read (page-cache miss retry):
				// the workload's small run-to-run I/O count jitter.
				if ctx.RNG().Bool(0.06) {
					reads++
				}
				for c := 0; c < reads; c++ {
					f.Pread(ctx.Proc(), int64(c%ci)*ipChunk, ipChunk)
				}
				f.Close(ctx.Proc())
				ctx.Compute(sim.Milliseconds(250))
			},
		})
		var grays []dask.TaskKey
		for c := 0; c < ci; c++ {
			norm := dask.TaskKey(fmt.Sprintf("normalize-%s", pseudoHash("norm", i, c)))
			g.Add(&dask.TaskSpec{
				Key: norm, Deps: []dask.TaskKey{imread},
				OutputSize: ipChunk, EstDuration: sim.Milliseconds(600),
			})
			gray := dask.TaskKey(fmt.Sprintf("grayscale-%s", pseudoHash("gray", i, c)))
			g.Add(&dask.TaskSpec{
				Key: gray, Deps: []dask.TaskKey{norm},
				OutputSize: ipChunk, EstDuration: sim.Milliseconds(450),
			})
			grays = append(grays, gray)
		}
		shard := w.shardPath(i % w.Shards)
		g.Add(&dask.TaskSpec{
			Key:        dask.TaskKey(fmt.Sprintf("store-zarr-%s", pseudoHash("store1", i))),
			Deps:       grays,
			OutputSize: 8,
			Run: func(ctx *dask.TaskContext) {
				f, err := ctx.Open(shard, posixio.WRONLY|posixio.CREATE)
				if err != nil {
					panic(err)
				}
				for c := 0; c < ci; c++ {
					f.Pwrite(ctx.Proc(), int64(i)*100<<20+int64(c)*ipChunk, ipChunk)
				}
				f.Close(ctx.Proc())
				ctx.Compute(sim.Milliseconds(120))
			},
		})
	}
	return g
}

// graph2: read the normalized images back, Gaussian-filter per chunk, and
// write small (KB) filtered summaries — the paper's smaller phase-2 writes.
func (w *ImageProcessing) graph2() *dask.Graph {
	g := dask.NewGraph(2)
	for i := 0; i < w.NumImages; i++ {
		i := i
		ci := w.chunks[i]
		shard := w.shardPath(i % w.Shards)
		read := dask.TaskKey(fmt.Sprintf("readzarr-%s", pseudoHash("read2", i)))
		g.Add(&dask.TaskSpec{
			Key:        read,
			OutputSize: int64(ci) * ipChunk,
			Run: func(ctx *dask.TaskContext) {
				f, err := ctx.Open(shard, posixio.RDONLY)
				if err != nil {
					panic(err)
				}
				for c := 0; c < ci; c++ {
					f.Pread(ctx.Proc(), int64(i)*100<<20+int64(c)*ipChunk, ipChunk)
				}
				f.Close(ctx.Proc())
				ctx.Compute(sim.Milliseconds(100))
			},
		})
		var blurs []dask.TaskKey
		for c := 0; c < ci; c++ {
			blur := dask.TaskKey(fmt.Sprintf("gaussian_filter-%s", pseudoHash("blur", i, c)))
			g.Add(&dask.TaskSpec{
				Key: blur, Deps: []dask.TaskKey{read},
				OutputSize: ipChunk, EstDuration: sim.Milliseconds(1100),
			})
			blurs = append(blurs, blur)
		}
		g.Add(&dask.TaskSpec{
			Key:        dask.TaskKey(fmt.Sprintf("store-small-%s", pseudoHash("store2", i))),
			Deps:       blurs,
			OutputSize: 8,
			Run: func(ctx *dask.TaskContext) {
				f, err := ctx.Open(shard, posixio.WRONLY)
				if err != nil {
					panic(err)
				}
				f.Pwrite(ctx.Proc(), int64(i)*128<<10, 48<<10)
				f.Pwrite(ctx.Proc(), int64(i)*128<<10+48<<10, 48<<10)
				f.Close(ctx.Proc())
				ctx.Compute(sim.Milliseconds(80))
			},
		})
	}
	return g
}

// graph3: read the small filtered images and segment them; one aggregation
// task writes the final report.
func (w *ImageProcessing) graph3() *dask.Graph {
	g := dask.NewGraph(3)
	var segs []dask.TaskKey
	for i := 0; i < w.NumImages; i++ {
		i := i
		shard := w.shardPath(i % w.Shards)
		nReads := w.smallReads[i]
		read := dask.TaskKey(fmt.Sprintf("readsmall-%s", pseudoHash("read3", i)))
		g.Add(&dask.TaskSpec{
			Key:        read,
			OutputSize: 96 << 10,
			Run: func(ctx *dask.TaskContext) {
				f, err := ctx.Open(shard, posixio.RDONLY)
				if err != nil {
					panic(err)
				}
				for c := 0; c < nReads; c++ {
					f.Pread(ctx.Proc(), int64(i)*128<<10+int64(c)*48<<10, 48<<10)
				}
				f.Close(ctx.Proc())
				ctx.Compute(sim.Milliseconds(60))
			},
		})
		seg := dask.TaskKey(fmt.Sprintf("segment-%s", pseudoHash("seg", i)))
		g.Add(&dask.TaskSpec{
			Key: seg, Deps: []dask.TaskKey{read},
			OutputSize: 2 << 20, EstDuration: sim.Milliseconds(1500),
		})
		segs = append(segs, seg)
	}
	g.Add(&dask.TaskSpec{
		Key:        dask.TaskKey(fmt.Sprintf("report-%s", pseudoHash("report"))),
		Deps:       segs,
		OutputSize: 256 << 10,
		Run: func(ctx *dask.TaskContext) {
			ctx.Compute(sim.Milliseconds(400))
			f, err := ctx.Open(ipReportPath, posixio.WRONLY|posixio.CREATE)
			if err != nil {
				panic(err)
			}
			f.Write(ctx.Proc(), 256<<10)
			f.Close(ctx.Proc())
		},
	})
	return g
}
