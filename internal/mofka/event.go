// Package mofka reimplements the interface shape of the Mofka event
// streaming service from the Mochi project: topics divided into partitions,
// producers that push events (JSON metadata + raw data payload) with
// batching, and consumers that pull events individually or in bulk, with
// committed cursors. Event metadata is persisted in Yokan collections and
// data payloads in Warabi regions, matching Mofka's actual composition.
//
// The provenance framework (internal/core) uses Mofka exactly as the paper
// describes: the instrumented WMS is the producer, analysis tools are the
// consumers, and both in-situ (blocking pull) and post-mortem (bulk drain)
// consumption use the same API.
package mofka

import (
	"encoding/json"
	"fmt"
)

// Metadata is the JSON-expressible descriptive part of an event.
type Metadata map[string]any

// Encode serializes metadata to its canonical JSON bytes.
func (m Metadata) Encode() []byte {
	b, err := json.Marshal(m)
	if err != nil {
		// Metadata maps built by this repo are always JSON-encodable;
		// reaching here is a programming error.
		panic(fmt.Sprintf("mofka: unencodable metadata: %v", err))
	}
	return b
}

// DecodeMetadata parses JSON metadata bytes.
func DecodeMetadata(b []byte) (Metadata, error) {
	var m Metadata
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("mofka: decode metadata: %w", err)
	}
	return m, nil
}

// Event is one record in a partition.
type Event struct {
	Topic     string
	Partition int
	ID        uint64 // offset within the partition, dense from 0
	Metadata  []byte // JSON
	Data      []byte // raw payload; nil when the consumer declined data
}

// ParseMetadata decodes the event's metadata JSON.
func (e Event) ParseMetadata() (Metadata, error) { return DecodeMetadata(e.Metadata) }

// envelope is the persisted per-event index entry stored in Yokan; the data
// payload itself lives in a Warabi region shared by the whole batch.
type envelope struct {
	Meta   json.RawMessage `json:"m"`
	Region uint64          `json:"r"`
	Offset int64           `json:"o"`
	Size   int64           `json:"s"`
}

// Validator checks event metadata on push. It is Mofka's schema-validation
// hook; a nil validator accepts everything.
type Validator func(metadata []byte) error

// MaxPartitions bounds TopicConfig.Partitions. Real Mofka deployments shard
// a topic across at most a few partitions per broker; four thousand is far
// past any sane layout and a near-certain sign of a miscomputed or corrupt
// configuration, so CreateTopic rejects anything larger up front.
const MaxPartitions = 4096

// TopicConfig describes a topic at creation time.
type TopicConfig struct {
	Name       string `json:"name"`
	Partitions int    `json:"partitions"`

	// Validator runs on every pushed event's metadata (not serialized; RPC
	// deployments validate broker-side only if installed there).
	Validator Validator `json:"-"`
}
