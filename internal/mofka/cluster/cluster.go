// Package cluster turns the single-broker Mofka reimplementation into a
// sharded, replicated deployment: topic partitions are placed across N
// broker nodes by rendezvous hashing, every partition has a leader plus a
// configurable number of follower replicas, appends are acknowledged only
// after a quorum of replicas has them (each replica persisting through its
// own broker — and therefore its own WAL when the node is durable), and SSG
// membership drives automatic leader failover with incarnation-fenced
// catch-up from the surviving replicas' logs.
//
// The design center is the same as the rest of the repo: determinism first.
// Placement is a pure function of (topic, partition, node id); failover is
// triggered either synchronously (chaos-injected kills, the simulation path)
// or by SSG heartbeat timeouts (the daemon path), and both funnel through
// the same election/catch-up routine; health events are emitted in a fixed
// order outside all locks. The same seed and chaos plan therefore reproduce
// the identical failover timeline.
//
// Consistency contract: an acknowledged append is present on at least
// Quorum replicas, appends within one partition are prefix-consistent
// across replicas (followers are healed to the leader's prefix before any
// new batch lands on them), and consumers only ever observe the
// acknowledged prefix. Unacknowledged suffixes can be lost with a crashed
// leader; producers retry them through the new leader with the same
// sequence number, and per-replica sequence tracking makes the retry
// exactly-once per replica.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"taskprov/internal/mochi/ssg"
	"taskprov/internal/mofka"
	"taskprov/internal/mofka/wal"
)

// Errors reported by the cluster API.
var (
	// ErrUnavailable: the partition has no alive replica set large enough
	// to reach quorum; appends fail and producers buffer.
	ErrUnavailable = errors.New("cluster: partition unavailable (quorum unreachable)")
	// ErrFenced: the append carried a stale leadership epoch. The producer
	// must refresh its route and retry with the same sequence number.
	ErrFenced = errors.New("cluster: fenced by newer leadership epoch")
	// ErrClosed: the cluster has been shut down.
	ErrClosed = errors.New("cluster: closed")
	// ErrNoNode: the addressed broker node does not exist.
	ErrNoNode = errors.New("cluster: no such broker node")
)

// Config describes a cluster deployment.
type Config struct {
	// Brokers is the number of local broker nodes (default 3). Remote
	// members joined through the RPC gateway add to this.
	Brokers int
	// ReplicationFactor is the number of replicas per partition, leader
	// included (default 2, capped at the node count).
	ReplicationFactor int
	// Quorum is the number of replica acknowledgements an append needs
	// before it is acknowledged to the producer. Default is a majority of
	// the replication factor (RF/2+1).
	Quorum int

	// DataDir, when set, makes every local node durable: node i keeps a
	// standard broker data directory under <DataDir>/node-<NN>, and
	// cluster.json at the root records the deployment shape. Reopening a
	// cluster on an existing DataDir recovers every node's log and heals
	// replica divergence (a kill -9 mid-append leaves laggards).
	DataDir string
	// WAL tunes the per-node durable logs.
	WAL wal.Options

	// SSG tunes the membership group's failure detection (heartbeat
	// timeouts for the daemon path).
	SSG ssg.Config
	// Clock is the liveness clock for SSG bookkeeping. Default time.Now.
	Clock func() time.Time
	// NowSeconds timestamps health events (virtual seconds inside a
	// simulation, seconds since cluster start otherwise).
	NowSeconds func() float64

	// CatchUpBatch is the event batch size used when healing a lagging
	// replica from a donor. Default 256.
	CatchUpBatch int
}

func (c Config) withDefaults() Config {
	if c.Brokers <= 0 {
		c.Brokers = 3
	}
	if c.ReplicationFactor <= 0 {
		c.ReplicationFactor = 2
	}
	if c.ReplicationFactor > c.Brokers {
		c.ReplicationFactor = c.Brokers
	}
	if c.Quorum <= 0 {
		c.Quorum = c.ReplicationFactor/2 + 1
	}
	if c.Quorum > c.ReplicationFactor {
		c.Quorum = c.ReplicationFactor
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.CatchUpBatch <= 0 {
		c.CatchUpBatch = 256
	}
	return c
}

// Validate rejects impossible deployment shapes with a clear error before
// any node is built.
func (c Config) Validate() error {
	if c.Brokers < 0 || c.Brokers > 64 {
		return fmt.Errorf("cluster: broker count %d out of range [1,64]", c.Brokers)
	}
	if c.ReplicationFactor < 0 {
		return fmt.Errorf("cluster: negative replication factor %d", c.ReplicationFactor)
	}
	if c.Brokers > 0 && c.ReplicationFactor > c.Brokers {
		return fmt.Errorf("cluster: replication factor %d exceeds broker count %d", c.ReplicationFactor, c.Brokers)
	}
	if c.Quorum < 0 {
		return fmt.Errorf("cluster: negative quorum %d", c.Quorum)
	}
	rf := c.ReplicationFactor
	if rf == 0 {
		rf = 2
	}
	if c.Brokers > 0 && rf > c.Brokers {
		rf = c.Brokers
	}
	if c.Quorum > rf {
		return fmt.Errorf("cluster: quorum %d exceeds replication factor %d", c.Quorum, rf)
	}
	return nil
}

// node is one broker member of the cluster.
type node struct {
	id          int
	addr        string // "" for local nodes
	rep         replica
	local       *mofka.Broker // nil for remote members
	member      ssg.MemberID
	alive       bool
	incarnation uint64
}

// Cluster is a sharded, replicated Mofka deployment. All methods are safe
// for concurrent use.
type Cluster struct {
	cfg   Config
	group *ssg.Group
	start time.Time

	mu     sync.Mutex
	nodes  []*node
	topics map[string]*topicState
	closed bool

	health *healthLog
}

// New builds (or, when Config.DataDir already holds a cluster, reopens) a
// cluster with Config.Brokers local nodes. Reopening recovers every node's
// durable log and heals replica divergence before the cluster is returned.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:    cfg,
		group:  ssg.NewGroup("mofka-cluster", cfg.SSG),
		start:  cfg.Clock(),
		topics: make(map[string]*topicState),
		health: newHealthLog(),
	}
	if c.cfg.NowSeconds == nil {
		c.cfg.NowSeconds = func() float64 { return c.cfg.Clock().Sub(c.start).Seconds() }
	}
	reopen := false
	if cfg.DataDir != "" {
		shape, existing, err := loadClusterMeta(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		if existing {
			if shape.Brokers != cfg.Brokers || shape.ReplicationFactor != cfg.ReplicationFactor {
				return nil, fmt.Errorf("cluster: %s was deployed with %d brokers rf=%d, reopened with %d rf=%d",
					cfg.DataDir, shape.Brokers, shape.ReplicationFactor, cfg.Brokers, cfg.ReplicationFactor)
			}
			reopen = true
		} else if err := writeClusterMeta(cfg.DataDir, clusterMeta{
			Brokers: cfg.Brokers, ReplicationFactor: cfg.ReplicationFactor, Quorum: cfg.Quorum,
		}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Brokers; i++ {
		if _, err := c.addLocalNode(i); err != nil {
			_ = c.Close()
			return nil, err
		}
	}
	if reopen {
		if err := c.recoverTopics(); err != nil {
			_ = c.Close()
			return nil, err
		}
	}
	return c, nil
}

// addLocalNode builds local node i (durable when DataDir is set) and joins
// it to the membership group.
func (c *Cluster) addLocalNode(i int) (*node, error) {
	var b *mofka.Broker
	var err error
	if c.cfg.DataDir == "" {
		b = mofka.NewStandaloneBroker()
	} else {
		b, err = mofka.NewDurableBroker(mofka.Options{DataDir: nodeDir(c.cfg.DataDir, i), WAL: c.cfg.WAL})
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
	}
	n := &node{
		id:    i,
		rep:   localReplica{b},
		local: b,
		alive: true,
	}
	n.member = c.group.Join(fmt.Sprintf("broker-%d", i), c.cfg.Clock())
	c.mu.Lock()
	c.nodes = append(c.nodes, n)
	c.mu.Unlock()
	return n, nil
}

// Brokers returns the current member count (local + joined remotes).
func (c *Cluster) Brokers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// AliveBrokers returns the ids of currently alive members in id order.
func (c *Cluster) AliveBrokers() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for _, n := range c.nodes {
		if n.alive {
			out = append(out, n.id)
		}
	}
	return out
}

// Group exposes the SSG membership group (discovery, observers).
func (c *Cluster) Group() *ssg.Group { return c.group }

// NodeBroker returns local node i's broker (nil for remote members) — the
// hook chaos uses to arm per-replica append faults and tests use to inspect
// replica state.
func (c *Cluster) NodeBroker(i int) *mofka.Broker {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.nodes) {
		return nil
	}
	return c.nodes[i].local
}

func (c *Cluster) node(id int) (*node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.nodes) {
		return nil, fmt.Errorf("%w: %d", ErrNoNode, id)
	}
	return c.nodes[id], nil
}

func (c *Cluster) nodeAlive(id int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.nodes) {
		return false
	}
	return c.nodes[id].alive
}

// Heartbeat records liveness for every alive local node; the daemon's
// sweeper calls it each interval (remote members heartbeat through the ping
// RPC).
func (c *Cluster) Heartbeat() {
	now := c.cfg.Clock()
	c.mu.Lock()
	members := make([]ssg.MemberID, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n.alive && n.local != nil {
			members = append(members, n.member)
		}
	}
	c.mu.Unlock()
	for _, m := range members {
		c.group.Heartbeat(m, now)
	}
}

// Sweep advances SSG failure detection to now. Members the group declares
// dead fail over exactly as chaos-killed ones do. Returns the number of
// membership state changes.
func (c *Cluster) Sweep(now time.Time) int {
	changes := c.group.Sweep(now)
	if changes == 0 {
		return 0
	}
	// The group marks members Suspect/Dead; reconcile cluster liveness with
	// it and fail over partitions led by newly dead members.
	for _, m := range c.group.Members() {
		if m.State != ssg.Dead {
			continue
		}
		if id, ok := c.nodeByMember(m.ID); ok && c.nodeAlive(id) {
			c.failNode(id, "heartbeat timeout")
		}
	}
	return changes
}

func (c *Cluster) nodeByMember(m ssg.MemberID) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		if n.member == m {
			return n.id, true
		}
	}
	return 0, false
}

// KillBroker crashes node id: the member is marked dead in the SSG group
// (EventFail), every partition it led fails over to the highest-ranked
// surviving replica, and survivors are healed to a common prefix. A durable
// node's broker is abandoned un-closed — exactly what a kill -9 leaves
// behind — so a later RestartBroker exercises torn-tail recovery.
func (c *Cluster) KillBroker(id int) error {
	n, err := c.node(id)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if !n.alive {
		c.mu.Unlock()
		return fmt.Errorf("cluster: broker %d already dead", id)
	}
	c.mu.Unlock()
	c.group.Fail(n.member, c.cfg.Clock())
	c.failNode(id, "killed")
	return nil
}

// failNode marks a node dead and fails over every partition that referenced
// it. Idempotent; safe from both the chaos path and the SSG sweep path.
func (c *Cluster) failNode(id int, reason string) {
	c.mu.Lock()
	if c.closed || id < 0 || id >= len(c.nodes) || !c.nodes[id].alive {
		c.mu.Unlock()
		return
	}
	c.nodes[id].alive = false
	parts := c.partitionsOfLocked(id)
	c.mu.Unlock()

	evs := []Event{{
		Kind: EventBrokerDead, Node: id, At: c.cfg.NowSeconds(),
		Detail: reason,
	}}
	for _, ps := range parts {
		ps.mu.Lock()
		// Freeze the dead node's trustworthy prefix before reconciliation:
		// everything it holds beyond the current acknowledged watermark is an
		// unreplicated tail that must not survive a later restart.
		if ps.trustedLen == nil {
			ps.trustedLen = make(map[int]uint64)
		}
		ps.trustedLen[id] = ps.acked
		evs = append(evs, c.electLocked(ps)...)
		ps.mu.Unlock()
	}
	c.health.emit(evs)
}

// RestartBroker reboots a previously killed local node: a durable node
// reopens its data directory (recovering the WAL, truncating torn tails),
// an in-memory node comes back empty. The node rejoins the membership group
// with a bumped incarnation, is caught up from the current leaders, and —
// because leadership is rank-based and deterministic — resumes leading the
// partitions it ranks highest for.
func (c *Cluster) RestartBroker(id int) error {
	n, err := c.node(id)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if n.alive {
		c.mu.Unlock()
		return fmt.Errorf("cluster: broker %d is alive", id)
	}
	if n.local == nil {
		c.mu.Unlock()
		return fmt.Errorf("cluster: broker %d is a remote member; restart it from its own process", id)
	}
	old := n.local
	inc := n.incarnation + 1
	c.mu.Unlock()

	// Abandon the crashed broker instance and rebuild from disk (or empty).
	var b *mofka.Broker
	if c.cfg.DataDir == "" {
		b = mofka.NewStandaloneBroker()
	} else {
		// Close the old handle first so segment files are not double-owned.
		_ = old.Close() // crash path; recovery re-reads disk
		b, err = mofka.NewDurableBroker(mofka.Options{DataDir: nodeDir(c.cfg.DataDir, id), WAL: c.cfg.WAL})
		if err != nil {
			return fmt.Errorf("cluster: restart node %d: %w", id, err)
		}
	}

	// Join the membership group first, then publish the node mutation in one
	// critical section: the sweeper goroutine reads n.member and n.alive
	// under c.mu and must never observe a half-updated node.
	rep := localReplica{b}
	member := c.group.Join(fmt.Sprintf("broker-%d#%d", id, inc), c.cfg.Clock())
	c.mu.Lock()
	n.local = b
	n.rep = rep
	n.member = member
	n.alive = true
	n.incarnation = inc
	parts := c.partitionsOfLocked(id)
	c.mu.Unlock()

	evs := []Event{{
		Kind: EventBrokerRejoined, Node: id, At: c.cfg.NowSeconds(),
		Detail: fmt.Sprintf("incarnation %d", inc),
	}}
	for _, ps := range parts {
		ps.mu.Lock()
		// The rejoined replica must know the topic before catch-up appends.
		if err := rep.ensureTopic(c.topicConfig(ps.topic)); err != nil {
			ps.mu.Unlock()
			return fmt.Errorf("cluster: restart node %d: %w", id, err)
		}
		// A durable restart can resurrect a tail the dead node appended but
		// the cluster never acknowledged (quorum-failed batches, batches the
		// producer later dropped). The cluster may have since reused those
		// offsets for quorum-acknowledged events on the new leader — the
		// current acknowledged watermark can be at or past the resurrected
		// tail's end, so log length alone cannot reveal the divergence. The
		// node's log is trustworthy only up to the watermark frozen when it
		// was declared dead: clamp the rejoined log there and discard the
		// replica's now-untrustworthy dedup state before it enters donor
		// selection; catch-up from the current leader re-delivers the rest.
		cut := ps.acked
		if t, ok := ps.trustedLen[id]; ok && t < cut {
			cut = t
		}
		delete(ps.trustedLen, id)
		if ln, lerr := rep.length(ps.topic, ps.index); lerr == nil && ln > cut {
			if terr := rep.truncate(ps.topic, ps.index, cut); terr != nil {
				ps.mu.Unlock()
				return fmt.Errorf("cluster: restart node %d: truncate %s[%d]: %w", id, ps.topic, ps.index, terr)
			}
			delete(ps.applied, id)
			evs = append(evs, Event{
				Kind: EventLogTruncated, Node: id, Topic: ps.topic, Partition: ps.index,
				Epoch: ps.epoch, At: c.cfg.NowSeconds(),
				Detail: fmt.Sprintf("dropped %d unacknowledged events beyond offset %d", ln-cut, cut),
			})
		}
		evs = append(evs, c.electLocked(ps)...)
		ps.mu.Unlock()
	}
	c.health.emit(evs)
	return nil
}

// partitionsOfLocked returns every partition whose replica set includes
// node id, sorted by (topic, index) so failover walks partitions in a
// deterministic order (map iteration would randomize the event timeline).
// Caller holds c.mu.
func (c *Cluster) partitionsOfLocked(id int) []*partState {
	var out []*partState
	for _, ts := range c.topics {
		for _, ps := range ts.parts {
			for _, r := range ps.replicas {
				if r == id {
					out = append(out, ps)
					break
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].topic != out[j].topic {
			return out[i].topic < out[j].topic
		}
		return out[i].index < out[j].index
	})
	return out
}

func (c *Cluster) topicConfig(name string) mofka.TopicConfig {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ts, ok := c.topics[name]; ok {
		return ts.cfg
	}
	return mofka.TopicConfig{Name: name, Partitions: 1}
}

// SetAppendFault installs an append fault hook on every local node's
// broker — the cluster counterpart of mofka.Broker.SetAppendFault, used by
// the chaos controller's "wal" directive. A fault on the leader fails the
// quorum append (the batch stays queued at the producer); a fault on a
// follower just costs that replica's acknowledgement.
func (c *Cluster) SetAppendFault(f func(topic string, partition int) error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		if n.local != nil {
			n.local.SetAppendFault(f)
		}
	}
}

// Sync forces every alive durable node's logs to stable storage.
func (c *Cluster) Sync() error {
	c.mu.Lock()
	brokers := make([]*mofka.Broker, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n.alive && n.local != nil {
			brokers = append(brokers, n.local)
		}
	}
	c.mu.Unlock()
	var firstErr error
	for _, b := range brokers {
		if err := b.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close shuts every node down (flushing and fsyncing durable logs) and
// marks the cluster closed. Idempotent.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	nodes := append([]*node(nil), c.nodes...)
	c.mu.Unlock()
	var firstErr error
	for _, n := range nodes {
		if err := n.rep.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// IsClosed reports whether Close has been called.
func (c *Cluster) IsClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// RunSweeper drives Heartbeat+Sweep with wall-clock time every interval
// until stop is closed — the daemon-mode failure detector. Remote members
// are pinged each interval; a member whose ping fails stops receiving
// heartbeats and times out through SSG.
func (c *Cluster) RunSweeper(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case now := <-t.C:
			c.Heartbeat()
			c.pingRemotes(now)
			c.Sweep(now)
		case <-stop:
			return
		}
	}
}

func (c *Cluster) pingRemotes(now time.Time) {
	c.mu.Lock()
	type probe struct {
		member ssg.MemberID
		rep    replica
	}
	var probes []probe
	for _, n := range c.nodes {
		if n.alive && n.local == nil {
			probes = append(probes, probe{n.member, n.rep})
		}
	}
	c.mu.Unlock()
	for _, p := range probes {
		if p.rep.ping() == nil {
			c.group.Heartbeat(p.member, now)
		}
	}
}
