package cluster

import (
	"errors"
	"fmt"
	"testing"

	"taskprov/internal/mochi/mercury"
	"taskprov/internal/mofka"
)

func newTestCluster(t *testing.T, brokers, rf int) *Cluster {
	t.Helper()
	c, err := New(Config{Brokers: brokers, ReplicationFactor: rf})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func pushN(t *testing.T, ct *ClusterTopic, n int, opts mofka.ProducerOptions) *Producer {
	t.Helper()
	p := ct.NewProducer(opts)
	for i := 0; i < n; i++ {
		if err := p.Push(mofka.Metadata{"i": i}, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return p
}

// drainAll reads every acknowledged event of every partition.
func drainAll(t *testing.T, c *Cluster, topic string, parts int) []mofka.Event {
	t.Helper()
	var out []mofka.Event
	for pi := 0; pi < parts; pi++ {
		var from uint64
		for {
			evs, err := c.Read(topic, pi, from, 1024, true)
			if err != nil {
				t.Fatalf("read %s[%d]: %v", topic, pi, err)
			}
			if len(evs) == 0 {
				break
			}
			out = append(out, evs...)
			from += uint64(len(evs))
		}
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	cases := []Config{
		{Brokers: -1},
		{Brokers: 65},
		{Brokers: 3, ReplicationFactor: -2},
		{Brokers: 3, ReplicationFactor: 4},
		{Brokers: 3, ReplicationFactor: 2, Quorum: 3},
		{Brokers: 2, Quorum: -1},
	}
	for i, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d (%+v): expected validation error", i, cfg)
		}
	}
	good := Config{Brokers: 3, ReplicationFactor: 2, Quorum: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestPlacementDeterministicAndSpread(t *testing.T) {
	const nodes, rf, parts = 5, 3, 64
	counts := make(map[int]int)
	for pi := 0; pi < parts; pi++ {
		a := replicaSet("provenance-tasks", pi, nodes, rf)
		b := replicaSet("provenance-tasks", pi, nodes, rf)
		if len(a) != rf {
			t.Fatalf("partition %d: replica set size %d, want %d", pi, len(a), rf)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("partition %d: placement not deterministic: %v vs %v", pi, a, b)
			}
		}
		seen := make(map[int]bool)
		for _, n := range a {
			if n < 0 || n >= nodes {
				t.Fatalf("partition %d: node %d out of range", pi, n)
			}
			if seen[n] {
				t.Fatalf("partition %d: duplicate node %d in replica set %v", pi, n, a)
			}
			seen[n] = true
			counts[n]++
		}
	}
	// Rendezvous hashing spreads 64*3 replicas over 5 nodes; every node
	// should host a meaningful share (loose bound: at least half the mean).
	mean := parts * rf / nodes
	for n := 0; n < nodes; n++ {
		if counts[n] < mean/2 {
			t.Errorf("node %d hosts %d replicas, suspiciously few (mean %d)", n, counts[n], mean)
		}
	}
}

func TestQuorumAppendAndAckedRead(t *testing.T) {
	c := newTestCluster(t, 3, 2)
	ct, err := c.EnsureTopic(mofka.TopicConfig{Name: "tasks", Partitions: 4})
	if err != nil {
		t.Fatalf("EnsureTopic: %v", err)
	}
	const n = 200
	p := pushN(t, ct, n, mofka.ProducerOptions{BatchSize: 16})
	defer p.Close()

	evs := drainAll(t, c, "tasks", 4)
	if len(evs) != n {
		t.Fatalf("drained %d events, want %d", len(evs), n)
	}
	// Every partition's acknowledged prefix must exist on at least quorum
	// replicas, byte-identical.
	for _, pv := range c.Placement() {
		copies := 0
		for _, r := range pv.Replicas {
			b := c.NodeBroker(r)
			bt, err := b.OpenTopic("tasks")
			if err != nil {
				continue
			}
			bp, err := bt.Partition(pv.Partition)
			if err != nil {
				continue
			}
			if bp.Length() >= pv.Acked {
				copies++
			}
		}
		if copies < 2 {
			t.Errorf("tasks[%d]: acked prefix on %d replicas, want >= quorum 2", pv.Partition, copies)
		}
	}
	// Non-replica nodes stay empty for the partition.
	for _, pv := range c.Placement() {
		inSet := make(map[int]bool)
		for _, r := range pv.Replicas {
			inSet[r] = true
		}
		for nid := 0; nid < 3; nid++ {
			if inSet[nid] {
				continue
			}
			b := c.NodeBroker(nid)
			bt, err := b.OpenTopic("tasks")
			if err != nil {
				continue
			}
			bp, err := bt.Partition(pv.Partition)
			if err != nil {
				continue
			}
			if l := bp.Length(); l != 0 {
				t.Errorf("tasks[%d]: non-replica node %d holds %d events", pv.Partition, nid, l)
			}
		}
	}
}

func TestIdempotentAppendDedup(t *testing.T) {
	c := newTestCluster(t, 3, 2)
	if _, err := c.EnsureTopic(mofka.TopicConfig{Name: "t", Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	metas := [][]byte{[]byte(`{"a":1}`), []byte(`{"a":2}`)}
	datas := [][]byte{[]byte("x"), []byte("y")}
	epoch, err := c.Append("t", 0, "prod-1", 1, 1, metas, datas)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	// Retry the same (producer, seq): must be acknowledged without growing
	// the log.
	if _, err := c.Append("t", 0, "prod-1", 1, epoch, metas, datas); err != nil {
		t.Fatalf("retry append: %v", err)
	}
	n, err := c.Length("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("length %d after idempotent retry, want 2", n)
	}
}

func TestAppendFencing(t *testing.T) {
	c := newTestCluster(t, 3, 2)
	if _, err := c.EnsureTopic(mofka.TopicConfig{Name: "t", Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	_, err := c.Append("t", 0, "p", 1, 99, [][]byte{[]byte(`{}`)}, [][]byte{nil})
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale epoch append: err=%v, want ErrFenced", err)
	}
}

func TestEnsureTopicValidation(t *testing.T) {
	c := newTestCluster(t, 3, 2)
	if _, err := c.EnsureTopic(mofka.TopicConfig{Name: "bad", Partitions: -3}); err == nil {
		t.Error("negative partition count accepted")
	}
	if _, err := c.EnsureTopic(mofka.TopicConfig{Name: "bad", Partitions: mofka.MaxPartitions + 1}); err == nil {
		t.Error("absurd partition count accepted")
	}
	if _, err := c.EnsureTopic(mofka.TopicConfig{Name: ""}); err == nil {
		t.Error("empty topic name accepted")
	}
	if _, err := c.EnsureTopic(mofka.TopicConfig{Name: "ok", Partitions: 2}); err != nil {
		t.Errorf("valid topic rejected: %v", err)
	}
	// Conflicting partition count on re-ensure is rejected.
	if _, err := c.EnsureTopic(mofka.TopicConfig{Name: "ok", Partitions: 5}); err == nil {
		t.Error("conflicting partition count accepted")
	}
}

func TestReadViewMatchesCluster(t *testing.T) {
	c := newTestCluster(t, 3, 2)
	ct, err := c.EnsureTopic(mofka.TopicConfig{Name: "tasks", Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := pushN(t, ct, 50, mofka.ProducerOptions{BatchSize: 8})
	defer p.Close()
	if err := c.CommitCursor("grp", "tasks", 1, 7); err != nil {
		t.Fatal(err)
	}

	view, err := c.ReadView()
	if err != nil {
		t.Fatalf("ReadView: %v", err)
	}
	vt, err := view.OpenTopic("tasks")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := vt.Events(), uint64(50); got != want {
		t.Fatalf("view holds %d events, want %d", got, want)
	}
	if got := view.LoadCursor("grp", "tasks", 1); got != 7 {
		t.Fatalf("view cursor %d, want 7", got)
	}
	// Per-partition contents equal the cluster's acked reads.
	for pi := 0; pi < 2; pi++ {
		cevs, err := c.Read("tasks", pi, 0, 1024, true)
		if err != nil {
			t.Fatal(err)
		}
		vp, err := vt.Partition(pi)
		if err != nil {
			t.Fatal(err)
		}
		vevs, err := vp.ReadFrom(0, 1024, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(cevs) != len(vevs) {
			t.Fatalf("partition %d: view %d events, cluster %d", pi, len(vevs), len(cevs))
		}
		for i := range cevs {
			if string(cevs[i].Metadata) != string(vevs[i].Metadata) || string(cevs[i].Data) != string(vevs[i].Data) {
				t.Fatalf("partition %d event %d differs between view and cluster", pi, i)
			}
		}
	}
}

func TestGatewayRemoteCompat(t *testing.T) {
	c := newTestCluster(t, 3, 2)
	reg := mercury.NewRegistry()
	ep := reg.Listen("local://cluster-gw")
	c.RegisterRPCs(ep)

	remote := mofka.NewRemote(reg.Bind("local://cluster-gw"))
	if err := remote.CreateTopic(mofka.TopicConfig{Name: "wire", Partitions: 2}); err != nil {
		t.Fatalf("remote create: %v", err)
	}
	if err := remote.PushBatch("wire", 0, [][]byte{[]byte(`{"k":1}`)}, [][]byte{[]byte("d")}); err != nil {
		t.Fatalf("remote push: %v", err)
	}
	evs, err := remote.Pull("wire", 0, 0, 10, true)
	if err != nil {
		t.Fatalf("remote pull: %v", err)
	}
	if len(evs) != 1 || string(evs[0].Metadata) != `{"k":1}` || string(evs[0].Data) != "d" {
		t.Fatalf("remote pull returned %+v", evs)
	}
	if err := remote.Commit("cons", "wire", 0, 1); err != nil {
		t.Fatalf("remote commit: %v", err)
	}
	next, err := remote.Cursor("cons", "wire", 0)
	if err != nil || next != 1 {
		t.Fatalf("remote cursor: %d, %v", next, err)
	}
	n, err := remote.PartitionLength("wire", 0)
	if err != nil || n != 1 {
		t.Fatalf("remote partition length: %d, %v", n, err)
	}
	if err := remote.Ping(); err != nil {
		t.Fatalf("remote ping: %v", err)
	}
	topics, err := remote.Topics()
	if err != nil || len(topics) != 1 || topics[0] != "wire" {
		t.Fatalf("remote topics: %v, %v", topics, err)
	}
}
