package whatif

import (
	"fmt"
	"math"
	"testing"
)

func TestParseScenario(t *testing.T) {
	on := true
	off := false
	cases := []struct {
		in   string
		want Scenario
	}{
		{"", Scenario{}},
		{"baseline", Scenario{}},
		{"workers=8", Scenario{Workers: 8}},
		{"workers=8 threads=4", Scenario{Workers: 8, ThreadsPerWorker: 4}},
		{"net=0.5,pfs=2", Scenario{NetBandwidthScale: 0.5, PFSScale: 2}},
		{"proxy=1048576", Scenario{ProxyThresholdBytes: 1 << 20}},
		{"proxy=off", Scenario{ProxyThresholdBytes: -1}},
		{"steal=on", Scenario{StealEnabled: &on}},
		{"steal=off", Scenario{StealEnabled: &off}},
	}
	for _, c := range cases {
		got, err := ParseScenario(c.in)
		if err != nil {
			t.Errorf("ParseScenario(%q): %v", c.in, err)
			continue
		}
		if got.Workers != c.want.Workers || got.ThreadsPerWorker != c.want.ThreadsPerWorker ||
			got.NetBandwidthScale != c.want.NetBandwidthScale || got.PFSScale != c.want.PFSScale ||
			got.ProxyThresholdBytes != c.want.ProxyThresholdBytes {
			t.Errorf("ParseScenario(%q) = %+v, want %+v", c.in, got, c.want)
		}
		if (got.StealEnabled == nil) != (c.want.StealEnabled == nil) {
			t.Errorf("ParseScenario(%q) steal = %v, want %v", c.in, got.StealEnabled, c.want.StealEnabled)
		} else if got.StealEnabled != nil && *got.StealEnabled != *c.want.StealEnabled {
			t.Errorf("ParseScenario(%q) steal = %v, want %v", c.in, *got.StealEnabled, *c.want.StealEnabled)
		}
	}
	for _, bad := range []string{"workers=0", "foo=1", "net=-1", "pfs=x", "steal=maybe", "threads", "proxy=-2"} {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("ParseScenario(%q) accepted", bad)
		}
	}
}

func TestScenarioRoundTrip(t *testing.T) {
	off := false
	s := Scenario{Workers: 16, ThreadsPerWorker: 2, NetBandwidthScale: 0.25,
		PFSScale: 4, ProxyThresholdBytes: 4096, StealEnabled: &off}
	back, err := ParseScenario(s.String())
	if err != nil {
		t.Fatalf("%q: %v", s.String(), err)
	}
	if back.String() != s.String() {
		t.Fatalf("round trip %q != %q", back.String(), s.String())
	}
	if !(Scenario{}).IsBaseline() {
		t.Error("zero scenario not baseline")
	}
	if s.IsBaseline() {
		t.Error("perturbed scenario claims baseline")
	}
	if (Scenario{}).String() != "baseline" {
		t.Errorf("baseline renders as %q", (Scenario{}).String())
	}
}

func TestFitLatencyBandwidth(t *testing.T) {
	// Perfect alpha + bytes/beta data recovers the parameters.
	alpha, beta := 0.002, 1e9
	var xs, ys []float64
	for _, b := range []float64{1e3, 1e5, 1e6, 1e7, 1e8} {
		xs = append(xs, b)
		ys = append(ys, alpha+b/beta)
	}
	fit := fitLatencyBandwidth(xs, ys)
	if math.Abs(fit.Alpha-alpha) > 1e-9 {
		t.Errorf("alpha = %g, want %g", fit.Alpha, alpha)
	}
	if math.Abs(fit.Beta-beta)/beta > 1e-6 {
		t.Errorf("beta = %g, want %g", fit.Beta, beta)
	}
	if got := fit.Seconds(2e6); math.Abs(got-(alpha+2e6/beta)) > 1e-9 {
		t.Errorf("Seconds(2MB) = %g", got)
	}

	// Degenerate: single point, or no spread -> pure latency.
	one := fitLatencyBandwidth([]float64{100}, []float64{0.5})
	if one.Seconds(1<<30) != 0.5 {
		t.Errorf("single-sample fit should be constant, got %g", one.Seconds(1<<30))
	}
	flat := fitLatencyBandwidth([]float64{100, 100, 100}, []float64{0.1, 0.2, 0.3})
	if math.Abs(flat.Seconds(12345)-0.2) > 1e-12 {
		t.Errorf("no-spread fit = %g, want mean 0.2", flat.Seconds(12345))
	}
	if empty := fitLatencyBandwidth(nil, nil); empty.Seconds(1e9) != 0 {
		t.Errorf("empty fit should be zero")
	}
}

func TestLongestChainSeconds(t *testing.T) {
	dur := map[string]float64{"a": 1, "b": 2, "c": 4, "d": 8}
	deps := map[string][]string{"b": {"a"}, "c": {"a"}, "d": {"b", "c"}}
	if got := LongestChainSeconds(dur, deps); got != 13 {
		t.Errorf("chain = %g, want 13 (a->c->d)", got)
	}
	// Unknown deps contribute zero; cycles break instead of recursing.
	if got := LongestChainSeconds(map[string]float64{"x": 3}, map[string][]string{"x": {"ghost"}}); got != 3 {
		t.Errorf("unknown dep chain = %g, want 3", got)
	}
	cyc := map[string][]string{"p": {"q"}, "q": {"p"}}
	if got := LongestChainSeconds(map[string]float64{"p": 1, "q": 1}, cyc); got != 2 {
		t.Errorf("cycle chain = %g, want 2", got)
	}
	if got := LongestChainSeconds(nil, nil); got != 0 {
		t.Errorf("empty chain = %g", got)
	}
}

// syntheticModel builds a layered fan-out/fan-in DAG: `layers` layers of
// `width` 1-second tasks, each depending on its column neighbor one layer
// up, executed round-robin over `nw` workers x `threads` threads.
func syntheticModel(layers, width, nw, threads int) *Model {
	m := &Model{
		Workflow:         "synthetic",
		Index:            map[string]int{},
		Transfers:        map[EdgeKey]Edge{},
		WorkerHost:       map[string]string{},
		Nodes:            2,
		WorkersPerNode:   nw / 2,
		ThreadsPerWorker: threads,
		ProxyThreshold:   0,
	}
	for w := 0; w < nw; w++ {
		name := fmt.Sprintf("tcp://node%d:%d", w%2, 40000+w)
		m.Workers = append(m.Workers, name)
		m.WorkerHost[name] = fmt.Sprintf("node%d", w%2)
	}
	slotFree := make([]float64, nw*threads)
	for l := 0; l < layers; l++ {
		for c := 0; c < width; c++ {
			i := len(m.Tasks)
			slot := i % (nw * threads)
			start := slotFree[slot]
			var deps []int
			if l > 0 {
				d := (l-1)*width + c
				deps = append(deps, d)
				if fin := m.Tasks[d].Stop; fin > start {
					start = fin
				}
			}
			t := Task{
				Key:            fmt.Sprintf("t-%d-%d", l, c),
				Prefix:         "t",
				GraphID:        1,
				Deps:           deps,
				Worker:         m.Workers[slot/threads],
				Hostname:       m.WorkerHost[m.Workers[slot/threads]],
				ThreadID:       uint64(slot),
				Start:          start,
				Stop:           start + 1,
				OutputBytes:    1 << 20,
				ComputeSeconds: 0.9,
				IOSeconds:      0.1,
			}
			slotFree[slot] = t.Stop
			m.Index[t.Key] = i
			m.Tasks = append(m.Tasks, t)
		}
	}
	end := 0.0
	for i := range m.Tasks {
		if m.Tasks[i].Stop > end {
			end = m.Tasks[i].Stop
		}
	}
	m.EndSeconds = end
	m.MakespanSeconds = end
	m.Graphs = []GraphInfo{{ID: 1, SubmitAt: 0, DoneAt: end, Tasks: len(m.Tasks)}}
	return m
}

func TestSyntheticCriticalPathAndSlack(t *testing.T) {
	m := syntheticModel(10, 4, 2, 2)
	cp := m.CriticalPath()
	if cp.MakespanSeconds != m.MakespanSeconds {
		t.Fatalf("cp makespan %g != %g", cp.MakespanSeconds, m.MakespanSeconds)
	}
	if cp.Coverage < 0.999 || cp.Coverage > 1.001 {
		t.Fatalf("coverage %g, want 1.0 (categories %v)", cp.Coverage, cp.Categories)
	}
	slack := m.Slack()
	if len(slack) != len(m.Tasks) {
		t.Fatalf("slack has %d entries, want %d", len(slack), len(m.Tasks))
	}
	// A 10-layer chain of 1s tasks: chain tasks have zero structural slack.
	zero := 0
	for _, s := range slack {
		if s < 1e-9 {
			zero++
		}
	}
	if zero < 10 {
		t.Errorf("only %d zero-slack tasks, want >= 10", zero)
	}
	// Per-graph view covers the same span here (single graph).
	gcp := m.GraphCriticalPath(1)
	if math.Abs(gcp.MakespanSeconds-cp.MakespanSeconds) > 1e-9 {
		t.Errorf("graph cp %g != run cp %g", gcp.MakespanSeconds, cp.MakespanSeconds)
	}
}

func TestSyntheticReplayScenarios(t *testing.T) {
	m := syntheticModel(10, 8, 4, 2)
	base, err := m.Replay(Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(base.DeltaFraction) > 0.02 {
		t.Fatalf("synthetic self-replay off by %.2f%%", 100*base.DeltaFraction)
	}
	// Fewer resources must not speed the run up.
	squeezed, err := m.Replay(Scenario{Workers: 1, ThreadsPerWorker: 1})
	if err != nil {
		t.Fatal(err)
	}
	if squeezed.Mode != "replaced" {
		t.Errorf("topology change should force re-placement, got %q", squeezed.Mode)
	}
	if squeezed.PredictedMakespanSeconds < base.PredictedMakespanSeconds {
		t.Errorf("1x1 topology predicts %g < baseline %g",
			squeezed.PredictedMakespanSeconds, base.PredictedMakespanSeconds)
	}
	// The serial bound: 80 one-second tasks on one thread.
	if squeezed.PredictedMakespanSeconds < 79 {
		t.Errorf("1x1 topology predicts %g, want >= 79", squeezed.PredictedMakespanSeconds)
	}
	// A slower PFS must not speed the run up either (tasks carry IO time).
	slowIO, err := m.Replay(Scenario{PFSScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if slowIO.PredictedMakespanSeconds < base.PredictedMakespanSeconds {
		t.Errorf("pfs=0.5 predicts %g < baseline %g",
			slowIO.PredictedMakespanSeconds, base.PredictedMakespanSeconds)
	}
	// Stealing on a wider pool cannot be worse than the serial squeeze.
	stolen, err := m.Replay(Scenario{Workers: 8, ThreadsPerWorker: 2, StealEnabled: ptr(true)})
	if err != nil {
		t.Fatal(err)
	}
	if stolen.PredictedMakespanSeconds > squeezed.PredictedMakespanSeconds {
		t.Errorf("8x2+steal predicts %g > 1x1 %g", stolen.PredictedMakespanSeconds, squeezed.PredictedMakespanSeconds)
	}
}

func ptr(b bool) *bool { return &b }

func TestReplayEmptyModel(t *testing.T) {
	m := &Model{}
	if _, err := m.Replay(Scenario{}); err == nil {
		t.Fatal("empty model should fail")
	}
}

func TestExtractNilBroker(t *testing.T) {
	if _, err := Extract(Input{}); err == nil {
		t.Fatal("nil broker should fail")
	}
}
