package perfrecup

import (
	"fmt"
	"strings"
	"testing"

	"taskprov/internal/core"
	"taskprov/internal/dask"
	"taskprov/internal/sim"
)

// slowableWorkflow is a prep→work fan the brownout can land on: 300ms preps
// push the 1s work tasks past the fault onset, so the browned-out worker's
// work tasks straggle and hedging has something to win.
type slowableWorkflow struct{ width int }

func (s *slowableWorkflow) Name() string        { return "slowable" }
func (s *slowableWorkflow) Stage(env *core.Env) {}
func (s *slowableWorkflow) Run(p *sim.Proc, cl *dask.Client, env *core.Env) {
	g := dask.NewGraph(1)
	var works []dask.TaskKey
	for i := 0; i < s.width; i++ {
		prep := dask.TaskKey(fmt.Sprintf("prep-%02d", i))
		work := dask.TaskKey(fmt.Sprintf("work-%02d", i))
		g.Add(&dask.TaskSpec{Key: prep, EstDuration: sim.Milliseconds(300), OutputSize: 1 << 20})
		g.Add(&dask.TaskSpec{Key: work, Deps: []dask.TaskKey{prep},
			EstDuration: sim.Seconds(1), OutputSize: 1 << 20})
		works = append(works, work)
	}
	g.Add(&dask.TaskSpec{Key: "sink-00", Deps: works, EstDuration: sim.Milliseconds(50), OutputSize: 64})
	cl.SubmitAndWait(p, g)
}

func TestSpeculationTimelineView(t *testing.T) {
	run := func() (*core.RunArtifacts, string) {
		cfg := core.DefaultSessionConfig("job-spec", 42)
		cfg.Platform.NodeSpeedCV = 0
		cfg.PFS.InterferenceLoad = 0
		cfg.Dask.WorkersPerNode = 2
		cfg.Dask.ThreadsPerWorker = 2
		cfg.ChaosSpec = "slow worker=1 at=100ms factor=8"
		cfg.Speculation.Enabled = true
		art, err := core.Run(cfg, &slowableWorkflow{width: 8})
		if err != nil {
			t.Fatal(err)
		}
		f, err := SpeculationTimelineView(art)
		if err != nil {
			t.Fatal(err)
		}
		if f.NRows() == 0 {
			t.Fatal("no speculation events for a browned-out hedged run")
		}
		kinds := make(map[string]bool)
		at := f.Col("at")
		for i := 0; i < f.NRows(); i++ {
			kinds[f.Col("kind").Str(i)] = true
			if i > 0 && at.Float(i) < at.Float(i-1) {
				t.Fatalf("timeline not sorted by time at row %d", i)
			}
		}
		for _, want := range []string{dask.SpecLaunched, dask.SpecWon, dask.SpecCancelled} {
			if !kinds[want] {
				t.Errorf("timeline missing %s events (got %v)", want, kinds)
			}
		}
		out := RenderSpeculationTimeline(f)
		for _, want := range []string{"launched", "winner ", "loser wasted "} {
			if !strings.Contains(out, want) {
				t.Fatalf("rendered timeline missing %q:\n%s", want, out)
			}
		}
		return art, out
	}

	_, out1 := run()
	_, out2 := run()
	if out1 != out2 {
		t.Fatalf("same seed and spec rendered different timelines:\n%s\nvs\n%s", out1, out2)
	}
}

// TestSpeculationTimelineEmptyWithoutHedging: a fault-free, hedging-off run
// yields an empty (but well-formed) timeline and an empty render.
func TestSpeculationTimelineEmptyWithoutHedging(t *testing.T) {
	art := miniRun(t)
	f, err := SpeculationTimelineView(art)
	if err != nil {
		t.Fatal(err)
	}
	if f.NRows() != 0 {
		t.Fatalf("fault-free run produced %d speculation events", f.NRows())
	}
	if out := RenderSpeculationTimeline(f); out != "" {
		t.Fatalf("rendered empty timeline not empty: %q", out)
	}
}
