package dask

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"taskprov/internal/pfs"
	"taskprov/internal/platform"
	"taskprov/internal/posixio"
	"taskprov/internal/sim"
)

// recorder captures every plugin callback for assertions.
type recorder struct {
	metas       []TaskMeta
	schedTrans  []Transition
	workerTrans []Transition
	execs       []TaskExecution
	transfers   []Transfer
	warnings    []Warning
	heartbeats  []WorkerMetrics
	steals      []StealEvent
	graphsDone  []int
	proxyEvents []ProxyEvent
	specEvents  []SpeculationEvent
}

func (r *recorder) TaskAdded(m TaskMeta)             { r.metas = append(r.metas, m) }
func (r *recorder) SchedulerTransition(t Transition) { r.schedTrans = append(r.schedTrans, t) }
func (r *recorder) GraphDone(id int, _ sim.Time)     { r.graphsDone = append(r.graphsDone, id) }
func (r *recorder) Stolen(ev StealEvent)             { r.steals = append(r.steals, ev) }
func (r *recorder) WorkerTransition(t Transition)    { r.workerTrans = append(r.workerTrans, t) }
func (r *recorder) TaskExecuted(rec TaskExecution)   { r.execs = append(r.execs, rec) }
func (r *recorder) TransferReceived(rec Transfer)    { r.transfers = append(r.transfers, rec) }
func (r *recorder) WorkerWarning(w Warning)          { r.warnings = append(r.warnings, w) }
func (r *recorder) Heartbeat(m WorkerMetrics)        { r.heartbeats = append(r.heartbeats, m) }
func (r *recorder) ProxyEvent(ev ProxyEvent)         { r.proxyEvents = append(r.proxyEvents, ev) }
func (r *recorder) Speculation(ev SpeculationEvent)  { r.specEvents = append(r.specEvents, ev) }

type testEnv struct {
	k   *sim.Kernel
	c   *Cluster
	rec *recorder
}

func newEnv(seed uint64, cfg Config) *testEnv {
	k := sim.NewKernel(seed)
	pcfg := platform.Small()
	pcfg.NodeSpeedCV = 0
	plat := platform.New(k, pcfg)
	fcfg := pfs.Lustre()
	fcfg.InterferenceLoad = 0
	fs := posixio.NewFS(pfs.New(k, fcfg))
	env := &testEnv{k: k, rec: &recorder{}}
	env.c = NewCluster(k, plat, fs, cfg, nil)
	env.c.AddSchedulerPlugin(env.rec)
	env.c.AddWorkerPlugin(env.rec)
	return env
}

// runWorkflow starts the cluster and drives the client program to
// completion.
func (e *testEnv) runWorkflow(body func(p *sim.Proc, cl *Client)) sim.Time {
	e.c.Start()
	finished := sim.Time(-1)
	e.k.Go(func(p *sim.Proc) {
		cl := e.c.Client()
		cl.WaitForWorkers(p, len(e.c.Workers()))
		body(p, cl)
		finished = p.Now()
		e.k.Stop() // cut heartbeat/steal loops
	})
	e.k.Run()
	return finished
}

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.WorkersPerNode = 2
	cfg.ThreadsPerWorker = 2
	return cfg
}

func diamond(id int) *Graph {
	g := NewGraph(id)
	g.Add(&TaskSpec{Key: "src-01", EstDuration: sim.Milliseconds(50), OutputSize: 1 << 20})
	g.Add(&TaskSpec{Key: "left-02", Deps: []TaskKey{"src-01"}, EstDuration: sim.Milliseconds(80), OutputSize: 1 << 20})
	g.Add(&TaskSpec{Key: "right-03", Deps: []TaskKey{"src-01"}, EstDuration: sim.Milliseconds(80), OutputSize: 1 << 20})
	g.Add(&TaskSpec{Key: "join-04", Deps: []TaskKey{"left-02", "right-03"}, EstDuration: sim.Milliseconds(30), OutputSize: 512})
	return g
}

func TestDiamondExecutes(t *testing.T) {
	env := newEnv(1, smallCfg())
	end := env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, diamond(1))
	})
	if end < 0 {
		t.Fatal("workflow never finished")
	}
	if len(env.rec.execs) != 4 {
		t.Fatalf("executions = %d, want 4", len(env.rec.execs))
	}
	if len(env.rec.graphsDone) != 1 || env.rec.graphsDone[0] != 1 {
		t.Fatalf("graphsDone = %v", env.rec.graphsDone)
	}
	// join must be scheduled in memory.
	if !env.c.Scheduler().HasInMemory("join-04") {
		t.Fatal("join result not in memory")
	}
	// Execution respects dependencies: join starts after left & right stop.
	var joinStart, leftStop, rightStop sim.Time
	for _, e := range env.rec.execs {
		switch e.Key {
		case "join-04":
			joinStart = e.Start
		case "left-02":
			leftStop = e.Stop
		case "right-03":
			rightStop = e.Stop
		}
	}
	if joinStart < leftStop || joinStart < rightStop {
		t.Fatalf("join started %v before deps finished (%v, %v)", joinStart, leftStop, rightStop)
	}
}

func TestSchedulerTransitionsLifecycle(t *testing.T) {
	env := newEnv(1, smallCfg())
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, diamond(1))
	})
	// For key src-01 (not an output, gets released): released -> waiting ->
	// processing -> memory -> released.
	var states []TaskState
	for _, tr := range env.rec.schedTrans {
		if tr.Key == "src-01" {
			states = append(states, tr.To)
		}
	}
	want := []TaskState{StateWaiting, StateProcessing, StateMemory, StateReleased}
	if len(states) != len(want) {
		t.Fatalf("src-01 transitions = %v", states)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("src-01 transitions = %v, want %v", states, want)
		}
	}
	// Outputs stay in memory.
	for _, tr := range env.rec.schedTrans {
		if tr.Key == "join-04" && tr.To == StateReleased && tr.Stimulus == "no-dependents" {
			t.Fatal("output task was refcount-released")
		}
	}
}

func TestWorkerTransitionsLifecycle(t *testing.T) {
	env := newEnv(1, smallCfg())
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, diamond(1))
	})
	byKey := map[TaskKey][]TaskState{}
	for _, tr := range env.rec.workerTrans {
		byKey[tr.Key] = append(byKey[tr.Key], tr.To)
	}
	seq := byKey["join-04"]
	var filtered []TaskState
	for _, s := range seq {
		if s == WStateWaiting || s == WStateReady || s == WStateExecuting || s == WStateMemory {
			filtered = append(filtered, s)
		}
	}
	wantSub := []TaskState{WStateWaiting, WStateReady, WStateExecuting, WStateMemory}
	j := 0
	for _, s := range filtered {
		if j < len(wantSub) && s == wantSub[j] {
			j++
		}
	}
	if j != len(wantSub) {
		t.Fatalf("join-04 worker states = %v, want subsequence %v", seq, wantSub)
	}
	// Every worker transition carries a worker address, not "scheduler".
	for _, tr := range env.rec.workerTrans {
		if !strings.HasPrefix(tr.Location, "tcp://") {
			t.Fatalf("worker transition location = %q", tr.Location)
		}
	}
}

func TestTaskMetaCaptured(t *testing.T) {
	env := newEnv(1, smallCfg())
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, diamond(7))
	})
	if len(env.rec.metas) != 4 {
		t.Fatalf("metas = %d", len(env.rec.metas))
	}
	for _, m := range env.rec.metas {
		if m.GraphID != 7 {
			t.Fatalf("meta graph = %d", m.GraphID)
		}
		if m.Prefix == "" || m.Group == "" {
			t.Fatalf("meta missing prefix/group: %+v", m)
		}
	}
}

func TestDependencyTransfersRecorded(t *testing.T) {
	// A wide graph forces results to spread over workers, so the join must
	// fetch remote deps and transfers must be recorded.
	g := NewGraph(1)
	var deps []TaskKey
	for i := 0; i < 16; i++ {
		k := TaskKey(fmt.Sprintf("part-%02d", i))
		g.Add(&TaskSpec{Key: k, EstDuration: sim.Milliseconds(40), OutputSize: 4 << 20})
		deps = append(deps, k)
	}
	g.Add(&TaskSpec{Key: "agg-99", Deps: deps, EstDuration: sim.Milliseconds(10), OutputSize: 8})

	env := newEnv(1, smallCfg())
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
	})
	if len(env.rec.transfers) == 0 {
		t.Fatal("no transfers recorded for distributed join")
	}
	for _, tr := range env.rec.transfers {
		if tr.Stop <= tr.Start {
			t.Fatalf("transfer has no duration: %+v", tr)
		}
		if tr.Bytes != 4<<20 {
			t.Fatalf("transfer bytes = %d", tr.Bytes)
		}
		if tr.From == tr.To {
			t.Fatalf("self transfer recorded: %+v", tr)
		}
	}
	// With 2 nodes there should typically be a mix of same-node and
	// cross-node transfers.
	var same, cross int
	for _, tr := range env.rec.transfers {
		if tr.SameNode {
			same++
		} else {
			cross++
		}
	}
	if same+cross != len(env.rec.transfers) {
		t.Fatal("bad same/cross accounting")
	}
}

func TestEventLoopWarningsFromBlockingTask(t *testing.T) {
	cfg := smallCfg()
	cfg.EventLoopMonitorThreshold = sim.Seconds(1)
	g := NewGraph(1)
	g.Add(&TaskSpec{Key: "gil-hog-01", EstDuration: sim.Seconds(5), BlocksEventLoop: true, OutputSize: 1})
	env := newEnv(1, cfg)
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
	})
	var loopWarns int
	for _, w := range env.rec.warnings {
		if w.Kind == WarnEventLoop {
			loopWarns++
			if w.Duration < sim.Seconds(1) {
				t.Fatalf("warning for %v blocked", w.Duration)
			}
		}
	}
	// ~5s blocked at 1s threshold: expect about 4-5 warnings.
	if loopWarns < 3 || loopWarns > 6 {
		t.Fatalf("event loop warnings = %d, want ~5", loopWarns)
	}
}

func TestNonBlockingTaskEmitsNoLoopWarnings(t *testing.T) {
	cfg := smallCfg()
	cfg.EventLoopMonitorThreshold = sim.Seconds(1)
	g := NewGraph(1)
	g.Add(&TaskSpec{Key: "nice-01", EstDuration: sim.Seconds(5), OutputSize: 1})
	env := newEnv(1, cfg)
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
	})
	for _, w := range env.rec.warnings {
		if w.Kind == WarnEventLoop {
			t.Fatal("cooperative task triggered event loop warning")
		}
	}
}

func TestGCWarningsUnderMemoryChurn(t *testing.T) {
	cfg := smallCfg()
	cfg.GCThresholdBytes = 32 << 20
	g := NewGraph(1)
	for i := 0; i < 12; i++ {
		g.Add(&TaskSpec{
			Key: TaskKey(fmt.Sprintf("alloc-%02d", i)), EstDuration: sim.Milliseconds(20),
			OutputSize: 16 << 20,
		})
	}
	env := newEnv(1, cfg)
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
	})
	var gc int
	for _, w := range env.rec.warnings {
		if w.Kind == WarnGC {
			gc++
			if w.Duration <= 0 {
				t.Fatalf("GC warning without pause: %+v", w)
			}
		}
	}
	if gc == 0 {
		t.Fatal("no GC warnings under churn")
	}
}

func TestWorkStealingMovesQueuedTasks(t *testing.T) {
	// All roots depend on a seed task produced on one worker; with locality
	// scoring, everything piles onto that worker, and stealing must spread
	// the queue.
	cfg := smallCfg()
	cfg.WorkStealing = true
	g := NewGraph(1)
	g.Add(&TaskSpec{Key: "seed-00", EstDuration: sim.Milliseconds(10), OutputSize: 64 << 20})
	for i := 0; i < 24; i++ {
		g.Add(&TaskSpec{
			Key:  TaskKey(fmt.Sprintf("heavy-%02d", i)),
			Deps: []TaskKey{"seed-00"}, EstDuration: sim.Milliseconds(300), OutputSize: 1024,
		})
	}
	env := newEnv(3, cfg)
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
	})
	if env.c.Scheduler().Steals() == 0 {
		t.Fatal("no work stealing on a pathologically imbalanced graph")
	}
	if len(env.rec.steals) != env.c.Scheduler().Steals() {
		t.Fatalf("plugin steals = %d, scheduler = %d", len(env.rec.steals), env.c.Scheduler().Steals())
	}
	// Every task still ran exactly once.
	seen := map[TaskKey]int{}
	for _, e := range env.rec.execs {
		seen[e.Key]++
	}
	if len(seen) != 25 {
		t.Fatalf("distinct executed = %d, want 25", len(seen))
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("task %s executed %d times", k, n)
		}
	}
}

func TestStealingDisabled(t *testing.T) {
	cfg := smallCfg()
	cfg.WorkStealing = false
	g := NewGraph(1)
	g.Add(&TaskSpec{Key: "seed-00", EstDuration: sim.Milliseconds(10), OutputSize: 64 << 20})
	for i := 0; i < 24; i++ {
		g.Add(&TaskSpec{
			Key:  TaskKey(fmt.Sprintf("heavy-%02d", i)),
			Deps: []TaskKey{"seed-00"}, EstDuration: sim.Milliseconds(300), OutputSize: 1024,
		})
	}
	env := newEnv(3, cfg)
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
	})
	if env.c.Scheduler().Steals() != 0 {
		t.Fatal("stealing occurred while disabled")
	}
}

func TestMultiGraphCrossDependency(t *testing.T) {
	env := newEnv(1, smallCfg())
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		g1 := NewGraph(1)
		g1.Add(&TaskSpec{Key: "train-data-01", EstDuration: sim.Milliseconds(50), OutputSize: 16 << 20})
		cl.SubmitAndWait(p, g1)

		g2 := NewGraph(2)
		g2.Add(&TaskSpec{Key: "model-01", Deps: []TaskKey{"train-data-01"}, EstDuration: sim.Milliseconds(100), OutputSize: 4 << 20})
		// train-data-01 is not in g2; it is an external already in memory.
		if err := g2.Finalize(); err == nil {
			t.Error("expected finalize error for missing dep — cross-graph deps go through AddExternal")
		}
		g2.AddExternal("train-data-01")
		cl.SubmitAndWait(p, g2)
	})
	if !env.c.Scheduler().HasInMemory("model-01") {
		t.Fatal("second graph result missing")
	}
	if len(env.rec.graphsDone) != 2 {
		t.Fatalf("graphsDone = %v", env.rec.graphsDone)
	}
}

func TestRestrictionsHonored(t *testing.T) {
	env := newEnv(1, smallCfg())
	target := env.c.Workers()[2].Addr()
	g := NewGraph(1)
	for i := 0; i < 8; i++ {
		g.Add(&TaskSpec{
			Key:          TaskKey(fmt.Sprintf("pinned-%02d", i)),
			EstDuration:  sim.Milliseconds(20),
			OutputSize:   8,
			Restrictions: []string{target},
		})
	}
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
	})
	for _, e := range env.rec.execs {
		if e.Worker != target {
			t.Fatalf("restricted task ran on %s, want %s", e.Worker, target)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	run := func(seed uint64) []TaskExecution {
		env := newEnv(seed, smallCfg())
		env.runWorkflow(func(p *sim.Proc, cl *Client) {
			cl.SubmitAndWait(p, diamond(1))
		})
		return env.rec.execs
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("different execution counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("execution %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestSeedsChangePlacement(t *testing.T) {
	placements := map[string]bool{}
	for seed := uint64(0); seed < 10; seed++ {
		env := newEnv(seed, smallCfg())
		env.runWorkflow(func(p *sim.Proc, cl *Client) {
			cl.SubmitAndWait(p, diamond(1))
		})
		sig := ""
		for _, e := range env.rec.execs {
			sig += string(e.Key) + "@" + e.Worker + ";"
		}
		placements[sig] = true
	}
	if len(placements) < 2 {
		t.Fatal("task placement identical across 10 seeds; variability source missing")
	}
}

func TestTaskIOThroughContext(t *testing.T) {
	env := newEnv(1, smallCfg())
	g := NewGraph(1)
	g.Add(&TaskSpec{Key: "writer-01", OutputSize: 1, Run: func(ctx *TaskContext) {
		f, err := ctx.Open("/lus/out/data.bin", posixio.WRONLY|posixio.CREATE)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		f.Write(ctx.proc, 4<<20)
		f.Close(ctx.proc)
		ctx.Compute(sim.Milliseconds(10))
		ctx.SetOutputSize(4 << 20)
	}})
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
	})
	file := env.c.FS().PFS().Lookup("/lus/out/data.bin")
	if file == nil || file.Size != 4<<20 {
		t.Fatalf("file = %+v", file)
	}
	if env.rec.execs[0].OutputSize != 4<<20 {
		t.Fatalf("output size = %d", env.rec.execs[0].OutputSize)
	}
}

func TestHeartbeatsFlow(t *testing.T) {
	env := newEnv(1, smallCfg())
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		g := NewGraph(1)
		g.Add(&TaskSpec{Key: "slow-01", EstDuration: sim.Seconds(3), OutputSize: 1})
		cl.SubmitAndWait(p, g)
	})
	if len(env.rec.heartbeats) == 0 {
		t.Fatal("no heartbeats during a 3s workflow")
	}
	addrs := map[string]bool{}
	for _, h := range env.rec.heartbeats {
		addrs[h.Worker] = true
	}
	if len(addrs) != len(env.c.Workers()) {
		t.Fatalf("heartbeats from %d workers, want %d", len(addrs), len(env.c.Workers()))
	}
}

func TestRefcountReleaseFreesWorkerMemory(t *testing.T) {
	env := newEnv(1, smallCfg())
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		g := NewGraph(1)
		g.Add(&TaskSpec{Key: "big-01", EstDuration: sim.Milliseconds(10), OutputSize: 100 << 20})
		g.Add(&TaskSpec{Key: "reduce-02", Deps: []TaskKey{"big-01"}, EstDuration: sim.Milliseconds(10), OutputSize: 8})
		cl.SubmitAndWait(p, g)
		p.Sleep(sim.Seconds(1)) // allow free messages to land
	})
	var totalMem int64
	for _, w := range env.c.Workers() {
		totalMem += w.MemoryBytes()
	}
	// Only the 8-byte output should remain (transfers may duplicate it).
	if totalMem > 1<<20 {
		t.Fatalf("distributed memory after release = %d bytes", totalMem)
	}
}

func TestThreadConcurrencyLimit(t *testing.T) {
	cfg := smallCfg()
	cfg.ThreadsPerWorker = 2
	cfg.WorkersPerNode = 1 // 2 nodes x 1 worker x 2 threads = 4 slots
	g := NewGraph(1)
	for i := 0; i < 12; i++ {
		g.Add(&TaskSpec{Key: TaskKey(fmt.Sprintf("t-%02d", i)), EstDuration: sim.Seconds(1), OutputSize: 1})
	}
	env := newEnv(1, cfg)
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
	})
	// Sweep the execution intervals: concurrency must never exceed 4.
	type ev struct {
		at    sim.Time
		delta int
	}
	var evs []ev
	for _, e := range env.rec.execs {
		evs = append(evs, ev{e.Start, 1}, ev{e.Stop, -1})
	}
	maxConc := 0
	cur := 0
	for {
		// simple O(n^2) sweep is fine for 24 events
		best := -1
		var bestAt sim.Time
		for i, e := range evs {
			if e.delta != 0 && (best == -1 || e.at < bestAt || (e.at == bestAt && e.delta < evs[best].delta)) {
				best, bestAt = i, e.at
			}
		}
		if best == -1 {
			break
		}
		cur += evs[best].delta
		evs[best].delta = 0
		if cur > maxConc {
			maxConc = cur
		}
	}
	if maxConc > 4 {
		t.Fatalf("max concurrency = %d, exceeds 4 thread slots", maxConc)
	}
	if maxConc < 3 {
		t.Fatalf("max concurrency = %d; scheduler failed to use the cluster", maxConc)
	}
}

func TestRootTaskWithholding(t *testing.T) {
	// Many more root tasks than slots: the scheduler must withhold the
	// excess rather than flooding worker queues (Dask's root-task queuing).
	cfg := smallCfg() // 4 workers x 2 threads
	g := NewGraph(1)
	for i := 0; i < 64; i++ {
		g.Add(&TaskSpec{Key: TaskKey(fmt.Sprintf("root-%03d", i)), EstDuration: sim.Seconds(1), OutputSize: 8})
	}
	env := newEnv(1, cfg)
	var maxAssigned int
	env.k.Go(func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			p.Sleep(sim.Milliseconds(100))
			for _, wh := range env.c.Scheduler().workers {
				if n := len(wh.processing); n > maxAssigned {
					maxAssigned = n
				}
			}
		}
	})
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
	})
	limit := env.c.Scheduler().saturationLimit()
	if maxAssigned > limit {
		t.Fatalf("worker held %d assigned root tasks, limit %d", maxAssigned, limit)
	}
	// All of them still ran.
	if len(env.rec.execs) != 64 {
		t.Fatalf("executed %d/64", len(env.rec.execs))
	}
}

func TestFanOutSpillsUnderBacklog(t *testing.T) {
	// One producer with a huge fan-out: consumers must not all pile on the
	// producer's worker; some spill (and fetch the dependency remotely).
	cfg := smallCfg()
	g := NewGraph(1)
	g.Add(&TaskSpec{Key: "seed-00", EstDuration: sim.Milliseconds(10), OutputSize: 32 << 20})
	for i := 0; i < 64; i++ {
		g.Add(&TaskSpec{
			Key:  TaskKey(fmt.Sprintf("consume-%03d", i)),
			Deps: []TaskKey{"seed-00"}, EstDuration: sim.Milliseconds(400), OutputSize: 64,
		})
	}
	env := newEnv(2, cfg)
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
	})
	workers := map[string]int{}
	for _, e := range env.rec.execs {
		workers[e.Worker]++
	}
	if len(workers) < 3 {
		t.Fatalf("fan-out ran on only %d workers: no spill/steal", len(workers))
	}
	if len(env.rec.transfers) == 0 {
		t.Fatal("spilled consumers fetched nothing")
	}
}

func TestStealBatchingKeepsAccounting(t *testing.T) {
	cfg := smallCfg()
	cfg.WorkStealing = true
	g := NewGraph(1)
	g.Add(&TaskSpec{Key: "seed-00", EstDuration: sim.Milliseconds(10), OutputSize: 128 << 20})
	for i := 0; i < 48; i++ {
		g.Add(&TaskSpec{
			Key:  TaskKey(fmt.Sprintf("heavy-%03d", i)),
			Deps: []TaskKey{"seed-00"}, EstDuration: sim.Milliseconds(600), OutputSize: 64,
		})
	}
	env := newEnv(5, cfg)
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
	})
	s := env.c.Scheduler()
	// All in-flight steal accounting must have drained.
	if len(s.stealing) != 0 {
		t.Fatalf("stealing map not drained: %v", s.stealing)
	}
	for _, wh := range s.workers {
		if wh.inbound != 0 || wh.outbound != 0 {
			t.Fatalf("worker %d steal accounting leaked: in=%d out=%d", wh.rank, wh.inbound, wh.outbound)
		}
	}
	seen := map[TaskKey]int{}
	for _, e := range env.rec.execs {
		seen[e.Key]++
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("task %s executed %d times", k, n)
		}
	}
	if len(seen) != 49 {
		t.Fatalf("distinct executed = %d", len(seen))
	}
}
