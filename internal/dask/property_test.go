package dask

import (
	"fmt"
	"testing"
	"time"

	"taskprov/internal/sim"
)

func timeNow() int64 { return time.Now().UnixNano() }

// randomDAG builds a layered random DAG with the given rng stream.
func randomDAG(id int, rng *sim.RNG, layers, width int) *Graph {
	g := NewGraph(id)
	var prev []TaskKey
	for l := 0; l < layers; l++ {
		n := rng.IntBetween(1, width)
		var cur []TaskKey
		for i := 0; i < n; i++ {
			key := TaskKey(fmt.Sprintf("t-%02d-%02d", l, i))
			var deps []TaskKey
			for _, p := range prev {
				if rng.Bool(0.4) {
					deps = append(deps, p)
				}
			}
			// Ensure connectivity beyond layer 0.
			if l > 0 && len(deps) == 0 {
				deps = append(deps, prev[rng.Intn(len(prev))])
			}
			g.Add(&TaskSpec{
				Key: key, Deps: deps,
				EstDuration: sim.Milliseconds(rng.Uniform(5, 120)),
				OutputSize:  int64(rng.IntBetween(1, 64)) << 16,
			})
			cur = append(cur, key)
		}
		prev = cur
	}
	return g
}

// TestRandomDAGsScheduleCorrectly is the scheduler's core property test:
// for arbitrary layered DAGs, every task executes exactly once, no task
// starts before all of its dependencies finished, transitions are
// well-formed, and the run is deterministic per seed.
func TestRandomDAGsScheduleCorrectly(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		seed := uint64(1000 + trial)
		gen := sim.NewRNG(seed).Split("dag")
		env := newEnv(seed, smallCfg())
		g := randomDAG(1, gen, gen.IntBetween(2, 6), 8)
		total := g.Len()
		env.runWorkflow(func(p *sim.Proc, cl *Client) {
			cl.SubmitAndWait(p, g)
		})

		// Exactly-once execution.
		execTimes := map[TaskKey]TaskExecution{}
		for _, e := range env.rec.execs {
			if _, dup := execTimes[e.Key]; dup {
				t.Fatalf("seed %d: task %s executed twice", seed, e.Key)
			}
			execTimes[e.Key] = e
		}
		if len(execTimes) != total {
			t.Fatalf("seed %d: executed %d/%d tasks", seed, len(execTimes), total)
		}

		// Dependency ordering.
		for _, k := range g.Keys() {
			spec, _ := g.Task(k)
			for _, d := range spec.Deps {
				if execTimes[k].Start < execTimes[d].Stop {
					t.Fatalf("seed %d: %s started %v before dep %s finished %v",
						seed, k, execTimes[k].Start, d, execTimes[d].Stop)
				}
			}
		}

		// Transition well-formedness: per (key, location), each transition's
		// From matches the previous To.
		last := map[string]TaskState{}
		for _, tr := range env.rec.schedTrans {
			id := string(tr.Key)
			if prev, ok := last[id]; ok && tr.From != prev {
				t.Fatalf("seed %d: scheduler transition chain broken for %s: %s -> (%s->%s)",
					seed, tr.Key, prev, tr.From, tr.To)
			}
			last[id] = tr.To
		}

		// Every leaf ends in scheduler-side memory.
		for _, k := range g.Leaves() {
			if env.c.Scheduler().TaskState(k) != StateMemory {
				t.Fatalf("seed %d: leaf %s in state %s", seed, k, env.c.Scheduler().TaskState(k))
			}
		}
	}
}

// TestRandomDAGDeterminism re-runs one random DAG under the same seed and
// requires identical execution records.
func TestRandomDAGDeterminism(t *testing.T) {
	run := func() []TaskExecution {
		gen := sim.NewRNG(77).Split("dag")
		env := newEnv(77, smallCfg())
		g := randomDAG(1, gen, 5, 6)
		env.runWorkflow(func(p *sim.Proc, cl *Client) {
			cl.SubmitAndWait(p, g)
		})
		return env.rec.execs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("execution counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("execution %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestRandomDAGWithIO mixes I/O-performing tasks into random DAGs and
// checks Darshan-visible effects stay consistent with execution.
func TestRandomDAGWithIO(t *testing.T) {
	seed := uint64(31)
	gen := sim.NewRNG(seed).Split("dag")
	env := newEnv(seed, smallCfg())
	g := randomDAG(1, gen, 4, 6)
	// Augment: every root also writes a file.
	for i, k := range g.Roots() {
		spec, _ := g.Task(k)
		path := fmt.Sprintf("/lus/prop/out-%02d", i)
		inner := spec.EstDuration
		spec.EstDuration = 0
		spec.Run = func(ctx *TaskContext) {
			ctx.Compute(inner)
			f, err := ctx.Open(path, 0x2|0x4) // WRONLY|CREATE
			if err != nil {
				panic(err)
			}
			f.Write(ctx.Proc(), 1<<20)
			f.Close(ctx.Proc())
		}
	}
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
	})
	roots := len(g.Roots())
	files := env.c.FS().PFS().List("/lus/prop")
	if len(files) != roots {
		t.Fatalf("files = %d, want %d", len(files), roots)
	}
}

// TestSchedulerScales runs a large random workload (20k tasks) and bounds
// the real time the scheduler machinery takes — a regression guard against
// accidentally quadratic bookkeeping.
func TestSchedulerScales(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	start := timeNow()
	gen := sim.NewRNG(7).Split("stress")
	env := newEnv(7, DefaultConfig())
	g := NewGraph(1)
	const roots = 2000
	total := 0
	for r := 0; r < roots; r++ {
		root := TaskKey(fmt.Sprintf("src-%05d", r))
		g.Add(&TaskSpec{Key: root, EstDuration: sim.Milliseconds(gen.Uniform(5, 40)), OutputSize: 1 << 20})
		total++
		fan := gen.IntBetween(5, 13)
		for c := 0; c < fan; c++ {
			g.Add(&TaskSpec{
				Key:  TaskKey(fmt.Sprintf("child-%05d-%02d", r, c)),
				Deps: []TaskKey{root}, EstDuration: sim.Milliseconds(gen.Uniform(5, 30)),
				OutputSize: 1 << 16,
			})
			total++
		}
	}
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
	})
	if len(env.rec.execs) != total {
		t.Fatalf("executed %d/%d", len(env.rec.execs), total)
	}
	if el := timeNow() - start; el > 60e9 {
		t.Fatalf("stress run took %.1fs of real time", float64(el)/1e9)
	}
}
