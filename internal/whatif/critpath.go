package whatif

import (
	"fmt"
	"sort"
	"strings"
)

// Attribution categories on the critical path.
const (
	CatCompute   = "compute"
	CatIO        = "io"
	CatTransfer  = "transfer"
	CatScheduler = "scheduler"
	CatProxy     = "proxy"
)

// Categories lists the attribution categories in render order.
func Categories() []string {
	return []string{CatCompute, CatTransfer, CatIO, CatScheduler, CatProxy}
}

// CritTask is one step of the critical path: the task's execution window
// decomposed by category, plus the wait that preceded its start — split into
// the data-transfer portion and the scheduler portion (dispatch, slot
// queueing, client think time).
type CritTask struct {
	Key    string
	Prefix string
	Worker string

	Start, Stop float64

	ComputeSeconds float64
	IOSeconds      float64
	ProxySeconds   float64

	WaitTransferSeconds  float64
	WaitSchedulerSeconds float64

	// Reason says what released this step: "dep" (data dependency), "slot"
	// (waited for the thread to free), "submit" (graph submission), or
	// "start" (first task of the run).
	Reason string
}

// CritPath is the critical path of the executed schedule: the chain of
// tasks and waits that determined the makespan, with a category attribution
// that sums exactly to the makespan.
type CritPath struct {
	GraphID         int // -1 for the whole run
	MakespanSeconds float64
	Tasks           []CritTask
	Categories      map[string]float64

	// Coverage is attributed seconds / makespan; 1.0 by construction unless
	// the chain walk hit an inconsistent stream.
	Coverage float64
}

// CriticalSeconds sums the attributed categories.
func (c *CritPath) CriticalSeconds() float64 {
	var s float64
	for _, v := range c.Categories {
		s += v
	}
	return s
}

// CriticalPath extracts the whole-run critical path: the chain of tasks and
// waits from run start to the last task completion.
func (m *Model) CriticalPath() *CritPath {
	return m.criticalPath(-1)
}

// GraphCriticalPath extracts the critical path of one task graph, from its
// submission to its last task completion.
func (m *Model) GraphCriticalPath(graphID int) *CritPath {
	return m.criticalPath(graphID)
}

// criticalPath walks backward from the last-finishing task, at each step
// choosing the latest "release": the dependency whose data arrived last, the
// previous occupant of the same worker thread, or the graph submission.
// Restricting to graphID >= 0 scopes the walk to one graph.
func (m *Model) criticalPath(graphID int) *CritPath {
	cp := &CritPath{GraphID: graphID, Categories: map[string]float64{}}
	inScope := func(i int) bool {
		return graphID < 0 || m.Tasks[i].GraphID == graphID
	}

	// Terminal: last Stop in scope (ties: lexicographically smallest key,
	// for determinism across event orderings).
	last := -1
	for i := range m.Tasks {
		if !inScope(i) {
			continue
		}
		if last < 0 || m.Tasks[i].Stop > m.Tasks[last].Stop ||
			(m.Tasks[i].Stop == m.Tasks[last].Stop && m.Tasks[i].Key < m.Tasks[last].Key) {
			last = i
		}
	}
	if last < 0 {
		return cp
	}

	base := m.StartSeconds
	if graphID >= 0 {
		if gi := m.graphIndex(graphID); gi >= 0 {
			base = m.Graphs[gi].SubmitAt
		}
	}
	cp.MakespanSeconds = m.Tasks[last].Stop - base

	// Index the previous occupant of each (worker, thread): tasks sorted by
	// start per thread lane.
	type lane struct{ tasks []int }
	lanes := map[string]*lane{}
	laneKey := func(t *Task) string { return fmt.Sprintf("%s\x00%d", t.Worker, t.ThreadID) }
	for i := range m.Tasks {
		lk := laneKey(&m.Tasks[i])
		if lanes[lk] == nil {
			lanes[lk] = &lane{}
		}
		lanes[lk].tasks = append(lanes[lk].tasks, i)
	}
	for _, l := range lanes {
		sort.Slice(l.tasks, func(a, b int) bool {
			ta, tb := &m.Tasks[l.tasks[a]], &m.Tasks[l.tasks[b]]
			if ta.Start != tb.Start {
				return ta.Start < tb.Start
			}
			return ta.Key < tb.Key
		})
	}
	prevOnLane := func(i int) int {
		l := lanes[laneKey(&m.Tasks[i])]
		pos := sort.Search(len(l.tasks), func(p int) bool {
			tp := &m.Tasks[l.tasks[p]]
			return tp.Start > m.Tasks[i].Start ||
				(tp.Start == m.Tasks[i].Start && tp.Key >= m.Tasks[i].Key)
		})
		for p := pos - 1; p >= 0; p-- {
			j := l.tasks[p]
			if m.Tasks[j].Stop <= m.Tasks[i].Start && inScope(j) {
				return j
			}
		}
		return -1
	}

	// Last-finishing task per graph: the walk continues through a graph
	// submission into the prerequisite graph the client waited on.
	lastOfGraph := map[int]int{}
	for i := range m.Tasks {
		g := m.Tasks[i].GraphID
		if p, ok := lastOfGraph[g]; !ok || m.Tasks[i].Stop > m.Tasks[p].Stop ||
			(m.Tasks[i].Stop == m.Tasks[p].Stop && m.Tasks[i].Key < m.Tasks[p].Key) {
			lastOfGraph[g] = i
		}
	}
	// submitPred resolves the task behind a graph's submission: the final
	// task of the latest-finishing prerequisite graph (-1 for initial
	// graphs the client submitted unprompted).
	submitPred := func(graphID int) int {
		gi := m.graphIndex(graphID)
		if gi < 0 {
			return -1
		}
		best := -1
		var bestDone float64
		for _, p := range m.Graphs[gi].Prereqs {
			pi := m.graphIndex(p)
			if pi < 0 {
				continue
			}
			if best < 0 || m.Graphs[pi].DoneAt > bestDone {
				best, bestDone = lastOfGraph[p], m.Graphs[pi].DoneAt
			}
		}
		return best
	}

	var chain []CritTask
	cur := last
	guard := len(m.Tasks) + 1
	for cur >= 0 && guard > 0 {
		guard--
		t := &m.Tasks[cur]
		step := CritTask{
			Key: t.Key, Prefix: t.Prefix, Worker: t.Worker,
			Start: t.Start, Stop: t.Stop,
			ComputeSeconds: t.ComputeSeconds,
			IOSeconds:      t.IOSeconds,
			ProxySeconds:   t.ProxySeconds,
		}

		// Candidate releases, each (time, predecessor, reason, transfer part).
		relTime := base
		relPred := -1
		relReason := "start"
		if graphID < 0 {
			if gi := m.graphIndex(t.GraphID); gi >= 0 {
				if s := m.Graphs[gi].SubmitAt; s > relTime {
					relTime, relReason = s, "submit"
					relPred = submitPred(t.GraphID)
				}
			}
		}
		var relTransfer float64
		for _, d := range t.Deps {
			if !inScope(d) {
				continue
			}
			dep := &m.Tasks[d]
			arr := dep.Stop
			var tp float64
			if e, ok := m.Transfers[EdgeKey{Task: d, To: t.Worker}]; ok && !e.ViaProxy {
				arr += e.Seconds
				tp = e.Seconds
			}
			if arr > relTime || (arr == relTime && relPred < 0) {
				relTime, relPred, relReason, relTransfer = arr, d, "dep", tp
			}
		}
		if p := prevOnLane(cur); p >= 0 {
			if s := m.Tasks[p].Stop; s > relTime {
				relTime, relPred, relReason, relTransfer = s, p, "slot", 0
			}
		}

		// The wait between the predecessor's finish and this start is the
		// data transfer plus a scheduler residue: dispatch, slot queueing,
		// or client think time (for graph-submission releases).
		wait := t.Start - relTime
		if relPred >= 0 {
			wait = t.Start - m.Tasks[relPred].Stop - relTransfer
		}
		if wait < 0 {
			wait = 0
		}
		step.WaitTransferSeconds = relTransfer
		step.WaitSchedulerSeconds = wait
		step.Reason = relReason
		chain = append(chain, step)

		if relPred < 0 {
			// Leading gap from the base to this step's release.
			lead := relTime - base - relTransfer
			if lead > 0 {
				cp.Categories[CatScheduler] += lead
			}
			break
		}
		cur = relPred
	}

	// Reverse into time order and accumulate categories.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	cp.Tasks = chain
	for _, s := range chain {
		cp.Categories[CatCompute] += s.ComputeSeconds
		cp.Categories[CatIO] += s.IOSeconds
		cp.Categories[CatProxy] += s.ProxySeconds
		cp.Categories[CatTransfer] += s.WaitTransferSeconds
		cp.Categories[CatScheduler] += s.WaitSchedulerSeconds
	}
	if cp.MakespanSeconds > 0 {
		cp.Coverage = cp.CriticalSeconds() / cp.MakespanSeconds
	}
	return cp
}

// Slack computes per-task slack via the classic CPM forward/backward pass
// over the dependency DAG (contention-free): slack = latest finish - earliest
// finish. Critical-by-structure tasks have zero slack.
func (m *Model) Slack() map[string]float64 {
	n := len(m.Tasks)
	order := m.topoOrder()
	ef := make([]float64, n) // earliest finish
	es := make([]float64, n)
	for _, i := range order {
		t := &m.Tasks[i]
		start := 0.0
		for _, d := range t.Deps {
			arr := ef[d] + m.depEdgeSeconds(d, i)
			if arr > start {
				start = arr
			}
		}
		es[i] = start
		ef[i] = start + t.DurationSeconds()
	}
	makespan := 0.0
	for i := 0; i < n; i++ {
		if ef[i] > makespan {
			makespan = ef[i]
		}
	}
	lf := make([]float64, n)
	for i := range lf {
		lf[i] = makespan
	}
	for k := len(order) - 1; k >= 0; k-- {
		i := order[k]
		t := &m.Tasks[i]
		ls := lf[i] - t.DurationSeconds()
		for _, d := range t.Deps {
			if lim := ls - m.depEdgeSeconds(d, i); lim < lf[d] {
				lf[d] = lim
			}
		}
	}
	out := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		s := lf[i] - ef[i]
		if s < 0 {
			s = 0
		}
		out[m.Tasks[i].Key] = s
	}
	return out
}

// depEdgeSeconds is the measured (or zero) data-arrival edge weight d -> i.
func (m *Model) depEdgeSeconds(d, i int) float64 {
	if m.Tasks[d].Worker == m.Tasks[i].Worker {
		return 0
	}
	if e, ok := m.Transfers[EdgeKey{Task: d, To: m.Tasks[i].Worker}]; ok && !e.ViaProxy {
		return e.Seconds
	}
	return 0
}

// topoOrder returns a deterministic topological order (Kahn by task index).
func (m *Model) topoOrder() []int {
	n := len(m.Tasks)
	indeg := make([]int, n)
	out := make([][]int, n)
	for i := range m.Tasks {
		for _, d := range m.Tasks[i].Deps {
			out[d] = append(out[d], i)
			indeg[i]++
		}
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		// Pop the smallest index for determinism.
		sort.Ints(queue)
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, j := range out[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	return order
}

// LongestChainSeconds is the pure dependency-chain lower bound over a set of
// task durations: the heaviest path through the deps DAG counting execution
// time only. The live monitor's CriticalPathSeconds lane is this quantity
// computed over the events received so far — a function of the record set
// alone, so partition merge order cannot change it. Unknown or not-yet-
// executed deps contribute zero; a malformed cycle breaks to zero rather
// than recursing forever.
func LongestChainSeconds(durations map[string]float64, deps map[string][]string) float64 {
	memo := make(map[string]float64, len(durations))
	state := make(map[string]int8, len(durations)) // 1=visiting 2=done
	var chain func(k string) float64
	chain = func(k string) float64 {
		if state[k] == 2 {
			return memo[k]
		}
		if state[k] == 1 {
			return 0 // cycle guard
		}
		state[k] = 1
		best := 0.0
		for _, d := range deps[k] {
			if v := chain(d); v > best {
				best = v
			}
		}
		v := best + durations[k]
		state[k] = 2
		memo[k] = v
		return v
	}
	keys := make([]string, 0, len(durations))
	for k := range durations {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	best := 0.0
	for _, k := range keys {
		if v := chain(k); v > best {
			best = v
		}
	}
	return best
}

// Summary is the compact critical-path digest attached to RunArtifacts.
type Summary struct {
	MakespanSeconds float64            `json:"makespan_seconds"`
	CriticalTasks   int                `json:"critical_tasks"`
	Categories      map[string]float64 `json:"categories"`
	Coverage        float64            `json:"coverage"`
	// DominantCategory is the largest attribution bucket.
	DominantCategory string `json:"dominant_category"`
}

// Summarize condenses a critical path into the RunArtifacts digest.
func (c *CritPath) Summarize() *Summary {
	s := &Summary{
		MakespanSeconds: c.MakespanSeconds,
		CriticalTasks:   len(c.Tasks),
		Categories:      map[string]float64{},
		Coverage:        c.Coverage,
	}
	best := ""
	for _, cat := range Categories() {
		v := c.Categories[cat]
		s.Categories[cat] = v
		if best == "" || v > s.Categories[best] {
			best = cat
		}
	}
	s.DominantCategory = best
	return s
}

// String renders the digest as one line.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path %.3fs over %d tasks (", s.MakespanSeconds, s.CriticalTasks)
	for i, cat := range Categories() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %.1f%%", cat, 100*s.Categories[cat]/max(s.MakespanSeconds, 1e-12))
	}
	b.WriteString(")")
	return b.String()
}
