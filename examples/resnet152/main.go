// ResNet152 example: run the batch-prediction workflow, print the Fig. 5
// communication view (transfer duration vs size, intra- vs inter-node), and
// demonstrate the Darshan DXT truncation the paper reports in footnote 9.
//
//	go run ./examples/resnet152
package main

import (
	"fmt"
	"log"

	"taskprov/internal/core"
	"taskprov/internal/perfrecup"
	"taskprov/internal/workloads"
)

func main() {
	wf, err := workloads.New("resnet152")
	if err != nil {
		log.Fatal(err)
	}
	cfg := workloads.DefaultSession("resnet152", "resnet-example", 5)
	art, err := core.Run(cfg, wf)
	if err != nil {
		log.Fatal(err)
	}
	row, err := perfrecup.RenderTableIRow(art)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(row)

	fmt.Println("\nFig. 5 — interworker communication by transfer size:")
	buckets, err := perfrecup.CommScatter(art)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(perfrecup.RenderCommScatter(buckets))

	// The paper's footnote 9: the DXT-observed I/O count is incomplete
	// because the default instrumentation buffers overflowed.
	fmt.Printf("\nDarshan completeness: DXT-observed ops = %d, POSIX-counter ops = %d\n",
		art.TotalIOOps(), art.TotalPosixOps())
	for _, l := range art.DarshanLogs {
		if l.Job.Partial {
			fmt.Printf("  rank %d (%s): PARTIAL, %d DXT segments dropped\n",
				l.Job.Rank, l.Job.Hostname, l.Job.DXTDropped)
		}
	}
}
