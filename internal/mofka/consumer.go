package mofka

import (
	"fmt"
	"sort"
	"time"
)

// ConsumerOptions configures a subscription.
type ConsumerOptions struct {
	// Name identifies the consumer for cursor commits. Required for
	// Commit/resume semantics; anonymous consumers start at 0 every time.
	Name string
	// Partitions restricts the subscription; nil means all partitions.
	Partitions []int
	// NoData skips fetching payloads (Mofka's data-selection feature):
	// events arrive with Data == nil. Metadata-only analysis passes use it.
	NoData bool
	// DataSelector, when set, is consulted per event with the metadata
	// bytes; payloads are only fetched for events it accepts (Mofka's
	// fine-grained data selection). Ignored when NoData is set.
	DataSelector func(metadata []byte) bool
	// Prefetch is the per-partition pull granularity for PullBatch and the
	// internal read-ahead. Default 64.
	Prefetch int
	// FromCommitted resumes from the consumer's committed cursors instead
	// of offset zero.
	FromCommitted bool
}

// Consumer pulls events from a topic. It is single-goroutine by design
// (like a Mofka consumer handle); create one per analysis thread.
type Consumer struct {
	topic *Topic
	opts  ConsumerOptions
	parts []int
	next  map[int]uint64 // next unread offset per partition
	buf   []Event
	rr    int
}

// NewConsumer subscribes to the topic.
func (t *Topic) NewConsumer(opts ConsumerOptions) (*Consumer, error) {
	if opts.Prefetch <= 0 {
		opts.Prefetch = 64
	}
	parts := opts.Partitions
	if parts == nil {
		for i := range t.partitions {
			parts = append(parts, i)
		}
	}
	c := &Consumer{topic: t, opts: opts, parts: parts, next: make(map[int]uint64)}
	for _, i := range parts {
		if i < 0 || i >= len(t.partitions) {
			return nil, fmt.Errorf("%w: %s[%d]", ErrNoPartition, t.cfg.Name, i)
		}
		if opts.FromCommitted && opts.Name != "" {
			c.next[i] = t.broker.LoadCursor(opts.Name, t.cfg.Name, i)
		}
	}
	return c, nil
}

// fill tops up the internal buffer by reading round-robin across
// subscribed partitions.
func (c *Consumer) fill() error {
	for range c.parts {
		pi := c.parts[c.rr%len(c.parts)]
		c.rr++
		p := c.topic.partitions[pi]
		sel := c.opts.DataSelector
		if c.opts.NoData {
			sel = func([]byte) bool { return false }
		}
		evs, err := p.readSelect(c.next[pi], c.opts.Prefetch, sel)
		if err != nil {
			return err
		}
		if len(evs) > 0 {
			c.next[pi] = evs[len(evs)-1].ID + 1
			c.buf = append(c.buf, evs...)
			return nil
		}
	}
	return nil
}

// Pull returns the next event, or ok=false when no unread events exist.
func (c *Consumer) Pull() (Event, bool, error) {
	if len(c.buf) == 0 {
		if err := c.fill(); err != nil {
			return Event{}, false, err
		}
	}
	if len(c.buf) == 0 {
		return Event{}, false, nil
	}
	ev := c.buf[0]
	c.buf = c.buf[1:]
	return ev, true, nil
}

// PullBlocking behaves like Pull but waits up to timeout for a new event,
// supporting in-situ consumption while the producer is live. When the broker
// closes, PullBlocking drains any events that already landed and then
// returns ErrClosed promptly instead of waiting out the timeout.
func (c *Consumer) PullBlocking(timeout time.Duration) (Event, bool, error) {
	ev, ok, err := c.Pull()
	if ok || err != nil {
		return ev, ok, err
	}
	deadline := time.Now().Add(timeout)
	for {
		// Closed broker: no new events can arrive. Serve whatever was
		// published before the close, then report closure.
		closed := true
		for _, pi := range c.parts {
			if !c.topic.partitions[pi].isClosed() {
				closed = false
				break
			}
		}
		if closed {
			ev, ok, err := c.Pull()
			if ok || err != nil {
				return ev, ok, err
			}
			return Event{}, false, ErrClosed
		}
		// Wait on whichever subscribed partition might grow.
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return Event{}, false, nil
		}
		per := remaining / time.Duration(len(c.parts))
		if per <= 0 {
			per = time.Millisecond
		}
		for _, pi := range c.parts {
			p := c.topic.partitions[pi]
			if p.waitForLength(c.next[pi], per) {
				return c.Pull()
			}
		}
	}
}

// PullBatch returns up to max unread events (possibly fewer, empty at end of
// stream).
func (c *Consumer) PullBatch(max int) ([]Event, error) {
	var out []Event
	for len(out) < max {
		ev, ok, err := c.Pull()
		if err != nil {
			return out, err
		}
		if !ok {
			break
		}
		out = append(out, ev)
	}
	return out, nil
}

// Drain pulls every remaining event.
func (c *Consumer) Drain() ([]Event, error) {
	var out []Event
	for {
		ev, ok, err := c.Pull()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, ev)
	}
}

// Commit durably records that every event up to and including ev has been
// processed by this (named) consumer.
func (c *Consumer) Commit(ev Event) error {
	if c.opts.Name == "" {
		return fmt.Errorf("mofka: anonymous consumer cannot commit")
	}
	return c.topic.broker.CommitCursor(c.opts.Name, c.topic.cfg.Name, ev.Partition, ev.ID+1)
}

// CommitBatch durably records a whole batch of processed events with one
// cursor write per distinct partition (not one per event): for each
// partition represented in the batch, the highest event ID wins. Batch
// consumers (PullBatch/Drain users) should prefer this over per-event
// Commit — on a durable broker every commit is an fsynced sidecar write.
func (c *Consumer) CommitBatch(evs []Event) error {
	if c.opts.Name == "" {
		return fmt.Errorf("mofka: anonymous consumer cannot commit")
	}
	if len(evs) == 0 {
		return nil
	}
	high := make(map[int]uint64, 2)
	for _, ev := range evs {
		if next := ev.ID + 1; next > high[ev.Partition] {
			high[ev.Partition] = next
		}
	}
	parts := make([]int, 0, len(high))
	for p := range high {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	for _, p := range parts {
		if err := c.topic.broker.CommitCursor(c.opts.Name, c.topic.cfg.Name, p, high[p]); err != nil {
			return err
		}
	}
	return nil
}

// Progress returns the next unread offset for a partition.
func (c *Consumer) Progress(partition int) uint64 { return c.next[partition] }

// Lag reports, per subscribed partition, how many published events this
// consumer has not pulled yet (events buffered internally but not yet
// returned by Pull still count as lag — they have not been delivered).
func (c *Consumer) Lag() map[int]uint64 {
	buffered := make(map[int]uint64, len(c.parts))
	for _, ev := range c.buf {
		buffered[ev.Partition]++
	}
	out := make(map[int]uint64, len(c.parts))
	for _, pi := range c.parts {
		length := c.topic.partitions[pi].Length()
		delivered := c.next[pi] - buffered[pi]
		if length > delivered {
			out[pi] = length - delivered
		} else {
			out[pi] = 0
		}
	}
	return out
}

// TotalLag sums Lag across subscribed partitions.
func (c *Consumer) TotalLag() uint64 {
	var n uint64
	for _, lag := range c.Lag() {
		n += lag
	}
	return n
}
