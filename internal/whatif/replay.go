package whatif

import (
	"container/heap"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Scenario is a perturbation of the measured configuration. Zero values
// mean "unchanged".
type Scenario struct {
	// Workers is the total worker count (0 = unchanged). Changing it forces
	// re-placement mode: tasks lose their measured pinning and are placed
	// by the simulator's list scheduler.
	Workers int
	// ThreadsPerWorker is the per-worker thread count (0 = unchanged).
	ThreadsPerWorker int
	// NetBandwidthScale multiplies interconnect speed (0 = 1.0): transfer
	// and proxy-resolve times divide by it.
	NetBandwidthScale float64
	// PFSScale multiplies parallel-file-system speed (0 = 1.0): per-task
	// I/O time divides by it.
	PFSScale float64
	// ProxyThresholdBytes moves the pass-by-reference threshold: 0 =
	// unchanged, < 0 = disable the proxy plane (all transfers direct).
	ProxyThresholdBytes int64
	// StealEnabled overrides work stealing (nil = unchanged). Changing it
	// forces re-placement mode.
	StealEnabled *bool
}

// IsBaseline reports whether the scenario leaves the measured configuration
// unchanged — the self-replay case.
func (s Scenario) IsBaseline() bool {
	return s.Workers == 0 && s.ThreadsPerWorker == 0 &&
		(s.NetBandwidthScale == 0 || s.NetBandwidthScale == 1) &&
		(s.PFSScale == 0 || s.PFSScale == 1) &&
		s.ProxyThresholdBytes == 0 && s.StealEnabled == nil
}

// String renders the scenario in ParseScenario's syntax.
func (s Scenario) String() string {
	var parts []string
	if s.Workers != 0 {
		parts = append(parts, fmt.Sprintf("workers=%d", s.Workers))
	}
	if s.ThreadsPerWorker != 0 {
		parts = append(parts, fmt.Sprintf("threads=%d", s.ThreadsPerWorker))
	}
	if s.NetBandwidthScale != 0 && s.NetBandwidthScale != 1 {
		parts = append(parts, fmt.Sprintf("net=%g", s.NetBandwidthScale))
	}
	if s.PFSScale != 0 && s.PFSScale != 1 {
		parts = append(parts, fmt.Sprintf("pfs=%g", s.PFSScale))
	}
	if s.ProxyThresholdBytes < 0 {
		parts = append(parts, "proxy=off")
	} else if s.ProxyThresholdBytes > 0 {
		parts = append(parts, fmt.Sprintf("proxy=%d", s.ProxyThresholdBytes))
	}
	if s.StealEnabled != nil {
		if *s.StealEnabled {
			parts = append(parts, "steal=on")
		} else {
			parts = append(parts, "steal=off")
		}
	}
	if len(parts) == 0 {
		return "baseline"
	}
	return strings.Join(parts, " ")
}

// ParseScenario parses "workers=8 threads=4 net=0.5 pfs=2 proxy=1048576
// steal=off" (space- or comma-separated; "baseline" or "" is the unchanged
// scenario; proxy accepts a byte count or "off").
func ParseScenario(s string) (Scenario, error) {
	var out Scenario
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ' ' || r == ',' || r == '\t' })
	for _, f := range fields {
		if f == "baseline" {
			continue
		}
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return out, fmt.Errorf("whatif: scenario term %q is not key=value", f)
		}
		switch k {
		case "workers":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return out, fmt.Errorf("whatif: bad workers %q", v)
			}
			out.Workers = n
		case "threads":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return out, fmt.Errorf("whatif: bad threads %q", v)
			}
			out.ThreadsPerWorker = n
		case "net":
			x, err := strconv.ParseFloat(v, 64)
			if err != nil || x <= 0 {
				return out, fmt.Errorf("whatif: bad net scale %q", v)
			}
			out.NetBandwidthScale = x
		case "pfs":
			x, err := strconv.ParseFloat(v, 64)
			if err != nil || x <= 0 {
				return out, fmt.Errorf("whatif: bad pfs scale %q", v)
			}
			out.PFSScale = x
		case "proxy":
			if v == "off" {
				out.ProxyThresholdBytes = -1
				break
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return out, fmt.Errorf("whatif: bad proxy threshold %q", v)
			}
			out.ProxyThresholdBytes = n
		case "steal":
			switch v {
			case "on", "true":
				t := true
				out.StealEnabled = &t
			case "off", "false":
				f := false
				out.StealEnabled = &f
			default:
				return out, fmt.Errorf("whatif: bad steal %q (on/off)", v)
			}
		default:
			return out, fmt.Errorf("whatif: unknown scenario knob %q (workers, threads, net, pfs, proxy, steal)", k)
		}
	}
	return out, nil
}

// Result is one replay prediction.
type Result struct {
	Scenario string `json:"scenario"`
	// Mode is "pinned" (topology unchanged: tasks keep their measured
	// placement) or "replaced" (the list scheduler re-places every task).
	Mode string `json:"mode"`

	MeasuredMakespanSeconds  float64 `json:"measured_makespan_seconds"`
	PredictedMakespanSeconds float64 `json:"predicted_makespan_seconds"`
	DeltaSeconds             float64 `json:"delta_seconds"`
	DeltaFraction            float64 `json:"delta_fraction"`

	MeasuredUtilization  float64 `json:"measured_utilization"`
	PredictedUtilization float64 `json:"predicted_utilization"`

	Tasks   int `json:"tasks"`
	Workers int `json:"workers"`
	Threads int `json:"threads"`
}

// simEvent is one pending discrete event.
type simEvent struct {
	at   float64
	kind int // 0 = task ready, 1 = task finish, 2 = graph available
	id   int // task index or graph position
	seq  int // FIFO tie-break for determinism
}

type eventHeap []simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(a, b int) bool {
	if h[a].at != h[b].at {
		return h[a].at < h[b].at
	}
	if h[a].kind != h[b].kind {
		return h[a].kind < h[b].kind
	}
	return h[a].seq < h[b].seq
}
func (h eventHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(simEvent)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// readyItem is a task waiting for a slot, prioritized by its measured start
// (preserving the run's scheduling order), then key for determinism.
type readyItem struct {
	task     int
	priority float64
}

type readyQueue struct {
	m     *Model
	items []readyItem
}

func (q readyQueue) Len() int { return len(q.items) }
func (q readyQueue) Less(a, b int) bool {
	ia, ib := q.items[a], q.items[b]
	if ia.priority != ib.priority {
		return ia.priority < ib.priority
	}
	return q.m.Tasks[ia.task].Key < q.m.Tasks[ib.task].Key
}
func (q readyQueue) Swap(a, b int) { q.items[a], q.items[b] = q.items[b], q.items[a] }
func (q *readyQueue) Push(x any)   { q.items = append(q.items, x.(readyItem)) }
func (q *readyQueue) Pop() any {
	old := q.items
	n := len(old)
	x := old[n-1]
	q.items = old[:n-1]
	return x
}

// Replay re-executes the model's DAG under the scenario and predicts the
// makespan. Time starts at zero (relative to the measured run start).
func (m *Model) Replay(s Scenario) (*Result, error) {
	if len(m.Tasks) == 0 {
		return nil, fmt.Errorf("whatif: empty model")
	}
	netScale := s.NetBandwidthScale
	if netScale == 0 {
		netScale = 1
	}
	pfsScale := s.PFSScale
	if pfsScale == 0 {
		pfsScale = 1
	}
	threads := m.ThreadsPerWorker
	if s.ThreadsPerWorker != 0 {
		threads = s.ThreadsPerWorker
	}
	if threads < 1 {
		threads = 1
	}
	threshold := m.ProxyThreshold
	if s.ProxyThresholdBytes < 0 {
		threshold = 0
	} else if s.ProxyThresholdBytes > 0 {
		threshold = s.ProxyThresholdBytes
	}
	steal := m.StealEnabled
	if s.StealEnabled != nil {
		steal = *s.StealEnabled
	}

	// Pinned mode keeps the measured placement; changing the topology or
	// the stealing policy invalidates it and engages the list scheduler.
	pinned := s.Workers == 0 && s.ThreadsPerWorker == 0 && s.StealEnabled == nil

	// The simulated worker set.
	workers := m.Workers
	host := m.WorkerHost
	if s.Workers != 0 && s.Workers != len(m.Workers) {
		workers = make([]string, s.Workers)
		host = make(map[string]string, s.Workers)
		// Spread synthetic workers round-robin over the measured node set
		// (or synthetic nodes when the run had none).
		nodes := m.nodeList()
		for i := range workers {
			workers[i] = fmt.Sprintf("sim://w%03d", i)
			host[workers[i]] = nodes[i%len(nodes)]
		}
	}
	widx := make(map[string]int, len(workers))
	for i, w := range workers {
		widx[w] = i
	}

	n := len(m.Tasks)
	place := make([]int, n) // worker index per task (pinned mode)
	if pinned {
		for i := range m.Tasks {
			wi, ok := widx[m.Tasks[i].Worker]
			if !ok {
				return nil, fmt.Errorf("whatif: task %s on unknown worker %s", m.Tasks[i].Key, m.Tasks[i].Worker)
			}
			place[i] = wi
		}
	} else {
		for i := range place {
			place[i] = -1
		}
	}

	// Per-task scenario durations, split so the proxy plane can move
	// between the lazy (in-window) and eager (pre-start) positions.
	execBase := make([]float64, n) // compute + scaled IO
	for i := range m.Tasks {
		t := &m.Tasks[i]
		execBase[i] = t.ComputeSeconds + t.IOSeconds/pfsScale
	}
	proxied := func(d int) bool {
		return threshold > 0 && m.Tasks[d].OutputBytes >= threshold
	}

	// Graph availability: graphs become available DelaySeconds after their
	// prerequisites complete in simulated time.
	gpos := make(map[int]int, len(m.Graphs))
	for i, g := range m.Graphs {
		gpos[g.ID] = i
	}
	gRemaining := make([]int, len(m.Graphs))
	gPrereqLeft := make([]int, len(m.Graphs))
	gDone := make([]float64, len(m.Graphs))
	gAvail := make([]float64, len(m.Graphs))
	gWaiters := make([][]int, len(m.Graphs)) // graph positions waiting on this graph
	for i, g := range m.Graphs {
		gRemaining[i] = 0
		gPrereqLeft[i] = len(g.Prereqs)
		gAvail[i] = -1
		for _, p := range g.Prereqs {
			if pp, ok := gpos[p]; ok {
				gWaiters[pp] = append(gWaiters[pp], i)
			} else {
				gPrereqLeft[i]--
			}
		}
	}
	for i := range m.Tasks {
		if gi, ok := gpos[m.Tasks[i].GraphID]; ok {
			gRemaining[gi]++
		}
	}

	pending := make([]int, n) // unfinished dep count
	dependents := make([][]int, n)
	for i := range m.Tasks {
		pending[i] = len(m.Tasks[i].Deps)
		for _, d := range m.Tasks[i].Deps {
			dependents[d] = append(dependents[d], i)
		}
	}

	finish := make([]float64, n)
	started := make([]bool, n)
	arrival := make(map[EdgeKey]float64) // fetched dep cache per worker

	events := &eventHeap{}
	seq := 0
	push := func(at float64, kind, id int) {
		heap.Push(events, simEvent{at: at, kind: kind, id: id, seq: seq})
		seq++
	}

	free := make([]int, len(workers))
	for i := range free {
		free[i] = threads
	}
	queues := make([]*readyQueue, len(workers))
	for i := range queues {
		queues[i] = &readyQueue{m: m}
	}
	global := &readyQueue{m: m} // re-placement pool (steal=on)

	var busySeconds float64
	clock := 0.0
	finished := 0

	// fetchReady computes when task i's inputs are on worker wi, starting
	// the missing fetches at time t0 (deps fetch concurrently; a dep already
	// fetched to the worker is reused).
	fetchReady := func(i, wi int, t0 float64) float64 {
		w := workers[wi]
		ready := t0
		for _, d := range m.Tasks[i].Deps {
			if proxied(d) {
				continue // lazy: resolves inside the window
			}
			var from string
			if pinned {
				from = m.Tasks[d].Worker
			} else if place[d] >= 0 {
				from = workers[place[d]]
			}
			if from == w {
				continue
			}
			k := EdgeKey{Task: d, To: w}
			arr, ok := arrival[k]
			if !ok {
				arr = t0 + m.edgeCost(d, from, w, netScale)
				arrival[k] = arr
			}
			if arr > ready {
				ready = arr
			}
		}
		return ready
	}

	execSeconds := func(i, wi int) float64 {
		d := execBase[i]
		for _, dep := range m.Tasks[i].Deps {
			if proxied(dep) {
				d += m.proxyCost(dep, workers[wi], netScale)
			}
		}
		return d
	}

	launch := func(i, wi int, at float64) {
		place[i] = wi
		started[i] = true
		free[wi]--
		d := execSeconds(i, wi)
		busySeconds += d
		finish[i] = at + d
		push(finish[i], 1, i)
	}

	// dispatch drains a worker's queue (and, with stealing, the global pool)
	// while it has free slots.
	dispatch := func(wi int, now float64) {
		for free[wi] > 0 {
			var it readyItem
			switch {
			case pinned:
				if queues[wi].Len() == 0 {
					return
				}
				it = heap.Pop(queues[wi]).(readyItem)
			case steal:
				if global.Len() == 0 {
					return
				}
				it = heap.Pop(global).(readyItem)
			default:
				if queues[wi].Len() == 0 {
					return
				}
				it = heap.Pop(queues[wi]).(readyItem)
			}
			i := it.task
			at := now
			if !pinned {
				// Placement-time fetch: inputs stream to the chosen worker
				// as the task is assigned.
				at = fetchReady(i, wi, now)
			}
			launch(i, wi, at)
		}
	}
	dispatchAll := func(now float64) {
		for wi := range workers {
			dispatch(wi, now)
		}
	}

	// taskReady enqueues a ready task: on its pinned worker's queue, the
	// global pool (stealing), or the statically best worker's queue.
	taskReady := func(i int, now float64) {
		prio := m.Tasks[i].Start // measured order preserved
		switch {
		case pinned:
			wi := place[i]
			heap.Push(queues[wi], readyItem{task: i, priority: prio})
			dispatch(wi, now)
		case steal:
			heap.Push(global, readyItem{task: i, priority: prio})
			dispatchAll(now)
		default:
			// Static placement: min over workers of (earliest slot guess,
			// data arrival) — a deterministic ETF-style choice.
			best, bestWi := 0.0, -1
			for wi := range workers {
				est := fetchEstimate(m, i, wi, workers, place, pinned, netScale, proxied)
				if bestWi < 0 || est < best {
					best, bestWi = est, wi
				}
			}
			heap.Push(queues[bestWi], readyItem{task: i, priority: prio})
			dispatch(bestWi, now)
		}
	}

	// Seed: graphs with no (known) prerequisites become available after
	// their measured client delay.
	for i, g := range m.Graphs {
		if gPrereqLeft[i] == 0 {
			push(g.DelaySeconds, 2, i)
		}
	}
	if len(m.Graphs) == 0 {
		// Degenerate stream without graph info: everything roots at zero.
		for i := range m.Tasks {
			if pending[i] == 0 {
				push(m.Cost.DispatchSeconds, 0, i)
			}
		}
	}

	for events.Len() > 0 {
		ev := heap.Pop(events).(simEvent)
		clock = ev.at
		switch ev.kind {
		case 2: // graph available
			gi := ev.id
			gAvail[gi] = clock
			for i := range m.Tasks {
				if gp, ok := gpos[m.Tasks[i].GraphID]; ok && gp == gi && pending[i] == 0 {
					push(clock+m.Cost.DispatchSeconds, 0, i)
				}
			}
		case 0: // task ready (deps done + graph available + dispatch)
			i := ev.id
			if started[i] {
				break
			}
			if pinned {
				wi := place[i]
				at := fetchReady(i, wi, clock)
				if at > clock {
					// Inputs still in flight: re-arm at arrival.
					push(at, 0, i)
					break
				}
			}
			taskReady(i, clock)
		case 1: // task finish
			i := ev.id
			finished++
			wi := place[i]
			free[wi]++
			// Graph bookkeeping.
			if gi, ok := gpos[m.Tasks[i].GraphID]; ok {
				gRemaining[gi]--
				if gRemaining[gi] == 0 {
					gDone[gi] = clock
					for _, w := range gWaiters[gi] {
						gPrereqLeft[w]--
						if gPrereqLeft[w] == 0 {
							push(clock+m.Graphs[w].DelaySeconds, 2, w)
						}
					}
				}
			}
			// Dependents.
			for _, j := range dependents[i] {
				pending[j]--
				if pending[j] != 0 {
					continue
				}
				if gi, ok := gpos[m.Tasks[j].GraphID]; ok && gAvail[gi] < 0 {
					continue // graph not yet submitted
				}
				push(clock+m.Cost.DispatchSeconds, 0, j)
			}
			if pinned {
				dispatch(wi, clock)
			} else if steal {
				dispatchAll(clock)
			} else {
				dispatch(wi, clock)
			}
		}
	}

	if finished != n {
		return nil, fmt.Errorf("whatif: replay stalled at %d/%d tasks (inconsistent stream?)", finished, n)
	}

	makespan := clock
	slots := float64(len(workers) * threads)
	r := &Result{
		Scenario:                 s.String(),
		MeasuredMakespanSeconds:  m.MakespanSeconds,
		PredictedMakespanSeconds: makespan,
		DeltaSeconds:             makespan - m.MakespanSeconds,
		Tasks:                    n,
		Workers:                  len(workers),
		Threads:                  threads,
	}
	if pinned {
		r.Mode = "pinned"
	} else {
		r.Mode = "replaced"
	}
	if m.MakespanSeconds > 0 {
		r.DeltaFraction = r.DeltaSeconds / m.MakespanSeconds
	}
	if makespan > 0 && slots > 0 {
		r.PredictedUtilization = busySeconds / (slots * makespan)
	}
	// Measured utilization over the measured slot pool.
	mslots := float64(len(m.Workers) * m.ThreadsPerWorker)
	if m.MakespanSeconds > 0 && mslots > 0 {
		var busy float64
		for i := range m.Tasks {
			busy += m.Tasks[i].DurationSeconds()
		}
		r.MeasuredUtilization = busy / (mslots * m.MakespanSeconds)
	}
	return r, nil
}

// fetchEstimate scores placing task i on worker wi: the max direct-plane
// arrival of its deps, used by the static placer.
func fetchEstimate(m *Model, i, wi int, workers []string, place []int, pinned bool, netScale float64, proxied func(int) bool) float64 {
	w := workers[wi]
	est := 0.0
	for _, d := range m.Tasks[i].Deps {
		if proxied(d) {
			continue
		}
		var from string
		if place[d] >= 0 {
			from = workers[place[d]]
		}
		if from == w {
			continue
		}
		est += m.edgeCost(d, from, w, netScale)
	}
	return est
}

// nodeList is the distinct measured hostnames (sorted), or a synthetic node
// when the stream carried none.
func (m *Model) nodeList() []string {
	set := map[string]struct{}{}
	for _, h := range m.WorkerHost {
		if h != "" {
			set[h] = struct{}{}
		}
	}
	if len(set) == 0 {
		return []string{"sim-node0"}
	}
	out := make([]string, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}
