package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelOrdering(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.At(Seconds(2), func() { order = append(order, 2) })
	k.At(Seconds(1), func() { order = append(order, 1) })
	k.At(Seconds(3), func() { order = append(order, 3) })
	end := k.Run()
	if end != Seconds(3) {
		t.Fatalf("end time = %v, want 3s", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
}

func TestKernelSimultaneousEventsFireInScheduleOrder(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(Seconds(1), func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of schedule order: %v", order)
		}
	}
}

func TestKernelAfterAndNow(t *testing.T) {
	k := NewKernel(1)
	var at2, at5 Time
	k.After(Seconds(2), func() {
		at2 = k.Now()
		k.After(Seconds(3), func() { at5 = k.Now() })
	})
	k.Run()
	if at2 != Seconds(2) || at5 != Seconds(5) {
		t.Fatalf("Now() inside events = %v, %v; want 2s, 5s", at2, at5)
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	e := k.After(Second, func() { fired = true })
	e.Cancel()
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestKernelSchedulingInPastPanics(t *testing.T) {
	k := NewKernel(1)
	k.After(Seconds(5), func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(Seconds(1), func() {})
	})
	k.Run()
}

func TestKernelStop(t *testing.T) {
	k := NewKernel(1)
	count := 0
	for i := 1; i <= 10; i++ {
		k.At(Seconds(float64(i)), func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 3 {
		t.Fatalf("fired %d events after Stop at 3", count)
	}
	if k.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", k.Pending())
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	for i := 1; i <= 5; i++ {
		d := Seconds(float64(i))
		k.At(d, func() { fired = append(fired, d) })
	}
	end := k.RunUntil(Seconds(3.5))
	if len(fired) != 3 {
		t.Fatalf("RunUntil fired %d events, want 3", len(fired))
	}
	if end != Seconds(3.5) {
		t.Fatalf("RunUntil end = %v, want 3.5s", end)
	}
	// Remaining events still fire on Run.
	k.Run()
	if len(fired) != 5 {
		t.Fatalf("Run after RunUntil fired %d total, want 5", len(fired))
	}
}

func TestKernelRunUntilAdvancesIdleClock(t *testing.T) {
	k := NewKernel(1)
	end := k.RunUntil(Seconds(10))
	if end != Seconds(10) {
		t.Fatalf("idle RunUntil end = %v, want 10s", end)
	}
}

func TestKernelNegativeDelayClamped(t *testing.T) {
	k := NewKernel(1)
	fired := false
	k.After(-Second, func() { fired = true })
	k.Run()
	if !fired || k.Now() != 0 {
		t.Fatalf("negative delay: fired=%v now=%v", fired, k.Now())
	}
}

func TestTimeHelpers(t *testing.T) {
	if Seconds(1.5).Seconds() != 1.5 {
		t.Errorf("Seconds round-trip failed")
	}
	if Milliseconds(250) != Seconds(0.25) {
		t.Errorf("Milliseconds(250) != Seconds(0.25)")
	}
	if Microseconds(1000) != Milliseconds(1) {
		t.Errorf("Microseconds(1000) != Milliseconds(1)")
	}
	if s := Seconds(1.25).String(); s != "1.250000s" {
		t.Errorf("String() = %q", s)
	}
}

// Property: with any batch of non-negative delays, events fire in
// non-decreasing time order and the final clock equals the max delay.
func TestKernelTimeMonotonicProperty(t *testing.T) {
	prop := func(delays []uint32) bool {
		k := NewKernel(7)
		var max Time
		var times []Time
		for _, d := range delays {
			d := Time(d) * Microsecond
			if d > max {
				max = d
			}
			k.At(d, func() { times = append(times, k.Now()) })
		}
		k.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(delays) == 0 || k.Now() == max
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestKernelEvery(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	var stop func()
	stop = k.Every(Seconds(1), func() {
		fired = append(fired, k.Now())
		if len(fired) == 3 {
			stop()
		}
	})
	k.At(Seconds(10), k.Stop)
	k.Run()
	want := []Time{Seconds(1), Seconds(2), Seconds(3)}
	if len(fired) != len(want) {
		t.Fatalf("fired %d times (%v), want %d", len(fired), fired, len(want))
	}
	for i, ts := range want {
		if fired[i] != ts {
			t.Fatalf("firing %d at %v, want %v", i, fired[i], ts)
		}
	}
}

func TestKernelEveryStopBetweenFirings(t *testing.T) {
	k := NewKernel(1)
	count := 0
	stop := k.Every(Seconds(1), func() { count++ })
	k.At(Milliseconds(2500), func() { stop() })
	k.At(Seconds(10), k.Stop)
	k.Run()
	if count != 2 {
		t.Fatalf("fired %d times after stop at 2.5s, want 2", count)
	}
}

func TestKernelEveryNonPositivePeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKernel(1).Every(0, func() {})
}
