package core

import (
	"testing"

	"taskprov/internal/dask"
)

// proxyReplayTopics is every provenance stream this session records (the
// anomalies topic only exists when online detection is enabled); the
// deterministic-replay regression compares all of them.
var proxyReplayTopics = []string{
	TopicTaskMeta, TopicTransitions, TopicExecutions, TopicTransfers,
	TopicWarnings, TopicHeartbeats, TopicSteals, TopicGraphs, TopicProxy,
}

// TestProxySessionDeterministicReplay: the same seeded session with the
// pass-by-reference data plane enabled must reproduce byte-identical
// provenance streams, topic for topic — publish/resolve/free interleavings
// and resident-bytes snapshots included.
func TestProxySessionDeterministicReplay(t *testing.T) {
	run := func() *RunArtifacts {
		cfg := testSession(9)
		cfg.Dask.ProxyThresholdBytes = 1 << 17
		wf := &crashWorkflow{width: 16}
		art, err := Run(cfg, wf)
		if err != nil {
			t.Fatal(err)
		}
		if wf.graphErr != "" {
			t.Fatalf("graph erred: %s", wf.graphErr)
		}
		return art
	}
	a, b := run(), run()
	for _, topic := range proxyReplayTopics {
		ja, jb := drainJSON(t, a, topic), drainJSON(t, b, topic)
		if len(ja) != len(jb) {
			t.Fatalf("topic %s: %d vs %d events across identical runs", topic, len(ja), len(jb))
		}
		for i := range ja {
			if ja[i] != jb[i] {
				t.Fatalf("topic %s event %d differs:\n%s\n%s", topic, i, ja[i], jb[i])
			}
		}
	}
	// The proxy plane actually engaged: the streams being identical would be
	// vacuous if nothing was proxied.
	if n := len(drainJSON(t, a, TopicProxy)); n == 0 {
		t.Fatal("no proxy events recorded")
	}
}

// TestProxyClusterChaosAcceptance is the end-to-end acceptance run: a
// 3-broker replicated Mofka cluster records a proxy-enabled session whose
// chaos spec kills a worker mid-run. The graph must still complete — no
// acknowledged result lost — with the victim's keys recomputed and
// republished under new owners, and the store's resident footprint must
// return to the fault-free baseline (every orphaned blob freed or
// reclaimed).
func TestProxyClusterChaosAcceptance(t *testing.T) {
	run := func(chaosSpec string) []dask.ProxyEvent {
		cfg := clusterSession(31)
		cfg.Dask.ProxyThresholdBytes = 1 << 17
		cfg.ChaosSpec = chaosSpec
		wf := &crashWorkflow{width: 32}
		art, err := Run(cfg, wf)
		if err != nil {
			t.Fatal(err)
		}
		if wf.graphErr != "" {
			t.Fatalf("graph erred under %q: %s", chaosSpec, wf.graphErr)
		}
		metas, err := DrainTopic(art.Broker, TopicProxy)
		if err != nil {
			t.Fatal(err)
		}
		evs := make([]dask.ProxyEvent, len(metas))
		for i, m := range metas {
			evs[i] = ParseProxyEvent(m)
		}
		return evs
	}

	tally := func(evs []dask.ProxyEvent) (resident int64, publishes int) {
		for _, e := range evs {
			switch e.Op {
			case dask.ProxyOpPublish:
				resident += e.Bytes
				publishes++
			case dask.ProxyOpFree, dask.ProxyOpReclaim:
				resident -= e.Bytes
			}
		}
		return resident, publishes
	}

	baseRes, basePubs := tally(run(""))
	chaosRes, chaosPubs := tally(run("kill worker=2 at=6s restart=4s"))

	if basePubs == 0 {
		t.Fatal("baseline run published nothing through the proxy store")
	}
	if chaosPubs <= basePubs {
		t.Fatalf("chaos run published %d blobs, baseline %d — lost keys were not republished",
			chaosPubs, basePubs)
	}
	if chaosRes != baseRes {
		t.Fatalf("resident bytes after chaos = %d, baseline = %d — orphaned blobs leaked",
			chaosRes, baseRes)
	}
}
