package perfrecup

import (
	"fmt"
	"sort"
	"strings"

	"taskprov/internal/core"
	"taskprov/internal/dask"
)

// CorrelationReport is the paper's §IV-D3 analysis: quantifying the
// relationships the parallel-coordinates chart shows visually — whether
// runtime warnings coincide in time with long-running tasks, and whether
// task duration tracks task output size.
type CorrelationReport struct {
	// WarningsVsLongTasks is the Pearson correlation, across time bins,
	// between warning counts and the number of concurrently executing
	// "long" tasks (duration above the 90th percentile). The paper
	// observes this "correlates perfectly" for XGBOOST's event-loop
	// warnings and read_parquet-fused-assign tasks.
	WarningsVsLongTasks float64
	// DurationVsOutputSize is the Spearman rank correlation between task
	// durations and output sizes across all tasks.
	DurationVsOutputSize float64
	// LongTaskPrefixes ranks task categories by their share of long-task
	// time, most culpable first.
	LongTaskPrefixes []PrefixShare
	// Bins used for the time-binned correlation.
	BinSeconds float64
	NumBins    int
}

// PrefixShare is one category's share of long-task execution time.
type PrefixShare struct {
	Prefix  string
	Share   float64 // 0..1 of total long-task seconds
	Seconds float64
}

// Correlate computes the report from one run's artifacts.
func Correlate(art *core.RunArtifacts, binSeconds float64) (CorrelationReport, error) {
	rep := CorrelationReport{BinSeconds: binSeconds}
	execs, err := core.DrainTopic(art.Broker, core.TopicExecutions)
	if err != nil {
		return rep, err
	}
	if len(execs) == 0 {
		return rep, fmt.Errorf("perfrecup: no executions to correlate")
	}
	type taskRow struct {
		key         dask.TaskKey
		start, stop float64
		dur         float64
		size        float64
	}
	rows := make([]taskRow, 0, len(execs))
	end := art.Meta.WallSeconds
	var durs, sizes []float64
	for _, m := range execs {
		e := core.ParseExecution(m)
		r := taskRow{
			key: e.Key, start: e.Start.Seconds(), stop: e.Stop.Seconds(),
			dur: (e.Stop - e.Start).Seconds(), size: float64(e.OutputSize),
		}
		rows = append(rows, r)
		durs = append(durs, r.dur)
		sizes = append(sizes, r.size)
		if r.stop > end {
			end = r.stop
		}
	}
	rep.DurationVsOutputSize = Spearman(durs, sizes)

	// Long tasks: above the 90th percentile duration.
	p90 := Percentile(durs, 90)
	nbins := int(end/binSeconds) + 1
	rep.NumBins = nbins
	// Per-bin long-task activity is duration-weighted (seconds of long-task
	// execution inside the bin), so a single dominant task is not diluted
	// by marginally-long ones merely touching a bin.
	longActive := make([]float64, nbins)
	totalLong := 0.0
	byPrefix := map[string]float64{}
	for _, r := range rows {
		if r.dur < p90 {
			continue
		}
		totalLong += r.dur
		byPrefix[dask.KeyPrefix(r.key)] += r.dur
		b0, b1 := int(r.start/binSeconds), int(r.stop/binSeconds)
		for b := b0; b <= b1 && b < nbins; b++ {
			longActive[b] += overlap(r.start, r.stop, float64(b)*binSeconds, float64(b+1)*binSeconds)
		}
	}
	warns, err := core.DrainTopic(art.Broker, core.TopicWarnings)
	if err != nil {
		return rep, err
	}
	warnBins := make([]float64, nbins)
	for _, m := range warns {
		w := core.ParseWarning(m)
		b := int(w.At.Seconds() / binSeconds)
		if b >= 0 && b < nbins {
			warnBins[b]++
		}
	}
	rep.WarningsVsLongTasks = Pearson(warnBins, longActive)

	for p, s := range byPrefix {
		share := 0.0
		if totalLong > 0 {
			share = s / totalLong
		}
		rep.LongTaskPrefixes = append(rep.LongTaskPrefixes, PrefixShare{Prefix: p, Share: share, Seconds: s})
	}
	sort.Slice(rep.LongTaskPrefixes, func(i, j int) bool {
		return rep.LongTaskPrefixes[i].Seconds > rep.LongTaskPrefixes[j].Seconds
	})
	return rep, nil
}

// Render formats the report.
func (r CorrelationReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "correlations (%d bins of %.0fs):\n", r.NumBins, r.BinSeconds)
	fmt.Fprintf(&sb, "  warnings vs long-task activity (pearson):  %.3f\n", r.WarningsVsLongTasks)
	fmt.Fprintf(&sb, "  task duration vs output size (spearman):   %.3f\n", r.DurationVsOutputSize)
	sb.WriteString("  long-task time by category:\n")
	for i, p := range r.LongTaskPrefixes {
		if i == 6 {
			break
		}
		fmt.Fprintf(&sb, "    %-30s %5.1f%% (%.1fs)\n", p.Prefix, 100*p.Share, p.Seconds)
	}
	return sb.String()
}
