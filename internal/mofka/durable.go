package mofka

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"taskprov/internal/mochi/bedrock"
	"taskprov/internal/mofka/wal"
)

// Options configures a broker's durable backend. The zero value (no DataDir)
// is a purely in-memory broker, as before.
type Options struct {
	// DataDir roots the on-disk event log. Layout:
	//
	//	<DataDir>/topics/<name>/topic.json      topic configuration
	//	<DataDir>/topics/<name>/p<NNNN>/*.seg   per-partition WAL segments
	//	<DataDir>/cursors.json                  committed consumer cursors
	//
	// Opening a broker on an existing DataDir recovers every topic, event,
	// and cursor persisted there (truncating torn segment tails left by a
	// crash).
	DataDir string
	// WAL tunes the per-partition logs (segment size, fsync policy,
	// retention). Zero values take the wal package defaults.
	WAL wal.Options
	// ReadOnly opens the data directory for post-mortem analysis: events
	// replay into memory, but nothing on disk is appended, truncated, or
	// rewritten, and cursor commits stay in-memory only.
	ReadOnly bool
}

// NewDurableBroker builds a standalone broker whose partitions are backed by
// the segmented event log under opts.DataDir. If the directory already holds
// a log (from a previous run, clean or crashed), its topics, events, and
// consumer cursors are recovered before the broker is returned.
func NewDurableBroker(opts Options) (*Broker, error) {
	if opts.DataDir == "" {
		return nil, fmt.Errorf("mofka: NewDurableBroker needs Options.DataDir")
	}
	b := NewStandaloneBroker()
	if err := b.attachDataDir(opts); err != nil {
		return nil, err
	}
	return b, nil
}

// NewBrokerOptions builds a broker on a bedrock deployment's services, with
// an optional durable backend — the constructor cmd/mofkad uses.
func NewBrokerOptions(dep *bedrock.Deployment, opts Options) (*Broker, error) {
	b := NewBroker(dep)
	if opts.DataDir != "" {
		if err := b.attachDataDir(opts); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// OpenPostMortem opens a data directory for analysis without a live broker
// process: all topics and cursors replay into an in-memory broker, and the
// on-disk log is never modified. This is PERFRECUP's post-mortem loading
// mode.
func OpenPostMortem(dataDir string) (*Broker, error) {
	return NewDurableBroker(Options{DataDir: dataDir, ReadOnly: true})
}

// IsDataDir reports whether dir looks like a durable broker data directory.
func IsDataDir(dir string) bool {
	if st, err := os.Stat(filepath.Join(dir, "topics")); err == nil && st.IsDir() {
		return true
	}
	_, err := os.Stat(filepath.Join(dir, "cursors.json"))
	return err == nil
}

func topicDir(dataDir, name string) string {
	return filepath.Join(dataDir, "topics", name)
}

func partitionDir(dataDir, name string, index int) string {
	return filepath.Join(topicDir(dataDir, name), fmt.Sprintf("p%04d", index))
}

// attachDataDir wires the durable backend into a freshly built broker:
// loads persisted cursors, recovers every topic directory (config + WAL
// replay), and leaves writable logs attached for subsequent appends.
func (b *Broker) attachDataDir(opts Options) error {
	b.dataDir = opts.DataDir
	b.readOnly = opts.ReadOnly
	b.walOpts = opts.WAL
	b.walOpts.ReadOnly = opts.ReadOnly

	if !opts.ReadOnly {
		if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
			return fmt.Errorf("mofka: data dir: %w", err)
		}
	}
	cs, err := wal.OpenCursorStore(filepath.Join(opts.DataDir, "cursors.json"))
	if err != nil {
		return err
	}
	for key, next := range cs.All() {
		val, err := json.Marshal(next)
		if err != nil {
			return fmt.Errorf("mofka: recover cursor %s: %w", key, err)
		}
		b.meta.Put("cursor/"+key, val)
	}
	if !opts.ReadOnly {
		b.cursors = cs
	}

	topicsRoot := filepath.Join(opts.DataDir, "topics")
	entries, err := os.ReadDir(topicsRoot)
	if os.IsNotExist(err) {
		return nil // fresh data dir
	}
	if err != nil {
		return fmt.Errorf("mofka: scan topics: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if err := b.recoverTopic(e.Name()); err != nil {
			return err
		}
	}
	return nil
}

// recoverTopic rebuilds one topic from its on-disk directory: the config
// comes from topic.json, then each partition's WAL replays into the
// in-memory stores so the consumer API serves exactly the persisted stream.
func (b *Broker) recoverTopic(name string) error {
	cfgBytes, err := os.ReadFile(filepath.Join(topicDir(b.dataDir, name), "topic.json"))
	if err != nil {
		return fmt.Errorf("mofka: recover topic %s: %w", name, err)
	}
	var cfg TopicConfig
	if err := json.Unmarshal(cfgBytes, &cfg); err != nil {
		return fmt.Errorf("mofka: recover topic %s: corrupt topic.json: %w", name, err)
	}
	if cfg.Name != name {
		return fmt.Errorf("mofka: topic dir %q holds config for %q", name, cfg.Name)
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}

	t := &Topic{broker: b, cfg: cfg}
	for i := 0; i < cfg.Partitions; i++ {
		p := &Partition{
			topic: t,
			index: i,
			docs:  b.meta.Collection(fmt.Sprintf("topic/%s/p%04d", cfg.Name, i)),
		}
		p.cond = sync.NewCond(&p.mu)
		l, err := wal.Open(partitionDir(b.dataDir, name, i), b.walOpts)
		if err != nil {
			return fmt.Errorf("mofka: recover %s[%d]: %w", name, i, err)
		}
		var ingestErr error
		replayErr := l.Replay(0, func(_ uint64, rec wal.Record) bool {
			ingestErr = p.ingest(rec.Meta, rec.Data)
			return ingestErr == nil
		})
		if replayErr == nil {
			replayErr = ingestErr
		}
		if replayErr != nil {
			err := fmt.Errorf("mofka: replay %s[%d]: %w", name, i, replayErr)
			return errors.Join(err, l.Close())
		}
		if b.readOnly {
			// A read-only recovery never appends, but a failed close still
			// signals something wrong with the log files — surface it.
			if err := l.Close(); err != nil {
				return fmt.Errorf("mofka: close recovered log %s[%d]: %w", name, i, err)
			}
		} else {
			p.log = l
		}
		t.partitions = append(t.partitions, p)
	}
	b.meta.Put("topics/"+cfg.Name, cfgBytes)
	b.topics[cfg.Name] = t
	return nil
}

// ingest publishes one already-durable event into the in-memory stores
// (the WAL-replay path; no WAL append, no broadcast needed at recovery).
func (p *Partition) ingest(meta, data []byte) error {
	var region uint64
	if len(data) > 0 {
		region = uint64(p.topic.broker.data.CreateWrite(data))
	}
	env := envelope{Meta: meta, Region: region, Offset: 0, Size: int64(len(data))}
	doc, err := json.Marshal(&env)
	if err != nil {
		return fmt.Errorf("mofka: encode envelope: %w", err)
	}
	p.mu.Lock()
	p.docs.Store(doc)
	p.length++
	p.mu.Unlock()
	return nil
}

// persistTopic writes a new topic's config and opens its partition logs.
// Called under b.mu by CreateTopic on durable brokers.
func (b *Broker) persistTopic(t *Topic, cfgJSON []byte) error {
	name := t.cfg.Name
	if strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("%w: topic name %q not usable as a directory", ErrInvalidEvent, name)
	}
	dir := topicDir(b.dataDir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("mofka: topic dir %s: %w", name, err)
	}
	if err := atomicWriteFile(filepath.Join(dir, "topic.json"), cfgJSON); err != nil {
		return fmt.Errorf("mofka: persist topic %s: %w", name, err)
	}
	for _, p := range t.partitions {
		l, err := wal.Open(partitionDir(b.dataDir, name, p.index), b.walOpts)
		if err != nil {
			return fmt.Errorf("mofka: open wal %s[%d]: %w", name, p.index, err)
		}
		p.log = l
	}
	return nil
}

// atomicWriteFile installs data at path via temp file + fsync + rename.
func atomicWriteFile(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.Remove(tmp.Name()) }() // no-op after the rename
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
