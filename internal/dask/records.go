package dask

import "taskprov/internal/sim"

// TaskState is a scheduler- or worker-side task state, using Dask's names.
type TaskState string

// Scheduler-side task states.
const (
	StateReleased   TaskState = "released"
	StateWaiting    TaskState = "waiting"
	StateProcessing TaskState = "processing"
	StateMemory     TaskState = "memory"
	StateErred      TaskState = "erred"
	StateForgotten  TaskState = "forgotten"
)

// Worker-side task states.
const (
	WStateWaiting   TaskState = "waiting"
	WStateFetching  TaskState = "fetching"
	WStateReady     TaskState = "ready"
	WStateExecuting TaskState = "executing"
	WStateMemory    TaskState = "memory"
)

// TaskMeta is the static task information captured when a graph reaches the
// scheduler: the identifying fields the paper extracts "when tasks arrive at
// the scheduler" (§III-E1).
type TaskMeta struct {
	Key     TaskKey   `json:"key"`
	Prefix  string    `json:"prefix"`
	Group   string    `json:"group"`
	GraphID int       `json:"graph_id"`
	Deps    []TaskKey `json:"deps"`
	At      sim.Time  `json:"at"`
}

// Transition is one task state transition, with the location and stimulus,
// matching the paper's plugin capture ("task key, group, prefix, initial
// state, final state, timestamp, and the stimuli that triggered this
// transition").
type Transition struct {
	Key      TaskKey   `json:"key"`
	From     TaskState `json:"from"`
	To       TaskState `json:"to"`
	Stimulus string    `json:"stimulus"`
	Location string    `json:"location"` // "scheduler" or worker address
	At       sim.Time  `json:"at"`
}

// TaskExecution is the completion record a worker produces: where and when
// the task body ran ("the IP address of the worker where the task was
// executed, the thread ID, start and end times, and the size of the task
// result").
type TaskExecution struct {
	Key        TaskKey  `json:"key"`
	Worker     string   `json:"worker"` // worker address ip:port
	Hostname   string   `json:"hostname"`
	ThreadID   uint64   `json:"thread_id"`
	Start      sim.Time `json:"start"`
	Stop       sim.Time `json:"stop"`
	OutputSize int64    `json:"output_size"`
	GraphID    int      `json:"graph_id"`
	// Files records the PFS files this execution opened for writing and
	// their sizes once the body finished, sorted by path. Run resumption
	// replays these effects to rebuild the filesystem state a memoized
	// (not re-executed) task would otherwise have left behind.
	Files []FileEffect `json:"files,omitempty"`
}

// FileEffect is one write-side filesystem effect of a task execution: the
// path the body opened for writing and the file's size when the body
// finished.
type FileEffect struct {
	Path      string `json:"path"`
	SizeAfter int64  `json:"size_after"`
}

// Transfer is one dependency movement between workers (an "incoming
// communication" at the destination, the unit counted in Table I). With the
// proxy store enabled, transfers that resolved a pass-by-reference blob
// carry ViaProxy and the latency between first use (demand) and payload
// arrival.
type Transfer struct {
	Key      TaskKey  `json:"key"`
	From     string   `json:"from"` // source worker address
	To       string   `json:"to"`
	Bytes    int64    `json:"bytes"`
	Start    sim.Time `json:"start"`
	Stop     sim.Time `json:"stop"`
	SameNode bool     `json:"same_node"`
	// ViaProxy marks a transfer that fetched a proxy-store blob peer-to-peer
	// instead of a directly shipped dependency.
	ViaProxy bool `json:"via_proxy,omitempty"`
	// ResolveLatency is demand-to-arrival time for a proxied dependency: how
	// long the consumer waited between first needing the value and holding
	// it (connection setup + transfer, measured from lazy-resolution start).
	ResolveLatency sim.Time `json:"resolve_latency,omitempty"`
}

// Proxy-store operation names carried by ProxyEvent records.
const (
	ProxyOpPublish = "publish" // producer registered a blob
	ProxyOpResolve = "resolve" // consumer resolved a reference (hit)
	ProxyOpMiss    = "miss"    // reference dangled: blob reclaimed or absent
	ProxyOpFree    = "free"    // refcount drained or scheduler freed the blob
	ProxyOpReclaim = "reclaim" // owner died; blobs swept at eviction
	// ProxyOpDuplicate: a publish was rejected by the first-write-wins fence —
	// the losing attempt of a speculation race tried to displace the winner's
	// live blob.
	ProxyOpDuplicate = "duplicate"
)

// ProxyEvent is one pass-by-reference store operation, streamed to the
// proxy-store provenance topic: the per-blob story (publish, resolve, miss,
// free, reclaim) plus the store's resident footprint after the operation.
type ProxyEvent struct {
	Op     string  `json:"op"`
	Key    TaskKey `json:"key"`
	Worker string  `json:"worker"` // acting worker address ("scheduler" for frees/reclaims)
	Bytes  int64   `json:"bytes"`  // logical payload bytes of the blob
	// Resident is the store's total logical bytes after this operation — the
	// live resident-bytes lane is a running join of this field.
	Resident int64 `json:"resident"`
	// ResolveLatency mirrors the Transfer field for resolve operations.
	ResolveLatency sim.Time `json:"resolve_latency,omitempty"`
	At             sim.Time `json:"at"`
}

// WarningKind classifies runtime warnings scraped from worker/scheduler
// logs.
type WarningKind string

// Warning kinds the paper's Fig. 7 distinguishes.
const (
	WarnEventLoop WarningKind = "unresponsive_event_loop"
	WarnGC        WarningKind = "gc_collection"
)

// Failure/recovery warning kinds: every scheduler-side recovery action is
// emitted on the warnings topic so degraded runs carry their own recovery
// timeline in the provenance stream.
const (
	// WarnWorkerLost: the scheduler declared a worker dead after missed
	// heartbeats and evicted it from the SSG membership group.
	WarnWorkerLost WarningKind = "worker_lost"
	// WarnWorkerRejoined: a previously lost worker reconnected.
	WarnWorkerRejoined WarningKind = "worker_rejoined"
	// WarnTaskRescheduled: a processing task was pulled off a dead worker
	// and requeued.
	WarnTaskRescheduled WarningKind = "task_rescheduled"
	// WarnKeyRecomputed: an in-memory result lost its last replica and was
	// transitioned back to waiting for recomputation (whoHas shrank to
	// zero).
	WarnKeyRecomputed WarningKind = "key_recomputed"
	// WarnProducerDegraded: a Mofka producer ran degraded (buffering and
	// retrying) while the broker was unreachable, then recovered.
	WarnProducerDegraded WarningKind = "producer_degraded"
	// WarnBlobReclaimed: proxy-store blobs owned by a dead worker were
	// swept during eviction; dangling references miss and drive
	// recomputation.
	WarnBlobReclaimed WarningKind = "proxy_blob_reclaimed"
	// WarnSessionResumed: a new session incarnation resumed a crashed run
	// from its provenance, memoizing completed work. The event marks the
	// attempt boundary in the merged timeline.
	WarnSessionResumed WarningKind = "session_resumed"
)

// WarnCheckpointFailed: the session failed to write a frontier checkpoint.
// Not a recovery event — the run continues; a later resume just replays a
// longer WAL tail.
const WarnCheckpointFailed WarningKind = "checkpoint_failed"

// IsRecovery reports whether the kind is one of the failure/recovery events
// (as opposed to the paper's runtime-pathology warnings).
func (k WarningKind) IsRecovery() bool {
	switch k {
	case WarnWorkerLost, WarnWorkerRejoined, WarnTaskRescheduled, WarnKeyRecomputed, WarnProducerDegraded, WarnBlobReclaimed, WarnSessionResumed:
		return true
	}
	return false
}

// Warning is one runtime warning occurrence.
type Warning struct {
	Kind     WarningKind `json:"kind"`
	Worker   string      `json:"worker"`
	Hostname string      `json:"hostname"`
	At       sim.Time    `json:"at"`
	Duration sim.Time    `json:"duration"` // how long the loop was blocked / GC took
	Message  string      `json:"message"`
}

// WorkerMetrics is a heartbeat sample.
type WorkerMetrics struct {
	Worker    string   `json:"worker"`
	At        sim.Time `json:"at"`
	Memory    int64    `json:"memory"`
	Executing int      `json:"executing"`
	Ready     int      `json:"ready"`
}

// StealEvent records one successful work-stealing move.
type StealEvent struct {
	Key    TaskKey  `json:"key"`
	Victim string   `json:"victim"`
	Thief  string   `json:"thief"`
	At     sim.Time `json:"at"`
}

// Speculation event kinds carried by SpeculationEvent records.
const (
	// SpecLaunched: the scheduler dispatched a duplicate attempt of a
	// flagged straggling task to a second worker.
	SpecLaunched = "launched"
	// SpecWon: one attempt of a speculated task completed first and its
	// output became the task's result.
	SpecWon = "won"
	// SpecCancelled: the losing attempt was cancelled; its output (if the
	// cancel raced completion) is fenced off and never becomes visible.
	SpecCancelled = "cancelled"
	// SpecFailed: a speculative attempt erred or its worker died before
	// either attempt finished; the primary attempt continues alone.
	SpecFailed = "failed"
	// SpecPromoted: the primary attempt's worker died while a duplicate was
	// in flight; the duplicate was promoted to sole attempt.
	SpecPromoted = "promoted"
	// SpecRetry: one RPC retry under the adaptive retry policy (produced by
	// the session's retry observer, not the scheduler).
	SpecRetry = "retry"
	// SpecBudgetExhausted: a retry was denied because the per-run retry
	// budget drained; the call surfaced a clean error instead of storming.
	SpecBudgetExhausted = "budget_exhausted"
)

// SpeculationEvent is one speculation or retry decision, streamed to the
// speculation provenance topic: why a duplicate was launched, which attempt
// won, what the loser wasted, and every adaptive-retry backoff.
type SpeculationEvent struct {
	Kind string  `json:"kind"`
	Key  TaskKey `json:"key,omitempty"`
	// Primary and Duplicate are the two attempts' worker addresses (for
	// retry records, Primary holds the destination address instead).
	Primary   string `json:"primary,omitempty"`
	Duplicate string `json:"duplicate,omitempty"`
	// Winner is the completing worker for "won" events.
	Winner string `json:"winner,omitempty"`
	// Wasted is the virtual time the cancelled losing attempt had been
	// running — the wasted-speculative-seconds live lane sums this field.
	Wasted sim.Time `json:"wasted,omitempty"`
	// Attempt is the retry ordinal for "retry" records.
	Attempt int      `json:"attempt,omitempty"`
	Detail  string   `json:"detail,omitempty"`
	At      sim.Time `json:"at"`
}

// SchedulerPlugin observes scheduler-side events, like a
// distributed.SchedulerPlugin.
type SchedulerPlugin interface {
	TaskAdded(meta TaskMeta)
	SchedulerTransition(t Transition)
	GraphDone(graphID int, at sim.Time)
	Stolen(ev StealEvent)
	Speculation(ev SpeculationEvent)
}

// WorkerPlugin observes worker-side events, like a distributed.WorkerPlugin.
type WorkerPlugin interface {
	WorkerTransition(t Transition)
	TaskExecuted(rec TaskExecution)
	TransferReceived(rec Transfer)
	WorkerWarning(w Warning)
	Heartbeat(m WorkerMetrics)
	ProxyEvent(ev ProxyEvent)
}

// NopSchedulerPlugin is an embeddable no-op SchedulerPlugin.
type NopSchedulerPlugin struct{}

// TaskAdded implements SchedulerPlugin.
func (NopSchedulerPlugin) TaskAdded(TaskMeta) {}

// SchedulerTransition implements SchedulerPlugin.
func (NopSchedulerPlugin) SchedulerTransition(Transition) {}

// GraphDone implements SchedulerPlugin.
func (NopSchedulerPlugin) GraphDone(int, sim.Time) {}

// Stolen implements SchedulerPlugin.
func (NopSchedulerPlugin) Stolen(StealEvent) {}

// Speculation implements SchedulerPlugin.
func (NopSchedulerPlugin) Speculation(SpeculationEvent) {}

// NopWorkerPlugin is an embeddable no-op WorkerPlugin.
type NopWorkerPlugin struct{}

// WorkerTransition implements WorkerPlugin.
func (NopWorkerPlugin) WorkerTransition(Transition) {}

// TaskExecuted implements WorkerPlugin.
func (NopWorkerPlugin) TaskExecuted(TaskExecution) {}

// TransferReceived implements WorkerPlugin.
func (NopWorkerPlugin) TransferReceived(Transfer) {}

// WorkerWarning implements WorkerPlugin.
func (NopWorkerPlugin) WorkerWarning(Warning) {}

// Heartbeat implements WorkerPlugin.
func (NopWorkerPlugin) Heartbeat(WorkerMetrics) {}

// ProxyEvent implements WorkerPlugin.
func (NopWorkerPlugin) ProxyEvent(ProxyEvent) {}
