package dask

import (
	"fmt"
	"testing"

	"taskprov/internal/sim"
)

// wideGraph builds two layers of cross-dependent tasks plus one sink, sized
// so a mid-run worker crash always catches tasks processing and finished
// layer-1 outputs still needed by layer 2.
func wideGraph(id, width int) *Graph {
	g := NewGraph(id)
	var srcs []TaskKey
	for i := 0; i < width; i++ {
		k := TaskKey(fmt.Sprintf("src-%02d", i))
		g.Add(&TaskSpec{Key: k, EstDuration: sim.Seconds(1), OutputSize: 1 << 20})
		srcs = append(srcs, k)
	}
	var mids []TaskKey
	for i := 0; i < width; i++ {
		k := TaskKey(fmt.Sprintf("mid-%02d", i))
		deps := []TaskKey{srcs[i], srcs[(i+1)%width], srcs[(i+3)%width]}
		g.Add(&TaskSpec{Key: k, Deps: deps, EstDuration: sim.Milliseconds(1500), OutputSize: 1 << 18})
		mids = append(mids, k)
	}
	g.Add(&TaskSpec{Key: "sink-00", Deps: mids, EstDuration: sim.Milliseconds(100), OutputSize: 256})
	return g
}

// warningKinds collects the distinct warning kinds observed.
func warningKinds(warns []Warning) map[WarningKind]int {
	kinds := make(map[WarningKind]int)
	for _, w := range warns {
		kinds[w.Kind]++
	}
	return kinds
}

// TestWorkerCrashRecovers is the tentpole recovery scenario: one of four
// workers dies mid-run, the scheduler declares it dead after WorkerTTL,
// reschedules its processing tasks, recomputes its lost in-memory keys, and
// the graph still completes correctly.
func TestWorkerCrashRecovers(t *testing.T) {
	env := newEnv(42, smallCfg())
	victim := 2
	// Workers connect within [0.5s, 3s]; the client submits right after. At
	// 4.2s layer 1 is partly done (outputs live on the victim) and tasks are
	// processing everywhere.
	env.k.At(sim.Seconds(4.2), func() { env.c.KillWorker(victim) })
	g := wideGraph(1, 16)
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
		if e := cl.GraphError(1); e != "" {
			t.Errorf("graph erred: %s", e)
		}
	})

	s := env.c.Scheduler()
	if s.LostWorkers() != 1 {
		t.Fatalf("LostWorkers = %d, want 1", s.LostWorkers())
	}
	if !s.HasInMemory("sink-00") {
		t.Fatal("sink result missing")
	}
	// Every task ran at least once; recomputed keys ran more than once.
	ran := make(map[TaskKey]int)
	for _, e := range env.rec.execs {
		ran[e.Key]++
	}
	for _, k := range g.Keys() {
		if ran[k] == 0 {
			t.Errorf("task %s never executed", k)
		}
	}
	kinds := warningKinds(env.rec.warnings)
	if kinds[WarnWorkerLost] != 1 {
		t.Fatalf("worker_lost warnings = %d, want 1", kinds[WarnWorkerLost])
	}
	if kinds[WarnTaskRescheduled] == 0 {
		t.Error("no task_rescheduled warnings")
	}
	// The dead worker never executes anything after the kill.
	addr := env.c.Workers()[victim].Addr()
	for _, e := range env.rec.execs {
		if e.Worker == addr && e.Stop > sim.Seconds(4.2) {
			t.Fatalf("dead worker reported execution of %s stopping at %v", e.Key, e.Stop)
		}
	}
}

// TestLostKeyRecomputed crashes the worker holding a finished key that a
// still-running consumer has not yet released; the scheduler must recompute
// it rather than deadlock.
func TestLostKeyRecomputed(t *testing.T) {
	env := newEnv(7, smallCfg())
	env.k.At(sim.Seconds(4.2), func() { env.c.KillWorker(1) })
	g := wideGraph(1, 16)
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
	})
	kinds := warningKinds(env.rec.warnings)
	if kinds[WarnKeyRecomputed] == 0 {
		t.Fatal("no key_recomputed warnings; crash did not lose any needed key")
	}
	ran := make(map[TaskKey]int)
	recomputed := 0
	for _, e := range env.rec.execs {
		ran[e.Key]++
	}
	for _, n := range ran {
		if n > 1 {
			recomputed++
		}
	}
	if recomputed == 0 {
		t.Fatal("key_recomputed warned but no task executed twice")
	}
	if !env.c.Scheduler().HasInMemory("sink-00") {
		t.Fatal("sink result missing")
	}
}

// TestWorkerRestartRejoins kills a worker and boots a replacement process
// before the run ends: the scheduler evicts the old incarnation, admits the
// new one, and the rejoined worker executes work again.
func TestWorkerRestartRejoins(t *testing.T) {
	env := newEnv(11, smallCfg())
	victim := 0
	env.k.At(sim.Seconds(4), func() { env.c.KillWorker(victim) })
	env.k.At(sim.Seconds(9), func() { env.c.RestartWorker(victim) })
	g := wideGraph(1, 24)
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
		if e := cl.GraphError(1); e != "" {
			t.Errorf("graph erred: %s", e)
		}
	})
	kinds := warningKinds(env.rec.warnings)
	if kinds[WarnWorkerLost] != 1 {
		t.Fatalf("worker_lost = %d, want 1", kinds[WarnWorkerLost])
	}
	if kinds[WarnWorkerRejoined] != 1 {
		t.Fatalf("worker_rejoined = %d, want 1", kinds[WarnWorkerRejoined])
	}
	addr := env.c.Workers()[victim].Addr()
	rejoinedRan := false
	for _, e := range env.rec.execs {
		if e.Worker == addr && e.Start > sim.Seconds(9) {
			rejoinedRan = true
			break
		}
	}
	if !rejoinedRan {
		t.Error("restarted worker never executed a task after rejoining")
	}
}

// TestRepeatedCrashMarksTaskErred pins a task to one worker and kills that
// worker every time the task lands on it; past AllowedFailures the task is
// marked erred instead of being rescheduled forever.
func TestRepeatedCrashMarksTaskErred(t *testing.T) {
	cfg := smallCfg()
	cfg.AllowedFailures = 1
	env := newEnv(3, cfg)
	victim := 1
	addr := workerAddr(env.c.Workers()[victim].Hostname(), victim)

	g := NewGraph(1)
	g.Add(&TaskSpec{
		Key: "pinned-01", EstDuration: sim.Seconds(30), OutputSize: 8,
		Restrictions: []string{addr},
	})
	// Kill the pinned worker twice, restarting in between so the task can be
	// reassigned to it (suspicious = 2 > AllowedFailures = 1 -> erred).
	env.k.At(sim.Seconds(4), func() { env.c.KillWorker(victim) })
	env.k.At(sim.Seconds(9), func() { env.c.RestartWorker(victim) })
	env.k.At(sim.Seconds(14), func() { env.c.KillWorker(victim) })
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
		if cl.GraphError(1) == "" {
			t.Error("graph error not surfaced for repeatedly crashed task")
		}
	})
	if st := env.c.Scheduler().TaskState("pinned-01"); st != StateErred {
		t.Fatalf("pinned task state = %s, want erred", st)
	}
}

// TestCrashWithStealingRetries runs the crash scenario with work stealing
// and task retries active together: steal bookkeeping must survive the
// eviction (no negative in-flight counters, no lost tasks).
func TestCrashWithStealingRetries(t *testing.T) {
	cfg := smallCfg()
	cfg.WorkStealing = true
	env := newEnv(5, cfg)
	env.k.At(sim.Seconds(4.5), func() { env.c.KillWorker(3) })

	attempts := make(map[string]int)
	g := NewGraph(1)
	var deps []TaskKey
	for i := 0; i < 24; i++ {
		i := i
		k := TaskKey(fmt.Sprintf("flaky-%02d", i))
		deps = append(deps, k)
		g.Add(&TaskSpec{
			Key: k, OutputSize: 1 << 16, MaxRetries: 2,
			Run: func(ctx *TaskContext) {
				attempts[fmt.Sprint(i)]++
				ctx.Compute(sim.Milliseconds(800))
				if attempts[fmt.Sprint(i)] == 1 && i%6 == 0 {
					ctx.Fail("transient")
				}
			},
		})
	}
	g.Add(&TaskSpec{Key: "gather-00", Deps: deps, EstDuration: sim.Milliseconds(50), OutputSize: 64})
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
		if e := cl.GraphError(1); e != "" {
			t.Errorf("graph erred: %s", e)
		}
	})
	if !env.c.Scheduler().HasInMemory("gather-00") {
		t.Fatal("gather result missing")
	}
	for i := 0; i < 24; i += 6 {
		if attempts[fmt.Sprint(i)] < 2 {
			t.Errorf("flaky-%02d retried %d times, want >= 2", i, attempts[fmt.Sprint(i)])
		}
	}
}

// TestCrashPropertyResultsMatchBaseline is the recovery property test: for
// random DAGs, a single worker crash at a random mid-run time must leave the
// final results identical to the crash-free baseline — same leaves in
// memory, every task executed, no graph error.
func TestCrashPropertyResultsMatchBaseline(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		seed := uint64(9000 + trial)
		gen := sim.NewRNG(seed).Split("crash")
		layers, width := gen.IntBetween(3, 6), 8

		type outcome struct {
			leaves map[TaskKey]bool
			err    string
		}
		run := func(kill bool) outcome {
			env := newEnv(seed, smallCfg())
			g := randomDAG(1, sim.NewRNG(seed).Split("dag"), layers, width)
			if kill {
				victim := gen.Intn(len(env.c.Workers()))
				at := sim.Seconds(gen.Uniform(3.5, 5.5))
				env.k.At(at, func() { env.c.KillWorker(victim) })
			}
			var errMsg string
			env.runWorkflow(func(p *sim.Proc, cl *Client) {
				cl.SubmitAndWait(p, g)
				errMsg = cl.GraphError(1)
			})
			o := outcome{leaves: make(map[TaskKey]bool), err: errMsg}
			for _, k := range g.Leaves() {
				o.leaves[k] = env.c.Scheduler().HasInMemory(k)
			}
			return o
		}

		base := run(false)
		crashed := run(true)
		if crashed.err != "" {
			t.Fatalf("seed %d: crashed run erred: %s", seed, crashed.err)
		}
		if len(base.leaves) != len(crashed.leaves) {
			t.Fatalf("seed %d: leaf sets differ", seed)
		}
		for k, inMem := range base.leaves {
			if !inMem {
				t.Fatalf("seed %d: baseline leaf %s not in memory", seed, k)
			}
			if !crashed.leaves[k] {
				t.Fatalf("seed %d: leaf %s lost after crash recovery", seed, k)
			}
		}
	}
}

// TestCrashDeterminism re-runs one crash scenario under the same seed and
// requires the identical warning (failure/recovery) sequence.
func TestCrashDeterminism(t *testing.T) {
	run := func() []Warning {
		env := newEnv(13, smallCfg())
		env.k.At(sim.Seconds(4.2), func() { env.c.KillWorker(2) })
		g := wideGraph(1, 16)
		env.runWorkflow(func(p *sim.Proc, cl *Client) {
			cl.SubmitAndWait(p, g)
		})
		return env.rec.warnings
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("warning counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("warning %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
