package darshan

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Op is a DXT operation type.
type Op uint8

// DXT operation types.
const (
	OpRead Op = iota
	OpWrite
)

// String returns "read" or "write".
func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Segment is one DXT trace entry: a single POSIX read or write. TID is this
// reproduction of the paper's extension — the pthread ID of the issuing
// thread, later joined against the WMS's thread-to-task mapping.
type Segment struct {
	Op     Op
	TID    uint64
	Offset int64
	Length int64
	Start  float64 // seconds since workflow start
	End    float64
}

// JobHeader is the per-process log header.
type JobHeader struct {
	JobID          string
	Rank           int
	Hostname       string
	Exe            string
	StartTime      float64
	EndTime        float64
	DXTEnabled     bool
	DXTDropped     int64
	RecordsDropped int64
	Partial        bool // true when instrumentation buffers dropped data
}

// Log is a parsed (or about-to-be-written) Darshan log for one process.
type Log struct {
	Job     JobHeader
	Records []FileRecord
	Heatmap *Heatmap // nil when the HEATMAP module was disabled
}

// Record returns the record for path, if present.
func (l *Log) Record(path string) (FileRecord, bool) {
	for _, r := range l.Records {
		if r.Path == path {
			return r, true
		}
	}
	return FileRecord{}, false
}

// TotalOps sums reads+writes across all records from the POSIX counters
// (unaffected by DXT truncation).
func (l *Log) TotalOps() int64 {
	var n int64
	for _, r := range l.Records {
		n += r.Counters.Reads + r.Counters.Writes
	}
	return n
}

// TotalDXTSegments counts recorded DXT trace entries. This is the figure an
// analysis pipeline that counts I/O operations from DXT traces observes —
// and therefore the one that is incomplete when trace buffers overflow, as
// in the paper's ResNet152 runs (footnote 9).
func (l *Log) TotalDXTSegments() int64 {
	var n int64
	for _, r := range l.Records {
		n += int64(len(r.DXT))
	}
	return n
}

// ---- binary format ----
//
// Mirrors the spirit of the real Darshan format: magic + version header,
// length-prefixed strings, fixed-width counters, then DXT segment arrays.
// All integers are little-endian.

var logMagic = [4]byte{'D', 'S', 'H', 'N'}

const logVersion = uint32(2)

// ErrBadLog reports a corrupt or foreign file.
var ErrBadLog = errors.New("darshan: not a darshan log")

type countingWriter struct {
	w   *bufio.Writer
	err error
}

func (cw *countingWriter) u8(v uint8) {
	if cw.err == nil {
		cw.err = cw.w.WriteByte(v)
	}
}
func (cw *countingWriter) u32(v uint32) {
	if cw.err == nil {
		cw.err = binary.Write(cw.w, binary.LittleEndian, v)
	}
}
func (cw *countingWriter) u64(v uint64) {
	if cw.err == nil {
		cw.err = binary.Write(cw.w, binary.LittleEndian, v)
	}
}
func (cw *countingWriter) i64(v int64)   { cw.u64(uint64(v)) }
func (cw *countingWriter) f64(v float64) { cw.u64(math.Float64bits(v)) }
func (cw *countingWriter) str(s string) {
	cw.u32(uint32(len(s)))
	if cw.err == nil {
		_, cw.err = cw.w.WriteString(s)
	}
}
func (cw *countingWriter) bool(b bool) {
	if b {
		cw.u8(1)
	} else {
		cw.u8(0)
	}
}

// Write serializes the log in the binary format. It returns the first
// encoding error encountered.
func (l *Log) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}
	if _, err := bw.Write(logMagic[:]); err != nil {
		return err
	}
	cw.u32(logVersion)
	cw.str(l.Job.JobID)
	cw.i64(int64(l.Job.Rank))
	cw.str(l.Job.Hostname)
	cw.str(l.Job.Exe)
	cw.f64(l.Job.StartTime)
	cw.f64(l.Job.EndTime)
	cw.bool(l.Job.DXTEnabled)
	cw.i64(l.Job.DXTDropped)
	cw.i64(l.Job.RecordsDropped)
	cw.bool(l.Job.Partial)
	if l.Heatmap != nil {
		cw.bool(true)
		cw.f64(l.Heatmap.BinSeconds)
		cw.u32(uint32(len(l.Heatmap.ReadBytes)))
		for _, v := range l.Heatmap.ReadBytes {
			cw.i64(v)
		}
		for _, v := range l.Heatmap.WriteBytes {
			cw.i64(v)
		}
	} else {
		cw.bool(false)
	}
	cw.u32(uint32(len(l.Records)))
	for _, rec := range l.Records {
		cw.str(rec.Path)
		c := rec.Counters
		for _, v := range []int64{
			c.Opens, c.Reads, c.Writes, c.BytesRead, c.BytesWritten,
			c.MaxByteRead, c.MaxByteWritten,
		} {
			cw.i64(v)
		}
		for _, v := range []float64{
			c.ReadTime, c.WriteTime, c.MetaTime,
			c.OpenStart, c.CloseEnd, c.ReadStart, c.ReadEnd, c.WriteStart, c.WriteEnd,
		} {
			cw.f64(v)
		}
		for _, v := range c.SizeHistRead {
			cw.i64(v)
		}
		for _, v := range c.SizeHistWrite {
			cw.i64(v)
		}
		cw.u32(uint32(len(rec.DXT)))
		for _, s := range rec.DXT {
			cw.u8(uint8(s.Op))
			cw.u64(s.TID)
			cw.i64(s.Offset)
			cw.i64(s.Length)
			cw.f64(s.Start)
			cw.f64(s.End)
		}
	}
	if cw.err != nil {
		return cw.err
	}
	return bw.Flush()
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (rd *reader) u8() uint8 {
	if rd.err != nil {
		return 0
	}
	b, err := rd.r.ReadByte()
	rd.err = err
	return b
}
func (rd *reader) u32() uint32 {
	if rd.err != nil {
		return 0
	}
	var v uint32
	rd.err = binary.Read(rd.r, binary.LittleEndian, &v)
	return v
}
func (rd *reader) u64() uint64 {
	if rd.err != nil {
		return 0
	}
	var v uint64
	rd.err = binary.Read(rd.r, binary.LittleEndian, &v)
	return v
}
func (rd *reader) i64() int64   { return int64(rd.u64()) }
func (rd *reader) f64() float64 { return math.Float64frombits(rd.u64()) }
func (rd *reader) str() string {
	n := rd.u32()
	if rd.err != nil {
		return ""
	}
	if n > 1<<20 {
		rd.err = fmt.Errorf("%w: oversized string (%d)", ErrBadLog, n)
		return ""
	}
	b := make([]byte, n)
	_, rd.err = io.ReadFull(rd.r, b)
	return string(b)
}
func (rd *reader) bool() bool { return rd.u8() != 0 }

// maxRecords guards against corrupt record counts during parsing.
const maxRecords = 1 << 22

// ReadLog parses a binary log written by WriteTo.
func ReadLog(r io.Reader) (*Log, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadLog, err)
	}
	if magic != logMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadLog, magic[:])
	}
	rd := &reader{r: br}
	if v := rd.u32(); v != logVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadLog, v)
	}
	l := &Log{}
	l.Job.JobID = rd.str()
	l.Job.Rank = int(rd.i64())
	l.Job.Hostname = rd.str()
	l.Job.Exe = rd.str()
	l.Job.StartTime = rd.f64()
	l.Job.EndTime = rd.f64()
	l.Job.DXTEnabled = rd.bool()
	l.Job.DXTDropped = rd.i64()
	l.Job.RecordsDropped = rd.i64()
	l.Job.Partial = rd.bool()
	if rd.bool() {
		h := &Heatmap{BinSeconds: rd.f64()}
		nb := rd.u32()
		if nb > maxRecords {
			return nil, fmt.Errorf("%w: implausible heatmap bins %d", ErrBadLog, nb)
		}
		h.ReadBytes = make([]int64, nb)
		h.WriteBytes = make([]int64, nb)
		for i := range h.ReadBytes {
			h.ReadBytes[i] = rd.i64()
		}
		for i := range h.WriteBytes {
			h.WriteBytes[i] = rd.i64()
		}
		l.Heatmap = h
	}
	nrec := rd.u32()
	if nrec > maxRecords {
		return nil, fmt.Errorf("%w: implausible record count %d", ErrBadLog, nrec)
	}
	for i := uint32(0); i < nrec && rd.err == nil; i++ {
		var rec FileRecord
		rec.Path = rd.str()
		c := &rec.Counters
		c.Opens = rd.i64()
		c.Reads = rd.i64()
		c.Writes = rd.i64()
		c.BytesRead = rd.i64()
		c.BytesWritten = rd.i64()
		c.MaxByteRead = rd.i64()
		c.MaxByteWritten = rd.i64()
		c.ReadTime = rd.f64()
		c.WriteTime = rd.f64()
		c.MetaTime = rd.f64()
		c.OpenStart = rd.f64()
		c.CloseEnd = rd.f64()
		c.ReadStart = rd.f64()
		c.ReadEnd = rd.f64()
		c.WriteStart = rd.f64()
		c.WriteEnd = rd.f64()
		for j := range c.SizeHistRead {
			c.SizeHistRead[j] = rd.i64()
		}
		for j := range c.SizeHistWrite {
			c.SizeHistWrite[j] = rd.i64()
		}
		nseg := rd.u32()
		if nseg > maxRecords {
			return nil, fmt.Errorf("%w: implausible segment count %d", ErrBadLog, nseg)
		}
		for j := uint32(0); j < nseg && rd.err == nil; j++ {
			rec.DXT = append(rec.DXT, Segment{
				Op:     Op(rd.u8()),
				TID:    rd.u64(),
				Offset: rd.i64(),
				Length: rd.i64(),
				Start:  rd.f64(),
				End:    rd.f64(),
			})
		}
		l.Records = append(l.Records, rec)
	}
	if rd.err != nil {
		return nil, fmt.Errorf("darshan: read log: %w", rd.err)
	}
	return l, nil
}
