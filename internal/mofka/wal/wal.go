// Package wal is a durable, segment-based, append-only event log: the
// on-disk backend behind Mofka partitions. Records are length-prefixed and
// CRC32-C-checked, appends are batched with a configurable fsync policy,
// segments rotate at a size threshold with count/byte/age-based retention,
// and opening a log recovers from crashes by truncating a torn tail and
// rebuilding the next append offset from what survives on disk.
//
// One Log corresponds to one Mofka partition: offsets are dense from the
// first retained record and equal the partition's event IDs, so a replayed
// log reconstructs the exact event stream a live broker served.
package wal

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy controls when appended batches are fsynced to disk.
type SyncPolicy int

const (
	// SyncBatch fsyncs after every appended batch: a flushed producer batch
	// is crash-durable when AppendBatch returns. The default.
	SyncBatch SyncPolicy = iota
	// SyncInterval flushes every batch to the OS but fsyncs at most once per
	// SyncEvery (amortized durability: a crash can lose the last interval).
	SyncInterval
	// SyncNever leaves syncing to the OS page cache (and Close/Sync calls).
	// Fastest; a machine crash can lose recent batches, a process crash
	// cannot (data is flushed to the kernel on every batch).
	SyncNever
)

// ParseSyncPolicy maps the CLI spellings (batch|interval|never) to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "batch", "":
		return SyncBatch, nil
	case "interval":
		return SyncInterval, nil
	case "never", "none":
		return SyncNever, nil
	}
	return SyncBatch, fmt.Errorf("wal: unknown sync policy %q (want batch|interval|never)", s)
}

// Retention bounds how many closed segments are kept. Zero values mean
// unlimited; the active segment is never deleted.
type Retention struct {
	// MaxSegments caps the total number of segments (including active).
	MaxSegments int
	// MaxBytes caps the total on-disk size across segments.
	MaxBytes int64
	// MaxAge drops closed segments whose newest record is older than this.
	MaxAge time.Duration
}

// Options tunes a log. The zero value is usable: 64 MiB segments, SyncBatch,
// unlimited retention.
type Options struct {
	// SegmentBytes rotates the active segment once it reaches this size.
	// Default 64 MiB.
	SegmentBytes int64
	// Sync selects the fsync policy (default SyncBatch).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval period (default 100ms).
	SyncEvery time.Duration
	// Retention bounds segment count/bytes/age (default: keep everything).
	Retention Retention
	// MaxRecordBytes is the framing sanity bound (default 64 MiB). Records
	// larger than this are rejected on append and treated as corruption on
	// read.
	MaxRecordBytes int
	// ReadOnly opens the log for replay only: a torn tail is skipped but NOT
	// truncated on disk, and appends fail. Post-mortem analysis uses this so
	// inspection never mutates the evidence.
	ReadOnly bool
}

func (o *Options) setDefaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = 64 << 20
	}
}

const segSuffix = ".seg"

// segment is one closed or active log file. base is the offset of its first
// record; records and size are exact (rebuilt by the open-time scan).
type segment struct {
	base    uint64
	path    string
	records uint64
	size    int64
	mtime   time.Time
}

// Log is a segmented append-only record log rooted at one directory. All
// methods are safe for concurrent use; appends are serialized.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	segs     []segment // ordered by base; last is active (when writable)
	active   *os.File
	w        *bufio.Writer
	next     uint64 // offset the next appended record receives
	first    uint64 // offset of the oldest retained record
	torn     int64  // bytes discarded (or skipped, read-only) at open
	lastSync time.Time
	closed   bool
}

// Open opens (creating if needed) the log in dir, recovering from any torn
// tail left by a crash: the newest segment is scanned record-by-record and
// truncated at the last valid frame, and the next append offset is rebuilt
// from the surviving records.
func Open(dir string, opts Options) (*Log, error) {
	opts.setDefaults()
	l := &Log{dir: dir, opts: opts}
	if !opts.ReadOnly {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("wal: open %s: %w", dir, err)
		}
	}
	if err := l.recover(); err != nil {
		return nil, err
	}
	if !opts.ReadOnly {
		if err := l.openActive(); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// recover enumerates segments, validates them, truncates a torn tail (unless
// read-only), and computes first/next offsets.
func (l *Log) recover() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		if os.IsNotExist(err) && l.opts.ReadOnly {
			return nil // empty log
		}
		return fmt.Errorf("wal: scan %s: %w", l.dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil {
			continue // not a segment file
		}
		info, err := e.Info()
		if err != nil {
			return fmt.Errorf("wal: stat %s: %w", name, err)
		}
		l.segs = append(l.segs, segment{
			base:  base,
			path:  filepath.Join(l.dir, name),
			size:  info.Size(),
			mtime: info.ModTime(),
		})
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].base < l.segs[j].base })
	for i := range l.segs {
		s := &l.segs[i]
		last := i == len(l.segs)-1
		records, validSize, err := l.scanSegment(s.path, last)
		if err != nil {
			return err
		}
		if validSize < s.size {
			// Torn tail of the newest segment: a crash interrupted the last
			// append. Drop the partial frame so the log ends on a record
			// boundary.
			l.torn += s.size - validSize
			if !l.opts.ReadOnly {
				if err := os.Truncate(s.path, validSize); err != nil {
					return fmt.Errorf("wal: truncate torn tail of %s: %w", s.path, err)
				}
			}
			s.size = validSize
		}
		s.records = records
		if i == 0 {
			l.first = s.base
		}
		l.next = s.base + s.records
	}
	return nil
}

// scanSegment walks a segment's frames, returning the record count and the
// byte length of the valid prefix. A torn frame is tolerated only in the
// newest segment (tail=true); elsewhere it is interior corruption.
func (l *Log) scanSegment(path string, tail bool) (records uint64, validSize int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: open segment: %w", err)
	}
	defer func() { _ = f.Close() }() // read-only open
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		_, n, err := readRecord(r, l.opts.MaxRecordBytes)
		if err == io.EOF {
			return records, validSize, nil
		}
		if err != nil {
			if tail {
				return records, validSize, nil // torn tail, caller truncates
			}
			return 0, 0, corruptAt(path, validSize, err)
		}
		records++
		validSize += n
	}
}

// openActive positions the writer at the newest segment, starting a fresh
// one when the log is empty or the newest is already over the size limit.
func (l *Log) openActive() error {
	if len(l.segs) == 0 || l.segs[len(l.segs)-1].size >= l.opts.SegmentBytes {
		return l.rotateLocked()
	}
	s := &l.segs[len(l.segs)-1]
	f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopen active segment: %w", err)
	}
	l.active = f
	l.w = bufio.NewWriterSize(f, 1<<20)
	return nil
}

// rotateLocked closes the active segment and starts a new one based at the
// next offset, then applies retention. Callers hold l.mu (or are inside
// Open, before the log is shared).
func (l *Log) rotateLocked() error {
	if l.active != nil {
		if err := l.w.Flush(); err != nil {
			return fmt.Errorf("wal: flush on rotate: %w", err)
		}
		if err := l.active.Sync(); err != nil {
			return fmt.Errorf("wal: sync on rotate: %w", err)
		}
		if err := l.active.Close(); err != nil {
			return fmt.Errorf("wal: close on rotate: %w", err)
		}
		l.segs[len(l.segs)-1].mtime = time.Now()
	}
	path := filepath.Join(l.dir, fmt.Sprintf("%020d%s", l.next, segSuffix))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	l.active = f
	l.w = bufio.NewWriterSize(f, 1<<20)
	l.segs = append(l.segs, segment{base: l.next, path: path, mtime: time.Now()})
	l.applyRetentionLocked()
	return nil
}

// applyRetentionLocked deletes the oldest closed segments that exceed the
// retention bounds. The active segment is never deleted, so at least the
// newest data always survives.
func (l *Log) applyRetentionLocked() {
	ret := l.opts.Retention
	if ret.MaxSegments <= 0 && ret.MaxBytes <= 0 && ret.MaxAge <= 0 {
		return
	}
	total := int64(0)
	for _, s := range l.segs {
		total += s.size
	}
	for len(l.segs) > 1 {
		drop := false
		oldest := l.segs[0]
		if ret.MaxSegments > 0 && len(l.segs) > ret.MaxSegments {
			drop = true
		}
		if ret.MaxBytes > 0 && total > ret.MaxBytes {
			drop = true
		}
		if ret.MaxAge > 0 && time.Since(oldest.mtime) > ret.MaxAge {
			drop = true
		}
		if !drop {
			return
		}
		_ = os.Remove(oldest.path) // retention is best-effort
		total -= oldest.size
		l.segs = l.segs[1:]
		l.first = l.segs[0].base
	}
}

// AppendBatch appends records as one batch, returning the offset assigned to
// the first record (subsequent records take consecutive offsets). Durability
// follows the configured sync policy.
func (l *Log) AppendBatch(recs []Record) (first uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: %s: log closed", l.dir)
	}
	if l.opts.ReadOnly {
		return 0, fmt.Errorf("wal: %s: log is read-only", l.dir)
	}
	if len(recs) == 0 {
		return l.next, nil
	}
	first = l.next
	var buf []byte
	var bytes int64
	for _, r := range recs {
		if fs := frameSize(r); fs-recordHeaderSize > int64(l.opts.MaxRecordBytes) {
			return 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecordBytes %d", fs, l.opts.MaxRecordBytes)
		}
		buf = appendFrame(buf[:0], r)
		if _, err := l.w.Write(buf); err != nil {
			return 0, fmt.Errorf("wal: append: %w", err)
		}
		bytes += int64(len(buf))
	}
	l.next += uint64(len(recs))
	s := &l.segs[len(l.segs)-1]
	s.records += uint64(len(recs))
	s.size += bytes
	s.mtime = time.Now()

	switch l.opts.Sync {
	case SyncBatch:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case SyncInterval:
		if err := l.w.Flush(); err != nil {
			return 0, fmt.Errorf("wal: flush: %w", err)
		}
		if time.Since(l.lastSync) >= l.opts.SyncEvery {
			if err := l.syncLocked(); err != nil {
				return 0, err
			}
		}
	case SyncNever:
		if err := l.w.Flush(); err != nil {
			return 0, fmt.Errorf("wal: flush: %w", err)
		}
	}
	if s.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return first, nil
}

// Append appends a single record (a one-record batch).
func (l *Log) Append(rec Record) (uint64, error) {
	return l.AppendBatch([]Record{rec})
}

// TruncateTo discards every record with offset >= n, so the next appended
// record receives offset n. Segments based entirely above the cut are
// deleted, the segment containing the cut is truncated at the exact frame
// boundary, and the log is repositioned for appends before TruncateTo
// returns. n >= NextOffset is a no-op; truncating below the retention
// horizon or on a read-only log is an error. The replication layer uses
// this to drop a rejoining replica's unacknowledged divergent tail before
// catch-up.
func (l *Log) TruncateTo(n uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: %s: log closed", l.dir)
	}
	if l.opts.ReadOnly {
		return fmt.Errorf("wal: %s: log is read-only", l.dir)
	}
	if n >= l.next {
		return nil
	}
	if n < l.first {
		return fmt.Errorf("wal: truncate to %d below retention horizon %d", n, l.first)
	}
	// The cut lands in (or removes) the active segment: settle it on disk
	// and close it, then do the surgery, then reopen for appends.
	if l.active != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.active.Close(); err != nil {
			return fmt.Errorf("wal: close before truncate: %w", err)
		}
		l.active, l.w = nil, nil
	}
	for len(l.segs) > 0 {
		s := &l.segs[len(l.segs)-1]
		if s.base >= n {
			if err := os.Remove(s.path); err != nil {
				return fmt.Errorf("wal: remove truncated segment: %w", err)
			}
			l.segs = l.segs[:len(l.segs)-1]
			continue
		}
		if s.base+s.records > n {
			size, err := l.frameBoundary(s.path, n-s.base)
			if err != nil {
				return err
			}
			if err := os.Truncate(s.path, size); err != nil {
				return fmt.Errorf("wal: truncate segment: %w", err)
			}
			s.records = n - s.base
			s.size = size
		}
		break
	}
	l.next = n
	if len(l.segs) == 0 {
		l.first = n
	}
	return l.openActive()
}

// frameBoundary returns the byte length of path's first k frames.
func (l *Log) frameBoundary(path string, k uint64) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("wal: open segment: %w", err)
	}
	defer func() { _ = f.Close() }() // read-only open
	r := bufio.NewReaderSize(f, 1<<20)
	var size int64
	for i := uint64(0); i < k; i++ {
		_, n, err := readRecord(r, l.opts.MaxRecordBytes)
		if err != nil {
			return 0, corruptAt(path, size, err)
		}
		size += n
	}
	return size, nil
}

func (l *Log) syncLocked() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.lastSync = time.Now()
	return nil
}

// Sync forces all appended records to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.active == nil {
		return nil
	}
	return l.syncLocked()
}

// Replay calls fn for every record with offset >= from, in offset order,
// until fn returns false. Offsets below the retention horizon are skipped
// (replay starts at FirstOffset). Replay sees every record appended before
// the call, including unsynced ones.
func (l *Log) Replay(from uint64, fn func(off uint64, rec Record) bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w != nil {
		if err := l.w.Flush(); err != nil {
			return fmt.Errorf("wal: flush before replay: %w", err)
		}
	}
	for _, s := range l.segs {
		if s.base+s.records <= from {
			continue
		}
		f, err := os.Open(s.path)
		if err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
		r := bufio.NewReaderSize(f, 1<<20)
		off := s.base
		var read int64
		// s.size is the validated prefix length from recovery, so a torn
		// tail left on disk by a read-only open is never read here.
		for read < s.size {
			rec, n, err := readRecord(r, l.opts.MaxRecordBytes)
			if err != nil {
				_ = f.Close()
				return corruptAt(s.path, read, err)
			}
			read += n
			if off >= from {
				if !fn(off, rec) {
					_ = f.Close()
					return nil
				}
			}
			off++
		}
		_ = f.Close() // read-only open
	}
	return nil
}

// Close flushes and fsyncs outstanding appends and closes the active
// segment. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.active == nil {
		return nil
	}
	if err := l.syncLocked(); err != nil {
		_ = l.active.Close() // the sync failure is the error that matters
		return err
	}
	return l.active.Close()
}

// Dir returns the log's root directory.
func (l *Log) Dir() string { return l.dir }

// NextOffset returns the offset the next appended record would receive —
// equivalently, the number of records ever appended (before retention).
func (l *Log) NextOffset() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// FirstOffset returns the offset of the oldest retained record.
func (l *Log) FirstOffset() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.first
}

// Segments returns the current number of on-disk segments.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// TornBytes reports how many bytes of torn tail the open-time recovery
// discarded (or, read-only, skipped) — 0 after a clean shutdown.
func (l *Log) TornBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.torn
}
