package core

import (
	"fmt"

	"taskprov/internal/dask"
	"taskprov/internal/mofka"
	"taskprov/internal/sim"
)

// Collector owns the Mofka producers the provenance plugins publish
// through. One Collector instruments one run; its plugins attach to the
// dask.Cluster before Start.
//
// The paper's design goal — "track the detailed lineage and execution
// history of individual tasks without perturbing the workflow system" — maps
// to plugins that only serialize and enqueue; batching and persistence
// happen inside Mofka.
type Collector struct {
	broker    *mofka.Broker
	producers map[string]*mofka.Producer

	// Counters for quick sanity checks and overhead ablations.
	events map[string]int64
}

// NewCollector creates the topics (2 partitions each, as a small Mofka
// deployment would) and producers on the given broker.
func NewCollector(broker *mofka.Broker, opts mofka.ProducerOptions) (*Collector, error) {
	c := &Collector{
		broker:    broker,
		producers: make(map[string]*mofka.Producer),
		events:    make(map[string]int64),
	}
	for _, name := range AllTopics() {
		t, err := broker.OpenOrCreateTopic(mofka.TopicConfig{Name: name, Partitions: 2})
		if err != nil {
			return nil, fmt.Errorf("core: create topic %s: %w", name, err)
		}
		c.producers[name] = t.NewProducer(opts)
	}
	return c, nil
}

// Broker returns the broker the collector publishes to.
func (c *Collector) Broker() *mofka.Broker { return c.broker }

// push publishes one event; failures panic because they indicate a broken
// in-process pipeline, never a recoverable condition.
func (c *Collector) push(topic string, m mofka.Metadata) {
	c.events[topic]++
	if err := c.producers[topic].Push(m, nil); err != nil {
		panic(fmt.Sprintf("core: push to %s: %v", topic, err))
	}
}

// Flush ships all pending producer batches (call at end of run).
func (c *Collector) Flush() error {
	for name, p := range c.producers {
		if err := p.Flush(); err != nil {
			return fmt.Errorf("core: flush %s: %w", name, err)
		}
	}
	return nil
}

// EventCount reports how many events were pushed to a topic.
func (c *Collector) EventCount(topic string) int64 { return c.events[topic] }

// TotalEvents reports the number of events pushed across all topics.
func (c *Collector) TotalEvents() int64 {
	var n int64
	for _, v := range c.events {
		n += v
	}
	return n
}

// SchedulerPlugin returns the dask.SchedulerPlugin that streams scheduler
// events into Mofka.
func (c *Collector) SchedulerPlugin() dask.SchedulerPlugin { return &schedPlugin{c} }

// WorkerPlugin returns the dask.WorkerPlugin that streams worker events
// into Mofka.
func (c *Collector) WorkerPlugin() dask.WorkerPlugin { return &workerPlugin{c} }

type schedPlugin struct{ c *Collector }

func (p *schedPlugin) TaskAdded(m dask.TaskMeta) { p.c.push(TopicTaskMeta, TaskMetaEvent(m)) }
func (p *schedPlugin) SchedulerTransition(t dask.Transition) {
	p.c.push(TopicTransitions, TransitionEvent(t))
}
func (p *schedPlugin) GraphDone(id int, at sim.Time) { p.c.push(TopicGraphs, GraphDoneEvent(id, at)) }
func (p *schedPlugin) Stolen(ev dask.StealEvent)     { p.c.push(TopicSteals, StealEventMeta(ev)) }

type workerPlugin struct{ c *Collector }

func (p *workerPlugin) WorkerTransition(t dask.Transition) {
	p.c.push(TopicTransitions, TransitionEvent(t))
}
func (p *workerPlugin) TaskExecuted(rec dask.TaskExecution) {
	p.c.push(TopicExecutions, ExecutionEvent(rec))
}
func (p *workerPlugin) TransferReceived(rec dask.Transfer) {
	p.c.push(TopicTransfers, TransferEvent(rec))
}
func (p *workerPlugin) WorkerWarning(w dask.Warning) { p.c.push(TopicWarnings, WarningEvent(w)) }
func (p *workerPlugin) Heartbeat(m dask.WorkerMetrics) {
	p.c.push(TopicHeartbeats, HeartbeatEvent(m))
}
