// Package proxystore is a pass-by-reference object store for dependency
// transfers, layered on the Warabi blob service (the ProxyStore pattern of
// Pauloski et al. applied to the simulated Dask data plane): task outputs
// above a size threshold are published once as reference-counted blobs owned
// by the producing worker, the scheduler ships only a small proxy reference
// in its control messages, and consumers resolve the payload peer-to-peer
// from the owner at first use.
//
// The store tracks blob metadata — ownership, incarnation fencing, logical
// payload size, and reference counts — while the simulation moves sizes, not
// bytes: each blob's Warabi region holds a small JSON manifest describing
// the payload rather than the payload itself, so multi-gigabyte logical
// outputs cost a few hundred real bytes. Reference counts mirror the
// scheduler's dependent refcounts; when a blob's count drains (or its owner
// worker is reclaimed after a crash) the region is destroyed and the
// resident footprint shrinks back.
package proxystore

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"taskprov/internal/mochi/warabi"
)

// Ref is the proxy reference the scheduler ships in place of a payload: it
// names the blob and pins the owner incarnation so a consumer can detect a
// dangling reference to a crashed producer.
type Ref struct {
	Key         string `json:"key"`
	Owner       int    `json:"owner"` // producing worker rank
	Incarnation int    `json:"incarnation"`
	Size        int64  `json:"size"` // logical payload bytes
}

// Stats is a snapshot of cumulative store activity.
type Stats struct {
	Publishes int64 // blobs published (including republish after recompute)
	Resolves  int64 // successful reference resolutions
	Misses    int64 // resolutions of absent/reclaimed blobs
	Releases  int64 // individual reference releases
	Frees     int64 // blobs destroyed by refcount drain or explicit free
	Reclaims  int64 // blobs dropped because their owner worker died
	Resident  int64 // current logical bytes held across live blobs
	Live      int   // current live blob count
}

type blob struct {
	ref    Ref
	target *warabi.Target
	region warabi.RegionID
	refs   int
}

// Store is the blob index. All methods are safe for concurrent use, though
// the deterministic simulation drives it from a single kernel goroutine.
type Store struct {
	provider *warabi.Provider

	mu    sync.Mutex
	blobs map[string]*blob
	stats Stats
}

// New builds an empty store over its own Warabi provider (one target per
// owning worker, mirroring a per-node Warabi deployment).
func New() *Store {
	return &Store{provider: warabi.NewProvider(), blobs: make(map[string]*blob)}
}

// Provider exposes the underlying Warabi provider (tests inspect targets).
func (s *Store) Provider() *warabi.Provider { return s.provider }

// Publish registers key's payload as a blob owned by worker rank owner at
// the given incarnation, replacing any previous blob for the key (a
// recomputed key republishes under its new producer). The returned Ref is
// what the scheduler ships to consumers; replaced is the size of the blob
// this publish displaced (-1 when the key was fresh). The new blob starts
// with zero references; the scheduler Retains it to mirror its dependent
// refcounts.
func (s *Store) Publish(key string, owner, incarnation int, size int64) (r Ref, replaced int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	replaced = -1
	if old, ok := s.blobs[key]; ok {
		replaced = old.ref.Size
		s.destroyLocked(key, old)
		s.stats.Frees++
	}
	ref := Ref{Key: key, Owner: owner, Incarnation: incarnation, Size: size}
	manifest, err := json.Marshal(ref)
	if err != nil {
		// Ref is a plain struct of strings and integers; this cannot fail.
		panic(fmt.Sprintf("proxystore: encode manifest for %s: %v", key, err))
	}
	target := s.provider.Target(fmt.Sprintf("worker-%03d", owner))
	b := &blob{ref: ref, target: target, region: target.CreateWrite(manifest)}
	s.blobs[key] = b
	s.stats.Publishes++
	s.stats.Resident += size
	return ref, replaced
}

// Lookup inspects key's blob without touching the hit/miss counters (the
// fencing checks of speculative execution must not distort resolve
// statistics). Returns the blob's ref and whether one exists.
func (s *Store) Lookup(key string) (Ref, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[key]
	if !ok {
		return Ref{}, false
	}
	return b.ref, true
}

// Resolve looks a reference up by key, counting a hit or a miss. A miss
// means the blob was reclaimed (its owner died) or never published.
func (s *Store) Resolve(key string) (Ref, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[key]
	if !ok {
		s.stats.Misses++
		return Ref{}, false
	}
	s.stats.Resolves++
	return b.ref, true
}

// Refs reports a blob's current reference count (0 when absent).
func (s *Store) Refs(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.blobs[key]; ok {
		return b.refs
	}
	return 0
}

// Retain adds n references to key's blob. A no-op for absent keys (the
// scheduler may retain a key whose blob was already reclaimed; the
// subsequent resolution miss drives recomputation).
func (s *Store) Retain(key string, n int) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.blobs[key]; ok {
		b.refs += n
	}
}

// Release drops one reference from key's blob, destroying it when the count
// drains to zero. Releasing an absent key is a no-op and a blob's count
// never goes negative. Reports the blob's size and whether this release
// freed it.
func (s *Store) Release(key string) (freed bool, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[key]
	if !ok {
		return false, 0
	}
	s.stats.Releases++
	if b.refs > 0 {
		b.refs--
	}
	if b.refs > 0 {
		return false, b.ref.Size
	}
	s.destroyLocked(key, b)
	s.stats.Frees++
	return true, b.ref.Size
}

// Free destroys key's blob regardless of its reference count (the scheduler
// free-keys path, which already knows no dependent remains). Reports whether
// a blob existed and its size.
func (s *Store) Free(key string) (freed bool, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[key]
	if !ok {
		return false, 0
	}
	s.destroyLocked(key, b)
	s.stats.Frees++
	return true, b.ref.Size
}

// ReclaimWorker drops every blob owned by the given worker rank — the
// crash-reclamation sweep run when the scheduler evicts a dead worker. The
// reclaimed refs are returned sorted by key (deterministic provenance),
// along with the total logical bytes released.
func (s *Store) ReclaimWorker(owner int) (reclaimed []Ref, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []string
	for key, b := range s.blobs {
		if b.ref.Owner == owner {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		b := s.blobs[key]
		reclaimed = append(reclaimed, b.ref)
		bytes += b.ref.Size
		s.destroyLocked(key, b)
		s.stats.Reclaims++
	}
	return reclaimed, bytes
}

// destroyLocked removes a blob and its manifest region. Callers hold s.mu.
func (s *Store) destroyLocked(key string, b *blob) {
	delete(s.blobs, key)
	s.stats.Resident -= b.ref.Size
	if err := b.target.Destroy(b.region); err != nil {
		// The store is the region's only owner; a missing region means the
		// index and the target diverged — a bug, not a runtime condition.
		panic(fmt.Sprintf("proxystore: destroy region for %s: %v", key, err))
	}
}

// ResidentBytes reports the logical payload bytes currently held.
func (s *Store) ResidentBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.Resident
}

// Len reports the number of live blobs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blobs)
}

// Keys returns the live blob keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.blobs))
	for k := range s.blobs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Stats returns a snapshot of cumulative counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Live = len(s.blobs)
	return st
}
