package cluster

import "sync"

// Health event kinds. Every kind carries the "cluster_" prefix so
// downstream consumers — the warnings-topic bridge in internal/core, the
// live monitor's cluster-health lane, perfrecup's cluster timeline — can
// select replication/failover provenance with one prefix match.
const (
	// EventBrokerDead: a broker member was declared dead (chaos kill or
	// heartbeat timeout). Detail carries the reason.
	EventBrokerDead = "cluster_broker_dead"
	// EventBrokerRejoined: a previously dead local broker restarted and
	// rejoined with a bumped incarnation.
	EventBrokerRejoined = "cluster_broker_rejoined"
	// EventLeaderElected: a partition changed leaders; Epoch is the new
	// fencing epoch, Node the new leader.
	EventLeaderElected = "cluster_leader_elected"
	// EventCatchUp: a lagging replica was healed from a donor; Detail
	// carries "copied N events from node M".
	EventCatchUp = "cluster_catchup"
	// EventLogTruncated: a rejoining replica's unacknowledged divergent tail
	// was discarded before catch-up; Detail reports how many events were
	// dropped and the acknowledged offset the log was clamped to.
	EventLogTruncated = "cluster_log_truncated"
	// EventUnderReplicated: a partition's alive replica count fell below
	// quorum; appends fail with ErrUnavailable until a member returns.
	EventUnderReplicated = "cluster_under_replicated"
	// EventGroupRebalance: a consumer group's partition assignment changed;
	// Detail names the group and generation.
	EventGroupRebalance = "cluster_group_rebalance"
)

// Event is one cluster-health observation. Events are recorded in emission
// order and fanned out to observers; internal/core republishes them into
// the provenance warnings topic.
type Event struct {
	Kind      string  `json:"kind"`
	Node      int     `json:"node"`      // broker id, or new leader for elections; -1 when not node-scoped
	Topic     string  `json:"topic"`     // "" for node-scoped events
	Partition int     `json:"partition"` // -1 for node-scoped events
	Epoch     uint64  `json:"epoch"`     // fencing epoch for partition-scoped events
	At        float64 `json:"at"`        // seconds (virtual in simulations)
	Detail    string  `json:"detail"`
}

// healthLog accumulates events and fans them out to observers. emit is
// always called after cluster/partition locks are released, so observers
// may call back into the cluster (e.g. publish a warning event through a
// cluster producer) without deadlocking.
type healthLog struct {
	mu     sync.Mutex
	events []Event
	obs    []func(Event)
}

func newHealthLog() *healthLog { return &healthLog{} }

func (h *healthLog) emit(evs []Event) {
	if len(evs) == 0 {
		return
	}
	h.mu.Lock()
	h.events = append(h.events, evs...)
	var obs []func(Event)
	obs = append(obs, h.obs...)
	h.mu.Unlock()
	for _, ev := range evs {
		for _, o := range obs {
			o(ev)
		}
	}
}

func (h *healthLog) subscribe(fn func(Event)) {
	h.mu.Lock()
	h.obs = append(h.obs, fn)
	h.mu.Unlock()
}

func (h *healthLog) snapshot() []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Event(nil), h.events...)
}

// Events returns every health event recorded so far, in emission order.
func (c *Cluster) Events() []Event { return c.health.snapshot() }

// OnEvent registers an observer called synchronously (outside cluster
// locks) for every subsequent health event.
func (c *Cluster) OnEvent(fn func(Event)) { c.health.subscribe(fn) }
