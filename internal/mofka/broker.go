package mofka

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"taskprov/internal/mochi/bedrock"
	"taskprov/internal/mochi/warabi"
	"taskprov/internal/mochi/yokan"
	"taskprov/internal/mofka/wal"
)

// Errors reported by the broker API.
var (
	ErrTopicExists  = errors.New("mofka: topic already exists")
	ErrNoTopic      = errors.New("mofka: no such topic")
	ErrNoPartition  = errors.New("mofka: no such partition")
	ErrClosed       = errors.New("mofka: closed")
	ErrInvalidEvent = errors.New("mofka: invalid event")
)

// Broker hosts topics on top of a bedrock deployment's Yokan and Warabi
// services, optionally backed by a durable segmented event log (see
// Options.DataDir and the wal package). All methods are safe for concurrent
// use.
type Broker struct {
	meta *yokan.Database
	data *warabi.Target

	// Durable backend, nil/zero for a purely in-memory broker.
	dataDir  string
	readOnly bool
	walOpts  wal.Options
	cursors  *wal.CursorStore

	mu          sync.RWMutex
	topics      map[string]*Topic
	closed      bool
	appendFault func(topic string, partition int) error
}

// SetAppendFault installs (or, with nil, removes) a fault hook consulted at
// the top of every batch append: a non-nil return fails the append before
// anything is persisted. Fault injection uses it to model disk-full and
// WAL-write errors; producers see the error and enter degraded buffering.
func (b *Broker) SetAppendFault(f func(topic string, partition int) error) {
	b.mu.Lock()
	b.appendFault = f
	b.mu.Unlock()
}

func (b *Broker) injectAppendFault(topic string, partition int) error {
	b.mu.RLock()
	f := b.appendFault
	b.mu.RUnlock()
	if f == nil {
		return nil
	}
	return f(topic, partition)
}

// NewBroker builds a broker on the deployment's "metadata" Yokan database
// and "data" Warabi target (creating them if the deployment config did not).
func NewBroker(dep *bedrock.Deployment) *Broker {
	return &Broker{
		meta:   dep.Yokan.Open("metadata"),
		data:   dep.Warabi.Target("data"),
		topics: make(map[string]*Topic),
	}
}

// NewStandaloneBroker builds a broker on fresh in-memory services, for uses
// that do not need a bedrock deployment (tests, embedded collection).
func NewStandaloneBroker() *Broker {
	return &Broker{
		meta:   yokan.NewDatabase("metadata"),
		data:   warabi.NewTarget("data"),
		topics: make(map[string]*Topic),
	}
}

// CreateTopic creates a topic. Partition count defaults to 1.
func (b *Broker) CreateTopic(cfg TopicConfig) (*Topic, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("%w: empty topic name", ErrInvalidEvent)
	}
	// Zero means "unspecified" and defaults to one partition; negative and
	// absurd counts are configuration bugs and are rejected loudly rather
	// than silently normalized.
	if cfg.Partitions < 0 {
		return nil, fmt.Errorf("%w: topic %s: negative partition count %d", ErrInvalidEvent, cfg.Name, cfg.Partitions)
	}
	if cfg.Partitions > MaxPartitions {
		return nil, fmt.Errorf("%w: topic %s: %d partitions exceeds limit %d", ErrInvalidEvent, cfg.Name, cfg.Partitions, MaxPartitions)
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	if _, ok := b.topics[cfg.Name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrTopicExists, cfg.Name)
	}
	t := &Topic{broker: b, cfg: cfg}
	for i := 0; i < cfg.Partitions; i++ {
		p := &Partition{
			topic: t,
			index: i,
			docs:  b.meta.Collection(fmt.Sprintf("topic/%s/p%04d", cfg.Name, i)),
		}
		p.cond = sync.NewCond(&p.mu)
		t.partitions = append(t.partitions, p)
	}
	// Record the topic in the KV space so it is discoverable post-mortem.
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("mofka: encode config for topic %s: %w", cfg.Name, err)
	}
	if b.dataDir != "" && !b.readOnly {
		if err := b.persistTopic(t, cfgJSON); err != nil {
			return nil, err
		}
	}
	b.meta.Put("topics/"+cfg.Name, cfgJSON)
	b.topics[cfg.Name] = t
	return t, nil
}

// OpenTopic returns an existing topic.
func (b *Broker) OpenTopic(name string) (*Topic, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.topics[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTopic, name)
	}
	return t, nil
}

// OpenOrCreateTopic opens the topic, creating it if absent.
func (b *Broker) OpenOrCreateTopic(cfg TopicConfig) (*Topic, error) {
	if t, err := b.OpenTopic(cfg.Name); err == nil {
		return t, nil
	}
	t, err := b.CreateTopic(cfg)
	if errors.Is(err, ErrTopicExists) {
		return b.OpenTopic(cfg.Name)
	}
	return t, err
}

// Topics lists topic names in sorted order.
func (b *Broker) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []string
	for n := range b.topics {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// cursorKey is the per-(consumer, topic, partition) identifier shared by the
// in-memory KV space and the on-disk cursor sidecar.
func cursorKey(consumer, topic string, partition int) string {
	return fmt.Sprintf("%s/%s/p%04d", consumer, topic, partition)
}

// Close shuts the broker down: every partition is marked closed (waking any
// consumer blocked in PullBlocking, which then returns ErrClosed), and
// durable logs are flushed, fsynced, and closed. Reads of already-published
// events keep working after Close — post-mortem draining of an in-memory
// broker is still valid — but appends and topic creation fail with
// ErrClosed. Close is idempotent.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	topics := make([]*Topic, 0, len(b.topics))
	for _, t := range b.topics {
		topics = append(topics, t)
	}
	b.mu.Unlock()
	var errs []error
	for _, t := range topics {
		for _, p := range t.partitions {
			if err := p.close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// IsClosed reports whether Close has been called. Long-lived consumers (the
// live monitor's pull loop) use it as their exit condition.
func (b *Broker) IsClosed() bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.closed
}

// Sync forces every durable partition log to stable storage (a no-op for
// in-memory brokers) without closing anything.
func (b *Broker) Sync() error {
	b.mu.RLock()
	topics := make([]*Topic, 0, len(b.topics))
	for _, t := range b.topics {
		topics = append(topics, t)
	}
	b.mu.RUnlock()
	var errs []error
	for _, t := range topics {
		for _, p := range t.partitions {
			if p.log != nil {
				if err := p.log.Sync(); err != nil {
					errs = append(errs, err)
				}
			}
		}
	}
	return errors.Join(errs...)
}

// CommitCursor durably records a consumer's next-unread offset. On a durable
// broker the cursor is also persisted to the sidecar store, so it survives a
// restart.
func (b *Broker) CommitCursor(consumer, topic string, partition int, next uint64) error {
	key := cursorKey(consumer, topic, partition)
	val, err := json.Marshal(next)
	if err != nil {
		return fmt.Errorf("mofka: encode cursor %s: %w", key, err)
	}
	b.meta.Put("cursor/"+key, val)
	if b.cursors != nil {
		if err := b.cursors.Set(key, next); err != nil {
			return fmt.Errorf("mofka: persist cursor %s: %w", key, err)
		}
	}
	return nil
}

// CursorEntry is one committed consumer cursor, as enumerated by Cursors.
type CursorEntry struct {
	Consumer  string
	Topic     string
	Partition int
	Next      uint64
}

// Cursors enumerates every committed cursor on the broker in key order. The
// cluster layer uses it to merge per-replica cursor stores into one view.
func (b *Broker) Cursors() []CursorEntry {
	var out []CursorEntry
	for _, kv := range b.meta.ListKeyVals("", "cursor/", 0) {
		ent, ok := parseCursorKey(strings.TrimPrefix(kv.Key, "cursor/"))
		if !ok {
			continue
		}
		var next uint64
		if json.Unmarshal(kv.Value, &next) != nil {
			continue
		}
		ent.Next = next
		out = append(out, ent)
	}
	return out
}

// parseCursorKey inverts cursorKey. Topic names cannot contain "/", so the
// last two "/"-separated segments are unambiguous even if a consumer name
// contains slashes.
func parseCursorKey(key string) (CursorEntry, bool) {
	i := strings.LastIndex(key, "/")
	if i < 0 {
		return CursorEntry{}, false
	}
	pseg := key[i+1:]
	if len(pseg) < 2 || pseg[0] != 'p' {
		return CursorEntry{}, false
	}
	part, err := strconv.Atoi(pseg[1:])
	if err != nil || part < 0 {
		return CursorEntry{}, false
	}
	rest := key[:i]
	j := strings.LastIndex(rest, "/")
	if j < 0 {
		return CursorEntry{}, false
	}
	return CursorEntry{Consumer: rest[:j], Topic: rest[j+1:], Partition: part}, true
}

// LoadCursor returns a consumer's committed next-unread offset (0 if never
// committed).
func (b *Broker) LoadCursor(consumer, topic string, partition int) uint64 {
	key := "cursor/" + cursorKey(consumer, topic, partition)
	v, ok := b.meta.Get(key)
	if !ok {
		return 0
	}
	var next uint64
	if json.Unmarshal(v, &next) != nil {
		return 0
	}
	return next
}

// Topic is a named event stream divided into partitions.
type Topic struct {
	broker     *Broker
	cfg        TopicConfig
	partitions []*Partition
}

// Name returns the topic name.
func (t *Topic) Name() string { return t.cfg.Name }

// Config returns the topic's creation-time configuration.
func (t *Topic) Config() TopicConfig { return t.cfg }

// Partitions returns the partition count.
func (t *Topic) Partitions() int { return len(t.partitions) }

// Partition returns partition i.
func (t *Topic) Partition(i int) (*Partition, error) {
	if i < 0 || i >= len(t.partitions) {
		return nil, fmt.Errorf("%w: %s[%d]", ErrNoPartition, t.cfg.Name, i)
	}
	return t.partitions[i], nil
}

// Events reports the total number of events across all partitions.
func (t *Topic) Events() uint64 {
	var n uint64
	for _, p := range t.partitions {
		n += p.Length()
	}
	return n
}

// Partition is one ordered shard of a topic.
type Partition struct {
	topic *Topic
	index int
	docs  *yokan.Collection
	log   *wal.Log // durable backend; nil for in-memory partitions

	mu     sync.Mutex
	cond   *sync.Cond
	length uint64
	closed bool
}

// Index returns the partition's index within its topic.
func (p *Partition) Index() int { return p.index }

// Length returns the number of events appended so far.
func (p *Partition) Length() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.length
}

// appendBatch persists a batch: payloads are concatenated into one Warabi
// region; each event's envelope goes into the Yokan collection. On a durable
// partition the batch is appended (and synced, per policy) to the on-disk
// log before it becomes visible, so every event a consumer can observe is
// also recoverable.
func (p *Partition) appendBatch(metas [][]byte, datas [][]byte) error {
	if len(metas) != len(datas) {
		return fmt.Errorf("%w: %d metadata for %d data payloads", ErrInvalidEvent, len(metas), len(datas))
	}
	if len(metas) == 0 {
		return nil
	}
	if err := p.topic.broker.injectAppendFault(p.topic.cfg.Name, p.index); err != nil {
		return err
	}
	var total int64
	for _, d := range datas {
		total += int64(len(d))
	}
	blob := make([]byte, 0, total)
	offsets := make([]int64, len(datas))
	for i, d := range datas {
		offsets[i] = int64(len(blob))
		blob = append(blob, d...)
	}

	// The whole publish happens under the partition lock so WAL offsets and
	// in-memory event IDs assign in the same order across concurrent
	// producers — replaying the log reproduces the exact live stream.
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if p.topic.broker.readOnly {
		return fmt.Errorf("%w: broker is read-only (post-mortem)", ErrClosed)
	}
	// Pre-encode every envelope before the batch touches the WAL or the
	// document store: an encode error must leave nothing persisted and
	// nothing visible, never a half-published batch.
	region := p.topic.broker.data.CreateWrite(blob)
	docs := make([][]byte, len(metas))
	for i := range metas {
		env := envelope{Meta: metas[i], Region: uint64(region), Offset: offsets[i], Size: int64(len(datas[i]))}
		doc, err := json.Marshal(&env)
		if err != nil {
			err = fmt.Errorf("mofka: encode envelope: %w", err)
			return errors.Join(err, p.topic.broker.data.Destroy(region))
		}
		docs[i] = doc
	}
	if p.log != nil {
		recs := make([]wal.Record, len(metas))
		for i := range metas {
			recs[i] = wal.Record{Meta: metas[i], Data: datas[i]}
		}
		if _, err := p.log.AppendBatch(recs); err != nil {
			err = fmt.Errorf("mofka: wal append %s[%d]: %w", p.topic.cfg.Name, p.index, err)
			return errors.Join(err, p.topic.broker.data.Destroy(region))
		}
	}
	for _, doc := range docs {
		p.docs.Store(doc)
		p.length++
	}
	p.cond.Broadcast()
	return nil
}

// Append publishes a batch of pre-encoded events directly to this partition,
// bypassing producer batching. It is the replication entry point: the
// cluster layer (internal/mofka/cluster) uses it to apply a leader's batch
// to follower replicas and to copy suffixes during catch-up, so replicated
// partitions carry byte-identical streams.
func (p *Partition) Append(metas [][]byte, datas [][]byte) error {
	return p.appendBatch(metas, datas)
}

// TruncateTo discards every event with ID >= n, so the next appended event
// receives ID n. The durable log (if any) is truncated first, preserving
// the invariant that every observable event is recoverable. The cluster
// layer uses this to drop a restarted replica's unacknowledged divergent
// tail before the replica rejoins replication; dropped payload regions stay
// in Warabi but become unreachable.
func (p *Partition) TruncateTo(n uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if p.topic.broker.readOnly {
		return fmt.Errorf("%w: broker is read-only (post-mortem)", ErrClosed)
	}
	if n >= p.length {
		return nil
	}
	if p.log != nil {
		if err := p.log.TruncateTo(n); err != nil {
			return fmt.Errorf("mofka: wal truncate %s[%d]: %w", p.topic.cfg.Name, p.index, err)
		}
	}
	p.docs.TruncateTo(n)
	p.length = n
	return nil
}

// ReadFrom returns up to max events starting at offset from. It is the
// exported counterpart of the consumer read path, used by replication
// catch-up and by post-mortem mergers that need raw partition access without
// consumer state.
func (p *Partition) ReadFrom(from uint64, max int, withData bool) ([]Event, error) {
	return p.read(from, max, withData)
}

// read returns up to max events starting at offset from. withData controls
// whether payloads are fetched from Warabi (Mofka's data-selection feature).
func (p *Partition) read(from uint64, max int, withData bool) ([]Event, error) {
	if withData {
		return p.readSelect(from, max, nil)
	}
	return p.readSelect(from, max, func([]byte) bool { return false })
}

// readSelect is read with per-event data selection: selector nil fetches
// every payload; otherwise only events whose metadata it accepts carry
// data.
func (p *Partition) readSelect(from uint64, max int, selector func([]byte) bool) ([]Event, error) {
	var out []Event
	var firstErr error
	p.docs.Iter(from, max, func(id uint64, doc []byte) bool {
		var env envelope
		if err := json.Unmarshal(doc, &env); err != nil {
			firstErr = fmt.Errorf("mofka: corrupt envelope %d: %w", id, err)
			return false
		}
		ev := Event{
			Topic:     p.topic.cfg.Name,
			Partition: p.index,
			ID:        id,
			Metadata:  append([]byte(nil), env.Meta...),
		}
		if (selector == nil || selector(ev.Metadata)) && env.Size > 0 {
			data, err := p.topic.broker.data.Read(warabi.RegionID(env.Region), env.Offset, env.Size)
			if err != nil {
				firstErr = fmt.Errorf("mofka: data for event %d: %w", id, err)
				return false
			}
			ev.Data = data
		}
		out = append(out, ev)
		return true
	})
	return out, firstErr
}

// waitForLength blocks until the partition holds more than n events, the
// partition closes, or the deadline passes, and reports whether new events
// are available. A Broker.Close broadcast wakes waiters immediately.
func (p *Partition) waitForLength(n uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.length <= n {
		if p.closed {
			return false
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return false
		}
		// sync.Cond has no timed wait; poll with a short-lived waker.
		waker := time.AfterFunc(remaining, func() {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		})
		p.cond.Wait()
		waker.Stop()
	}
	return true
}

// isClosed reports whether the partition has been closed by Broker.Close.
func (p *Partition) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// close marks the partition closed, wakes every blocked consumer, and syncs
// and closes the durable log (if any).
func (p *Partition) close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.cond.Broadcast()
	log := p.log
	p.mu.Unlock()
	if log != nil {
		return log.Close()
	}
	return nil
}
