package taskprov_test

import (
	"path/filepath"
	"strings"
	"testing"

	"taskprov"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quickstart describes: run a paper workflow, persist, reload, analyze.
func TestFacadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full workflow run")
	}
	wf, err := taskprov.NewWorkflow("imageprocessing")
	if err != nil {
		t.Fatal(err)
	}
	cfg := taskprov.DefaultSession("imageprocessing", "facade-001", 13)
	cfg.LiveMonitor = true
	art, err := taskprov.Run(cfg, wf)
	if err != nil {
		t.Fatal(err)
	}
	if art.Live == nil {
		t.Fatal("LiveMonitor enabled but art.Live is nil")
	}
	ref, err := taskprov.LiveReplay(art)
	if err != nil {
		t.Fatal(err)
	}
	if art.Live.Tasks != ref.Tasks || art.Live.ComputeSeconds != ref.ComputeSeconds {
		t.Fatalf("live summary diverged from replay: %+v vs %+v", art.Live, ref)
	}

	dir := filepath.Join(t.TempDir(), "facade-001")
	if err := art.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := taskprov.LoadRun(dir)
	if err != nil {
		t.Fatal(err)
	}

	ph, err := taskprov.Phases(loaded)
	if err != nil || ph.TotalSeconds <= 0 {
		t.Fatalf("phases = %+v, %v", ph, err)
	}
	stats := taskprov.AggregatePhases([]taskprov.PhaseBreakdown{ph})
	if stats.Runs != 1 || stats.NormTotal != 1 {
		t.Fatalf("stats = %+v", stats)
	}

	timeline, err := taskprov.IOTimeline(loaded, 60, 1<<20)
	if err != nil || !strings.Contains(timeline, "tid") {
		t.Fatalf("timeline: %v", err)
	}
	buckets, err := taskprov.CommScatter(loaded)
	if err != nil || len(buckets) == 0 {
		t.Fatalf("comm scatter: %v", err)
	}
	pc, err := taskprov.ParallelCoords(loaded)
	if err != nil || pc.NRows() == 0 {
		t.Fatalf("parallel coords: %v", err)
	}
	hist, err := taskprov.WarningHistogram(loaded, 10)
	if err != nil {
		t.Fatalf("warnings: %v", err)
	}
	_ = hist

	key := pc.Col("key").Str(0)
	lin, err := taskprov.Lineage(loaded, key)
	if err != nil || lin.Worker == "" {
		t.Fatalf("lineage: %v", err)
	}
	win, err := taskprov.Window(loaded, 0, ph.TotalSeconds)
	if err != nil || win.TasksActive == 0 {
		t.Fatalf("window: %+v, %v", win, err)
	}
	cmp, err := taskprov.CompareSchedules(loaded, loaded)
	if err != nil || cmp.SameWorker != 1 {
		t.Fatalf("compare: %+v, %v", cmp, err)
	}
	rep, err := taskprov.Correlate(loaded, 10)
	if err != nil || len(rep.LongTaskPrefixes) == 0 {
		t.Fatalf("correlate: %+v, %v", rep, err)
	}
	att, err := taskprov.AttributeIOToTasks(loaded)
	if err != nil || att.NRows() == 0 {
		t.Fatalf("attribute: %v", err)
	}
	if len(taskprov.WorkflowNames()) != 3 {
		t.Fatal("workflow names")
	}
}
