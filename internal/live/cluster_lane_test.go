package live

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"taskprov/internal/dask"
	"taskprov/internal/mofka"
	"taskprov/internal/provenance"
	"taskprov/internal/sim"
)

// TestAggregatorClusterHealthLane: warnings carrying the cluster_ kind
// prefix land in their own sorted lane, separate from the worker recovery
// lane and still counted in the warning histogram.
func TestAggregatorClusterHealthLane(t *testing.T) {
	a := NewAggregator(AggregatorOptions{})
	warn := func(kind dask.WarningKind, at sim.Time, worker, msg string) {
		a.IngestEvent(provenance.TopicWarnings, 0, provenance.WarningEvent(dask.Warning{
			Kind: kind, Worker: worker, At: at, Message: msg,
		}))
	}
	warn("cluster_leader_elected", sim.Seconds(6), "broker-1", "warnings[0] epoch=2")
	warn("cluster_broker_dead", sim.Seconds(6), "broker-0", "killed")
	warn(dask.WarnWorkerLost, sim.Seconds(7), "tcp://n1:40001", "missed heartbeats")
	warn("cluster_broker_rejoined", sim.Seconds(9), "broker-0", "incarnation 2")

	s := a.Snapshot()
	if len(s.ClusterHealth) != 3 {
		t.Fatalf("cluster lane has %d events, want 3: %+v", len(s.ClusterHealth), s.ClusterHealth)
	}
	// Sorted by (at, kind): the two t=6 events order by kind.
	wantKinds := []string{"cluster_broker_dead", "cluster_leader_elected", "cluster_broker_rejoined"}
	for i, ev := range s.ClusterHealth {
		if ev.Kind != wantKinds[i] {
			t.Fatalf("cluster[%d] = %+v, want kind %s", i, ev, wantKinds[i])
		}
	}
	// The worker recovery lane holds only the worker event, and vice versa.
	if len(s.Recovery) != 1 || s.Recovery[0].Kind != "worker_lost" {
		t.Fatalf("recovery lane = %+v", s.Recovery)
	}
	if s.Warnings["cluster_broker_dead"] != 1 {
		t.Fatalf("warning histogram = %v", s.Warnings)
	}

	srv := httptest.NewServer(NewServer(staticSource{s}))
	defer srv.Close()
	res, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	_ = res.Body.Close()
	if !strings.Contains(string(body), `taskprov_live_cluster_events_total{kind="cluster_broker_dead"} 1`) {
		t.Fatalf("metrics missing cluster counter:\n%s", body)
	}
}

// staticSource serves a fixed Summary (for exercising the HTTP rendering of
// fields the monitor only fills under specific conditions).
type staticSource struct{ s Summary }

func (s staticSource) Snapshot() Summary                { return s.s }
func (staticSource) SubscribeAnomalies() <-chan Anomaly { return make(chan Anomaly) }

// TestConsumerLagSurfaced: the monitor samples mofka.Consumer.Lag per
// topic/partition into snapshots and /metrics, and drops entries back to
// nothing once the backlog drains (so a finished run's Summary carries no
// lag map).
func TestConsumerLagSurfaced(t *testing.T) {
	b := mofka.NewStandaloneBroker()
	m := NewMonitor(b, MonitorOptions{PollInterval: time.Millisecond})
	// Take over sweeping deterministically: the loop is stopped, the test
	// drives sweeps by hand.
	m.Stop()

	tp, err := b.OpenOrCreateTopic(mofka.TopicConfig{Name: provenance.TopicExecutions, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := tp.NewProducer(mofka.ProducerOptions{BatchSize: 1})
	for i := 0; i < 10; i++ {
		if err := p.Push(exec("t-%03d", "w0", float64(i), float64(i)+0.5), nil); err != nil {
			t.Fatal(err)
		}
	}

	// Sample lag without pulling: everything just pushed is backlog.
	c := m.consumer(provenance.TopicExecutions)
	if c == nil {
		t.Fatal("no consumer for executions topic")
	}
	m.recordLag(provenance.TopicExecutions, c)
	lag := m.Snapshot().ConsumerLag
	var total uint64
	for key, n := range lag {
		if !strings.HasPrefix(key, provenance.TopicExecutions+"/") {
			t.Fatalf("lag key %q not topic/partition-shaped", key)
		}
		total += n
	}
	if total != 10 {
		t.Fatalf("total lag = %d from %v, want 10", total, lag)
	}

	srv := httptest.NewServer(NewServer(m))
	res, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	_ = res.Body.Close()
	srv.Close()
	if !strings.Contains(string(body), `taskprov_live_consumer_lag{topic="task-executions",partition=`) {
		t.Fatalf("metrics missing consumer lag gauge:\n%s", body)
	}

	// Drain; zero-lag entries disappear entirely.
	for m.sweep() > 0 {
	}
	if lag := m.Snapshot().ConsumerLag; lag != nil {
		t.Fatalf("lag map survives a full drain: %v", lag)
	}
}
