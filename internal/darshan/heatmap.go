package darshan

import (
	"fmt"
	"strings"
)

// The HEATMAP module (Darshan >= 3.4) records time-binned read/write byte
// counts per process, independent of per-file records — cheap always-on
// context for when DXT is too expensive or truncated. Bins double in width
// when the runtime outgrows the fixed bin count, exactly like Darshan's
// implementation.

// DefaultHeatmapBins matches Darshan's default heatmap width.
const DefaultHeatmapBins = 100

// Heatmap is the per-process module state.
type Heatmap struct {
	BinSeconds float64 // current width of one bin
	ReadBytes  []int64
	WriteBytes []int64
}

// newHeatmap creates a heatmap with the given bin count and an initial bin
// width of 0.1s.
func newHeatmap(bins int) *Heatmap {
	if bins <= 0 {
		bins = DefaultHeatmapBins
	}
	return &Heatmap{
		BinSeconds: 0.1,
		ReadBytes:  make([]int64, bins),
		WriteBytes: make([]int64, bins),
	}
}

// add accumulates bytes at timestamp t (seconds), doubling bin width (and
// folding counts) whenever t falls beyond the last bin.
func (h *Heatmap) add(t float64, bytes int64, write bool) {
	if t < 0 {
		t = 0
	}
	for int(t/h.BinSeconds) >= len(h.ReadBytes) {
		h.fold()
	}
	b := int(t / h.BinSeconds)
	if write {
		h.WriteBytes[b] += bytes
	} else {
		h.ReadBytes[b] += bytes
	}
}

// fold doubles the bin width, merging adjacent bins.
func (h *Heatmap) fold() {
	n := len(h.ReadBytes)
	for i := 0; i < n/2; i++ {
		h.ReadBytes[i] = h.ReadBytes[2*i] + h.ReadBytes[2*i+1]
		h.WriteBytes[i] = h.WriteBytes[2*i] + h.WriteBytes[2*i+1]
	}
	for i := n / 2; i < n; i++ {
		h.ReadBytes[i] = 0
		h.WriteBytes[i] = 0
	}
	h.BinSeconds *= 2
}

// TotalBytes returns the cumulative read and write bytes.
func (h *Heatmap) TotalBytes() (read, write int64) {
	for i := range h.ReadBytes {
		read += h.ReadBytes[i]
		write += h.WriteBytes[i]
	}
	return read, write
}

// Span returns the covered time range in seconds.
func (h *Heatmap) Span() float64 { return h.BinSeconds * float64(len(h.ReadBytes)) }

// clone deep-copies the heatmap.
func (h *Heatmap) clone() *Heatmap {
	if h == nil {
		return nil
	}
	return &Heatmap{
		BinSeconds: h.BinSeconds,
		ReadBytes:  append([]int64(nil), h.ReadBytes...),
		WriteBytes: append([]int64(nil), h.WriteBytes...),
	}
}

// MergeHeatmaps combines per-process heatmaps onto the coarsest bin width.
func MergeHeatmaps(hs []*Heatmap) *Heatmap {
	var out *Heatmap
	for _, h := range hs {
		if h == nil {
			continue
		}
		c := h.clone()
		if out == nil {
			out = c
			continue
		}
		for out.BinSeconds < c.BinSeconds {
			out.fold()
		}
		for c.BinSeconds < out.BinSeconds {
			c.fold()
		}
		for i := range out.ReadBytes {
			if i < len(c.ReadBytes) {
				out.ReadBytes[i] += c.ReadBytes[i]
				out.WriteBytes[i] += c.WriteBytes[i]
			}
		}
	}
	return out
}

// Render draws the heatmap as two text sparklines (reads and writes).
func (h *Heatmap) Render() string {
	if h == nil {
		return "(no heatmap)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "heatmap: %d bins of %.2fs\n", len(h.ReadBytes), h.BinSeconds)
	sb.WriteString("  R |" + sparkline(h.ReadBytes) + "|\n")
	sb.WriteString("  W |" + sparkline(h.WriteBytes) + "|\n")
	return sb.String()
}

var sparkChars = []rune(" .:-=+*#%@")

func sparkline(vals []int64) string {
	var max int64 = 1
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		idx := int(int64(len(sparkChars)-1) * v / max)
		out[i] = sparkChars[idx]
	}
	return string(out)
}
