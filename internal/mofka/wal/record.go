package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// On-disk record framing. Every record is length-prefixed and checksummed so
// a torn write (power loss, kill -9 mid-append) is detectable at open time:
//
//	u32  payload length n (little-endian)
//	u32  CRC32-C of the payload
//	n    payload = u32 metadata length | metadata bytes | data bytes
//
// The CRC covers the payload only; the length field is validated by bounds
// checking (a corrupt length either fails the sanity bound or makes the CRC
// check fail on the misframed payload).
const (
	recordHeaderSize = 8
	payloadMinSize   = 4 // the metadata-length prefix
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a record that fails framing or checksum validation
// somewhere other than the log's tail (tail corruption is silently truncated
// as a torn write; interior corruption is a real error).
var ErrCorrupt = errors.New("wal: corrupt record")

// Record is one event as persisted in the log: the JSON metadata and the raw
// data payload.
type Record struct {
	Meta []byte
	Data []byte
}

// frameSize returns the on-disk footprint of a record.
func frameSize(r Record) int64 {
	return recordHeaderSize + payloadMinSize + int64(len(r.Meta)) + int64(len(r.Data))
}

// appendFrame encodes rec into buf and returns the extended slice.
func appendFrame(buf []byte, rec Record) []byte {
	n := payloadMinSize + len(rec.Meta) + len(rec.Data)
	var mlen [4]byte
	binary.LittleEndian.PutUint32(mlen[:], uint32(len(rec.Meta)))
	crc := crc32.Update(0, crcTable, mlen[:])
	crc = crc32.Update(crc, crcTable, rec.Meta)
	crc = crc32.Update(crc, crcTable, rec.Data)

	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	buf = append(buf, mlen[:]...)
	buf = append(buf, rec.Meta...)
	buf = append(buf, rec.Data...)
	return buf
}

// readRecord decodes the next record from r. It returns io.EOF at a clean
// end of stream and errTorn for a record that is incomplete or fails its
// checksum — the caller decides whether that is a truncatable tail or
// interior corruption.
func readRecord(r io.Reader, maxRecordBytes int) (Record, int64, error) {
	var hdr [recordHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, 0, io.EOF
		}
		return Record{}, 0, errTorn // short header: torn tail
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if n < payloadMinSize || int(n) > maxRecordBytes {
		return Record{}, 0, errTorn
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Record{}, 0, errTorn
	}
	if crc32.Checksum(payload, crcTable) != want {
		return Record{}, 0, errTorn
	}
	mlen := binary.LittleEndian.Uint32(payload[0:4])
	if int(mlen) > len(payload)-payloadMinSize {
		return Record{}, 0, errTorn
	}
	meta := payload[payloadMinSize : payloadMinSize+mlen]
	data := payload[payloadMinSize+mlen:]
	if len(data) == 0 {
		data = nil
	}
	return Record{Meta: meta, Data: data}, recordHeaderSize + int64(n), nil
}

// errTorn marks a record that could not be fully decoded. At the tail of the
// newest segment it means a torn write; anywhere else it is promoted to
// ErrCorrupt.
var errTorn = errors.New("wal: torn record")

func corruptAt(path string, off int64, err error) error {
	return fmt.Errorf("%w: %s at byte %d: %v", ErrCorrupt, path, off, err)
}
