package live

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Source is anything the HTTP server can serve: a Monitor attached to an
// in-process broker, a WALTailer following a data dir, or a RemoteTailer
// attached to a running mofkad.
type Source interface {
	Snapshot() Summary
	SubscribeAnomalies() <-chan Anomaly
}

// Server exposes a Source over HTTP:
//
//	GET /snapshot   one consistent Summary as JSON
//	GET /metrics    Prometheus text exposition of the same aggregates
//	GET /events     SSE stream: periodic "snapshot" events plus an
//	                "anomaly" event per online finding
//	GET /healthz    liveness probe
type Server struct {
	src Source
	mux *http.ServeMux
	srv *http.Server
	ln  net.Listener
}

// NewServer builds the handler without binding a port (useful for tests via
// httptest and for embedding into an existing mux).
func NewServer(src Source) *Server {
	s := &Server{src: src, mux: http.NewServeMux()}
	s.mux.HandleFunc("/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP makes Server an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Serve binds addr (e.g. "127.0.0.1:0") and serves in the background.
func Serve(addr string, src Source) (*Server, error) {
	s := NewServer(src)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	go func() { _ = s.srv.Serve(ln) }() // Serve always returns on Close
	return s, nil
}

// Addr returns the bound address ("" before Serve).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.src.Snapshot()) // client gone mid-write is fine
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	interval := time.Second
	if v := r.URL.Query().Get("interval"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			interval = d
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	anoms := s.src.SubscribeAnomalies()
	send := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !send("snapshot", s.src.Snapshot()) {
		return
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case a := <-anoms:
			if !send("anomaly", a) {
				return
			}
		case <-tick.C:
			if !send("snapshot", s.src.Snapshot()) {
				return
			}
		}
	}
}

// handleMetrics renders the snapshot in Prometheus text exposition format
// (all series sorted, so scrapes diff cleanly).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.src.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder

	counter := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}
	counter("taskprov_live_events_total", "Provenance events ingested.", snap.Events)
	counter("taskprov_live_tasks_total", "Task executions observed.", snap.Tasks)
	counter("taskprov_live_transitions_total", "Task state transitions observed.", snap.Transitions)
	counter("taskprov_live_transfers_total", "Dependency transfers observed.", snap.Transfers)
	counter("taskprov_live_transfer_bytes_total", "Bytes moved by dependency transfers.", snap.TransferBytes)
	counter("taskprov_live_io_ops_total", "POSIX I/O operations (Darshan).", snap.IOOps)
	counter("taskprov_live_io_bytes_total", "POSIX I/O bytes (Darshan).", snap.IOBytes)
	counter("taskprov_live_graphs_done_total", "Task graphs completed.", snap.GraphsDone)

	fmt.Fprintf(&b, "# HELP taskprov_live_phase_seconds Cumulative per-thread-slot phase time (Fig. 3 online).\n# TYPE taskprov_live_phase_seconds gauge\n")
	fmt.Fprintf(&b, "taskprov_live_phase_seconds{phase=\"io\"} %g\n", snap.IOSeconds)
	fmt.Fprintf(&b, "taskprov_live_phase_seconds{phase=\"comm\"} %g\n", snap.CommSeconds)
	fmt.Fprintf(&b, "taskprov_live_phase_seconds{phase=\"compute\"} %g\n", snap.ComputeSeconds)

	fmt.Fprintf(&b, "# HELP taskprov_live_critical_path_seconds Heaviest dependency chain of observed task time — a live makespan lower bound.\n# TYPE taskprov_live_critical_path_seconds gauge\n")
	fmt.Fprintf(&b, "taskprov_live_critical_path_seconds %g\n", snap.CriticalPathSeconds)

	if len(snap.StateOccupancy) > 0 {
		fmt.Fprintf(&b, "# HELP taskprov_live_state_occupancy Tasks currently in each scheduler state.\n# TYPE taskprov_live_state_occupancy gauge\n")
		for _, st := range sortedKeys(snap.StateOccupancy) {
			fmt.Fprintf(&b, "taskprov_live_state_occupancy{state=%q} %d\n", escapeLabel(st), snap.StateOccupancy[st])
		}
	}
	if len(snap.Groups) > 0 {
		fmt.Fprintf(&b, "# HELP taskprov_live_group_tasks_total Tasks finished per task group.\n# TYPE taskprov_live_group_tasks_total counter\n")
		for _, g := range sortedKeys(snap.Groups) {
			fmt.Fprintf(&b, "taskprov_live_group_tasks_total{group=%q} %d\n", escapeLabel(g), snap.Groups[g].Count)
		}
		fmt.Fprintf(&b, "# HELP taskprov_live_group_duration_seconds Task duration quantiles per group.\n# TYPE taskprov_live_group_duration_seconds summary\n")
		for _, g := range sortedKeys(snap.Groups) {
			gs := snap.Groups[g]
			eg := escapeLabel(g)
			fmt.Fprintf(&b, "taskprov_live_group_duration_seconds{group=%q,quantile=\"0.5\"} %g\n", eg, gs.P50Seconds)
			fmt.Fprintf(&b, "taskprov_live_group_duration_seconds{group=%q,quantile=\"0.9\"} %g\n", eg, gs.P90Seconds)
			fmt.Fprintf(&b, "taskprov_live_group_duration_seconds{group=%q,quantile=\"0.99\"} %g\n", eg, gs.P99Seconds)
			fmt.Fprintf(&b, "taskprov_live_group_duration_seconds_sum{group=%q} %g\n", eg, gs.TotalSeconds)
			fmt.Fprintf(&b, "taskprov_live_group_duration_seconds_count{group=%q} %d\n", eg, gs.Count)
		}
	}
	if len(snap.Warnings) > 0 {
		fmt.Fprintf(&b, "# HELP taskprov_live_warnings_total Runtime warnings per kind.\n# TYPE taskprov_live_warnings_total counter\n")
		for _, k := range sortedKeys(snap.Warnings) {
			fmt.Fprintf(&b, "taskprov_live_warnings_total{kind=%q} %d\n", escapeLabel(k), snap.Warnings[k])
		}
	}
	if len(snap.Workers) > 0 {
		fmt.Fprintf(&b, "# HELP taskprov_live_worker_exec_seconds Cumulative execution time per worker.\n# TYPE taskprov_live_worker_exec_seconds gauge\n")
		for _, wk := range sortedKeys(snap.Workers) {
			fmt.Fprintf(&b, "taskprov_live_worker_exec_seconds{worker=%q} %g\n", escapeLabel(wk), snap.Workers[wk].ExecSeconds)
		}
	}
	if len(snap.HostIO) > 0 {
		fmt.Fprintf(&b, "# HELP taskprov_live_host_io_bandwidth_bps POSIX bytes moved per second of I/O time, per host.\n# TYPE taskprov_live_host_io_bandwidth_bps gauge\n")
		for _, h := range sortedKeys(snap.HostIO) {
			fmt.Fprintf(&b, "taskprov_live_host_io_bandwidth_bps{host=%q} %g\n", escapeLabel(h), snap.HostIO[h].BandwidthBps)
		}
	}
	if len(snap.ConsumerLag) > 0 {
		fmt.Fprintf(&b, "# HELP taskprov_live_consumer_lag Events appended but not yet ingested by the monitor, per topic/partition.\n# TYPE taskprov_live_consumer_lag gauge\n")
		for _, key := range sortedKeys(snap.ConsumerLag) {
			topic, part := key, ""
			if i := strings.LastIndex(key, "/"); i >= 0 {
				topic, part = key[:i], key[i+1:]
			}
			fmt.Fprintf(&b, "taskprov_live_consumer_lag{topic=%q,partition=%q} %d\n",
				escapeLabel(topic), escapeLabel(part), snap.ConsumerLag[key])
		}
	}
	if len(snap.ClusterHealth) > 0 {
		byKind := map[string]int{}
		for _, ev := range snap.ClusterHealth {
			byKind[ev.Kind]++
		}
		fmt.Fprintf(&b, "# HELP taskprov_live_cluster_events_total Mofka cluster replication/failover events per kind.\n# TYPE taskprov_live_cluster_events_total counter\n")
		for _, k := range sortedKeys(byKind) {
			fmt.Fprintf(&b, "taskprov_live_cluster_events_total{kind=%q} %d\n", escapeLabel(k), byKind[k])
		}
	}
	if len(snap.Anomalies) > 0 {
		byKind := map[string]int{}
		for _, a := range snap.Anomalies {
			byKind[a.Kind]++
		}
		kinds := make([]string, 0, len(byKind))
		for k := range byKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Fprintf(&b, "# HELP taskprov_live_anomalies_total Online anomaly findings per kind.\n# TYPE taskprov_live_anomalies_total counter\n")
		for _, k := range kinds {
			fmt.Fprintf(&b, "taskprov_live_anomalies_total{kind=%q} %d\n", escapeLabel(k), byKind[k])
		}
	}
	_, _ = w.Write([]byte(b.String())) // client gone mid-write is fine
}

// escapeLabel sanitizes a Prometheus label value (the %q wrapping handles
// quotes and backslashes; newlines must not survive).
func escapeLabel(v string) string {
	return strings.ReplaceAll(v, "\n", " ")
}
