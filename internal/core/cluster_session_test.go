package core

import (
	"encoding/json"
	"strings"
	"testing"

	"taskprov/internal/dask"
	mcluster "taskprov/internal/mofka/cluster"
)

// clusterSession is testSession targeting a 3-broker, RF=2 sharded Mofka
// cluster instead of a standalone broker.
func clusterSession(seed uint64) SessionConfig {
	cfg := testSession(seed)
	cfg.ClusterBrokers = 3
	cfg.ClusterReplication = 2
	return cfg
}

// clusterRun executes the crash workflow against the cluster, optionally
// with a chaos spec, and fails the test on any run or graph error.
func clusterRun(t *testing.T, seed uint64, chaosSpec string) *RunArtifacts {
	t.Helper()
	cfg := clusterSession(seed)
	cfg.ChaosSpec = chaosSpec
	wf := &crashWorkflow{width: 32}
	art, err := Run(cfg, wf)
	if err != nil {
		t.Fatal(err)
	}
	if wf.graphErr != "" {
		t.Fatalf("graph erred: %s", wf.graphErr)
	}
	return art
}

// drainJSON drains a topic from the artifact broker and returns each event's
// canonical JSON encoding (encoding/json sorts map keys), so two runs'
// streams compare event for event.
func drainJSON(t *testing.T, art *RunArtifacts, topic string) []string {
	t.Helper()
	metas, err := DrainTopic(art.Broker, topic)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(metas))
	for i, m := range metas {
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = string(b)
	}
	return out
}

// TestClusterSessionBasic: a run published through a sharded cluster yields
// the same analyzable artifacts as a single-broker run — the merged read
// view serves every topic, the Table I counters come out right, and the
// live monitor's Summary is produced from the view.
func TestClusterSessionBasic(t *testing.T) {
	cfg := clusterSession(7)
	cfg.LiveMonitor = true
	wf := &crashWorkflow{width: 16}
	art, err := Run(cfg, wf)
	if err != nil {
		t.Fatal(err)
	}
	if art.Cluster == nil {
		t.Fatal("no cluster handle in artifacts")
	}
	if art.Broker == nil {
		t.Fatal("no merged read view")
	}
	if art.Collector.Broker() != nil {
		t.Fatal("cluster collector must not expose a standalone broker")
	}
	tasks, err := art.DistinctTasks()
	if err != nil || tasks != 2*16+1 {
		t.Fatalf("tasks = %d, %v", tasks, err)
	}
	graphs, err := art.TaskGraphs()
	if err != nil || graphs != 1 {
		t.Fatalf("graphs = %d, %v", graphs, err)
	}
	if art.Meta.Instrumentation.ClusterBrokers != 3 || art.Meta.Instrumentation.ClusterReplication != 2 {
		t.Fatalf("cluster shape missing from metadata: %+v", art.Meta.Instrumentation)
	}
	if art.Live == nil {
		t.Fatal("no live summary")
	}
	if art.Live.Events == 0 || art.Live.Tasks == 0 {
		t.Fatalf("live summary empty: %+v", art.Live)
	}
	// A healthy run records no failover provenance.
	if len(art.Live.ClusterHealth) != 0 {
		t.Fatalf("unexpected cluster events on a healthy run: %+v", art.Live.ClusterHealth)
	}
}

// TestClusterSessionValidate: impossible configurations fail up front with
// clear errors instead of mid-run.
func TestClusterSessionValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*SessionConfig)
	}{
		{"negative batch", func(c *SessionConfig) { c.MofkaBatchSize = -1 }},
		{"absurd batch", func(c *SessionConfig) { c.MofkaBatchSize = 1<<20 + 1 }},
		{"negative dxt segments", func(c *SessionConfig) { c.DXTBufferSegments = -1 }},
		{"negative brokers", func(c *SessionConfig) { c.ClusterBrokers = -1 }},
		{"replication without brokers", func(c *SessionConfig) { c.ClusterReplication = 2 }},
		{"quorum without brokers", func(c *SessionConfig) { c.ClusterQuorum = 2 }},
		{"replication over brokers", func(c *SessionConfig) { c.ClusterBrokers = 2; c.ClusterReplication = 3 }},
		{"quorum over replication", func(c *SessionConfig) { c.ClusterBrokers = 3; c.ClusterReplication = 2; c.ClusterQuorum = 3 }},
		{"too many brokers", func(c *SessionConfig) { c.ClusterBrokers = 65 }},
		{"live http with cluster", func(c *SessionConfig) {
			c.ClusterBrokers = 3
			c.LiveMonitor = true
			c.LiveHTTPAddr = "127.0.0.1:0"
		}},
	}
	for _, tc := range cases {
		cfg := testSession(1)
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
		}
	}
	if err := clusterSession(1).Validate(); err != nil {
		t.Errorf("valid cluster config rejected: %v", err)
	}
	// The chaos broker directive needs a cluster to aim at.
	cfg := testSession(1)
	cfg.ChaosSpec = "broker node=0 at=2s"
	if _, err := Run(cfg, &crashWorkflow{width: 4}); err == nil {
		t.Error("broker chaos without ClusterBrokers was accepted")
	}
}

// TestClusterChaosFailover is the cluster acceptance scenario: a 3-broker
// RF=2 cluster loses broker 0 mid-workflow (chaos-scheduled at a virtual
// time) and gets it back 3 virtual seconds later. The run must complete,
// no acknowledged event may be lost, and every post-mortem view must be
// identical to a no-crash run of the same seed — the producers buffer
// through the outage and replay through the healed replicas.
func TestClusterChaosFailover(t *testing.T) {
	const spec = "broker node=0 at=3s restart=3s"
	crash := clusterRun(t, 21, spec)
	baseline := clusterRun(t, 21, "")

	// Zero acknowledged-event loss: every provenance topic matches the
	// no-crash run event for event (the views perfrecup builds are pure
	// functions of these streams, so view equality follows).
	for _, topic := range []string{TopicTaskMeta, TopicTransitions, TopicExecutions, TopicTransfers, TopicGraphs, TopicSteals} {
		got := drainJSON(t, crash, topic)
		want := drainJSON(t, baseline, topic)
		if len(got) != len(want) {
			t.Fatalf("%s: %d events under chaos, %d without (acknowledged loss or duplication)", topic, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: event %d differs:\n%s\n%s", topic, i, got[i], want[i])
			}
		}
	}

	// The failover story is on the warnings topic: broker death, leader
	// elections away from the dead node, the rejoin, and replica catch-up.
	metas, err := DrainTopic(crash.Broker, TopicWarnings)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[dask.WarningKind]int)
	var daskWarns []dask.Warning
	for _, m := range metas {
		w := ParseWarning(m)
		kinds[w.Kind]++
		if !strings.HasPrefix(string(w.Kind), "cluster_") && w.Kind != dask.WarnProducerDegraded {
			daskWarns = append(daskWarns, w)
		}
	}
	if kinds[mcluster.EventBrokerDead] != 1 {
		t.Fatalf("broker_dead events = %d, want 1 (kinds: %v)", kinds[mcluster.EventBrokerDead], kinds)
	}
	if kinds[mcluster.EventBrokerRejoined] != 1 {
		t.Fatalf("broker_rejoined events = %d, want 1 (kinds: %v)", kinds[mcluster.EventBrokerRejoined], kinds)
	}
	if kinds[mcluster.EventLeaderElected] == 0 {
		t.Fatalf("no leader elections recorded (kinds: %v)", kinds)
	}
	// No worker was harmed: the dask-level warning stream matches baseline.
	bmetas, err := DrainTopic(baseline.Broker, TopicWarnings)
	if err != nil {
		t.Fatal(err)
	}
	var baseWarns []dask.Warning
	for _, m := range bmetas {
		w := ParseWarning(m)
		if !strings.HasPrefix(string(w.Kind), "cluster_") && w.Kind != dask.WarnProducerDegraded {
			baseWarns = append(baseWarns, w)
		}
	}
	if len(daskWarns) != len(baseWarns) {
		t.Fatalf("dask warnings: %d under chaos, %d without", len(daskWarns), len(baseWarns))
	}
	for i := range daskWarns {
		if daskWarns[i] != baseWarns[i] {
			t.Fatalf("dask warning %d differs:\n%+v\n%+v", i, daskWarns[i], baseWarns[i])
		}
	}
}

// TestClusterChaosDeterministicTimeline: the same seed and chaos spec must
// reproduce the identical failover timeline — every cluster health event,
// including its virtual timestamp, epoch, and detail string.
func TestClusterChaosDeterministicTimeline(t *testing.T) {
	const spec = "broker node=0 at=3s restart=3s"
	a := clusterRun(t, 21, spec).Cluster.Events()
	b := clusterRun(t, 21, spec).Cluster.Events()
	if len(a) == 0 {
		t.Fatal("no cluster events recorded")
	}
	if len(a) != len(b) {
		t.Fatalf("timeline lengths differ across identical runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cluster event %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
