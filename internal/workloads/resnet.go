package workloads

import (
	"fmt"

	"taskprov/internal/core"
	"taskprov/internal/dask"
	"taskprov/internal/posixio"
	"taskprov/internal/sim"
)

// ResNet152 reproduces the paper's fine-tuned ResNet152 batch-prediction
// workflow over the Imagewang subset: a single task graph of
// @dask.delayed-style load, transform, and predict tasks (Table I: 8645
// tasks over 3929 files). Loads read one small image file each, transforms
// are CPU preprocessing, and predicts run batches of 5 on the accelerator.
//
// The paper's Table I I/O count for this workflow is incomplete because
// Darshan's DXT buffers overflow (footnote 9); the session configuration in
// the benchmark harness reproduces that by bounding DXTBufferSegments.
type ResNet152 struct {
	NumImages int
	BatchSize int
	sizes     []int64 // per-image file size
	tensors   []int64 // per-image transformed tensor size
}

// NewResNet152 builds the generator with the calibrated dataset: 3929
// images of 80–400 KB (two read ops above 256 KB), batches of 5.
func NewResNet152() *ResNet152 {
	w := &ResNet152{NumImages: 3929, BatchSize: 5}
	rng := datasetRNG("resnet152")
	w.sizes = make([]int64, w.NumImages)
	w.tensors = make([]int64, w.NumImages)
	for i := range w.sizes {
		w.sizes[i] = int64(rng.IntBetween(80, 400)) << 10
		// Tensor size depends on the crop/resize path the image takes.
		w.tensors[i] = int64(rng.IntBetween(350, 1400)) << 10
	}
	return w
}

// Name implements core.Workflow.
func (w *ResNet152) Name() string { return "resnet152" }

func (w *ResNet152) imagePath(i int) string {
	return fmt.Sprintf("/lus/grand/imagewang/val/ILSVRC-%05d.JPEG", i)
}

// Stage implements core.Workflow.
func (w *ResNet152) Stage(env *core.Env) {
	for i := 0; i < w.NumImages; i++ {
		env.PFS.CreateNow(w.imagePath(i), w.sizes[i])
	}
}

// ExpectedTasks returns the graph's task count: load + transform per image,
// predict per batch, one summary.
func (w *ResNet152) ExpectedTasks() int {
	batches := (w.NumImages + w.BatchSize - 1) / w.BatchSize
	return 2*w.NumImages + batches + 1
}

// Run implements core.Workflow: one task graph, submitted at once.
func (w *ResNet152) Run(p *sim.Proc, cl *dask.Client, env *core.Env) {
	g := dask.NewGraph(1)
	transforms := make([]dask.TaskKey, w.NumImages)
	for i := 0; i < w.NumImages; i++ {
		i := i
		size := w.sizes[i]
		load := dask.TaskKey(fmt.Sprintf("load-%s", pseudoHash("load", i)))
		g.Add(&dask.TaskSpec{
			Key:        load,
			OutputSize: size,
			Run: func(ctx *dask.TaskContext) {
				f, err := ctx.Open(w.imagePath(i), posixio.RDONLY)
				if err != nil {
					panic(err)
				}
				// JPEG decode reads the file in <=256 KiB buffers.
				for off := int64(0); off < size; off += 256 << 10 {
					f.Pread(ctx.Proc(), off, 256<<10)
				}
				f.Close(ctx.Proc())
				ctx.Compute(sim.Milliseconds(60))
			},
		})
		tr := dask.TaskKey(fmt.Sprintf("transform-%s", pseudoHash("transform", i)))
		g.Add(&dask.TaskSpec{
			Key: tr, Deps: []dask.TaskKey{load},
			OutputSize:  w.tensors[i], // normalized tensor
			EstDuration: sim.Milliseconds(320),
		})
		transforms[i] = tr
	}
	var preds []dask.TaskKey
	for b := 0; b*w.BatchSize < w.NumImages; b++ {
		lo := b * w.BatchSize
		hi := lo + w.BatchSize
		if hi > w.NumImages {
			hi = w.NumImages
		}
		pred := dask.TaskKey(fmt.Sprintf("predict-%s", pseudoHash("predict", b)))
		g.Add(&dask.TaskSpec{
			Key: pred, Deps: append([]dask.TaskKey(nil), transforms[lo:hi]...),
			OutputSize:  5 << 10,
			EstDuration: sim.Milliseconds(2400),
		})
		preds = append(preds, pred)
	}
	g.Add(&dask.TaskSpec{
		Key:  dask.TaskKey(fmt.Sprintf("summarize-%s", pseudoHash("summary"))),
		Deps: preds, OutputSize: 64 << 10, EstDuration: sim.Milliseconds(500),
	})
	cl.SubmitAndWait(p, g)
}
