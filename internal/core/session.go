package core

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"taskprov/internal/chaos"
	"taskprov/internal/darshan"
	"taskprov/internal/dask"
	"taskprov/internal/live"
	"taskprov/internal/mofka"
	mcluster "taskprov/internal/mofka/cluster"
	"taskprov/internal/mofka/wal"
	"taskprov/internal/pfs"
	"taskprov/internal/platform"
	"taskprov/internal/posixio"
	"taskprov/internal/sim"
	"taskprov/internal/whatif"
)

// Env exposes the run's substrate to workflow implementations (dataset
// staging, extra observers).
type Env struct {
	Kernel   *sim.Kernel
	Platform *platform.Cluster
	PFS      *pfs.FileSystem
	FS       *posixio.FS
	Cluster  *dask.Cluster
	RNG      *sim.RNG
}

// Workflow is implemented by workload generators: Stage pre-populates input
// datasets on the PFS (before timing starts), Run drives the client program.
type Workflow interface {
	Name() string
	Stage(env *Env)
	Run(p *sim.Proc, cl *dask.Client, env *Env)
}

// SessionConfig describes one instrumented run.
type SessionConfig struct {
	JobID    string
	Seed     uint64
	Platform platform.Config
	PFS      pfs.Config
	Dask     dask.Config

	// DarshanDXT enables extended tracing; DXTBufferSegments caps the
	// per-process trace buffer (0 = darshan.DefaultDXTBufferSegments).
	DarshanDXT        bool
	DXTBufferSegments int

	// DarshanMaxFileRecords caps the per-process file record table
	// (0 = darshan.DefaultMaxFileRecords).
	DarshanMaxFileRecords int

	// Mofka producer batching for the provenance stream.
	MofkaBatchSize int

	// ChaosSpec, when non-empty, arms the fault-injection plan parsed from
	// it (see internal/chaos) before the run starts: worker kills/restarts
	// at virtual times and broker append faults. The same seed and spec
	// reproduce the identical failure and recovery event sequence.
	ChaosSpec string

	// MofkaDataDir, when set, backs the run's broker with the durable
	// segmented event log rooted there (internal/mofka/wal): every
	// provenance event is crash-safe on disk and the directory can be
	// analyzed post-mortem with perfrecup, without JSONL export. Ignored
	// when an external broker is passed to RunOnBroker.
	MofkaDataDir string
	// MofkaSyncPolicy selects the event log's fsync policy: "batch"
	// (default), "interval", or "never". See wal.ParseSyncPolicy.
	MofkaSyncPolicy string

	// ClusterBrokers, when > 0, backs the provenance stream with a sharded,
	// replicated Mofka cluster of that many broker replicas instead of a
	// single broker (internal/mofka/cluster): topic partitions spread over
	// the replicas by rendezvous hashing, appends are quorum-acknowledged,
	// and a broker crash (see the chaos "broker" directive) fails affected
	// partitions over to surviving replicas without losing acknowledged
	// events. RunArtifacts.Broker then holds the cluster's merged read view
	// and RunArtifacts.Cluster the live cluster handle. Incompatible with an
	// external broker passed to RunOnBroker.
	ClusterBrokers int
	// ClusterReplication is the replica count per partition (0 = the
	// cluster default, 2 capped at the broker count). Must be <=
	// ClusterBrokers.
	ClusterReplication int
	// ClusterQuorum is the acknowledgement quorum per append (0 = majority
	// of the replication factor). Must be <= ClusterReplication.
	ClusterQuorum int

	// DisableCollection turns off all instrumentation (for overhead
	// ablations): no plugins, no Darshan tracers.
	DisableCollection bool

	// LiveMonitor attaches an internal/live Monitor to the run's broker:
	// streaming aggregation and online anomaly detection while the
	// workflow executes, with the final Summary in RunArtifacts.Live. The
	// monitor's end-of-run aggregates are guaranteed equal to the
	// post-mortem PERFRECUP views over the same artifacts.
	LiveMonitor bool
	// LiveHTTPAddr, when set together with LiveMonitor, serves the live
	// snapshot/metrics/SSE endpoints on this address for the duration of
	// the run (e.g. "127.0.0.1:9090").
	LiveHTTPAddr string
	// LiveOptions tunes the monitor (zero value = defaults).
	LiveOptions live.MonitorOptions
}

// Validate rejects impossible session configurations with a clear error
// before any resource is built — negative or absurd knob values surface
// here instead of as confusing failures mid-run. Run/RunOnBroker call it
// first; commands should call it right after flag parsing.
func (cfg SessionConfig) Validate() error {
	if cfg.MofkaBatchSize < 0 {
		return fmt.Errorf("core: negative Mofka batch size %d", cfg.MofkaBatchSize)
	}
	if cfg.MofkaBatchSize > 1<<20 {
		return fmt.Errorf("core: Mofka batch size %d is absurd (max %d)", cfg.MofkaBatchSize, 1<<20)
	}
	if cfg.DXTBufferSegments < 0 {
		return fmt.Errorf("core: negative DXT buffer segments %d", cfg.DXTBufferSegments)
	}
	if cfg.DarshanMaxFileRecords < 0 {
		return fmt.Errorf("core: negative Darshan max file records %d", cfg.DarshanMaxFileRecords)
	}
	if cfg.ClusterBrokers < 0 {
		return fmt.Errorf("core: negative cluster broker count %d", cfg.ClusterBrokers)
	}
	if cfg.Dask.ProxyThresholdBytes < 0 {
		return fmt.Errorf("core: negative proxy threshold %d", cfg.Dask.ProxyThresholdBytes)
	}
	if cfg.Dask.ProxyThresholdBytes == 0 && cfg.Dask.ProxyPrefetch {
		return fmt.Errorf("core: ProxyPrefetch requires a positive ProxyThresholdBytes")
	}
	if cfg.ClusterBrokers == 0 && (cfg.ClusterReplication != 0 || cfg.ClusterQuorum != 0) {
		return fmt.Errorf("core: cluster replication/quorum set without ClusterBrokers")
	}
	if cfg.ClusterBrokers > 0 {
		ccfg := mcluster.Config{
			Brokers:           cfg.ClusterBrokers,
			ReplicationFactor: cfg.ClusterReplication,
			Quorum:            cfg.ClusterQuorum,
		}
		if err := ccfg.Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		if cfg.LiveHTTPAddr != "" {
			return fmt.Errorf("core: the live HTTP endpoint requires a standalone broker (cluster runs attach the monitor to the merged read view after the run)")
		}
	}
	return nil
}

// DefaultSessionConfig mirrors the paper's setup: Polaris-like platform with
// 2 worker nodes, Lustre-like storage, 4 workers/node x 8 threads, DXT on.
func DefaultSessionConfig(jobID string, seed uint64) SessionConfig {
	return SessionConfig{
		JobID:          jobID,
		Seed:           seed,
		Platform:       platform.Polaris(),
		PFS:            pfs.Lustre(),
		Dask:           dask.DefaultConfig(),
		DarshanDXT:     true,
		MofkaBatchSize: 64,
	}
}

// RunArtifacts is everything one instrumented run leaves behind: the Mofka
// event topics, per-worker Darshan logs, and the metadata chart.
type RunArtifacts struct {
	Meta        RunMetadata
	Broker      *mofka.Broker
	DarshanLogs []*darshan.Log
	Collector   *Collector

	// Cluster is the sharded Mofka cluster the run published through, set
	// when SessionConfig.ClusterBrokers > 0. Broker then holds the
	// cluster's merged read view (every partition's acknowledged prefix
	// plus max-merged cursors), so every analysis path works unchanged.
	Cluster *mcluster.Cluster

	// Live is the live monitor's final Summary, set when
	// SessionConfig.LiveMonitor was enabled.
	Live *live.Summary

	// CritPath is the whole-run critical-path digest (internal/whatif),
	// computed at the end of every instrumented run: the makespan's
	// attribution to compute, transfer, I/O, scheduler, and proxy time.
	// Nil when collection was disabled.
	CritPath *whatif.Summary

	WallTime sim.Time
}

// Run executes the workflow under full instrumentation and returns the run's
// artifacts.
func Run(cfg SessionConfig, wf Workflow) (*RunArtifacts, error) {
	return RunOnBroker(cfg, wf, nil)
}

// RunOnBroker is Run with an externally supplied Mofka broker, so in-situ
// consumers (started before the run, possibly in other goroutines or behind
// a TCP endpoint) share the event stream. A nil broker creates a private
// in-memory one.
func RunOnBroker(cfg SessionConfig, wf Workflow, broker *mofka.Broker) (*RunArtifacts, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ClusterBrokers > 0 && broker != nil {
		return nil, fmt.Errorf("core: ClusterBrokers is incompatible with an external broker")
	}
	k := sim.NewKernel(cfg.Seed)
	plat := platform.New(k, cfg.Platform)
	fsys := pfs.New(k, cfg.PFS)
	px := posixio.NewFS(fsys)

	// Darshan runtime per worker process.
	var runtimes []*darshan.Runtime
	tracers := dask.TracerFactory(nil)
	if !cfg.DisableCollection {
		tracers = func(rank int, hostname string) posixio.Tracer {
			rt := darshan.NewRuntime(darshan.Config{
				JobID: cfg.JobID, Rank: rank, Hostname: hostname,
				Exe:        wf.Name(),
				DXTEnabled: cfg.DarshanDXT, DXTBufferSegments: cfg.DXTBufferSegments,
				MaxFileRecords: cfg.DarshanMaxFileRecords,
			})
			runtimes = append(runtimes, rt)
			return rt
		}
	}

	cluster := dask.NewCluster(k, plat, px, cfg.Dask, tracers)

	// Sharded, replicated deployment: the provenance stream targets a
	// multi-broker Mofka cluster instead of one broker. Health events are
	// timestamped with virtual time so the failover timeline lines up with
	// the rest of the provenance stream.
	var clu *mcluster.Cluster
	if cfg.ClusterBrokers > 0 {
		ccfg := mcluster.Config{
			Brokers:           cfg.ClusterBrokers,
			ReplicationFactor: cfg.ClusterReplication,
			Quorum:            cfg.ClusterQuorum,
			NowSeconds:        func() float64 { return k.Now().Seconds() },
		}
		if cfg.MofkaDataDir != "" {
			if mcluster.IsClusterDir(cfg.MofkaDataDir) || mofka.IsDataDir(cfg.MofkaDataDir) {
				return nil, fmt.Errorf("core: data dir %s already holds an event log (one directory per run)", cfg.MofkaDataDir)
			}
			pol, err := wal.ParseSyncPolicy(cfg.MofkaSyncPolicy)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			ccfg.DataDir = cfg.MofkaDataDir
			ccfg.WAL = wal.Options{Sync: pol}
		}
		var err error
		clu, err = mcluster.New(ccfg)
		if err != nil {
			return nil, err
		}
	}

	if broker == nil && clu == nil {
		if cfg.MofkaDataDir != "" {
			// Each run gets a fresh event log: appending a second run to an
			// existing log would silently merge both runs' provenance.
			if mofka.IsDataDir(cfg.MofkaDataDir) {
				return nil, fmt.Errorf("core: data dir %s already holds an event log (one directory per run)", cfg.MofkaDataDir)
			}
			pol, err := wal.ParseSyncPolicy(cfg.MofkaSyncPolicy)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			broker, err = mofka.NewDurableBroker(mofka.Options{
				DataDir: cfg.MofkaDataDir,
				WAL:     wal.Options{Sync: pol},
			})
			if err != nil {
				return nil, err
			}
		} else {
			broker = mofka.NewStandaloneBroker()
		}
	}
	var collector *Collector
	if !cfg.DisableCollection {
		var err error
		// Resilience: a broker hiccup degrades the producers (bounded
		// buffering + quick in-line retries) instead of failing the run.
		popts := mofka.ProducerOptions{
			BatchSize:    cfg.MofkaBatchSize,
			FlushRetries: 2,
			RetryBackoff: time.Millisecond,
		}
		if clu != nil {
			collector, err = NewCollectorBus(clu.Bus(), 2, popts)
		} else {
			collector, err = NewCollector(broker, popts)
		}
		if err != nil {
			return nil, err
		}
		collector.SetClock(k.Now)
		cluster.AddSchedulerPlugin(collector.SchedulerPlugin())
		cluster.AddWorkerPlugin(collector.WorkerPlugin())
	}

	// Arm fault injection before anything starts so kills scheduled at early
	// virtual times land deterministically.
	if cfg.ChaosSpec != "" {
		plan, err := chaos.Parse(cfg.ChaosSpec)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		ctl := chaos.NewController(plan)
		if err := ctl.ArmWorkerFaults(k, cluster, len(cluster.Workers())); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if clu != nil {
			if err := ctl.ArmClusterFaults(k, clu); err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			ctl.ArmBroker(clu)
		} else {
			if len(plan.Brokers) > 0 {
				return nil, fmt.Errorf("core: chaos broker directive requires ClusterBrokers > 0")
			}
			ctl.ArmBroker(broker)
		}
	}

	// Live monitoring: attach the streaming aggregator to the broker before
	// the run starts, so it consumes the provenance topics while the
	// workflow executes. Its final aggregates equal the post-mortem
	// PERFRECUP views (the equivalence invariant, see internal/live).
	var monitor *live.Monitor
	var liveSrv *live.Server
	if cfg.LiveMonitor && clu == nil {
		monitor = live.NewMonitor(broker, cfg.LiveOptions)
		slots := cfg.Platform.Nodes * cfg.Dask.WorkersPerNode * cfg.Dask.ThreadsPerWorker
		monitor.Aggregator().SetMeta(wf.Name(), cfg.Seed, slots)
		if cfg.LiveHTTPAddr != "" {
			var err error
			liveSrv, err = live.Serve(cfg.LiveHTTPAddr, monitor)
			if err != nil {
				monitor.Stop()
				return nil, err
			}
		}
	}
	finishedRun := false
	defer func() {
		if finishedRun {
			return
		}
		// Error path: tear the monitor down without a final Summary.
		if liveSrv != nil {
			liveSrv.Close()
		}
		if monitor != nil {
			monitor.Stop()
		}
	}()

	env := &Env{Kernel: k, Platform: plat, PFS: fsys, FS: px, Cluster: cluster, RNG: k.RNG("workflow")}
	wf.Stage(env)

	cluster.Start()
	var start, end sim.Time
	finished := false
	k.Go(func(p *sim.Proc) {
		cl := cluster.Client()
		start = p.Now()
		cl.WaitForWorkers(p, len(cluster.Workers()))
		wf.Run(p, cl, env)
		end = p.Now()
		finished = true
		k.Stop()
	})
	k.Run()
	if !finished {
		return nil, fmt.Errorf("core: workflow %q deadlocked at %v (%d events pending)", wf.Name(), k.Now(), k.Pending())
	}

	art := &RunArtifacts{Broker: broker, Collector: collector, Cluster: clu, WallTime: end - start}
	if collector != nil {
		if err := collector.Flush(); err != nil {
			return nil, err
		}
	}
	if clu != nil {
		// The cluster-health lane: every replication/failover event (broker
		// dead, leader elected, catch-up, under-replication, rebalance) is
		// recorded on the warnings topic so perfrecup and live render the
		// failover timeline from the provenance stream itself. Drained after
		// the final flush so the append-time events are all present.
		if collector != nil {
			for _, ev := range clu.Events() {
				collector.pushWarning(clusterWarning(ev))
			}
			if err := collector.Flush(); err != nil {
				return nil, err
			}
		}
		// All analyses read the merged view: acknowledged prefixes of every
		// partition plus max-merged consumer cursors, materialized as a
		// standalone in-memory broker.
		view, err := clu.ReadView()
		if err != nil {
			return nil, fmt.Errorf("core: cluster read view: %w", err)
		}
		art.Broker = view
	}
	for _, rt := range runtimes {
		art.DarshanLogs = append(art.DarshanLogs, rt.Snapshot())
	}
	if cfg.LiveMonitor && clu != nil {
		// Cluster runs attach the monitor to the merged read view once the
		// acknowledged prefixes are final; the Summary still satisfies the
		// live/post-mortem equivalence invariant.
		monitor = live.NewMonitor(art.Broker, cfg.LiveOptions)
		slots := cfg.Platform.Nodes * cfg.Dask.WorkersPerNode * cfg.Dask.ThreadsPerWorker
		monitor.Aggregator().SetMeta(wf.Name(), cfg.Seed, slots)
	}
	if monitor != nil {
		sum := monitor.Finish(art.DarshanLogs, (end - start).Seconds())
		art.Live = &sum
		if liveSrv != nil {
			liveSrv.Close()
		}
	}
	finishedRun = true
	dxtBuf := cfg.DXTBufferSegments
	if dxtBuf <= 0 {
		dxtBuf = darshan.DefaultDXTBufferSegments
	}
	art.Meta = RunMetadata{
		JobID:    cfg.JobID,
		Workflow: wf.Name(),
		Seed:     cfg.Seed,
		Platform: plat.Describe(),
		Storage:  fsys.Describe(),
		Software: DefaultSoftwareStack(),
		Job: JobConfig{
			Nodes:            cfg.Platform.Nodes,
			WorkersPerNode:   cfg.Dask.WorkersPerNode,
			ThreadsPerWorker: cfg.Dask.ThreadsPerWorker,
			Queue:            "prod",
			Script:           jobScript(cfg, wf.Name()),
		},
		DaskConfig: DescribeDaskConfig(cluster.Config()),
		Instrumentation: InstrumentationConfig{
			DXTEnabled:         cfg.DarshanDXT,
			DXTBufferSegments:  dxtBuf,
			MofkaBatchSize:     cfg.MofkaBatchSize,
			MofkaDataDir:       cfg.MofkaDataDir,
			ClusterBrokers:     cfg.ClusterBrokers,
			ClusterReplication: cfg.ClusterReplication,
			Chaos:              cfg.ChaosSpec,
		},
		StartSeconds: start.Seconds(),
		EndSeconds:   end.Seconds(),
		WallSeconds:  (end - start).Seconds(),
	}
	if !cfg.DisableCollection {
		// The critical-path digest rides on every instrumented run; an
		// extraction failure (e.g. a chaos run that lost its stream) just
		// leaves it nil.
		if model, err := whatif.Extract(art.WhatIfInput()); err == nil {
			art.CritPath = model.CriticalPath().Summarize()
		}
	}
	if cfg.MofkaDataDir != "" {
		// Make the data directory self-describing: with metadata.json next
		// to topics/ (or cluster.json), perfrecup can analyze the event log
		// post-mortem without the JSONL run directory.
		if clu != nil {
			if err := clu.Sync(); err != nil {
				return nil, err
			}
		} else if err := broker.Sync(); err != nil {
			return nil, err
		}
		p := filepath.Join(cfg.MofkaDataDir, "metadata.json")
		if err := os.WriteFile(p, EncodeMetadata(art.Meta), 0o644); err != nil {
			return nil, fmt.Errorf("core: persist metadata: %w", err)
		}
		if err := art.WriteDarshanLogs(cfg.MofkaDataDir); err != nil {
			return nil, fmt.Errorf("core: persist darshan logs: %w", err)
		}
	}
	return art, nil
}

// clusterWarning maps one cluster health event onto the warnings topic: the
// kind is carried verbatim (all "cluster_"-prefixed; see
// perfrecup.ClusterTimelineView and the live cluster-health lane), the
// source broker becomes the worker label, and the virtual timestamp keeps
// the failover timeline aligned with the rest of the provenance stream.
func clusterWarning(ev mcluster.Event) dask.Warning {
	msg := ev.Detail
	if ev.Topic != "" {
		msg = fmt.Sprintf("%s[%d] epoch=%d: %s", ev.Topic, ev.Partition, ev.Epoch, ev.Detail)
	}
	return dask.Warning{
		Kind:    dask.WarningKind(ev.Kind),
		Worker:  fmt.Sprintf("broker-%d", ev.Node),
		At:      sim.Time(ev.At * float64(time.Second)),
		Message: msg,
	}
}

// jobScript synthesizes the submitted job script, part of the job-layer
// provenance ("we collect job-level data, including job scripts and logs").
func jobScript(cfg SessionConfig, workflow string) string {
	return fmt.Sprintf(`#!/bin/bash
#PBS -l select=%d:system=polaris
#PBS -q prod
#PBS -l walltime=01:00:00
mpiexec -n %d --ppn %d dask-worker --nthreads %d ...
python %s.py --seed %d
`, cfg.Platform.Nodes, cfg.Platform.Nodes*cfg.Dask.WorkersPerNode,
		cfg.Dask.WorkersPerNode, cfg.Dask.ThreadsPerWorker, workflow, cfg.Seed)
}

// TotalIOOps counts I/O operations the way the paper's analysis pipeline
// does — from DXT trace segments — so it reproduces Table I's "I/O
// operation" row, including the ResNet152 under-count when DXT buffers
// overflow. TotalPosixOps gives the untruncated counter-based figure.
func (a *RunArtifacts) TotalIOOps() int64 {
	var n int64
	for _, l := range a.DarshanLogs {
		n += l.TotalDXTSegments()
	}
	return n
}

// TotalPosixOps sums reads+writes from the POSIX counter module.
func (a *RunArtifacts) TotalPosixOps() int64 {
	var n int64
	for _, l := range a.DarshanLogs {
		n += l.TotalOps()
	}
	return n
}

// TotalCommunications counts incoming inter-worker transfers — Table I's
// "Communications".
func (a *RunArtifacts) TotalCommunications() (int64, error) {
	metas, err := DrainTopic(a.Broker, TopicTransfers)
	if err != nil {
		return 0, err
	}
	return int64(len(metas)), nil
}

// DistinctFiles counts the distinct file paths across Darshan logs —
// Table I's "Distinct files".
func (a *RunArtifacts) DistinctFiles() int {
	set := map[string]struct{}{}
	for _, l := range a.DarshanLogs {
		for _, r := range l.Records {
			set[r.Path] = struct{}{}
		}
	}
	return len(set)
}

// DistinctTasks counts tasks registered at the scheduler — Table I's
// "Distinct tasks".
func (a *RunArtifacts) DistinctTasks() (int, error) {
	metas, err := DrainTopic(a.Broker, TopicTaskMeta)
	if err != nil {
		return 0, err
	}
	set := map[string]struct{}{}
	for _, m := range metas {
		set[str(m, "key")] = struct{}{}
	}
	return len(set), nil
}

// TaskGraphs counts completed task graphs — Table I's "Task graphs".
func (a *RunArtifacts) TaskGraphs() (int, error) {
	metas, err := DrainTopic(a.Broker, TopicGraphs)
	if err != nil {
		return 0, err
	}
	return len(metas), nil
}
