package sim

import "testing"

// BenchmarkKernelEventThroughput measures raw event dispatch rate: the
// budget every simulated run spends most of its time in.
func BenchmarkKernelEventThroughput(b *testing.B) {
	k := NewKernel(1)
	var fn func()
	n := 0
	fn = func() {
		n++
		if n < b.N {
			k.After(Microsecond, fn)
		}
	}
	k.After(Microsecond, fn)
	b.ResetTimer()
	k.Run()
}

// BenchmarkProcSwitch measures the coroutine park/resume handoff cost.
func BenchmarkProcSwitch(b *testing.B) {
	k := NewKernel(1)
	k.Go(func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkSharedServer measures processor-sharing bookkeeping with steady
// concurrent churn.
func BenchmarkSharedServer(b *testing.B) {
	k := NewKernel(1)
	s := NewSharedServer(k, "dev", 1e9, 0)
	n := 0
	var submit func()
	submit = func() {
		n++
		if n < b.N {
			s.Submit(1000, submit)
		}
	}
	s.Submit(1000, submit)
	b.ResetTimer()
	k.Run()
}
