// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON document on stdout, so benchmark results can be checked in
// and diffed across changes (see `make bench-cluster` and
// BENCH_cluster.json). Only standard benchmark result lines are parsed;
// everything else (PASS, ok, warm-up noise) is ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line. Fields absent from the input (e.g. MB/s
// without -benchtime SetBytes) stay zero and are omitted. Custom units
// reported via b.ReportMetric (e.g. the proxy benchmark's control-B/op)
// land in Extra keyed by their unit string.
type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerSec    float64            `json:"mb_per_s,omitempty"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Name: f[0], Iterations: iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "MB/s":
				r.MBPerSec = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			default:
				if r.Extra == nil {
					r.Extra = make(map[string]float64)
				}
				r.Extra[f[i+1]] = v
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
