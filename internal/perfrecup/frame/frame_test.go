package frame

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sample() *Frame {
	return MustNew(
		Strings("worker", "w0", "w0", "w1", "w1", "w2"),
		Ints("thread", 1, 2, 1, 2, 1),
		Floats("duration", 1.5, 2.5, 3.5, 4.5, 10.5),
		Bools("io", true, false, true, false, true),
	)
}

func TestNewValidations(t *testing.T) {
	if _, err := New(Ints("a", 1, 2), Ints("a", 3, 4)); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := New(Ints("a", 1, 2), Ints("b", 3)); err == nil {
		t.Fatal("ragged columns accepted")
	}
}

func TestAccessorsAndDtypes(t *testing.T) {
	f := sample()
	if f.NRows() != 5 || f.NCols() != 4 {
		t.Fatalf("shape = %dx%d", f.NRows(), f.NCols())
	}
	if f.Col("worker").Str(2) != "w1" || f.Col("thread").Int(1) != 2 {
		t.Fatal("element access wrong")
	}
	if f.Col("duration").Float(4) != 10.5 || !f.Col("io").Bool(0) {
		t.Fatal("element access wrong")
	}
	if f.Col("thread").Float(0) != 1.0 {
		t.Fatal("Int column must convert via Float")
	}
	if !f.HasCol("io") || f.HasCol("nope") {
		t.Fatal("HasCol wrong")
	}
	if f.Col("duration").Dtype() != Float || Float.String() != "float" {
		t.Fatal("dtype reporting wrong")
	}
}

func TestColPanicsOnMissing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("missing column did not panic")
		}
	}()
	sample().Col("ghost")
}

func TestTypedAccessorPanicsOnWrongType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Str on int column did not panic")
		}
	}()
	sample().Col("thread").Str(0)
}

func TestFilterSelectHead(t *testing.T) {
	f := sample()
	io := f.Filter(func(i int) bool { return f.Col("io").Bool(i) })
	if io.NRows() != 3 {
		t.Fatalf("filtered rows = %d", io.NRows())
	}
	sel := io.Select("worker", "duration")
	if sel.NCols() != 2 || sel.Columns()[0] != "worker" {
		t.Fatalf("select = %v", sel.Columns())
	}
	h := f.Head(2)
	if h.NRows() != 2 || h.Col("worker").Str(1) != "w0" {
		t.Fatalf("head = %v", h)
	}
	if f.Head(100).NRows() != 5 {
		t.Fatal("over-long head wrong")
	}
}

func TestSortBy(t *testing.T) {
	f := sample().SortBy("duration", true)
	if f.Col("duration").Float(0) != 10.5 {
		t.Fatalf("desc sort head = %v", f.Col("duration").Float(0))
	}
	f = f.SortBy("worker", false)
	if f.Col("worker").Str(0) != "w0" {
		t.Fatal("asc sort wrong")
	}
	// Stability: within w1, previous (desc duration) order preserved.
	if f.Col("worker").Str(2) != "w1" || f.Col("duration").Float(2) != 4.5 {
		t.Fatalf("stable sort violated: %v", f)
	}
}

func TestWithColumnAddAndReplace(t *testing.T) {
	f := sample()
	g := f.WithColumn(Floats("norm", 0.1, 0.2, 0.3, 0.4, 1.0))
	if g.NCols() != 5 {
		t.Fatal("WithColumn add failed")
	}
	h := g.WithColumn(Floats("norm", 1, 1, 1, 1, 1))
	if h.NCols() != 5 || h.Col("norm").Float(0) != 1 {
		t.Fatal("WithColumn replace failed")
	}
}

func TestGroupByAgg(t *testing.T) {
	f := sample()
	g := f.GroupBy("worker").Agg(
		Agg{Col: "duration", Fn: Sum},
		Agg{Col: "duration", Fn: Mean},
		Agg{Col: "duration", Fn: Count, As: "n"},
		Agg{Col: "duration", Fn: Max},
	)
	if g.NRows() != 3 {
		t.Fatalf("groups = %d", g.NRows())
	}
	// First-appearance order: w0, w1, w2.
	if g.Col("worker").Str(0) != "w0" || g.Col("duration_sum").Float(0) != 4.0 {
		t.Fatalf("w0 sum = %v", g.Col("duration_sum").Float(0))
	}
	if g.Col("duration_mean").Float(1) != 4.0 || g.Col("n").Int(1) != 2 {
		t.Fatal("w1 mean/count wrong")
	}
	if g.Col("duration_max").Float(2) != 10.5 {
		t.Fatal("w2 max wrong")
	}
}

func TestGroupByMultipleKeysAndStd(t *testing.T) {
	f := MustNew(
		Strings("a", "x", "x", "x", "y"),
		Ints("b", 1, 1, 2, 1),
		Floats("v", 2, 4, 9, 7),
	)
	g := f.GroupBy("a", "b").Agg(Agg{Col: "v", Fn: Std}, Agg{Col: "v", Fn: First})
	if g.NRows() != 3 {
		t.Fatalf("groups = %d", g.NRows())
	}
	// Group (x,1): values 2,4 -> std = sqrt(2).
	if got := g.Col("v_std").Float(0); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Fatalf("std = %v", got)
	}
	if g.Col("v_first").Float(0) != 2 {
		t.Fatal("first wrong")
	}
	// Singleton group std = 0.
	if g.Col("v_std").Float(1) != 0 {
		t.Fatal("singleton std != 0")
	}
}

func TestInnerJoin(t *testing.T) {
	tasks := MustNew(
		Strings("host", "n0", "n0", "n1"),
		Ints("tid", 1, 2, 1),
		Strings("key", "t-a", "t-b", "t-c"),
	)
	segs := MustNew(
		Strings("host", "n0", "n0", "n1", "n9"),
		Ints("tid", 1, 1, 1, 5),
		Floats("bytes", 100, 200, 300, 999),
	)
	j, err := tasks.Join(segs, Inner, "host", "tid")
	if err != nil {
		t.Fatal(err)
	}
	if j.NRows() != 3 { // t-a matches two segs, t-c matches one, t-b none
		t.Fatalf("join rows = %d\n%v", j.NRows(), j)
	}
	keys := map[string]float64{}
	for i := 0; i < j.NRows(); i++ {
		keys[j.Col("key").Str(i)] += j.Col("bytes").Float(i)
	}
	if keys["t-a"] != 300 || keys["t-c"] != 300 || keys["t-b"] != 0 {
		t.Fatalf("join content = %v", keys)
	}
}

func TestLeftJoinFillsZeros(t *testing.T) {
	l := MustNew(Strings("k", "a", "b"), Ints("x", 1, 2))
	r := MustNew(Strings("k", "a"), Floats("y", 5.5), Strings("s", "hit"), Ints("n", 9))
	j, err := l.Join(r, Left, "k")
	if err != nil {
		t.Fatal(err)
	}
	if j.NRows() != 2 {
		t.Fatalf("rows = %d", j.NRows())
	}
	if !math.IsNaN(j.Col("y").Float(1)) || j.Col("s").Str(1) != "" || j.Col("n").Int(1) != 0 {
		t.Fatalf("left join fill wrong: %v", j)
	}
}

func TestJoinNameClashSuffix(t *testing.T) {
	l := MustNew(Strings("k", "a"), Floats("v", 1))
	r := MustNew(Strings("k", "a"), Floats("v", 2))
	j, err := l.Join(r, Inner, "k")
	if err != nil {
		t.Fatal(err)
	}
	if !j.HasCol("v") || !j.HasCol("v_r") {
		t.Fatalf("columns = %v", j.Columns())
	}
	if j.Col("v").Float(0) != 1 || j.Col("v_r").Float(0) != 2 {
		t.Fatal("clash values wrong")
	}
}

func TestJoinErrors(t *testing.T) {
	l := MustNew(Strings("k", "a"))
	r := MustNew(Ints("k", 1))
	if _, err := l.Join(r, Inner, "k"); err == nil {
		t.Fatal("dtype mismatch accepted")
	}
	if _, err := l.Join(r, Inner); err == nil {
		t.Fatal("empty key list accepted")
	}
	if _, err := l.Join(MustNew(Strings("other", "x")), Inner, "k"); err == nil {
		t.Fatal("missing key accepted")
	}
}

func TestConcat(t *testing.T) {
	a := MustNew(Strings("k", "x"), Ints("v", 1))
	b := MustNew(Strings("k", "y"), Ints("v", 2))
	c, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.NRows() != 2 || c.Col("k").Str(1) != "y" || c.Col("v").Int(1) != 2 {
		t.Fatalf("concat = %v", c)
	}
	if _, err := Concat(a, MustNew(Strings("k", "z"))); err == nil {
		t.Fatal("schema mismatch accepted")
	}
	empty, err := Concat()
	if err != nil || empty.NRows() != 0 {
		t.Fatal("empty concat wrong")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	f := sample()
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NRows() != f.NRows() || g.NCols() != f.NCols() {
		t.Fatalf("shape = %dx%d", g.NRows(), g.NCols())
	}
	if g.Col("thread").Dtype() != Int || g.Col("duration").Dtype() != Float ||
		g.Col("worker").Dtype() != String || g.Col("io").Dtype() != Bool {
		t.Fatalf("inferred dtypes wrong: %v %v %v %v",
			g.Col("thread").Dtype(), g.Col("duration").Dtype(),
			g.Col("worker").Dtype(), g.Col("io").Dtype())
	}
	for i := 0; i < f.NRows(); i++ {
		if g.Col("duration").Float(i) != f.Col("duration").Float(i) {
			t.Fatal("values changed in round trip")
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty csv accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1")); err == nil {
		t.Fatal("ragged csv accepted")
	}
}

func TestUniqueStrings(t *testing.T) {
	f := sample()
	u := f.UniqueStrings("worker")
	if len(u) != 3 || u[0] != "w0" || u[2] != "w2" {
		t.Fatalf("unique = %v", u)
	}
}

func TestFloats64AndIsNumeric(t *testing.T) {
	f := sample()
	d := f.Col("duration").Floats64()
	if len(d) != 5 || d[4] != 10.5 {
		t.Fatalf("Floats64 = %v", d)
	}
	if !f.Col("thread").IsNumeric() || f.Col("worker").IsNumeric() {
		t.Fatal("IsNumeric wrong")
	}
}

func TestStringPreview(t *testing.T) {
	s := sample().String()
	if !strings.Contains(s, "Frame[5x4]") || !strings.Contains(s, "worker") {
		t.Fatalf("String() = %q", s)
	}
}

func TestDescribe(t *testing.T) {
	f := MustNew(
		Strings("name", "a", "b", "c", "d"),
		Floats("v", 1, 2, 3, 4),
		Ints("n", 10, 20, 30, 40),
	)
	stats := f.Describe()
	if len(stats) != 2 {
		t.Fatalf("described %d columns", len(stats))
	}
	v := stats[0]
	if v.Name != "v" || v.Count != 4 || v.Mean != 2.5 || v.Min != 1 || v.Max != 4 {
		t.Fatalf("v stats = %+v", v)
	}
	if v.P50 != 2.5 || v.P25 != 1.75 || v.P75 != 3.25 {
		t.Fatalf("quantiles = %+v", v)
	}
	if math.Abs(v.Std-math.Sqrt(5.0/3.0)) > 1e-12 {
		t.Fatalf("std = %v", v.Std)
	}
	if stats[1].Name != "n" || stats[1].Mean != 25 {
		t.Fatalf("n stats = %+v", stats[1])
	}
	// Empty frame safe.
	if got := MustNew(Floats("x")).Describe(); got[0].Count != 0 {
		t.Fatalf("empty describe = %+v", got)
	}
}

func TestGroupByPercentiles(t *testing.T) {
	// Group "a" holds 1..100; group "b" holds a constant.
	n := 100
	g := make([]string, n+3)
	v := make([]float64, n+3)
	for i := 0; i < n; i++ {
		g[i] = "a"
		v[i] = float64(i + 1)
	}
	for i := n; i < n+3; i++ {
		g[i] = "b"
		v[i] = 7
	}
	f := MustNew(Strings("g", g...), Floats("v", v...))
	out := f.GroupBy("g").Agg(
		Agg{Col: "v", Fn: P50},
		Agg{Col: "v", Fn: P95},
		Agg{Col: "v", Fn: P99},
	)
	if out.NRows() != 2 {
		t.Fatalf("rows = %d, want 2", out.NRows())
	}
	check := func(col string, row int, want float64) {
		t.Helper()
		got := out.Col(col).Float(row)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s[%d] = %g, want %g", col, row, got, want)
		}
	}
	// Linear interpolation over sorted 1..100: q*(n-1)+1.
	check("v_p50", 0, 50.5)
	check("v_p95", 0, 95.05)
	check("v_p99", 0, 99.01)
	check("v_p50", 1, 7)
	check("v_p95", 1, 7)
	check("v_p99", 1, 7)
}

func TestPercentileAggNames(t *testing.T) {
	for fn, want := range map[AggFunc]string{P50: "p50", P95: "p95", P99: "p99"} {
		if got := fn.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", int(fn), got, want)
		}
	}
}

func TestGroupByPercentileUnsorted(t *testing.T) {
	// Percentiles must not depend on row order.
	f := MustNew(Strings("g", "a", "a", "a", "a", "a"), Floats("v", 9, 1, 5, 3, 7))
	out := f.GroupBy("g").Agg(Agg{Col: "v", Fn: P50, As: "med"})
	if got := out.Col("med").Float(0); got != 5 {
		t.Fatalf("median = %g, want 5", got)
	}
}
