// Package live is the streaming counterpart to PERFRECUP: it attaches to the
// Mofka provenance topics while a run is still in flight, maintains
// incremental windowed aggregates (per-task-group throughput and duration
// quantiles, task-state occupancy, per-worker I/O and transfer volume,
// warning rates), and flags anomalies online — stragglers, event-loop
// unresponsiveness streaks, worker I/O-bandwidth collapse — emitting them
// back into an `anomalies` Mofka topic so they are themselves provenance.
//
// The correctness anchor is the live/post-mortem equivalence invariant: for
// any completed run, the monitor's final Summary must equal the post-mortem
// PERFRECUP views over the same artifacts. perfrecup.Phases therefore
// delegates to this package (see perfrecup.LiveReplay), so there is exactly
// one implementation of the aggregate definitions.
//
// Determinism despite streaming: a live monitor interleaves partitions in
// whatever order batches arrive, while a post-mortem replay walks them
// sequentially. Integer counters commute, but float addition does not, so
// every float accumulator is kept per (topic, partition) "lane" — within a
// partition event order is fixed — and lanes are merged in sorted key order
// only at Snapshot time. Per-group duration statistics are computed from
// sorted copies of the sample sets. The result: byte-identical summaries
// regardless of consumption order.
package live

import (
	"sort"
	"strings"
	"sync"

	"taskprov/internal/darshan"
	"taskprov/internal/dask"
	"taskprov/internal/mofka"
	"taskprov/internal/provenance"
	"taskprov/internal/whatif"
)

// AggregatorOptions tunes the streaming aggregation.
type AggregatorOptions struct {
	// WindowSeconds is the width of one live time window (sim clock).
	// Default 10s.
	WindowSeconds float64
	// Windows is how many trailing windows the ring keeps. Default 6.
	Windows int
	// GroupSampleCap bounds the per-group duration sample set used for
	// quantiles. Past the cap new samples are dropped (Count keeps
	// counting; GroupStats.Sampled records how many samples back the
	// quantiles). Default 1<<20.
	GroupSampleCap int
	// RecoveryEventCap bounds the retained recovery timeline (worker-lost,
	// task-rescheduled, key-recomputed, … events). Past the cap new events
	// are dropped from the timeline but still counted in Warnings.
	// Default 4096.
	RecoveryEventCap int
	// CritPathTaskCap bounds the per-task records (durations, dependency
	// lists) backing the CriticalPathSeconds lane; past the cap new tasks
	// stop contributing and the lane becomes a lower bound over the
	// retained prefix. Default 1<<20.
	CritPathTaskCap int
	// Anomaly configures the online detectors.
	Anomaly AnomalyConfig
}

func (o AggregatorOptions) withDefaults() AggregatorOptions {
	if o.WindowSeconds <= 0 {
		o.WindowSeconds = 10
	}
	if o.Windows <= 0 {
		o.Windows = 6
	}
	if o.GroupSampleCap <= 0 {
		o.GroupSampleCap = 1 << 20
	}
	if o.RecoveryEventCap <= 0 {
		o.RecoveryEventCap = 4096
	}
	if o.CritPathTaskCap <= 0 {
		o.CritPathTaskCap = 1 << 20
	}
	o.Anomaly = o.Anomaly.withDefaults()
	return o
}

// GroupStats summarizes the duration distribution of one task group. Tasks
// are grouped by dask.KeyPrefix — the same grouping perfrecup's per-prefix
// views use — so simple keys like "imread-0007" collapse into "imread"
// rather than forming one-sample groups, which is what makes per-group
// quantiles and the straggler detector's MAD baseline meaningful.
type GroupStats struct {
	Count        int64   `json:"count"`
	Sampled      int64   `json:"sampled"` // samples backing the quantiles
	TotalSeconds float64 `json:"total_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`
	MinSeconds   float64 `json:"min_seconds"`
	P50Seconds   float64 `json:"p50_seconds"`
	P90Seconds   float64 `json:"p90_seconds"`
	P99Seconds   float64 `json:"p99_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
	// Throughput is tasks finished per wall-clock second (0 until the
	// wall time is known).
	Throughput float64 `json:"throughput"`
}

// WorkerStats aggregates the provenance stream per worker.
type WorkerStats struct {
	Tasks            int64   `json:"tasks"`
	ExecSeconds      float64 `json:"exec_seconds"`
	TransferInBytes  int64   `json:"transfer_in_bytes"`
	TransferOutBytes int64   `json:"transfer_out_bytes"`
	Warnings         int64   `json:"warnings"`
}

// RecoveryEvent is one entry of the failure/recovery timeline: a warning
// whose kind is a recovery action (dask.WarningKind.IsRecovery).
type RecoveryEvent struct {
	At      float64 `json:"at"` // virtual seconds
	Kind    string  `json:"kind"`
	Worker  string  `json:"worker,omitempty"`
	Message string  `json:"message,omitempty"`
}

// ProxyStats aggregates the pass-by-reference data-plane topic: the proxy
// store's blob lifecycle (publish, resolve, miss, free, reclaim — see
// internal/proxystore) plus the store's resident footprint. ResidentBytes is
// reconstructed as a pure delta sum (published minus freed/reclaimed bytes),
// and PeakResidentBytes as a max over per-event snapshots — both commute, so
// the lane is deterministic regardless of partition consumption order.
type ProxyStats struct {
	Publishes int64 `json:"publishes"`
	Resolves  int64 `json:"resolves"` // reference hits (demand-fetch completed)
	Misses    int64 `json:"misses"`   // dangling references (owner crashed)
	Frees     int64 `json:"frees"`    // refcount drains and scheduler frees
	Reclaims  int64 `json:"reclaims"` // blobs swept when their owner died

	PublishedBytes int64 `json:"published_bytes"`
	ResolvedBytes  int64 `json:"resolved_bytes"`
	ReclaimedBytes int64 `json:"reclaimed_bytes"`

	ResidentBytes     int64 `json:"resident_bytes"`
	PeakResidentBytes int64 `json:"peak_resident_bytes"`

	// ResolveSeconds is the summed demand-to-arrival latency across
	// resolves; MeanResolveSeconds divides by Resolves.
	ResolveSeconds     float64 `json:"resolve_seconds"`
	MeanResolveSeconds float64 `json:"mean_resolve_seconds"`
}

// SpeculationStats aggregates the speculation provenance topic: the hedged
// execution lane (duplicate attempts launched, winners, cancelled and failed
// losers, promotions) plus the adaptive-retry lane (retries sent, budget
// denials). Counters commute; WastedSeconds — the virtual time cancelled
// losing attempts had been running — is summed per (topic, partition) lane so
// the figure is deterministic regardless of consumption order.
type SpeculationStats struct {
	Launched        int64 `json:"launched"`
	Won             int64 `json:"won"`
	Cancelled       int64 `json:"cancelled"`
	Failed          int64 `json:"failed"`
	Promoted        int64 `json:"promoted"`
	Retries         int64 `json:"retries"`
	BudgetExhausted int64 `json:"budget_exhausted"`

	// WastedSeconds is the summed runtime of losing attempts at the moment
	// they were cancelled — the price paid for hedging.
	WastedSeconds float64 `json:"wasted_seconds"`
	// RetryRate is retries per wall-clock second (0 until the wall time is
	// known).
	RetryRate float64 `json:"retry_rate"`
}

// HostIOStats aggregates Darshan POSIX counters per hostname (Darshan logs
// are keyed by host, not by WMS worker name — the paper fuses the two layers
// on hostname).
type HostIOStats struct {
	Reads        int64   `json:"reads"`
	Writes       int64   `json:"writes"`
	BytesRead    int64   `json:"bytes_read"`
	BytesWritten int64   `json:"bytes_written"`
	ReadTime     float64 `json:"read_time"`
	WriteTime    float64 `json:"write_time"`
	// BandwidthBps is (BytesRead+BytesWritten)/(ReadTime+WriteTime), 0
	// when no I/O time was recorded.
	BandwidthBps float64 `json:"bandwidth_bps"`
}

// Summary is one consistent snapshot of the live aggregates. For a completed
// run it must equal the post-mortem PERFRECUP views (Windows and Anomalies
// excepted: windows are a bounded trailing ring and anomaly emission depends
// on arrival order, so both are observability surfaces, not invariants).
type Summary struct {
	Workflow    string  `json:"workflow,omitempty"`
	Seed        uint64  `json:"seed,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
	ThreadSlots int     `json:"thread_slots"`

	Events      int64 `json:"events"` // provenance events ingested
	Tasks       int64 `json:"tasks"`
	Submitted   int64 `json:"submitted"`
	Transitions int64 `json:"transitions"`
	Transfers   int64 `json:"transfers"`
	GraphsDone  int64 `json:"graphs_done"`

	TransferBytes int64 `json:"transfer_bytes"`
	IOOps         int64 `json:"io_ops"`
	IOBytes       int64 `json:"io_bytes"`

	// CriticalPathSeconds is the heaviest dependency chain of task
	// execution time over the events received so far — a live lower bound
	// on the run's makespan that tightens as the run progresses (see
	// whatif.LongestChainSeconds). Computed at snapshot time as a pure
	// function of the retained record set, so partition consumption order
	// cannot change it.
	CriticalPathSeconds float64 `json:"critical_path_seconds"`

	// Raw cumulative phase sums and their per-thread-slot averages,
	// matching perfrecup.PhaseBreakdown exactly (ComputeSeconds is exec
	// minus I/O, clamped at zero, divided by ThreadSlots).
	RawIOSeconds   float64 `json:"raw_io_seconds"`
	RawCommSeconds float64 `json:"raw_comm_seconds"`
	RawExecSeconds float64 `json:"raw_exec_seconds"`
	IOSeconds      float64 `json:"io_seconds"`
	CommSeconds    float64 `json:"comm_seconds"`
	ComputeSeconds float64 `json:"compute_seconds"`

	// StateOccupancy is the current number of tasks in each scheduler
	// state (Fig. 4's phase breakdown computed online): each transition
	// decrements its from-state and increments its to-state. Zero-count
	// states are omitted.
	StateOccupancy map[string]int `json:"state_occupancy,omitempty"`

	Groups   map[string]GroupStats  `json:"groups,omitempty"`
	Workers  map[string]WorkerStats `json:"workers,omitempty"`
	HostIO   map[string]HostIOStats `json:"host_io,omitempty"`
	Warnings map[string]int         `json:"warnings,omitempty"`
	// WarningRates is warnings per kind per wall-clock second (0 until
	// the wall time is known).
	WarningRates map[string]float64 `json:"warning_rates,omitempty"`

	// Recovery is the failure/recovery timeline, sorted by (At, Kind,
	// Worker, Message) so it is identical for live and post-mortem replays
	// regardless of partition consumption order. Capped at
	// AggregatorOptions.RecoveryEventCap.
	Recovery []RecoveryEvent `json:"recovery,omitempty"`

	// ClusterHealth is the Mofka cluster's replication/failover lane:
	// warnings whose kind carries the "cluster_" prefix (broker dead,
	// leader elected, catch-up, under-replication, group rebalance; see
	// internal/mofka/cluster). Sorted like Recovery, capped at
	// RecoveryEventCap, empty for single-broker runs.
	ClusterHealth []RecoveryEvent `json:"cluster_health,omitempty"`

	// Proxy is the pass-by-reference data-plane lane; nil when the run
	// streamed no proxy-store events (direct transfers only).
	Proxy *ProxyStats `json:"proxy,omitempty"`

	// Speculation is the hedged-execution and adaptive-retry lane; nil when
	// the run streamed no speculation events.
	Speculation *SpeculationStats `json:"speculation,omitempty"`

	// ConsumerLag is the monitoring consumer's own backlog per
	// "topic/partition" — events appended but not yet ingested. Zero
	// entries are omitted; a fully drained monitor reports none. Set by
	// Monitor snapshots, never by post-mortem replays (which are always
	// fully drained).
	ConsumerLag map[string]uint64 `json:"consumer_lag,omitempty"`

	Windows   []WindowSnapshot `json:"windows,omitempty"`
	Anomalies []Anomaly        `json:"anomalies,omitempty"`
}

// laneKey identifies one per-(topic, partition) float accumulator lane.
type laneKey struct {
	topic string
	part  int
}

// lane holds the float sums whose addition order matters. One lane per
// (topic, partition); merged in sorted key order at Snapshot.
type lane struct {
	commSeconds    float64
	execSeconds    float64
	resolveSeconds float64 // proxy demand-to-arrival latency sums
	wastedSeconds  float64 // cancelled speculative attempts' runtime sums
	workerExec     map[string]float64
}

// groupAcc accumulates one task group's duration samples.
type groupAcc struct {
	count   int64
	samples []float64
}

// Aggregator maintains the streaming aggregates. Safe for concurrent use:
// one or more ingesters may feed it while snapshot readers observe it.
type Aggregator struct {
	mu   sync.Mutex
	opts AggregatorOptions

	workflow    string
	seed        uint64
	wall        float64
	threadSlots int

	events      int64
	tasks       int64
	submitted   int64
	transitions int64
	transfers   int64
	graphsDone  int64

	transferBytes int64
	ioOps         int64
	ioBytes       int64

	lanes     map[laneKey]*lane
	occupancy map[string]int
	groups    map[string]*groupAcc
	workers   map[string]*WorkerStats
	hostIO    map[string]*HostIOStats
	warnings  map[string]int

	// critDur/critDeps back the CriticalPathSeconds lane: per-task
	// execution duration (max-combined, so re-executions commute) and
	// dependency lists, both capped at CritPathTaskCap.
	critDur  map[string]float64
	critDeps map[string][]string

	// proxy holds the integer counters of the proxy-store lane (nil until
	// the first proxy event); its float ResolveSeconds lives in the lanes.
	proxy *ProxyStats

	// spec holds the integer counters of the speculation lane (nil until the
	// first speculation event); its float WastedSeconds lives in the lanes.
	spec *SpeculationStats

	recovery []RecoveryEvent
	cluster  []RecoveryEvent

	windows   *windowRing
	detect    *detectors
	anomalies []Anomaly
	subs      []func(Anomaly)
}

// NewAggregator builds an empty aggregator.
func NewAggregator(opts AggregatorOptions) *Aggregator {
	opts = opts.withDefaults()
	a := &Aggregator{
		opts:      opts,
		lanes:     make(map[laneKey]*lane),
		occupancy: make(map[string]int),
		groups:    make(map[string]*groupAcc),
		workers:   make(map[string]*WorkerStats),
		hostIO:    make(map[string]*HostIOStats),
		warnings:  make(map[string]int),
		critDur:   make(map[string]float64),
		critDeps:  make(map[string][]string),
		windows:   newWindowRing(opts.WindowSeconds, opts.Windows),
	}
	a.detect = newDetectors(opts.Anomaly, opts.WindowSeconds)
	return a
}

// OnAnomaly registers fn to be called (with the aggregator unlocked) for
// every anomaly the detectors raise. Must be called before ingestion starts.
func (a *Aggregator) OnAnomaly(fn func(Anomaly)) {
	a.mu.Lock()
	a.subs = append(a.subs, fn)
	a.mu.Unlock()
}

// SubscribeAnomalies returns a buffered channel carrying every anomaly
// raised from now on; slow receivers lose anomalies rather than stalling
// ingestion.
func (a *Aggregator) SubscribeAnomalies() <-chan Anomaly {
	ch := make(chan Anomaly, 64)
	a.OnAnomaly(func(an Anomaly) {
		select {
		case ch <- an:
		default:
		}
	})
	return ch
}

// SetMeta records run identity and the thread-slot divisor used for the
// per-slot phase averages (nodes × workers/node × threads/worker).
func (a *Aggregator) SetMeta(workflow string, seed uint64, threadSlots int) {
	a.mu.Lock()
	a.workflow, a.seed, a.threadSlots = workflow, seed, threadSlots
	a.mu.Unlock()
}

// SetWall records the run's wall time, enabling throughput and rate figures.
func (a *Aggregator) SetWall(seconds float64) {
	a.mu.Lock()
	a.wall = seconds
	a.mu.Unlock()
}

func (a *Aggregator) lane(topic string, part int) *lane {
	k := laneKey{topic, part}
	l := a.lanes[k]
	if l == nil {
		l = &lane{workerExec: make(map[string]float64)}
		a.lanes[k] = l
	}
	return l
}

func (a *Aggregator) worker(name string) *WorkerStats {
	w := a.workers[name]
	if w == nil {
		w = &WorkerStats{}
		a.workers[name] = w
	}
	return w
}

// IngestEvent feeds one provenance event. partition is the Mofka partition
// the event came from; events of one partition must be fed in partition
// order (both the live pull loop and the post-mortem replay guarantee this).
func (a *Aggregator) IngestEvent(topic string, partition int, m mofka.Metadata) {
	a.mu.Lock()
	var raised []Anomaly
	a.events++
	switch topic {
	case provenance.TopicTransitions:
		t := provenance.ParseTransition(m)
		a.transitions++
		if f := string(t.From); f != "" {
			a.occupancy[f]--
		}
		if to := string(t.To); to != "" {
			a.occupancy[to]++
		}
	case provenance.TopicExecutions:
		e := provenance.ParseExecution(m)
		dur := (e.Stop - e.Start).Seconds()
		a.tasks++
		l := a.lane(topic, partition)
		l.execSeconds += dur
		l.workerExec[e.Worker] += dur
		a.worker(e.Worker).Tasks++
		g := dask.KeyPrefix(e.Key)
		acc := a.groups[g]
		if acc == nil {
			acc = &groupAcc{}
			a.groups[g] = acc
		}
		acc.count++
		if len(acc.samples) < a.opts.GroupSampleCap {
			acc.samples = append(acc.samples, dur)
		}
		key := string(e.Key)
		if prev, ok := a.critDur[key]; ok || len(a.critDur) < a.opts.CritPathTaskCap {
			// Max-combine so a re-executed task (worker crash) contributes
			// its longest attempt regardless of arrival order.
			if dur > prev {
				a.critDur[key] = dur
			}
		}
		stop := e.Stop.Seconds()
		if b := a.windows.bucket(stop); b != nil {
			b.TasksFinished++
			b.ComputeSeconds += dur
		}
		raised = a.detect.onDuration(g, dur, stop)
	case provenance.TopicTransfers:
		t := provenance.ParseTransfer(m)
		a.transfers++
		a.transferBytes += t.Bytes
		a.lane(topic, partition).commSeconds += (t.Stop - t.Start).Seconds()
		a.worker(t.From).TransferOutBytes += t.Bytes
		a.worker(t.To).TransferInBytes += t.Bytes
		if b := a.windows.bucket(t.Stop.Seconds()); b != nil {
			b.Transfers++
			b.TransferBytes += t.Bytes
		}
	case provenance.TopicWarnings:
		w := provenance.ParseWarning(m)
		kind := string(w.Kind)
		a.warnings[kind]++
		a.worker(w.Worker).Warnings++
		at := w.At.Seconds()
		if w.Kind.IsRecovery() && len(a.recovery) < a.opts.RecoveryEventCap {
			a.recovery = append(a.recovery, RecoveryEvent{
				At: at, Kind: kind, Worker: w.Worker, Message: w.Message,
			})
		}
		if strings.HasPrefix(kind, "cluster_") && len(a.cluster) < a.opts.RecoveryEventCap {
			a.cluster = append(a.cluster, RecoveryEvent{
				At: at, Kind: kind, Worker: w.Worker, Message: w.Message,
			})
		}
		a.windows.addWarning(at, kind)
		raised = a.detect.onWarning(kind, w.Worker, at)
	case provenance.TopicProxy:
		e := provenance.ParseProxyEvent(m)
		if a.proxy == nil {
			a.proxy = &ProxyStats{}
		}
		p := a.proxy
		switch e.Op {
		case dask.ProxyOpPublish:
			p.Publishes++
			p.PublishedBytes += e.Bytes
			p.ResidentBytes += e.Bytes
		case dask.ProxyOpResolve:
			p.Resolves++
			p.ResolvedBytes += e.Bytes
			a.lane(topic, partition).resolveSeconds += e.ResolveLatency.Seconds()
		case dask.ProxyOpMiss:
			p.Misses++
		case dask.ProxyOpFree:
			p.Frees++
			p.ResidentBytes -= e.Bytes
		case dask.ProxyOpReclaim:
			p.Reclaims++
			p.ReclaimedBytes += e.Bytes
			p.ResidentBytes -= e.Bytes
		}
		if e.Resident > p.PeakResidentBytes {
			p.PeakResidentBytes = e.Resident
		}
	case provenance.TopicSpeculation:
		e := provenance.ParseSpeculationEvent(m)
		if a.spec == nil {
			a.spec = &SpeculationStats{}
		}
		switch e.Kind {
		case dask.SpecLaunched:
			a.spec.Launched++
		case dask.SpecWon:
			a.spec.Won++
		case dask.SpecCancelled:
			a.spec.Cancelled++
		case dask.SpecFailed:
			a.spec.Failed++
		case dask.SpecPromoted:
			a.spec.Promoted++
		case dask.SpecRetry:
			a.spec.Retries++
		case dask.SpecBudgetExhausted:
			a.spec.BudgetExhausted++
		}
		if e.Wasted > 0 {
			a.lane(topic, partition).wastedSeconds += e.Wasted.Seconds()
		}
	case provenance.TopicTaskMeta:
		a.submitted++
		tm := provenance.ParseTaskMeta(m)
		key := string(tm.Key)
		if _, ok := a.critDeps[key]; !ok && len(tm.Deps) > 0 && len(a.critDeps) < a.opts.CritPathTaskCap {
			deps := make([]string, len(tm.Deps))
			for i, d := range tm.Deps {
				deps[i] = string(d)
			}
			a.critDeps[key] = deps
		}
	case provenance.TopicGraphs:
		if provenance.Str(m, "event") == "done" {
			a.graphsDone++
		}
	}
	a.anomalies = append(a.anomalies, raised...)
	subs := a.subs
	a.mu.Unlock()
	for _, an := range raised {
		for _, fn := range subs {
			fn(an)
		}
	}
}

// IngestDarshanLog folds one per-worker Darshan log into the I/O aggregates:
// POSIX counters into the per-host totals, DXT segments into the windows and
// the bandwidth-collapse detector. Logs may be ingested in any order.
func (a *Aggregator) IngestDarshanLog(l *darshan.Log) {
	a.mu.Lock()
	var raised []Anomaly
	host := l.Job.Hostname
	h := a.hostIO[host]
	if h == nil {
		h = &HostIOStats{}
		a.hostIO[host] = h
	}
	for _, rec := range l.Records {
		h.Reads += rec.Counters.Reads
		h.Writes += rec.Counters.Writes
		h.BytesRead += rec.Counters.BytesRead
		h.BytesWritten += rec.Counters.BytesWritten
		h.ReadTime += rec.Counters.ReadTime
		h.WriteTime += rec.Counters.WriteTime
		a.ioOps += rec.Counters.Reads + rec.Counters.Writes
		a.ioBytes += rec.Counters.BytesRead + rec.Counters.BytesWritten
		for _, s := range rec.DXT {
			raised = append(raised, a.ingestIOSegmentLocked(host, s.Length, s.End)...)
		}
	}
	a.anomalies = append(a.anomalies, raised...)
	subs := a.subs
	a.mu.Unlock()
	for _, an := range raised {
		for _, fn := range subs {
			fn(an)
		}
	}
}

// IngestIOSegment feeds one I/O trace segment (worker label, byte length,
// end time) into the windows and the bandwidth-collapse detector without
// touching the cumulative counter totals. It exists for live sources that
// stream I/O observations before a full Darshan log is available.
func (a *Aggregator) IngestIOSegment(worker string, bytes int64, end float64) {
	a.mu.Lock()
	raised := a.ingestIOSegmentLocked(worker, bytes, end)
	a.anomalies = append(a.anomalies, raised...)
	subs := a.subs
	a.mu.Unlock()
	for _, an := range raised {
		for _, fn := range subs {
			fn(an)
		}
	}
}

func (a *Aggregator) ingestIOSegmentLocked(worker string, bytes int64, end float64) []Anomaly {
	if b := a.windows.bucket(end); b != nil {
		b.IOOps++
		b.IOBytes += bytes
		if b.WorkerIOBytes == nil {
			b.WorkerIOBytes = make(map[string]int64)
		}
		b.WorkerIOBytes[worker] += bytes
	}
	return a.detect.onIO(worker, bytes, end)
}

// Snapshot returns one consistent copy of the aggregates. Lanes merge in
// sorted key order and group quantiles come from sorted sample copies, so
// the result is independent of the order partitions were consumed in.
func (a *Aggregator) Snapshot() Summary {
	a.mu.Lock()
	defer a.mu.Unlock()

	s := Summary{
		Workflow:    a.workflow,
		Seed:        a.seed,
		WallSeconds: a.wall,
		ThreadSlots: a.threadSlots,

		Events:      a.events,
		Tasks:       a.tasks,
		Submitted:   a.submitted,
		Transitions: a.transitions,
		Transfers:   a.transfers,
		GraphsDone:  a.graphsDone,

		TransferBytes: a.transferBytes,
		IOOps:         a.ioOps,
		IOBytes:       a.ioBytes,
	}

	// Merge float lanes deterministically.
	keys := make([]laneKey, 0, len(a.lanes))
	for k := range a.lanes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].topic != keys[j].topic {
			return keys[i].topic < keys[j].topic
		}
		return keys[i].part < keys[j].part
	})
	workerExec := make(map[string]float64)
	var resolveSeconds, wastedSeconds float64
	for _, k := range keys {
		l := a.lanes[k]
		s.RawCommSeconds += l.commSeconds
		s.RawExecSeconds += l.execSeconds
		resolveSeconds += l.resolveSeconds
		wastedSeconds += l.wastedSeconds
		for w, v := range l.workerExec {
			workerExec[w] += v // one lane per (topic,part): inner order free
		}
	}
	if a.proxy != nil {
		p := *a.proxy
		p.ResolveSeconds = resolveSeconds
		if p.Resolves > 0 {
			p.MeanResolveSeconds = p.ResolveSeconds / float64(p.Resolves)
		}
		s.Proxy = &p
	}
	if a.spec != nil {
		sp := *a.spec
		sp.WastedSeconds = wastedSeconds
		if a.wall > 0 {
			sp.RetryRate = float64(sp.Retries) / a.wall
		}
		s.Speculation = &sp
	}

	// Host I/O totals, merged in sorted host order.
	hosts := sortedKeys(a.hostIO)
	s.HostIO = make(map[string]HostIOStats, len(hosts))
	for _, h := range hosts {
		st := *a.hostIO[h]
		s.RawIOSeconds += st.ReadTime + st.WriteTime
		if t := st.ReadTime + st.WriteTime; t > 0 {
			st.BandwidthBps = float64(st.BytesRead+st.BytesWritten) / t
		}
		s.HostIO[h] = st
	}

	// The paper's phase decomposition (perfrecup.PhaseBreakdown): exec
	// time includes I/O done inside tasks; subtracting gives computation.
	s.IOSeconds = s.RawIOSeconds
	s.CommSeconds = s.RawCommSeconds
	s.ComputeSeconds = s.RawExecSeconds - s.RawIOSeconds
	if s.ComputeSeconds < 0 {
		s.ComputeSeconds = 0
	}
	if s.ThreadSlots > 0 {
		n := float64(s.ThreadSlots)
		s.IOSeconds /= n
		s.CommSeconds /= n
		s.ComputeSeconds /= n
	}

	s.StateOccupancy = make(map[string]int)
	for st, n := range a.occupancy {
		if n != 0 {
			s.StateOccupancy[st] = n
		}
	}

	s.Groups = make(map[string]GroupStats, len(a.groups))
	for g, acc := range a.groups {
		gs := GroupStats{Count: acc.count, Sampled: int64(len(acc.samples))}
		if len(acc.samples) > 0 {
			sorted := append([]float64(nil), acc.samples...)
			sort.Float64s(sorted)
			for _, d := range sorted {
				gs.TotalSeconds += d
			}
			gs.MeanSeconds = gs.TotalSeconds / float64(len(sorted))
			gs.MinSeconds = sorted[0]
			gs.MaxSeconds = sorted[len(sorted)-1]
			gs.P50Seconds = quantile(sorted, 0.50)
			gs.P90Seconds = quantile(sorted, 0.90)
			gs.P99Seconds = quantile(sorted, 0.99)
		}
		if a.wall > 0 {
			gs.Throughput = float64(gs.Count) / a.wall
		}
		s.Groups[g] = gs
	}

	s.Workers = make(map[string]WorkerStats, len(a.workers))
	for w, st := range a.workers {
		cp := *st
		cp.ExecSeconds = workerExec[w]
		s.Workers[w] = cp
	}

	s.Warnings = copyIntMap(a.warnings)
	if a.wall > 0 && len(a.warnings) > 0 {
		s.WarningRates = make(map[string]float64, len(a.warnings))
		for k, n := range a.warnings {
			s.WarningRates[k] = float64(n) / a.wall
		}
	}

	if len(a.recovery) > 0 {
		s.Recovery = sortedTimeline(a.recovery)
	}
	if len(a.cluster) > 0 {
		s.ClusterHealth = sortedTimeline(a.cluster)
	}

	// The live makespan lower bound: heaviest dependency chain of the
	// executions seen so far. A pure function of the retained record set —
	// merge order across partitions cannot change it.
	s.CriticalPathSeconds = whatif.LongestChainSeconds(a.critDur, a.critDeps)

	s.Windows = a.windows.snapshot()
	s.Anomalies = append([]Anomaly(nil), a.anomalies...)
	return s
}

// sortedTimeline copies and sorts a warning-derived timeline by (At, Kind,
// Worker, Message): identical for live and post-mortem replays regardless
// of partition consumption order.
func sortedTimeline(evs []RecoveryEvent) []RecoveryEvent {
	out := append([]RecoveryEvent(nil), evs...)
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i], out[j]
		if ri.At != rj.At {
			return ri.At < rj.At
		}
		if ri.Kind != rj.Kind {
			return ri.Kind < rj.Kind
		}
		if ri.Worker != rj.Worker {
			return ri.Worker < rj.Worker
		}
		return ri.Message < rj.Message
	})
	return out
}

// quantile interpolates the q-th quantile of an ascending-sorted slice,
// matching perfrecup.Percentile's linear interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
