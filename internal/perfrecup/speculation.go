package perfrecup

import (
	"fmt"
	"sort"
	"strings"

	"taskprov/internal/core"
	"taskprov/internal/perfrecup/frame"
)

// SpeculationTimelineView tabulates the run's hedged-execution and
// adaptive-retry record: every event of the speculation topic (duplicate
// launched, winner settled, loser cancelled with its wasted runtime,
// promotions after a primary died, RPC retries and budget denials), sorted by
// (at, kind, key, duplicate, detail) so the view is deterministic regardless
// of partition drain order. Empty for runs without speculation or retries.
func SpeculationTimelineView(art *core.RunArtifacts) (*frame.Frame, error) {
	metas, err := core.DrainTopic(art.Broker, core.TopicSpeculation)
	if err != nil {
		return nil, err
	}
	type row struct {
		kind, key, primary, duplicate, winner, detail string
		at, wasted                                    float64
		attempt                                       int
	}
	rows := make([]row, 0, len(metas))
	for _, m := range metas {
		e := core.ParseSpeculationEvent(m)
		rows = append(rows, row{
			kind: e.Kind, key: string(e.Key),
			primary: e.Primary, duplicate: e.Duplicate, winner: e.Winner,
			detail: e.Detail, at: e.At.Seconds(),
			wasted: e.Wasted.Seconds(), attempt: e.Attempt,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].at != rows[j].at {
			return rows[i].at < rows[j].at
		}
		if rows[i].kind != rows[j].kind {
			return rows[i].kind < rows[j].kind
		}
		if rows[i].key != rows[j].key {
			return rows[i].key < rows[j].key
		}
		if rows[i].duplicate != rows[j].duplicate {
			return rows[i].duplicate < rows[j].duplicate
		}
		return rows[i].detail < rows[j].detail
	})
	n := len(rows)
	at := make([]float64, n)
	kind := make([]string, n)
	key := make([]string, n)
	primary := make([]string, n)
	duplicate := make([]string, n)
	winner := make([]string, n)
	wasted := make([]float64, n)
	attempt := make([]float64, n)
	detail := make([]string, n)
	for i, r := range rows {
		at[i], kind[i], key[i] = r.at, r.kind, r.key
		primary[i], duplicate[i], winner[i] = r.primary, r.duplicate, r.winner
		wasted[i], attempt[i], detail[i] = r.wasted, float64(r.attempt), r.detail
	}
	return frame.New(
		frame.Floats("at", at...),
		frame.Strings("kind", kind...),
		frame.Strings("key", key...),
		frame.Strings("primary", primary...),
		frame.Strings("duplicate", duplicate...),
		frame.Strings("winner", winner...),
		frame.Floats("wasted", wasted...),
		frame.Floats("attempt", attempt...),
		frame.Strings("detail", detail...),
	)
}

// RenderSpeculationTimeline formats the speculation view as a readable
// timeline, one line per event:
//
//	[  61.200s] launched           sum-0042: straggling for 16s on node1:w2 (duplicate on node0:w1)
//	[  63.850s] won                sum-0042: winner node0:w1
//	[  63.850s] cancelled          sum-0042: loser node1:w2 wasted 18.650s
//
// Returns "" when the run recorded no speculation events.
func RenderSpeculationTimeline(f *frame.Frame) string {
	if f.NRows() == 0 {
		return ""
	}
	at := f.Col("at")
	kind := f.Col("kind")
	key := f.Col("key")
	primary := f.Col("primary")
	duplicate := f.Col("duplicate")
	winner := f.Col("winner")
	wasted := f.Col("wasted")
	attempt := f.Col("attempt")
	detail := f.Col("detail")
	var b strings.Builder
	for i := 0; i < f.NRows(); i++ {
		var what string
		switch kind.Str(i) {
		case "launched":
			what = fmt.Sprintf("%s (duplicate on %s)", detail.Str(i), duplicate.Str(i))
		case "won":
			what = fmt.Sprintf("winner %s", winner.Str(i))
		case "cancelled":
			what = fmt.Sprintf("loser wasted %.3fs", wasted.Float(i))
		case "retry":
			what = fmt.Sprintf("attempt %d to %s: %s", int(attempt.Float(i)), primary.Str(i), detail.Str(i))
		case "budget_exhausted":
			what = fmt.Sprintf("to %s: %s", primary.Str(i), detail.Str(i))
		default:
			what = detail.Str(i)
		}
		subject := key.Str(i)
		if subject == "" {
			subject = "rpc"
		}
		fmt.Fprintf(&b, "[%9.3fs] %-18s %s: %s\n", at.Float(i), kind.Str(i), subject, what)
	}
	return b.String()
}
