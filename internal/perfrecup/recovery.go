package perfrecup

import (
	"fmt"
	"sort"
	"strings"

	"taskprov/internal/core"
	"taskprov/internal/perfrecup/frame"
)

// RecoveryTimelineView tabulates the run's failure/recovery timeline: every
// warning whose kind is a recovery action (worker_lost, worker_rejoined,
// task_rescheduled, key_recomputed, producer_degraded), sorted by
// (at, kind, worker, message) so the view is deterministic regardless of
// partition drain order. Empty for fault-free runs.
func RecoveryTimelineView(art *core.RunArtifacts) (*frame.Frame, error) {
	metas, err := core.DrainTopic(art.Broker, core.TopicWarnings)
	if err != nil {
		return nil, err
	}
	type row struct {
		kind, worker, host, msg string
		at, dur                 float64
	}
	var rows []row
	for _, m := range metas {
		w := core.ParseWarning(m)
		if !w.Kind.IsRecovery() {
			continue
		}
		rows = append(rows, row{
			kind: string(w.Kind), worker: w.Worker, host: w.Hostname,
			msg: w.Message, at: w.At.Seconds(), dur: w.Duration.Seconds(),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].at != rows[j].at {
			return rows[i].at < rows[j].at
		}
		if rows[i].kind != rows[j].kind {
			return rows[i].kind < rows[j].kind
		}
		if rows[i].worker != rows[j].worker {
			return rows[i].worker < rows[j].worker
		}
		return rows[i].msg < rows[j].msg
	})
	n := len(rows)
	at := make([]float64, n)
	kind := make([]string, n)
	worker := make([]string, n)
	host := make([]string, n)
	dur := make([]float64, n)
	msg := make([]string, n)
	for i, r := range rows {
		at[i], kind[i], worker[i], host[i], dur[i], msg[i] = r.at, r.kind, r.worker, r.host, r.dur, r.msg
	}
	return frame.New(
		frame.Floats("at", at...),
		frame.Strings("kind", kind...),
		frame.Strings("worker", worker...),
		frame.Strings("hostname", host...),
		frame.Floats("duration", dur...),
		frame.Strings("message", msg...),
	)
}

// RenderRecoveryTimeline formats the recovery view as a readable timeline,
// one line per event:
//
//	[  12.500s] worker_lost        worker-3: missed heartbeats
//
// Returns "" when the run had no recovery events.
func RenderRecoveryTimeline(f *frame.Frame) string {
	if f.NRows() == 0 {
		return ""
	}
	at := f.Col("at")
	kind := f.Col("kind")
	worker := f.Col("worker")
	msg := f.Col("message")
	var b strings.Builder
	for i := 0; i < f.NRows(); i++ {
		fmt.Fprintf(&b, "[%9.3fs] %-18s %s: %s\n", at.Float(i), kind.Str(i), worker.Str(i), msg.Str(i))
	}
	return b.String()
}
