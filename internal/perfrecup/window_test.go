package perfrecup

import (
	"testing"

	"taskprov/internal/core"
	"taskprov/internal/dask"
	"taskprov/internal/mofka"
	"taskprov/internal/sim"
)

// windowArt builds a minimal in-memory artifact holding exactly the given
// provenance events, for exercising Window's interval arithmetic directly.
func windowArt(t *testing.T, execs []dask.TaskExecution, transfers []dask.Transfer, warns []dask.Warning) *core.RunArtifacts {
	t.Helper()
	b := mofka.NewStandaloneBroker()
	push := func(topic string, metas []mofka.Metadata) {
		tp, err := b.OpenOrCreateTopic(mofka.TopicConfig{Name: topic, Partitions: 1})
		if err != nil {
			t.Fatal(err)
		}
		p := tp.NewProducer(mofka.ProducerOptions{})
		for _, m := range metas {
			if err := p.Push(m, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	var em, tm, wm []mofka.Metadata
	for _, e := range execs {
		em = append(em, core.ExecutionEvent(e))
	}
	for _, tr := range transfers {
		tm = append(tm, core.TransferEvent(tr))
	}
	for _, w := range warns {
		wm = append(wm, core.WarningEvent(w))
	}
	push(core.TopicExecutions, em)
	push(core.TopicTransfers, tm)
	push(core.TopicWarnings, wm)
	return &core.RunArtifacts{Broker: b}
}

func TestWindowEmpty(t *testing.T) {
	art := windowArt(t, nil, nil, nil)
	w, err := Window(art, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if w.TasksActive != 0 || w.ComputeSeconds != 0 || w.Transfers != 0 || len(w.Warnings) != 0 {
		t.Fatalf("empty artifact window = %+v", w)
	}
	if w.BusiestPrefix != "" {
		t.Fatalf("busiest prefix of empty window = %q", w.BusiestPrefix)
	}

	// A populated artifact but a window covering nothing, including the
	// degenerate zero-width window [5, 5).
	art = windowArt(t,
		[]dask.TaskExecution{{Key: "load-0001", Start: sim.Seconds(20), Stop: sim.Seconds(21)}},
		nil, nil)
	for _, iv := range [][2]float64{{0, 10}, {5, 5}} {
		w, err = Window(art, iv[0], iv[1])
		if err != nil {
			t.Fatal(err)
		}
		if w.TasksActive != 0 || w.TasksStarted != 0 || w.TasksFinished != 0 {
			t.Fatalf("window %v = %+v", iv, w)
		}
	}
}

func TestWindowSingleEvent(t *testing.T) {
	art := windowArt(t,
		[]dask.TaskExecution{{Key: "load-0001", Start: sim.Seconds(2), Stop: sim.Seconds(5)}},
		[]dask.Transfer{{Key: "load-0001", Bytes: 1 << 20, Start: sim.Seconds(5), Stop: sim.Seconds(6)}},
		[]dask.Warning{{Kind: dask.WarnEventLoop, At: sim.Seconds(3)}})
	w, err := Window(art, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if w.TasksActive != 1 || w.TasksStarted != 1 || w.TasksFinished != 1 {
		t.Fatalf("window = %+v", w)
	}
	if w.ComputeSeconds != 3 || w.BusiestPrefix != "load" {
		t.Fatalf("compute=%v busiest=%q", w.ComputeSeconds, w.BusiestPrefix)
	}
	if w.Transfers != 1 || w.TransferBytes != 1<<20 || w.CommSeconds != 1 {
		t.Fatalf("comm = %+v", w)
	}
	if w.Warnings[string(dask.WarnEventLoop)] != 1 {
		t.Fatalf("warnings = %v", w.Warnings)
	}

	// The same execution clipped by a partial window: active but neither
	// started nor finished inside it, compute clipped to the overlap.
	w, err = Window(art, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w.TasksActive != 1 || w.TasksStarted != 0 || w.TasksFinished != 0 || w.ComputeSeconds != 1 {
		t.Fatalf("clipped window = %+v", w)
	}
}

// TestWindowBoundaries pins the half-open [from, to) semantics for events
// landing exactly on the window edges.
func TestWindowBoundaries(t *testing.T) {
	art := windowArt(t,
		[]dask.TaskExecution{
			{Key: "starts-at-from-01", Start: sim.Seconds(10), Stop: sim.Seconds(12)},
			{Key: "stops-at-from-01", Start: sim.Seconds(8), Stop: sim.Seconds(10)},
			{Key: "stops-at-to-01", Start: sim.Seconds(18), Stop: sim.Seconds(20)},
			{Key: "starts-at-to-01", Start: sim.Seconds(20), Stop: sim.Seconds(22)},
		},
		[]dask.Transfer{
			{Key: "t-01", Bytes: 1, Start: sim.Seconds(9), Stop: sim.Seconds(10)},  // ends at from: excluded
			{Key: "t-02", Bytes: 2, Start: sim.Seconds(19), Stop: sim.Seconds(21)}, // straddles to: clipped
		},
		[]dask.Warning{
			{Kind: dask.WarnGC, At: sim.Seconds(10)}, // exactly from: counted
			{Kind: dask.WarnGC, At: sim.Seconds(20)}, // exactly to: not counted
		})
	w, err := Window(art, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	// starts-at-from overlaps and started in-window; stops-at-from has zero
	// overlap with [10,20); stops-at-to overlaps and its stop (20) is
	// outside the half-open window, so it did not "finish" here;
	// starts-at-to has zero overlap.
	if w.TasksActive != 2 {
		t.Fatalf("active = %d, want 2 (%+v)", w.TasksActive, w)
	}
	if w.TasksStarted != 2 || w.TasksFinished != 1 {
		t.Fatalf("started=%d finished=%d (%+v)", w.TasksStarted, w.TasksFinished, w)
	}
	if w.ComputeSeconds != 4 { // 2s from starts-at-from + 2s from stops-at-to
		t.Fatalf("compute = %v", w.ComputeSeconds)
	}
	if w.Transfers != 1 || w.TransferBytes != 2 || w.CommSeconds != 1 {
		t.Fatalf("comm = %+v", w)
	}
	if w.Warnings[string(dask.WarnGC)] != 1 {
		t.Fatalf("warnings = %v", w.Warnings)
	}
}
