package live

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"taskprov/internal/dask"
	"taskprov/internal/mofka"
	"taskprov/internal/provenance"
	"taskprov/internal/sim"
)

// stripped removes the two order-dependent observability surfaces (trailing
// windows, anomaly emission order) that the equivalence invariant explicitly
// excludes, leaving everything that must match exactly.
func stripped(s Summary) Summary {
	s.Windows = nil
	s.Anomalies = nil
	return s
}

func TestWindowRing(t *testing.T) {
	r := newWindowRing(10, 3)
	// An event exactly on a boundary belongs to the window it opens.
	b := r.bucket(10.0)
	if b == nil || b.From != 10 || b.To != 20 {
		t.Fatalf("boundary bucket = %+v", b)
	}
	b.TasksFinished++
	r.bucket(0.0).TasksFinished++  // older but inside the ring
	r.bucket(25.0).TasksFinished++ // advances maxEpoch to 2
	if got := r.bucket(29.999999); got == nil || got.From != 20 {
		t.Fatalf("in-window bucket = %+v", got)
	}
	snap := r.snapshot()
	if len(snap) != 3 {
		t.Fatalf("windows = %d, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].From <= snap[i-1].From {
			t.Fatalf("windows not sorted: %+v", snap)
		}
	}
	// Advance far: old windows fall off, stale events are dropped, and the
	// snapshot no longer shows windows outside the ring horizon.
	r.bucket(100)
	if r.bucket(0.0) != nil {
		t.Fatal("event older than the ring horizon must be dropped")
	}
	if snap := r.snapshot(); len(snap) != 1 || snap[0].From != 100 {
		t.Fatalf("after advance: %+v", snap)
	}
}

func TestAggregatorNegativeTimeAndUnknownTopic(t *testing.T) {
	a := NewAggregator(AggregatorOptions{})
	a.IngestEvent("no-such-topic", 0, mofka.Metadata{"x": 1.0})
	a.IngestIOSegment("w0", 100, -5)
	s := a.Snapshot()
	if s.Events != 1 || s.IOOps != 0 {
		t.Fatalf("events=%d io_ops=%d", s.Events, s.IOOps)
	}
}

// exec builds one execution event's metadata.
func exec(key string, worker string, start, stop float64) mofka.Metadata {
	return provenance.ExecutionEvent(dask.TaskExecution{
		Key: dask.TaskKey(key), Worker: worker, Hostname: worker + "-host",
		Start: sim.Seconds(start), Stop: sim.Seconds(stop), OutputSize: 64, GraphID: 1,
	})
}

func TestAggregatorOrderIndependence(t *testing.T) {
	events := []struct {
		topic string
		part  int
		m     mofka.Metadata
	}{}
	for i := 0; i < 40; i++ {
		events = append(events, struct {
			topic string
			part  int
			m     mofka.Metadata
		}{provenance.TopicExecutions, i % 2, exec(fmt.Sprintf("load-%04d", i), fmt.Sprintf("w%d", i%3), float64(i), float64(i)+0.1*float64(i%7))})
	}
	for i := 0; i < 10; i++ {
		events = append(events, struct {
			topic string
			part  int
			m     mofka.Metadata
		}{provenance.TopicTransfers, i % 2, provenance.TransferEvent(dask.Transfer{
			Key: dask.TaskKey(fmt.Sprintf("load-%04d", i)), From: "w0", To: "w1",
			Bytes: 1 << 16, Start: sim.Seconds(float64(i)), Stop: sim.Seconds(float64(i) + 0.05),
		})})
	}

	feed := func(order []int) Summary {
		a := NewAggregator(AggregatorOptions{})
		for _, idx := range order {
			e := events[idx]
			a.IngestEvent(e.topic, e.part, e.m)
		}
		a.SetWall(50)
		return a.Snapshot()
	}
	// Sequential order vs partition-interleave-reversed order: within each
	// (topic, partition) the relative order is preserved (the invariant's
	// precondition), but the interleave across partitions is completely
	// different.
	var seq, alt []int
	for i := range events {
		seq = append(seq, i)
	}
	for _, wantPart := range []int{1, 0} {
		for i, e := range events {
			if e.part == wantPart {
				alt = append(alt, i)
			}
		}
	}
	s1, s2 := feed(seq), feed(alt)
	if !reflect.DeepEqual(stripped(s1), stripped(s2)) {
		t.Fatalf("summaries differ across consumption orders:\n%+v\nvs\n%+v", stripped(s1), stripped(s2))
	}
	if s1.Tasks != 40 || s1.Transfers != 10 {
		t.Fatalf("tasks=%d transfers=%d", s1.Tasks, s1.Transfers)
	}
	g := s1.Groups["load"]
	if g.Count != 40 || g.Throughput != 40.0/50 {
		t.Fatalf("group load = %+v", g)
	}
	if g.P50Seconds <= 0 || g.MaxSeconds < g.P99Seconds || g.P99Seconds < g.P50Seconds {
		t.Fatalf("quantiles inconsistent: %+v", g)
	}
}

func TestStateOccupancy(t *testing.T) {
	a := NewAggregator(AggregatorOptions{})
	trans := func(key, from, to string, at float64) {
		a.IngestEvent(provenance.TopicTransitions, 0, provenance.TransitionEvent(dask.Transition{
			Key: dask.TaskKey(key), From: dask.TaskState(from), To: dask.TaskState(to), At: sim.Seconds(at),
		}))
	}
	trans("a", "", "released", 0)
	trans("a", "released", "waiting", 1)
	trans("a", "waiting", "processing", 2)
	trans("b", "", "released", 0)
	s := a.Snapshot()
	want := map[string]int{"processing": 1, "released": 1}
	if !reflect.DeepEqual(s.StateOccupancy, want) {
		t.Fatalf("occupancy = %v, want %v", s.StateOccupancy, want)
	}
}

func TestStragglerDetector(t *testing.T) {
	a := NewAggregator(AggregatorOptions{})
	var got []Anomaly
	a.OnAnomaly(func(an Anomaly) { got = append(got, an) })
	for i := 0; i < 40; i++ {
		a.IngestEvent(provenance.TopicExecutions, 0, exec(fmt.Sprintf("load-%04d", i), "w0", float64(i), float64(i)+1.0+0.001*float64(i%5)))
	}
	if len(got) != 0 {
		t.Fatalf("no stragglers expected yet, got %v", got)
	}
	a.IngestEvent(provenance.TopicExecutions, 0, exec("load-9999", "w0", 50, 60)) // 10s vs ~1s median
	if len(got) != 1 || got[0].Kind != AnomalyStraggler || got[0].Subject != "load" {
		t.Fatalf("straggler anomalies = %v", got)
	}
	if got[0].Value < 3.5 {
		t.Fatalf("z = %v, want >= 3.5", got[0].Value)
	}
}

func TestEventLoopStreakDetector(t *testing.T) {
	a := NewAggregator(AggregatorOptions{Anomaly: AnomalyConfig{StreakLen: 3, StreakGapSeconds: 10}})
	var got []Anomaly
	a.OnAnomaly(func(an Anomaly) { got = append(got, an) })
	warn := func(worker string, at float64) {
		a.IngestEvent(provenance.TopicWarnings, 0, provenance.WarningEvent(dask.Warning{
			Kind: dask.WarnEventLoop, Worker: worker, At: sim.Seconds(at), Duration: sim.Seconds(2),
		}))
	}
	warn("w0", 0)
	warn("w0", 5)
	warn("w0", 100) // gap > 10s resets the streak
	warn("w0", 104)
	if len(got) != 0 {
		t.Fatalf("streak should have reset, got %v", got)
	}
	warn("w0", 108)
	if len(got) != 1 || got[0].Kind != AnomalyEventLoopStreak || got[0].Subject != "w0" {
		t.Fatalf("anomalies = %v", got)
	}
	// GC warnings never count toward event-loop streaks.
	for i := 0; i < 5; i++ {
		a.IngestEvent(provenance.TopicWarnings, 0, provenance.WarningEvent(dask.Warning{
			Kind: dask.WarnGC, Worker: "w1", At: sim.Seconds(float64(200 + i)),
		}))
	}
	if len(got) != 1 {
		t.Fatalf("GC warnings must not trigger streaks: %v", got)
	}
}

func TestIOCollapseDetector(t *testing.T) {
	a := NewAggregator(AggregatorOptions{WindowSeconds: 10})
	var got []Anomaly
	a.OnAnomaly(func(an Anomaly) { got = append(got, an) })
	a.IngestIOSegment("w0", 2<<20, 5)  // window [0,10): 2 MiB
	a.IngestIOSegment("w0", 2<<20, 15) // window [10,20): 2 MiB
	a.IngestIOSegment("w0", 1<<10, 25) // window [20,30): 1 KiB — collapse
	if len(got) != 0 {
		t.Fatalf("collapse detected too early: %v", got)
	}
	a.IngestIOSegment("w0", 1<<10, 35) // closes [20,30) → compare vs [10,20)
	if len(got) != 1 || got[0].Kind != AnomalyIOCollapse || got[0].Subject != "w0" {
		t.Fatalf("anomalies = %v", got)
	}
	if got[0].Value >= 0.25 {
		t.Fatalf("ratio = %v, want < 0.25", got[0].Value)
	}
}

func TestAnomalyEventRoundTrip(t *testing.T) {
	in := Anomaly{Kind: AnomalyStraggler, Subject: "load", At: 12.5, Value: 4.2, Limit: 3.5, Detail: "d"}
	if out := ParseAnomaly(in.Event()); out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

// seedBroker creates the provenance topics and publishes a workload's worth
// of events through batching producers.
func seedBroker(t *testing.T, b *mofka.Broker, tasks int) {
	t.Helper()
	producers := map[string]*mofka.Producer{}
	for _, name := range provenance.AllTopics() {
		tp, err := b.OpenOrCreateTopic(mofka.TopicConfig{Name: name, Partitions: 2})
		if err != nil {
			t.Fatal(err)
		}
		producers[name] = tp.NewProducer(mofka.ProducerOptions{BatchSize: 16})
	}
	push := func(topic string, m mofka.Metadata) {
		if err := producers[topic].Push(m, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < tasks; i++ {
		key := fmt.Sprintf("load-%04d", i)
		worker := fmt.Sprintf("w%d", i%4)
		start := float64(i) * 0.25
		stop := start + 0.8 + 0.01*float64(i%11)
		push(provenance.TopicTaskMeta, provenance.TaskMetaEvent(dask.TaskMeta{
			Key: dask.TaskKey(key), Prefix: "load", Group: "load", GraphID: 1, At: sim.Seconds(start),
		}))
		push(provenance.TopicTransitions, provenance.TransitionEvent(dask.Transition{
			Key: dask.TaskKey(key), From: "waiting", To: "processing", At: sim.Seconds(start),
		}))
		push(provenance.TopicTransitions, provenance.TransitionEvent(dask.Transition{
			Key: dask.TaskKey(key), From: "processing", To: "memory", At: sim.Seconds(stop),
		}))
		push(provenance.TopicExecutions, exec(key, worker, start, stop))
		if i%3 == 0 {
			push(provenance.TopicTransfers, provenance.TransferEvent(dask.Transfer{
				Key: dask.TaskKey(key), From: worker, To: fmt.Sprintf("w%d", (i+1)%4),
				Bytes: 4 << 16, Start: sim.Seconds(stop), Stop: sim.Seconds(stop + 0.03),
			}))
		}
		if i%5 == 0 {
			push(provenance.TopicWarnings, provenance.WarningEvent(dask.Warning{
				Kind: dask.WarnEventLoop, Worker: worker, At: sim.Seconds(stop), Duration: sim.Seconds(1.5),
			}))
		}
	}
	for _, p := range producers {
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMonitorEqualsReplay(t *testing.T) {
	b := mofka.NewStandaloneBroker()
	m := NewMonitor(b, MonitorOptions{PollInterval: time.Millisecond})
	seedBroker(t, b, 120)
	liveSum := m.Finish(nil, 40)

	replay := NewAggregator(AggregatorOptions{})
	if err := ReplayBroker(b, replay); err != nil {
		t.Fatal(err)
	}
	replay.SetWall(40)
	if !reflect.DeepEqual(stripped(liveSum), stripped(replay.Snapshot())) {
		t.Fatalf("live != replay:\n%+v\nvs\n%+v", stripped(liveSum), stripped(replay.Snapshot()))
	}
	if liveSum.Tasks != 120 || liveSum.Submitted != 120 {
		t.Fatalf("tasks=%d submitted=%d", liveSum.Tasks, liveSum.Submitted)
	}
	if liveSum.StateOccupancy["memory"] != 120 {
		t.Fatalf("occupancy = %v", liveSum.StateOccupancy)
	}
}

// TestMonitorEmitsAnomalies checks online findings land in the anomalies
// topic (as provenance) and on the subscription channel.
func TestMonitorEmitsAnomalies(t *testing.T) {
	b := mofka.NewStandaloneBroker()
	m := NewMonitor(b, MonitorOptions{
		PollInterval: time.Millisecond,
		Aggregator:   AggregatorOptions{Anomaly: AnomalyConfig{StreakLen: 3, StreakGapSeconds: 5}},
	})
	ch := m.SubscribeAnomalies()
	tp, err := b.OpenOrCreateTopic(mofka.TopicConfig{Name: provenance.TopicWarnings, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := tp.NewProducer(mofka.ProducerOptions{BatchSize: 1})
	for i := 0; i < 3; i++ {
		err := p.Push(provenance.WarningEvent(dask.Warning{
			Kind: dask.WarnEventLoop, Worker: "w0", At: sim.Seconds(float64(i)), Duration: sim.Seconds(2),
		}), nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	select {
	case an := <-ch:
		if an.Kind != AnomalyEventLoopStreak {
			t.Fatalf("anomaly = %+v", an)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no anomaly on subscription channel")
	}
	m.Stop()
	metas, err := provenance.DrainTopic(b, provenance.TopicAnomalies)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 1 || ParseAnomaly(metas[0]).Subject != "w0" {
		t.Fatalf("anomalies topic = %v", metas)
	}
}

func TestMonitorResumesFromCommitted(t *testing.T) {
	b := mofka.NewStandaloneBroker()
	seedBroker(t, b, 30)
	m1 := NewMonitor(b, MonitorOptions{PollInterval: time.Millisecond})
	s1 := m1.Finish(nil, 10)
	if s1.Tasks != 30 {
		t.Fatalf("first monitor tasks = %d", s1.Tasks)
	}
	// A second monitor under the same consumer name starts where the first
	// committed: nothing left to read.
	m2 := NewMonitor(b, MonitorOptions{PollInterval: time.Millisecond})
	s2 := m2.Finish(nil, 10)
	if s2.Events != 0 {
		t.Fatalf("resumed monitor re-read %d events", s2.Events)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	b := mofka.NewStandaloneBroker()
	m := NewMonitor(b, MonitorOptions{PollInterval: time.Millisecond})
	seedBroker(t, b, 60)
	m.Finish(nil, 20)

	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()

	var snap Summary
	res, err := http.Get(srv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	_ = res.Body.Close()
	if snap.Tasks != 60 || snap.Groups["load"].Count != 60 {
		t.Fatalf("snapshot = %+v", snap)
	}

	res, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	_ = res.Body.Close()
	text := string(body)
	for _, want := range []string{
		"taskprov_live_tasks_total 60",
		`taskprov_live_group_tasks_total{group="load"} 60`,
		`taskprov_live_phase_seconds{phase="compute"}`,
		`taskprov_live_warnings_total{kind="unresponsive_event_loop"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}

	res, err = http.Get(srv.URL + "/healthz")
	if err != nil || res.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", res, err)
	}
	_ = res.Body.Close()
}

func TestSSEStream(t *testing.T) {
	b := mofka.NewStandaloneBroker()
	m := NewMonitor(b, MonitorOptions{PollInterval: time.Millisecond})
	defer m.Stop()
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()

	res, err := http.Get(srv.URL + "/events?interval=50ms")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = res.Body.Close() }()
	if ct := res.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	buf := make([]byte, 4096)
	n, err := res.Body.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	first := string(buf[:n])
	if !strings.HasPrefix(first, "event: snapshot\ndata: {") {
		t.Fatalf("first SSE frame = %q", first)
	}
}

// TestConcurrentProducersMonitorAndReaders is the -race acceptance test:
// concurrent producers appending to the broker, the monitor pulling, and
// HTTP snapshot readers all at once.
func TestConcurrentProducersMonitorAndReaders(t *testing.T) {
	b := mofka.NewStandaloneBroker()
	for _, name := range provenance.AllTopics() {
		if _, err := b.OpenOrCreateTopic(mofka.TopicConfig{Name: name, Partitions: 2}); err != nil {
			t.Fatal(err)
		}
	}
	m := NewMonitor(b, MonitorOptions{PollInterval: time.Millisecond})
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()

	const producers, perProducer = 4, 250
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tp, err := b.OpenTopic(provenance.TopicExecutions)
			if err != nil {
				t.Error(err)
				return
			}
			p := tp.NewProducer(mofka.ProducerOptions{BatchSize: 8})
			for i := 0; i < perProducer; i++ {
				key := fmt.Sprintf("load-%d-%04d", g, i)
				if err := p.Push(exec(key, fmt.Sprintf("w%d", g), float64(i), float64(i)+1), nil); err != nil {
					t.Error(err)
					return
				}
			}
			if err := p.Flush(); err != nil {
				t.Error(err)
			}
		}(g)
	}
	stopReaders := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				for _, path := range []string{"/snapshot", "/metrics"} {
					res, err := http.Get(srv.URL + path)
					if err == nil {
						_, _ = io.Copy(io.Discard, res.Body)
						_ = res.Body.Close()
					}
				}
			}
		}()
	}
	wg.Wait()
	sum := m.Finish(nil, 100)
	close(stopReaders)
	readers.Wait()
	if want := int64(producers * perProducer); sum.Tasks != want {
		t.Fatalf("tasks = %d, want %d", sum.Tasks, want)
	}
	// And the live result still equals a canonical replay.
	replay := NewAggregator(AggregatorOptions{})
	if err := ReplayBroker(b, replay); err != nil {
		t.Fatal(err)
	}
	replay.SetWall(100)
	if !reflect.DeepEqual(stripped(sum), stripped(replay.Snapshot())) {
		t.Fatal("live summary diverged from canonical replay under concurrency")
	}
}

func TestWALTailerFollowsGrowingDir(t *testing.T) {
	dir := t.TempDir()
	b, err := mofka.NewDurableBroker(mofka.Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	seedBroker(t, b, 20)
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}

	tail, err := TailWAL(dir, TailOptions{Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Stop()
	if s := tail.Snapshot(); s.Tasks != 20 {
		t.Fatalf("initial tail tasks = %d", s.Tasks)
	}

	// The dir grows (same broker keeps writing); the tailer catches up.
	seedBroker(t, b, 15)
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tail.Snapshot().Tasks != 35 {
		if time.Now().After(deadline) {
			t.Fatalf("tailer stuck at %d tasks", tail.Snapshot().Tasks)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Post-close, the tailer's snapshot equals a direct replay of the dir.
	want, err := ReplayDataDir(dir, AggregatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tail.Refresh(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripped(tail.Snapshot()), stripped(want)) {
		t.Fatal("tailer snapshot != direct replay")
	}
}

func TestTailWALRejectsNonDataDir(t *testing.T) {
	if _, err := TailWAL(t.TempDir(), TailOptions{}); err == nil {
		t.Fatal("expected error for a non-data-dir")
	}
}

func TestAggregatorRecoveryLane(t *testing.T) {
	a := NewAggregator(AggregatorOptions{})
	warn := func(kind dask.WarningKind, at sim.Time, worker, msg string) {
		a.IngestEvent(provenance.TopicWarnings, 0, provenance.WarningEvent(dask.Warning{
			Kind: kind, Worker: worker, At: at, Message: msg,
		}))
	}
	// Out-of-order ingest, plus a non-recovery warning that must stay out of
	// the lane.
	warn(dask.WarnTaskRescheduled, sim.Seconds(12), "tcp://n1:40001", "mid-03")
	warn(dask.WarnGC, sim.Seconds(5), "tcp://n0:40000", "")
	warn(dask.WarnWorkerLost, sim.Seconds(10), "tcp://n1:40001", "missed heartbeats")
	warn(dask.WarnWorkerRejoined, sim.Seconds(30), "tcp://n1:40001", "")

	s := a.Snapshot()
	if len(s.Recovery) != 3 {
		t.Fatalf("recovery lane has %d events, want 3: %+v", len(s.Recovery), s.Recovery)
	}
	wantKinds := []string{"worker_lost", "task_rescheduled", "worker_rejoined"}
	for i, ev := range s.Recovery {
		if ev.Kind != wantKinds[i] {
			t.Fatalf("recovery[%d] = %+v, want kind %s (sorted by time)", i, ev, wantKinds[i])
		}
	}
	if s.Recovery[0].At != 10 || s.Recovery[0].Worker != "tcp://n1:40001" {
		t.Fatalf("recovery[0] = %+v", s.Recovery[0])
	}
}

func TestAggregatorRecoveryLaneCapped(t *testing.T) {
	a := NewAggregator(AggregatorOptions{RecoveryEventCap: 2})
	for i := 0; i < 5; i++ {
		a.IngestEvent(provenance.TopicWarnings, 0, provenance.WarningEvent(dask.Warning{
			Kind: dask.WarnTaskRescheduled, At: sim.Seconds(float64(i)),
		}))
	}
	s := a.Snapshot()
	if len(s.Recovery) != 2 {
		t.Fatalf("capped lane has %d events, want 2", len(s.Recovery))
	}
	// The total warning count still reflects every event.
	if s.Warnings["task_rescheduled"] != 5 {
		t.Fatalf("warning histogram = %v", s.Warnings)
	}
}

// specEv builds one speculation event's metadata.
func specEv(kind, key string, wasted float64, at float64) mofka.Metadata {
	return provenance.SpeculationEventMeta(dask.SpeculationEvent{
		Kind: kind, Key: dask.TaskKey(key), Primary: "tcp://n0:40000",
		Duplicate: "tcp://n1:40002", Wasted: sim.Seconds(wasted), At: sim.Seconds(at),
	})
}

// TestAggregatorSpeculationLane feeds the speculation topic and checks the
// counters, the wasted-seconds accumulator, and the retry rate — and that
// the lane is order-independent across partitions like every other lane.
func TestAggregatorSpeculationLane(t *testing.T) {
	type fed struct {
		part int
		m    mofka.Metadata
	}
	events := []fed{
		{0, specEv(dask.SpecLaunched, "work-01", 0, 1)},
		{1, specEv(dask.SpecLaunched, "work-02", 0, 1.5)},
		{0, specEv(dask.SpecWon, "work-01", 0, 3)},
		{1, specEv(dask.SpecCancelled, "work-01", 2.5, 3)},
		{0, specEv(dask.SpecFailed, "work-02", 0, 4)},
		{1, specEv(dask.SpecPromoted, "work-03", 0, 5)},
		{0, specEv(dask.SpecRetry, "", 0, 6)},
		{1, specEv(dask.SpecRetry, "", 0, 6.5)},
		{0, specEv(dask.SpecBudgetExhausted, "", 0, 7)},
	}
	feed := func(order []int) Summary {
		a := NewAggregator(AggregatorOptions{})
		for _, i := range order {
			a.IngestEvent(provenance.TopicSpeculation, events[i].part, events[i].m)
		}
		a.SetWall(10)
		return a.Snapshot()
	}
	var seq, alt []int
	for i := range events {
		seq = append(seq, i)
	}
	for _, wantPart := range []int{1, 0} {
		for i, e := range events {
			if e.part == wantPart {
				alt = append(alt, i)
			}
		}
	}
	s1, s2 := feed(seq), feed(alt)
	if !reflect.DeepEqual(s1.Speculation, s2.Speculation) {
		t.Fatalf("speculation lane differs across consumption orders:\n%+v\nvs\n%+v",
			s1.Speculation, s2.Speculation)
	}
	sp := s1.Speculation
	if sp == nil {
		t.Fatal("speculation lane missing from summary")
	}
	if sp.Launched != 2 || sp.Won != 1 || sp.Cancelled != 1 || sp.Failed != 1 ||
		sp.Promoted != 1 || sp.Retries != 2 || sp.BudgetExhausted != 1 {
		t.Fatalf("speculation counters = %+v", sp)
	}
	if sp.WastedSeconds != 2.5 {
		t.Fatalf("wasted seconds = %v, want 2.5", sp.WastedSeconds)
	}
	if sp.RetryRate != 2.0/10 {
		t.Fatalf("retry rate = %v, want 0.2", sp.RetryRate)
	}

	// Runs with no speculation events leave the lane absent entirely.
	a := NewAggregator(AggregatorOptions{})
	a.IngestEvent(provenance.TopicExecutions, 0, exec("load-0001", "w0", 0, 1))
	if s := a.Snapshot(); s.Speculation != nil {
		t.Fatalf("speculation lane present without events: %+v", s.Speculation)
	}
}

// TestStragglerDetectorAdvisor exercises the exported MAD-model advisor the
// scheduler's speculation tick consults: quiet below the bar, flagging an
// elapsed runtime far beyond the prefix's distribution, and never retracting
// a verdict as elapsed grows.
func TestStragglerDetectorAdvisor(t *testing.T) {
	d := NewStragglerDetector(AnomalyConfig{})
	// Too few samples: never a straggler.
	for i := 0; i < 4; i++ {
		d.Observe("work", 1.0)
	}
	if d.Straggler("work", 100) {
		t.Fatal("flagged with too few samples")
	}
	for i := 0; i < 40; i++ {
		d.Observe("work", 1.0+0.01*float64(i%5))
	}
	if d.Straggler("work", 1.05) {
		t.Fatal("flagged a typical duration")
	}
	if !d.Straggler("work", 10) {
		t.Fatal("did not flag a 10x runtime")
	}
	if d.Straggler("other", 10) {
		t.Fatal("flagged a prefix never observed")
	}
	// Monotone in elapsed: once a straggler, always a straggler.
	if !d.Straggler("work", 20) {
		t.Fatal("verdict retracted as elapsed grew")
	}
}
