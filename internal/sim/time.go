// Package sim provides the discrete-event simulation kernel that drives all
// virtual-time activity in this repository: the workflow management system,
// the platform model, and the parallel file system all schedule their work as
// events on a single sim.Kernel.
//
// The kernel is deliberately single-threaded: determinism across runs with
// the same seed is a core requirement of the reproduction (see DESIGN.md §5).
// Parallelism is obtained one level up, by running many independent kernels
// (one per workflow run) on separate goroutines.
package sim

import (
	"fmt"
	"time"
)

// Time is a virtual timestamp measured from the start of a simulation.
// It has nanosecond resolution, like time.Duration, and supports the same
// arithmetic by conversion.
type Time time.Duration

// Common virtual durations.
const (
	Nanosecond  Time = Time(time.Nanosecond)
	Microsecond Time = Time(time.Microsecond)
	Millisecond Time = Time(time.Millisecond)
	Second      Time = Time(time.Second)
	Minute      Time = Time(time.Minute)
)

// Seconds converts a floating-point number of seconds into a virtual Time.
func Seconds(s float64) Time { return Time(s * float64(time.Second)) }

// Milliseconds converts a floating-point number of milliseconds into a Time.
func Milliseconds(ms float64) Time { return Time(ms * float64(time.Millisecond)) }

// Microseconds converts a floating-point number of microseconds into a Time.
func Microseconds(us float64) Time { return Time(us * float64(time.Microsecond)) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Duration converts t to a time.Duration of the same magnitude.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the time as seconds with microsecond precision, e.g. "12.345678s".
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }
