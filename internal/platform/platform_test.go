package platform

import (
	"testing"

	"taskprov/internal/sim"
)

func TestNewClusterShape(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(k, Polaris())
	if len(c.Nodes()) != 2 {
		t.Fatalf("nodes = %d, want 2", len(c.Nodes()))
	}
	for i, n := range c.Nodes() {
		if n.ID != i {
			t.Errorf("node %d has ID %d", i, n.ID)
		}
		if n.Hostname == "" {
			t.Errorf("node %d missing hostname", i)
		}
		if n.Switch < 0 || n.Switch >= c.Config().Switches {
			t.Errorf("node %d switch %d out of range", i, n.Switch)
		}
		if n.Speed < 0.5 || n.Speed > 1.5 {
			t.Errorf("node %d speed %f implausible", i, n.Speed)
		}
	}
}

func TestPlacementVariesAcrossSeeds(t *testing.T) {
	cfg := Polaris()
	cfg.Nodes = 8
	distinct := map[int]bool{}
	for seed := uint64(0); seed < 16; seed++ {
		c := New(sim.NewKernel(seed), cfg)
		sig := 0
		for _, n := range c.Nodes() {
			sig = sig*cfg.Switches + n.Switch
		}
		distinct[sig] = true
	}
	if len(distinct) < 2 {
		t.Fatal("node placement identical across all seeds; variability source missing")
	}
}

func TestPlacementDeterministicForSeed(t *testing.T) {
	cfg := Polaris()
	cfg.Nodes = 8
	a := New(sim.NewKernel(42), cfg)
	b := New(sim.NewKernel(42), cfg)
	for i := range a.Nodes() {
		if a.Node(i).Switch != b.Node(i).Switch || a.Node(i).Hostname != b.Node(i).Hostname {
			t.Fatal("same seed produced different placement")
		}
	}
}

func TestTransferIntraVsInterNode(t *testing.T) {
	cfg := Polaris()
	cfg.LatencyCV = 0
	cfg.BandwidthCV = 0
	cfg.Switches = 1
	k := sim.NewKernel(1)
	c := New(k, cfg)
	var intra, inter sim.Time
	c.Transfer(c.Node(0), c.Node(0), 1<<30, func(e sim.Time) { intra = e })
	c.Transfer(c.Node(0), c.Node(1), 1<<30, func(e sim.Time) { inter = e })
	k.Run()
	if intra == 0 || inter == 0 {
		t.Fatal("transfers did not complete")
	}
	if intra >= inter {
		t.Fatalf("intra-node transfer (%v) not faster than inter-node (%v)", intra, inter)
	}
	// 1 GiB at 20 GB/s is ~54 ms; sanity-check the magnitude.
	if inter < sim.Milliseconds(40) || inter > sim.Milliseconds(80) {
		t.Fatalf("inter-node 1GiB transfer took %v, expected ~54ms", inter)
	}
}

func TestTransferZeroSizePaysLatencyOnly(t *testing.T) {
	cfg := Polaris()
	cfg.LatencyCV = 0
	k := sim.NewKernel(1)
	c := New(k, cfg)
	var e sim.Time
	c.Transfer(c.Node(0), c.Node(1), 0, func(d sim.Time) { e = d })
	k.Run()
	want := cfg.MessageOverhead
	if e < want || e > want+cfg.CrossSwitchLatency*2 {
		t.Fatalf("zero-size transfer elapsed %v, want ~latency+overhead", e)
	}
}

func TestConcurrentTransfersShareNIC(t *testing.T) {
	cfg := Polaris()
	cfg.LatencyCV = 0
	cfg.BandwidthCV = 0
	k := sim.NewKernel(1)
	c := New(k, cfg)
	var alone sim.Time
	c.Transfer(c.Node(0), c.Node(1), 1<<30, func(e sim.Time) { alone = e })
	k.Run()

	k2 := sim.NewKernel(1)
	c2 := New(k2, cfg)
	var with1, with2 sim.Time
	c2.Transfer(c2.Node(0), c2.Node(1), 1<<30, func(e sim.Time) { with1 = e })
	c2.Transfer(c2.Node(0), c2.Node(1), 1<<30, func(e sim.Time) { with2 = e })
	k2.Run()
	if with1 < alone*3/2 || with2 < alone*3/2 {
		t.Fatalf("concurrent transfers (%v, %v) not slowed vs alone (%v)", with1, with2, alone)
	}
}

func TestComputeDurationScalesBySpeed(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := Polaris()
	cfg.NodeSpeedCV = 0
	c := New(k, cfg)
	n := c.Node(0)
	if d := n.ComputeDuration(sim.Second); d != sim.Second {
		t.Fatalf("speed=1 node scaled duration to %v", d)
	}
	n.Speed = 2
	if d := n.ComputeDuration(sim.Second); d != sim.Second/2 {
		t.Fatalf("speed=2 node duration %v, want 0.5s", d)
	}
}

func TestDescribeCapturesTopology(t *testing.T) {
	k := sim.NewKernel(3)
	cfg := Polaris()
	cfg.Nodes = 4
	c := New(k, cfg)
	d := c.Describe()
	if d.Platform != cfg.Name || d.Nodes != 4 || len(d.NodeList) != 4 {
		t.Fatalf("Describe() = %+v", d)
	}
	if d.CoresPerNode != 32 || d.GPUsPerNode != 4 {
		t.Fatalf("Polaris description wrong: %+v", d)
	}
	for i, nd := range d.NodeList {
		if nd.Hostname != c.Node(i).Hostname || nd.Switch != c.Node(i).Switch {
			t.Fatalf("node %d description mismatch", i)
		}
	}
}

func TestLatencyDistanceOrdering(t *testing.T) {
	cfg := Polaris()
	cfg.LatencyCV = 0
	cfg.Nodes = 4
	// Force a deterministic topology for the assertion.
	k := sim.NewKernel(1)
	c := New(k, cfg)
	n := c.Nodes()
	n[0].Switch, n[1].Switch, n[2].Switch = 0, 0, 1
	same := c.latency(n[0], n[0])
	sw := c.latency(n[0], n[1])
	cross := c.latency(n[0], n[2])
	if !(same < sw && sw < cross) {
		t.Fatalf("latency ordering violated: intra=%v same-switch=%v cross=%v", same, sw, cross)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-node config did not panic")
		}
	}()
	New(sim.NewKernel(1), Config{})
}
