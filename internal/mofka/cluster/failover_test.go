package cluster

import (
	"fmt"
	"testing"
	"time"

	"taskprov/internal/mochi/ssg"
	"taskprov/internal/mofka"
)

// leaderOf returns the current leader of (topic, part).
func leaderOf(t *testing.T, c *Cluster, topic string, part int) int {
	t.Helper()
	for _, pv := range c.Placement() {
		if pv.Topic == topic && pv.Partition == part {
			return pv.Leader
		}
	}
	t.Fatalf("no placement for %s[%d]", topic, part)
	return -1
}

func TestFailoverZeroAckedLoss(t *testing.T) {
	c := newTestCluster(t, 3, 3) // RF3 so one loss keeps quorum (2 of 3)
	ct, err := c.EnsureTopic(mofka.TopicConfig{Name: "tasks", Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	p := pushN(t, ct, n, mofka.ProducerOptions{BatchSize: 10})
	defer p.Close()

	before := drainAll(t, c, "tasks", 3)
	if len(before) != n {
		t.Fatalf("pre-crash drain: %d events, want %d", len(before), n)
	}
	victim := leaderOf(t, c, "tasks", 0)
	if err := c.KillBroker(victim); err != nil {
		t.Fatalf("KillBroker: %v", err)
	}

	// Every acknowledged event must survive the leader loss.
	after := drainAll(t, c, "tasks", 3)
	if len(after) != n {
		t.Fatalf("post-crash drain: %d events, want %d (acked loss!)", len(after), n)
	}
	for i := range before {
		if string(before[i].Metadata) != string(after[i].Metadata) {
			t.Fatalf("event %d changed across failover", i)
		}
	}
	// Partitions led by the victim elected a new alive leader with a bumped
	// epoch.
	for _, pv := range c.Placement() {
		if pv.Leader == victim {
			t.Errorf("%s[%d] still led by dead node %d", pv.Topic, pv.Partition, victim)
		}
		if pv.Leader >= 0 && !c.nodeAlive(pv.Leader) {
			t.Errorf("%s[%d] led by dead node %d", pv.Topic, pv.Partition, pv.Leader)
		}
	}
	// Health log recorded the death and at least one election.
	var sawDead, sawElect bool
	for _, ev := range c.Events() {
		switch ev.Kind {
		case EventBrokerDead:
			if ev.Node == victim {
				sawDead = true
			}
		case EventLeaderElected:
			sawElect = true
		}
	}
	if !sawDead || !sawElect {
		t.Errorf("health events missing: dead=%v elect=%v (events: %+v)", sawDead, sawElect, c.Events())
	}
}

func TestProducerSurvivesLeaderKillAndRestart(t *testing.T) {
	c := newTestCluster(t, 3, 2) // RF2 quorum 2: a kill makes some partitions unavailable
	ct, err := c.EnsureTopic(mofka.TopicConfig{Name: "tasks", Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := ct.NewProducer(mofka.ProducerOptions{
		BatchSize:    8,
		FlushRetries: 1,
		RetryBackoff: time.Millisecond,
	})

	for i := 0; i < 100; i++ {
		if err := p.Push(mofka.Metadata{"seq": i}, []byte(fmt.Sprintf("d%d", i))); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	victim := leaderOf(t, c, "tasks", 0)
	if err := c.KillBroker(victim); err != nil {
		t.Fatal(err)
	}

	// Keep producing through the outage. Partitions whose replica set
	// includes the victim cannot reach quorum 2: their appends fail, the
	// batches stay queued (degraded mode), and Push surfaces the flush
	// error while still buffering the event — so errors are expected and
	// tolerated here, exactly like a workflow running through a broker
	// outage.
	for i := 100; i < 200; i++ {
		p.Push(mofka.Metadata{"seq": i}, []byte(fmt.Sprintf("d%d", i))) //nolint:errcheck
	}
	p.Flush() //nolint:errcheck // expected to fail for under-replicated partitions

	if err := c.RestartBroker(victim); err != nil {
		t.Fatalf("RestartBroker: %v", err)
	}
	// The backlog drains with idempotent retries after the member returns.
	if err := p.Flush(); err != nil {
		t.Fatalf("post-restart flush: %v", err)
	}
	if p.Degraded() {
		t.Error("producer still degraded after restart and successful flush")
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	evs := drainAll(t, c, "tasks", 4)
	if len(evs) != 200 {
		t.Fatalf("drained %d events, want 200 (no loss, no duplication)", len(evs))
	}
	seen := make(map[int]bool)
	for _, ev := range evs {
		md, err := ev.ParseMetadata()
		if err != nil {
			t.Fatal(err)
		}
		seq := int(md["seq"].(float64))
		if seen[seq] {
			t.Fatalf("event %d duplicated", seq)
		}
		seen[seq] = true
	}
	for i := 0; i < 200; i++ {
		if !seen[i] {
			t.Fatalf("event %d lost", i)
		}
	}
	// The rejoined node resumed its preferred leaderships (rank order is
	// deterministic, so the victim ranks first for the same partitions).
	if got := leaderOf(t, c, "tasks", 0); got != victim {
		t.Errorf("partition 0 led by %d after rejoin, want preferred leader %d", got, victim)
	}
}

func TestDeterministicFailoverTimeline(t *testing.T) {
	run := func() []Event {
		c, err := New(Config{Brokers: 3, ReplicationFactor: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		ct, err := c.EnsureTopic(mofka.TopicConfig{Name: "tasks", Partitions: 4})
		if err != nil {
			t.Fatal(err)
		}
		p := pushN(t, ct, 60, mofka.ProducerOptions{BatchSize: 5})
		c.KillBroker(1)    //nolint:errcheck
		p.Flush()          //nolint:errcheck
		c.RestartBroker(1) //nolint:errcheck
		p.Flush()          //nolint:errcheck
		p.Close()          //nolint:errcheck
		evs := c.Events()
		// Timestamps are wall-clock in this harness; compare structure only.
		for i := range evs {
			evs[i].At = 0
		}
		return evs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("timeline lengths differ: %d vs %d\nA: %+v\nB: %+v", len(a), len(b), a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("timeline diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSweepDrivenFailover(t *testing.T) {
	base := time.Unix(1000, 0)
	now := base
	c, err := New(Config{
		Brokers:           3,
		ReplicationFactor: 3,
		SSG:               ssg.Config{SuspectAfter: time.Second, DeadAfter: 2 * time.Second},
		Clock:             func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ct, err := c.EnsureTopic(mofka.TopicConfig{Name: "t", Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := pushN(t, ct, 40, mofka.ProducerOptions{BatchSize: 4})
	defer p.Close()

	victim := leaderOf(t, c, "t", 0)
	// Stop heartbeating the victim by closing its broker; Heartbeat skips
	// closed... actually Heartbeat covers alive local nodes, so emulate a
	// silent member: heartbeat everyone else manually.
	now = now.Add(3 * time.Second)
	for _, n := range c.group.Members() {
		if int(n.ID) != victim {
			c.group.Heartbeat(n.ID, now)
		}
	}
	if changes := c.Sweep(now); changes == 0 {
		t.Fatal("sweep detected no failures")
	}
	if c.nodeAlive(victim) {
		t.Fatal("victim still alive after sweep")
	}
	if got := leaderOf(t, c, "t", 0); got == victim {
		t.Fatal("dead node still leads after sweep-driven failover")
	}
	// Acked events still fully readable.
	if evs := drainAll(t, c, "t", 2); len(evs) != 40 {
		t.Fatalf("drained %d events after sweep failover, want 40", len(evs))
	}
}

func TestDurableClusterCrashReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Brokers: 3, ReplicationFactor: 2, DataDir: dir}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := c.EnsureTopic(mofka.TopicConfig{Name: "tasks", Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := pushN(t, ct, 150, mofka.ProducerOptions{BatchSize: 10})
	acked := make(map[int]uint64)
	for pi := 0; pi < 3; pi++ {
		n, err := c.Length("tasks", pi)
		if err != nil {
			t.Fatal(err)
		}
		acked[pi] = n
	}
	if err := c.CommitCursor("analysis", "tasks", 0, 5); err != nil {
		t.Fatal(err)
	}
	// kill -9: abandon producer and cluster without Close. SyncBatch (the
	// default) means every acknowledged batch is already fsynced.
	_ = p
	_ = c

	rc, err := New(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rc.Close()
	for pi := 0; pi < 3; pi++ {
		n, err := rc.Length("tasks", pi)
		if err != nil {
			t.Fatal(err)
		}
		if n < acked[pi] {
			t.Errorf("tasks[%d]: recovered %d events, acked was %d (durable loss)", pi, n, acked[pi])
		}
	}
	if evs := drainAll(t, rc, "tasks", 3); uint64(len(evs)) < acked[0]+acked[1]+acked[2] {
		t.Fatalf("recovered drain %d < acked total %d", len(evs), acked[0]+acked[1]+acked[2])
	}
	if got := rc.LoadCursor("analysis", "tasks", 0); got != 5 {
		t.Errorf("recovered cursor %d, want 5", got)
	}
	// Replicas were healed to a common prefix on reopen.
	for _, pv := range rc.Placement() {
		var lens []uint64
		for _, r := range pv.Replicas {
			b := rc.NodeBroker(r)
			bt, err := b.OpenTopic("tasks")
			if err != nil {
				continue
			}
			bp, err := bt.Partition(pv.Partition)
			if err != nil {
				continue
			}
			lens = append(lens, bp.Length())
		}
		for _, l := range lens {
			if l != pv.Acked {
				t.Errorf("tasks[%d]: replica lengths %v not reconciled to acked %d", pv.Partition, lens, pv.Acked)
			}
		}
	}
	// Reopening with a different shape is rejected.
	if _, err := New(Config{Brokers: 4, ReplicationFactor: 2, DataDir: dir}); err == nil {
		t.Error("shape mismatch on reopen accepted")
	}
}

func TestPostMortemClusterLoad(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Brokers: 3, ReplicationFactor: 2, DataDir: dir}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := c.EnsureTopic(mofka.TopicConfig{Name: "tasks", Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := pushN(t, ct, 80, mofka.ProducerOptions{BatchSize: 8})
	p.Close() //nolint:errcheck
	if err := c.CommitCursor("grp", "tasks", 1, 3); err != nil {
		t.Fatal(err)
	}
	live := drainAll(t, c, "tasks", 2)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	if !IsClusterDir(dir) {
		t.Fatal("IsClusterDir false for a cluster data dir")
	}
	view, err := OpenPostMortem(dir)
	if err != nil {
		t.Fatalf("OpenPostMortem: %v", err)
	}
	vt, err := view.OpenTopic("tasks")
	if err != nil {
		t.Fatal(err)
	}
	if got := vt.Events(); got != uint64(len(live)) {
		t.Fatalf("post-mortem holds %d events, live acked %d", got, len(live))
	}
	if got := view.LoadCursor("grp", "tasks", 1); got != 3 {
		t.Errorf("post-mortem cursor %d, want 3", got)
	}
}
