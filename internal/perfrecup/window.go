package perfrecup

import (
	"fmt"
	"sort"
	"strings"

	"taskprov/internal/core"
	"taskprov/internal/dask"
)

// WindowStats is the paper's "zooming through a specific time period"
// analysis (§IV-D): all activity within [From, To) seconds of one run —
// executing tasks, I/O, communication, and warnings — summarized together.
type WindowStats struct {
	From, To float64

	TasksActive    int // tasks whose execution overlaps the window
	TasksStarted   int
	TasksFinished  int
	ComputeSeconds float64 // execution time inside the window

	IOOps     int
	IOBytes   int64
	IOSeconds float64

	Transfers     int
	TransferBytes int64
	CommSeconds   float64

	Warnings map[string]int

	BusiestPrefix string // task category with the most in-window compute
}

// overlap returns the length of [a0,a1) ∩ [b0,b1).
func overlap(a0, a1, b0, b1 float64) float64 {
	lo, hi := a0, a1
	if b0 > lo {
		lo = b0
	}
	if b1 < hi {
		hi = b1
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// Window computes WindowStats for [from, to) seconds.
func Window(art *core.RunArtifacts, from, to float64) (WindowStats, error) {
	w := WindowStats{From: from, To: to, Warnings: map[string]int{}}

	execs, err := core.DrainTopic(art.Broker, core.TopicExecutions)
	if err != nil {
		return w, err
	}
	byPrefix := map[string]float64{}
	for _, m := range execs {
		e := core.ParseExecution(m)
		s, p := e.Start.Seconds(), e.Stop.Seconds()
		ov := overlap(s, p, from, to)
		if ov <= 0 {
			continue
		}
		w.TasksActive++
		w.ComputeSeconds += ov
		if s >= from && s < to {
			w.TasksStarted++
		}
		if p >= from && p < to {
			w.TasksFinished++
		}
		byPrefix[dask.KeyPrefix(e.Key)] += ov
	}
	best := 0.0
	for p, v := range byPrefix {
		if v > best {
			best, w.BusiestPrefix = v, p
		}
	}

	for _, l := range art.DarshanLogs {
		for _, rec := range l.Records {
			for _, s := range rec.DXT {
				ov := overlap(s.Start, s.End, from, to)
				if ov <= 0 {
					continue
				}
				w.IOOps++
				w.IOBytes += s.Length
				w.IOSeconds += ov
			}
		}
	}

	transfers, err := core.DrainTopic(art.Broker, core.TopicTransfers)
	if err != nil {
		return w, err
	}
	for _, m := range transfers {
		t := core.ParseTransfer(m)
		ov := overlap(t.Start.Seconds(), t.Stop.Seconds(), from, to)
		if ov <= 0 {
			continue
		}
		w.Transfers++
		w.TransferBytes += t.Bytes
		w.CommSeconds += ov
	}

	warns, err := core.DrainTopic(art.Broker, core.TopicWarnings)
	if err != nil {
		return w, err
	}
	for _, m := range warns {
		wr := core.ParseWarning(m)
		at := wr.At.Seconds()
		if at >= from && at < to {
			w.Warnings[string(wr.Kind)]++
		}
	}
	return w, nil
}

// Render formats the window summary.
func (w WindowStats) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "window [%.1fs, %.1fs):\n", w.From, w.To)
	fmt.Fprintf(&sb, "  tasks: %d active (%d started, %d finished), %.1fs compute, busiest category %q\n",
		w.TasksActive, w.TasksStarted, w.TasksFinished, w.ComputeSeconds, w.BusiestPrefix)
	fmt.Fprintf(&sb, "  io:    %d ops, %d bytes, %.2fs\n", w.IOOps, w.IOBytes, w.IOSeconds)
	fmt.Fprintf(&sb, "  comm:  %d transfers, %d bytes, %.2fs\n", w.Transfers, w.TransferBytes, w.CommSeconds)
	var kinds []string
	for k := range w.Warnings {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&sb, "  warn:  %s x%d\n", k, w.Warnings[k])
	}
	return sb.String()
}

// ScheduleComparison quantifies how differently two runs of the same
// workflow were scheduled — the paper's "comparison of scheduling
// strategies over runs such as whether tasks were scheduled in the same
// order or not" (§IV-D).
type ScheduleComparison struct {
	CommonTasks    int
	SamePlacement  float64 // fraction of common tasks on the same worker rank order... see SameWorker
	SameWorker     float64 // fraction executed on the same worker address
	OrderAgreement float64 // Spearman correlation of execution start order
	WallDeltaSec   float64 // |wallA - wallB|
}

// CompareSchedules compares two runs' task executions.
func CompareSchedules(a, b *core.RunArtifacts) (ScheduleComparison, error) {
	var out ScheduleComparison
	load := func(art *core.RunArtifacts) (map[string]dask.TaskExecution, error) {
		metas, err := core.DrainTopic(art.Broker, core.TopicExecutions)
		if err != nil {
			return nil, err
		}
		m := make(map[string]dask.TaskExecution, len(metas))
		for _, meta := range metas {
			e := core.ParseExecution(meta)
			m[string(e.Key)] = e
		}
		return m, nil
	}
	ea, err := load(a)
	if err != nil {
		return out, err
	}
	eb, err := load(b)
	if err != nil {
		return out, err
	}
	var startsA, startsB []float64
	same := 0
	for k, xa := range ea {
		xb, ok := eb[k]
		if !ok {
			continue
		}
		out.CommonTasks++
		if xa.Worker == xb.Worker {
			same++
		}
		startsA = append(startsA, xa.Start.Seconds())
		startsB = append(startsB, xb.Start.Seconds())
	}
	if out.CommonTasks > 0 {
		out.SameWorker = float64(same) / float64(out.CommonTasks)
		out.SamePlacement = out.SameWorker
	}
	if len(startsA) >= 2 {
		out.OrderAgreement = Spearman(startsA, startsB)
	}
	out.WallDeltaSec = a.Meta.WallSeconds - b.Meta.WallSeconds
	if out.WallDeltaSec < 0 {
		out.WallDeltaSec = -out.WallDeltaSec
	}
	return out, nil
}

// Render formats the comparison.
func (c ScheduleComparison) Render() string {
	return fmt.Sprintf(
		"common tasks: %d\nsame worker: %.1f%%\nexecution order agreement (spearman): %.3f\nwall-time delta: %.2fs\n",
		c.CommonTasks, 100*c.SameWorker, c.OrderAgreement, c.WallDeltaSec)
}
