package yokan

import (
	"fmt"
	"testing"
)

func BenchmarkPut(b *testing.B) {
	db := NewDatabase("bench")
	val := []byte("value-payload-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Put(fmt.Sprintf("key-%09d", i), val)
	}
}

func BenchmarkGet(b *testing.B) {
	db := NewDatabase("bench")
	for i := 0; i < 10000; i++ {
		db.Put(fmt.Sprintf("key-%09d", i), []byte("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Get(fmt.Sprintf("key-%09d", i%10000))
	}
}

func BenchmarkCollectionStore(b *testing.B) {
	c := NewDatabase("bench").Collection("docs")
	doc := []byte(`{"key":"('getitem-abc',63)","from":"waiting","to":"processing"}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Store(doc)
	}
}
