package workloads

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"taskprov/internal/core"
	"taskprov/internal/dask"
	"taskprov/internal/resume"
)

// execSummary summarizes a run's execution stream: per-key record count and
// latest output size.
func execSummary(t *testing.T, art *core.RunArtifacts) (counts map[dask.TaskKey]int, sizes map[dask.TaskKey]int64) {
	t.Helper()
	metas, err := core.DrainTopic(art.Broker, core.TopicExecutions)
	if err != nil {
		t.Fatal(err)
	}
	counts = make(map[dask.TaskKey]int)
	sizes = make(map[dask.TaskKey]int64)
	stops := make(map[dask.TaskKey]float64)
	for _, m := range metas {
		e := core.ParseExecution(m)
		counts[e.Key]++
		if s := e.Stop.Seconds(); s >= stops[e.Key] {
			stops[e.Key] = s
			sizes[e.Key] = e.OutputSize
		}
	}
	return counts, sizes
}

// killAndResume runs one workload to a baseline, kills the coordinator at
// frac of the baseline wall time, resumes from the data dir, and checks the
// merged run reproduces the baseline's provenance summaries with no
// re-execution of still-resolvable outputs.
// racy marks files whose final size is a last-truncator-wins race between
// store tasks even across uninterrupted runs with different schedules (the
// imageprocessing shard files: every store-zarr opens with CREATE and writes
// at its own image offset). Resume only guarantees the manifest for files
// with schedule-independent final content.
func killAndResume(t *testing.T, name string, seed uint64, frac float64, baseArt *core.RunArtifacts, baseSizes map[dask.TaskKey]int64, racy func(path string) bool) {
	t.Helper()
	dir := t.TempDir() + "/run"

	wf, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSession(name, "job-"+name, seed)
	cfg.MofkaDataDir = dir
	cfg.ChaosSpec = fmt.Sprintf("scheduler at=%s", time.Duration(float64(baseArt.WallTime)*frac))
	_, err = core.Run(cfg, wf)
	var crash *core.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("%s kill at %.0f%%: expected CrashError, got %v", name, 100*frac, err)
	}

	pre, err := resume.Reconstruct(dir)
	if err != nil {
		t.Fatal(err)
	}

	rwf, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := DefaultSession(name, "job-"+name, seed)
	rcfg.ResumeFrom = dir
	art, err := core.Run(rcfg, rwf)
	if err != nil {
		t.Fatalf("%s resume after kill at %.0f%%: %v", name, 100*frac, err)
	}

	// Merged provenance summaries match the uninterrupted baseline.
	for _, m := range []struct {
		what      string
		got, want int
	}{
		{what: "task graphs", got: mustInt(t, art.TaskGraphs), want: mustInt(t, baseArt.TaskGraphs)},
		{what: "distinct tasks", got: mustInt(t, art.DistinctTasks), want: mustInt(t, baseArt.DistinctTasks)},
	} {
		if m.got != m.want {
			t.Errorf("%s kill at %.0f%%: merged %s = %d, baseline %d", name, 100*frac, m.what, m.got, m.want)
		}
	}
	// The final filesystem matches the uninterrupted run's: same file set,
	// and identical sizes for every file with schedule-independent content —
	// memoized tasks' outputs were replayed from recorded file effects, the
	// rest re-ran their own I/O. (Darshan log counts cannot be compared —
	// the killed attempt's in-memory logs die with its processes, exactly
	// as real Darshan logs written at finalize would.)
	for p, sz := range baseArt.Files {
		got, ok := art.Files[p]
		if !ok {
			t.Errorf("%s kill at %.0f%%: final filesystem lost %s", name, 100*frac, p)
			continue
		}
		if got != sz && (racy == nil || !racy(p)) {
			t.Errorf("%s kill at %.0f%%: %s = %d bytes, baseline %d", name, 100*frac, p, got, sz)
		}
	}
	for p := range art.Files {
		if _, ok := baseArt.Files[p]; !ok {
			t.Errorf("%s kill at %.0f%%: spurious file %s", name, 100*frac, p)
		}
	}
	if got, want := art.DistinctFiles(), baseArt.DistinctFiles(); got > want {
		t.Errorf("%s kill at %.0f%%: resumed attempt touched %d distinct files, baseline %d", name, 100*frac, got, want)
	}

	// Every baseline task is evidenced with its baseline output size, by
	// execution record or by memo.
	counts, sizes := execSummary(t, art)
	for k, sz := range baseSizes {
		if got, ok := sizes[k]; ok {
			if got != sz {
				t.Fatalf("%s: task %s output = %d, baseline %d", name, k, got, sz)
			}
			continue
		}
		m, ok := pre.Memos[k]
		if !ok {
			t.Fatalf("%s: merged provenance lost task %s", name, k)
		}
		if m.Size != sz {
			t.Fatalf("%s: task %s memoized size = %d, baseline %d", name, k, m.Size, sz)
		}
	}
	// No re-execution of tasks whose output was still resolvable.
	for k, m := range pre.Memos {
		if !m.Resolvable {
			continue
		}
		if counts[k] != pre.ExecCounts[k] {
			t.Fatalf("%s: resolvable task %s re-executed: %d records, %d before resume",
				name, k, counts[k], pre.ExecCounts[k])
		}
	}

	// The attempt boundary is recorded.
	if art.Meta.Attempt != 2 || art.Meta.ResumedFrom != 1 {
		t.Errorf("%s: metadata attempt = %d resumed_from = %d", name, art.Meta.Attempt, art.Meta.ResumedFrom)
	}
	lin, err := resume.LoadLineage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(lin.Attempts) != 2 || !lin.Last().Completed {
		t.Errorf("%s: lineage = %+v", name, lin)
	}
}

func mustInt(t *testing.T, f func() (int, error)) int {
	t.Helper()
	n, err := f()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestResumeEquivalenceImageProcessing kills the whole session at three
// distinct points of an ImageProcessing run and resumes each — the paper
// workload form of the resumption acceptance test.
func TestResumeEquivalenceImageProcessing(t *testing.T) {
	if testing.Short() {
		t.Skip("full workflow runs")
	}
	const seed = 3
	wf, err := New("imageprocessing")
	if err != nil {
		t.Fatal(err)
	}
	baseArt, err := core.Run(DefaultSession("imageprocessing", "job-imageprocessing", seed), wf)
	if err != nil {
		t.Fatal(err)
	}
	_, baseSizes := execSummary(t, baseArt)
	for _, frac := range []float64{0.25, 0.55, 0.85} {
		frac := frac
		t.Run(fmt.Sprintf("kill-at-%.0f%%", 100*frac), func(t *testing.T) {
			killAndResume(t, "imageprocessing", seed, frac, baseArt, baseSizes, func(p string) bool {
				return strings.Contains(p, "/out/stage-")
			})
		})
	}
}

// TestResumeEquivalenceXGBoost does the same for the xgboost workload (74
// graphs, >10k tasks): one mid-run kill point keeps the runtime in check
// while exercising resumption across many completed and in-flight graphs.
func TestResumeEquivalenceXGBoost(t *testing.T) {
	if testing.Short() {
		t.Skip("full workflow runs")
	}
	const seed = 3
	wf, err := New("xgboost")
	if err != nil {
		t.Fatal(err)
	}
	baseArt, err := core.Run(DefaultSession("xgboost", "job-xgboost", seed), wf)
	if err != nil {
		t.Fatal(err)
	}
	_, baseSizes := execSummary(t, baseArt)
	killAndResume(t, "xgboost", seed, 0.55, baseArt, baseSizes, nil)
}
