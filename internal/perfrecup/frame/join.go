package frame

import "fmt"

// JoinKind selects the join semantics.
type JoinKind int

// Join kinds.
const (
	Inner JoinKind = iota
	Left
)

// Join hash-joins f (left) with other (right) on equal values of the named
// key columns (which must exist on both sides with matching dtypes). Right
// columns that clash with a left column name get a "_r" suffix. Left joins
// fill right columns of unmatched rows with zero values (NaN for floats).
//
// This is the fusion primitive PERFRECUP uses to align records from
// different tools: e.g. joining Dask task executions with Darshan DXT
// segments on (hostname, thread ID).
func (f *Frame) Join(other *Frame, kind JoinKind, on ...string) (*Frame, error) {
	if len(on) == 0 {
		return nil, fmt.Errorf("frame: join needs at least one key column")
	}
	leftKeys := make([]*Series, len(on))
	rightKeys := make([]*Series, len(on))
	for i, k := range on {
		if !f.HasCol(k) || !other.HasCol(k) {
			return nil, fmt.Errorf("frame: join key %q missing on one side", k)
		}
		leftKeys[i] = f.Col(k)
		rightKeys[i] = other.Col(k)
		if leftKeys[i].dtype != rightKeys[i].dtype {
			return nil, fmt.Errorf("frame: join key %q dtype mismatch: %v vs %v",
				k, leftKeys[i].dtype, rightKeys[i].dtype)
		}
	}
	keyOf := func(cols []*Series, r int) string {
		key := ""
		for _, c := range cols {
			key += c.keyString(r) + "\x00"
		}
		return key
	}
	// Build hash table on the right side.
	table := make(map[string][]int, other.NRows())
	for r := 0; r < other.NRows(); r++ {
		k := keyOf(rightKeys, r)
		table[k] = append(table[k], r)
	}

	onSet := map[string]bool{}
	for _, k := range on {
		onSet[k] = true
	}
	// Output schema: all left columns, then right columns minus keys.
	var outCols []*Series
	for _, c := range f.cols {
		outCols = append(outCols, &Series{name: c.name, dtype: c.dtype})
	}
	var rightCols []*Series
	for _, c := range other.cols {
		if onSet[c.name] {
			continue
		}
		name := c.name
		if f.HasCol(name) {
			name += "_r"
		}
		rc := &Series{name: name, dtype: c.dtype}
		rightCols = append(rightCols, rc)
		outCols = append(outCols, rc)
	}
	rightSrc := make([]*Series, 0, len(rightCols))
	for _, c := range other.cols {
		if !onSet[c.name] {
			rightSrc = append(rightSrc, c)
		}
	}

	emit := func(l int, r int) {
		for i, c := range f.cols {
			outCols[i].appendValue(c, l)
		}
		for i, rc := range rightCols {
			if r < 0 {
				rc.appendZero()
			} else {
				rc.appendValue(rightSrc[i], r)
			}
		}
	}
	for l := 0; l < f.NRows(); l++ {
		matches := table[keyOf(leftKeys, l)]
		if len(matches) == 0 {
			if kind == Left {
				emit(l, -1)
			}
			continue
		}
		for _, r := range matches {
			emit(l, r)
		}
	}
	return New(outCols...)
}
