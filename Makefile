GO ?= go

.PHONY: build vet test race bench chaos verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The broker, durable log, and live monitor are all concurrency-heavy; run
# the whole tree under the race detector.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Seeded, deterministic fault-injection and recovery suites, race-enabled:
# the chaos plan parser/controller, the scheduler crash-recovery tests
# (including the crash-vs-baseline property test), and the end-to-end
# degraded sessions in core/perfrecup/live.
chaos:
	$(GO) test -race -run 'TestParse|TestArm|TestEmptyPlan|TestWorkerCrash|TestLostKey|TestWorkerRestart|TestRepeatedCrash|TestCrash|TestChaos|TestRecoveryTimeline|TestAggregatorRecovery' \
		./internal/chaos/ ./internal/dask/ ./internal/core/ ./internal/perfrecup/ ./internal/live/

# Everything CI runs.
verify: build vet test race chaos
