package perfrecup

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"taskprov/internal/core"
	"taskprov/internal/perfrecup/frame"
	"taskprov/internal/sim"
)

// durableRun executes the mini workflow with the broker backed by a durable
// event log under dir.
func durableRun(t *testing.T, dir string) *core.RunArtifacts {
	t.Helper()
	cfg := core.DefaultSessionConfig("job-mini-durable", 11)
	cfg.Platform.NodeSpeedCV = 0
	cfg.PFS.InterferenceLoad = 0
	cfg.Dask.WorkersPerNode = 2
	cfg.Dask.ThreadsPerWorker = 2
	cfg.Dask.EventLoopMonitorThreshold = sim.Seconds(1)
	cfg.MofkaDataDir = dir
	art, err := core.Run(cfg, &miniWorkflow{files: 24})
	if err != nil {
		t.Fatal(err)
	}
	return art
}

func viewCSV(t *testing.T, f *frame.Frame, err error) string {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestPostMortemViewsMatchLive is the acceptance check for the post-mortem
// loading mode: every Mofka-backed view built from the on-disk event log
// must be byte-identical to the same view built from the live broker that
// wrote it.
func TestPostMortemViewsMatchLive(t *testing.T) {
	dir := t.TempDir()
	live := durableRun(t, dir)

	pm, err := LoadEventLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	views := []struct {
		name string
		fn   func(*core.RunArtifacts) (*frame.Frame, error)
	}{
		{"executions", ExecutionsView},
		{"transitions", TransitionsView},
		{"transfers", TransfersView},
		{"warnings", WarningsView},
		{"taskmeta", TaskMetaView},
		{"heartbeats", HeartbeatsView},
		{"dxt", DXTView},
		{"posix", PosixView},
	}
	for _, v := range views {
		lf, lerr := v.fn(live)
		pf, perr := v.fn(pm)
		lcsv, pcsv := viewCSV(t, lf, lerr), viewCSV(t, pf, perr)
		if lcsv != pcsv {
			t.Errorf("view %s differs between live broker and post-mortem log", v.name)
		}
		if lf.NRows() == 0 {
			t.Errorf("view %s is empty; equivalence check is vacuous", v.name)
		}
	}

	// The provenance chart rides along in the data directory.
	if pm.Meta.Workflow != live.Meta.Workflow || pm.Meta.JobID != live.Meta.JobID {
		t.Fatalf("post-mortem metadata = %q/%q, live %q/%q",
			pm.Meta.Workflow, pm.Meta.JobID, live.Meta.Workflow, live.Meta.JobID)
	}
	if pm.Meta.Instrumentation.MofkaDataDir != dir {
		t.Fatalf("metadata does not record the data dir: %q", pm.Meta.Instrumentation.MofkaDataDir)
	}
	if pm.WallTime != live.WallTime {
		t.Fatalf("post-mortem wall time %v, live %v", pm.WallTime, live.WallTime)
	}

	// Loading is repeatable and read-only: a second load sees the same data.
	pm2, err := LoadEventLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	af, aerr := ExecutionsView(pm)
	bf, berr := ExecutionsView(pm2)
	if a, b := viewCSV(t, af, aerr), viewCSV(t, bf, berr); a != b {
		t.Fatal("second post-mortem load differs from the first")
	}
}

// TestPostMortemAnalysesRun: the higher-level analyses (phases, correlations)
// work from the on-disk log alone.
func TestPostMortemAnalysesRun(t *testing.T) {
	dir := t.TempDir()
	live := durableRun(t, dir)
	pm, err := LoadEventLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := Phases(live)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Phases(pm)
	if err != nil {
		t.Fatal(err)
	}
	if lb != pb {
		t.Fatalf("phase breakdown differs: live %+v vs post-mortem %+v", lb, pb)
	}
	if _, err := CommScatter(pm); err != nil {
		t.Fatal(err)
	}
	if _, err := ParallelCoords(pm); err != nil {
		t.Fatal(err)
	}
}

// TestLoadEventLogEmptyDir: a directory with no log yields an empty broker
// (no topics), never a panic, and creates nothing on disk.
func TestLoadEventLogEmptyDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nope")
	art, err := LoadEventLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if topics := art.Broker.Topics(); len(topics) != 0 {
		t.Fatalf("empty dir produced topics %v", topics)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("read-only load created %s", dir)
	}
}

// TestDurableRunWritesSelfDescribingDir: the data directory alone carries
// everything the post-mortem loader needs.
func TestDurableRunWritesSelfDescribingDir(t *testing.T) {
	dir := t.TempDir()
	durableRun(t, dir)
	if _, err := os.Stat(filepath.Join(dir, "metadata.json")); err != nil {
		t.Fatalf("no metadata.json in data dir: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "topics")); err != nil {
		t.Fatalf("no topics/ in data dir: %v", err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "topics", "*", "*", "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files written: %v %v", segs, err)
	}
}
