// Quickstart: build a small workflow with real Go task bodies, run it under
// the full characterization stack (WMS + Darshan + Mofka), and inspect what
// was collected.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"taskprov/internal/core"
	"taskprov/internal/dask"
	"taskprov/internal/perfrecup"
	"taskprov/internal/posixio"
	"taskprov/internal/sim"
)

// wordcount is a tiny map/reduce workflow. The map tasks run REAL Go
// computations (ctx.Measure charges their wall time to the virtual clock)
// and read staged input files through the instrumented POSIX layer.
type wordcount struct {
	inputs  int
	results map[int]int
}

func (w *wordcount) Name() string { return "quickstart-wordcount" }

func (w *wordcount) Stage(env *core.Env) {
	for i := 0; i < w.inputs; i++ {
		env.PFS.CreateNow(fmt.Sprintf("/lus/demo/shard-%02d.txt", i), 2<<20)
	}
}

func (w *wordcount) Run(p *sim.Proc, cl *dask.Client, env *core.Env) {
	w.results = make(map[int]int)
	g := dask.NewGraph(1)
	var deps []dask.TaskKey
	for i := 0; i < w.inputs; i++ {
		i := i
		key := dask.TaskKey(fmt.Sprintf("count-%02d", i))
		deps = append(deps, key)
		g.Add(&dask.TaskSpec{
			Key:        key,
			OutputSize: 4096,
			Run: func(ctx *dask.TaskContext) {
				f, err := ctx.Open(fmt.Sprintf("/lus/demo/shard-%02d.txt", i), posixio.RDONLY)
				if err != nil {
					panic(err)
				}
				f.Read(ctx.Proc(), 2<<20)
				f.Close(ctx.Proc())
				// A real computation, measured on the wall clock and
				// charged to virtual time.
				ctx.Measure(func() {
					n := 0
					for j := 0; j < 2_000_00; j++ {
						if j%7 == 0 {
							n++
						}
					}
					w.results[i] = n
				})
			},
		})
	}
	g.Add(&dask.TaskSpec{
		Key: "total-00", Deps: deps, OutputSize: 64,
		Run: func(ctx *dask.TaskContext) {
			ctx.Measure(func() {
				total := 0
				for _, n := range w.results {
					total += n
				}
				w.results[-1] = total
			})
		},
	})
	cl.SubmitAndWait(p, g)
}

func main() {
	cfg := core.DefaultSessionConfig("quickstart-001", 7)
	wf := &wordcount{inputs: 12}
	art, err := core.Run(cfg, wf)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workflow %q finished in %.2f virtual seconds\n", wf.Name(), art.Meta.WallSeconds)
	fmt.Printf("real result: total = %d\n\n", wf.results[-1])

	row, err := perfrecup.RenderTableIRow(art)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("collected:", row)

	// Where did each task run?
	execs, err := perfrecup.ExecutionsView(art)
	if err != nil {
		log.Fatal(err)
	}
	byWorker := map[string]int{}
	for i := 0; i < execs.NRows(); i++ {
		byWorker[execs.Col("worker").Str(i)]++
	}
	var workers []string
	for w := range byWorker {
		workers = append(workers, w)
	}
	sort.Strings(workers)
	fmt.Println("\ntask placement:")
	for _, w := range workers {
		fmt.Printf("  %-28s %d tasks\n", w, byWorker[w])
	}

	// Full provenance of one task, fused from Mofka events + Darshan DXT.
	l, err := perfrecup.BuildLineage(art, "count-03")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nprovenance of count-03:")
	fmt.Print(l.Render())
}
