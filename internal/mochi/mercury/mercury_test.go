package mercury

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRegistryCall(t *testing.T) {
	reg := NewRegistry()
	ep := reg.Listen("local://svc")
	ep.Register("echo", func(req []byte) ([]byte, error) { return req, nil })
	resp, err := reg.Call("local://svc", "echo", []byte("hi"))
	if err != nil || string(resp) != "hi" {
		t.Fatalf("echo = %q, %v", resp, err)
	}
}

func TestRegistryUnknownEndpointAndRPC(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Call("local://nope", "x", nil); !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("err = %v, want ErrNoEndpoint", err)
	}
	reg.Listen("local://svc")
	if _, err := reg.Call("local://svc", "x", nil); !errors.Is(err, ErrNoRPC) {
		t.Fatalf("err = %v, want ErrNoRPC", err)
	}
}

func TestRegistryCloseRemoves(t *testing.T) {
	reg := NewRegistry()
	reg.Listen("local://svc")
	reg.Close("local://svc")
	if _, err := reg.Call("local://svc", "x", nil); !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("err after Close = %v", err)
	}
}

func TestBoundCaller(t *testing.T) {
	reg := NewRegistry()
	ep := reg.Listen("local://svc")
	ep.Register("double", func(req []byte) ([]byte, error) {
		return append(req, req...), nil
	})
	var c Caller = reg.Bind("local://svc")
	resp, err := c.Call("double", []byte("ab"))
	if err != nil || string(resp) != "abab" {
		t.Fatalf("bound call = %q, %v", resp, err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	ep := NewEndpoint("tcp-svc")
	ep.Register("sum", func(req []byte) ([]byte, error) {
		var s byte
		for _, b := range req {
			s += b
		}
		return []byte{s}, nil
	})
	srv, err := Serve(ep, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	resp, err := cli.Call("sum", []byte{1, 2, 3})
	if err != nil || len(resp) != 1 || resp[0] != 6 {
		t.Fatalf("sum = %v, %v", resp, err)
	}
}

func TestTCPRemoteError(t *testing.T) {
	ep := NewEndpoint("tcp-svc")
	ep.Register("fail", func(req []byte) ([]byte, error) {
		return nil, fmt.Errorf("boom: %s", req)
	})
	srv, err := Serve(ep, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_, err = cli.Call("fail", []byte("x"))
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "boom: x" {
		t.Fatalf("err = %v, want RemoteError(boom: x)", err)
	}
}

func TestTCPLargePayload(t *testing.T) {
	ep := NewEndpoint("tcp-svc")
	ep.Register("echo", func(req []byte) ([]byte, error) { return req, nil })
	srv, err := Serve(ep, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	big := bytes.Repeat([]byte{0xAB}, 4<<20)
	resp, err := cli.Call("echo", big)
	if err != nil || !bytes.Equal(resp, big) {
		t.Fatalf("large echo mismatch (len %d, err %v)", len(resp), err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	ep := NewEndpoint("tcp-svc")
	ep.Register("echo", func(req []byte) ([]byte, error) { return req, nil })
	srv, err := Serve(ep, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			for j := 0; j < 50; j++ {
				msg := []byte(fmt.Sprintf("client-%d-msg-%d", i, j))
				resp, err := cli.Call("echo", msg)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp, msg) {
					errs <- fmt.Errorf("mismatch: %q vs %q", resp, msg)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPClientSharedAcrossGoroutines(t *testing.T) {
	ep := NewEndpoint("tcp-svc")
	ep.Register("echo", func(req []byte) ([]byte, error) { return req, nil })
	srv, err := Serve(ep, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var wg sync.WaitGroup
	fail := make(chan string, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("m%d", i))
			resp, err := cli.Call("echo", msg)
			if err != nil || !bytes.Equal(resp, msg) {
				fail <- fmt.Sprintf("resp=%q err=%v", resp, err)
			}
		}(i)
	}
	wg.Wait()
	close(fail)
	for f := range fail {
		t.Fatal(f)
	}
}

func TestCallAfterClientClose(t *testing.T) {
	ep := NewEndpoint("tcp-svc")
	srv, err := Serve(ep, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cli.Close()
	if _, err := cli.Call("x", nil); err == nil {
		t.Fatal("call on closed client succeeded")
	}
}

func TestIsLocal(t *testing.T) {
	if !IsLocal("local://svc") || IsLocal("127.0.0.1:80") {
		t.Fatal("IsLocal misclassifies")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := Serve(NewEndpoint("x"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFrameLimitRejected(t *testing.T) {
	// A corrupt length prefix must not cause a giant allocation.
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(&buf); err != nil {
		t.Fatal(err)
	}
	// Forge an oversized prefix.
	bad := []byte{0xFF, 0xFF, 0xFF, 0xFF, 'x'}
	if _, err := readFrame(bytes.NewReader(bad)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestReListenReplacesEndpoint(t *testing.T) {
	reg := NewRegistry()
	a := reg.Listen("local://svc")
	a.Register("who", func([]byte) ([]byte, error) { return []byte("a"), nil })
	b := reg.Listen("local://svc")
	b.Register("who", func([]byte) ([]byte, error) { return []byte("b"), nil })
	resp, err := reg.Call("local://svc", "who", nil)
	if err != nil || string(resp) != "b" {
		t.Fatalf("resp = %q, %v (restart did not replace endpoint)", resp, err)
	}
}

func TestCallTimeout(t *testing.T) {
	// A handler that wedges long enough for the client deadline to fire.
	release := make(chan struct{})
	ep := NewEndpoint("tcp-svc")
	ep.Register("wedge", func(req []byte) ([]byte, error) {
		<-release
		return req, nil
	})
	ep.Register("echo", func(req []byte) ([]byte, error) { return req, nil })
	srv, err := Serve(ep, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(release)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetTimeout(50 * time.Millisecond)
	_, err = cli.Call("wedge", []byte("x"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// The timed-out connection is discarded; the next call redials and works.
	cli.SetTimeout(5 * time.Second)
	resp, err := cli.Call("echo", []byte("y"))
	if err != nil || string(resp) != "y" {
		t.Fatalf("post-timeout call = %q, %v", resp, err)
	}
}

func TestTimeoutDistinctFromRemoteError(t *testing.T) {
	ep := NewEndpoint("tcp-svc")
	ep.Register("fail", func(req []byte) ([]byte, error) { return nil, errors.New("handler says no") })
	srv, err := Serve(ep, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetTimeout(time.Second)
	_, err = cli.Call("fail", nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if errors.Is(err, ErrTimeout) {
		t.Fatal("a handler error must not be classified as a timeout")
	}
}
