package perfrecup

import (
	"encoding/xml"
	"fmt"
	"math"
	"strings"
	"testing"

	"taskprov/internal/core"
	"taskprov/internal/dask"
	"taskprov/internal/posixio"
	"taskprov/internal/sim"
)

// miniWorkflow: two graphs; graph 1 reads files and reduces (with one
// blocking task for warnings), graph 2 consumes graph 1's output.
type miniWorkflow struct{ files int }

func (m *miniWorkflow) Name() string { return "mini" }

func (m *miniWorkflow) Stage(env *core.Env) {
	for i := 0; i < m.files; i++ {
		env.PFS.CreateNow(fmt.Sprintf("/lus/in/f%03d", i), 4<<20)
	}
}

func (m *miniWorkflow) Run(p *sim.Proc, cl *dask.Client, env *core.Env) {
	g := dask.NewGraph(1)
	var deps []dask.TaskKey
	for i := 0; i < m.files; i++ {
		i := i
		key := dask.TaskKey(fmt.Sprintf("load-%04d", i))
		deps = append(deps, key)
		g.Add(&dask.TaskSpec{
			Key: key, OutputSize: 4 << 20,
			Run: func(ctx *dask.TaskContext) {
				f, err := ctx.Open(fmt.Sprintf("/lus/in/f%03d", i), posixio.RDONLY)
				if err != nil {
					panic(err)
				}
				f.Read(ctx.Proc(), 4<<20)
				f.Close(ctx.Proc())
				ctx.Compute(sim.Milliseconds(80))
			},
		})
	}
	g.Add(&dask.TaskSpec{
		Key: "slow-blocker-01", OutputSize: 1 << 20,
		EstDuration: sim.Seconds(8), BlocksEventLoop: true,
	})
	g.Add(&dask.TaskSpec{Key: "reduce-0000", Deps: deps, EstDuration: sim.Milliseconds(60), OutputSize: 128})
	cl.SubmitAndWait(p, g)

	g2 := dask.NewGraph(2)
	g2.AddExternal("reduce-0000")
	g2.Add(&dask.TaskSpec{
		Key: "writer-0001", Deps: []dask.TaskKey{"reduce-0000"}, OutputSize: 64,
		Run: func(ctx *dask.TaskContext) {
			f, err := ctx.Open("/lus/out/result", posixio.WRONLY|posixio.CREATE)
			if err != nil {
				panic(err)
			}
			f.Write(ctx.Proc(), 1<<20)
			f.Close(ctx.Proc())
			ctx.Compute(sim.Milliseconds(20))
		},
	})
	cl.SubmitAndWait(p, g2)
}

var cachedArt *core.RunArtifacts

func miniRun(t *testing.T) *core.RunArtifacts {
	t.Helper()
	if cachedArt != nil {
		return cachedArt
	}
	cfg := core.DefaultSessionConfig("job-mini", 11)
	cfg.Platform.NodeSpeedCV = 0
	cfg.PFS.InterferenceLoad = 0
	cfg.Dask.WorkersPerNode = 2
	cfg.Dask.ThreadsPerWorker = 2
	cfg.Dask.EventLoopMonitorThreshold = sim.Seconds(1)
	art, err := core.Run(cfg, &miniWorkflow{files: 24})
	if err != nil {
		t.Fatal(err)
	}
	cachedArt = art
	return art
}

func TestExecutionsView(t *testing.T) {
	art := miniRun(t)
	f, err := ExecutionsView(art)
	if err != nil {
		t.Fatal(err)
	}
	if f.NRows() != 27 { // 24 loads + blocker + reduce + writer
		t.Fatalf("executions = %d", f.NRows())
	}
	for _, col := range []string{"key", "prefix", "worker", "hostname", "thread_id", "start", "stop", "duration", "output_size", "graph_id"} {
		if !f.HasCol(col) {
			t.Fatalf("missing column %s", col)
		}
	}
	if u := f.UniqueStrings("prefix"); len(u) != 4 { // load, slow-blocker, reduce, writer
		t.Fatalf("prefixes = %v", u)
	}
}

func TestDXTViewAndPosixView(t *testing.T) {
	art := miniRun(t)
	dxt, err := DXTView(art)
	if err != nil {
		t.Fatal(err)
	}
	if dxt.NRows() != 25 { // 24 reads + 1 write
		t.Fatalf("dxt rows = %d", dxt.NRows())
	}
	posix, err := PosixView(art)
	if err != nil {
		t.Fatal(err)
	}
	if posix.NRows() != 25 { // 25 file records across workers
		t.Fatalf("posix rows = %d", posix.NRows())
	}
}

func TestAttributeIOToTasks(t *testing.T) {
	art := miniRun(t)
	att, err := AttributeIOToTasks(art)
	if err != nil {
		t.Fatal(err)
	}
	matched := 0
	keyCol := att.Col("key")
	opCol := att.Col("op")
	pathCol := att.Col("path")
	for i := 0; i < att.NRows(); i++ {
		if keyCol.Str(i) == "" {
			continue
		}
		matched++
		// Reads must be attributed to load tasks, the write to the writer.
		if opCol.Str(i) == "read" && !strings.HasPrefix(keyCol.Str(i), "load-") {
			t.Fatalf("read of %s attributed to %s", pathCol.Str(i), keyCol.Str(i))
		}
		if opCol.Str(i) == "write" && keyCol.Str(i) != "writer-0001" {
			t.Fatalf("write attributed to %s", keyCol.Str(i))
		}
	}
	if matched != att.NRows() {
		t.Fatalf("only %d/%d I/O ops attributed", matched, att.NRows())
	}
}

func TestTaskIOSummary(t *testing.T) {
	art := miniRun(t)
	sum, err := TaskIOSummary(art)
	if err != nil {
		t.Fatal(err)
	}
	if sum.NRows() != 27 {
		t.Fatalf("rows = %d", sum.NRows())
	}
	keyCol := sum.Col("key")
	opsCol := sum.Col("io_ops")
	bytesCol := sum.Col("io_bytes")
	for i := 0; i < sum.NRows(); i++ {
		k := keyCol.Str(i)
		switch {
		case strings.HasPrefix(k, "load-"):
			if opsCol.Int(i) != 1 || bytesCol.Float(i) != 4<<20 {
				t.Fatalf("load io = %d ops %v bytes", opsCol.Int(i), bytesCol.Float(i))
			}
		case k == "reduce-0000" || k == "slow-blocker-01":
			if opsCol.Int(i) != 0 {
				t.Fatalf("%s has io ops %d", k, opsCol.Int(i))
			}
		}
	}
}

func TestPhases(t *testing.T) {
	art := miniRun(t)
	b, err := Phases(art)
	if err != nil {
		t.Fatal(err)
	}
	if b.Workflow != "mini" || b.TotalSeconds <= 0 {
		t.Fatalf("breakdown = %+v", b)
	}
	if b.IOSeconds <= 0 || b.ComputeSeconds <= 0 {
		t.Fatalf("phases empty: %+v", b)
	}
	if b.IOOps != 25 || b.Tasks != 27 {
		t.Fatalf("counts: %+v", b)
	}
	// Coordination overhead means total wall > any single phase here.
	if b.TotalSeconds < b.IOSeconds/4 {
		t.Fatalf("total %.2f implausible vs io %.2f", b.TotalSeconds, b.IOSeconds)
	}
}

func TestAggregatePhases(t *testing.T) {
	runs := []PhaseBreakdown{
		{Workflow: "x", IOSeconds: 1, CommSeconds: 2, ComputeSeconds: 8, TotalSeconds: 10},
		{Workflow: "x", IOSeconds: 2, CommSeconds: 2, ComputeSeconds: 10, TotalSeconds: 12},
	}
	s := AggregatePhases(runs)
	if s.Runs != 2 || s.MeanIO != 1.5 || s.MeanTotal != 11 {
		t.Fatalf("stats = %+v", s)
	}
	if s.NormTotal != 1.0 { // total is the max in both runs
		t.Fatalf("norm total = %v", s.NormTotal)
	}
	if s.StdIO == 0 {
		t.Fatal("std missing")
	}
	if AggregatePhases(nil).Runs != 0 {
		t.Fatal("empty aggregate wrong")
	}
}

func TestWarningHistogramAndRender(t *testing.T) {
	art := miniRun(t)
	h, err := WarningHistogram(art, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	loop, ok := h[string(dask.WarnEventLoop)]
	if !ok || loop.Total() == 0 {
		t.Fatalf("no event loop warnings: %v", h)
	}
	out := RenderWarningHistogram(h, 2.0)
	if !strings.Contains(out, "unresponsive_event_loop") {
		t.Fatalf("render = %q", out)
	}
}

func TestIOTimelineRender(t *testing.T) {
	art := miniRun(t)
	out, err := IOTimeline(art, 40, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tid") || !strings.Contains(out, "R") {
		t.Fatalf("timeline = %q", out)
	}
	// One line per thread that did I/O.
	lines := strings.Count(out, "tid ")
	if lines == 0 || lines > 8 {
		t.Fatalf("timeline threads = %d", lines)
	}
}

func TestCommScatter(t *testing.T) {
	art := miniRun(t)
	buckets, err := CommScatter(art)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) == 0 {
		t.Fatal("no comm buckets")
	}
	total := 0
	for _, b := range buckets {
		total += b.Count
		if b.MeanSec <= 0 {
			t.Fatalf("bucket without duration: %+v", b)
		}
	}
	comms, _ := art.TotalCommunications()
	if int64(total) != comms {
		t.Fatalf("bucket total %d != comms %d", total, comms)
	}
	out := RenderCommScatter(buckets)
	if !strings.Contains(out, "inter/intra") {
		t.Fatalf("render = %q", out)
	}
}

func TestParallelCoords(t *testing.T) {
	art := miniRun(t)
	pc, err := ParallelCoords(art)
	if err != nil {
		t.Fatal(err)
	}
	// Sorted by duration descending; the blocking 8s task must be first.
	if pc.Col("prefix").Str(0) != "slow-blocker" {
		t.Fatalf("longest task = %s", pc.Col("prefix").Str(0))
	}
	out := RenderParallelCoords(pc, 5)
	if !strings.Contains(out, "slow-blocker") || !strings.Contains(out, "per-category") {
		t.Fatalf("render = %q", out)
	}
}

func TestLineage(t *testing.T) {
	art := miniRun(t)
	l, err := BuildLineage(art, "load-0003")
	if err != nil {
		t.Fatal(err)
	}
	if l.GraphID != 1 || l.Worker == "" || l.ThreadID == 0 {
		t.Fatalf("lineage = %+v", l)
	}
	if len(l.States) < 4 {
		t.Fatalf("states = %+v", l.States)
	}
	if len(l.IO) != 1 || l.IO[0].Op != "read" || l.IO[0].Bytes != 4<<20 {
		t.Fatalf("io = %+v", l.IO)
	}
	out := l.Render()
	for _, want := range []string{"task load-0003", "states:", "I/O records (1):", "PFS /lus/grand"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// The reducer's lineage shows dependencies and (likely) movements.
	lr, err := BuildLineage(art, "reduce-0000")
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.Deps) != 24 {
		t.Fatalf("reduce deps = %d", len(lr.Deps))
	}
	if _, err := BuildLineage(art, "ghost-key"); err == nil {
		t.Fatal("lineage for unknown key succeeded")
	}
}

func TestTableIRowRender(t *testing.T) {
	art := miniRun(t)
	row, err := RenderTableIRow(art)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(row, "mini") || !strings.Contains(row, "tasks=27") {
		t.Fatalf("row = %q", row)
	}
}

func TestStatsFunctions(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Mean(xs) != 3 {
		t.Fatal("mean")
	}
	if math.Abs(Std(xs)-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v", Std(xs))
	}
	if math.Abs(CV(xs)-math.Sqrt(2.5)/3) > 1e-12 {
		t.Fatal("cv")
	}
	lo, hi := MinMax(xs)
	if lo != 1 || hi != 5 {
		t.Fatal("minmax")
	}
	if Percentile(xs, 50) != 3 || Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("percentile")
	}
	if p := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(p-1) > 1e-12 {
		t.Fatalf("pearson = %v", p)
	}
	if p := Pearson([]float64{1, 2, 3}, []float64{6, 4, 2}); math.Abs(p+1) > 1e-12 {
		t.Fatalf("pearson = %v", p)
	}
	// Spearman is rank-based: monotonic nonlinear = 1.
	if s := Spearman([]float64{1, 2, 3, 4}, []float64{1, 10, 100, 1000}); math.Abs(s-1) > 1e-12 {
		t.Fatalf("spearman = %v", s)
	}
	h := NewHistogram([]float64{0.5, 1.5, 2.5, 99}, 0, 3, 3)
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 2 {
		t.Fatalf("hist = %v", h.Counts)
	}
	if h.Total() != 4 || len(h.BinEdges()) != 3 {
		t.Fatal("hist accessors")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean")
	}
}

func TestHeartbeatsAndTransitionsViews(t *testing.T) {
	art := miniRun(t)
	hb, err := HeartbeatsView(art)
	if err != nil || hb.NRows() == 0 {
		t.Fatalf("heartbeats = %d, %v", hb.NRows(), err)
	}
	tr, err := TransitionsView(art)
	if err != nil || tr.NRows() == 0 {
		t.Fatalf("transitions = %d, %v", tr.NRows(), err)
	}
	tm, err := TaskMetaView(art)
	if err != nil || tm.NRows() != 27 {
		t.Fatalf("task meta = %d, %v", tm.NRows(), err)
	}
}

func TestWindowStats(t *testing.T) {
	art := miniRun(t)
	full, err := Window(art, 0, art.Meta.WallSeconds+10)
	if err != nil {
		t.Fatal(err)
	}
	if full.TasksActive != 27 || full.TasksStarted != 27 || full.TasksFinished != 27 {
		t.Fatalf("full window tasks = %+v", full)
	}
	if full.IOOps != 25 {
		t.Fatalf("full window io = %d", full.IOOps)
	}
	if full.BusiestPrefix == "" {
		t.Fatal("busiest prefix empty")
	}
	// Empty window has nothing.
	empty, err := Window(art, art.Meta.WallSeconds+100, art.Meta.WallSeconds+200)
	if err != nil {
		t.Fatal(err)
	}
	if empty.TasksActive != 0 || empty.IOOps != 0 || empty.Transfers != 0 {
		t.Fatalf("empty window = %+v", empty)
	}
	// Windows partition activity sensibly: two halves together cover at
	// least the full compute time.
	mid := full.To / 2
	h1, _ := Window(art, 0, mid)
	h2, _ := Window(art, mid, full.To)
	sum := h1.ComputeSeconds + h2.ComputeSeconds
	if sum < full.ComputeSeconds-1e-6 || sum > full.ComputeSeconds+1e-6 {
		t.Fatalf("window halves: %.3f + %.3f != %.3f", h1.ComputeSeconds, h2.ComputeSeconds, full.ComputeSeconds)
	}
	out := full.Render()
	if !strings.Contains(out, "tasks: 27 active") {
		t.Fatalf("render = %q", out)
	}
}

func TestCompareSchedules(t *testing.T) {
	art := miniRun(t)
	// Same run compared with itself: perfect agreement.
	self, err := CompareSchedules(art, art)
	if err != nil {
		t.Fatal(err)
	}
	if self.CommonTasks != 27 || self.SameWorker != 1.0 || self.OrderAgreement < 0.999 {
		t.Fatalf("self comparison = %+v", self)
	}
	if self.WallDeltaSec != 0 {
		t.Fatalf("self wall delta = %v", self.WallDeltaSec)
	}
	// A different seed: same tasks, (very likely) different placement.
	cfg := core.DefaultSessionConfig("job-mini-2", 1234)
	cfg.Platform.NodeSpeedCV = 0
	cfg.PFS.InterferenceLoad = 0
	cfg.Dask.WorkersPerNode = 2
	cfg.Dask.ThreadsPerWorker = 2
	other, err := core.Run(cfg, &miniWorkflow{files: 24})
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := CompareSchedules(art, other)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.CommonTasks != 27 {
		t.Fatalf("common tasks = %d", cmp.CommonTasks)
	}
	if cmp.SameWorker >= 1.0 {
		t.Fatal("different seeds produced identical placement (suspicious)")
	}
	out := cmp.Render()
	if !strings.Contains(out, "common tasks: 27") {
		t.Fatalf("render = %q", out)
	}
}

func wellFormedSVG(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("svg not well-formed: %v", err)
		}
	}
}

func TestSVGRenderers(t *testing.T) {
	art := miniRun(t)

	b, err := Phases(art)
	if err != nil {
		t.Fatal(err)
	}
	stats := []PhaseStats{AggregatePhases([]PhaseBreakdown{b, b})}
	svg := PhaseBarsSVG(stats)
	wellFormedSVG(t, svg)
	if !strings.Contains(svg, "mini") || strings.Count(svg, "<rect") < 5 {
		t.Fatal("phase bars svg missing content")
	}

	h, err := WarningHistogram(art, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	svg = WarningHistogramSVG(h, 2.0)
	wellFormedSVG(t, svg)
	if !strings.Contains(svg, "unresponsive_event_loop") {
		t.Fatal("warning svg missing series")
	}

	svg, err = IOTimelineSVG(art)
	if err != nil {
		t.Fatal(err)
	}
	wellFormedSVG(t, svg)
	if strings.Count(svg, "<rect") < 25 { // one per I/O op + background
		t.Fatalf("timeline svg has %d rects", strings.Count(svg, "<rect"))
	}

	svg, err = CommScatterSVG(art)
	if err != nil {
		t.Fatal(err)
	}
	wellFormedSVG(t, svg)
	comms, _ := art.TotalCommunications()
	if int64(strings.Count(svg, "<circle")) != comms {
		t.Fatalf("scatter svg has %d points, want %d", strings.Count(svg, "<circle"), comms)
	}
}

func TestSVGEmptyInputs(t *testing.T) {
	wellFormedSVG(t, PhaseBarsSVG(nil))
	wellFormedSVG(t, WarningHistogramSVG(map[string]Histogram{}, 10))
}

func TestCorrelate(t *testing.T) {
	art := miniRun(t)
	rep, err := Correlate(art, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	// The 8s blocking task dominates long-task time; warnings occur during
	// it, so the correlation must be strongly positive.
	if rep.WarningsVsLongTasks < 0.5 {
		t.Fatalf("warnings vs long tasks = %.3f, want strongly positive", rep.WarningsVsLongTasks)
	}
	if len(rep.LongTaskPrefixes) == 0 || rep.LongTaskPrefixes[0].Prefix != "slow-blocker" {
		t.Fatalf("long task prefixes = %+v", rep.LongTaskPrefixes)
	}
	if rep.LongTaskPrefixes[0].Share <= 0.5 {
		t.Fatalf("blocker share = %v", rep.LongTaskPrefixes[0].Share)
	}
	out := rep.Render()
	if !strings.Contains(out, "slow-blocker") || !strings.Contains(out, "pearson") {
		t.Fatalf("render = %q", out)
	}
}

func TestWorkerUtilizationView(t *testing.T) {
	art := miniRun(t)
	u, err := WorkerUtilizationView(art)
	if err != nil {
		t.Fatal(err)
	}
	if u.NRows() != 4 { // 2 nodes x 2 workers
		t.Fatalf("workers = %d", u.NRows())
	}
	for i := 0; i < u.NRows(); i++ {
		if u.Col("samples").Int(i) == 0 {
			t.Fatalf("worker %s has no heartbeat samples", u.Col("worker").Str(i))
		}
		if u.Col("peak_memory").Float(i) < u.Col("mean_memory").Float(i) {
			t.Fatal("peak < mean memory")
		}
	}
}
