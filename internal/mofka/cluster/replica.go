package cluster

import (
	"taskprov/internal/mochi/mercury"
	"taskprov/internal/mofka"
)

// replica is one node's copy of the event store, local or remote. The
// replication layer drives every member through this interface, so a
// follower reached over Mercury RPC behaves identically to an in-process
// broker.
type replica interface {
	ensureTopic(cfg mofka.TopicConfig) error
	append(topic string, part int, metas, datas [][]byte) error
	read(topic string, part int, from uint64, max int, withData bool) ([]mofka.Event, error)
	length(topic string, part int) (uint64, error)
	commitCursor(consumer, topic string, part int, next uint64) error
	loadCursor(consumer, topic string, part int) (uint64, error)
	ping() error
	close() error
}

// localReplica adapts an in-process broker.
type localReplica struct{ b *mofka.Broker }

func (l localReplica) ensureTopic(cfg mofka.TopicConfig) error {
	_, err := l.b.OpenOrCreateTopic(cfg)
	return err
}

func (l localReplica) partition(topic string, part int) (*mofka.Partition, error) {
	t, err := l.b.OpenTopic(topic)
	if err != nil {
		return nil, err
	}
	return t.Partition(part)
}

func (l localReplica) append(topic string, part int, metas, datas [][]byte) error {
	p, err := l.partition(topic, part)
	if err != nil {
		return err
	}
	return p.Append(metas, datas)
}

func (l localReplica) read(topic string, part int, from uint64, max int, withData bool) ([]mofka.Event, error) {
	p, err := l.partition(topic, part)
	if err != nil {
		return nil, err
	}
	return p.ReadFrom(from, max, withData)
}

// truncate drops events with offset >= n. Only the restart path needs it —
// RestartBroker rejects remote members — so it lives on localReplica rather
// than the replica interface.
func (l localReplica) truncate(topic string, part int, n uint64) error {
	p, err := l.partition(topic, part)
	if err != nil {
		return err
	}
	return p.TruncateTo(n)
}

func (l localReplica) length(topic string, part int) (uint64, error) {
	p, err := l.partition(topic, part)
	if err != nil {
		return 0, err
	}
	return p.Length(), nil
}

func (l localReplica) commitCursor(consumer, topic string, part int, next uint64) error {
	return l.b.CommitCursor(consumer, topic, part, next)
}

func (l localReplica) loadCursor(consumer, topic string, part int) (uint64, error) {
	return l.b.LoadCursor(consumer, topic, part), nil
}

func (l localReplica) ping() error {
	if l.b.IsClosed() {
		return mofka.ErrClosed
	}
	return nil
}

func (l localReplica) close() error { return l.b.Close() }

// remoteReplica adapts a broker reached over Mercury — the member a second
// mofkad process contributes when it joins with -join.
type remoteReplica struct {
	addr   string
	client *mercury.Client
	remote *mofka.Remote
}

// dialReplica connects to a remote broker member.
func dialReplica(addr string) (*remoteReplica, error) {
	cl, err := mercury.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &remoteReplica{addr: addr, client: cl, remote: mofka.NewRemote(cl)}, nil
}

func (r *remoteReplica) ensureTopic(cfg mofka.TopicConfig) error {
	// Validators are process-local functions and do not serialize; the
	// leader validates before replicating, so followers can skip it.
	cfg.Validator = nil
	return r.remote.CreateTopic(cfg)
}

func (r *remoteReplica) append(topic string, part int, metas, datas [][]byte) error {
	return r.remote.PushBatch(topic, part, metas, datas)
}

func (r *remoteReplica) read(topic string, part int, from uint64, max int, withData bool) ([]mofka.Event, error) {
	return r.remote.Pull(topic, part, from, max, withData)
}

func (r *remoteReplica) length(topic string, part int) (uint64, error) {
	return r.remote.PartitionLength(topic, part)
}

func (r *remoteReplica) commitCursor(consumer, topic string, part int, next uint64) error {
	return r.remote.Commit(consumer, topic, part, next)
}

func (r *remoteReplica) loadCursor(consumer, topic string, part int) (uint64, error) {
	return r.remote.Cursor(consumer, topic, part)
}

func (r *remoteReplica) ping() error { return r.remote.Ping() }

func (r *remoteReplica) close() error { return r.client.Close() }
