package perfrecup

import (
	"fmt"
	"os"
	"path/filepath"

	"taskprov/internal/core"
	"taskprov/internal/darshan"
	"taskprov/internal/mofka"
	"taskprov/internal/mofka/cluster"
	"taskprov/internal/sim"
)

// LoadEventLog builds run artifacts directly from a durable Mofka data
// directory (a broker started with -data-dir, or a run with
// SessionConfig.MofkaDataDir set) — no live broker and no JSONL export
// needed. The on-disk segments replay into an in-memory broker opened
// read-only, so every view (ExecutionsView, Phases, ...) works exactly as it
// does against a live broker, and the directory on disk is never modified —
// safe to point at the log of a crashed run.
//
// Alongside the topics/ tree the loader picks up what the directory offers:
//
//	metadata.json       the provenance chart (written by instrumented runs)
//	darshan/*.darshan   per-worker I/O logs, if collected into the same dir
//
// Both are optional; views over missing sources simply come back empty.
//
// Sharded cluster directories (cluster.json + node-NN/ broker dirs, written
// by runs with SessionConfig.ClusterBrokers set) load the same way: every
// replica's log is opened and merged — the longest replica of each
// partition wins, which by the quorum protocol's prefix-consistency is a
// superset of every acknowledged event.
func LoadEventLog(dataDir string) (*core.RunArtifacts, error) {
	var broker *mofka.Broker
	var err error
	if cluster.IsClusterDir(dataDir) {
		broker, err = cluster.OpenPostMortem(dataDir)
	} else {
		broker, err = mofka.OpenPostMortem(dataDir)
	}
	if err != nil {
		return nil, fmt.Errorf("perfrecup: open event log %s: %w", dataDir, err)
	}
	art := &core.RunArtifacts{Broker: broker}

	if metaBytes, err := os.ReadFile(filepath.Join(dataDir, "metadata.json")); err == nil {
		meta, err := core.DecodeMetadata(metaBytes)
		if err != nil {
			return nil, fmt.Errorf("perfrecup: %s/metadata.json: %w", dataDir, err)
		}
		art.Meta = meta
		art.WallTime = sim.Seconds(meta.WallSeconds)
	}

	dlogs, err := filepath.Glob(filepath.Join(dataDir, "darshan", "*.darshan"))
	if err != nil {
		return nil, err
	}
	for _, p := range dlogs {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		l, err := darshan.ReadLog(f)
		_ = f.Close()
		if err != nil {
			return nil, fmt.Errorf("perfrecup: %s: %w", p, err)
		}
		art.DarshanLogs = append(art.DarshanLogs, l)
	}
	return art, nil
}
