package perfrecup

import (
	"fmt"
	"sort"
	"strings"

	"taskprov/internal/core"
	"taskprov/internal/perfrecup/frame"
	"taskprov/internal/whatif"
)

// The critical-path and what-if views sit on internal/whatif's calibrated
// model: perfrecup extracts the model from a run's artifacts (live broker,
// WAL replay, or post-mortem load — the extractor is load-path agnostic) and
// renders the chain, the bottleneck attribution, and scenario predictions.
// Every renderer here is deterministic: identical artifacts produce
// byte-identical output regardless of which loader produced them.

// CritPathView tabulates the whole-run critical path: one row per chain
// step in time order, with the step's execution decomposition, the waits
// that preceded it, what released it, and its structural slack.
func CritPathView(art *core.RunArtifacts) (*frame.Frame, error) {
	model, err := art.ExtractModel()
	if err != nil {
		return nil, err
	}
	cp := model.CriticalPath()
	slack := model.Slack()
	n := len(cp.Tasks)
	step := make([]int64, n)
	key := make([]string, n)
	prefix := make([]string, n)
	worker := make([]string, n)
	reason := make([]string, n)
	start := make([]float64, n)
	stop := make([]float64, n)
	compute := make([]float64, n)
	ioSec := make([]float64, n)
	proxy := make([]float64, n)
	waitXfer := make([]float64, n)
	waitSched := make([]float64, n)
	slk := make([]float64, n)
	for i, t := range cp.Tasks {
		step[i] = int64(i + 1)
		key[i] = t.Key
		prefix[i] = t.Prefix
		worker[i] = t.Worker
		reason[i] = t.Reason
		start[i] = t.Start
		stop[i] = t.Stop
		compute[i] = t.ComputeSeconds
		ioSec[i] = t.IOSeconds
		proxy[i] = t.ProxySeconds
		waitXfer[i] = t.WaitTransferSeconds
		waitSched[i] = t.WaitSchedulerSeconds
		slk[i] = slack[t.Key]
	}
	return frame.New(
		frame.Ints("step", step...),
		frame.Strings("key", key...),
		frame.Strings("prefix", prefix...),
		frame.Strings("worker", worker...),
		frame.Strings("reason", reason...),
		frame.Floats("start", start...),
		frame.Floats("stop", stop...),
		frame.Floats("compute", compute...),
		frame.Floats("io", ioSec...),
		frame.Floats("proxy", proxy...),
		frame.Floats("wait_transfer", waitXfer...),
		frame.Floats("wait_scheduler", waitSched...),
		frame.Floats("slack", slk...),
	)
}

// RenderCritPath renders the critical path as text: the attribution table
// (which must cover >= 95% of the makespan on a consistent stream — it is
// 100% by construction), the top bottleneck steps, and the chain itself.
func RenderCritPath(art *core.RunArtifacts) (string, error) {
	model, err := art.ExtractModel()
	if err != nil {
		return "", err
	}
	cp := model.CriticalPath()
	var b strings.Builder
	fmt.Fprintf(&b, "critical path — %s (seed %d): makespan %.3fs, %d chain steps, coverage %.1f%%\n",
		model.Workflow, model.Seed, cp.MakespanSeconds, len(cp.Tasks), 100*cp.Coverage)

	fmt.Fprintf(&b, "attribution:\n")
	for _, cat := range whatif.Categories() {
		v := cp.Categories[cat]
		pct := 0.0
		if cp.MakespanSeconds > 0 {
			pct = 100 * v / cp.MakespanSeconds
		}
		fmt.Fprintf(&b, "  %-10s %12.3fs %6.1f%%\n", cat, v, pct)
	}

	// Top bottleneck steps: the chain entries that contributed the most
	// wall-clock (execution plus preceding waits), largest first.
	type weighted struct {
		i int
		w float64
	}
	ws := make([]weighted, len(cp.Tasks))
	for i, t := range cp.Tasks {
		ws[i] = weighted{i, t.ComputeSeconds + t.IOSeconds + t.ProxySeconds +
			t.WaitTransferSeconds + t.WaitSchedulerSeconds}
	}
	sort.SliceStable(ws, func(a, b int) bool { return ws[a].w > ws[b].w })
	top := 5
	if top > len(ws) {
		top = len(ws)
	}
	if top > 0 {
		fmt.Fprintf(&b, "top steps:\n")
		for _, w := range ws[:top] {
			t := cp.Tasks[w.i]
			fmt.Fprintf(&b, "  %8.3fs  %-9s %s @ %s\n", w.w, t.Reason, t.Key, t.Worker)
		}
	}

	fmt.Fprintf(&b, "chain (time order):\n")
	fmt.Fprintf(&b, "step  reason   start        stop          sched      xfer   compute        io     proxy  key @ worker\n")
	for i, t := range cp.Tasks {
		fmt.Fprintf(&b, "%4d  %-7s %9.3f %11.3f %11.3f %9.3f %9.3f %9.3f %9.3f  %s @ %s\n",
			i+1, t.Reason, t.Start, t.Stop,
			t.WaitSchedulerSeconds, t.WaitTransferSeconds,
			t.ComputeSeconds, t.IOSeconds, t.ProxySeconds, t.Key, t.Worker)
	}
	return b.String(), nil
}

// RenderWhatIf renders replay predictions for a list of scenarios, one row
// each, against the measured baseline.
func RenderWhatIf(model *whatif.Model, results []*whatif.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "what-if replay — %s (seed %d): measured makespan %.3fs, %d tasks\n",
		model.Workflow, model.Seed, model.MakespanSeconds, len(model.Tasks))
	fmt.Fprintf(&b, "%-44s %-9s %12s %9s %8s %8s\n",
		"scenario", "mode", "predicted", "delta", "util", "workers")
	for _, r := range results {
		fmt.Fprintf(&b, "%-44s %-9s %11.3fs %+8.1f%% %7.1f%% %5dx%d\n",
			r.Scenario, r.Mode, r.PredictedMakespanSeconds,
			100*r.DeltaFraction, 100*r.PredictedUtilization, r.Workers, r.Threads)
	}
	return b.String()
}

// CritPathSVG renders the task timeline (one band per worker thread) with
// the critical path overlaid: non-critical tasks in gray, chain tasks
// colored, and connector lines tracing the chain across lanes.
func CritPathSVG(art *core.RunArtifacts) (string, error) {
	model, err := art.ExtractModel()
	if err != nil {
		return "", err
	}
	cp := model.CriticalPath()

	const W, rowH, mL, mT = 900.0, 14.0, 150.0, 60.0
	// Lanes: (worker, thread) sorted by worker then thread.
	type laneID struct {
		worker string
		tid    uint64
	}
	laneRow := map[laneID]int{}
	var laneOrder []laneID
	for i := range model.Tasks {
		t := &model.Tasks[i]
		id := laneID{t.Worker, t.ThreadID}
		if _, ok := laneRow[id]; !ok {
			laneRow[id] = 0
			laneOrder = append(laneOrder, id)
		}
	}
	sort.Slice(laneOrder, func(a, b int) bool {
		if laneOrder[a].worker != laneOrder[b].worker {
			return laneOrder[a].worker < laneOrder[b].worker
		}
		return laneOrder[a].tid < laneOrder[b].tid
	})
	for i, id := range laneOrder {
		laneRow[id] = i
	}

	H := mT + rowH*float64(len(laneOrder)) + 40
	c := newCanvas(W, H)
	c.text(mL, 24, 16, fmt.Sprintf("Task timeline with critical path — %s", model.Workflow))
	c.text(mL, 42, 11, fmt.Sprintf("makespan %.1fs, %d chain steps, dominant: %s",
		cp.MakespanSeconds, len(cp.Tasks), cp.Summarize().DominantCategory))

	span := model.EndSeconds - model.StartSeconds
	if span <= 0 {
		span = 1e-9
	}
	plotW := W - mL - 20
	x := func(t float64) float64 { return mL + (t-model.StartSeconds)/span*plotW }

	onChain := make(map[string]int, len(cp.Tasks))
	for i, t := range cp.Tasks {
		onChain[t.Key] = i
	}

	// Non-critical tasks first (gray), then the chain on top (red) with its
	// connectors, so the path reads as one line through the schedule.
	rowOf := func(t *whatif.Task) float64 {
		return mT + float64(laneRow[laneID{t.Worker, t.ThreadID}])*rowH
	}
	for i := range model.Tasks {
		t := &model.Tasks[i]
		if _, ok := onChain[t.Key]; ok {
			continue
		}
		x0, x1 := x(t.Start), x(t.Stop)
		if x1-x0 < 1 {
			x1 = x0 + 1
		}
		c.rect(x0, rowOf(t)+2, x1-x0, rowH-4, "#bbbbbb", 0.6)
	}
	var px, py float64
	for i, ct := range cp.Tasks {
		ti, ok := model.Index[ct.Key]
		if !ok {
			continue
		}
		t := &model.Tasks[ti]
		x0, x1 := x(t.Start), x(t.Stop)
		if x1-x0 < 1 {
			x1 = x0 + 1
		}
		y := rowOf(t)
		cy := y + rowH/2
		if i > 0 {
			c.line(px, py, x0, cy, "#d62728", 1.4)
		}
		c.rect(x0, y+2, x1-x0, rowH-4, "#d62728", 0.95)
		px, py = x1, cy
	}
	for i, id := range laneOrder {
		c.text(8, mT+float64(i)*rowH+rowH-3, 9, fmt.Sprintf("%s t%d", id.worker, id.tid))
	}
	c.line(mL, mT+rowH*float64(len(laneOrder)), mL+plotW, mT+rowH*float64(len(laneOrder)), "#000000", 1)
	c.text(mL, H-8, 10, "0s")
	c.text(mL+plotW-60, H-8, 10, fmt.Sprintf("%.0fs", span))
	c.rect(mL+200, H-18, 10, 10, "#d62728", 0.95)
	c.text(mL+214, H-9, 10, "critical path")
	c.rect(mL+300, H-18, 10, 10, "#bbbbbb", 0.6)
	c.text(mL+314, H-9, 10, "other tasks")
	return c.String(), nil
}
