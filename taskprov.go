// Package taskprov is the public facade of the characterization framework:
// a Go reproduction of "Performance Characterization and Provenance of
// Distributed Task-based Workflows on HPC Platforms" (SC 2024).
//
// The typical flow mirrors the paper's architecture — run an instrumented
// workflow (WMS plugins streaming task provenance through Mofka, Darshan
// collecting I/O with pthread IDs), persist the artifacts, and analyze them
// with PERFRECUP:
//
//	wf, _ := taskprov.NewWorkflow("xgboost")
//	cfg := taskprov.DefaultSession("xgboost", "job-001", 1)
//	art, err := taskprov.Run(cfg, wf)
//	...
//	art.WriteDir("runs/job-001")
//	pc, _ := taskprov.ParallelCoords(art)       // Fig. 6 view
//	lin, _ := taskprov.Lineage(art, taskKey)    // Fig. 8 summary
//
// Custom workflows implement the Workflow interface and build task graphs
// with the dask package's Graph/TaskSpec types; see examples/quickstart.
// The underlying subsystems (discrete-event kernel, platform and PFS
// models, the Dask-model WMS, Darshan, Mofka on its Mochi substrate, and
// the frame dataframe library) live under internal/ and are documented
// there.
package taskprov

import (
	"taskprov/internal/core"
	"taskprov/internal/live"
	"taskprov/internal/perfrecup"
	"taskprov/internal/perfrecup/frame"
	"taskprov/internal/whatif"
	"taskprov/internal/workloads"
)

// Core run orchestration (see internal/core).
type (
	// SessionConfig describes one instrumented run: platform, storage, WMS
	// configuration, and instrumentation knobs.
	SessionConfig = core.SessionConfig
	// Workflow is implemented by workload generators: Stage places input
	// data on the PFS, Run drives the client program.
	Workflow = core.Workflow
	// Env exposes the run's substrate (kernel, platform, PFS, cluster) to
	// workflows.
	Env = core.Env
	// RunArtifacts is everything a run leaves behind: Mofka event topics,
	// per-worker Darshan logs, and the provenance-chart metadata.
	RunArtifacts = core.RunArtifacts
	// RunMetadata is the serialized provenance chart (Fig. 1 layers).
	RunMetadata = core.RunMetadata
)

// Run executes a workflow under full instrumentation.
func Run(cfg SessionConfig, wf Workflow) (*RunArtifacts, error) { return core.Run(cfg, wf) }

// LoadRun reads artifacts previously persisted with RunArtifacts.WriteDir.
func LoadRun(dir string) (*RunArtifacts, error) { return core.LoadDir(dir) }

// DefaultSessionConfig returns the paper's session setup (Polaris-like
// platform, Lustre-like storage, 2 nodes x 4 workers x 8 threads, DXT on).
func DefaultSessionConfig(jobID string, seed uint64) SessionConfig {
	return core.DefaultSessionConfig(jobID, seed)
}

// Paper workloads (see internal/workloads).

// NewWorkflow returns one of the paper's calibrated evaluation workflows:
// "imageprocessing", "resnet152", or "xgboost".
func NewWorkflow(name string) (Workflow, error) { return workloads.New(name) }

// WorkflowNames lists the available paper workflows.
func WorkflowNames() []string { return workloads.Names() }

// DefaultSession returns the paper-equivalent session configuration for a
// named workflow (including its instrumentation quirks, e.g. ResNet152's
// overflowing DXT buffer).
func DefaultSession(workflow, jobID string, seed uint64) SessionConfig {
	return workloads.DefaultSession(workflow, jobID, seed)
}

// PERFRECUP analyses (see internal/perfrecup).
type (
	// PhaseBreakdown is one run's I/O / communication / computation / total
	// decomposition (Fig. 3).
	PhaseBreakdown = perfrecup.PhaseBreakdown
	// PhaseStats aggregates breakdowns across runs with variability.
	PhaseStats = perfrecup.PhaseStats
	// CommBucket summarizes transfers by size bucket (Fig. 5).
	CommBucket = perfrecup.CommBucket
	// TaskLineage is the full provenance of one task (Fig. 8).
	TaskLineage = perfrecup.Lineage
	// WindowStats zooms into a time period of a run (§IV-D).
	WindowStats = perfrecup.WindowStats
	// ScheduleComparison contrasts the scheduling of two runs (§IV-D).
	ScheduleComparison = perfrecup.ScheduleComparison
	// CorrelationReport quantifies warning/long-task and duration/size
	// relationships (§IV-D3).
	CorrelationReport = perfrecup.CorrelationReport
)

// Phases computes a run's Fig. 3 breakdown.
func Phases(art *RunArtifacts) (PhaseBreakdown, error) { return perfrecup.Phases(art) }

// AggregatePhases summarizes per-run breakdowns across a run set.
func AggregatePhases(runs []PhaseBreakdown) PhaseStats { return perfrecup.AggregatePhases(runs) }

// IOTimeline renders the Fig. 4 per-thread I/O timeline as text.
func IOTimeline(art *RunArtifacts, bins int, smallCutoff int64) (string, error) {
	return perfrecup.IOTimeline(art, bins, smallCutoff)
}

// CommScatter computes the Fig. 5 communication-vs-size view.
func CommScatter(art *RunArtifacts) ([]CommBucket, error) { return perfrecup.CommScatter(art) }

// ParallelCoords computes the Fig. 6 task view as a dataframe sorted by
// duration.
func ParallelCoords(art *RunArtifacts) (Frame, error) { return perfrecup.ParallelCoords(art) }

// WarningHistogram computes the Fig. 7 warning distributions.
func WarningHistogram(art *RunArtifacts, binSeconds float64) (map[string]perfrecup.Histogram, error) {
	return perfrecup.WarningHistogram(art, binSeconds)
}

// Lineage assembles the Fig. 8 provenance summary of one task key.
func Lineage(art *RunArtifacts, key string) (*TaskLineage, error) {
	return perfrecup.BuildLineage(art, key)
}

// Window summarizes all activity within [from, to) seconds of a run.
func Window(art *RunArtifacts, from, to float64) (WindowStats, error) {
	return perfrecup.Window(art, from, to)
}

// CompareSchedules contrasts two runs' task placement and ordering.
func CompareSchedules(a, b *RunArtifacts) (ScheduleComparison, error) {
	return perfrecup.CompareSchedules(a, b)
}

// Correlate computes the §IV-D3 correlation report with the given time-bin
// width.
func Correlate(art *RunArtifacts, binSeconds float64) (CorrelationReport, error) {
	return perfrecup.Correlate(art, binSeconds)
}

// AttributeIOToTasks joins every Darshan DXT segment to the task that
// issued it on (hostname, pthread ID, time window) — the paper's central
// fusion (§III-E3).
func AttributeIOToTasks(art *RunArtifacts) (Frame, error) {
	return perfrecup.AttributeIOToTasks(art)
}

// Frame is the uniform tabular representation all views share (see
// internal/perfrecup/frame for its operations: filter, sort, group-by,
// joins, CSV round-trips).
type Frame = *frame.Frame

// What-if analysis (see internal/whatif): a calibrated performance model
// extracted from a run's provenance, critical-path/bottleneck attribution,
// and a discrete-event replay simulator for perturbed configurations.
type (
	// WhatIfModel is the calibrated model of one run: the weighted task DAG
	// with fitted compute/transfer/I-O/scheduler costs.
	WhatIfModel = whatif.Model
	// WhatIfScenario perturbs the measured configuration (workers, threads,
	// network and PFS speed, proxy threshold, stealing).
	WhatIfScenario = whatif.Scenario
	// WhatIfResult is one replay prediction with its makespan delta.
	WhatIfResult = whatif.Result
	// CriticalPath is the executed schedule's longest weighted chain with
	// category attribution summing to the makespan.
	CriticalPath = whatif.CritPath
	// CritPathSummary is the compact digest attached to RunArtifacts.
	CritPathSummary = whatif.Summary
)

// ExtractModel fits the what-if cost model from a run's provenance.
func ExtractModel(art *RunArtifacts) (*WhatIfModel, error) { return art.ExtractModel() }

// ParseScenario parses "workers=8 threads=4 net=0.5 pfs=2 proxy=1048576
// steal=off" into a WhatIfScenario ("baseline" or "" = unchanged).
func ParseScenario(s string) (WhatIfScenario, error) { return whatif.ParseScenario(s) }

// RenderCritPath renders a run's critical path, bottleneck attribution, and
// chain as deterministic text (the `perfrecup critpath` report).
func RenderCritPath(art *RunArtifacts) (string, error) { return perfrecup.RenderCritPath(art) }

// Live monitoring (see internal/live). Enable during a run with
// SessionConfig.LiveMonitor (the final LiveSummary lands in
// RunArtifacts.Live) and optionally SessionConfig.LiveHTTPAddr for the
// /snapshot, /metrics, and /events endpoints; `taskprov watch` attaches the
// same machinery to runs started elsewhere.
type (
	// LiveSummary is the live monitor's aggregate state: counters, phase
	// decomposition, per-group duration quantiles, per-worker and per-host
	// activity, sliding windows, and detected anomalies.
	LiveSummary = live.Summary
	// LiveAnomaly is one online-detector finding (straggler, event-loop
	// streak, or I/O-bandwidth collapse).
	LiveAnomaly = live.Anomaly
)

// LiveReplay rebuilds the live monitor's end-of-run aggregates from a run's
// artifacts in canonical order — the reference side of the live/post-mortem
// equivalence invariant (DESIGN.md §7).
func LiveReplay(art *RunArtifacts) (LiveSummary, error) {
	return perfrecup.LiveReplay(art, live.AggregatorOptions{})
}

// WatchDataDir builds live aggregates post-mortem from a durable Mofka data
// directory, including the log of a crashed (kill -9) run.
func WatchDataDir(dir string) (LiveSummary, error) {
	return live.ReplayDataDir(dir, live.AggregatorOptions{})
}
