package pfs

import (
	"testing"
	"testing/quick"

	"taskprov/internal/sim"
)

func quiet() Config {
	c := Lustre()
	c.LatencyCV = 0
	c.InterferenceLoad = 0
	return c
}

func TestCreateOpenStatUnlink(t *testing.T) {
	k := sim.NewKernel(1)
	fs := New(k, quiet())
	var created, opened, stated *File
	var gone bool
	fs.Create("/data/a.img", func(f *File) {
		created = f
		fs.Open("/data/a.img", func(f *File) {
			opened = f
			fs.Stat("/data/a.img", func(f *File) {
				stated = f
				fs.Unlink("/data/a.img", func(existed bool) {
					gone = existed
				})
			})
		})
	})
	k.Run()
	if created == nil || opened != created || stated != created || !gone {
		t.Fatalf("lifecycle failed: created=%v opened=%v stated=%v gone=%v", created, opened, stated, gone)
	}
	if fs.Lookup("/data/a.img") != nil {
		t.Fatal("file still present after unlink")
	}
}

func TestOpenMissingFileYieldsNil(t *testing.T) {
	k := sim.NewKernel(1)
	fs := New(k, quiet())
	ran := false
	fs.Open("/nope", func(f *File) {
		ran = true
		if f != nil {
			t.Error("open of missing file returned a file")
		}
	})
	k.Run()
	if !ran {
		t.Fatal("callback never ran")
	}
}

func TestWriteExtendsAndReadClamps(t *testing.T) {
	k := sim.NewKernel(1)
	fs := New(k, quiet())
	var readN int64 = -1
	var eofN int64 = -1
	fs.Create("/f", func(f *File) {
		fs.Write(f, 0, 1000, func(n int64) {
			if n != 1000 {
				t.Errorf("write n = %d", n)
			}
			if f.Size != 1000 {
				t.Errorf("size after write = %d", f.Size)
			}
			fs.Read(f, 900, 500, func(n int64) {
				readN = n
				fs.Read(f, 2000, 100, func(n int64) { eofN = n })
			})
		})
	})
	k.Run()
	if readN != 100 {
		t.Fatalf("clamped read returned %d, want 100", readN)
	}
	if eofN != 0 {
		t.Fatalf("read past EOF returned %d, want 0", eofN)
	}
}

func TestWriteAtOffsetExtends(t *testing.T) {
	k := sim.NewKernel(1)
	fs := New(k, quiet())
	fs.Create("/f", func(f *File) {
		fs.Write(f, 500, 250, func(int64) {
			if f.Size != 750 {
				t.Errorf("size = %d, want 750", f.Size)
			}
		})
	})
	k.Run()
}

func TestStripingSpreadsAcrossOSTs(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := quiet()
	cfg.StripeSize = 1 << 20
	cfg.StripeCount = 4
	fs := New(k, cfg)
	f := &File{Path: "/f", Size: 100 << 20, StripeStart: 0, StripeCount: 4}
	parts := fs.ostsFor(f, 0, 8<<20)
	if len(parts) != 4 {
		t.Fatalf("8MiB over 4 stripes of 1MiB touched %d OSTs, want 4", len(parts))
	}
	var total float64
	for _, b := range parts {
		total += b
		if b != 2<<20 {
			t.Errorf("uneven stripe share: %v", b)
		}
	}
	if total != 8<<20 {
		t.Fatalf("striped bytes = %v, want %v", total, 8<<20)
	}
}

func TestStripingPartialRange(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := quiet()
	cfg.StripeSize = 1000
	cfg.StripeCount = 2
	fs := New(k, cfg)
	f := &File{Path: "/f", Size: 10000, StripeStart: 0, StripeCount: 2}
	// Range [500, 1700) = 500 bytes on stripe 0 (ost0), 1000 on stripe 1
	// (ost1), then... wait: [500,1000) on stripe0, [1000,1700) on stripe1.
	parts := fs.ostsFor(f, 500, 1200)
	var total float64
	for _, b := range parts {
		total += b
	}
	if total != 1200 {
		t.Fatalf("partial range bytes = %v, want 1200", total)
	}
	if len(parts) != 2 {
		t.Fatalf("touched %d OSTs, want 2", len(parts))
	}
}

func TestZeroSizeOps(t *testing.T) {
	k := sim.NewKernel(1)
	fs := New(k, quiet())
	var wrote, read int64 = -1, -1
	fs.Create("/f", func(f *File) {
		fs.Write(f, 0, 0, func(n int64) {
			wrote = n
			fs.Read(f, 0, 0, func(n int64) { read = n })
		})
	})
	k.Run()
	if wrote != 0 || read != 0 {
		t.Fatalf("zero-size ops: wrote=%d read=%d", wrote, read)
	}
}

func TestLargerReadsTakeLonger(t *testing.T) {
	measure := func(size int64) sim.Time {
		k := sim.NewKernel(1)
		fs := New(k, quiet())
		var done sim.Time
		fs.Create("/f", func(f *File) {
			fs.Write(f, 0, size, func(int64) {
				start := k.Now()
				fs.Read(f, 0, size, func(int64) { done = k.Now() - start })
			})
		})
		k.Run()
		return done
	}
	small := measure(1 << 20)
	big := measure(64 << 20)
	if big <= small {
		t.Fatalf("64MiB read (%v) not slower than 1MiB read (%v)", big, small)
	}
}

func TestInterferenceSlowsIO(t *testing.T) {
	measure := func(load float64, seed uint64) sim.Time {
		cfg := quiet()
		cfg.InterferenceLoad = load
		k := sim.NewKernel(seed)
		fs := New(k, cfg)
		var elapsed sim.Time
		// Let background traffic develop before measuring.
		k.After(sim.Seconds(5), func() {
			fs.Create("/f", func(f *File) {
				fs.Write(f, 0, 256<<20, func(int64) {
					start := k.Now()
					fs.Read(f, 0, 256<<20, func(int64) { elapsed = k.Now() - start })
				})
			})
		})
		k.RunUntil(sim.Seconds(120))
		k.Stop()
		return elapsed
	}
	calm := measure(0, 1)
	// Average over seeds: interference is stochastic.
	var busy sim.Time
	const n = 5
	for s := uint64(0); s < n; s++ {
		busy += measure(0.5, s)
	}
	busy /= n
	if busy <= calm {
		t.Fatalf("interference did not slow I/O: calm=%v busy=%v", calm, busy)
	}
}

func TestCountsAccumulate(t *testing.T) {
	k := sim.NewKernel(1)
	fs := New(k, quiet())
	fs.Create("/f", func(f *File) {
		fs.Write(f, 0, 10, func(int64) {
			fs.Read(f, 0, 10, nil)
			fs.Stat("/f", nil)
		})
	})
	k.Run()
	r, w, o, m := fs.Counts()
	if r != 1 || w != 1 || o != 1 || m != 1 {
		t.Fatalf("counts = %d %d %d %d", r, w, o, m)
	}
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"/a/b":    "/a/b",
		"a/b":     "/a/b",
		"/a//b/":  "/a/b",
		"/a/./b":  "/a/b",
		"/a/../b": "/b",
		"":        "/",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestListPrefix(t *testing.T) {
	k := sim.NewKernel(1)
	fs := New(k, quiet())
	for _, p := range []string{"/data/x", "/data/y", "/other/z"} {
		fs.Create(p, nil)
	}
	k.Run()
	got := fs.List("/data")
	if len(got) != 2 || got[0] != "/data/x" || got[1] != "/data/y" {
		t.Fatalf("List(/data) = %v", got)
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	k := sim.NewKernel(1)
	fs := New(k, quiet())
	fs.Create("/f", func(f *File) {
		fs.Write(f, 0, 100, func(int64) {
			fs.Create("/f", func(f2 *File) {
				if f2 != f {
					t.Error("re-create returned a different file object")
				}
				if f2.Size != 0 {
					t.Errorf("re-create did not truncate: size=%d", f2.Size)
				}
			})
		})
	})
	k.Run()
}

func TestDescribe(t *testing.T) {
	k := sim.NewKernel(1)
	fs := New(k, quiet())
	d := fs.Describe()
	if d.Mount != "/lus/grand" || d.OSTs != 16 || d.StripeCount != 4 {
		t.Fatalf("Describe = %+v", d)
	}
}

// Property: striping conserves bytes and never touches more OSTs than the
// stripe count for any (offset, size).
func TestStripingConservationProperty(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := quiet()
	cfg.StripeSize = 4096
	cfg.StripeCount = 4
	fs := New(k, cfg)
	f := &File{Path: "/f", Size: 1 << 30, StripeStart: 1, StripeCount: 4}
	prop := func(off uint32, size uint16) bool {
		parts := fs.ostsFor(f, int64(off), int64(size))
		var total float64
		for _, b := range parts {
			total += b
		}
		if total != float64(size) {
			return false
		}
		return len(parts) <= 4
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReadNeverExceedsFileSize(t *testing.T) {
	k := sim.NewKernel(2)
	fs := New(k, quiet())
	prop := func(fileSize uint16, off uint16, size uint16) bool {
		ok := true
		fs.Create("/p", func(f *File) {
			fs.Write(f, 0, int64(fileSize), func(int64) {
				fs.Read(f, int64(off), int64(size), func(n int64) {
					if n < 0 || n > int64(size) {
						ok = false
					}
					if int64(off) < int64(fileSize) && n > int64(fileSize)-int64(off) {
						ok = false
					}
					if int64(off) >= int64(fileSize) && n != 0 {
						ok = false
					}
				})
			})
		})
		k.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
