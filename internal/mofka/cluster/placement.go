package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Partition placement uses rendezvous (highest-random-weight) hashing: every
// (topic, partition, node) triple hashes to a weight, and the partition's
// replica set is the top ReplicationFactor nodes by weight, in weight order.
// The first entry is the preferred leader. Properties the cluster leans on:
//
//   - Deterministic: placement is a pure function of the triple, so every
//     process — and every rerun of a simulation — computes the same layout
//     without a placement service or any coordination.
//   - Balanced: weights are independent hashes, so partitions spread evenly
//     across nodes in expectation.
//   - Minimal movement: adding node N+1 only claims the partitions where it
//     out-weighs an incumbent; nothing else moves. (This repo fixes a
//     topic's replica set at creation time — the property matters for
//     topics created after a join.)
//
// Ties (astronomically unlikely with 64-bit FNV, but the simulation demands
// total determinism) break toward the lower node id.

// rendezvousWeight hashes one (topic, partition, node) triple.
func rendezvousWeight(topic string, part, node int) uint64 {
	h := fnv.New64a()
	_, _ = fmt.Fprintf(h, "%s|%d|%d", topic, part, node) // hash writes cannot fail
	return h.Sum64()
}

// rendezvousRank returns all node ids [0,nodes) sorted by descending weight
// for (topic, part).
func rendezvousRank(topic string, part, nodes int) []int {
	type wn struct {
		w uint64
		n int
	}
	ws := make([]wn, nodes)
	for n := 0; n < nodes; n++ {
		ws[n] = wn{rendezvousWeight(topic, part, n), n}
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].w != ws[j].w {
			return ws[i].w > ws[j].w
		}
		return ws[i].n < ws[j].n
	})
	out := make([]int, nodes)
	for i, w := range ws {
		out[i] = w.n
	}
	return out
}

// replicaSet returns the top-rf replica node ids for (topic, part) across
// nodes members, preferred leader first.
func replicaSet(topic string, part, nodes, rf int) []int {
	if rf > nodes {
		rf = nodes
	}
	return rendezvousRank(topic, part, nodes)[:rf]
}

// PlacementView describes where one partition lives — the introspection
// surface `taskprov` status commands and tests use.
type PlacementView struct {
	Topic     string `json:"topic"`
	Partition int    `json:"partition"`
	Replicas  []int  `json:"replicas"` // rank order; [0] is preferred leader
	Leader    int    `json:"leader"`   // current leader node id, -1 if none
	Epoch     uint64 `json:"epoch"`
	Acked     uint64 `json:"acked"`
}

// Placement returns the current placement of every partition, sorted by
// (topic, partition).
func (c *Cluster) Placement() []PlacementView {
	c.mu.Lock()
	var parts []*partState
	for _, ts := range c.topics {
		parts = append(parts, ts.parts...)
	}
	c.mu.Unlock()
	var out []PlacementView
	for _, ps := range parts {
		ps.mu.Lock()
		out = append(out, PlacementView{
			Topic:     ps.topic,
			Partition: ps.index,
			Replicas:  append([]int(nil), ps.replicas...),
			Leader:    ps.leader,
			Epoch:     ps.epoch,
			Acked:     ps.acked,
		})
		ps.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Topic != out[j].Topic {
			return out[i].Topic < out[j].Topic
		}
		return out[i].Partition < out[j].Partition
	})
	return out
}
