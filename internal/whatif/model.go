// Package whatif turns a captured provenance stream into a calibrated
// performance model of the run: a weighted task DAG with per-task compute,
// I/O, transfer, proxy-resolve, and scheduler costs. On top of the model it
// offers two analyses:
//
//   - critical-path extraction (critpath.go): the longest weighted chain
//     through the executed schedule, with per-task slack and a bottleneck
//     attribution table (compute vs transfer vs I/O vs scheduler vs proxy);
//   - a discrete-event replay simulator (replay.go): re-execute the DAG
//     under a perturbed Scenario (worker count, threads, network/PFS speed,
//     proxy threshold, stealing) and predict the makespan delta.
//
// The package is deliberately a leaf (no dependency on internal/core,
// internal/perfrecup, or internal/live) so that all three can build on it:
// core computes a critical-path summary per run, perfrecup renders the
// critpath/whatif views, and live derives its CriticalPathSeconds lane from
// the same chain arithmetic.
package whatif

import (
	"fmt"
	"math"
	"sort"

	"taskprov/internal/darshan"
	"taskprov/internal/dask"
	"taskprov/internal/mofka"
	"taskprov/internal/provenance"
)

// Input bundles everything the extractor reads: the provenance broker (a
// live run's broker, a WAL replay, or a cluster read view — they all
// materialize as *mofka.Broker), the Darshan logs for the I/O join, and the
// run-metadata fields the model needs as its baseline configuration.
type Input struct {
	Broker      *mofka.Broker
	DarshanLogs []*darshan.Log

	Workflow string
	Seed     uint64

	// Baseline topology (from the run metadata's job layer).
	Nodes            int
	WorkersPerNode   int
	ThreadsPerWorker int

	// Baseline WMS configuration (from the dask_config layer).
	StealEnabled        bool
	ProxyThresholdBytes int64

	// Measured outcome.
	StartSeconds float64
	WallSeconds  float64
}

// Task is one executed task with its fitted cost decomposition. Start/Stop
// are absolute virtual seconds from the measured run; the decomposition
// satisfies Compute+IO+Proxy = Stop-Start (Compute clamped at zero when the
// joined I/O over-covers the window, e.g. on overlapping DXT segments).
type Task struct {
	Key     string
	Prefix  string
	GraphID int
	Deps    []int // indices into Model.Tasks; only executed deps appear

	Worker   string
	Hostname string
	ThreadID uint64

	Start, Stop float64
	OutputBytes int64

	ComputeSeconds float64
	IOSeconds      float64
	ProxySeconds   float64 // lazy proxy-resolve stalls inside the window
}

// DurationSeconds is the measured execution window length.
func (t *Task) DurationSeconds() float64 { return t.Stop - t.Start }

// Edge is one measured dependency transfer: dep task Task (by index)
// arriving at worker To.
type Edge struct {
	Task           int
	To             string
	Bytes          int64
	Seconds        float64
	SameNode       bool
	ViaProxy       bool
	ResolveSeconds float64
}

// GraphInfo captures the client-side control flow around one task graph:
// when it was submitted, when it completed, and which earlier graphs the
// client observably waited on before submitting it (every graph already done
// at submit time). DelaySeconds is the client think/submit time between the
// last prerequisite's completion (or run start) and the submission.
type GraphInfo struct {
	ID           int
	SubmitAt     float64
	DoneAt       float64
	Tasks        int
	Prereqs      []int // graph IDs done before SubmitAt
	DelaySeconds float64
}

// TransferFit is one fitted latency+bandwidth cost model:
// seconds = Alpha + bytes/Beta. Beta is +Inf when the sample is degenerate
// (no byte-size spread), collapsing to a pure latency model.
type TransferFit struct {
	Alpha   float64 // seconds
	Beta    float64 // bytes/second
	Samples int
}

// Seconds evaluates the fit for a transfer of the given size.
func (f TransferFit) Seconds(bytes int64) float64 {
	if f.Samples == 0 {
		return 0
	}
	if math.IsInf(f.Beta, 1) || f.Beta <= 0 {
		return f.Alpha
	}
	return f.Alpha + float64(bytes)/f.Beta
}

// CostModel is the calibrated per-category cost model.
type CostModel struct {
	// Transfer fits by plane: same-node direct, cross-node direct, and
	// proxied (resolve cost, i.e. demand-to-arrival latency).
	Local TransferFit
	Cross TransferFit
	Proxy TransferFit

	// DispatchSeconds is the fitted scheduler decision overhead: the low
	// percentile of the lag between a task's inputs being ready and its
	// execution starting (low, so queueing for a busy slot is not
	// double-counted — the replay models slots explicitly).
	DispatchSeconds float64

	// ComputeByPrefix is the mean compute seconds per task prefix —
	// the per-task-type cost table the paper's characterization motivates.
	ComputeByPrefix map[string]float64
}

// Model is the extracted, calibrated model of one run.
type Model struct {
	Workflow string
	Seed     uint64

	Tasks  []Task
	Index  map[string]int // key -> task index
	Graphs []GraphInfo    // sorted by SubmitAt, then ID

	// Transfers indexes measured transfers by (dep task, destination
	// worker); re-executed fetches keep the longest observation.
	Transfers map[EdgeKey]Edge

	Cost CostModel

	// Baseline topology and configuration.
	Workers          []string          // sorted measured worker names
	WorkerHost       map[string]string // worker -> hostname
	Nodes            int
	WorkersPerNode   int
	ThreadsPerWorker int
	StealEnabled     bool
	ProxyThreshold   int64

	// Measured outcome: absolute times in virtual seconds.
	StartSeconds    float64
	EndSeconds      float64
	MakespanSeconds float64
}

// EdgeKey addresses one measured transfer.
type EdgeKey struct {
	Task int
	To   string
}

// graphIndex returns the position of graph id in m.Graphs (-1 if unknown).
func (m *Model) graphIndex(id int) int {
	for i := range m.Graphs {
		if m.Graphs[i].ID == id {
			return i
		}
	}
	return -1
}

// Extract drains the provenance topics and fits the model. It fails only on
// broker errors or an empty run; partial streams (no transfers, no DXT)
// degrade to zero-cost categories.
func Extract(in Input) (*Model, error) {
	if in.Broker == nil {
		return nil, fmt.Errorf("whatif: nil broker")
	}
	metas, err := provenance.DrainTopic(in.Broker, provenance.TopicTaskMeta)
	if err != nil {
		return nil, fmt.Errorf("whatif: task-meta: %w", err)
	}
	execs, err := provenance.DrainTopic(in.Broker, provenance.TopicExecutions)
	if err != nil {
		return nil, fmt.Errorf("whatif: executions: %w", err)
	}
	transfers, err := provenance.DrainTopic(in.Broker, provenance.TopicTransfers)
	if err != nil {
		return nil, fmt.Errorf("whatif: transfers: %w", err)
	}
	graphEvents, err := provenance.DrainTopic(in.Broker, provenance.TopicGraphs)
	if err != nil {
		return nil, fmt.Errorf("whatif: graph-events: %w", err)
	}

	// Executions: keep the final (max-Stop) execution of each key — a task
	// re-executed after a worker crash contributes its surviving run.
	execByKey := make(map[string]dask.TaskExecution, len(execs))
	for _, em := range execs {
		e := provenance.ParseExecution(em)
		if prev, ok := execByKey[string(e.Key)]; !ok || e.Stop > prev.Stop {
			execByKey[string(e.Key)] = e
		}
	}
	if len(execByKey) == 0 {
		return nil, fmt.Errorf("whatif: run has no task executions")
	}

	// Task metadata: dependency lists and per-graph submit times.
	metaByKey := make(map[string]metaRec, len(metas))
	for _, mm := range metas {
		tm := provenance.ParseTaskMeta(mm)
		if _, ok := metaByKey[string(tm.Key)]; ok {
			continue // duplicate registration (re-submitted graph)
		}
		deps := make([]string, len(tm.Deps))
		for i, d := range tm.Deps {
			deps[i] = string(d)
		}
		metaByKey[string(tm.Key)] = metaRec{deps: deps, graphID: tm.GraphID, at: tm.At.Seconds()}
	}

	m := &Model{
		Workflow:         in.Workflow,
		Seed:             in.Seed,
		Index:            make(map[string]int, len(execByKey)),
		Transfers:        make(map[EdgeKey]Edge),
		WorkerHost:       make(map[string]string),
		Nodes:            in.Nodes,
		WorkersPerNode:   in.WorkersPerNode,
		ThreadsPerWorker: in.ThreadsPerWorker,
		StealEnabled:     in.StealEnabled,
		ProxyThreshold:   in.ProxyThresholdBytes,
		StartSeconds:     in.StartSeconds,
	}

	// Deterministic task order: by measured start, then key.
	keys := make([]string, 0, len(execByKey))
	for k := range execByKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		ea, eb := execByKey[keys[a]], execByKey[keys[b]]
		if ea.Start != eb.Start {
			return ea.Start < eb.Start
		}
		return keys[a] < keys[b]
	})
	end := in.StartSeconds
	for _, k := range keys {
		e := execByKey[k]
		meta := metaByKey[k]
		t := Task{
			Key:         k,
			Prefix:      dask.KeyPrefix(e.Key),
			GraphID:     e.GraphID,
			Worker:      e.Worker,
			Hostname:    e.Hostname,
			ThreadID:    e.ThreadID,
			Start:       e.Start.Seconds(),
			Stop:        e.Stop.Seconds(),
			OutputBytes: e.OutputSize,
		}
		if meta.graphID != 0 && t.GraphID == 0 {
			t.GraphID = meta.graphID
		}
		m.Index[k] = len(m.Tasks)
		m.Tasks = append(m.Tasks, t)
		m.WorkerHost[e.Worker] = e.Hostname
		if t.Stop > end {
			end = t.Stop
		}
	}
	m.EndSeconds = end
	m.MakespanSeconds = in.WallSeconds
	if m.MakespanSeconds <= 0 {
		m.MakespanSeconds = end - in.StartSeconds
	}

	// Dependency edges (only deps that executed; purely external/staged
	// inputs have no execution record and impose no ordering).
	for i := range m.Tasks {
		for _, d := range metaByKey[m.Tasks[i].Key].deps {
			if j, ok := m.Index[d]; ok {
				m.Tasks[i].Deps = append(m.Tasks[i].Deps, j)
			}
		}
		sort.Ints(m.Tasks[i].Deps)
	}

	// Measured transfers, indexed by (dep, destination worker). A dep
	// re-fetched after a crash keeps the longest observation, biasing the
	// model conservative.
	for _, tm := range transfers {
		tr := provenance.ParseTransfer(tm)
		idx, ok := m.Index[string(tr.Key)]
		if !ok {
			continue
		}
		e := Edge{
			Task:           idx,
			To:             tr.To,
			Bytes:          tr.Bytes,
			Seconds:        (tr.Stop - tr.Start).Seconds(),
			SameNode:       tr.SameNode,
			ViaProxy:       tr.ViaProxy,
			ResolveSeconds: tr.ResolveLatency.Seconds(),
		}
		k := EdgeKey{Task: idx, To: tr.To}
		if prev, ok := m.Transfers[k]; !ok || e.Seconds > prev.Seconds {
			m.Transfers[k] = e
		}
	}

	m.Workers = make([]string, 0, len(m.WorkerHost))
	for w := range m.WorkerHost {
		m.Workers = append(m.Workers, w)
	}
	sort.Strings(m.Workers)

	m.extractGraphs(metaByKey, graphEvents)
	m.joinIO(in.DarshanLogs)
	m.decomposeProxy()
	m.fitCosts()
	return m, nil
}

// metaRec is the per-key slice of the task-meta stream the extractor keeps.
type metaRec struct {
	deps    []string
	graphID int
	at      float64
}

// extractGraphs reconstructs the client's graph-level control flow: submit
// time (earliest task-meta registration), completion time (graph-done event,
// falling back to the last task stop), and the set of graphs already done at
// submit time — the barriers the client's Wait calls impose.
func (m *Model) extractGraphs(metaByKey map[string]metaRec, graphEvents []mofka.Metadata) {
	submit := map[int]float64{}
	count := map[int]int{}
	lastStop := map[int]float64{}
	for i := range m.Tasks {
		t := &m.Tasks[i]
		g := t.GraphID
		at := metaByKey[t.Key].at
		if s, ok := submit[g]; !ok || at < s {
			submit[g] = at
		}
		count[g]++
		if t.Stop > lastStop[g] {
			lastStop[g] = t.Stop
		}
	}
	done := map[int]float64{}
	for _, gm := range graphEvents {
		if provenance.Str(gm, "event") != "done" {
			continue
		}
		id := int(provenance.Num(gm, "graph_id"))
		at := provenance.Num(gm, "at")
		if prev, ok := done[id]; !ok || at > prev {
			done[id] = at
		}
	}
	ids := make([]int, 0, len(submit))
	for id := range submit {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		if submit[ids[a]] != submit[ids[b]] {
			return submit[ids[a]] < submit[ids[b]]
		}
		return ids[a] < ids[b]
	})
	for _, id := range ids {
		g := GraphInfo{ID: id, SubmitAt: submit[id], Tasks: count[id]}
		if d, ok := done[id]; ok {
			g.DoneAt = d
		} else {
			g.DoneAt = lastStop[id]
		}
		m.Graphs = append(m.Graphs, g)
	}
	// Prereqs: every graph observably complete before this one's submission.
	for i := range m.Graphs {
		g := &m.Graphs[i]
		base := m.StartSeconds
		for j := range m.Graphs {
			o := &m.Graphs[j]
			if o.ID == g.ID || o.DoneAt > g.SubmitAt {
				continue
			}
			g.Prereqs = append(g.Prereqs, o.ID)
			if o.DoneAt > base {
				base = o.DoneAt
			}
		}
		sort.Ints(g.Prereqs)
		g.DelaySeconds = g.SubmitAt - base
		if g.DelaySeconds < 0 {
			g.DelaySeconds = 0
		}
	}
}

// joinIO attributes DXT segments to tasks by (hostname, thread id, time
// window) — the same fusion perfrecup performs — accumulating per-task I/O
// seconds.
func (m *Model) joinIO(logs []*darshan.Log) {
	if len(logs) == 0 {
		return
	}
	type window struct {
		start, stop float64
		task        int
	}
	byThread := make(map[string][]window)
	tkey := func(host string, tid uint64) string {
		return fmt.Sprintf("%s\x00%d", host, tid)
	}
	for i := range m.Tasks {
		t := &m.Tasks[i]
		k := tkey(t.Hostname, t.ThreadID)
		byThread[k] = append(byThread[k], window{start: t.Start, stop: t.Stop, task: i})
	}
	for _, ws := range byThread {
		sort.Slice(ws, func(a, b int) bool { return ws[a].start < ws[b].start })
	}
	for _, l := range logs {
		for _, rec := range l.Records {
			for _, s := range rec.DXT {
				ws := byThread[tkey(l.Job.Hostname, uint64(s.TID))]
				lo, hi := 0, len(ws)
				for lo < hi {
					mid := (lo + hi) / 2
					if ws[mid].start <= s.Start {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				if lo > 0 {
					w := ws[lo-1]
					if s.Start <= w.stop {
						m.Tasks[w.task].IOSeconds += s.End - s.Start
					}
				}
			}
		}
	}
}

// decomposeProxy assigns each task the lazy proxy-resolve stalls that
// happened inside its execution window (resolve latency of proxied deps
// fetched on its worker, overlapping its window), and derives the compute
// residue: Compute = Duration - IO - Proxy, clamped at zero.
func (m *Model) decomposeProxy() {
	for i := range m.Tasks {
		t := &m.Tasks[i]
		for _, d := range t.Deps {
			e, ok := m.Transfers[EdgeKey{Task: d, To: t.Worker}]
			if !ok || !e.ViaProxy || e.ResolveSeconds <= 0 {
				continue
			}
			// The resolve stalls this task only if its window saw it.
			dep := &m.Tasks[d]
			if dep.Stop <= t.Stop && dep.Stop+e.Seconds >= t.Start {
				t.ProxySeconds += e.ResolveSeconds
			}
		}
		// Keep the decomposition exact: IO and proxy are clipped to the
		// window (overlapping DXT segments can over-cover it), and compute
		// takes the residue.
		if d := t.DurationSeconds(); t.IOSeconds > d {
			t.IOSeconds = d
		}
		if rem := t.DurationSeconds() - t.IOSeconds; t.ProxySeconds > rem {
			t.ProxySeconds = rem
		}
		t.ComputeSeconds = t.DurationSeconds() - t.IOSeconds - t.ProxySeconds
	}
}

// fitCosts calibrates the transfer fits, scheduler dispatch overhead, and
// the per-prefix compute table from the measured run.
func (m *Model) fitCosts() {
	var localB, localS, crossB, crossS, proxyB, proxyS []float64
	// Walk transfers in sorted key order: the least-squares accumulations are
	// float sums, and map order must not leak into the fitted parameters.
	edgeKeys := make([]EdgeKey, 0, len(m.Transfers))
	for k := range m.Transfers {
		edgeKeys = append(edgeKeys, k)
	}
	sort.Slice(edgeKeys, func(a, b int) bool {
		if edgeKeys[a].Task != edgeKeys[b].Task {
			return edgeKeys[a].Task < edgeKeys[b].Task
		}
		return edgeKeys[a].To < edgeKeys[b].To
	})
	for _, k := range edgeKeys {
		e := m.Transfers[k]
		switch {
		case e.ViaProxy:
			proxyB = append(proxyB, float64(e.Bytes))
			proxyS = append(proxyS, e.Seconds)
		case e.SameNode:
			localB = append(localB, float64(e.Bytes))
			localS = append(localS, e.Seconds)
		default:
			crossB = append(crossB, float64(e.Bytes))
			crossS = append(crossS, e.Seconds)
		}
	}
	m.Cost.Local = fitLatencyBandwidth(localB, localS)
	m.Cost.Cross = fitLatencyBandwidth(crossB, crossS)
	m.Cost.Proxy = fitLatencyBandwidth(proxyB, proxyS)

	// Dispatch: low percentile of the positive lag between a task's inputs
	// being ready (deps done + data arrived, or graph submit for roots) and
	// its start. Low, because the bulk of the lag is slot queueing, which
	// the replay models explicitly via worker threads.
	var lags []float64
	for i := range m.Tasks {
		t := &m.Tasks[i]
		ready := m.StartSeconds
		if gi := m.graphIndex(t.GraphID); gi >= 0 {
			ready = m.Graphs[gi].SubmitAt
		}
		for _, d := range t.Deps {
			arr := m.Tasks[d].Stop
			if e, ok := m.Transfers[EdgeKey{Task: d, To: t.Worker}]; ok && !e.ViaProxy {
				arr += e.Seconds
			}
			if arr > ready {
				ready = arr
			}
		}
		if lag := t.Start - ready; lag >= 0 {
			lags = append(lags, lag)
		}
	}
	m.Cost.DispatchSeconds = percentile(lags, 0.10)

	m.Cost.ComputeByPrefix = map[string]float64{}
	n := map[string]int{}
	for i := range m.Tasks {
		t := &m.Tasks[i]
		m.Cost.ComputeByPrefix[t.Prefix] += t.ComputeSeconds
		n[t.Prefix]++
	}
	for p, sum := range m.Cost.ComputeByPrefix {
		m.Cost.ComputeByPrefix[p] = sum / float64(n[p])
	}
}

// fitLatencyBandwidth least-squares fits seconds = alpha + bytes/beta.
// Degenerate samples (fewer than 2 points, no byte spread, or a non-positive
// slope) collapse to a pure latency model at the mean duration.
func fitLatencyBandwidth(bytes, secs []float64) TransferFit {
	n := len(bytes)
	if n == 0 {
		return TransferFit{}
	}
	meanX, meanY := 0.0, 0.0
	for i := 0; i < n; i++ {
		meanX += bytes[i]
		meanY += secs[i]
	}
	meanX /= float64(n)
	meanY /= float64(n)
	if n == 1 {
		return TransferFit{Alpha: meanY, Beta: math.Inf(1), Samples: n}
	}
	varX, cov := 0.0, 0.0
	for i := 0; i < n; i++ {
		dx := bytes[i] - meanX
		varX += dx * dx
		cov += dx * (secs[i] - meanY)
	}
	if varX == 0 || cov <= 0 {
		return TransferFit{Alpha: meanY, Beta: math.Inf(1), Samples: n}
	}
	slope := cov / varX // seconds per byte
	alpha := meanY - slope*meanX
	if alpha < 0 {
		alpha = 0
	}
	return TransferFit{Alpha: alpha, Beta: 1 / slope, Samples: n}
}

// percentile interpolates the q-quantile of an unsorted sample (0 when
// empty).
func percentile(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s...)
	sort.Float64s(sorted)
	rank := q * float64(len(sorted)-1)
	lo := int(rank)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	w := rank - float64(lo)
	return sorted[lo]*(1-w) + sorted[lo+1]*w
}

// edgeCost predicts the pre-execution fetch cost of dep d consumed on
// worker w (direct plane), preferring the measured edge when one exists.
// netScale divides effective bandwidth and latency.
func (m *Model) edgeCost(d int, from, to string, netScale float64) float64 {
	if from == to {
		return 0
	}
	if e, ok := m.Transfers[EdgeKey{Task: d, To: to}]; ok && !e.ViaProxy {
		return e.Seconds / netScale
	}
	bytes := m.Tasks[d].OutputBytes
	sameNode := m.WorkerHost[from] != "" && m.WorkerHost[from] == m.WorkerHost[to]
	fit := m.Cost.Cross
	if sameNode {
		fit = m.Cost.Local
	}
	if fit.Samples == 0 {
		// No observations on that plane: fall back to the other one.
		if sameNode {
			fit = m.Cost.Cross
		} else {
			fit = m.Cost.Local
		}
	}
	return fit.Seconds(bytes) / netScale
}

// proxyCost predicts the lazy resolve stall of proxied dep d on worker w,
// preferring the measured resolve when one exists.
func (m *Model) proxyCost(d int, to string, netScale float64) float64 {
	if e, ok := m.Transfers[EdgeKey{Task: d, To: to}]; ok && e.ViaProxy {
		return e.ResolveSeconds / netScale
	}
	if m.Cost.Proxy.Samples == 0 {
		return m.edgeCost(d, m.Tasks[d].Worker, to, netScale)
	}
	return m.Cost.Proxy.Seconds(m.Tasks[d].OutputBytes) / netScale
}
