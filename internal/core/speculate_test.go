package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"taskprov/internal/chaos"
	"taskprov/internal/dask"
	"taskprov/internal/mochi/mercury"
	"taskprov/internal/sim"
)

// brownoutWorkflow is a two-layer graph shaped for the gray-failure
// acceptance scenario: a short prep layer (so work tasks start after the
// brownout onset and their compute is dilated from the first instant),
// then one 1s work task per prep whose outputs a sink gathers. With one
// worker browned out at factor 8, its work tasks dominate the makespan
// unless speculation hedges them onto healthy workers.
type brownoutWorkflow struct {
	width    int
	graphErr string
}

func (b *brownoutWorkflow) Name() string { return "brownout" }

func (b *brownoutWorkflow) Stage(env *Env) {}

func (b *brownoutWorkflow) Run(p *sim.Proc, cl *dask.Client, env *Env) {
	g := dask.NewGraph(1)
	var works []dask.TaskKey
	for i := 0; i < b.width; i++ {
		prep := dask.TaskKey(fmt.Sprintf("prep-%02d", i))
		work := dask.TaskKey(fmt.Sprintf("work-%02d", i))
		g.Add(&dask.TaskSpec{Key: prep, EstDuration: sim.Milliseconds(300), OutputSize: 1 << 20})
		g.Add(&dask.TaskSpec{Key: work, Deps: []dask.TaskKey{prep},
			EstDuration: sim.Seconds(1), OutputSize: 1 << 20})
		works = append(works, work)
	}
	g.Add(&dask.TaskSpec{Key: "sink-00", Deps: works, EstDuration: sim.Milliseconds(50), OutputSize: 64})
	cl.SubmitAndWait(p, g)
	b.graphErr = cl.GraphError(1)
}

// brownoutRun executes the brownout workflow under the given chaos spec and
// speculation switch, returning the artifacts and drained speculation events.
func brownoutRun(t *testing.T, seed uint64, chaosSpec string, speculate bool) (*RunArtifacts, []dask.SpeculationEvent) {
	t.Helper()
	cfg := testSession(seed)
	cfg.ChaosSpec = chaosSpec
	cfg.Dask.ProxyThresholdBytes = 1 << 18
	cfg.Speculation.Enabled = speculate
	wf := &brownoutWorkflow{width: 8}
	art, err := Run(cfg, wf)
	if err != nil {
		t.Fatal(err)
	}
	if wf.graphErr != "" {
		t.Fatalf("graph erred: %s", wf.graphErr)
	}
	metas, err := DrainTopic(art.Broker, TopicSpeculation)
	if err != nil {
		t.Fatal(err)
	}
	evs := make([]dask.SpeculationEvent, len(metas))
	for i, m := range metas {
		evs[i] = ParseSpeculationEvent(m)
	}
	return art, evs
}

// proxyFinalResident reconstructs the proxy store's end-of-run resident
// bytes from the run's proxy event stream (publish minus free/reclaim).
func proxyFinalResident(t *testing.T, art *RunArtifacts) int64 {
	t.Helper()
	metas, err := DrainTopic(art.Broker, TopicProxy)
	if err != nil {
		t.Fatal(err)
	}
	var resident int64
	for _, m := range metas {
		ev := ParseProxyEvent(m)
		switch ev.Op {
		case dask.ProxyOpPublish:
			resident += ev.Bytes
		case dask.ProxyOpFree, dask.ProxyOpReclaim:
			resident -= ev.Bytes
		}
	}
	return resident
}

// TestBrownoutSpeculationAcceptance is the tentpole's acceptance scenario:
// on a seeded workload with one worker browned out at factor=8, enabling
// speculation recovers at least 40% of the lost makespan, with zero
// duplicate task side effects — exactly one winning execution record per
// key and the proxy store's resident footprint back at the fault-free
// baseline — and the speculation timeline reproduces run-for-run.
func TestBrownoutSpeculationAcceptance(t *testing.T) {
	const seed = 42
	const spec = "slow worker=1 at=100ms factor=8"

	clean, _ := brownoutRun(t, seed, "", false)
	slow, slowEvs := brownoutRun(t, seed, spec, false)
	hedged, evs := brownoutRun(t, seed, spec, true)

	if len(slowEvs) != 0 {
		t.Fatalf("speculation off still recorded %d events", len(slowEvs))
	}
	wallClean := clean.Meta.WallSeconds
	wallSlow := slow.Meta.WallSeconds
	wallHedged := hedged.Meta.WallSeconds
	lost := wallSlow - wallClean
	if lost <= 0 {
		t.Fatalf("brownout did not hurt: clean %.3fs, slow %.3fs", wallClean, wallSlow)
	}
	recovered := wallSlow - wallHedged
	t.Logf("makespan clean %.3fs, browned-out %.3fs, speculated %.3fs (recovered %.0f%% of %.3fs lost)",
		wallClean, wallSlow, wallHedged, 100*recovered/lost, lost)
	if recovered < 0.4*lost {
		t.Fatalf("speculation recovered %.3fs of %.3fs lost (< 40%%)", recovered, lost)
	}

	// Speculation actually engaged and settled every launch.
	var launched, won int
	for _, ev := range evs {
		switch ev.Kind {
		case dask.SpecLaunched:
			launched++
		case dask.SpecWon:
			won++
		}
	}
	if launched == 0 || won == 0 {
		t.Fatalf("no hedging recorded: launched %d, won %d (events %+v)", launched, won, evs)
	}

	// Zero duplicate side effects: exactly one winning execution record per
	// task key — a cancelled loser never reports its execution.
	metas, err := DrainTopic(hedged.Broker, TopicExecutions)
	if err != nil {
		t.Fatal(err)
	}
	perKey := map[dask.TaskKey]int{}
	for _, m := range metas {
		perKey[ParseExecution(m).Key]++
	}
	for k, n := range perKey {
		if n != 1 {
			t.Errorf("task %s has %d execution records, want exactly 1", k, n)
		}
	}
	if len(perKey) != 17 { // 8 prep + 8 work + sink
		t.Errorf("distinct executed keys = %d, want 17", len(perKey))
	}

	// The proxy store's resident footprint returns to the fault-free
	// baseline: a loser's stray publish would leak bytes here.
	base := proxyFinalResident(t, clean)
	if got := proxyFinalResident(t, hedged); got != base {
		t.Errorf("proxy resident after speculated run = %d, baseline %d", got, base)
	}

	// Determinism: the same seed and spec reproduce the identical
	// speculation timeline, event for event.
	_, evs2 := brownoutRun(t, seed, spec, true)
	if len(evs) != len(evs2) {
		t.Fatalf("speculation timelines differ in length: %d vs %d", len(evs), len(evs2))
	}
	for i := range evs {
		if evs[i] != evs2[i] {
			t.Fatalf("speculation event %d differs:\n%+v\n%+v", i, evs[i], evs2[i])
		}
	}

	// The run's metadata records the policy the timeline ran under.
	inst := hedged.Meta.Instrumentation
	if !inst.SpeculationEnabled || inst.SpeculationMax == 0 || inst.SpeculationQuantile == 0 {
		t.Errorf("speculation policy missing from metadata: %+v", inst)
	}
}

// TestHeartbeatJitterDesynchronizesMultiRestart kills three of four workers
// at the same virtual instant and restarts them together: deterministic
// per-worker heartbeat jitter must spread their post-restart heartbeats so
// the scheduler never sees a synchronized arrival (or, on the TTL side, a
// synchronized eviction) storm.
func TestHeartbeatJitterDesynchronizesMultiRestart(t *testing.T) {
	cfg := testSession(33)
	cfg.ChaosSpec = "kill worker=0 at=4s restart=2s; kill worker=1 at=4s restart=2s; kill worker=2 at=4s restart=2s"
	wf := &crashWorkflow{width: 32}
	art, err := Run(cfg, wf)
	if err != nil {
		t.Fatal(err)
	}
	if wf.graphErr != "" {
		t.Fatalf("graph erred: %s", wf.graphErr)
	}

	metas, err := DrainTopic(art.Broker, TopicHeartbeats)
	if err != nil {
		t.Fatal(err)
	}
	restart := sim.Seconds(6)
	first := map[string]sim.Time{} // port suffix -> first post-restart heartbeat
	for _, m := range metas {
		hb := ParseHeartbeat(m)
		var suffix string
		for _, rank := range []int{0, 1, 2} {
			if strings.HasSuffix(hb.Worker, fmt.Sprintf(":%d", 40000+rank)) {
				suffix = fmt.Sprintf(":%d", 40000+rank)
			}
		}
		if suffix == "" || hb.At <= restart {
			continue
		}
		if cur, ok := first[suffix]; !ok || hb.At < cur {
			first[suffix] = hb.At
		}
	}
	if len(first) != 3 {
		t.Fatalf("restarted workers heartbeating = %d, want 3 (%v)", len(first), first)
	}
	seen := map[sim.Time][]string{}
	for w, at := range first {
		seen[at] = append(seen[at], w)
	}
	for at, ws := range seen {
		if len(ws) > 1 {
			t.Errorf("synchronized post-restart heartbeats at %v from %v", at, ws)
		}
	}
}

// TestRetryStormBoundedUnderChaos points the session's adaptive retry layer
// at an endpoint whose every call is chaos-dropped: total retries must stay
// within the configured per-run budget, every call must fail cleanly (with
// both the budget sentinel and the underlying timeout observable), the storm
// must land on the speculation provenance topic, and nothing hangs.
func TestRetryStormBoundedUnderChaos(t *testing.T) {
	const budget = 5
	cfg := testSession(9)
	cfg.RetryBudget = budget
	s, err := NewSession(cfg, &toyWorkflow{files: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}

	reg := mercury.NewRegistry()
	reg.Listen("badnode").Register("echo", func(req []byte) ([]byte, error) { return req, nil })
	plan, err := chaos.Parse("rpc addr=badnode op=drop count=1000")
	if err != nil {
		t.Fatal(err)
	}
	chaos.NewController(plan).ArmRegistry(reg)

	rc := s.WrapCaller(reg.Bind("badnode"), "badnode")
	rc.Sleep = func(time.Duration) {}

	var lastErr error
	for i := 0; i < 10; i++ {
		if _, lastErr = rc.Call("echo", nil); lastErr == nil {
			t.Fatal("call through a total brownout succeeded")
		}
	}
	st := rc.Stats()
	if st.Retries > budget {
		t.Fatalf("retries %d exceed budget %d", st.Retries, budget)
	}
	if st.BudgetDenied == 0 {
		t.Fatal("budget never denied a retry — storm was not bounded by the budget")
	}
	if s.RetryBudgetRemaining() != 0 {
		t.Fatalf("budget remaining %d after storm", s.RetryBudgetRemaining())
	}
	if !errors.Is(lastErr, mercury.ErrRetryBudgetExhausted) {
		t.Fatalf("budget sentinel not surfaced: %v", lastErr)
	}
	if !errors.Is(lastErr, mercury.ErrTimeout) {
		t.Fatalf("underlying timeout not surfaced: %v", lastErr)
	}

	// The storm is part of the run's record: finish the (fault-free)
	// workflow and drain the speculation topic.
	art, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	metas, err := DrainTopic(art.Broker, TopicSpeculation)
	if err != nil {
		t.Fatal(err)
	}
	var retries, denied int64
	for _, m := range metas {
		switch ev := ParseSpeculationEvent(m); ev.Kind {
		case dask.SpecRetry:
			retries++
			if ev.Primary != "badnode" || ev.Detail == "" {
				t.Errorf("retry event incomplete: %+v", ev)
			}
		case dask.SpecBudgetExhausted:
			denied++
		}
	}
	if retries != st.Retries {
		t.Errorf("provenance records %d retries, caller stats say %d", retries, st.Retries)
	}
	if denied != st.BudgetDenied {
		t.Errorf("provenance records %d budget denials, caller stats say %d", denied, st.BudgetDenied)
	}
	if n := art.Meta.Instrumentation.RetryBudget; n != budget {
		t.Errorf("metadata retry budget = %d, want %d", n, budget)
	}
}

// BenchmarkBrownoutSpeculation runs the acceptance scenario end to end —
// the seeded brownout workload with one worker at factor 8, hedging off vs
// on — reporting each mode's simulated makespan so the recovery stays
// visible in BENCH_speculation.json across changes.
func BenchmarkBrownoutSpeculation(b *testing.B) {
	bench := func(b *testing.B, speculate bool) {
		var wall float64
		for i := 0; i < b.N; i++ {
			cfg := testSession(42)
			cfg.ChaosSpec = "slow worker=1 at=100ms factor=8"
			cfg.Dask.ProxyThresholdBytes = 1 << 18
			cfg.Speculation.Enabled = speculate
			wf := &brownoutWorkflow{width: 8}
			art, err := Run(cfg, wf)
			if err != nil {
				b.Fatal(err)
			}
			if wf.graphErr != "" {
				b.Fatalf("graph erred: %s", wf.graphErr)
			}
			wall = art.Meta.WallSeconds
		}
		b.ReportMetric(wall, "makespan-s")
	}
	b.Run("browned-out", func(b *testing.B) { bench(b, false) })
	b.Run("speculated", func(b *testing.B) { bench(b, true) })
}
