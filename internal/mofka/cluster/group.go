package cluster

import (
	"fmt"
	"sort"
	"sync"

	"taskprov/internal/mofka"
)

// GroupOptions configures a named consumer group.
type GroupOptions struct {
	// Prefetch is the per-poll pull granularity. Default 64.
	Prefetch int
	// MaxInflight bounds delivered-but-uncommitted events across the whole
	// group — the end-to-end backpressure credit pool. A Poll that would
	// exceed it returns no events until commits release credit. Default
	// 1024; negative means unlimited.
	MaxInflight int
	// FromCommitted starts each member at the group's committed cursors
	// instead of offset zero. Default behavior for groups is true unless
	// explicitly disabled with StartFromZero.
	StartFromZero bool
	// NoData skips payload fetching; events arrive metadata-only.
	NoData bool
}

// Group is a named consumer group over one cluster topic: its members share
// the topic's partitions (each partition is consumed by exactly one member
// per generation), commit cursors under the group's name, and draw from a
// shared in-flight credit pool. Membership changes trigger a rebalance that
// reassigns partitions range-wise and bumps the generation; members pick up
// their new assignment on their next Poll, resuming from committed cursors.
type Group struct {
	c     *Cluster
	name  string
	topic string
	parts int
	opts  GroupOptions

	mu       sync.Mutex
	gen      uint64
	members  []*GroupConsumer
	inflight int
	nextID   int
}

// ConsumerGroup opens (or creates) the named group over topic. Groups with
// the same name share nothing across ConsumerGroup calls — one *Group value
// coordinates one process's members; cross-process coordination goes
// through the shared committed cursors.
func (c *Cluster) ConsumerGroup(name, topic string, opts GroupOptions) (*Group, error) {
	if name == "" {
		return nil, fmt.Errorf("cluster: consumer group needs a name")
	}
	t, err := c.Topic(topic)
	if err != nil {
		return nil, err
	}
	if opts.Prefetch <= 0 {
		opts.Prefetch = 64
	}
	if opts.MaxInflight == 0 {
		opts.MaxInflight = 1024
	}
	return &Group{c: c, name: name, topic: topic, parts: t.PartitionCount(), opts: opts}, nil
}

// Name returns the group name.
func (g *Group) Name() string { return g.name }

// Generation returns the current rebalance generation.
func (g *Group) Generation() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.gen
}

// Join adds a member and rebalances. The returned consumer is
// single-goroutine (like a mofka.Consumer).
func (g *Group) Join() (*GroupConsumer, error) {
	g.mu.Lock()
	if g.c.IsClosed() {
		g.mu.Unlock()
		return nil, ErrClosed
	}
	m := &GroupConsumer{
		g:    g,
		id:   g.nextID,
		next: make(map[int]uint64),
	}
	g.nextID++
	g.members = append(g.members, m)
	ev := g.rebalanceLocked()
	g.mu.Unlock()
	g.c.health.emit([]Event{ev})
	return m, nil
}

// rebalanceLocked reassigns partitions range-wise across current members in
// join order and bumps the generation. Caller holds g.mu.
func (g *Group) rebalanceLocked() Event {
	g.gen++
	n := len(g.members)
	for i, m := range g.members {
		m.mu.Lock()
		m.assigned = m.assigned[:0]
		if n > 0 {
			per := g.parts / n
			extra := g.parts % n
			lo := i*per + min(i, extra)
			hi := lo + per
			if i < extra {
				hi++
			}
			for p := lo; p < hi; p++ {
				m.assigned = append(m.assigned, p)
			}
		}
		m.gen = g.gen
		m.dirty = true
		m.mu.Unlock()
	}
	return Event{
		Kind: EventGroupRebalance, Node: -1, Topic: g.topic, Partition: -1,
		At:     g.c.cfg.NowSeconds(),
		Detail: fmt.Sprintf("group %s generation %d: %d members over %d partitions", g.name, g.gen, n, g.parts),
	}
}

// Assignments returns the current partition assignment per member id.
func (g *Group) Assignments() map[int][]int {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[int][]int, len(g.members))
	for _, m := range g.members {
		m.mu.Lock()
		out[m.id] = append([]int(nil), m.assigned...)
		m.mu.Unlock()
	}
	return out
}

// Inflight returns delivered-but-uncommitted events across the group.
func (g *Group) Inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight
}

// acquire takes up to want credits and returns how many were granted.
func (g *Group) acquire(want int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.opts.MaxInflight < 0 {
		return want
	}
	free := g.opts.MaxInflight - g.inflight
	if free <= 0 {
		return 0
	}
	if want > free {
		want = free
	}
	g.inflight += want
	return want
}

func (g *Group) release(n int) {
	g.mu.Lock()
	g.inflight -= n
	if g.inflight < 0 {
		g.inflight = 0
	}
	g.mu.Unlock()
}

// GroupConsumer is one member of a consumer group. Not safe for concurrent
// use (one goroutine per member, like mofka.Consumer).
type GroupConsumer struct {
	g  *Group
	id int

	mu       sync.Mutex
	assigned []int
	gen      uint64
	dirty    bool // assignment changed: reload cursors on next Poll
	pending  int  // events delivered to this member, not yet released to the pool

	next map[int]uint64
	rr   int
	left bool
}

// ID returns the member's id within its group.
func (m *GroupConsumer) ID() int { return m.id }

// Assignment returns the partitions currently assigned to this member.
func (m *GroupConsumer) Assignment() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]int(nil), m.assigned...)
}

// refresh adopts a new assignment after a rebalance: cursors reload from
// the group's committed state, so a partition that moved between members
// resumes exactly at its last commit (uncommitted deliveries are
// redelivered to the new owner — at-least-once across rebalances).
func (m *GroupConsumer) refresh() error {
	m.mu.Lock()
	if !m.dirty {
		m.mu.Unlock()
		return nil
	}
	m.dirty = false
	assigned := append([]int(nil), m.assigned...)
	m.mu.Unlock()

	next := make(map[int]uint64, len(assigned))
	for _, p := range assigned {
		if m.g.opts.StartFromZero {
			next[p] = 0
		} else {
			next[p] = m.g.c.LoadCursor(m.g.name, m.g.topic, p)
		}
	}
	m.mu.Lock()
	m.next = next
	m.mu.Unlock()
	return nil
}

// Poll returns up to max unread events from the member's assigned
// partitions, bounded by the group's in-flight credit pool. An empty return
// means either no unread events or no available credit (commit to release
// credit).
func (m *GroupConsumer) Poll(max int) ([]mofka.Event, error) {
	if m.left {
		return nil, fmt.Errorf("cluster: consumer left group %s", m.g.name)
	}
	if err := m.refresh(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	assigned := append([]int(nil), m.assigned...)
	m.mu.Unlock()
	if len(assigned) == 0 {
		return nil, nil
	}

	var out []mofka.Event
	granted := m.g.acquire(max)
	if granted == 0 {
		return nil, nil
	}
	used := 0
	// Round-robin across assigned partitions, reading the acked prefix.
	for range assigned {
		if used >= granted {
			break
		}
		p := assigned[m.rr%len(assigned)]
		m.rr++
		want := granted - used
		if want > m.g.opts.Prefetch {
			want = m.g.opts.Prefetch
		}
		evs, err := m.g.c.Read(m.g.topic, p, m.next[p], want, !m.g.opts.NoData)
		if err != nil {
			m.g.release(granted - used)
			m.charge(used)
			return out, err
		}
		if len(evs) == 0 {
			continue
		}
		m.next[p] = evs[len(evs)-1].ID + 1
		out = append(out, evs...)
		used += len(evs)
	}
	if used < granted {
		m.g.release(granted - used)
	}
	m.charge(used)
	return out, nil
}

// charge records n delivered events against this member, so Commit and
// Leave can release exactly what is still outstanding.
func (m *GroupConsumer) charge(n int) {
	m.mu.Lock()
	m.pending += n
	m.mu.Unlock()
}

// settle forgets up to n outstanding events and returns how many were
// actually outstanding — the amount safe to release back to the pool.
func (m *GroupConsumer) settle(n int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n > m.pending {
		n = m.pending
	}
	m.pending -= n
	return n
}

// Commit durably records the batch as processed under the group's name (one
// replicated cursor write per distinct partition, highest offset wins) and
// releases the batch's in-flight credits. Every partition's cursor write is
// attempted even if an earlier one fails; the first error is returned. The
// batch's credits are released in every case — otherwise a batch dropped
// after a failed Commit would leak its credits and eventually starve
// Poll — so a failed Commit must not be retried with the same batch: the
// uncommitted partitions simply stay at their previous cursor and their
// events are redelivered after the next rebalance or restart
// (at-least-once, the group's documented contract).
func (m *GroupConsumer) Commit(evs []mofka.Event) error {
	if len(evs) == 0 {
		return nil
	}
	defer m.g.release(m.settle(len(evs)))
	high := make(map[int]uint64, 2)
	for _, ev := range evs {
		if next := ev.ID + 1; next > high[ev.Partition] {
			high[ev.Partition] = next
		}
	}
	parts := make([]int, 0, len(high))
	for p := range high {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	var firstErr error
	for _, p := range parts {
		if err := m.g.c.CommitCursor(m.g.name, m.g.topic, p, high[p]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Lag reports, per assigned partition, acknowledged events this member has
// not yet pulled.
func (m *GroupConsumer) Lag() map[int]uint64 {
	m.mu.Lock()
	assigned := append([]int(nil), m.assigned...)
	m.mu.Unlock()
	out := make(map[int]uint64, len(assigned))
	for _, p := range assigned {
		length, err := m.g.c.Length(m.g.topic, p)
		if err != nil {
			continue
		}
		if next := m.next[p]; length > next {
			out[p] = length - next
		} else {
			out[p] = 0
		}
	}
	return out
}

// Leave removes the member from the group, releases any credits the member
// still holds (its undelivered-to-commit events redeliver to the partitions'
// next owners), and rebalances the remainder.
func (m *GroupConsumer) Leave() {
	if m.left {
		return
	}
	m.left = true
	m.mu.Lock()
	outstanding := m.pending
	m.pending = 0
	m.mu.Unlock()
	if outstanding > 0 {
		m.g.release(outstanding)
	}
	g := m.g
	g.mu.Lock()
	for i, mm := range g.members {
		if mm == m {
			g.members = append(g.members[:i], g.members[i+1:]...)
			break
		}
	}
	ev := g.rebalanceLocked()
	g.mu.Unlock()
	g.c.health.emit([]Event{ev})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
