// Package platform models the hardware layer of an HPC system for the
// characterization framework: compute nodes with per-node performance
// factors, a two-level switch fabric with distance-dependent latency, and
// NIC bandwidth sharing. It is calibrated loosely on ALCF Polaris (one
// 32-core AMD EPYC 7543P per node, Slingshot 11 NICs), the platform used in
// the paper's evaluation.
//
// The model's purpose is not cycle accuracy but exposing the paper's
// variability sources: which switch each allocated node landed on, node-to-
// node performance spread, and contention on shared links.
package platform

import (
	"fmt"

	"taskprov/internal/sim"
)

// Config describes a cluster model. The zero value is not useful; start from
// Polaris() or Small() and override fields.
type Config struct {
	Name         string // platform name recorded in provenance metadata
	Nodes        int    // number of allocated compute nodes
	CoresPerNode int
	MemPerNode   int64 // bytes
	GPUsPerNode  int
	Switches     int // leaf switches nodes are randomly attached to

	// Network timing. Latency is sampled per message with lognormal jitter
	// (LatencyCV); bandwidth is shared on the receiver NIC.
	IntraNodeLatency   sim.Time
	SameSwitchLatency  sim.Time
	CrossSwitchLatency sim.Time
	LatencyCV          float64

	NICBandwidth       float64 // bytes/s per node NIC (inter-node transfers)
	IntraNodeBandwidth float64 // bytes/s for on-node transfers (memory copy)
	BandwidthCV        float64 // per-transfer multiplicative jitter

	// NodeSpeedCV spreads a per-node compute speed factor around 1.0,
	// modeling the paper's observation that "allocated nodes may vary in
	// performance".
	NodeSpeedCV float64

	// MessageOverhead is the fixed software cost added to every transfer
	// (serialization, event-loop dispatch).
	MessageOverhead sim.Time
}

// Polaris returns a configuration modeled on the ALCF Polaris system used in
// the paper: Slingshot 11 network, 32-core EPYC Milan nodes, 512 GB RAM.
func Polaris() Config {
	return Config{
		Name:               "polaris-sim",
		Nodes:              2,
		CoresPerNode:       32,
		MemPerNode:         512 << 30,
		GPUsPerNode:        4,
		Switches:           4,
		IntraNodeLatency:   sim.Microseconds(3),
		SameSwitchLatency:  sim.Microseconds(12),
		CrossSwitchLatency: sim.Microseconds(30),
		LatencyCV:          0.25,
		NICBandwidth:       20e9, // ~ a pair of Slingshot 11 adapters, derated
		IntraNodeBandwidth: 80e9,
		BandwidthCV:        0.15,
		NodeSpeedCV:        0.02,
		MessageOverhead:    sim.Microseconds(150),
	}
}

// Small returns a tiny configuration convenient for unit tests.
func Small() Config {
	c := Polaris()
	c.Name = "test-sim"
	c.Nodes = 2
	c.CoresPerNode = 8
	c.Switches = 2
	return c
}

// Node is one allocated compute node.
type Node struct {
	ID       int
	Hostname string
	Switch   int     // leaf switch this node's NIC is attached to
	Speed    float64 // compute speed factor, ~1.0
	cluster  *Cluster
	nic      *sim.SharedServer // inbound NIC bandwidth
	mem      *sim.SharedServer // on-node copy bandwidth
}

// Cluster is an instantiated platform model bound to a simulation kernel.
type Cluster struct {
	cfg    Config
	kernel *sim.Kernel
	nodes  []*Node
	lat    *sim.RNG
	bw     *sim.RNG

	// linkFactor holds per-directed-link service-time multipliers installed
	// by fault injection: a factor f > 1 on (src, dst) makes every transfer
	// on that link take f times longer (degraded cable, congested uplink —
	// the gray-failure analogue of a kill). Factor 1 entries are removed.
	linkFactor map[[2]int]float64
}

// New builds a cluster on kernel k. Node-to-switch placement and per-node
// speed factors are drawn from the kernel's seeded RNG: two runs with
// different seeds get different placements, which is one of the paper's
// principal sources of run-to-run variability.
func New(k *sim.Kernel, cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		panic("platform: config needs at least one node")
	}
	if cfg.Switches <= 0 {
		cfg.Switches = 1
	}
	c := &Cluster{
		cfg:    cfg,
		kernel: k,
		lat:    k.RNG("platform/latency"),
		bw:     k.RNG("platform/bandwidth"),
	}
	place := k.RNG("platform/placement")
	speed := k.RNG("platform/nodespeed")
	for i := 0; i < cfg.Nodes; i++ {
		sf := 1.0
		if cfg.NodeSpeedCV > 0 {
			sf = speed.Normal(1.0, cfg.NodeSpeedCV)
			if sf < 0.5 {
				sf = 0.5
			}
		}
		n := &Node{
			ID:       i,
			Hostname: fmt.Sprintf("nid%05d", 1000+place.Intn(4000)*10+i),
			Switch:   place.Intn(cfg.Switches),
			Speed:    sf,
			cluster:  c,
		}
		n.nic = sim.NewSharedServer(k, fmt.Sprintf("nic/%s", n.Hostname), cfg.NICBandwidth, 0)
		n.mem = sim.NewSharedServer(k, fmt.Sprintf("mem/%s", n.Hostname), cfg.IntraNodeBandwidth, 0)
		c.nodes = append(c.nodes, n)
	}
	return c
}

// Config returns the configuration the cluster was built from.
func (c *Cluster) Config() Config { return c.cfg }

// Kernel returns the simulation kernel the cluster is bound to.
func (c *Cluster) Kernel() *sim.Kernel { return c.kernel }

// Nodes returns the allocated nodes in ID order.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Node returns the node with the given ID.
func (c *Cluster) Node(id int) *Node { return c.nodes[id] }

// SameNode reports whether two nodes are the same physical node.
func SameNode(a, b *Node) bool { return a == b }

// SetLinkFactor installs (or, with factor <= 1, clears) a service-time
// multiplier on the directed link src → dst. Transfers on a degraded link
// pay factor times the latency and move factor times the effective bytes,
// modeling a browned-out cable or congested switch uplink. Node IDs are
// validated by the caller (chaos arms these from a parsed plan).
func (c *Cluster) SetLinkFactor(src, dst int, factor float64) {
	key := [2]int{src, dst}
	if factor <= 1 {
		delete(c.linkFactor, key)
		return
	}
	if c.linkFactor == nil {
		c.linkFactor = make(map[[2]int]float64)
	}
	c.linkFactor[key] = factor
}

// LinkFactor reports the current multiplier on the directed link src → dst
// (1 when undegraded).
func (c *Cluster) LinkFactor(src, dst int) float64 {
	if f, ok := c.linkFactor[[2]int{src, dst}]; ok {
		return f
	}
	return 1
}

// latency samples the one-way message latency between two nodes.
func (c *Cluster) latency(from, to *Node) sim.Time {
	var base sim.Time
	switch {
	case from == to:
		base = c.cfg.IntraNodeLatency
	case from.Switch == to.Switch:
		base = c.cfg.SameSwitchLatency
	default:
		base = c.cfg.CrossSwitchLatency
	}
	return c.lat.JitterTime(base, c.cfg.LatencyCV)
}

// Transfer models moving size bytes from node `from` to node `to`. The done
// callback receives the total elapsed virtual time once the last byte lands.
// Inter-node transfers share the receiver's NIC; intra-node transfers share
// the node's memory bandwidth. A zero-size transfer still pays latency and
// software overhead (matching small control messages).
func (c *Cluster) Transfer(from, to *Node, size int64, done func(elapsed sim.Time)) {
	start := c.kernel.Now()
	lat := c.latency(from, to) + c.cfg.MessageOverhead
	server := to.nic
	if from == to {
		server = to.mem
	}
	bytes := float64(size)
	if c.cfg.BandwidthCV > 0 && bytes > 0 {
		// Jitter the effective transfer by inflating the work.
		bytes = c.bw.LogNormalMean(bytes, c.cfg.BandwidthCV)
	}
	if f := c.LinkFactor(from.ID, to.ID); f > 1 {
		lat = sim.Time(float64(lat) * f)
		bytes *= f
	}
	c.kernel.After(lat, func() {
		server.Submit(bytes, func() {
			if done != nil {
				done(c.kernel.Now() - start)
			}
		})
	})
}

// ComputeDuration scales a nominal task duration by the executing node's
// speed factor. Callers layer their own per-task noise on top.
func (n *Node) ComputeDuration(nominal sim.Time) sim.Time {
	return sim.Time(float64(nominal) / n.Speed)
}

// NICServer exposes the node's inbound NIC resource (used by tests and by
// the PFS model to co-locate I/O traffic with communication traffic).
func (n *Node) NICServer() *sim.SharedServer { return n.nic }

// Describe returns the hardware metadata captured in the provenance chart's
// hardware-infrastructure layer (Fig. 1 of the paper).
func (c *Cluster) Describe() Description {
	d := Description{
		Platform:     c.cfg.Name,
		Nodes:        len(c.nodes),
		CoresPerNode: c.cfg.CoresPerNode,
		MemPerNode:   c.cfg.MemPerNode,
		GPUsPerNode:  c.cfg.GPUsPerNode,
		Switches:     c.cfg.Switches,
	}
	for _, n := range c.nodes {
		d.NodeList = append(d.NodeList, NodeDescription{
			Hostname: n.Hostname, Switch: n.Switch, Speed: n.Speed,
		})
	}
	return d
}

// Description is the serializable hardware-layer metadata.
type Description struct {
	Platform     string            `json:"platform"`
	Nodes        int               `json:"nodes"`
	CoresPerNode int               `json:"cores_per_node"`
	MemPerNode   int64             `json:"mem_per_node"`
	GPUsPerNode  int               `json:"gpus_per_node"`
	Switches     int               `json:"switches"`
	NodeList     []NodeDescription `json:"node_list"`
}

// NodeDescription records one node's placement and measured speed factor.
type NodeDescription struct {
	Hostname string  `json:"hostname"`
	Switch   int     `json:"switch"`
	Speed    float64 `json:"speed"`
}
