package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"taskprov/internal/mofka"
)

// Durable cluster layout:
//
//	<DataDir>/cluster.json        deployment shape (broker count, RF, quorum)
//	<DataDir>/node-<NN>/...       one standard broker data directory per node
//
// Each node directory is exactly what a standalone durable broker writes —
// topics/<name>/p<NNNN>/*.seg WAL segments plus cursors.json — so every
// existing WAL tool (recovery, torn-tail truncation, post-mortem loading)
// applies per node unchanged.

const clusterMetaFile = "cluster.json"

type clusterMeta struct {
	Brokers           int `json:"brokers"`
	ReplicationFactor int `json:"replication_factor"`
	Quorum            int `json:"quorum"`
}

func nodeDir(dataDir string, i int) string {
	return filepath.Join(dataDir, fmt.Sprintf("node-%02d", i))
}

func writeClusterMeta(dataDir string, m clusterMeta) error {
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return fmt.Errorf("cluster: data dir: %w", err)
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dataDir, ".tmp-cluster-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.Remove(tmp.Name()) }()
	if _, err := tmp.Write(b); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dataDir, clusterMetaFile))
}

func loadClusterMeta(dataDir string) (clusterMeta, bool, error) {
	b, err := os.ReadFile(filepath.Join(dataDir, clusterMetaFile))
	if os.IsNotExist(err) {
		return clusterMeta{}, false, nil
	}
	if err != nil {
		return clusterMeta{}, false, fmt.Errorf("cluster: read %s: %w", clusterMetaFile, err)
	}
	var m clusterMeta
	if err := json.Unmarshal(b, &m); err != nil {
		return clusterMeta{}, false, fmt.Errorf("cluster: corrupt %s: %w", clusterMetaFile, err)
	}
	return m, true, nil
}

// IsClusterDir reports whether dir looks like a durable cluster data
// directory. perfrecup's loader dispatches on it before trying the
// single-broker and event-log formats.
func IsClusterDir(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, clusterMetaFile))
	return err == nil
}

// OpenPostMortem loads a durable cluster directory for analysis without any
// live broker process and merges it into one read-only in-memory broker:
// for every partition the longest recovered replica log wins (replica logs
// are prefix-consistent, so the longest is a superset of the others), and
// for every consumer cursor the maximum across node cursor stores wins.
// The on-disk state is never modified.
func OpenPostMortem(dataDir string) (*mofka.Broker, error) {
	meta, ok, err := loadClusterMeta(dataDir)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("cluster: %s is not a cluster data directory", dataDir)
	}

	type loaded struct {
		id int
		b  *mofka.Broker
	}
	var nodes []loaded
	for i := 0; i < meta.Brokers; i++ {
		dir := nodeDir(dataDir, i)
		if !mofka.IsDataDir(dir) {
			continue // node never wrote anything (or directory lost)
		}
		nb, err := mofka.OpenPostMortem(dir)
		if err != nil {
			return nil, fmt.Errorf("cluster: load node %d: %w", i, err)
		}
		nodes = append(nodes, loaded{i, nb})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: %s holds no recoverable node directories", dataDir)
	}

	view := mofka.NewStandaloneBroker()

	// Topic union across nodes; config from the first node holding it.
	seen := make(map[string]bool)
	for _, n := range nodes {
		for _, name := range n.b.Topics() {
			if seen[name] {
				continue
			}
			seen[name] = true
			src, err := n.b.OpenTopic(name)
			if err != nil {
				return nil, err
			}
			cfg := src.Config()
			vt, err := view.CreateTopic(cfg)
			if err != nil {
				return nil, err
			}
			for pi := 0; pi < cfg.Partitions; pi++ {
				// Longest replica log holds every acknowledged event.
				var donor *mofka.Partition
				var donorLen uint64
				for _, m := range nodes {
					mt, err := m.b.OpenTopic(name)
					if err != nil {
						continue
					}
					mp, err := mt.Partition(pi)
					if err != nil {
						continue
					}
					if l := mp.Length(); donor == nil || l > donorLen {
						donor, donorLen = mp, l
					}
				}
				if donor == nil || donorLen == 0 {
					continue
				}
				vp, err := vt.Partition(pi)
				if err != nil {
					return nil, err
				}
				if err := copyPartition(donor, vp, donorLen); err != nil {
					return nil, fmt.Errorf("cluster: merge %s[%d]: %w", name, pi, err)
				}
			}
		}
	}

	// Cursors: max across node stores per (consumer, topic, partition).
	type ckey struct {
		consumer, topic string
		part            int
	}
	cursors := make(map[ckey]uint64)
	for _, n := range nodes {
		for _, cur := range n.b.Cursors() {
			k := ckey{cur.Consumer, cur.Topic, cur.Partition}
			if cur.Next > cursors[k] {
				cursors[k] = cur.Next
			}
		}
	}
	for k, next := range cursors {
		if err := view.CommitCursor(k.consumer, k.topic, k.part, next); err != nil {
			return nil, err
		}
	}
	return view, nil
}

func copyPartition(src, dst *mofka.Partition, n uint64) error {
	var from uint64
	for from < n {
		evs, err := src.ReadFrom(from, 1024, true)
		if err != nil {
			return err
		}
		if len(evs) == 0 {
			break
		}
		metas := make([][]byte, len(evs))
		datas := make([][]byte, len(evs))
		for i, ev := range evs {
			metas[i] = ev.Metadata
			datas[i] = ev.Data
		}
		if err := dst.Append(metas, datas); err != nil {
			return err
		}
		from += uint64(len(evs))
	}
	return nil
}
