// Ablation example: quantify two of the framework's design trade-offs on
// the ImageProcessing workflow — work stealing (balance vs extra transfers)
// and DXT buffer sizing (trace completeness vs memory) — using nothing but
// the public run API and PERFRECUP views.
//
//	go run ./examples/ablation
package main

import (
	"fmt"
	"log"

	"taskprov/internal/core"
	"taskprov/internal/perfrecup"
	"taskprov/internal/workloads"
)

func main() {
	fmt.Println("work stealing ablation (imageprocessing, seed 2):")
	for _, stealing := range []bool{true, false} {
		wf, err := workloads.New("imageprocessing")
		if err != nil {
			log.Fatal(err)
		}
		cfg := workloads.DefaultSession("imageprocessing", fmt.Sprintf("ab-steal-%v", stealing), 2)
		cfg.Dask.WorkStealing = stealing
		art, err := core.Run(cfg, wf)
		if err != nil {
			log.Fatal(err)
		}
		comms, err := art.TotalCommunications()
		if err != nil {
			log.Fatal(err)
		}
		util, err := perfrecup.WorkerUtilizationView(art)
		if err != nil {
			log.Fatal(err)
		}
		var busiest, idlest float64 = 0, 1e18
		for i := 0; i < util.NRows(); i++ {
			v := util.Col("mean_executing").Float(i)
			if v > busiest {
				busiest = v
			}
			if v < idlest {
				idlest = v
			}
		}
		fmt.Printf("  stealing=%-5v wall=%.1fs transfers=%-5d worker mean-executing spread=[%.2f, %.2f]\n",
			stealing, art.Meta.WallSeconds, comms, idlest, busiest)
	}

	fmt.Println("\nDXT buffer ablation (resnet152, seed 2) — the footnote-9 effect:")
	for _, buf := range []int{64, 287, 4096} {
		wf, err := workloads.New("resnet152")
		if err != nil {
			log.Fatal(err)
		}
		cfg := workloads.DefaultSession("resnet152", fmt.Sprintf("ab-dxt-%d", buf), 2)
		cfg.DXTBufferSegments = buf
		art, err := core.Run(cfg, wf)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  buffer=%-5d observed=%-5d actual=%-5d complete=%.0f%%\n",
			buf, art.TotalIOOps(), art.TotalPosixOps(),
			100*float64(art.TotalIOOps())/float64(art.TotalPosixOps()))
	}
}
