// ImageProcessing example: run the paper's image pipeline (3 task graphs:
// normalize+grayscale, Gaussian filter, segmentation) under full
// instrumentation and print the Fig. 4 per-thread I/O timeline — three read
// phases, each followed by a write phase, with bursts at task-graph
// boundaries.
//
//	go run ./examples/imageprocessing
package main

import (
	"fmt"
	"log"

	"taskprov/internal/core"
	"taskprov/internal/perfrecup"
	"taskprov/internal/workloads"
)

func main() {
	wf, err := workloads.New("imageprocessing")
	if err != nil {
		log.Fatal(err)
	}
	cfg := workloads.DefaultSession("imageprocessing", "ip-example", 3)
	art, err := core.Run(cfg, wf)
	if err != nil {
		log.Fatal(err)
	}
	row, err := perfrecup.RenderTableIRow(art)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(row)
	fmt.Printf("wall time: %.1fs\n\n", art.Meta.WallSeconds)

	timeline, err := perfrecup.IOTimeline(art, 110, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fig. 4 — per-thread I/O over time (R=4MiB reads, W=large writes, w=KB writes):")
	fmt.Print(timeline)

	// Quantify the three-phase structure: reads and writes per graph.
	att, err := perfrecup.AttributeIOToTasks(art)
	if err != nil {
		log.Fatal(err)
	}
	phase := map[string][2]int{}
	for i := 0; i < att.NRows(); i++ {
		p := att.Col("prefix").Str(i)
		c := phase[p]
		if att.Col("op").Str(i) == "read" {
			c[0]++
		} else {
			c[1]++
		}
		phase[p] = c
	}
	fmt.Println("\nI/O per task category (reads/writes):")
	for _, p := range []string{"imread", "store-zarr", "readzarr", "store-small", "readsmall", "report"} {
		c := phase[p]
		fmt.Printf("  %-12s %5d reads %5d writes\n", p, c[0], c[1])
	}
}
