package perfrecup

import (
	"fmt"
	"sort"

	"taskprov/internal/core"
	"taskprov/internal/perfrecup/frame"
)

// AttributeIOToTasks performs the paper's central fusion (§III-E3): each
// Darshan DXT segment is attributed to the Dask task that was executing on
// the same (hostname, pthread ID) at the segment's timestamps. The result
// is the DXT view extended with "key" and "prefix" columns (empty when no
// task matches — e.g. I/O from truncated or out-of-window records).
func AttributeIOToTasks(art *core.RunArtifacts) (*frame.Frame, error) {
	dxt, err := DXTView(art)
	if err != nil {
		return nil, err
	}
	execs, err := ExecutionsView(art)
	if err != nil {
		return nil, err
	}
	type window struct {
		start, stop float64
		key, prefix string
	}
	// Index task windows by (hostname, tid), sorted by start.
	byThread := make(map[string][]window)
	hostCol := execs.Col("hostname")
	tidCol := execs.Col("thread_id")
	startCol := execs.Col("start")
	stopCol := execs.Col("stop")
	keyCol := execs.Col("key")
	prefCol := execs.Col("prefix")
	threadKey := func(host string, tid int64) string {
		return fmt.Sprintf("%s\x00%d", host, tid)
	}
	for i := 0; i < execs.NRows(); i++ {
		k := threadKey(hostCol.Str(i), tidCol.Int(i))
		byThread[k] = append(byThread[k], window{
			start: startCol.Float(i), stop: stopCol.Float(i),
			key: keyCol.Str(i), prefix: prefCol.Str(i),
		})
	}
	for _, ws := range byThread {
		sort.Slice(ws, func(a, b int) bool { return ws[a].start < ws[b].start })
	}

	n := dxt.NRows()
	keys := make([]string, n)
	prefixes := make([]string, n)
	dHost := dxt.Col("hostname")
	dTid := dxt.Col("thread_id")
	dStart := dxt.Col("start")
	for i := 0; i < n; i++ {
		ws := byThread[threadKey(dHost.Str(i), dTid.Int(i))]
		t := dStart.Float(i)
		// Binary search the last window starting at or before t.
		lo, hi := 0, len(ws)
		for lo < hi {
			mid := (lo + hi) / 2
			if ws[mid].start <= t {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > 0 {
			w := ws[lo-1]
			if t <= w.stop {
				keys[i] = w.key
				prefixes[i] = w.prefix
			}
		}
	}
	out := dxt.WithColumn(frame.Strings("key", keys...))
	return out.WithColumn(frame.Strings("prefix", prefixes...)), nil
}

// TaskIOSummary aggregates attributed I/O per task: operation count, bytes,
// and cumulative I/O time, joined back onto the executions view. Tasks with
// no I/O get zeros.
func TaskIOSummary(art *core.RunArtifacts) (*frame.Frame, error) {
	attributed, err := AttributeIOToTasks(art)
	if err != nil {
		return nil, err
	}
	execs, err := ExecutionsView(art)
	if err != nil {
		return nil, err
	}
	withIO := attributed.Filter(func(i int) bool { return attributed.Col("key").Str(i) != "" })
	if withIO.NRows() == 0 {
		zero := make([]float64, execs.NRows())
		zcount := make([]int64, execs.NRows())
		out := execs.WithColumn(frame.Ints("io_ops", zcount...))
		out = out.WithColumn(frame.Floats("io_bytes", zero...))
		return out.WithColumn(frame.Floats("io_time", zero...)), nil
	}
	agg := withIO.GroupBy("key").Agg(
		frame.Agg{Col: "length", Fn: frame.Count, As: "io_ops"},
		frame.Agg{Col: "length", Fn: frame.Sum, As: "io_bytes"},
		frame.Agg{Col: "duration", Fn: frame.Sum, As: "io_time"},
	)
	joined, err := execs.Join(agg, frame.Left, "key")
	if err != nil {
		return nil, err
	}
	// Left-join misses leave NaN/0; normalize NaNs to 0 for the float cols.
	n := joined.NRows()
	ops := make([]int64, n)
	bytes := make([]float64, n)
	iotime := make([]float64, n)
	opsCol := joined.Col("io_ops")
	bCol := joined.Col("io_bytes")
	tCol := joined.Col("io_time")
	for i := 0; i < n; i++ {
		ops[i] = opsCol.Int(i)
		if v := bCol.Float(i); v == v { // not NaN
			bytes[i] = v
		}
		if v := tCol.Float(i); v == v {
			iotime[i] = v
		}
	}
	out := joined.WithColumn(frame.Ints("io_ops", ops...))
	out = out.WithColumn(frame.Floats("io_bytes", bytes...))
	return out.WithColumn(frame.Floats("io_time", iotime...)), nil
}
