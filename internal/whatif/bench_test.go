package whatif

import "testing"

// bench20k is a 20,000-task DAG (200 layers x 100 wide) over 8 workers x 4
// threads — the scale target for the analysis paths.
func bench20k(b *testing.B) *Model {
	b.Helper()
	m := syntheticModel(200, 100, 8, 4)
	if len(m.Tasks) != 20000 {
		b.Fatalf("synthetic DAG has %d tasks, want 20000", len(m.Tasks))
	}
	return m
}

func BenchmarkCriticalPath(b *testing.B) {
	m := bench20k(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := m.CriticalPath()
		if cp.MakespanSeconds <= 0 {
			b.Fatal("empty critical path")
		}
	}
}

func BenchmarkWhatIfReplay(b *testing.B) {
	m := bench20k(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Replay(Scenario{NetBandwidthScale: 0.5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSlack(b *testing.B) {
	m := bench20k(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := m.Slack(); len(s) != len(m.Tasks) {
			b.Fatal("bad slack size")
		}
	}
}
