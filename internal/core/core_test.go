package core

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"taskprov/internal/darshan"
	"taskprov/internal/dask"
	"taskprov/internal/mochi/mercury"
	"taskprov/internal/mofka"
	"taskprov/internal/pfs"
	"taskprov/internal/platform"
	"taskprov/internal/posixio"
	"taskprov/internal/sim"
)

// toyWorkflow: stage a few input files, read them in tasks, reduce.
type toyWorkflow struct {
	files int
}

func (t *toyWorkflow) Name() string { return "toy" }

func (t *toyWorkflow) Stage(env *Env) {
	for i := 0; i < t.files; i++ {
		env.PFS.CreateNow(fmt.Sprintf("/lus/in/f%03d", i), 8<<20)
	}
}

func (t *toyWorkflow) Run(p *sim.Proc, cl *dask.Client, env *Env) {
	g := dask.NewGraph(1)
	var deps []dask.TaskKey
	for i := 0; i < t.files; i++ {
		i := i
		key := dask.TaskKey(fmt.Sprintf("load-%03d", i))
		deps = append(deps, key)
		g.Add(&dask.TaskSpec{
			Key:        key,
			OutputSize: 8 << 20,
			Run: func(ctx *dask.TaskContext) {
				f, err := ctx.Open(fmt.Sprintf("/lus/in/f%03d", i), posixio.RDONLY)
				if err != nil {
					panic(err)
				}
				f.Read(ctx.Proc(), 8<<20)
				f.Close(ctx.Proc())
				ctx.Compute(sim.Milliseconds(50))
			},
		})
	}
	g.Add(&dask.TaskSpec{Key: "reduce-000", Deps: deps, EstDuration: sim.Milliseconds(30), OutputSize: 64})
	cl.SubmitAndWait(p, g)
}

func testSession(seed uint64) SessionConfig {
	cfg := DefaultSessionConfig("job-test", seed)
	cfg.Platform.NodeSpeedCV = 0
	cfg.PFS.InterferenceLoad = 0
	cfg.Dask.WorkersPerNode = 2
	cfg.Dask.ThreadsPerWorker = 2
	return cfg
}

func TestRunProducesArtifacts(t *testing.T) {
	art, err := Run(testSession(1), &toyWorkflow{files: 12})
	if err != nil {
		t.Fatal(err)
	}
	if art.WallTime <= 0 {
		t.Fatal("no wall time")
	}
	tasks, err := art.DistinctTasks()
	if err != nil || tasks != 13 {
		t.Fatalf("tasks = %d, %v", tasks, err)
	}
	graphs, err := art.TaskGraphs()
	if err != nil || graphs != 1 {
		t.Fatalf("graphs = %d, %v", graphs, err)
	}
	if files := art.DistinctFiles(); files != 12 {
		t.Fatalf("files = %d", files)
	}
	if ops := art.TotalIOOps(); ops != 12 {
		t.Fatalf("io ops = %d, want 12 reads", ops)
	}
	if len(art.DarshanLogs) != 4 {
		t.Fatalf("darshan logs = %d (one per worker)", len(art.DarshanLogs))
	}
	// Provenance metadata layers are present.
	m := art.Meta
	if m.Platform.Nodes != 2 || m.Storage.OSTs == 0 || m.Software.OS == "" {
		t.Fatalf("metadata incomplete: %+v", m)
	}
	if m.Job.Script == "" || m.DaskConfig.HeartbeatIntervalSec <= 0 {
		t.Fatalf("job/dask layers incomplete: %+v", m)
	}
	if m.WallSeconds <= 0 {
		t.Fatal("wall seconds missing")
	}
}

func TestEventStreamsDecode(t *testing.T) {
	art, err := Run(testSession(2), &toyWorkflow{files: 8})
	if err != nil {
		t.Fatal(err)
	}
	trans, err := DrainTopic(art.Broker, TopicTransitions)
	if err != nil || len(trans) == 0 {
		t.Fatalf("transitions = %d, %v", len(trans), err)
	}
	for _, m := range trans {
		tr := ParseTransition(m)
		if tr.Key == "" || tr.To == "" || tr.Location == "" {
			t.Fatalf("bad transition: %+v", tr)
		}
	}
	execs, err := DrainTopic(art.Broker, TopicExecutions)
	if err != nil || len(execs) != 9 {
		t.Fatalf("executions = %d, %v", len(execs), err)
	}
	for _, m := range execs {
		e := ParseExecution(m)
		if e.ThreadID == 0 || e.Stop <= e.Start || e.Hostname == "" {
			t.Fatalf("bad execution: %+v", e)
		}
	}
	metas, err := DrainTopic(art.Broker, TopicTaskMeta)
	if err != nil || len(metas) != 9 {
		t.Fatalf("task metas = %d, %v", len(metas), err)
	}
	tm := ParseTaskMeta(metas[len(metas)-1])
	if tm.Key == "" || tm.Prefix == "" {
		t.Fatalf("bad task meta: %+v", tm)
	}
}

func TestRoundTripEncodeParse(t *testing.T) {
	tr := dask.Transition{Key: "k-1", From: "waiting", To: "processing", Stimulus: "ready", Location: "scheduler", At: sim.Seconds(1.5)}
	if got := ParseTransition(TransitionEvent(tr)); got != tr {
		t.Fatalf("transition round trip: %+v vs %+v", got, tr)
	}
	ex := dask.TaskExecution{Key: "k-1", Worker: "tcp://n:40000", Hostname: "n", ThreadID: 1001, Start: sim.Seconds(1), Stop: sim.Seconds(2), OutputSize: 77, GraphID: 3,
		Files: []dask.FileEffect{{Path: "/lus/out.bin", SizeAfter: 77}}}
	if got := ParseExecution(ExecutionEvent(ex)); !reflect.DeepEqual(got, ex) {
		t.Fatalf("execution round trip: %+v vs %+v", got, ex)
	}
	tf := dask.Transfer{Key: "k-1", From: "a", To: "b", Bytes: 123, Start: sim.Seconds(1), Stop: sim.Seconds(2), SameNode: true}
	if got := ParseTransfer(TransferEvent(tf)); got != tf {
		t.Fatalf("transfer round trip: %+v vs %+v", got, tf)
	}
	ptf := dask.Transfer{Key: "k-2", From: "a", To: "b", Bytes: 1 << 20, Start: sim.Seconds(1), Stop: sim.Seconds(2),
		ViaProxy: true, ResolveLatency: sim.Milliseconds(35)}
	if got := ParseTransfer(TransferEvent(ptf)); got != ptf {
		t.Fatalf("proxied transfer round trip: %+v vs %+v", got, ptf)
	}
	pe := dask.ProxyEvent{Op: dask.ProxyOpResolve, Key: "k-2", Worker: "tcp://n:40001", Bytes: 1 << 20,
		Resident: 3 << 20, ResolveLatency: sim.Milliseconds(35), At: sim.Seconds(2)}
	if got := ParseProxyEvent(ProxyEventMeta(pe)); got != pe {
		t.Fatalf("proxy event round trip: %+v vs %+v", got, pe)
	}
	w := dask.Warning{Kind: dask.WarnGC, Worker: "w", Hostname: "h", At: sim.Seconds(3), Duration: sim.Seconds(0.25), Message: "gc"}
	if got := ParseWarning(WarningEvent(w)); got != w {
		t.Fatalf("warning round trip: %+v vs %+v", got, w)
	}
	hb := dask.WorkerMetrics{Worker: "w", At: sim.Seconds(4), Memory: 5, Executing: 6, Ready: 7}
	if got := ParseHeartbeat(HeartbeatEvent(hb)); got != hb {
		t.Fatalf("heartbeat round trip: %+v vs %+v", got, hb)
	}
	st := dask.StealEvent{Key: "k", Victim: "v", Thief: "t", At: sim.Seconds(5)}
	if got := ParseSteal(StealEventMeta(st)); got != st {
		t.Fatalf("steal round trip: %+v vs %+v", got, st)
	}
}

func TestDisableCollection(t *testing.T) {
	cfg := testSession(3)
	cfg.DisableCollection = true
	art, err := Run(cfg, &toyWorkflow{files: 4})
	if err != nil {
		t.Fatal(err)
	}
	if art.Collector != nil || len(art.DarshanLogs) != 0 {
		t.Fatal("collection artifacts present while disabled")
	}
	if len(art.Broker.Topics()) != 0 {
		t.Fatalf("topics = %v", art.Broker.Topics())
	}
	if art.WallTime <= 0 {
		t.Fatal("workflow did not run")
	}
}

func TestDeterministicArtifacts(t *testing.T) {
	runOnce := func() (int64, float64) {
		art, err := Run(testSession(7), &toyWorkflow{files: 10})
		if err != nil {
			t.Fatal(err)
		}
		comms, _ := art.TotalCommunications()
		return comms, art.Meta.WallSeconds
	}
	c1, w1 := runOnce()
	c2, w2 := runOnce()
	if c1 != c2 || w1 != w2 {
		t.Fatalf("same seed diverged: (%d, %v) vs (%d, %v)", c1, w1, c2, w2)
	}
}

func TestWriteLoadDirRoundTrip(t *testing.T) {
	art, err := Run(testSession(4), &toyWorkflow{files: 6})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "run-001")
	if err := art.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	// Files exist.
	if _, err := os.Stat(filepath.Join(dir, "metadata.json")); err != nil {
		t.Fatal(err)
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "darshan", "*.darshan")); len(m) != 4 {
		t.Fatalf("darshan files = %v", m)
	}

	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Workflow != "toy" || got.Meta.Seed != 4 {
		t.Fatalf("meta = %+v", got.Meta)
	}
	if len(got.DarshanLogs) != len(art.DarshanLogs) {
		t.Fatalf("darshan logs = %d", len(got.DarshanLogs))
	}
	origTasks, _ := art.DistinctTasks()
	gotTasks, _ := got.DistinctTasks()
	if origTasks != gotTasks {
		t.Fatalf("tasks after reload: %d vs %d", gotTasks, origTasks)
	}
	origComms, _ := art.TotalCommunications()
	gotComms, _ := got.TotalCommunications()
	if origComms != gotComms {
		t.Fatalf("comms after reload: %d vs %d", gotComms, origComms)
	}
	if got.TotalIOOps() != art.TotalIOOps() {
		t.Fatalf("ops after reload: %d vs %d", got.TotalIOOps(), art.TotalIOOps())
	}
}

func TestLoadDirMissing(t *testing.T) {
	if _, err := LoadDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing dir loaded")
	}
}

func TestCollectorCounts(t *testing.T) {
	art, err := Run(testSession(5), &toyWorkflow{files: 5})
	if err != nil {
		t.Fatal(err)
	}
	if art.Collector.EventCount(TopicExecutions) != 6 {
		t.Fatalf("execution events = %d", art.Collector.EventCount(TopicExecutions))
	}
	if art.Collector.TotalEvents() < 20 {
		t.Fatalf("total events = %d", art.Collector.TotalEvents())
	}
}

// Guard against unused imports in refactors.
var _ = platform.Polaris
var _ = pfs.Lustre

func TestInSituMonitor(t *testing.T) {
	// Start the monitor BEFORE the run: it consumes events live as the
	// producer flushes them, and after Stop has seen exactly what a
	// post-mortem drain sees.
	broker := mofka.NewStandaloneBroker()
	mon, err := NewInSituMonitor(broker)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testSession(21)
	art, err := RunOnBroker(cfg, &toyWorkflow{files: 10}, broker)
	if err != nil {
		t.Fatal(err)
	}
	mon.Stop()
	if got := mon.EventCount(TopicExecutions); got != 11 {
		t.Fatalf("in-situ executions = %d, want 11", got)
	}
	post, err := DrainTopic(art.Broker, TopicTransitions)
	if err != nil {
		t.Fatal(err)
	}
	if got := mon.EventCount(TopicTransitions); got != int64(len(post)) {
		t.Fatalf("in-situ transitions = %d, post-mortem = %d", got, len(post))
	}
	key, dur := mon.LongestTask()
	if key == "" || dur <= 0 {
		t.Fatalf("longest task = %q, %v", key, dur)
	}
	if !strings.Contains(mon.Snapshot(), "task-executions") {
		t.Fatalf("snapshot = %q", mon.Snapshot())
	}
}

func TestRemoteCollectorOverTCP(t *testing.T) {
	// A real mofkad-style broker behind TCP receives the provenance stream;
	// analysis pulls it back over the same wire.
	broker := mofka.NewStandaloneBroker()
	ep := mercury.NewEndpoint("mofkad")
	broker.RegisterRPCs(ep)
	srv, err := mercury.Serve(ep, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	cli, err := mercury.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cli.Close() }()
	remote := mofka.NewRemote(cli)
	rc, err := NewRemoteCollector(remote, 16)
	if err != nil {
		t.Fatal(err)
	}

	cfg := testSession(33)
	cfg.DisableCollection = true // the remote collector replaces the local one
	k := sim.NewKernel(cfg.Seed)
	plat := platform.New(k, cfg.Platform)
	fsys := pfs.New(k, cfg.PFS)
	px := posixio.NewFS(fsys)
	cluster := dask.NewCluster(k, plat, px, cfg.Dask, nil)
	cluster.AddSchedulerPlugin(rc.SchedulerPlugin())
	cluster.AddWorkerPlugin(rc.WorkerPlugin())
	wf := &toyWorkflow{files: 9}
	wf.Stage(&Env{Kernel: k, Platform: plat, PFS: fsys, FS: px, Cluster: cluster})
	cluster.Start()
	k.Go(func(p *sim.Proc) {
		cl := cluster.Client()
		cl.WaitForWorkers(p, len(cluster.Workers()))
		wf.Run(p, cl, nil)
		k.Stop()
	})
	k.Run()
	rc.Flush()

	// All executions arrived on the remote broker.
	evs, err := remote.Pull(TopicExecutions, 0, 0, 1000, false)
	if err != nil {
		t.Fatal(err)
	}
	evs2, err := remote.Pull(TopicExecutions, 1, 0, 1000, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(evs) + len(evs2); got != 10 {
		t.Fatalf("remote executions = %d, want 10", got)
	}
	pushed, flushes := rc.Stats()
	if pushed < 10 || flushes == 0 {
		t.Fatalf("stats = %d pushed, %d flushes", pushed, flushes)
	}
}

func TestSynthesizedLogs(t *testing.T) {
	art, err := Run(testSession(41), &toyWorkflow{files: 6})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := RenderSchedulerLog(art)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sched, "Receive graph 1 (7 tasks)") || !strings.Contains(sched, "Graph 1 complete") {
		t.Fatalf("scheduler log:\n%s", sched)
	}
	workers, err := art.WorkerAddrs()
	if err != nil || len(workers) == 0 {
		t.Fatalf("workers = %v, %v", workers, err)
	}
	wl, err := RenderWorkerLog(art, workers[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(wl, "Start worker at "+workers[0]) {
		t.Fatalf("worker log:\n%s", wl)
	}
	// WriteDir persists them.
	dir := filepath.Join(t.TempDir(), "run")
	if err := art.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "logs", "scheduler.log")); err != nil {
		t.Fatal(err)
	}
	m, _ := filepath.Glob(filepath.Join(dir, "logs", "worker-*.log"))
	if len(m) != len(workers) {
		t.Fatalf("worker logs = %d, want %d", len(m), len(workers))
	}
}

func TestRenderChart(t *testing.T) {
	art, err := Run(testSession(51), &toyWorkflow{files: 4})
	if err != nil {
		t.Fatal(err)
	}
	out := art.Meta.RenderChart()
	for _, want := range []string{
		"hardware infrastructure", "system software & job configuration",
		"application layer", "polaris-sim", "/lus/grand",
		"distributed.yaml", "job script", "package: darshan",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestOnlineIOTracer(t *testing.T) {
	// The future-work mode: POSIX operations stream to Mofka live, while
	// the wrapped Darshan runtime still builds its log.
	broker := mofka.NewStandaloneBroker()
	inner := darshan.NewRuntime(darshan.Config{JobID: "j", Rank: 0, Hostname: "n0", DXTEnabled: true})
	tracer, err := NewOnlineIOTracer(broker, mofka.ProducerOptions{BatchSize: 4}, inner, 0, "n0")
	if err != nil {
		t.Fatal(err)
	}
	rec := func(path string, off, n int64, s, e float64) posixio.OpRecord {
		return posixio.OpRecord{Path: path, TID: 9, Offset: off, Bytes: n,
			Start: sim.Seconds(s), End: sim.Seconds(e)}
	}
	tracer.OpenEvent(rec("/f", 0, 0, 0, 0.01), true)
	tracer.ReadEvent(rec("/f", 0, 4096, 0.1, 0.2))
	tracer.WriteEvent(rec("/f", 4096, 512, 0.3, 0.4))
	tracer.CloseEvent(rec("/f", 0, 0, 0.5, 0.5))
	if err := tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	metas, err := DrainTopic(broker, TopicIOTrace)
	if err != nil || len(metas) != 4 {
		t.Fatalf("streamed events = %d, %v", len(metas), err)
	}
	// Ordering is per-partition only (round-robin partitioner), so check
	// the multiset of operations and the identity fields.
	got := map[string]int{}
	for i, m := range metas {
		got[str(m, "op")]++
		if str(m, "hostname") != "n0" || uint64(num(m, "thread_id")) != 9 {
			t.Fatalf("event %d identity wrong: %v", i, m)
		}
	}
	for _, op := range []string{"create", "read", "write", "close"} {
		if got[op] != 1 {
			t.Fatalf("ops = %v", got)
		}
	}
	// The wrapped Darshan runtime saw everything too.
	log := inner.Snapshot()
	if log.TotalOps() != 2 {
		t.Fatalf("inner darshan ops = %d", log.TotalOps())
	}
	if fr, ok := log.Record("/f"); !ok || len(fr.DXT) != 2 {
		t.Fatal("inner darshan DXT missing")
	}
}

func TestOnlineIOTracerEndToEnd(t *testing.T) {
	// A full instrumented run with the online tracer wrapping each worker's
	// Darshan runtime: the io-trace topic must match the Darshan logs.
	broker := mofka.NewStandaloneBroker()
	cfg := testSession(61)
	k := sim.NewKernel(cfg.Seed)
	plat := platform.New(k, cfg.Platform)
	fsys := pfs.New(k, cfg.PFS)
	px := posixio.NewFS(fsys)
	var runtimes []*darshan.Runtime
	tracers := func(rank int, hostname string) posixio.Tracer {
		rt := darshan.NewRuntime(darshan.Config{JobID: cfg.JobID, Rank: rank, Hostname: hostname, DXTEnabled: true})
		runtimes = append(runtimes, rt)
		online, err := NewOnlineIOTracer(broker, mofka.ProducerOptions{BatchSize: 8}, rt, rank, hostname)
		if err != nil {
			t.Fatal(err)
		}
		onlineTracers = append(onlineTracers, online)
		return online
	}
	onlineTracers = nil
	cluster := dask.NewCluster(k, plat, px, cfg.Dask, tracers)
	wf := &toyWorkflow{files: 8}
	wf.Stage(&Env{Kernel: k, Platform: plat, PFS: fsys, FS: px, Cluster: cluster})
	cluster.Start()
	k.Go(func(p *sim.Proc) {
		cl := cluster.Client()
		cl.WaitForWorkers(p, len(cluster.Workers()))
		wf.Run(p, cl, nil)
		k.Stop()
	})
	k.Run()
	for _, o := range onlineTracers {
		if err := o.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	metas, err := DrainTopic(broker, TopicIOTrace)
	if err != nil {
		t.Fatal(err)
	}
	var streamedRW int
	for _, m := range metas {
		if op := str(m, "op"); op == "read" || op == "write" {
			streamedRW++
		}
	}
	var darshanRW int64
	for _, rt := range runtimes {
		_, r, w := rt.Totals()
		darshanRW += r + w
	}
	if int64(streamedRW) != darshanRW {
		t.Fatalf("streamed %d read/write events, darshan has %d", streamedRW, darshanRW)
	}
}

var onlineTracers []*OnlineIOTracer
