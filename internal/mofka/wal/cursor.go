package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// CursorStore is the small sidecar that persists consumer cursors next to a
// broker's event log, so Commit/LoadCursor survive restarts. The whole map
// is rewritten atomically (temp file + fsync + rename) on every update —
// cursors are tiny and commits are rare compared to appends, so simplicity
// wins over an incremental format.
type CursorStore struct {
	path string

	mu sync.Mutex
	m  map[string]uint64
}

// OpenCursorStore loads the cursor file at path, starting empty when it does
// not exist yet.
func OpenCursorStore(path string) (*CursorStore, error) {
	s := &CursorStore{path: path, m: make(map[string]uint64)}
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: open cursor store: %w", err)
	}
	if err := json.Unmarshal(b, &s.m); err != nil {
		return nil, fmt.Errorf("wal: corrupt cursor store %s: %w", path, err)
	}
	return s, nil
}

// Set records a cursor and persists the store durably.
func (s *CursorStore) Set(key string, next uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = next
	return s.flushLocked()
}

// Get returns a committed cursor.
func (s *CursorStore) Get(key string) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok
}

// All returns a copy of every committed cursor.
func (s *CursorStore) All() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.m))
	for k, v := range s.m {
		out[k] = v
	}
	return out
}

// flushLocked writes the map to a temp file, fsyncs it, and renames it over
// the store path, so a crash mid-write leaves the previous version intact.
func (s *CursorStore) flushLocked() error {
	b, err := json.Marshal(s.m)
	if err != nil {
		return fmt.Errorf("wal: encode cursors: %w", err)
	}
	dir := filepath.Dir(s.path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: cursor store dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".cursors-*")
	if err != nil {
		return fmt.Errorf("wal: cursor temp file: %w", err)
	}
	defer func() { _ = os.Remove(tmp.Name()) }() // no-op after the rename
	if _, err := tmp.Write(b); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("wal: write cursors: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("wal: sync cursors: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: close cursor temp: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		return fmt.Errorf("wal: install cursors: %w", err)
	}
	return nil
}
