// Package mercury is a small RPC fabric inspired by the Mochi suite's
// Mercury/Margo layer: named endpoints expose handlers, and clients call
// them by address. Two transports are provided — an in-process registry
// (the common case: Mofka runs in tandem with the workflow, in user space)
// and a length-prefixed TCP wire protocol for the standalone broker daemon.
package mercury

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
)

// Handler processes one RPC. It receives the request payload and returns the
// response payload. Returning an error propagates a remote error string to
// the caller.
type Handler func(req []byte) ([]byte, error)

// ErrNoEndpoint is returned when dialing an unregistered local address.
var ErrNoEndpoint = errors.New("mercury: no such endpoint")

// ErrNoRPC is returned when calling an RPC name the endpoint does not expose.
var ErrNoRPC = errors.New("mercury: no such rpc")

// RemoteError wraps an error string produced by a remote handler.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "mercury: remote: " + e.Msg }

// Endpoint is a service-side RPC dispatch table.
type Endpoint struct {
	addr     string
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewEndpoint creates an endpoint with the given address label.
func NewEndpoint(addr string) *Endpoint {
	return &Endpoint{addr: addr, handlers: make(map[string]Handler)}
}

// Addr returns the endpoint's address label.
func (e *Endpoint) Addr() string { return e.addr }

// Register installs a handler for the RPC name, replacing any previous one.
func (e *Endpoint) Register(name string, h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handlers[name] = h
}

// dispatch runs the handler for name.
func (e *Endpoint) dispatch(name string, req []byte) ([]byte, error) {
	e.mu.RLock()
	h := e.handlers[name]
	e.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("%w: %q on %s", ErrNoRPC, name, e.addr)
	}
	return h(req)
}

// Registry resolves in-process addresses to endpoints.
type Registry struct {
	mu        sync.RWMutex
	endpoints map[string]*Endpoint
}

// NewRegistry creates an empty in-process address space.
func NewRegistry() *Registry {
	return &Registry{endpoints: make(map[string]*Endpoint)}
}

// Listen registers and returns a new endpoint at addr. Re-listening on an
// occupied address replaces the previous endpoint (mirroring service
// restart).
func (r *Registry) Listen(addr string) *Endpoint {
	e := NewEndpoint(addr)
	r.mu.Lock()
	r.endpoints[addr] = e
	r.mu.Unlock()
	return e
}

// Close removes the endpoint at addr.
func (r *Registry) Close(addr string) {
	r.mu.Lock()
	delete(r.endpoints, addr)
	r.mu.Unlock()
}

// Call performs an in-process RPC to addr.
func (r *Registry) Call(addr, rpc string, req []byte) ([]byte, error) {
	r.mu.RLock()
	e := r.endpoints[addr]
	r.mu.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoEndpoint, addr)
	}
	return e.dispatch(rpc, req)
}

// Addrs lists the registered endpoint addresses.
func (r *Registry) Addrs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for a := range r.endpoints {
		out = append(out, a)
	}
	return out
}

// ---- TCP transport ----
//
// Wire format (all integers big-endian uint32):
//
//	request:  len(name) name len(payload) payload
//	response: status(0 ok, 1 error) len(payload) payload
//
// One request/response pair at a time per connection; clients that need
// concurrency open multiple connections.

const maxFrame = 64 << 20 // 64 MiB guards against corrupt length prefixes

func writeFrame(w io.Writer, b []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("mercury: frame of %d bytes exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// Server serves an endpoint's handlers over TCP.
type Server struct {
	ep     *Endpoint
	ln     net.Listener
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
}

// Serve starts a TCP server for the endpoint on the given listen address
// (e.g. "127.0.0.1:0"). The returned server reports its actual address via
// Addr.
func Serve(ep *Endpoint, listen string) (*Server, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	s := &Server{ep: ep, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	for {
		name, err := readFrame(conn)
		if err != nil {
			return
		}
		req, err := readFrame(conn)
		if err != nil {
			return
		}
		resp, herr := s.ep.dispatch(string(name), req)
		var status [1]byte
		if herr != nil {
			status[0] = 1
			resp = []byte(herr.Error())
		}
		if _, err := conn.Write(status[:]); err != nil {
			return
		}
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// Close stops accepting and waits for in-flight connections to finish their
// current request.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	return err
}

// Client is a TCP RPC client with a single underlying connection. Calls are
// serialized; it is safe for concurrent use.
type Client struct {
	addr string
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a TCP mercury server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{addr: addr, conn: conn}, nil
}

// Call performs one RPC over the client's connection.
func (c *Client) Call(rpc string, req []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, errors.New("mercury: client closed")
	}
	if err := writeFrame(c.conn, []byte(rpc)); err != nil {
		return nil, err
	}
	if err := writeFrame(c.conn, req); err != nil {
		return nil, err
	}
	var status [1]byte
	if _, err := io.ReadFull(c.conn, status[:]); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if status[0] != 0 {
		return nil, &RemoteError{Msg: string(resp)}
	}
	return resp, nil
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Caller abstracts "something that can issue RPCs to an address", satisfied
// by both the in-process Registry (via Bind) and TCP clients.
type Caller interface {
	Call(rpc string, req []byte) ([]byte, error)
}

// Bound is a Registry scoped to one destination address, satisfying Caller.
type Bound struct {
	reg  *Registry
	addr string
}

// Bind returns a Caller that sends every RPC to addr via the registry.
func (r *Registry) Bind(addr string) *Bound { return &Bound{reg: r, addr: addr} }

// Call implements Caller.
func (b *Bound) Call(rpc string, req []byte) ([]byte, error) {
	return b.reg.Call(b.addr, rpc, req)
}

// IsLocal reports whether an address looks like an in-process label rather
// than a host:port. Local labels use the "local://" scheme.
func IsLocal(addr string) bool { return strings.HasPrefix(addr, "local://") }
