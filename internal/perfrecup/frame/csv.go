package frame

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes the frame with a header row.
func (f *Frame) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(f.Columns()); err != nil {
		return err
	}
	row := make([]string, f.NCols())
	for r := 0; r < f.NRows(); r++ {
		for i, c := range f.cols {
			switch c.dtype {
			case Int:
				row[i] = strconv.FormatInt(c.ints[r], 10)
			case Float:
				row[i] = strconv.FormatFloat(c.flts[r], 'g', -1, 64)
			case String:
				row[i] = c.strs[r]
			default:
				row[i] = strconv.FormatBool(c.bools[r])
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a header-bearing CSV into a frame, inferring each column's
// type: int64 if every value parses as an integer, else float64 if every
// value parses as a number, else bool if every value is true/false, else
// string.
func ReadCSV(r io.Reader) (*Frame, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("frame: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("frame: empty csv")
	}
	header := rows[0]
	data := rows[1:]
	cols := make([]*Series, len(header))
	for i, name := range header {
		allInt, allFloat, allBool := true, true, true
		for _, row := range data {
			v := row[i]
			if _, err := strconv.ParseInt(v, 10, 64); err != nil {
				allInt = false
			}
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				allFloat = false
			}
			if v != "true" && v != "false" {
				allBool = false
			}
		}
		switch {
		case len(data) > 0 && allInt:
			s := &Series{name: name, dtype: Int}
			for _, row := range data {
				n, _ := strconv.ParseInt(row[i], 10, 64)
				s.ints = append(s.ints, n)
			}
			cols[i] = s
		case len(data) > 0 && allFloat:
			s := &Series{name: name, dtype: Float}
			for _, row := range data {
				x, _ := strconv.ParseFloat(row[i], 64)
				s.flts = append(s.flts, x)
			}
			cols[i] = s
		case len(data) > 0 && allBool:
			s := &Series{name: name, dtype: Bool}
			for _, row := range data {
				s.bools = append(s.bools, row[i] == "true")
			}
			cols[i] = s
		default:
			s := &Series{name: name, dtype: String}
			for _, row := range data {
				s.strs = append(s.strs, row[i])
			}
			cols[i] = s
		}
	}
	return New(cols...)
}
