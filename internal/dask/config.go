package dask

import "taskprov/internal/sim"

// Config is the runtime configuration, mirroring the knobs of
// distributed.yaml that the paper's provenance chart captures at the
// system-software layer (timeouts, heartbeat intervals, communication
// settings).
type Config struct {
	WorkersPerNode   int
	ThreadsPerWorker int

	// SchedulerNode is the platform node index hosting the scheduler (the
	// client runs alongside it).
	SchedulerNode int

	// HeartbeatInterval is the worker -> scheduler heartbeat period
	// (distributed.yaml: worker.heartbeat-interval).
	HeartbeatInterval sim.Time

	// WorkerTTL: a worker silent for this long is declared dead and evicted
	// (distributed.yaml: scheduler.worker-ttl). Its processing tasks are
	// requeued and its lost in-memory keys recomputed. Default
	// 6x HeartbeatInterval; negative disables liveness tracking.
	WorkerTTL sim.Time

	// AllowedFailures: a task whose worker dies more than this many times
	// while it was processing is marked erred instead of being rescheduled
	// forever (distributed.yaml: scheduler.allowed-failures).
	AllowedFailures int

	// WorkStealing enables the scheduler's stealing loop
	// (distributed.yaml: scheduler.work-stealing).
	WorkStealing bool
	// StealInterval is the stealing loop period
	// (scheduler.work-stealing-interval).
	StealInterval sim.Time

	// EventLoopMonitorThreshold: a blocked worker event loop longer than
	// this emits "unresponsive event loop" warnings, one per threshold
	// interval while blocked (tornado's PeriodicCallback monitor).
	EventLoopMonitorThreshold sim.Time

	// GCThresholdBytes triggers a garbage-collection pause each time a
	// worker accumulates this many new bytes in memory; GCPausePerGiB
	// scales the pause with the managed heap.
	GCThresholdBytes int64
	GCPausePerGiB    sim.Time
	GCPauseBase      sim.Time

	// DefaultTaskDuration seeds occupancy estimates for prefixes that have
	// never completed (distributed.yaml: scheduler.default-task-durations).
	DefaultTaskDuration sim.Time

	// ComputeJitterCV is the coefficient of variation applied to every
	// compute segment, modeling OS noise on top of per-node speed factors.
	ComputeJitterCV float64

	// ControlMessageBytes is the nominal size of scheduler/worker control
	// messages (task assignment, completion reports).
	ControlMessageBytes int64

	// ConnectionSetup is the one-time cost of the first transfer between a
	// pair of workers (TCP connect + comm handshake). It is why small
	// transfers near the start of a workflow are disproportionately slow
	// (the paper's Fig. 5 observation).
	ConnectionSetup sim.Time

	// ProxyThresholdBytes enables the pass-by-reference data plane: task
	// outputs at or above this size are published to the Warabi-backed proxy
	// store and dependencies ship as small references resolved peer-to-peer
	// at first use. Zero (the default) disables the proxy store entirely —
	// behavior is identical to the direct data plane.
	ProxyThresholdBytes int64
	// ProxyPrefetch resolves proxied dependencies eagerly at assignment time
	// instead of lazily at first use.
	ProxyPrefetch bool
	// ProxyRefBytes is the wire size of one proxy reference riding a control
	// message (default 128 when the proxy store is enabled).
	ProxyRefBytes int64

	// HeartbeatJitterCV spreads each worker's heartbeat period (and the
	// scheduler's TTL sweep) with deterministic lognormal jitter, so a batch
	// of simultaneously restarted workers does not deliver heartbeats — or
	// get evicted — in one synchronized storm. Default 0.1; negative
	// disables jitter.
	HeartbeatJitterCV float64

	// Speculation tunes speculative (hedged) execution of stragglers.
	Speculation SpeculationConfig
}

// SpeculationConfig is the scheduler's hedged-execution policy: when a
// running task is flagged as a straggler (its elapsed runtime is far beyond
// its prefix's completed-duration distribution), the scheduler launches a
// duplicate attempt on a different worker; the first completion wins and the
// loser is cancelled with attempt fencing so its output never becomes
// visible.
type SpeculationConfig struct {
	// Enabled turns the speculation tick on.
	Enabled bool
	// MaxConcurrent bounds in-flight duplicate attempts (default 2).
	MaxConcurrent int
	// Quantile is the per-prefix completed-duration quantile a running
	// task's elapsed time must exceed before it is a candidate (default
	// 0.75). The multiplied threshold is quantile-value × SlowFactor.
	Quantile float64
	// MinRuntime is the minimum elapsed runtime before any task may be
	// speculated, so short tasks are never hedged (default 2s).
	MinRuntime sim.Time
	// Budget caps total speculative launches per run, so a melting cluster
	// degrades to normal (slow) execution instead of duplicating everything
	// (default 32).
	Budget int
	// Interval is the speculation tick period (default HeartbeatInterval).
	Interval sim.Time
	// SlowFactor is how many times beyond the quantile duration a task must
	// have run to count as straggling (default 2).
	SlowFactor float64
}

// DefaultConfig returns the paper's job configuration: 4 workers per node
// with 8 threads per worker, work stealing on (Dask's default).
func DefaultConfig() Config {
	return Config{
		WorkersPerNode:            4,
		ThreadsPerWorker:          8,
		SchedulerNode:             0,
		HeartbeatInterval:         sim.Milliseconds(500),
		WorkerTTL:                 sim.Seconds(3),
		AllowedFailures:           3,
		WorkStealing:              true,
		StealInterval:             sim.Milliseconds(100),
		EventLoopMonitorThreshold: sim.Seconds(3),
		GCThresholdBytes:          4 << 30,
		GCPausePerGiB:             sim.Milliseconds(60),
		GCPauseBase:               sim.Milliseconds(20),
		DefaultTaskDuration:       sim.Milliseconds(500),
		ComputeJitterCV:           0.08,
		ControlMessageBytes:       1024,
		ConnectionSetup:           sim.Milliseconds(9),
	}
}

// Validate normalizes zero fields to defaults.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.WorkersPerNode <= 0 {
		c.WorkersPerNode = d.WorkersPerNode
	}
	if c.ThreadsPerWorker <= 0 {
		c.ThreadsPerWorker = d.ThreadsPerWorker
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = d.HeartbeatInterval
	}
	if c.WorkerTTL == 0 {
		c.WorkerTTL = 6 * c.HeartbeatInterval
	}
	if c.AllowedFailures <= 0 {
		c.AllowedFailures = d.AllowedFailures
	}
	if c.StealInterval <= 0 {
		c.StealInterval = d.StealInterval
	}
	if c.EventLoopMonitorThreshold <= 0 {
		c.EventLoopMonitorThreshold = d.EventLoopMonitorThreshold
	}
	if c.GCThresholdBytes <= 0 {
		c.GCThresholdBytes = d.GCThresholdBytes
	}
	if c.GCPausePerGiB <= 0 {
		c.GCPausePerGiB = d.GCPausePerGiB
	}
	if c.GCPauseBase <= 0 {
		c.GCPauseBase = d.GCPauseBase
	}
	if c.DefaultTaskDuration <= 0 {
		c.DefaultTaskDuration = d.DefaultTaskDuration
	}
	if c.ControlMessageBytes <= 0 {
		c.ControlMessageBytes = d.ControlMessageBytes
	}
	if c.ConnectionSetup <= 0 {
		c.ConnectionSetup = d.ConnectionSetup
	}
	if c.ProxyThresholdBytes < 0 {
		c.ProxyThresholdBytes = 0
	}
	if c.ProxyThresholdBytes > 0 && c.ProxyRefBytes <= 0 {
		c.ProxyRefBytes = 128
	}
	if c.HeartbeatJitterCV == 0 {
		c.HeartbeatJitterCV = 0.1
	}
	if c.HeartbeatJitterCV < 0 {
		c.HeartbeatJitterCV = 0
	}
	if c.Speculation.Enabled {
		if c.Speculation.MaxConcurrent <= 0 {
			c.Speculation.MaxConcurrent = 2
		}
		if c.Speculation.Quantile <= 0 || c.Speculation.Quantile >= 1 {
			c.Speculation.Quantile = 0.75
		}
		if c.Speculation.MinRuntime <= 0 {
			c.Speculation.MinRuntime = sim.Seconds(2)
		}
		if c.Speculation.Budget <= 0 {
			c.Speculation.Budget = 32
		}
		if c.Speculation.Interval <= 0 {
			c.Speculation.Interval = c.HeartbeatInterval
		}
		if c.Speculation.SlowFactor <= 1 {
			c.Speculation.SlowFactor = 2
		}
	}
	return c
}
