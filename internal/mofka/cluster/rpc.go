package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"taskprov/internal/mochi/mercury"
	"taskprov/internal/mofka"
)

// The gateway exposes a cluster on a Mercury endpoint under the same RPC
// names a standalone broker uses ("mofka.push", "mofka.pull", ...), so an
// unmodified mofka.Remote client talks to a clustered mofkad transparently:
// pushes replicate with quorum acknowledgement, pulls serve the
// acknowledged prefix, cursor commits replicate to every alive replica.
// Cluster-aware clients get additional RPCs: "cluster.join" registers
// another broker process as a replica member, "cluster.info" reports
// membership and placement, and pushes may carry producer/seq/epoch fields
// for idempotent retry.

// Cluster-specific RPC names.
const (
	rpcJoin   = "cluster.join"
	rpcInfo   = "cluster.info"
	rpcHealth = "cluster.health"
)

// gatewayPushRequest is wire-compatible with the broker's push request; the
// extra fields are absent (zero) when a plain mofka.Remote pushes.
type gatewayPushRequest struct {
	Topic     string            `json:"topic"`
	Partition int               `json:"partition"`
	Metas     []json.RawMessage `json:"metas"`
	Datas     [][]byte          `json:"datas"`
	Producer  string            `json:"producer,omitempty"`
	Seq       uint64            `json:"seq,omitempty"`
	Epoch     uint64            `json:"epoch,omitempty"`
}

type gatewayPushResponse struct {
	Epoch uint64 `json:"epoch"`
}

type gatewayPullRequest struct {
	Topic     string `json:"topic"`
	Partition int    `json:"partition"`
	From      uint64 `json:"from"`
	Max       int    `json:"max"`
	WithData  bool   `json:"with_data"`
}

type gatewayPullResponse struct {
	Events []mofka.Event `json:"events"`
}

type gatewayCursorRequest struct {
	Consumer  string `json:"consumer"`
	Topic     string `json:"topic"`
	Partition int    `json:"partition"`
	Next      uint64 `json:"next"`
}

type gatewayTopicInfo struct {
	Name       string `json:"name"`
	Partitions int    `json:"partitions"`
	Events     uint64 `json:"events"`
}

type joinRequest struct {
	Address string `json:"address"`
}

type joinResponse struct {
	Node int `json:"node"`
}

// InfoResponse describes a cluster to status tooling.
type InfoResponse struct {
	Brokers   int             `json:"brokers"`
	Alive     []int           `json:"alive"`
	Topics    []string        `json:"topics"`
	Placement []PlacementView `json:"placement"`
}

// RegisterRPCs exposes the cluster on a Mercury endpoint.
func (c *Cluster) RegisterRPCs(ep *mercury.Endpoint) {
	ep.Register("mofka.create_topic", func(req []byte) ([]byte, error) {
		var cfg mofka.TopicConfig
		if err := json.Unmarshal(req, &cfg); err != nil {
			return nil, err
		}
		if _, err := c.EnsureTopic(cfg); err != nil {
			return nil, err
		}
		return []byte(`{}`), nil
	})
	ep.Register("mofka.topics", func([]byte) ([]byte, error) {
		return json.Marshal(c.Topics())
	})
	ep.Register("mofka.topic_info", func(req []byte) ([]byte, error) {
		var name string
		if err := json.Unmarshal(req, &name); err != nil {
			return nil, err
		}
		t, err := c.Topic(name)
		if err != nil {
			return nil, err
		}
		var events uint64
		for p := 0; p < t.PartitionCount(); p++ {
			n, err := c.Length(name, p)
			if err != nil {
				return nil, err
			}
			events += n
		}
		return json.Marshal(gatewayTopicInfo{Name: name, Partitions: t.PartitionCount(), Events: events})
	})
	ep.Register("mofka.push", func(req []byte) ([]byte, error) {
		var pr gatewayPushRequest
		if err := json.Unmarshal(req, &pr); err != nil {
			return nil, err
		}
		metas := make([][]byte, len(pr.Metas))
		for i, m := range pr.Metas {
			metas[i] = m
		}
		epoch := pr.Epoch
		epochless := epoch == 0
		if epochless {
			// Epoch-less clients (plain mofka.Remote) always take the current
			// route; their retries are not idempotent, which matches the
			// single-broker contract they were written against.
			cur, err := c.Epoch(pr.Topic, pr.Partition)
			if err != nil {
				return nil, err
			}
			epoch = cur
		}
		cur, err := c.Append(pr.Topic, pr.Partition, pr.Producer, pr.Seq, epoch, metas, pr.Datas)
		// An election can land between the epoch read above and the append.
		// Epoch-less clients have no fence-retry semantics, so absorb the
		// transient here: Append returns the current epoch alongside
		// ErrFenced, which is exactly the refreshed route to retry with.
		for retries := 0; epochless && errors.Is(err, ErrFenced) && retries < 5; retries++ {
			epoch = cur
			cur, err = c.Append(pr.Topic, pr.Partition, pr.Producer, pr.Seq, epoch, metas, pr.Datas)
		}
		if err != nil {
			return nil, err
		}
		return json.Marshal(gatewayPushResponse{Epoch: cur})
	})
	ep.Register("mofka.pull", func(req []byte) ([]byte, error) {
		var pr gatewayPullRequest
		if err := json.Unmarshal(req, &pr); err != nil {
			return nil, err
		}
		evs, err := c.Read(pr.Topic, pr.Partition, pr.From, pr.Max, pr.WithData)
		if err != nil {
			return nil, err
		}
		return json.Marshal(gatewayPullResponse{Events: evs})
	})
	ep.Register("mofka.commit", func(req []byte) ([]byte, error) {
		var cr gatewayCursorRequest
		if err := json.Unmarshal(req, &cr); err != nil {
			return nil, err
		}
		if err := c.CommitCursor(cr.Consumer, cr.Topic, cr.Partition, cr.Next); err != nil {
			return nil, err
		}
		return []byte(`{}`), nil
	})
	ep.Register("mofka.cursor", func(req []byte) ([]byte, error) {
		var cr gatewayCursorRequest
		if err := json.Unmarshal(req, &cr); err != nil {
			return nil, err
		}
		return json.Marshal(c.LoadCursor(cr.Consumer, cr.Topic, cr.Partition))
	})
	ep.Register("mofka.partition_info", func(req []byte) ([]byte, error) {
		var pr gatewayPullRequest
		if err := json.Unmarshal(req, &pr); err != nil {
			return nil, err
		}
		n, err := c.Length(pr.Topic, pr.Partition)
		if err != nil {
			return nil, err
		}
		return json.Marshal(n)
	})
	ep.Register("mofka.ping", func([]byte) ([]byte, error) {
		if c.IsClosed() {
			return nil, ErrClosed
		}
		return []byte(`{}`), nil
	})
	ep.Register(rpcJoin, func(req []byte) ([]byte, error) {
		var jr joinRequest
		if err := json.Unmarshal(req, &jr); err != nil {
			return nil, err
		}
		id, err := c.AddRemote(jr.Address)
		if err != nil {
			return nil, err
		}
		return json.Marshal(joinResponse{Node: id})
	})
	ep.Register(rpcInfo, func([]byte) ([]byte, error) {
		return json.Marshal(InfoResponse{
			Brokers:   c.Brokers(),
			Alive:     c.AliveBrokers(),
			Topics:    c.Topics(),
			Placement: c.Placement(),
		})
	})
	ep.Register(rpcHealth, func([]byte) ([]byte, error) {
		return json.Marshal(c.Events())
	})
}

// AddRemote registers a broker process reachable at addr as a new cluster
// member. The member participates in placement for topics created after it
// joins (existing replica sets are fixed at topic creation). Its liveness
// is probed by ping on every sweep; a member that stops answering times out
// through SSG and fails over like a local crash.
func (c *Cluster) AddRemote(addr string) (int, error) {
	if addr == "" {
		return 0, fmt.Errorf("cluster: join needs an address")
	}
	rep, err := dialReplica(addr)
	if err != nil {
		return 0, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	if err := rep.ping(); err != nil {
		_ = rep.close() // probe failed; connection is dead anyway
		return 0, fmt.Errorf("cluster: probe %s: %w", addr, err)
	}

	// Join the membership group before publishing the node: the sweeper
	// goroutine reads n.member under c.mu, so the node must be fully formed
	// when it becomes visible in c.nodes.
	member := c.group.Join(addr, c.cfg.Clock())
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.group.Leave(member)
		_ = rep.close()
		return 0, ErrClosed
	}
	id := len(c.nodes)
	n := &node{id: id, addr: addr, rep: rep, alive: true, member: member}
	c.nodes = append(c.nodes, n)
	// Replicate existing topic definitions so the member can serve future
	// catch-up reads and cursor commits for topics it will host.
	cfgs := make([]mofka.TopicConfig, 0, len(c.topics))
	for _, ts := range c.topics {
		cfgs = append(cfgs, ts.cfg)
	}
	c.mu.Unlock()
	for _, cfg := range cfgs {
		if err := rep.ensureTopic(cfg); err != nil {
			return id, fmt.Errorf("cluster: replicate topic %s to %s: %w", cfg.Name, addr, err)
		}
	}
	c.health.emit([]Event{{
		Kind: EventBrokerRejoined, Node: id, Topic: "", Partition: -1,
		At: c.cfg.NowSeconds(), Detail: fmt.Sprintf("remote member %s joined", addr),
	}})
	return id, nil
}

// JoinRemote is the client side of "cluster.join": a broker process that
// wants to become a member of the cluster behind gatewayAddr announces its
// own RPC address and returns its assigned node id.
func JoinRemote(gatewayAddr, selfAddr string, timeout time.Duration) (int, error) {
	cl, err := mercury.Dial(gatewayAddr)
	if err != nil {
		return 0, err
	}
	defer func() { _ = cl.Close() }()
	if timeout > 0 {
		cl.SetTimeout(timeout)
	}
	req, err := json.Marshal(joinRequest{Address: selfAddr})
	if err != nil {
		return 0, err
	}
	resp, err := cl.Call(rpcJoin, req)
	if err != nil {
		return 0, err
	}
	var jr joinResponse
	if err := json.Unmarshal(resp, &jr); err != nil {
		return 0, err
	}
	return jr.Node, nil
}

// Info fetches cluster membership/placement from a gateway — the client
// side of "cluster.info".
func Info(gatewayAddr string, timeout time.Duration) (*InfoResponse, error) {
	cl, err := mercury.Dial(gatewayAddr)
	if err != nil {
		return nil, err
	}
	defer func() { _ = cl.Close() }()
	if timeout > 0 {
		cl.SetTimeout(timeout)
	}
	resp, err := cl.Call(rpcInfo, []byte(`{}`))
	if err != nil {
		return nil, err
	}
	var info InfoResponse
	if err := json.Unmarshal(resp, &info); err != nil {
		return nil, err
	}
	return &info, nil
}
