// Package dask reimplements the scheduling model of Dask.distributed, the
// workflow management system the paper instruments: a client submits task
// graphs to a dynamic scheduler that dispatches tasks to multi-threaded
// workers, with data-locality-aware placement, occupancy estimates, work
// stealing, dependency transfers between workers, and the runtime warnings
// (unresponsive event loop, garbage collection) the paper correlates with
// slow tasks.
//
// Everything runs in virtual time on a sim.Kernel, against a platform model
// for communication costs and a posixio/pfs stack for I/O, so the provenance
// framework in internal/core can observe exactly the signals the paper's
// plugins capture.
package dask

import (
	"fmt"
	"sort"
	"strings"

	"taskprov/internal/sim"
)

// TaskKey uniquely identifies a task within a workflow, e.g.
// "('getitem-24266c', 63)" or "imread-0007".
type TaskKey string

// KeyPrefix derives the Dask "prefix" of a key: the leading operation name
// stem, with trailing hash/index decorations stripped. Examples:
//
//	"imread-0007"                    -> "imread"
//	"('getitem-24266c', 63)"         -> "getitem"
//	"read_parquet-fused-assign-a1b2" -> "read_parquet-fused-assign"
func KeyPrefix(k TaskKey) string {
	s := string(k)
	if strings.HasPrefix(s, "('") {
		s = s[2:]
		if i := strings.IndexAny(s, "'"); i >= 0 {
			s = s[:i]
		}
	}
	// Strip a trailing "-<hex-or-digits>" decoration, keeping compound
	// operation names like "read_parquet-fused-assign" intact.
	if i := strings.LastIndex(s, "-"); i > 0 {
		suffix := s[i+1:]
		if suffix != "" && isHashy(suffix) {
			s = s[:i]
		}
	}
	return s
}

func isHashy(s string) bool {
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9':
		case c >= 'a' && c <= 'f':
		default:
			return false
		}
	}
	return true
}

// KeyGroup derives the Dask "group": the key with its positional index
// stripped, identifying the set of tasks created by one collection
// operation. For tuple keys "('name-hash', 3)" the group is "name-hash".
func KeyGroup(k TaskKey) string {
	s := string(k)
	if strings.HasPrefix(s, "('") {
		s = s[2:]
		if i := strings.Index(s, "'"); i >= 0 {
			return s[:i]
		}
	}
	return s
}

// TaskContext is passed to a task's Run body; it provides virtual compute
// time, instrumented POSIX I/O on the run's file system, and a per-task
// deterministic RNG. It is defined in worker.go where its methods live.

// TaskFunc is a task body. It runs on one worker thread (inside a sim.Proc)
// and may compute, perform I/O, and set its output size.
type TaskFunc func(ctx *TaskContext)

// TaskSpec is the immutable definition of one task.
type TaskSpec struct {
	Key  TaskKey
	Deps []TaskKey

	// Run is the task body; nil means "sleep for EstDuration".
	Run TaskFunc

	// OutputSize is the size in bytes of the task's result in distributed
	// memory (Run may override it via ctx.SetOutputSize).
	OutputSize int64

	// EstDuration seeds the scheduler's occupancy estimate before any task
	// of this prefix has completed; it is also the default body duration
	// for tasks without a Run function.
	EstDuration sim.Time

	// BlocksEventLoop marks task bodies that hold the worker's event loop
	// (GIL-holding native code in real Dask); long blocking tasks trigger
	// "unresponsive event loop" warnings.
	BlocksEventLoop bool

	// Restrictions, when non-empty, limits execution to the named workers.
	Restrictions []string

	// MaxRetries is how many times the scheduler re-runs the task after a
	// failure before marking it erred (distributed's retries=).
	MaxRetries int
}

// Prefix returns the task's Dask prefix (see KeyPrefix).
func (t *TaskSpec) Prefix() string { return KeyPrefix(t.Key) }

// Group returns the task's Dask group (see KeyGroup).
func (t *TaskSpec) Group() string { return KeyGroup(t.Key) }

// Graph is one task graph (the unit the client submits).
type Graph struct {
	ID        int
	tasks     map[TaskKey]*TaskSpec
	externals map[TaskKey]bool
	order     []TaskKey // topological order, set by Finalize
}

// NewGraph creates an empty graph with the given ID.
func NewGraph(id int) *Graph {
	return &Graph{ID: id, tasks: make(map[TaskKey]*TaskSpec), externals: make(map[TaskKey]bool)}
}

// AddExternal declares a cross-graph dependency: a key produced by an
// earlier graph that must already be in distributed memory at submission
// time (a future held by the client, in Dask terms).
func (g *Graph) AddExternal(k TaskKey) {
	g.externals[k] = true
	g.order = nil
}

// External reports whether k was declared as a cross-graph dependency.
func (g *Graph) External(k TaskKey) bool { return g.externals[k] }

// Add inserts a task. It panics on duplicate keys — graphs are built by
// generators, so a duplicate is a programming error.
func (g *Graph) Add(spec *TaskSpec) {
	if _, dup := g.tasks[spec.Key]; dup {
		panic(fmt.Sprintf("dask: duplicate task key %q in graph %d", spec.Key, g.ID))
	}
	g.tasks[spec.Key] = spec
	g.order = nil
}

// Task returns the spec for a key.
func (g *Graph) Task(k TaskKey) (*TaskSpec, bool) {
	t, ok := g.tasks[k]
	return t, ok
}

// Len returns the number of tasks.
func (g *Graph) Len() int { return len(g.tasks) }

// Keys returns all task keys in topological order (Finalize must have
// succeeded, or the graph must be finalizable).
func (g *Graph) Keys() []TaskKey {
	if g.order == nil {
		if err := g.Finalize(); err != nil {
			panic(err)
		}
	}
	return append([]TaskKey(nil), g.order...)
}

// Finalize validates the graph (all dependencies present, no cycles) and
// computes a deterministic topological order used for task priorities.
func (g *Graph) Finalize() error {
	for k, t := range g.tasks {
		for _, d := range t.Deps {
			if _, ok := g.tasks[d]; !ok && !g.externals[d] {
				return fmt.Errorf("dask: graph %d task %q depends on missing %q", g.ID, k, d)
			}
		}
	}
	// Kahn's algorithm with sorted tie-breaking for determinism. External
	// dependencies are satisfied by definition and do not contribute edges.
	indeg := make(map[TaskKey]int, len(g.tasks))
	dependents := make(map[TaskKey][]TaskKey, len(g.tasks))
	for k, t := range g.tasks {
		indeg[k] += 0
		for _, d := range t.Deps {
			if _, internal := g.tasks[d]; !internal {
				continue
			}
			indeg[k]++
			dependents[d] = append(dependents[d], k)
		}
	}
	var frontier []TaskKey
	for k, n := range indeg {
		if n == 0 {
			frontier = append(frontier, k)
		}
	}
	sortKeys(frontier)
	order := make([]TaskKey, 0, len(g.tasks))
	for len(frontier) > 0 {
		k := frontier[0]
		frontier = frontier[1:]
		order = append(order, k)
		next := dependents[k]
		sortKeys(next)
		var newly []TaskKey
		for _, d := range next {
			indeg[d]--
			if indeg[d] == 0 {
				newly = append(newly, d)
			}
		}
		// Keep frontier sorted by merging (both inputs sorted).
		frontier = mergeSorted(frontier, newly)
	}
	if len(order) != len(g.tasks) {
		return fmt.Errorf("dask: graph %d contains a dependency cycle", g.ID)
	}
	g.order = order
	return nil
}

func sortKeys(ks []TaskKey) {
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
}

func mergeSorted(a, b []TaskKey) []TaskKey {
	if len(b) == 0 {
		return a
	}
	out := make([]TaskKey, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Roots returns tasks with no dependencies, sorted.
func (g *Graph) Roots() []TaskKey {
	var out []TaskKey
	for k, t := range g.tasks {
		if len(t.Deps) == 0 {
			out = append(out, k)
		}
	}
	sortKeys(out)
	return out
}

// Leaves returns tasks with no dependents, sorted. These are the graph's
// outputs, which stay in distributed memory until the client releases them.
func (g *Graph) Leaves() []TaskKey {
	hasDependent := make(map[TaskKey]bool)
	for _, t := range g.tasks {
		for _, d := range t.Deps {
			hasDependent[d] = true
		}
	}
	var out []TaskKey
	for k := range g.tasks {
		if !hasDependent[k] {
			out = append(out, k)
		}
	}
	sortKeys(out)
	return out
}
