package perfrecup

import (
	"taskprov/internal/core"
)

// PhaseBreakdown is the per-run decomposition behind Fig. 3: cumulative
// time spent in I/O, communication, and computation, plus the total wall
// time. As in the paper, the three phases are non-exclusive (they may
// overlap in time across threads) and the total additionally includes
// workflow coordination (connecting to the scheduler, waiting for workers,
// creating task graphs).
type PhaseBreakdown struct {
	Workflow string
	Seed     uint64

	// The three phase figures are per-thread-slot averages (cumulative
	// seconds divided by the job's worker-thread count), so they are
	// directly comparable to the wall time: a fully utilized job has
	// ComputeSeconds approaching TotalSeconds, and short workflows show
	// the paper's "disproportionately long total" from coordination.
	IOSeconds      float64
	CommSeconds    float64
	ComputeSeconds float64
	TotalSeconds   float64 // workflow wall time

	ThreadSlots int

	IOOps     int64
	Transfers int64
	Tasks     int64
}

// Phases computes the breakdown from one run's artifacts.
func Phases(art *core.RunArtifacts) (PhaseBreakdown, error) {
	b := PhaseBreakdown{
		Workflow:     art.Meta.Workflow,
		Seed:         art.Meta.Seed,
		TotalSeconds: art.Meta.WallSeconds,
	}
	for _, l := range art.DarshanLogs {
		for _, rec := range l.Records {
			b.IOSeconds += rec.Counters.ReadTime + rec.Counters.WriteTime
			b.IOOps += rec.Counters.Reads + rec.Counters.Writes
		}
	}
	transfers, err := core.DrainTopic(art.Broker, core.TopicTransfers)
	if err != nil {
		return b, err
	}
	for _, m := range transfers {
		t := core.ParseTransfer(m)
		b.CommSeconds += (t.Stop - t.Start).Seconds()
		b.Transfers++
	}
	execs, err := core.DrainTopic(art.Broker, core.TopicExecutions)
	if err != nil {
		return b, err
	}
	for _, m := range execs {
		e := core.ParseExecution(m)
		b.ComputeSeconds += (e.Stop - e.Start).Seconds()
		b.Tasks++
	}
	// Execution time includes I/O performed inside tasks; subtracting the
	// I/O share gives "computation" in the paper's sense.
	b.ComputeSeconds -= b.IOSeconds
	if b.ComputeSeconds < 0 {
		b.ComputeSeconds = 0
	}
	// Convert the cumulative sums to per-thread-slot averages.
	b.ThreadSlots = art.Meta.Job.Nodes * art.Meta.Job.WorkersPerNode * art.Meta.Job.ThreadsPerWorker
	if b.ThreadSlots > 0 {
		n := float64(b.ThreadSlots)
		b.IOSeconds /= n
		b.CommSeconds /= n
		b.ComputeSeconds /= n
	}
	return b, nil
}

// PhaseStats aggregates breakdowns across runs of one workflow: mean and
// standard deviation per phase, both raw and normalized by the per-run
// total (the paper normalizes "for readability as workflows vary in total
// duration").
type PhaseStats struct {
	Workflow string
	Runs     int

	MeanIO, StdIO           float64
	MeanComm, StdComm       float64
	MeanCompute, StdCompute float64
	MeanTotal, StdTotal     float64

	// Normalized: each run's phases divided by that run's largest phase
	// value, then averaged.
	NormIO, NormIOStd           float64
	NormComm, NormCommStd       float64
	NormCompute, NormComputeStd float64
	NormTotal, NormTotalStd     float64
}

// AggregatePhases summarizes a set of per-run breakdowns (all from the same
// workflow).
func AggregatePhases(runs []PhaseBreakdown) PhaseStats {
	s := PhaseStats{Runs: len(runs)}
	if len(runs) == 0 {
		return s
	}
	s.Workflow = runs[0].Workflow
	var io, comm, comp, tot []float64
	var nio, ncomm, ncomp, ntot []float64
	for _, r := range runs {
		io = append(io, r.IOSeconds)
		comm = append(comm, r.CommSeconds)
		comp = append(comp, r.ComputeSeconds)
		tot = append(tot, r.TotalSeconds)
		max := r.IOSeconds
		for _, v := range []float64{r.CommSeconds, r.ComputeSeconds, r.TotalSeconds} {
			if v > max {
				max = v
			}
		}
		if max <= 0 {
			max = 1
		}
		nio = append(nio, r.IOSeconds/max)
		ncomm = append(ncomm, r.CommSeconds/max)
		ncomp = append(ncomp, r.ComputeSeconds/max)
		ntot = append(ntot, r.TotalSeconds/max)
	}
	s.MeanIO, s.StdIO = Mean(io), Std(io)
	s.MeanComm, s.StdComm = Mean(comm), Std(comm)
	s.MeanCompute, s.StdCompute = Mean(comp), Std(comp)
	s.MeanTotal, s.StdTotal = Mean(tot), Std(tot)
	s.NormIO, s.NormIOStd = Mean(nio), Std(nio)
	s.NormComm, s.NormCommStd = Mean(ncomm), Std(ncomm)
	s.NormCompute, s.NormComputeStd = Mean(ncomp), Std(ncomp)
	s.NormTotal, s.NormTotalStd = Mean(ntot), Std(ntot)
	return s
}
