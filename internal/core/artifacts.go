package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"taskprov/internal/darshan"
	"taskprov/internal/mofka"
	"taskprov/internal/sim"
)

// Artifact file layout inside a run directory:
//
//	metadata.json                 run provenance chart
//	darshan/rank<N>.darshan       per-worker binary Darshan logs
//	mofka/<topic>.jsonl           one JSON event per line, in partition order
//
// The layout is what cmd/taskprov writes and cmd/perfrecup reads: the
// "collect separately, fuse at analysis time" boundary of the paper.

// WriteDir persists the artifacts under dir (created if needed).
func (a *RunArtifacts) WriteDir(dir string) error {
	if err := os.MkdirAll(filepath.Join(dir, "darshan"), 0o755); err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Join(dir, "mofka"), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "metadata.json"), EncodeMetadata(a.Meta), 0o644); err != nil {
		return err
	}
	if err := a.WriteDarshanLogs(dir); err != nil {
		return err
	}
	for _, topic := range a.Broker.Topics() {
		if err := a.writeTopic(dir, topic); err != nil {
			return err
		}
	}
	if err := a.writeLogs(dir); err != nil {
		return err
	}
	return nil
}

// WriteDarshanLogs writes the per-worker binary Darshan logs under
// dir/darshan (created if needed). WriteDir calls it for run directories;
// durable runs also call it on the Mofka data directory so post-mortem
// analysis sees the I/O layer too.
func (a *RunArtifacts) WriteDarshanLogs(dir string) error {
	if err := os.MkdirAll(filepath.Join(dir, "darshan"), 0o755); err != nil {
		return err
	}
	for _, l := range a.DarshanLogs {
		p := filepath.Join(dir, "darshan", fmt.Sprintf("rank%04d.darshan", l.Job.Rank))
		f, err := os.Create(p)
		if err != nil {
			return err
		}
		if err := l.Write(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// writeLogs emits the synthesized scheduler/worker textual logs (part of
// the job-layer provenance).
func (a *RunArtifacts) writeLogs(dir string) error {
	logDir := filepath.Join(dir, "logs")
	if err := os.MkdirAll(logDir, 0o755); err != nil {
		return err
	}
	sched, err := RenderSchedulerLog(a)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(logDir, "scheduler.log"), []byte(sched), 0o644); err != nil {
		return err
	}
	workers, err := a.WorkerAddrs()
	if err != nil {
		return err
	}
	for i, w := range workers {
		wl, err := RenderWorkerLog(a, w)
		if err != nil {
			return err
		}
		p := filepath.Join(logDir, fmt.Sprintf("worker-%04d.log", i))
		if err := os.WriteFile(p, []byte(wl), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func (a *RunArtifacts) writeTopic(dir, topic string) error {
	metas, err := DrainTopic(a.Broker, topic)
	if err != nil {
		return err
	}
	p := filepath.Join(dir, "mofka", topic+".jsonl")
	f, err := os.Create(p)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, m := range metas {
		b, err := json.Marshal(m)
		if err != nil {
			_ = f.Close()
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			_ = f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	// Close errors on the write path are data loss, not noise.
	return f.Close()
}

// LoadDir reads artifacts previously written by WriteDir. The Mofka topics
// are rebuilt into a fresh in-memory broker so analysis code can consume
// them through the normal consumer API.
func LoadDir(dir string) (*RunArtifacts, error) {
	metaBytes, err := os.ReadFile(filepath.Join(dir, "metadata.json"))
	if err != nil {
		return nil, fmt.Errorf("core: load %s: %w", dir, err)
	}
	meta, err := DecodeMetadata(metaBytes)
	if err != nil {
		return nil, err
	}
	art := &RunArtifacts{Meta: meta, Broker: mofka.NewStandaloneBroker()}

	dlogs, err := filepath.Glob(filepath.Join(dir, "darshan", "*.darshan"))
	if err != nil {
		return nil, err
	}
	for _, p := range dlogs {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		l, err := darshan.ReadLog(f)
		_ = f.Close()
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", p, err)
		}
		art.DarshanLogs = append(art.DarshanLogs, l)
	}

	topics, err := filepath.Glob(filepath.Join(dir, "mofka", "*.jsonl"))
	if err != nil {
		return nil, err
	}
	for _, p := range topics {
		name := filepath.Base(p)
		name = name[:len(name)-len(".jsonl")]
		t, err := art.Broker.CreateTopic(mofka.TopicConfig{Name: name, Partitions: 1})
		if err != nil {
			return nil, err
		}
		prod := t.NewProducer(mofka.ProducerOptions{BatchSize: 512})
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<24)
		for sc.Scan() {
			line := append([]byte(nil), sc.Bytes()...)
			if len(line) == 0 {
				continue
			}
			if err := prod.PushRaw(line, nil); err != nil {
				_ = f.Close()
				return nil, fmt.Errorf("core: %s: %w", p, err)
			}
		}
		if err := sc.Err(); err != nil {
			_ = f.Close()
			return nil, err
		}
		_ = f.Close()
		if err := prod.Close(); err != nil {
			return nil, err
		}
	}
	art.WallTime = sim.Seconds(meta.WallSeconds)
	return art, nil
}
