// Command mofkad runs a standalone Mofka broker over TCP, exposing the
// event-streaming RPCs (create_topic, push, pull, commit) through the
// Mercury wire protocol. It is the deployment mode for consumers that run
// on different nodes than the instrumented workflow.
//
// Usage:
//
//	mofkad -listen 127.0.0.1:7777 [-config bedrock.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"taskprov/internal/mochi/bedrock"
	"taskprov/internal/mochi/mercury"
	"taskprov/internal/mofka"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7777", "TCP listen address")
	configPath := flag.String("config", "", "optional bedrock JSON config (its address overrides -listen)")
	flag.Parse()

	cfg := bedrock.DefaultConfig(*listen)
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			fatal(err)
		}
		cfg, err = bedrock.ParseConfig(data)
		if err != nil {
			fatal(err)
		}
	}
	if mercury.IsLocal(cfg.Address) {
		fatal(fmt.Errorf("mofkad needs a TCP address, got %q", cfg.Address))
	}
	dep, err := bedrock.Deploy(cfg, nil)
	if err != nil {
		fatal(err)
	}
	defer dep.Shutdown()

	broker := mofka.NewBroker(dep)
	broker.RegisterRPCs(dep.Endpoint())
	fmt.Printf("mofkad: serving on %s (yokan dbs: %v, warabi targets: %v)\n",
		dep.Addr(), cfg.Yokan.Databases, cfg.Warabi.Targets)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("mofkad: shutting down")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mofkad:", err)
	os.Exit(1)
}
