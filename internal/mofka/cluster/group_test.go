package cluster

import (
	"testing"

	"taskprov/internal/mofka"
)

func TestGroupRebalanceAssignments(t *testing.T) {
	c := newTestCluster(t, 3, 2)
	if _, err := c.EnsureTopic(mofka.TopicConfig{Name: "t", Partitions: 6}); err != nil {
		t.Fatal(err)
	}
	g, err := c.ConsumerGroup("analysis", "t", GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := g.Join()
	if err != nil {
		t.Fatal(err)
	}
	if got := m1.Assignment(); len(got) != 6 {
		t.Fatalf("single member assigned %v, want all 6 partitions", got)
	}
	gen1 := g.Generation()

	m2, err := g.Join()
	if err != nil {
		t.Fatal(err)
	}
	if g.Generation() != gen1+1 {
		t.Fatalf("generation %d after join, want %d", g.Generation(), gen1+1)
	}
	a1, a2 := m1.Assignment(), m2.Assignment()
	if len(a1)+len(a2) != 6 {
		t.Fatalf("assignments %v + %v do not cover 6 partitions", a1, a2)
	}
	seen := make(map[int]bool)
	for _, p := range append(a1, a2...) {
		if seen[p] {
			t.Fatalf("partition %d assigned twice (%v, %v)", p, a1, a2)
		}
		seen[p] = true
	}

	m2.Leave()
	if got := m1.Assignment(); len(got) != 6 {
		t.Fatalf("after leave, member 1 assigned %v, want all 6", got)
	}
	// Rebalances were recorded as health events.
	rebalances := 0
	for _, ev := range c.Events() {
		if ev.Kind == EventGroupRebalance {
			rebalances++
		}
	}
	if rebalances != 3 {
		t.Errorf("%d rebalance events, want 3 (two joins + one leave)", rebalances)
	}
}

func TestGroupConsumeCommitResume(t *testing.T) {
	c := newTestCluster(t, 3, 2)
	ct, err := c.EnsureTopic(mofka.TopicConfig{Name: "t", Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := pushN(t, ct, 90, mofka.ProducerOptions{BatchSize: 9})
	defer p.Close()

	g, err := c.ConsumerGroup("grp", "t", GroupOptions{Prefetch: 16})
	if err != nil {
		t.Fatal(err)
	}
	m, err := g.Join()
	if err != nil {
		t.Fatal(err)
	}
	var got []mofka.Event
	for {
		evs, err := m.Poll(32)
		if err != nil {
			t.Fatal(err)
		}
		if len(evs) == 0 {
			break
		}
		got = append(got, evs...)
		if err := m.Commit(evs); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 90 {
		t.Fatalf("group consumed %d events, want 90", len(got))
	}
	if lag := m.Lag(); func() uint64 {
		var s uint64
		for _, v := range lag {
			s += v
		}
		return s
	}() != 0 {
		t.Fatalf("nonzero lag %v after full consume", m.Lag())
	}

	// A fresh member of the same group resumes at the committed cursors: no
	// replay.
	g2, err := c.ConsumerGroup("grp", "t", GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := g2.Join()
	if err != nil {
		t.Fatal(err)
	}
	evs, err := m2.Poll(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 {
		t.Fatalf("resumed group replayed %d events", len(evs))
	}
}

func TestGroupBackpressureCredits(t *testing.T) {
	c := newTestCluster(t, 3, 2)
	ct, err := c.EnsureTopic(mofka.TopicConfig{Name: "t", Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := pushN(t, ct, 50, mofka.ProducerOptions{BatchSize: 10})
	defer p.Close()

	g, err := c.ConsumerGroup("bp", "t", GroupOptions{MaxInflight: 8})
	if err != nil {
		t.Fatal(err)
	}
	m, err := g.Join()
	if err != nil {
		t.Fatal(err)
	}
	first, err := m.Poll(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 8 {
		t.Fatalf("poll delivered %d events, credit pool is 8", len(first))
	}
	// Pool exhausted: no more deliveries until commit.
	empty, err := m.Poll(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("poll delivered %d events with exhausted credits", len(empty))
	}
	if err := m.Commit(first); err != nil {
		t.Fatal(err)
	}
	if g.Inflight() != 0 {
		t.Fatalf("inflight %d after commit, want 0", g.Inflight())
	}
	second, err := m.Poll(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != 8 {
		t.Fatalf("post-commit poll delivered %d, want 8", len(second))
	}
	// Delivery is ordered and gapless within the partition.
	if second[0].ID != first[len(first)-1].ID+1 {
		t.Fatalf("gap between polls: %d then %d", first[len(first)-1].ID, second[0].ID)
	}
}

// TestGroupCursorsSurviveKill9 is the cursor-durability satellite: commit
// under consumer groups, kill -9 the whole cluster (abandon without Close),
// restart, and assert every group resumes exactly at its committed offset —
// no replayed events, no skipped events.
func TestGroupCursorsSurviveKill9(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Brokers: 3, ReplicationFactor: 2, DataDir: dir}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := c.EnsureTopic(mofka.TopicConfig{Name: "t", Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := pushN(t, ct, 120, mofka.ProducerOptions{BatchSize: 10})

	// Two independent groups consume different amounts, committing as they
	// go; a third consumes but never commits.
	consumed := make(map[string]map[int]uint64) // group -> partition -> next committed
	for _, spec := range []struct {
		name   string
		take   int
		commit bool
	}{{"grp-a", 50, true}, {"grp-b", 100, true}, {"grp-uncommitted", 70, false}} {
		g, err := c.ConsumerGroup(spec.name, "t", GroupOptions{})
		if err != nil {
			t.Fatal(err)
		}
		m, err := g.Join()
		if err != nil {
			t.Fatal(err)
		}
		taken := 0
		next := make(map[int]uint64)
		for taken < spec.take {
			evs, err := m.Poll(spec.take - taken)
			if err != nil {
				t.Fatal(err)
			}
			if len(evs) == 0 {
				break
			}
			taken += len(evs)
			for _, ev := range evs {
				if n := ev.ID + 1; n > next[ev.Partition] {
					next[ev.Partition] = n
				}
			}
			if spec.commit {
				if err := m.Commit(evs); err != nil {
					t.Fatal(err)
				}
			}
		}
		if spec.commit {
			consumed[spec.name] = next
		}
	}

	// kill -9: abandon the producer and cluster with no Close/Sync. Cursor
	// commits are fsynced sidecar writes and batch appends are fsynced per
	// batch, so everything committed is on disk.
	_ = p
	_ = c

	rc, err := New(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rc.Close()

	for name, next := range consumed {
		g, err := rc.ConsumerGroup(name, "t", GroupOptions{})
		if err != nil {
			t.Fatal(err)
		}
		m, err := g.Join()
		if err != nil {
			t.Fatal(err)
		}
		// First poll after restart must resume exactly at each committed
		// offset: the first event delivered per partition has ID == committed
		// next (nothing replayed, nothing skipped).
		firstSeen := make(map[int]uint64)
		for {
			evs, err := m.Poll(64)
			if err != nil {
				t.Fatal(err)
			}
			if len(evs) == 0 {
				break
			}
			for _, ev := range evs {
				if _, ok := firstSeen[ev.Partition]; !ok {
					firstSeen[ev.Partition] = ev.ID
				}
			}
			if err := m.Commit(evs); err != nil {
				t.Fatal(err)
			}
		}
		for pi := 0; pi < 3; pi++ {
			want, committed := next[pi]
			length, err := rc.Length("t", pi)
			if err != nil {
				t.Fatal(err)
			}
			got, sawAny := firstSeen[pi]
			switch {
			case committed && want >= length:
				// Fully consumed before the crash: nothing must be redelivered.
				if sawAny {
					t.Errorf("%s t[%d]: replayed event %d after full commit", name, pi, got)
				}
			case committed:
				if !sawAny {
					t.Errorf("%s t[%d]: no events delivered, expected resume at %d", name, pi, want)
				} else if got != want {
					t.Errorf("%s t[%d]: resumed at %d, committed cursor was %d", name, pi, got, want)
				}
			}
		}
	}

	// The uncommitted group restarts from zero (its deliveries were never
	// durable) — at-least-once, never at-most-once.
	g, err := rc.ConsumerGroup("grp-uncommitted", "t", GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := g.Join()
	if err != nil {
		t.Fatal(err)
	}
	evs, err := m.Poll(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("uncommitted group got nothing after restart")
	}
	for _, ev := range evs {
		if ev.ID >= 16 {
			t.Fatalf("uncommitted group resumed at %d, want from 0", ev.ID)
		}
	}
}

// TestGroupCreditsSurviveCommitFailure: a Commit whose cursor writes fail
// (every replica down) must still release the batch's in-flight credits —
// otherwise a dropped batch leaks credits and Poll starves once MaxInflight
// is exhausted. Re-committing the same batch must not over-release.
func TestGroupCreditsSurviveCommitFailure(t *testing.T) {
	c := newTestCluster(t, 1, 1)
	ct, err := c.EnsureTopic(mofka.TopicConfig{Name: "t", Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	pushN(t, ct, 10, mofka.ProducerOptions{BatchSize: 5}).Close() //nolint:errcheck

	g, err := c.ConsumerGroup("analysis", "t", GroupOptions{MaxInflight: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := g.Join()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := m.Poll(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 4 || g.Inflight() != 4 {
		t.Fatalf("polled %d events, inflight %d; want 4/4", len(batch), g.Inflight())
	}

	// Every replica of the partition goes down: the cursor write must fail.
	if err := c.KillBroker(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(batch); err == nil {
		t.Fatal("Commit succeeded with every replica dead")
	}
	if got := g.Inflight(); got != 0 {
		t.Fatalf("inflight %d after failed Commit, want 0 (credit leak)", got)
	}
	// A buggy double-commit must not push the pool negative or steal other
	// members' credits.
	m.Commit(batch) //nolint:errcheck
	if got := g.Inflight(); got != 0 {
		t.Fatalf("inflight %d after double Commit, want 0", got)
	}
}

// TestGroupLeaveReleasesCredits: a member leaving with uncommitted
// deliveries returns its credits to the pool, so the remaining members can
// keep polling.
func TestGroupLeaveReleasesCredits(t *testing.T) {
	c := newTestCluster(t, 3, 2)
	ct, err := c.EnsureTopic(mofka.TopicConfig{Name: "t", Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	pushN(t, ct, 20, mofka.ProducerOptions{BatchSize: 5}).Close() //nolint:errcheck

	g, err := c.ConsumerGroup("analysis", "t", GroupOptions{MaxInflight: 6})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := g.Join()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := g.Join()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Poll(6); err != nil {
		t.Fatal(err)
	}
	if got := g.Inflight(); got == 0 {
		t.Fatal("m1 polled nothing; test needs outstanding credits")
	}
	m1.Leave()
	if got := g.Inflight(); got != 0 {
		t.Fatalf("inflight %d after Leave, want 0 (credits not returned)", got)
	}
	// The survivor (now owning every partition) can draw the full pool.
	evs, err := m2.Poll(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 6 {
		t.Fatalf("survivor polled %d events, want 6 (credits still held by departed member)", len(evs))
	}
}
