package live

import (
	"fmt"
	"sort"
	"sync"

	"taskprov/internal/dask"
	"taskprov/internal/mofka"
	"taskprov/internal/provenance"
)

// Anomaly kinds raised by the online detectors.
const (
	AnomalyStraggler       = "straggler"
	AnomalyEventLoopStreak = "event_loop_streak"
	AnomalyIOCollapse      = "io_collapse"
)

// Anomaly is one online finding. Anomalies are emitted into the
// provenance.TopicAnomalies Mofka topic, making the monitor's conclusions
// part of the run's provenance record.
type Anomaly struct {
	Kind    string  `json:"kind"`
	Subject string  `json:"subject"` // task group or worker
	At      float64 `json:"at"`      // sim clock
	Value   float64 `json:"value"`   // z-score, streak length, or bandwidth ratio
	Limit   float64 `json:"limit"`   // the threshold that was crossed
	Detail  string  `json:"detail"`
}

// Event encodes the anomaly as Mofka event metadata.
func (a Anomaly) Event() mofka.Metadata {
	return mofka.Metadata{
		"kind": a.Kind, "subject": a.Subject, "at": a.At,
		"value": a.Value, "limit": a.Limit, "detail": a.Detail,
	}
}

// ParseAnomaly decodes metadata written by Anomaly.Event.
func ParseAnomaly(m mofka.Metadata) Anomaly {
	return Anomaly{
		Kind:    provenance.Str(m, "kind"),
		Subject: provenance.Str(m, "subject"),
		At:      provenance.Num(m, "at"),
		Value:   provenance.Num(m, "value"),
		Limit:   provenance.Num(m, "limit"),
		Detail:  provenance.Str(m, "detail"),
	}
}

// AnomalyConfig tunes the online detectors.
type AnomalyConfig struct {
	// Disable turns all detectors off.
	Disable bool

	// StragglerMinSamples is how many durations a task group needs before
	// the robust z-score is trusted. Default 16.
	StragglerMinSamples int
	// StragglerZ is the MAD-based robust z-score threshold. Default 3.5
	// (Iglewicz & Hoaglin's conventional cutoff).
	StragglerZ float64

	// StreakLen flags a worker after this many consecutive
	// unresponsive-event-loop warnings... Default 5.
	StreakLen int
	// StreakGapSeconds ...no more than this far apart (sim clock).
	// Default 30.
	StreakGapSeconds float64

	// CollapseFraction flags a worker whose per-window I/O volume drops
	// below this fraction of its previous window. Default 0.25.
	CollapseFraction float64
	// CollapseMinBytes is the minimum previous-window volume for the
	// collapse comparison to be meaningful. Default 1 MiB.
	CollapseMinBytes int64
}

func (c AnomalyConfig) withDefaults() AnomalyConfig {
	if c.StragglerMinSamples <= 0 {
		c.StragglerMinSamples = 16
	}
	if c.StragglerZ <= 0 {
		c.StragglerZ = 3.5
	}
	if c.StreakLen <= 0 {
		c.StreakLen = 5
	}
	if c.StreakGapSeconds <= 0 {
		c.StreakGapSeconds = 30
	}
	if c.CollapseFraction <= 0 {
		c.CollapseFraction = 0.25
	}
	if c.CollapseMinBytes <= 0 {
		c.CollapseMinBytes = 1 << 20
	}
	return c
}

// stragglerAcc tracks one task group's duration distribution for the robust
// z-score. The median/MAD pair is recomputed every recomputeEvery inserts
// (sorting a capped copy), a standard streaming compromise: the reference
// distribution trails the stream slightly but each insert stays O(1)
// amortized.
type stragglerAcc struct {
	samples  []float64
	sinceFit int
	median   float64
	mad      float64
	fitted   bool
}

const (
	recomputeEvery = 32
	stragglerCap   = 1 << 14
	madConsistency = 1.4826 // MAD → σ for a normal distribution
	madEpsilon     = 1e-9
)

func (s *stragglerAcc) fit() {
	sorted := append([]float64(nil), s.samples...)
	sort.Float64s(sorted)
	s.median = sorted[len(sorted)/2]
	dev := make([]float64, len(sorted))
	for i, v := range sorted {
		d := v - s.median
		if d < 0 {
			d = -d
		}
		dev[i] = d
	}
	sort.Float64s(dev)
	s.mad = dev[len(dev)/2]
	s.fitted = true
	s.sinceFit = 0
}

// StragglerDetector exposes the online MAD straggler model as a standalone
// handle the scheduler's speculation policy subscribes to (it satisfies
// dask.SpeculationAdvisor): completed task durations feed Observe, and
// Straggler asks whether a still-running task's elapsed time is already an
// outlier against its group's robust z-score — the same |d − median| /
// (1.4826·MAD + ε) ≥ StragglerZ test the monitor's anomaly lane applies to
// completed durations. Safe for concurrent use.
type StragglerDetector struct {
	mu     sync.Mutex
	cfg    AnomalyConfig
	groups map[string]*stragglerAcc
}

// NewStragglerDetector builds a detector with the given thresholds (zero
// value = the monitor's defaults).
func NewStragglerDetector(cfg AnomalyConfig) *StragglerDetector {
	return &StragglerDetector{
		cfg:    cfg.withDefaults(),
		groups: make(map[string]*stragglerAcc),
	}
}

// Observe feeds one completed duration into the group's distribution.
func (d *StragglerDetector) Observe(group string, seconds float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.groups[group]
	if s == nil {
		s = &stragglerAcc{}
		d.groups[group] = s
	}
	if len(s.samples) < stragglerCap {
		s.samples = append(s.samples, seconds)
	}
	s.sinceFit++
	if !s.fitted && len(s.samples) >= d.cfg.StragglerMinSamples || s.sinceFit >= recomputeEvery {
		s.fit()
	}
}

// Straggler reports whether a task of the group that has already run for
// elapsedSeconds is a robust-z-score outlier. Elapsed time only grows, so a
// true verdict can never be retracted by the task finishing later.
func (d *StragglerDetector) Straggler(group string, elapsedSeconds float64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.groups[group]
	if s == nil || !s.fitted || len(s.samples) < d.cfg.StragglerMinSamples {
		return false
	}
	if elapsedSeconds <= s.median {
		return false
	}
	z := (elapsedSeconds - s.median) / (madConsistency*s.mad + madEpsilon)
	return z >= d.cfg.StragglerZ
}

// streakAcc tracks consecutive event-loop warnings per worker.
type streakAcc struct {
	len    int
	lastAt float64
}

// collapseAcc tracks a worker's per-window I/O volume for the bandwidth
// collapse check: when the window rolls over, the just-closed window is
// compared against the one before it.
type collapseAcc struct {
	epoch     int64
	cur, prev int64
	prevValid bool
}

// detectors holds all online anomaly state. Methods are called with the
// Aggregator's lock held and return the anomalies raised (if any).
type detectors struct {
	cfg         AnomalyConfig
	windowWidth float64

	stragglers map[string]*stragglerAcc
	streaks    map[string]*streakAcc
	collapse   map[string]*collapseAcc
}

func newDetectors(cfg AnomalyConfig, windowWidth float64) *detectors {
	return &detectors{
		cfg:         cfg.withDefaults(),
		windowWidth: windowWidth,
		stragglers:  make(map[string]*stragglerAcc),
		streaks:     make(map[string]*streakAcc),
		collapse:    make(map[string]*collapseAcc),
	}
}

// onDuration observes one task duration for its group and flags stragglers:
// |d − median| / (1.4826·MAD + ε) ≥ StragglerZ once the group has enough
// samples.
func (d *detectors) onDuration(group string, dur, at float64) []Anomaly {
	if d.cfg.Disable {
		return nil
	}
	s := d.stragglers[group]
	if s == nil {
		s = &stragglerAcc{}
		d.stragglers[group] = s
	}
	var out []Anomaly
	if s.fitted && len(s.samples) >= d.cfg.StragglerMinSamples {
		dev := dur - s.median
		if dev < 0 {
			dev = -dev
		}
		z := dev / (madConsistency*s.mad + madEpsilon)
		if z >= d.cfg.StragglerZ && dur > s.median {
			out = append(out, Anomaly{
				Kind: AnomalyStraggler, Subject: group, At: at,
				Value: z, Limit: d.cfg.StragglerZ,
				Detail: fmt.Sprintf("task took %.3fs vs group median %.3fs (robust z=%.1f)", dur, s.median, z),
			})
		}
	}
	if len(s.samples) < stragglerCap {
		s.samples = append(s.samples, dur)
	}
	s.sinceFit++
	if !s.fitted && len(s.samples) >= d.cfg.StragglerMinSamples || s.sinceFit >= recomputeEvery {
		s.fit()
	}
	return out
}

// onWarning observes one runtime warning and flags unresponsive-event-loop
// streaks: StreakLen consecutive warnings on one worker, no more than
// StreakGapSeconds apart.
func (d *detectors) onWarning(kind, worker string, at float64) []Anomaly {
	if d.cfg.Disable || kind != string(dask.WarnEventLoop) {
		return nil
	}
	s := d.streaks[worker]
	if s == nil {
		s = &streakAcc{}
		d.streaks[worker] = s
	}
	if s.len > 0 && at-s.lastAt > d.cfg.StreakGapSeconds {
		s.len = 0
	}
	s.len++
	s.lastAt = at
	if s.len == d.cfg.StreakLen {
		an := Anomaly{
			Kind: AnomalyEventLoopStreak, Subject: worker, At: at,
			Value: float64(s.len), Limit: float64(d.cfg.StreakLen),
			Detail: fmt.Sprintf("%d consecutive unresponsive-event-loop warnings within %.0fs gaps", s.len, d.cfg.StreakGapSeconds),
		}
		s.len = 0 // restart so sustained streaks re-fire per StreakLen block
		return []Anomaly{an}
	}
	return nil
}

// onIO observes one I/O segment and flags bandwidth collapse: a worker whose
// just-closed window moved less than CollapseFraction of the window before
// it (and that baseline was at least CollapseMinBytes).
func (d *detectors) onIO(worker string, bytes int64, end float64) []Anomaly {
	if d.cfg.Disable || end < 0 {
		return nil
	}
	c := d.collapse[worker]
	if c == nil {
		c = &collapseAcc{epoch: int64(end / d.windowWidth)}
		d.collapse[worker] = c
	}
	epoch := int64(end / d.windowWidth)
	var out []Anomaly
	for c.epoch < epoch {
		// Close out c.epoch: compare against the window before it.
		if c.prevValid && c.prev >= d.cfg.CollapseMinBytes {
			ratio := float64(c.cur) / float64(c.prev)
			if ratio < d.cfg.CollapseFraction {
				out = append(out, Anomaly{
					Kind: AnomalyIOCollapse, Subject: worker,
					At:    float64(c.epoch+1) * d.windowWidth,
					Value: ratio, Limit: d.cfg.CollapseFraction,
					Detail: fmt.Sprintf("window I/O fell to %d B from %d B (%.0f%%)", c.cur, c.prev, ratio*100),
				})
			}
		}
		c.prev, c.prevValid = c.cur, true
		c.cur = 0
		c.epoch++
	}
	if epoch == c.epoch {
		c.cur += bytes
	}
	return out
}
