package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	root := NewRNG(42)
	a := root.Split("network")
	// Drawing from the root must not perturb a later identical split.
	for i := 0; i < 10; i++ {
		root.Float64()
	}
	b := NewRNG(42).Split("network")
	for i := 0; i < 50; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("Split stream depends on parent consumption")
		}
	}
}

func TestRNGSplitDistinctNames(t *testing.T) {
	root := NewRNG(42)
	a := root.Split("pfs")
	b := root.Split("nic")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams for distinct names look identical (%d/64 equal draws)", same)
	}
}

func TestRNGDistributionsBasicMoments(t *testing.T) {
	g := NewRNG(7)
	const n = 200000
	var sumU, sumN, sumE float64
	for i := 0; i < n; i++ {
		sumU += g.Uniform(2, 4)
		sumN += g.Normal(10, 2)
		sumE += g.Exponential(5)
	}
	if m := sumU / n; math.Abs(m-3) > 0.02 {
		t.Errorf("Uniform(2,4) mean = %.3f, want ~3", m)
	}
	if m := sumN / n; math.Abs(m-10) > 0.05 {
		t.Errorf("Normal(10,2) mean = %.3f, want ~10", m)
	}
	if m := sumE / n; math.Abs(m-5) > 0.1 {
		t.Errorf("Exponential(5) mean = %.3f, want ~5", m)
	}
}

func TestLogNormalMeanMatchesRequestedMean(t *testing.T) {
	g := NewRNG(9)
	const n = 400000
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.LogNormalMean(100, 0.3)
	}
	if m := sum / n; math.Abs(m-100) > 1.0 {
		t.Errorf("LogNormalMean(100, 0.3) mean = %.2f, want ~100", m)
	}
}

func TestLogNormalMeanDegenerate(t *testing.T) {
	g := NewRNG(9)
	if v := g.LogNormalMean(50, 0); v != 50 {
		t.Errorf("cv=0 should return mean exactly, got %v", v)
	}
	if v := g.LogNormalMean(0, 0.5); v != 0 {
		t.Errorf("mean=0 should return 0, got %v", v)
	}
}

func TestParetoBounds(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := g.Pareto(2, 1.5)
		if v < 2 {
			t.Fatalf("Pareto draw %v below xmin", v)
		}
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("Pareto produced %v", v)
		}
	}
}

func TestIntBetweenInclusive(t *testing.T) {
	g := NewRNG(5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := g.IntBetween(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("IntBetween(3,5) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Fatalf("IntBetween(3,5) never produced all of {3,4,5}: %v", seen)
	}
	if v := g.IntBetween(7, 7); v != 7 {
		t.Fatalf("IntBetween(7,7) = %d", v)
	}
	if v := g.IntBetween(9, 2); v != 9 {
		t.Fatalf("IntBetween with hi<lo should return lo, got %d", v)
	}
}

func TestJitterTime(t *testing.T) {
	g := NewRNG(11)
	if d := g.JitterTime(Second, 0); d != Second {
		t.Errorf("cv=0 must not jitter, got %v", d)
	}
	if d := g.JitterTime(0, 0.5); d != 0 {
		t.Errorf("zero duration must stay zero, got %v", d)
	}
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += g.JitterTime(Second, 0.2).Seconds()
	}
	if m := sum / n; math.Abs(m-1) > 0.01 {
		t.Errorf("JitterTime mean = %.4f s, want ~1 s", m)
	}
}

// Property: Split is a pure function of (seed, name).
func TestSplitPureProperty(t *testing.T) {
	prop := func(seed uint64, name string) bool {
		a := NewRNG(seed).Split(name)
		b := NewRNG(seed).Split(name)
		for i := 0; i < 8; i++ {
			if a.Int63() != b.Int63() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: uniform draws respect their bounds.
func TestUniformBoundsProperty(t *testing.T) {
	g := NewRNG(13)
	prop := func(a, b uint16) bool {
		lo, hi := float64(a), float64(a)+float64(b)+1
		v := g.Uniform(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
