// Package chaos is the deterministic fault-injection subsystem: a chaos plan
// parsed from a compact spec string schedules worker crashes and restarts at
// simulated times, Mercury RPC faults (drop / delay / error) through a
// registry interceptor, and broker append (WAL/disk) failures through the
// broker's fault hook.
//
// Determinism is the design center. Worker kills fire at exact virtual
// times on the simulation kernel; RPC and append faults are count-based
// (fault the Nth matching call), so the same seed and spec reproduce the
// identical failure — and recovery — event sequence on every run.
//
// Spec grammar (statements separated by ';', fields by whitespace):
//
//	kill worker=N at=DUR [restart=DUR]
//	broker node=N at=DUR [restart=DUR]
//	scheduler at=DUR | at-task=KEY
//	rpc [addr=S] [rpc=S] op=drop|delay|error [after=N] [count=N] [delay=DUR]
//	wal [topic=S] [partition=N] [after=N] [count=N]
//	slow worker=N at=DUR factor=F [until=DUR]
//	net src=N dst=M factor=F [at=DUR] [until=DUR]
//
// DUR is a Go duration ("30s", "1.5m"). "kill" crashes worker N at virtual
// time at, optionally booting a fresh process restart later. "broker" does
// the same to broker replica N of a sharded Mofka cluster
// (internal/mofka/cluster): the node drops out of the SSG membership, its
// partitions fail over to surviving replicas, and an optional restart
// rejoins it with catch-up. "scheduler" SIGKILLs the whole coordinator
// process (scheduler, client, and every worker die together, taking
// unflushed producer batches with them) either at a virtual time or the
// moment the named task's execution completes; the run can afterwards be
// continued from its data dir with `taskprov resume`. "rpc" faults
// in-process RPCs whose destination address and RPC name match (omitted
// matchers accept anything): after skips that many matching calls first,
// count bounds how many calls are faulted (default 1), and op=delay sleeps
// delay before proceeding. "wal" fails batch appends on matching topic /
// partition the same way.
//
// The last two directives inject gray failures — brownouts rather than
// crashes. "slow" dilates worker N's task compute and I/O service times by
// factor starting at virtual time at, optionally restoring full speed until
// after onset: the worker stays alive, heartbeats, and accepts work, it is
// just slow, which is the failure mode kills cannot express. "net" degrades
// the directed platform link from node src to node dst by factor (latency
// and effective bytes both inflate), optionally starting at at (default:
// from launch) and healing until after onset.
//
// Example: kill 1 of 8 workers two virtual minutes in, restarting it a
// minute later, while the warnings topic's first partition rejects 3
// appends:
//
//	kill worker=3 at=2m restart=1m; wal topic=warnings partition=0 after=10 count=3
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"taskprov/internal/mochi/mercury"
	"taskprov/internal/sim"
)

// Op is an RPC fault operation.
type Op string

// RPC fault operations.
const (
	OpDrop  Op = "drop"  // fail with mercury.ErrTimeout, as if the peer vanished
	OpDelay Op = "delay" // sleep Delay, then dispatch normally
	OpError Op = "error" // fail with a RemoteError, as if the handler errored
)

// Kill crashes a worker at a virtual time, optionally restarting it.
type Kill struct {
	Worker  int
	At      time.Duration
	Restart time.Duration // delay after the kill; 0 = never restart
}

// BrokerKill crashes one broker replica of a Mofka cluster at a virtual
// time, optionally restarting (rejoin + catch-up) it later.
type BrokerKill struct {
	Node    int
	At      time.Duration
	Restart time.Duration // delay after the kill; 0 = never restart
}

// RPCFault faults in-process RPC dispatch for matching calls.
type RPCFault struct {
	Addr  string // exact destination address; "" matches any
	RPC   string // exact RPC name; "" matches any
	Op    Op
	After int           // matching calls to pass through before faulting
	Count int           // matching calls to fault (default 1)
	Delay time.Duration // for OpDelay
}

// WALFault fails broker batch appends for matching partitions.
type WALFault struct {
	Topic     string // "" matches any topic
	Partition int    // -1 matches any partition
	After     int
	Count     int
}

// SchedulerKill crashes the whole coordinator process — scheduler, client,
// and workers die together, mid-run, like kill -9 of the session. Exactly
// one trigger is set: a virtual time (At) or the completion of a named
// task's execution (AtTask).
type SchedulerKill struct {
	At     time.Duration
	AtTask string
}

// Slow dilates one worker's task compute and I/O service times by Factor
// starting at a virtual time — a brownout, not a crash. Until (measured from
// onset, like Kill.Restart) restores full speed; 0 leaves the worker
// degraded for the rest of the run.
type Slow struct {
	Worker int
	At     time.Duration
	Factor float64
	Until  time.Duration
}

// NetFault degrades the directed platform link from node Src to node Dst by
// Factor: latency and effective transferred bytes both inflate. At delays
// the onset (0 = degraded from launch); Until (from onset) heals the link.
type NetFault struct {
	Src    int
	Dst    int
	Factor float64
	At     time.Duration
	Until  time.Duration
}

// Plan is a parsed chaos specification.
type Plan struct {
	Kills      []Kill
	Brokers    []BrokerKill
	Schedulers []SchedulerKill
	RPCs       []RPCFault
	WALs       []WALFault
	Slows      []Slow
	Nets       []NetFault

	// Spec is the original specification string, kept for provenance
	// metadata so a degraded run records what was injected into it.
	Spec string
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Kills) == 0 && len(p.Brokers) == 0 && len(p.Schedulers) == 0 &&
		len(p.RPCs) == 0 && len(p.WALs) == 0 && len(p.Slows) == 0 && len(p.Nets) == 0)
}

// directives is the parser dispatch table: one entry per grammar directive.
// The unknown-directive error lists its keys, so adding a directive here is
// the single step that both parses it and advertises it — the list cannot
// drift out of sync with the grammar.
var directives = map[string]func(kv fieldSet, p *Plan) error{
	"kill":      parseKill,
	"broker":    parseBroker,
	"scheduler": parseScheduler,
	"rpc":       parseRPC,
	"wal":       parseWAL,
	"slow":      parseSlow,
	"net":       parseNet,
}

// directiveNames renders the dispatch table's keys as "a, b, ..., or z" for
// the unknown-directive error.
func directiveNames() string {
	names := make([]string, 0, len(directives))
	for name := range directives {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names[:len(names)-1], ", ") + ", or " + names[len(names)-1]
}

// Parse parses a chaos spec. An empty or whitespace-only spec yields an
// empty plan.
func Parse(spec string) (*Plan, error) {
	p := &Plan{Spec: strings.TrimSpace(spec)}
	for _, stmt := range strings.Split(spec, ";") {
		fields := strings.Fields(stmt)
		if len(fields) == 0 {
			continue
		}
		parse, ok := directives[fields[0]]
		if !ok {
			return nil, fmt.Errorf("chaos: unknown directive %q (want %s)", fields[0], directiveNames())
		}
		kv, err := parseFields(fields[1:])
		if err != nil {
			return nil, fmt.Errorf("chaos: %q: %w", strings.TrimSpace(stmt), err)
		}
		if err := parse(kv, p); err != nil {
			return nil, err
		}
		if err := kv.unused(); err != nil {
			return nil, fmt.Errorf("chaos: %s statement: %w", fields[0], err)
		}
	}
	return p, nil
}

func parseKill(kv fieldSet, p *Plan) error {
	k := Kill{Worker: -1}
	if err := kv.intField("worker", &k.Worker); err != nil {
		return err
	}
	if err := kv.durField("at", &k.At); err != nil {
		return err
	}
	if err := kv.durField("restart", &k.Restart); err != nil {
		return err
	}
	if k.Worker < 0 {
		return fmt.Errorf("chaos: kill requires worker=N")
	}
	if k.At <= 0 {
		return fmt.Errorf("chaos: kill requires at=DURATION")
	}
	p.Kills = append(p.Kills, k)
	return nil
}

func parseBroker(kv fieldSet, p *Plan) error {
	b := BrokerKill{Node: -1}
	if err := kv.intField("node", &b.Node); err != nil {
		return err
	}
	if err := kv.durField("at", &b.At); err != nil {
		return err
	}
	if err := kv.durField("restart", &b.Restart); err != nil {
		return err
	}
	if b.Node < 0 {
		return fmt.Errorf("chaos: broker requires node=N")
	}
	if b.At <= 0 {
		return fmt.Errorf("chaos: broker requires at=DURATION")
	}
	p.Brokers = append(p.Brokers, b)
	return nil
}

func parseScheduler(kv fieldSet, p *Plan) error {
	var sk SchedulerKill
	if err := kv.durField("at", &sk.At); err != nil {
		return err
	}
	sk.AtTask = kv.take("at-task")
	if (sk.At > 0) == (sk.AtTask != "") {
		return fmt.Errorf("chaos: scheduler requires exactly one of at=DURATION or at-task=KEY")
	}
	p.Schedulers = append(p.Schedulers, sk)
	return nil
}

func parseRPC(kv fieldSet, p *Plan) error {
	f := RPCFault{Count: 1}
	f.Addr = kv.take("addr")
	f.RPC = kv.take("rpc")
	f.Op = Op(kv.take("op"))
	if err := kv.intField("after", &f.After); err != nil {
		return err
	}
	if err := kv.intField("count", &f.Count); err != nil {
		return err
	}
	if err := kv.durField("delay", &f.Delay); err != nil {
		return err
	}
	switch f.Op {
	case OpDrop, OpError:
	case OpDelay:
		if f.Delay <= 0 {
			return fmt.Errorf("chaos: rpc op=delay requires delay=DURATION")
		}
	default:
		return fmt.Errorf("chaos: rpc requires op=drop|delay|error, got %q", f.Op)
	}
	if f.Count <= 0 {
		return fmt.Errorf("chaos: rpc count must be positive")
	}
	p.RPCs = append(p.RPCs, f)
	return nil
}

func parseWAL(kv fieldSet, p *Plan) error {
	f := WALFault{Partition: -1, Count: 1}
	f.Topic = kv.take("topic")
	if err := kv.intField("partition", &f.Partition); err != nil {
		return err
	}
	if err := kv.intField("after", &f.After); err != nil {
		return err
	}
	if err := kv.intField("count", &f.Count); err != nil {
		return err
	}
	if f.Count <= 0 {
		return fmt.Errorf("chaos: wal count must be positive")
	}
	p.WALs = append(p.WALs, f)
	return nil
}

func parseSlow(kv fieldSet, p *Plan) error {
	s := Slow{Worker: -1}
	if err := kv.intField("worker", &s.Worker); err != nil {
		return err
	}
	if err := kv.durField("at", &s.At); err != nil {
		return err
	}
	if err := kv.floatField("factor", &s.Factor); err != nil {
		return err
	}
	if err := kv.durField("until", &s.Until); err != nil {
		return err
	}
	if s.Worker < 0 {
		return fmt.Errorf("chaos: slow requires worker=N")
	}
	if s.At <= 0 {
		return fmt.Errorf("chaos: slow requires at=DURATION")
	}
	if s.Factor <= 1 {
		return fmt.Errorf("chaos: slow requires factor>1, got %v", s.Factor)
	}
	p.Slows = append(p.Slows, s)
	return nil
}

func parseNet(kv fieldSet, p *Plan) error {
	n := NetFault{Src: -1, Dst: -1}
	if err := kv.intField("src", &n.Src); err != nil {
		return err
	}
	if err := kv.intField("dst", &n.Dst); err != nil {
		return err
	}
	if err := kv.floatField("factor", &n.Factor); err != nil {
		return err
	}
	if err := kv.durField("at", &n.At); err != nil {
		return err
	}
	if err := kv.durField("until", &n.Until); err != nil {
		return err
	}
	if n.Src < 0 || n.Dst < 0 {
		return fmt.Errorf("chaos: net requires src=N and dst=M")
	}
	if n.Factor <= 1 {
		return fmt.Errorf("chaos: net requires factor>1, got %v", n.Factor)
	}
	p.Nets = append(p.Nets, n)
	return nil
}

// fieldSet holds a statement's key=value fields during parsing.
type fieldSet map[string]string

func parseFields(fields []string) (fieldSet, error) {
	kv := make(fieldSet, len(fields))
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("malformed field %q (want key=value)", f)
		}
		if _, dup := kv[k]; dup {
			return nil, fmt.Errorf("duplicate field %q", k)
		}
		kv[k] = v
	}
	return kv, nil
}

func (kv fieldSet) take(key string) string {
	v := kv[key]
	delete(kv, key)
	return v
}

func (kv fieldSet) intField(key string, dst *int) error {
	v, ok := kv[key]
	if !ok {
		return nil
	}
	delete(kv, key)
	n, err := strconv.Atoi(v)
	if err != nil {
		return fmt.Errorf("chaos: field %s=%q: %w", key, v, err)
	}
	*dst = n
	return nil
}

func (kv fieldSet) floatField(key string, dst *float64) error {
	v, ok := kv[key]
	if !ok {
		return nil
	}
	delete(kv, key)
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return fmt.Errorf("chaos: field %s=%q: %w", key, v, err)
	}
	*dst = f
	return nil
}

func (kv fieldSet) durField(key string, dst *time.Duration) error {
	v, ok := kv[key]
	if !ok {
		return nil
	}
	delete(kv, key)
	d, err := time.ParseDuration(v)
	if err != nil {
		return fmt.Errorf("chaos: field %s=%q: %w", key, v, err)
	}
	*dst = d
	return nil
}

func (kv fieldSet) unused() error {
	if len(kv) == 0 {
		return nil
	}
	var keys []string
	for k := range kv {
		keys = append(keys, k)
	}
	return fmt.Errorf("unknown field(s) %s", strings.Join(keys, ", "))
}

// WorkerKiller is the slice of a Dask cluster the controller needs: the
// ability to crash and restart workers by rank.
type WorkerKiller interface {
	KillWorker(rank int)
	RestartWorker(rank int)
}

// WorkerSlower is the slice of a Dask cluster brownout injection needs: the
// ability to dilate and restore one worker's service times.
type WorkerSlower interface {
	SlowWorker(rank int, factor float64)
	ClearSlowdown(rank int)
}

// LinkDegrader is the slice of the platform model net-fault injection needs.
// *platform.Cluster satisfies it.
type LinkDegrader interface {
	SetLinkFactor(src, dst int, factor float64)
}

// AppendFaulter is the slice of a Mofka broker the controller needs.
type AppendFaulter interface {
	SetAppendFault(func(topic string, partition int) error)
}

// BrokerKiller is the slice of a Mofka cluster the controller needs: the
// ability to crash and restart broker replicas by node id.
// *cluster.Cluster satisfies it.
type BrokerKiller interface {
	Brokers() int
	KillBroker(id int) error
	RestartBroker(id int) error
}

// Controller arms a plan against the systems under test, tracking the
// count-based fault state.
type Controller struct {
	plan *Plan

	mu      sync.Mutex
	rpcSeen []int
	rpcUsed []int
	walSeen []int
	walUsed []int
}

// NewController creates a controller for the plan (which may be nil/empty —
// arming then does nothing).
func NewController(plan *Plan) *Controller {
	if plan == nil {
		plan = &Plan{}
	}
	return &Controller{
		plan:    plan,
		rpcSeen: make([]int, len(plan.RPCs)),
		rpcUsed: make([]int, len(plan.RPCs)),
		walSeen: make([]int, len(plan.WALs)),
		walUsed: make([]int, len(plan.WALs)),
	}
}

// Plan returns the armed plan.
func (c *Controller) Plan() *Plan { return c.plan }

// ArmWorkerFaults schedules the plan's kills and restarts on the simulation
// kernel against a cluster with the given worker count. Call before
// kernel.Run.
func (c *Controller) ArmWorkerFaults(k *sim.Kernel, cl WorkerKiller, workers int) error {
	for _, kill := range c.plan.Kills {
		if kill.Worker >= workers {
			return fmt.Errorf("chaos: kill worker=%d but cluster has %d workers", kill.Worker, workers)
		}
		kk := kill
		k.At(sim.Time(kk.At), func() { cl.KillWorker(kk.Worker) })
		if kk.Restart > 0 {
			k.At(sim.Time(kk.At+kk.Restart), func() { cl.RestartWorker(kk.Worker) })
		}
	}
	return nil
}

// ArmSlowdowns schedules the plan's worker brownouts on the simulation
// kernel against a cluster with the given worker count. Like kills, onsets
// fire at exact virtual times, so the same spec degrades the same task
// executions on every run. Call before kernel.Run.
func (c *Controller) ArmSlowdowns(k *sim.Kernel, cl WorkerSlower, workers int) error {
	for _, slow := range c.plan.Slows {
		if slow.Worker >= workers {
			return fmt.Errorf("chaos: slow worker=%d but cluster has %d workers", slow.Worker, workers)
		}
		ss := slow
		k.At(sim.Time(ss.At), func() { cl.SlowWorker(ss.Worker, ss.Factor) })
		if ss.Until > 0 {
			k.At(sim.Time(ss.At+ss.Until), func() { cl.ClearSlowdown(ss.Worker) })
		}
	}
	return nil
}

// ArmLinkFaults schedules the plan's link degradations against a platform
// with the given node count. Faults with no onset time take effect
// immediately; healed links are restored at exact virtual times. Call before
// kernel.Run.
func (c *Controller) ArmLinkFaults(k *sim.Kernel, net LinkDegrader, nodes int) error {
	for _, nf := range c.plan.Nets {
		if nf.Src >= nodes || nf.Dst >= nodes {
			return fmt.Errorf("chaos: net src=%d dst=%d but platform has %d nodes", nf.Src, nf.Dst, nodes)
		}
		n := nf
		if n.At > 0 {
			k.At(sim.Time(n.At), func() { net.SetLinkFactor(n.Src, n.Dst, n.Factor) })
		} else {
			net.SetLinkFactor(n.Src, n.Dst, n.Factor)
		}
		if n.Until > 0 {
			k.At(sim.Time(n.At+n.Until), func() { net.SetLinkFactor(n.Src, n.Dst, 1) })
		}
	}
	return nil
}

// ArmClusterFaults schedules the plan's broker-replica kills and restarts
// on the simulation kernel against a sharded Mofka cluster. Kill/restart
// errors are ignored at fire time (killing an already-dead node is a no-op
// by design: two overlapping broker directives must not abort the run).
// Call before kernel.Run.
func (c *Controller) ArmClusterFaults(k *sim.Kernel, cl BrokerKiller) error {
	for _, bk := range c.plan.Brokers {
		if bk.Node >= cl.Brokers() {
			return fmt.Errorf("chaos: broker node=%d but cluster has %d brokers", bk.Node, cl.Brokers())
		}
		b := bk
		// Kill/restart errors (unknown broker, already down) cannot happen
		// past the range check above; ignore them explicitly.
		k.At(sim.Time(b.At), func() { _ = cl.KillBroker(b.Node) })
		if b.Restart > 0 {
			k.At(sim.Time(b.At+b.Restart), func() { _ = cl.RestartBroker(b.Node) })
		}
	}
	return nil
}

// ArmSchedulerFaults schedules the plan's time-triggered coordinator kills
// on the simulation kernel. crash must be idempotent (two scheduler
// directives may both fire; only the first takes the process down).
// Task-triggered kills (at-task=KEY) are not armed here — the session wires
// them through its execution-observing plugin, since the kernel cannot see
// task completions. Call before kernel.Run.
func (c *Controller) ArmSchedulerFaults(k *sim.Kernel, crash func(kill SchedulerKill)) {
	for _, sk := range c.plan.Schedulers {
		if sk.At <= 0 || sim.Time(sk.At) <= k.Now() {
			// Kill times are absolute virtual times; one already in the past
			// (a resumed session re-armed with the original spec) cannot fire
			// again.
			continue
		}
		s := sk
		k.At(sim.Time(s.At), func() { crash(s) })
	}
}

// TaskTriggeredSchedulerKills returns the coordinator kills that fire on a
// named task's completion, for the session to arm against its execution
// stream.
func (c *Controller) TaskTriggeredSchedulerKills() []SchedulerKill {
	var out []SchedulerKill
	for _, sk := range c.plan.Schedulers {
		if sk.AtTask != "" {
			out = append(out, sk)
		}
	}
	return out
}

// ArmRegistry installs the plan's RPC faults as the registry's dispatch
// interceptor. A no-op when the plan has no RPC faults.
func (c *Controller) ArmRegistry(reg *mercury.Registry) {
	if len(c.plan.RPCs) == 0 {
		return
	}
	reg.SetInterceptor(func(addr, rpc string, req []byte, next mercury.Handler) ([]byte, error) {
		for i := range c.plan.RPCs {
			f := &c.plan.RPCs[i]
			if f.Addr != "" && f.Addr != addr {
				continue
			}
			if f.RPC != "" && f.RPC != rpc {
				continue
			}
			c.mu.Lock()
			c.rpcSeen[i]++
			fire := c.rpcSeen[i] > f.After && c.rpcUsed[i] < f.Count
			if fire {
				c.rpcUsed[i]++
			}
			c.mu.Unlock()
			if !fire {
				continue
			}
			switch f.Op {
			case OpDrop:
				return nil, fmt.Errorf("%w: chaos dropped %q to %s", mercury.ErrTimeout, rpc, addr)
			case OpError:
				return nil, &mercury.RemoteError{Msg: fmt.Sprintf("chaos: injected failure for %q on %s", rpc, addr)}
			case OpDelay:
				time.Sleep(f.Delay)
			}
		}
		return next(req)
	})
}

// ArmBroker installs the plan's WAL/append faults on the broker. A no-op
// when the plan has no WAL faults.
func (c *Controller) ArmBroker(b AppendFaulter) {
	if len(c.plan.WALs) == 0 {
		return
	}
	b.SetAppendFault(func(topic string, partition int) error {
		for i := range c.plan.WALs {
			f := &c.plan.WALs[i]
			if f.Topic != "" && f.Topic != topic {
				continue
			}
			if f.Partition >= 0 && f.Partition != partition {
				continue
			}
			c.mu.Lock()
			c.walSeen[i]++
			fire := c.walSeen[i] > f.After && c.walUsed[i] < f.Count
			if fire {
				c.walUsed[i]++
			}
			c.mu.Unlock()
			if fire {
				return fmt.Errorf("chaos: injected append fault on %s[%d]", topic, partition)
			}
		}
		return nil
	})
}
