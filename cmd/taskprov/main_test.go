package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCmdList(t *testing.T) {
	if err := cmdList(); err != nil {
		t.Fatal(err)
	}
}

func TestCmdRunWritesArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("full workflow run")
	}
	dir := t.TempDir()
	err := cmdRun([]string{
		"-workflow", "imageprocessing", "-seed", "2", "-runs", "1", "-out", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	runDir := filepath.Join(dir, "imageprocessing-0002")
	for _, p := range []string{
		"metadata.json",
		filepath.Join("darshan", "rank0000.darshan"),
		filepath.Join("mofka", "task-executions.jsonl"),
		filepath.Join("mofka", "transfers.jsonl"),
	} {
		if _, err := os.Stat(filepath.Join(runDir, p)); err != nil {
			t.Fatalf("missing artifact %s: %v", p, err)
		}
	}
}

func TestCmdRunValidation(t *testing.T) {
	if err := cmdRun([]string{"-out", t.TempDir()}); err == nil {
		t.Fatal("missing -workflow accepted")
	}
	if err := cmdRun([]string{"-workflow", "ghost", "-out", t.TempDir()}); err == nil {
		t.Fatal("unknown workflow accepted")
	}
}

func TestCmdRunAblationFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("full workflow run")
	}
	dir := t.TempDir()
	// -no-collect runs without writing artifacts and must not error.
	err := cmdRun([]string{
		"-workflow", "imageprocessing", "-seed", "3", "-out", dir, "-no-collect",
	})
	if err != nil {
		t.Fatal(err)
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 0 {
		t.Fatalf("no-collect run wrote artifacts: %v", entries)
	}
}
