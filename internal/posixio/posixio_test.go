package posixio

import (
	"errors"
	"testing"

	"taskprov/internal/pfs"
	"taskprov/internal/sim"
)

type captureTracer struct {
	opens, reads, writes, closes []OpRecord
	created                      []bool
}

func (c *captureTracer) OpenEvent(r OpRecord, created bool) {
	c.opens = append(c.opens, r)
	c.created = append(c.created, created)
}
func (c *captureTracer) ReadEvent(r OpRecord)  { c.reads = append(c.reads, r) }
func (c *captureTracer) WriteEvent(r OpRecord) { c.writes = append(c.writes, r) }
func (c *captureTracer) CloseEvent(r OpRecord) { c.closes = append(c.closes, r) }

func newFS(seed uint64) (*sim.Kernel, *FS) {
	k := sim.NewKernel(seed)
	cfg := pfs.Lustre()
	cfg.InterferenceLoad = 0
	return k, NewFS(pfs.New(k, cfg))
}

func TestOpenMissingFails(t *testing.T) {
	k, fs := newFS(1)
	var err error
	k.Go(func(p *sim.Proc) {
		_, err = fs.Open(p, nil, 1, "/missing", RDONLY)
	})
	k.Run()
	if !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	k, fs := newFS(1)
	var readN int64
	k.Go(func(p *sim.Proc) {
		f, err := fs.Open(p, nil, 1, "/data/file", WRONLY|CREATE)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if n := f.Write(p, 4096); n != 4096 {
			t.Errorf("write n = %d", n)
		}
		f.Close(p)
		g, err := fs.Open(p, nil, 1, "/data/file", RDONLY)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		readN = g.Read(p, 8192)
		g.Close(p)
	})
	k.Run()
	if readN != 4096 {
		t.Fatalf("read back %d bytes, want 4096", readN)
	}
}

func TestOffsetsAdvance(t *testing.T) {
	k, fs := newFS(1)
	k.Go(func(p *sim.Proc) {
		f, _ := fs.Open(p, nil, 1, "/f", WRONLY|CREATE)
		f.Write(p, 100)
		f.Write(p, 100)
		if f.Offset() != 200 {
			t.Errorf("offset after two writes = %d", f.Offset())
		}
		if f.Size() != 200 {
			t.Errorf("size = %d", f.Size())
		}
		if got := f.Lseek(50, SeekSet); got != 50 {
			t.Errorf("SeekSet = %d", got)
		}
		if got := f.Lseek(10, SeekCur); got != 60 {
			t.Errorf("SeekCur = %d", got)
		}
		if got := f.Lseek(-20, SeekEnd); got != 180 {
			t.Errorf("SeekEnd = %d", got)
		}
		if got := f.Lseek(-1000, SeekSet); got != 0 {
			t.Errorf("negative seek clamps to 0, got %d", got)
		}
	})
	k.Run()
}

func TestTracerSeesAllOps(t *testing.T) {
	k, fs := newFS(1)
	tr := &captureTracer{}
	k.Go(func(p *sim.Proc) {
		f, _ := fs.Open(p, tr, 77, "/traced", WRONLY|CREATE)
		f.Pwrite(p, 0, 1<<20)
		f.Pread(p, 0, 1<<19)
		f.Close(p)
	})
	k.Run()
	if len(tr.opens) != 1 || !tr.created[0] {
		t.Fatalf("opens = %+v created=%v", tr.opens, tr.created)
	}
	if len(tr.writes) != 1 || tr.writes[0].Bytes != 1<<20 || tr.writes[0].TID != 77 {
		t.Fatalf("writes = %+v", tr.writes)
	}
	if len(tr.reads) != 1 || tr.reads[0].Bytes != 1<<19 {
		t.Fatalf("reads = %+v", tr.reads)
	}
	if len(tr.closes) != 1 {
		t.Fatalf("closes = %+v", tr.closes)
	}
	w := tr.writes[0]
	if w.End <= w.Start {
		t.Fatalf("write has no duration: %+v", w)
	}
	if w.Path != "/traced" {
		t.Fatalf("path = %q", w.Path)
	}
}

func TestTracerTimestampsOrdered(t *testing.T) {
	k, fs := newFS(1)
	tr := &captureTracer{}
	k.Go(func(p *sim.Proc) {
		f, _ := fs.Open(p, tr, 1, "/f", WRONLY|CREATE)
		for i := 0; i < 5; i++ {
			f.Write(p, 4096)
		}
		f.Close(p)
	})
	k.Run()
	for i := 1; i < len(tr.writes); i++ {
		if tr.writes[i].Start < tr.writes[i-1].End {
			t.Fatalf("sequential writes overlap: %+v then %+v", tr.writes[i-1], tr.writes[i])
		}
	}
}

func TestCloseIdempotent(t *testing.T) {
	k, fs := newFS(1)
	tr := &captureTracer{}
	k.Go(func(p *sim.Proc) {
		f, _ := fs.Open(p, tr, 1, "/f", WRONLY|CREATE)
		f.Close(p)
		f.Close(p)
	})
	k.Run()
	if len(tr.closes) != 1 {
		t.Fatalf("double close recorded %d events", len(tr.closes))
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	k, fs := newFS(1)
	k.Go(func(p *sim.Proc) {
		f, _ := fs.Open(p, nil, 1, "/f", WRONLY|CREATE)
		f.Write(p, 10)
		f.Read(p, 10)
		f.Close(p)
	})
	k.Run()
}

func TestConcurrentThreadsDistinctTIDs(t *testing.T) {
	k, fs := newFS(1)
	tr := &captureTracer{}
	for tid := uint64(1); tid <= 4; tid++ {
		tid := tid
		k.Go(func(p *sim.Proc) {
			f, _ := fs.Open(p, tr, tid, "/shared", WRONLY|CREATE)
			f.Write(p, 1<<16)
			f.Close(p)
		})
	}
	k.Run()
	tids := map[uint64]bool{}
	for _, w := range tr.writes {
		tids[w.TID] = true
	}
	if len(tids) != 4 {
		t.Fatalf("expected 4 distinct TIDs in trace, got %v", tids)
	}
}
