// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§IV), plus ablations for the design choices DESIGN.md calls
// out. Each benchmark runs the relevant instrumented workflow(s) and prints
// the same rows/series the paper reports, so
//
//	go test -bench=. -benchmem
//
// regenerates the full evaluation. Run counts follow the paper (10 runs for
// ImageProcessing/ResNet152, 50 for XGBOOST) scaled down by default; set
// TASKPROV_FULL=1 for the paper's full counts.
package taskprov_test

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"taskprov/internal/core"
	"taskprov/internal/dask"
	"taskprov/internal/live"
	"taskprov/internal/mofka"
	"taskprov/internal/mofka/wal"
	"taskprov/internal/perfrecup"
	"taskprov/internal/sim"
	"taskprov/internal/workloads"
)

// runsFor scales the paper's run counts down for CI unless TASKPROV_FULL is
// set.
func runsFor(name string) int {
	full := workloads.Runs(name)
	if os.Getenv("TASKPROV_FULL") != "" {
		return full
	}
	if full >= 50 {
		return 8
	}
	return 4
}

// runWorkflow executes one seeded, instrumented run.
func runWorkflow(b *testing.B, name string, seed uint64) *core.RunArtifacts {
	b.Helper()
	wf, err := workloads.New(name)
	if err != nil {
		b.Fatal(err)
	}
	cfg := workloads.DefaultSession(name, fmt.Sprintf("%s-%04d", name, seed), seed)
	art, err := core.Run(cfg, wf)
	if err != nil {
		b.Fatal(err)
	}
	return art
}

// runsParallel executes n seeded runs of a workflow across CPU cores (the
// variability studies are embarrassingly parallel: one kernel per run).
func runsParallel(b *testing.B, name string, n int) []*core.RunArtifacts {
	b.Helper()
	out := make([]*core.RunArtifacts, n)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			wf, err := workloads.New(name)
			if err == nil {
				cfg := workloads.DefaultSession(name, fmt.Sprintf("%s-%04d", name, i+1), uint64(i+1))
				out[i], err = core.Run(cfg, wf)
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		b.Fatal(firstErr)
	}
	return out
}

var printOnce sync.Map

// once prints a section exactly once per benchmark name across b.N
// iterations.
func once(name, body string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", name, body)
	}
}

// BenchmarkTableI regenerates Table I: workflow characteristics with
// min-max ranges over the multi-run study.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var body string
		body += fmt.Sprintf("%-16s %-11s %-14s %-14s %-13s %s\n",
			"Workflows", "Task graphs", "Distinct tasks", "Distinct files", "I/O operation", "Communications")
		for _, name := range workloads.Names() {
			arts := runsParallel(b, name, runsFor(name))
			var graphs, tasks, files int
			opsLo, opsHi := int64(1<<62), int64(0)
			comLo, comHi := int64(1<<62), int64(0)
			for _, art := range arts {
				graphs, _ = art.TaskGraphs()
				tasks, _ = art.DistinctTasks()
				files = art.DistinctFiles()
				ops := art.TotalIOOps()
				comms, _ := art.TotalCommunications()
				if ops < opsLo {
					opsLo = ops
				}
				if ops > opsHi {
					opsHi = ops
				}
				if comms < comLo {
					comLo = comms
				}
				if comms > comHi {
					comHi = comms
				}
			}
			t := workloads.TableI[name]
			body += fmt.Sprintf("%-16s %-11d %-14d %-14d %d-%-7d %d-%d   (paper: %d-%d io, %d-%d comm, %d runs)\n",
				name, graphs, tasks, files, opsLo, opsHi, comLo, comHi,
				t.IOOpsLow, t.IOOpsHigh, t.CommsLow, t.CommsHigh, len(arts))
		}
		once("Table I — Workflow Characteristics", body)
	}
}

// BenchmarkFigure3 regenerates Fig. 3: normalized time per phase (I/O,
// communication, computation, total wall) with cross-run variability.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var stats []perfrecup.PhaseStats
		for _, name := range workloads.Names() {
			arts := runsParallel(b, name, runsFor(name))
			var runs []perfrecup.PhaseBreakdown
			for _, art := range arts {
				ph, err := perfrecup.Phases(art)
				if err != nil {
					b.Fatal(err)
				}
				runs = append(runs, ph)
			}
			stats = append(stats, perfrecup.AggregatePhases(runs))
		}
		once("Figure 3 — Relative time per phase with variability", perfrecup.RenderPhaseStats(stats))
	}
}

// BenchmarkFigure4 regenerates Fig. 4: the ImageProcessing per-thread I/O
// timeline (three read phases each followed by a write phase).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		art := runWorkflow(b, "imageprocessing", uint64(i+1))
		timeline, err := perfrecup.IOTimeline(art, 110, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		once("Figure 4 — Per-thread I/O of ImageProcessing over time", timeline)
	}
}

// BenchmarkFigure5 regenerates Fig. 5: ResNet152 interworker communication
// time versus transfer size, inter- vs intra-node.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		art := runWorkflow(b, "resnet152", uint64(i+1))
		buckets, err := perfrecup.CommScatter(art)
		if err != nil {
			b.Fatal(err)
		}
		once("Figure 5 — ResNet152 communication time vs size", perfrecup.RenderCommScatter(buckets))
	}
}

// BenchmarkFigure6 regenerates Fig. 6: the XGBOOST parallel-coordinates
// task chart (elapsed time, category, thread, output size, duration).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		art := runWorkflow(b, "xgboost", uint64(i+1))
		pc, err := perfrecup.ParallelCoords(art)
		if err != nil {
			b.Fatal(err)
		}
		once("Figure 6 — XGBOOST parallel-coordinates task view", perfrecup.RenderParallelCoords(pc, 15))
	}
}

// BenchmarkFigure7 regenerates Fig. 7: the XGBOOST warning distribution
// over time (unresponsive event loop + GC).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		art := runWorkflow(b, "xgboost", uint64(i+1))
		h, err := perfrecup.WarningHistogram(art, 100)
		if err != nil {
			b.Fatal(err)
		}
		body := perfrecup.RenderWarningHistogram(h, 100)
		loop := h[string(dask.WarnEventLoop)]
		early := 0
		for j, c := range loop.Counts {
			if float64(j)*100 < 500 {
				early += c
			}
		}
		body += fmt.Sprintf("\nevent-loop warnings in first 500s: %d (paper: 297)\n", early)
		once("Figure 7 — XGBOOST warning distribution", body)
	}
}

// BenchmarkFigure8 regenerates Fig. 8: the provenance summary of a
// getitem__get_categories task.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		art := runWorkflow(b, "xgboost", uint64(i+1))
		pc, err := perfrecup.ParallelCoords(art)
		if err != nil {
			b.Fatal(err)
		}
		key := ""
		for r := 0; r < pc.NRows(); r++ {
			k := pc.Col("key").Str(r)
			if dask.KeyPrefix(dask.TaskKey(k)) == "getitem__get_categories" {
				key = k
				break
			}
		}
		if key == "" {
			b.Fatal("no getitem__get_categories task")
		}
		l, err := perfrecup.BuildLineage(art, key)
		if err != nil {
			b.Fatal(err)
		}
		body := l.Render()
		// Also show an I/O-bearing task's lineage: a fused parquet read,
		// whose summary includes the high-fidelity PFS records.
		for r := 0; r < pc.NRows(); r++ {
			k := pc.Col("key").Str(r)
			if dask.KeyPrefix(dask.TaskKey(k)) == "read_parquet-fused-assign" {
				rl, err := perfrecup.BuildLineage(art, k)
				if err != nil {
					b.Fatal(err)
				}
				body += "\n" + rl.Render()
				break
			}
		}
		once("Figure 8 — Task provenance summary", body)
	}
}

// BenchmarkAblationWorkStealing measures the scheduling ablation: work
// stealing on vs off for ImageProcessing (communication count spread and
// wall time).
func BenchmarkAblationWorkStealing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var body string
		for _, stealing := range []bool{true, false} {
			wf, _ := workloads.New("imageprocessing")
			cfg := workloads.DefaultSession("imageprocessing", fmt.Sprintf("ip-steal-%v", stealing), uint64(i+1))
			cfg.Dask.WorkStealing = stealing
			art, err := core.Run(cfg, wf)
			if err != nil {
				b.Fatal(err)
			}
			comms, _ := art.TotalCommunications()
			body += fmt.Sprintf("work-stealing=%-5v wall=%.1fs comms=%d\n",
				stealing, art.Meta.WallSeconds, comms)
		}
		once("Ablation — work stealing", body)
	}
}

// BenchmarkAblationDXTBuffer measures the instrumentation ablation: DXT
// buffer size vs observed I/O ops for ResNet152 (the footnote-9 effect).
func BenchmarkAblationDXTBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var body string
		for _, buf := range []int{64, 287, 4096} {
			wf, _ := workloads.New("resnet152")
			cfg := workloads.DefaultSession("resnet152", fmt.Sprintf("rn-dxt-%d", buf), uint64(i+1))
			cfg.DXTBufferSegments = buf
			art, err := core.Run(cfg, wf)
			if err != nil {
				b.Fatal(err)
			}
			body += fmt.Sprintf("dxt-buffer=%-6d observed-ops=%-6d actual-ops=%-6d complete=%.0f%%\n",
				buf, art.TotalIOOps(), art.TotalPosixOps(),
				100*float64(art.TotalIOOps())/float64(art.TotalPosixOps()))
		}
		once("Ablation — DXT buffer size (footnote 9)", body)
	}
}

// BenchmarkAblationCollectionOverhead compares instrumented vs
// uninstrumented runs (the overhead the paper leaves to future work but
// anticipates to be negligible).
func BenchmarkAblationCollectionOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var body string
		for _, collect := range []bool{true, false} {
			wf, _ := workloads.New("imageprocessing")
			cfg := workloads.DefaultSession("imageprocessing", fmt.Sprintf("ip-col-%v", collect), uint64(i+1))
			cfg.DisableCollection = !collect
			art, err := core.Run(cfg, wf)
			if err != nil {
				b.Fatal(err)
			}
			events := int64(0)
			if art.Collector != nil {
				events = art.Collector.TotalEvents()
			}
			body += fmt.Sprintf("collection=%-5v wall=%.2fs events=%d\n",
				collect, art.Meta.WallSeconds, events)
		}
		once("Ablation — collection on/off", body)
	}
}

// BenchmarkAblationGraphFusion measures Dask's linear-chain fusion on a
// chain-heavy synthetic graph: task count, transfers, and wall time with
// and without the optimizer.
func BenchmarkAblationGraphFusion(b *testing.B) {
	build := func() *dask.Graph {
		g := dask.NewGraph(1)
		for i := 0; i < 200; i++ {
			read := dask.TaskKey(fmt.Sprintf("read_parquet-%04x", i))
			assign := dask.TaskKey(fmt.Sprintf("assign-%04x", i))
			sum := dask.TaskKey(fmt.Sprintf("sum-%04x", i))
			g.Add(&dask.TaskSpec{Key: read, EstDuration: sim.Milliseconds(120), OutputSize: 64 << 20})
			g.Add(&dask.TaskSpec{Key: assign, Deps: []dask.TaskKey{read}, EstDuration: sim.Milliseconds(80), OutputSize: 64 << 20})
			g.Add(&dask.TaskSpec{Key: sum, Deps: []dask.TaskKey{assign}, EstDuration: sim.Milliseconds(40), OutputSize: 1 << 10})
		}
		return g
	}
	type fusionWF struct {
		fuse bool
		core.Workflow
	}
	_ = fusionWF{}
	for i := 0; i < b.N; i++ {
		var body string
		for _, fuse := range []bool{false, true} {
			g := build()
			if fuse {
				g = dask.FuseLinearChains(g, 3)
			}
			wf := &inlineWorkflow{name: "fusion-ablation", graph: g}
			cfg := core.DefaultSessionConfig(fmt.Sprintf("fuse-%v", fuse), uint64(i+1))
			art, err := core.Run(cfg, wf)
			if err != nil {
				b.Fatal(err)
			}
			comms, _ := art.TotalCommunications()
			tasks, _ := art.DistinctTasks()
			body += fmt.Sprintf("fusion=%-5v tasks=%-4d wall=%.1fs comms=%d provenance-events=%d\n",
				fuse, tasks, art.Meta.WallSeconds, comms, art.Collector.TotalEvents())
		}
		once("Ablation — linear-chain fusion", body)
	}
}

// BenchmarkAblationPFSInterference measures the storage ablation: cross-
// application PFS interference load vs ImageProcessing I/O time — the
// variability source the paper attributes to shared storage (§III-C, citing
// CALCioM).
func BenchmarkAblationPFSInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var body string
		for _, load := range []float64{0, 0.15, 0.5} {
			wf, _ := workloads.New("imageprocessing")
			cfg := workloads.DefaultSession("imageprocessing", fmt.Sprintf("ip-noise-%.2f", load), uint64(i+1))
			cfg.PFS.InterferenceLoad = load
			art, err := core.Run(cfg, wf)
			if err != nil {
				b.Fatal(err)
			}
			ph, err := perfrecup.Phases(art)
			if err != nil {
				b.Fatal(err)
			}
			body += fmt.Sprintf("interference=%.2f io-time=%.1fs wall=%.1fs\n",
				load, ph.IOSeconds, art.Meta.WallSeconds)
		}
		once("Ablation — PFS interference load", body)
	}
}

// BenchmarkMofkaProducer measures raw event-streaming throughput by batch
// size (the producer overhead knob the collector exposes).
func BenchmarkMofkaProducer(b *testing.B) {
	for _, batch := range []int{1, 16, 128, 1024} {
		b.Run(fmt.Sprintf("batch-%d", batch), func(b *testing.B) {
			broker := mofka.NewStandaloneBroker()
			topic, err := broker.CreateTopic(mofka.TopicConfig{Name: "bench", Partitions: 2})
			if err != nil {
				b.Fatal(err)
			}
			p := topic.NewProducer(mofka.ProducerOptions{BatchSize: batch})
			meta := mofka.Metadata{"key": "('getitem-abc', 63)", "from": "waiting", "to": "processing", "at": 12.345}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.Push(meta, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := p.Flush(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkWALAppend measures event publish throughput with the durable
// segmented log behind the broker, against the in-memory baseline — the
// "durability within ~2x of in-memory" target. Sub-benchmarks cover the
// three fsync policies; "memory" is the no-WAL baseline.
func BenchmarkWALAppend(b *testing.B) {
	meta := mofka.Metadata{"key": "('getitem-abc', 63)", "from": "waiting", "to": "processing", "at": 12.345}
	for _, mode := range []string{"memory", "never", "interval", "batch"} {
		b.Run(mode, func(b *testing.B) {
			var broker *mofka.Broker
			var err error
			if mode == "memory" {
				broker = mofka.NewStandaloneBroker()
			} else {
				pol, perr := wal.ParseSyncPolicy(mode)
				if perr != nil {
					b.Fatal(perr)
				}
				broker, err = mofka.NewDurableBroker(mofka.Options{
					DataDir: b.TempDir(),
					WAL:     wal.Options{Sync: pol},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			topic, err := broker.CreateTopic(mofka.TopicConfig{Name: "bench"})
			if err != nil {
				b.Fatal(err)
			}
			p := topic.NewProducer(mofka.ProducerOptions{BatchSize: 64})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.Push(meta, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := p.Flush(); err != nil {
				b.Fatal(err)
			}
			if err := broker.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkWALReplay measures crash-recovery speed: how fast a broker
// restart replays an on-disk event log back into servable topics.
func BenchmarkWALReplay(b *testing.B) {
	const events = 50000
	dir := b.TempDir()
	broker, err := mofka.NewDurableBroker(mofka.Options{
		DataDir: dir,
		WAL:     wal.Options{Sync: wal.SyncNever},
	})
	if err != nil {
		b.Fatal(err)
	}
	topic, err := broker.CreateTopic(mofka.TopicConfig{Name: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	p := topic.NewProducer(mofka.ProducerOptions{BatchSize: 256})
	meta := mofka.Metadata{"key": "('getitem-abc', 63)", "from": "waiting", "to": "processing", "at": 12.345}
	for i := 0; i < events; i++ {
		if err := p.Push(meta, nil); err != nil {
			b.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		b.Fatal(err)
	}
	if err := broker.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb, err := mofka.OpenPostMortem(dir)
		if err != nil {
			b.Fatal(err)
		}
		t, err := rb.OpenTopic("bench")
		if err != nil {
			b.Fatal(err)
		}
		if t.Events() != events {
			b.Fatalf("replayed %d events, want %d", t.Events(), events)
		}
		_ = rb.Close()
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// inlineWorkflow adapts a pre-built graph to the core.Workflow interface.
type inlineWorkflow struct {
	name  string
	graph *dask.Graph
}

func (w *inlineWorkflow) Name() string        { return w.name }
func (w *inlineWorkflow) Stage(env *core.Env) {}
func (w *inlineWorkflow) Run(p *sim.Proc, cl *dask.Client, env *core.Env) {
	cl.SubmitAndWait(p, w.graph)
}

// BenchmarkLiveAggregation measures the live monitor's streaming-ingest
// throughput: how many provenance events per second the aggregator (windowed
// aggregates + online anomaly detectors) absorbs. This bounds the event rate
// a single in-process monitor can follow without lagging the run.
func BenchmarkLiveAggregation(b *testing.B) {
	// A representative event mix: mostly executions, some transfers and
	// transitions, occasional warnings — pre-encoded so the benchmark times
	// aggregation, not metadata construction.
	type in struct {
		topic string
		part  int
		m     mofka.Metadata
	}
	var mix []in
	for i := 0; i < 64; i++ {
		key := dask.TaskKey(fmt.Sprintf("getitem-%04d", i))
		worker := fmt.Sprintf("10.0.0.%d:9000", i%8)
		at := float64(i) * 0.05
		mix = append(mix, in{core.TopicExecutions, i % 2, core.ExecutionEvent(dask.TaskExecution{
			Key: key, Worker: worker, Hostname: fmt.Sprintf("nid%05d", i%4),
			Start: sim.Seconds(at), Stop: sim.Seconds(at + 0.8), OutputSize: 1 << 16, GraphID: 1,
		})})
		mix = append(mix, in{core.TopicTransitions, i % 2, core.TransitionEvent(dask.Transition{
			Key: key, From: "processing", To: "memory", At: sim.Seconds(at + 0.8),
		})})
		if i%4 == 0 {
			mix = append(mix, in{core.TopicTransfers, i % 2, core.TransferEvent(dask.Transfer{
				Key: key, From: worker, To: "10.0.0.9:9000", Bytes: 1 << 20,
				Start: sim.Seconds(at), Stop: sim.Seconds(at + 0.01),
			})})
		}
		if i%16 == 0 {
			mix = append(mix, in{core.TopicWarnings, i % 2, core.WarningEvent(dask.Warning{
				Kind: dask.WarnEventLoop, Worker: worker, At: sim.Seconds(at), Duration: sim.Seconds(1.2),
			})})
		}
	}
	agg := live.NewAggregator(live.AggregatorOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := mix[i%len(mix)]
		agg.IngestEvent(e.topic, e.part, e.m)
	}
	b.StopTimer()
	if s := agg.Snapshot(); s.Events == 0 {
		b.Fatal("aggregator ingested nothing")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}
