package perfrecup

import (
	"fmt"
	"sort"
	"strings"

	"taskprov/internal/core"
	"taskprov/internal/dask"
)

// Lineage is the full provenance record of one task (Fig. 8): identity,
// dependencies, every state transition with location and timestamp, the
// execution placement, data movements of its result, and the high-fidelity
// I/O records attributed to it.
type Lineage struct {
	Key     string
	Prefix  string
	Group   string
	GraphID int
	Deps    []string

	SubmittedAt float64

	States []LineageState

	Worker     string
	Hostname   string
	ThreadID   uint64
	Start      float64
	Stop       float64
	OutputSize int64

	Movements []LineageMove
	IO        []LineageIO

	Steals []string
}

// LineageState is one captured transition.
type LineageState struct {
	From, To, Stimulus, Location string
	At                           float64
}

// LineageMove is one movement of the task's result between workers.
type LineageMove struct {
	From, To string
	Bytes    int64
	At       float64
	SameNode bool
}

// LineageIO is one POSIX operation issued by the task.
type LineageIO struct {
	Mount  string
	Path   string
	Op     string
	Offset int64
	Bytes  int64
	Start  float64
	End    float64
}

// BuildLineage assembles the provenance summary of key from a run's
// artifacts, fusing the Mofka streams with the Darshan trace exactly as the
// paper's Fig. 8 does.
func BuildLineage(art *core.RunArtifacts, key string) (*Lineage, error) {
	l := &Lineage{Key: key, Prefix: dask.KeyPrefix(dask.TaskKey(key)), Group: dask.KeyGroup(dask.TaskKey(key))}

	metas, err := core.DrainTopic(art.Broker, core.TopicTaskMeta)
	if err != nil {
		return nil, err
	}
	found := false
	for _, m := range metas {
		tm := core.ParseTaskMeta(m)
		if string(tm.Key) == key {
			l.GraphID = tm.GraphID
			l.SubmittedAt = tm.At.Seconds()
			for _, d := range tm.Deps {
				l.Deps = append(l.Deps, string(d))
			}
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("perfrecup: task %q not found in run %s", key, art.Meta.JobID)
	}

	trans, err := core.DrainTopic(art.Broker, core.TopicTransitions)
	if err != nil {
		return nil, err
	}
	for _, m := range trans {
		t := core.ParseTransition(m)
		if string(t.Key) == key {
			l.States = append(l.States, LineageState{
				From: string(t.From), To: string(t.To),
				Stimulus: t.Stimulus, Location: t.Location, At: t.At.Seconds(),
			})
		}
	}
	sort.Slice(l.States, func(a, b int) bool { return l.States[a].At < l.States[b].At })

	execs, err := core.DrainTopic(art.Broker, core.TopicExecutions)
	if err != nil {
		return nil, err
	}
	for _, m := range execs {
		e := core.ParseExecution(m)
		if string(e.Key) == key {
			l.Worker = e.Worker
			l.Hostname = e.Hostname
			l.ThreadID = e.ThreadID
			l.Start = e.Start.Seconds()
			l.Stop = e.Stop.Seconds()
			l.OutputSize = e.OutputSize
		}
	}

	transfers, err := core.DrainTopic(art.Broker, core.TopicTransfers)
	if err != nil {
		return nil, err
	}
	for _, m := range transfers {
		t := core.ParseTransfer(m)
		if string(t.Key) == key {
			l.Movements = append(l.Movements, LineageMove{
				From: t.From, To: t.To, Bytes: t.Bytes,
				At: t.Stop.Seconds(), SameNode: t.SameNode,
			})
		}
	}

	steals, err := core.DrainTopic(art.Broker, core.TopicSteals)
	if err != nil {
		return nil, err
	}
	for _, m := range steals {
		s := core.ParseSteal(m)
		if string(s.Key) == key {
			l.Steals = append(l.Steals, fmt.Sprintf("%s -> %s @ %.3fs", s.Victim, s.Thief, s.At.Seconds()))
		}
	}

	// I/O records: DXT segments on the task's (hostname, thread) within its
	// execution window.
	mount := art.Meta.Storage.Mount
	for _, dl := range art.DarshanLogs {
		if dl.Job.Hostname != l.Hostname {
			continue
		}
		for _, rec := range dl.Records {
			for _, s := range rec.DXT {
				if s.TID == l.ThreadID && s.Start >= l.Start && s.End <= l.Stop {
					l.IO = append(l.IO, LineageIO{
						Mount: mount, Path: rec.Path, Op: s.Op.String(),
						Offset: s.Offset, Bytes: s.Length, Start: s.Start, End: s.End,
					})
				}
			}
		}
	}
	sort.Slice(l.IO, func(a, b int) bool { return l.IO[a].Start < l.IO[b].Start })
	return l, nil
}

// Render formats the lineage as an indented provenance summary, in the
// spirit of the paper's Fig. 8.
func (l *Lineage) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "task %s\n", l.Key)
	fmt.Fprintf(&b, "├─ prefix: %s\n", l.Prefix)
	fmt.Fprintf(&b, "├─ group: %s\n", l.Group)
	fmt.Fprintf(&b, "├─ graph: %d (submitted %.3fs)\n", l.GraphID, l.SubmittedAt)
	fmt.Fprintf(&b, "├─ dependencies: %d\n", len(l.Deps))
	for i, d := range l.Deps {
		if i == 4 && len(l.Deps) > 5 {
			fmt.Fprintf(&b, "│   └─ … %d more\n", len(l.Deps)-4)
			break
		}
		fmt.Fprintf(&b, "│   ├─ %s\n", d)
	}
	fmt.Fprintf(&b, "├─ states:\n")
	for _, s := range l.States {
		fmt.Fprintf(&b, "│   ├─ %s→%s (%s) @ %.6fs on %s\n", s.From, s.To, s.Stimulus, s.At, s.Location)
	}
	fmt.Fprintf(&b, "├─ executed on %s (%s) thread %d, [%.6fs, %.6fs], output %d bytes\n",
		l.Worker, l.Hostname, l.ThreadID, l.Start, l.Stop, l.OutputSize)
	if len(l.Steals) > 0 {
		fmt.Fprintf(&b, "├─ work stealing:\n")
		for _, s := range l.Steals {
			fmt.Fprintf(&b, "│   ├─ %s\n", s)
		}
	}
	if len(l.Movements) > 0 {
		fmt.Fprintf(&b, "├─ result movements:\n")
		for _, m := range l.Movements {
			loc := "inter-node"
			if m.SameNode {
				loc = "intra-node"
			}
			fmt.Fprintf(&b, "│   ├─ %s → %s, %d bytes @ %.6fs (%s)\n", m.From, m.To, m.Bytes, m.At, loc)
		}
	}
	fmt.Fprintf(&b, "└─ I/O records (%d):\n", len(l.IO))
	for _, io := range l.IO {
		fmt.Fprintf(&b, "    ├─ PFS %s %s %s off=%d len=%d [%.6fs, %.6fs]\n",
			io.Mount, io.Op, io.Path, io.Offset, io.Bytes, io.Start, io.End)
	}
	return b.String()
}
