// Package live_test holds the cross-subsystem acceptance test for the
// live/post-mortem aggregate-equivalence invariant: a real core.Run with the
// live monitor attached must produce end-of-run aggregates identical to
// every post-mortem path over the same data — in-memory artifact replay,
// durable-WAL replay, and the WAL tailer.
package live_test

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"taskprov/internal/core"
	"taskprov/internal/dask"
	"taskprov/internal/live"
	"taskprov/internal/perfrecup"
	"taskprov/internal/posixio"
	"taskprov/internal/sim"
)

// miniWorkflow mirrors the perfrecup test workload: 24 I/O-bound loads, one
// event-loop-blocking task, a reduce, and a second graph writing the result.
type miniWorkflow struct{ files int }

func (m *miniWorkflow) Name() string { return "mini" }

func (m *miniWorkflow) Stage(env *core.Env) {
	for i := 0; i < m.files; i++ {
		env.PFS.CreateNow(fmt.Sprintf("/lus/in/f%03d", i), 4<<20)
	}
}

func (m *miniWorkflow) Run(p *sim.Proc, cl *dask.Client, env *core.Env) {
	g := dask.NewGraph(1)
	var deps []dask.TaskKey
	for i := 0; i < m.files; i++ {
		i := i
		key := dask.TaskKey(fmt.Sprintf("load-%04d", i))
		deps = append(deps, key)
		g.Add(&dask.TaskSpec{
			Key: key, OutputSize: 4 << 20,
			Run: func(ctx *dask.TaskContext) {
				f, err := ctx.Open(fmt.Sprintf("/lus/in/f%03d", i), posixio.RDONLY)
				if err != nil {
					panic(err)
				}
				f.Read(ctx.Proc(), 4<<20)
				f.Close(ctx.Proc())
				ctx.Compute(sim.Milliseconds(80))
			},
		})
	}
	g.Add(&dask.TaskSpec{
		Key: "slow-blocker-01", OutputSize: 1 << 20,
		EstDuration: sim.Seconds(8), BlocksEventLoop: true,
	})
	g.Add(&dask.TaskSpec{Key: "reduce-0000", Deps: deps, EstDuration: sim.Milliseconds(60), OutputSize: 128})
	cl.SubmitAndWait(p, g)

	g2 := dask.NewGraph(2)
	g2.AddExternal("reduce-0000")
	g2.Add(&dask.TaskSpec{
		Key: "writer-0001", Deps: []dask.TaskKey{"reduce-0000"}, OutputSize: 64,
		Run: func(ctx *dask.TaskContext) {
			f, err := ctx.Open("/lus/out/result", posixio.WRONLY|posixio.CREATE)
			if err != nil {
				panic(err)
			}
			f.Write(ctx.Proc(), 1<<20)
			f.Close(ctx.Proc())
			ctx.Compute(sim.Milliseconds(20))
		},
	})
	cl.SubmitAndWait(p, g2)
}

// strip drops the two surfaces the invariant excludes: trailing time
// windows (a UI affordance over recent wall-clock) and anomaly order (the
// online detectors see events in arrival order, replay sees canonical
// order).
func strip(s live.Summary) live.Summary {
	s.Windows = nil
	s.Anomalies = nil
	return s
}

type liveRun struct {
	art     *core.RunArtifacts
	dataDir string
}

var cached *liveRun

// TestMain owns the cached run's data dir: t.TempDir() would be removed
// when the first test using the shared run finishes, breaking the
// post-mortem tests that read the same WAL afterwards.
func TestMain(m *testing.M) {
	code := m.Run()
	if cached != nil {
		os.RemoveAll(filepath.Dir(cached.dataDir))
	}
	os.Exit(code)
}

func monitoredRun(t *testing.T) *liveRun {
	t.Helper()
	if cached != nil {
		return cached
	}
	root, err := os.MkdirTemp("", "live-crosscheck-")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "wal")
	cfg := core.DefaultSessionConfig("job-mini", 11)
	cfg.Platform.NodeSpeedCV = 0
	cfg.PFS.InterferenceLoad = 0
	cfg.Dask.WorkersPerNode = 2
	cfg.Dask.ThreadsPerWorker = 2
	cfg.Dask.EventLoopMonitorThreshold = sim.Seconds(1)
	cfg.MofkaDataDir = dir
	cfg.LiveMonitor = true
	art, err := core.Run(cfg, &miniWorkflow{files: 24})
	if err != nil {
		t.Fatal(err)
	}
	if art.Live == nil {
		t.Fatal("LiveMonitor was enabled but art.Live is nil")
	}
	cached = &liveRun{art: art, dataDir: dir}
	return cached
}

// TestLiveEqualsArtifactReplay: the monitor's streaming result over a real
// run equals PERFRECUP's canonical replay of the in-memory artifacts.
func TestLiveEqualsArtifactReplay(t *testing.T) {
	r := monitoredRun(t)
	want, err := perfrecup.LiveReplay(r.art, live.AggregatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(strip(*r.art.Live), strip(want)) {
		t.Fatalf("live summary != artifact replay:\nlive:   %+v\nreplay: %+v", strip(*r.art.Live), strip(want))
	}
	// Sanity: the run actually exercised every aggregate surface.
	s := r.art.Live
	if s.Tasks != 27 || s.Submitted != 27 || s.GraphsDone != 2 {
		t.Fatalf("tasks=%d submitted=%d graphs=%d", s.Tasks, s.Submitted, s.GraphsDone)
	}
	if s.IOOps == 0 || s.IOBytes == 0 || len(s.HostIO) == 0 {
		t.Fatalf("darshan aggregates missing: io_ops=%d io_bytes=%d hosts=%d", s.IOOps, s.IOBytes, len(s.HostIO))
	}
	if s.Groups["load"].Count != 24 {
		t.Fatalf("groups = %+v", s.Groups)
	}
	if s.Warnings["unresponsive_event_loop"] == 0 {
		t.Fatalf("warnings = %v", s.Warnings)
	}
}

// TestLiveEqualsWALReplay: the same equality holds against the durable data
// dir, through both perfrecup.LoadEventLog and live.ReplayDataDir.
func TestLiveEqualsWALReplay(t *testing.T) {
	r := monitoredRun(t)

	post, err := perfrecup.LoadEventLog(r.dataDir)
	if err != nil {
		t.Fatal(err)
	}
	fromLog, err := perfrecup.LiveReplay(post, live.AggregatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(strip(*r.art.Live), strip(fromLog)) {
		t.Fatal("live summary != replay of perfrecup.LoadEventLog artifacts")
	}

	fromDir, err := live.ReplayDataDir(r.dataDir, live.AggregatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(strip(*r.art.Live), strip(fromDir)) {
		t.Fatalf("live summary != ReplayDataDir:\nlive: %+v\ndir:  %+v", strip(*r.art.Live), strip(fromDir))
	}
}

// TestLiveEqualsPhases: the Fig. 3 phase decomposition PERFRECUP reports is
// bit-for-bit the one the live monitor streamed.
func TestLiveEqualsPhases(t *testing.T) {
	r := monitoredRun(t)
	ph, err := perfrecup.Phases(r.art)
	if err != nil {
		t.Fatal(err)
	}
	s := r.art.Live
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"io", ph.IOSeconds, s.IOSeconds},
		{"comm", ph.CommSeconds, s.CommSeconds},
		{"compute", ph.ComputeSeconds, s.ComputeSeconds},
		{"total", ph.TotalSeconds, s.WallSeconds},
	} {
		if c.got != c.want || math.IsNaN(c.got) {
			t.Errorf("phase %s: perfrecup=%v live=%v", c.name, c.got, c.want)
		}
	}
	if ph.ThreadSlots != s.ThreadSlots || ph.Tasks != s.Tasks || ph.IOOps != s.IOOps {
		t.Errorf("slots/tasks/ioops mismatch: %+v vs live %+v", ph, s)
	}
	if ph.IOSeconds <= 0 || ph.ComputeSeconds <= 0 {
		t.Errorf("degenerate phases: %+v", ph)
	}
}

// TestWatchServesCrashedRun: `taskprov watch -data-dir` on the WAL of a run
// that never shut down cleanly (the kill -9 scenario — the WAL is written
// crash-consistently, so a dir mid-run looks exactly like a crashed one)
// serves the same snapshot as direct post-mortem replay.
func TestWatchServesCrashedRun(t *testing.T) {
	r := monitoredRun(t)
	tail, err := live.TailWAL(r.dataDir, live.TailOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Stop()
	if !reflect.DeepEqual(strip(tail.Snapshot()), strip(*r.art.Live)) {
		t.Fatal("WAL tailer snapshot != live summary")
	}
	if w := tail.Snapshot().Workflow; w != "mini" {
		t.Fatalf("workflow from metadata.json = %q", w)
	}
}
