package dask

import (
	"fmt"
	"testing"

	"taskprov/internal/sim"
)

// proxyCfg enables the pass-by-reference data plane with the given
// threshold on top of the small test cluster.
func proxyCfg(threshold int64) Config {
	cfg := smallCfg()
	cfg.ProxyThresholdBytes = threshold
	return cfg
}

// gatherGraph builds width independent producers of size-byte outputs — the
// shape where pass-by-reference pays: the client gathers every output.
func gatherGraph(id, width int, size int64) (*Graph, []TaskKey) {
	g := NewGraph(id)
	var keys []TaskKey
	for i := 0; i < width; i++ {
		k := TaskKey(fmt.Sprintf("big-%02d", i))
		g.Add(&TaskSpec{Key: k, EstDuration: sim.Milliseconds(100), OutputSize: size})
		keys = append(keys, k)
	}
	return g, keys
}

// countProxyOps tallies the recorded proxy events per operation.
func countProxyOps(evs []ProxyEvent) map[string]int {
	ops := make(map[string]int)
	for _, ev := range evs {
		ops[ev.Op]++
	}
	return ops
}

// TestProxyTransferRecords runs the wide graph with a threshold below the
// intermediate output sizes: every src and mid output publishes as a blob,
// remote consumers fetch them peer-to-peer (transfers marked ViaProxy with
// a demand-to-arrival latency), and refcount drain returns the store to
// empty once the dependents finish.
func TestProxyTransferRecords(t *testing.T) {
	env := newEnv(1, proxyCfg(1<<10))
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, wideGraph(1, 16))
	})
	if len(env.rec.execs) != 33 {
		t.Fatalf("executions = %d, want 33", len(env.rec.execs))
	}

	// 16 srcs (1MB) and 16 mids (256KB) are proxied; the 256B sink is not.
	ops := countProxyOps(env.rec.proxyEvents)
	if ops[ProxyOpPublish] != 32 {
		t.Fatalf("publishes = %d, want 32 (ops %v)", ops[ProxyOpPublish], ops)
	}
	if ops[ProxyOpMiss] != 0 || ops[ProxyOpReclaim] != 0 {
		t.Fatalf("fault-free run recorded misses/reclaims: %v", ops)
	}

	var viaProxy int
	for _, tr := range env.rec.transfers {
		if tr.ViaProxy {
			viaProxy++
			if tr.ResolveLatency <= 0 {
				t.Fatalf("proxied transfer of %s has resolve latency %v", tr.Key, tr.ResolveLatency)
			}
			if tr.Bytes < 1<<10 {
				t.Fatalf("proxied transfer of %s below threshold: %d bytes", tr.Key, tr.Bytes)
			}
		}
	}
	if viaProxy == 0 {
		t.Fatal("no transfer went via the proxy store")
	}
	if ops[ProxyOpResolve] != viaProxy {
		t.Fatalf("resolve events = %d, via-proxy transfers = %d", ops[ProxyOpResolve], viaProxy)
	}

	// Every blob's refcount drained: the store is back to empty and every
	// publish has a matching free.
	st := env.c.ProxyStats()
	if st.Live != 0 || st.Resident != 0 {
		t.Fatalf("store not drained: %+v (keys %v)", st, env.c.ProxyStore().Keys())
	}
	if st.Frees != st.Publishes {
		t.Fatalf("frees = %d, publishes = %d", st.Frees, st.Publishes)
	}
	if env.c.ControlPathBytes() == 0 {
		t.Fatal("control-path accounting recorded nothing")
	}
}

// TestProxyPrefetchResolvesEagerly contrasts the two resolution modes: with
// prefetch the worker fetches proxied dependencies at assignment (no
// "proxy-resolve" fetch transition), while the lazy default defers them to
// first use (dispatch time), which shows up as proxy-resolve stimuli.
func TestProxyPrefetchResolvesEagerly(t *testing.T) {
	countResolveStims := func(trans []Transition) int {
		n := 0
		for _, tr := range trans {
			if tr.Stimulus == "proxy-resolve" {
				n++
			}
		}
		return n
	}
	run := func(prefetch bool) (*recorder, int) {
		cfg := proxyCfg(1 << 10)
		cfg.ProxyPrefetch = prefetch
		env := newEnv(3, cfg)
		env.runWorkflow(func(p *sim.Proc, cl *Client) {
			cl.SubmitAndWait(p, wideGraph(1, 16))
		})
		return env.rec, countResolveStims(env.rec.workerTrans)
	}

	recLazy, lazyStims := run(false)
	recEager, eagerStims := run(true)

	if eagerStims != 0 {
		t.Fatalf("prefetch mode recorded %d proxy-resolve transitions", eagerStims)
	}
	var lazyProxied, eagerProxied int
	for _, tr := range recLazy.transfers {
		if tr.ViaProxy {
			lazyProxied++
		}
	}
	for _, tr := range recEager.transfers {
		if tr.ViaProxy {
			eagerProxied++
		}
	}
	if lazyProxied == 0 || eagerProxied == 0 {
		t.Fatalf("proxied transfers: lazy %d, eager %d — want both > 0", lazyProxied, eagerProxied)
	}
	// Every lazy remote resolution was deferred to dispatch.
	if lazyStims == 0 {
		t.Fatalf("lazy mode resolved %d proxied transfers without proxy-resolve transitions", lazyProxied)
	}
}

// TestProxyCrashRecovers kills a worker mid-run with the proxy plane on:
// dangling references to the victim's blobs must fall back to the
// missing-data recovery path — the lost keys recompute and republish under
// new owners — and the run must still complete with the store drained back
// to empty.
func TestProxyCrashRecovers(t *testing.T) {
	env := newEnv(42, proxyCfg(1<<17))
	victim := 2
	env.k.At(sim.Seconds(4.2), func() { env.c.KillWorker(victim) })
	g := wideGraph(1, 16)
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
		if e := cl.GraphError(1); e != "" {
			t.Errorf("graph erred: %s", e)
		}
	})
	if !env.c.Scheduler().HasInMemory("sink-00") {
		t.Fatal("sink result missing")
	}

	// Recomputed keys republished: more publishes than distinct proxied keys
	// (16 srcs + 16 mids; the 256B sink is below the 128KB threshold).
	ops := countProxyOps(env.rec.proxyEvents)
	if ops[ProxyOpPublish] <= 32 {
		t.Fatalf("publishes = %d, want > 32 (lost keys recomputed; ops %v)", ops[ProxyOpPublish], ops)
	}

	// No acknowledged result was lost and the refcounts drained: resident
	// bytes are back to the fault-free baseline (zero).
	st := env.c.ProxyStats()
	if st.Live != 0 || st.Resident != 0 {
		t.Fatalf("orphaned blobs leaked: %+v (keys %v)", st, env.c.ProxyStore().Keys())
	}

	// The per-event resident deltas reconcile with the final footprint:
	// published bytes equal freed+reclaimed bytes.
	var published, released int64
	for _, ev := range env.rec.proxyEvents {
		switch ev.Op {
		case ProxyOpPublish:
			published += ev.Bytes
		case ProxyOpFree, ProxyOpReclaim:
			released += ev.Bytes
		}
	}
	if published != released {
		t.Fatalf("resident delta stream unbalanced: published %d, released %d", published, released)
	}
}

// TestProxyEvictionReclaimsOrphans makes a worker die while owning blobs
// nothing fetches before the TTL sweep: retained graph outputs. Eviction
// must reclaim the orphans, emit reclaim provenance and the recovery
// warning, and keep the resident delta stream balanced.
func TestProxyEvictionReclaimsOrphans(t *testing.T) {
	env := newEnv(5, proxyCfg(1<<17))
	g := NewGraph(1)
	for i := 0; i < 12; i++ {
		g.Add(&TaskSpec{Key: TaskKey(fmt.Sprintf("out-%02d", i)),
			EstDuration: sim.Seconds(1), OutputSize: 1 << 20})
	}
	victim := 1
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
		// All 12 outputs are retained in memory across the cluster. Kill a
		// worker and sit past WorkerTTL so the eviction sweep runs with the
		// victim's blobs still live.
		env.c.KillWorker(victim)
		p.Sleep(env.c.cfg.WorkerTTL + sim.Seconds(3))
	})

	ops := countProxyOps(env.rec.proxyEvents)
	if ops[ProxyOpReclaim] == 0 {
		t.Fatalf("no blobs reclaimed from the dead worker (ops %v)", ops)
	}
	if warningKinds(env.rec.warnings)[WarnBlobReclaimed] == 0 {
		t.Fatal("no blob-reclaimed recovery warning")
	}
	st := env.c.ProxyStats()
	if st.Reclaims == 0 {
		t.Fatalf("store stats show no reclaims: %+v", st)
	}

	// Balance: published == released + still-resident (outputs the survivors
	// hold, plus any the eviction recomputed and republished).
	var published, released int64
	for _, ev := range env.rec.proxyEvents {
		switch ev.Op {
		case ProxyOpPublish:
			published += ev.Bytes
		case ProxyOpFree, ProxyOpReclaim:
			released += ev.Bytes
		}
	}
	if published != released+st.Resident {
		t.Fatalf("resident delta stream unbalanced: published %d, released %d, resident %d",
			published, released, st.Resident)
	}
}

// TestGatherControlBytes is the acceptance bar for the tentpole: gathering
// large outputs through the proxy store must cut the scheduler's
// control-path bytes at least 10× versus direct relay, without changing the
// payload the client receives.
func TestGatherControlBytes(t *testing.T) {
	const width, size = 16, 64 << 20
	run := func(threshold int64) (controlBytes, gathered int64) {
		cfg := smallCfg()
		cfg.ProxyThresholdBytes = threshold
		env := newEnv(11, cfg)
		g, keys := gatherGraph(1, width, size)
		env.runWorkflow(func(p *sim.Proc, cl *Client) {
			cl.SubmitAndWait(p, g)
			gathered = cl.Gather(p, keys)
		})
		return env.c.ControlPathBytes(), gathered
	}

	direct, directBytes := run(0)
	proxy, proxyBytes := run(1 << 20)

	if want := int64(width) * size; directBytes != want || proxyBytes != want {
		t.Fatalf("gathered bytes: direct %d, proxy %d, want %d", directBytes, proxyBytes, want)
	}
	if direct < 10*proxy {
		t.Fatalf("control-path bytes: direct %d, proxy %d — want >= 10x reduction (got %.1fx)",
			direct, proxy, float64(direct)/float64(proxy))
	}
}

// BenchmarkProxyTransfer measures the simulated gather of 16 × 64MB outputs
// with and without the proxy store, reporting the scheduler control-path
// bytes each mode moves per run.
func BenchmarkProxyTransfer(b *testing.B) {
	const width, size = 16, 64 << 20
	bench := func(b *testing.B, threshold int64) {
		var control int64
		for i := 0; i < b.N; i++ {
			cfg := smallCfg()
			cfg.ProxyThresholdBytes = threshold
			env := newEnv(uint64(11+i), cfg)
			g, keys := gatherGraph(1, width, size)
			env.runWorkflow(func(p *sim.Proc, cl *Client) {
				cl.SubmitAndWait(p, g)
				cl.Gather(p, keys)
			})
			control = env.c.ControlPathBytes()
		}
		b.ReportMetric(float64(control), "control-B/op")
	}
	b.Run("direct", func(b *testing.B) { bench(b, 0) })
	b.Run("proxy", func(b *testing.B) { bench(b, 1<<20) })
}
