package mofka

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestCloseShipsLastBatch is the regression test for the final partial
// batch: events pushed after the last size-triggered flush must be shipped
// by Close, not abandoned with the producer.
func TestCloseShipsLastBatch(t *testing.T) {
	_, tp := newTopic(t, "t", 1)
	p := tp.NewProducer(ProducerOptions{BatchSize: 128})
	for i := 0; i < 3; i++ {
		if err := p.Push(Metadata{"i": i}, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := tp.Events(); got != 0 {
		t.Fatalf("events visible before flush: %d", got)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got := tp.Events(); got != 3 {
		t.Fatalf("events after Close = %d, want 3", got)
	}
	if err := p.Push(Metadata{"i": 9}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after Close err = %v, want ErrClosed", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestFlushRetainsBatchOnFault: a failing append must keep the sealed batch
// buffered (degraded mode), and a later flush after the fault clears must
// deliver every event exactly once.
func TestFlushRetainsBatchOnFault(t *testing.T) {
	b, tp := newTopic(t, "t", 1)
	var degraded, recovered int
	p := tp.NewProducer(ProducerOptions{
		BatchSize:    128,
		FlushRetries: 1,
		RetryBackoff: time.Millisecond,
		OnDegraded:   func(error) { degraded++ },
		OnRecovered:  func() { recovered++ },
	})
	for i := 0; i < 5; i++ {
		if err := p.Push(Metadata{"i": i}, []byte(fmt.Sprintf("d%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	bang := errors.New("disk on fire")
	b.SetAppendFault(func(string, int) error { return bang })

	if err := p.Flush(); !errors.Is(err, bang) {
		t.Fatalf("flush under fault err = %v, want %v", err, bang)
	}
	if !p.Degraded() || p.Backlog() != 1 {
		t.Fatalf("degraded=%v backlog=%d, want true/1", p.Degraded(), p.Backlog())
	}
	if err := p.Flush(); !errors.Is(err, bang) {
		t.Fatalf("second flush err = %v", err)
	}
	if degraded != 1 {
		t.Fatalf("OnDegraded fired %d times, want once", degraded)
	}
	if got := tp.Events(); got != 0 {
		t.Fatalf("events delivered while faulted: %d", got)
	}

	b.SetAppendFault(nil)
	if err := p.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	if p.Degraded() || p.Backlog() != 0 {
		t.Fatalf("degraded=%v backlog=%d after recovery", p.Degraded(), p.Backlog())
	}
	if recovered != 1 {
		t.Fatalf("OnRecovered fired %d times, want once", recovered)
	}
	if got := tp.Events(); got != 5 {
		t.Fatalf("events after recovery = %d, want 5", got)
	}
	if p.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", p.Dropped())
	}
}

// TestBacklogBoundDropsOldest: with the broker down, the per-partition
// backlog is bounded; the oldest batches are dropped and accounted, and the
// survivors ship once the broker returns.
func TestBacklogBoundDropsOldest(t *testing.T) {
	b, tp := newTopic(t, "t", 1)
	p := tp.NewProducer(ProducerOptions{
		BatchSize:         1, // every push seals and attempts shipment
		FlushRetries:      1,
		RetryBackoff:      time.Microsecond,
		MaxPendingBatches: 2,
	})
	b.SetAppendFault(func(string, int) error { return errors.New("unreachable") })
	for i := 0; i < 5; i++ {
		// Push reports the shipping failure but must not lose the event.
		if err := p.Push(Metadata{"i": i}, []byte("x")); err == nil {
			t.Fatalf("push %d: expected shipping error", i)
		}
	}
	if p.Backlog() != 2 {
		t.Fatalf("backlog = %d, want bound of 2", p.Backlog())
	}
	if p.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", p.Dropped())
	}
	b.SetAppendFault(nil)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := tp.Events(); got != 2 {
		t.Fatalf("events after recovery = %d, want the 2 retained", got)
	}
}
