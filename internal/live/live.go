package live

import (
	"fmt"
	"sync"
	"time"

	"taskprov/internal/darshan"
	"taskprov/internal/mofka"
	"taskprov/internal/provenance"
)

// MonitorOptions configures a Monitor.
type MonitorOptions struct {
	// ConsumerName names the monitor's consumer group for cursor commits;
	// on a durable broker a restarted monitor resumes where it left off.
	// Default "live-monitor".
	ConsumerName string
	// PollInterval is the idle sleep between pull sweeps. Default 10ms.
	PollInterval time.Duration
	// BatchSize is the per-topic pull granularity; one cursor commit per
	// batch per partition (Consumer.CommitBatch), not one per event.
	// Default 256.
	BatchSize int
	// DisableEmit turns off producing anomalies into the
	// provenance.TopicAnomalies topic (they still appear in snapshots).
	// Emission also auto-disables when the broker rejects appends, e.g.
	// post-mortem read-only brokers.
	DisableEmit bool
	// DisableCommit turns off cursor commits (anonymous tailing).
	DisableCommit bool
	// Aggregator tunes windows and detectors.
	Aggregator AggregatorOptions
	// Logf, when set, receives one-line operational notices (emission
	// disabled, commit failures).
	Logf func(format string, args ...any)
}

func (o MonitorOptions) withDefaults() MonitorOptions {
	if o.ConsumerName == "" {
		o.ConsumerName = "live-monitor"
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 10 * time.Millisecond
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	return o
}

// Monitor attaches a consumer group to a broker's provenance topics and
// streams them through an Aggregator while the run is in flight. One
// background goroutine sweeps all topics; topics are attached lazily as they
// appear on the broker, so the monitor may be started before the collector
// creates them.
type Monitor struct {
	broker *mofka.Broker
	opts   MonitorOptions
	agg    *Aggregator

	mu        sync.Mutex
	consumers map[string]*mofka.Consumer
	lags      map[string]uint64 // "topic/partition" -> events not yet ingested
	emitter   *mofka.Producer
	emitDead  bool
	commitOff bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewMonitor starts monitoring the broker. The returned monitor is already
// running; call Finish (complete runs) or Stop (abandon) exactly once.
func NewMonitor(b *mofka.Broker, opts MonitorOptions) *Monitor {
	opts = opts.withDefaults()
	m := &Monitor{
		broker:    b,
		opts:      opts,
		agg:       NewAggregator(opts.Aggregator),
		consumers: make(map[string]*mofka.Consumer),
		lags:      make(map[string]uint64),
		commitOff: opts.DisableCommit,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	m.agg.OnAnomaly(m.publish)
	go m.loop()
	return m
}

// Aggregator exposes the underlying aggregator (for SetMeta and direct
// ingestion of side-channel sources like streamed I/O segments).
func (m *Monitor) Aggregator() *Aggregator { return m.agg }

// Snapshot returns the current aggregates plus the monitor's own consumer
// lag; safe to call concurrently with the pull loop.
func (m *Monitor) Snapshot() Summary {
	s := m.agg.Snapshot()
	s.ConsumerLag = m.ConsumerLag()
	return s
}

// ConsumerLag reports, per "topic/partition", how many events the broker
// holds that the monitor has not ingested yet (mofka.Consumer.Lag sampled
// at the end of each sweep). Zero-lag entries are omitted — so a completed
// run's fully-drained Finish Summary carries no lag map at all and stays
// byte-identical to a post-mortem replay's.
func (m *Monitor) ConsumerLag() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.lags) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(m.lags))
	for k, v := range m.lags {
		out[k] = v
	}
	return out
}

// recordLag samples one consumer's lag. Called from the sweep goroutine
// (the consumer handle is single-goroutine); only the map is shared.
func (m *Monitor) recordLag(topic string, c *mofka.Consumer) {
	lag := c.Lag()
	m.mu.Lock()
	for part, n := range lag {
		key := fmt.Sprintf("%s/%d", topic, part)
		if n == 0 {
			delete(m.lags, key)
		} else {
			m.lags[key] = n
		}
	}
	m.mu.Unlock()
}

// SubscribeAnomalies returns a channel carrying every anomaly raised from
// now on. The channel is buffered; slow receivers lose anomalies rather
// than stalling ingestion.
func (m *Monitor) SubscribeAnomalies() <-chan Anomaly { return m.agg.SubscribeAnomalies() }

func (m *Monitor) logf(format string, args ...any) {
	if m.opts.Logf != nil {
		m.opts.Logf(format, args...)
	}
}

// publish is the aggregator's anomaly callback: emit into the anomalies
// topic (snapshot/SSE delivery happens via the aggregator itself).
func (m *Monitor) publish(a Anomaly) {
	if m.opts.DisableEmit {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.emitDead {
		return
	}
	if m.emitter == nil {
		t, err := m.broker.OpenOrCreateTopic(mofka.TopicConfig{Name: provenance.TopicAnomalies, Partitions: 1})
		if err != nil {
			m.emitDead = true
			m.logf("live: anomaly emission disabled: %v", err)
			return
		}
		m.emitter = t.NewProducer(mofka.ProducerOptions{BatchSize: 1})
	}
	if err := m.emitter.Push(a.Event(), nil); err != nil {
		m.emitDead = true
		m.logf("live: anomaly emission disabled: %v", err)
	}
}

// consumer returns (creating lazily) the consumer for one provenance topic,
// or nil while the topic does not exist yet.
func (m *Monitor) consumer(topic string) *mofka.Consumer {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.consumers[topic]; ok {
		return c
	}
	t, err := m.broker.OpenTopic(topic)
	if err != nil {
		return nil // not created yet
	}
	c, err := t.NewConsumer(mofka.ConsumerOptions{
		Name:          m.opts.ConsumerName,
		NoData:        true,
		FromCommitted: !m.opts.DisableCommit,
		Prefetch:      m.opts.BatchSize,
	})
	if err != nil {
		m.logf("live: subscribe %s: %v", topic, err)
		return nil
	}
	m.consumers[topic] = c
	return c
}

// sweep pulls one batch from every attached topic. It returns the number of
// events ingested.
func (m *Monitor) sweep() int {
	total := 0
	for _, topic := range provenance.AllTopics() {
		c := m.consumer(topic)
		if c == nil {
			continue
		}
		for {
			evs, err := c.PullBatch(m.opts.BatchSize)
			if err != nil {
				m.logf("live: pull %s: %v", topic, err)
				break
			}
			if len(evs) == 0 {
				break
			}
			total += len(evs)
			for _, ev := range evs {
				m.agg.IngestEvent(topic, ev.Partition, provenance.MustParse(ev))
			}
			if !m.commitOff {
				if err := c.CommitBatch(evs); err != nil {
					m.commitOff = true
					m.logf("live: cursor commits disabled: %v", err)
				}
			}
			if len(evs) < m.opts.BatchSize {
				break
			}
		}
		m.recordLag(topic, c)
	}
	return total
}

func (m *Monitor) loop() {
	defer close(m.done)
	for {
		n := m.sweep()
		select {
		case <-m.stop:
			return
		default:
		}
		if m.broker.IsClosed() && n == 0 {
			// Broker closed and everything published before the close has
			// been consumed: nothing more can arrive.
			return
		}
		if n == 0 {
			select {
			case <-m.stop:
				return
			case <-time.After(m.opts.PollInterval):
			}
		}
	}
}

// Stop halts the pull loop without draining. Idempotent.
func (m *Monitor) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

// Finish completes monitoring for a finished run: the pull loop is stopped,
// every remaining event is drained, the run's Darshan logs are folded in,
// the wall time is set, and the final Summary — the one the equivalence
// invariant holds for — is returned.
func (m *Monitor) Finish(logs []*darshan.Log, wallSeconds float64) Summary {
	m.Stop()
	for m.sweep() > 0 {
	}
	for _, l := range logs {
		m.agg.IngestDarshanLog(l)
	}
	m.agg.SetWall(wallSeconds)
	return m.agg.Snapshot()
}

// String identifies the monitor in logs.
func (m *Monitor) String() string {
	return fmt.Sprintf("live.Monitor(%s)", m.opts.ConsumerName)
}
