package dask

import (
	"sort"

	"taskprov/internal/pfs"
	"taskprov/internal/platform"
	"taskprov/internal/posixio"
	"taskprov/internal/sim"
)

// assignment is the scheduler -> worker task dispatch message.
type assignment struct {
	spec     *TaskSpec
	graphID  int
	priority int
	deps     []depInfo
}

type depInfo struct {
	key     TaskKey
	size    int64
	holders []int // worker ranks
	// viaProxy marks a dependency published to the proxy store: the
	// assignment carries only a reference, and the payload is resolved
	// peer-to-peer from the blob owner (lazily at first use, or eagerly
	// when ProxyPrefetch is set).
	viaProxy bool
}

// wTask is the worker-side task state.
type wTask struct {
	spec     *TaskSpec
	graphID  int
	priority int
	state    TaskState
	missing  int // dependency fetches still in flight
	stolen   bool
	// cancelled marks a losing speculative attempt: when the executing body
	// finishes it discards its result instead of storing, publishing, or
	// reporting it — the worker-side half of the attempt fence.
	cancelled bool
	// lazy holds proxied dependencies whose payloads have not been demanded
	// yet; they resolve when the task reaches the front of the ready queue.
	lazy []depInfo
}

// Worker executes tasks on a fixed pool of threads, fetches remote
// dependencies, stores results in memory, and reports completions. It also
// models the two runtime pathologies the paper mines from worker logs: an
// event loop blocked by non-yielding task bodies, and garbage-collection
// pauses under memory churn.
type Worker struct {
	c      *Cluster
	rank   int
	addr   string
	node   *platform.Node
	tracer posixio.Tracer

	tasks       map[TaskKey]*wTask
	ready       taskHeap
	freeThreads []int
	data        map[TaskKey]int64
	fetching    map[TaskKey][]*wTask
	peers       map[int]bool // worker ranks we already hold a connection to

	memBytes     int64
	gcAccum      int64
	gcBusyUntil  sim.Time
	blockedUntil sim.Time // event loop blocked through this time

	rng     *sim.RNG
	started bool

	// Crash/restart state: alive flips false when the worker process is
	// killed, and incarnation increments so callbacks scheduled by a dead
	// incarnation (heartbeats, transfer completions, task completions)
	// recognize themselves as stale and drop out.
	alive       bool
	incarnation int

	// slowFactor > 1 dilates this worker's compute and I/O service times —
	// chaos brownout injection ("slow worker=N ..."). It models the host
	// being degraded (thermal throttle, noisy neighbor), so it survives
	// process kill/restart cycles.
	slowFactor float64

	executedCount int
	transferCount int
}

func newWorker(c *Cluster, rank int, node *platform.Node, tracer posixio.Tracer) *Worker {
	w := &Worker{
		c: c, rank: rank, node: node, tracer: tracer,
		addr:     workerAddr(node.Hostname, rank),
		tasks:    make(map[TaskKey]*wTask),
		data:     make(map[TaskKey]int64),
		fetching: make(map[TaskKey][]*wTask),
		peers:    make(map[int]bool),
		alive:    true,
		rng:      c.kernel.RNG("dask/worker/" + workerAddr(node.Hostname, rank)),

		slowFactor: 1,
	}
	for t := 0; t < c.cfg.ThreadsPerWorker; t++ {
		w.freeThreads = append(w.freeThreads, t)
	}
	return w
}

// Addr returns the worker's Dask-style address.
func (w *Worker) Addr() string { return w.addr }

// Rank returns the worker's index within the cluster.
func (w *Worker) Rank() int { return w.rank }

// Hostname returns the hostname of the node the worker runs on.
func (w *Worker) Hostname() string { return w.node.Hostname }

// Node returns the platform node.
func (w *Worker) Node() *platform.Node { return w.node }

// ThreadID returns the global "pthread ID" of the worker's thread slot,
// unique across the whole job so Darshan DXT records can be joined
// unambiguously.
func (w *Worker) ThreadID(slot int) uint64 {
	return uint64((w.rank+1)*1000 + slot)
}

// MemoryBytes reports bytes of task results currently held.
func (w *Worker) MemoryBytes() int64 { return w.memBytes }

// Executed reports how many tasks this worker completed.
func (w *Worker) Executed() int { return w.executedCount }

// TransfersReceived reports how many incoming dependency transfers landed.
func (w *Worker) TransfersReceived() int { return w.transferCount }

// EventLoopBlockedUntil reports the latest time through which a GIL-holding
// task body has wedged the worker's event loop.
func (w *Worker) EventLoopBlockedUntil() sim.Time { return w.blockedUntil }

// HasData reports whether the worker holds key's result.
func (w *Worker) HasData(key TaskKey) bool {
	_, ok := w.data[key]
	return ok
}

// Alive reports whether the worker process is up (true unless killed by
// fault injection and not yet restarted).
func (w *Worker) Alive() bool { return w.alive }

// start connects to the scheduler and begins heartbeats.
func (w *Worker) start() {
	if w.started || !w.alive {
		return
	}
	w.started = true
	w.c.control(w.node, w.c.scheduler.node, func() {
		w.c.scheduler.workerConnected(w.rank)
	})
	w.scheduleHeartbeat()
}

// kill models a hard worker-process crash: all worker-local state (task
// queue, thread pool, stored results, in-flight fetches, connections) is
// gone instantly. The scheduler only finds out through missed heartbeats.
func (w *Worker) kill() {
	if !w.alive {
		return
	}
	w.alive = false
	w.started = false
	w.incarnation++
	w.tasks = make(map[TaskKey]*wTask)
	w.ready = nil
	w.data = make(map[TaskKey]int64)
	w.fetching = make(map[TaskKey][]*wTask)
	w.peers = make(map[int]bool)
	w.memBytes, w.gcAccum = 0, 0
	w.gcBusyUntil, w.blockedUntil = 0, 0
	w.freeThreads = w.freeThreads[:0]
	for t := 0; t < w.c.cfg.ThreadsPerWorker; t++ {
		w.freeThreads = append(w.freeThreads, t)
	}
}

// restart brings a killed worker back as a fresh process: it reconnects to
// the scheduler and resumes heartbeats, holding no data.
func (w *Worker) restart() {
	if w.alive {
		return
	}
	w.alive = true
	w.start()
}

func (w *Worker) scheduleHeartbeat() {
	inc := w.incarnation
	// Deterministic per-worker jitter desynchronizes heartbeat arrivals: a
	// batch of workers restarted at the same instant would otherwise tick —
	// and, on the TTL side, be declared dead — in one synchronized storm.
	period := w.rng.JitterTime(w.c.cfg.HeartbeatInterval, w.c.cfg.HeartbeatJitterCV)
	w.c.kernel.After(period, func() {
		if !w.alive || w.incarnation != inc {
			return
		}
		w.heartbeat()
	})
}

func (w *Worker) heartbeat() {
	m := WorkerMetrics{
		Worker: w.addr, At: w.c.kernel.Now(),
		Memory: w.memBytes, Executing: w.c.cfg.ThreadsPerWorker - len(w.freeThreads),
		Ready: len(w.ready),
	}
	for _, p := range w.c.workerPlugins {
		p.Heartbeat(m)
	}
	w.c.control(w.node, w.c.scheduler.node, func() { w.c.scheduler.handleHeartbeat(w.rank) })
	w.scheduleHeartbeat()
}

func (w *Worker) transition(wt *wTask, to TaskState, stimulus string) {
	from := wt.state
	wt.state = to
	w.c.emitWorkerTransition(Transition{
		Key: wt.spec.Key, From: from, To: to,
		Stimulus: stimulus, Location: w.addr, At: w.c.kernel.Now(),
	})
}

// handleAssign receives a task from the scheduler, fetches missing
// dependencies, and queues it for execution.
func (w *Worker) handleAssign(a assignment) {
	if !w.alive {
		// Assigned by a scheduler that has not yet noticed the crash; the
		// message lands on a dead process. Eviction will requeue the task.
		return
	}
	wt := &wTask{spec: a.spec, graphID: a.graphID, priority: a.priority, state: StateReleased}
	w.tasks[a.spec.Key] = wt
	w.transition(wt, WStateWaiting, "compute-task")
	for _, d := range a.deps {
		if _, local := w.data[d.key]; local {
			continue
		}
		if d.viaProxy && !w.c.cfg.ProxyPrefetch {
			// Pass-by-reference: defer the payload fetch until first use.
			wt.lazy = append(wt.lazy, d)
			continue
		}
		wt.missing++
		if d.viaProxy {
			w.fetchProxy(d, wt)
		} else {
			w.fetchDep(d, wt)
		}
	}
	if wt.missing == 0 {
		w.makeReady(wt, "all-deps-local")
	} else {
		w.transition(wt, WStateFetching, "missing-deps")
	}
}

// fetchDep pulls one dependency from a holder. Concurrent requests for the
// same key share one transfer.
func (w *Worker) fetchDep(d depInfo, wt *wTask) {
	if waiters, inFlight := w.fetching[d.key]; inFlight {
		w.fetching[d.key] = append(waiters, wt)
		return
	}
	w.fetching[d.key] = []*wTask{wt}
	if len(d.holders) == 0 {
		// The holder set can be empty if the dep was produced on this very
		// worker and freed concurrently; treat as fatal inconsistency.
		panic("dask: dependency " + string(d.key) + " has no holders")
	}
	src := w.c.workers[d.holders[w.rng.Intn(len(d.holders))]]
	start := w.c.kernel.Now()
	inc, srcInc := w.incarnation, src.incarnation
	// First contact with this peer pays connection establishment; later
	// transfers reuse the connection. This makes small transfers early in
	// the run disproportionately slow (Fig. 5).
	setup := sim.Time(0)
	if !w.peers[src.rank] {
		w.peers[src.rank] = true
		setup = w.rng.JitterTime(w.c.cfg.ConnectionSetup, 0.4)
	}
	w.c.kernel.After(setup, func() {
		if !w.alive || w.incarnation != inc {
			return
		}
		if !src.alive || src.incarnation != srcInc || !src.HasData(d.key) {
			w.abortFetch(d.key, src.rank)
			return
		}
		w.c.plat.Transfer(src.node, w.node, d.size, func(sim.Time) {
			if !w.alive || w.incarnation != inc {
				return
			}
			if !src.alive || src.incarnation != srcInc {
				// Source crashed mid-transfer: the stream broke before the
				// payload fully arrived.
				w.abortFetch(d.key, src.rank)
				return
			}
			stop := w.c.kernel.Now()
			w.data[d.key] = d.size
			w.memBytes += d.size
			w.transferCount++
			rec := Transfer{
				Key: d.key, From: src.addr, To: w.addr, Bytes: d.size,
				Start: start, Stop: stop, SameNode: src.node == w.node,
			}
			for _, p := range w.c.workerPlugins {
				p.TransferReceived(rec)
			}
			waiters := w.fetching[d.key]
			delete(w.fetching, d.key)
			for _, waiter := range waiters {
				waiter.missing--
				if waiter.missing == 0 && w.tasks[waiter.spec.Key] == waiter {
					w.makeReady(waiter, "deps-arrived")
				}
			}
		})
	})
}

// fetchProxy resolves a proxied dependency: it looks the reference up in the
// store, then pulls the payload peer-to-peer from the blob's owner. A
// dangling reference (blob reclaimed after the owner died) or a stale owner
// incarnation falls back to the missing-data recovery path, exactly like a
// direct fetch from a crashed holder. Concurrent demands for the same key
// share one transfer through the same fetching map as direct fetches.
func (w *Worker) fetchProxy(d depInfo, wt *wTask) {
	if waiters, inFlight := w.fetching[d.key]; inFlight {
		w.fetching[d.key] = append(waiters, wt)
		return
	}
	w.fetching[d.key] = []*wTask{wt}
	if len(d.holders) == 0 {
		panic("dask: proxied dependency " + string(d.key) + " has no holders")
	}
	demand := w.c.kernel.Now()
	ref, ok := w.c.proxy.resolve(d.key, w.addr)
	if !ok {
		// Dangling reference: the blob was reclaimed (its owner died and the
		// scheduler swept it) between assignment and first use.
		w.abortFetch(d.key, d.holders[0])
		return
	}
	src := w.c.workers[ref.Owner]
	if !src.alive || src.incarnation != ref.Incarnation || !src.HasData(d.key) {
		// The reference is fenced to the publishing incarnation; a restarted
		// owner no longer holds the payload.
		w.abortFetch(d.key, src.rank)
		return
	}
	inc, srcInc := w.incarnation, src.incarnation
	setup := sim.Time(0)
	if !w.peers[src.rank] {
		w.peers[src.rank] = true
		setup = w.rng.JitterTime(w.c.cfg.ConnectionSetup, 0.4)
	}
	w.c.kernel.After(setup, func() {
		if !w.alive || w.incarnation != inc {
			return
		}
		if !src.alive || src.incarnation != srcInc || !src.HasData(d.key) {
			w.abortFetch(d.key, src.rank)
			return
		}
		wireStart := w.c.kernel.Now()
		w.c.plat.Transfer(src.node, w.node, ref.Size, func(sim.Time) {
			if !w.alive || w.incarnation != inc {
				return
			}
			if !src.alive || src.incarnation != srcInc {
				w.abortFetch(d.key, src.rank)
				return
			}
			stop := w.c.kernel.Now()
			w.data[d.key] = ref.Size
			w.memBytes += ref.Size
			w.transferCount++
			rec := Transfer{
				Key: d.key, From: src.addr, To: w.addr, Bytes: ref.Size,
				Start: wireStart, Stop: stop, SameNode: src.node == w.node,
				ViaProxy: true, ResolveLatency: stop - demand,
			}
			for _, p := range w.c.workerPlugins {
				p.TransferReceived(rec)
			}
			w.c.proxy.resolved(d.key, w.addr, ref.Size, stop-demand)
			waiters := w.fetching[d.key]
			delete(w.fetching, d.key)
			for _, waiter := range waiters {
				waiter.missing--
				if waiter.missing == 0 && w.tasks[waiter.spec.Key] == waiter {
					w.makeReady(waiter, "deps-arrived")
				}
			}
		})
	})
}

// abortFetch gives up on an in-flight dependency fetch whose source worker
// crashed. The tasks waiting on the dependency cannot run here with the
// holder snapshot they were assigned, so the worker surrenders them and
// reports the dead source; the scheduler re-plans them against surviving
// replicas (or recomputes the lost key).
func (w *Worker) abortFetch(key TaskKey, srcRank int) {
	waiters := w.fetching[key]
	delete(w.fetching, key)
	var surrendered []TaskKey
	for _, wt := range waiters {
		if w.tasks[wt.spec.Key] != wt {
			continue // already stolen or surrendered via another dep
		}
		delete(w.tasks, wt.spec.Key)
		w.transition(wt, StateReleased, "missing-data")
		surrendered = append(surrendered, wt.spec.Key)
	}
	rank := w.rank
	w.c.control(w.node, w.c.scheduler.node, func() {
		w.c.scheduler.handleMissingData(rank, srcRank, surrendered)
	})
}

func (w *Worker) makeReady(wt *wTask, stimulus string) {
	w.transition(wt, WStateReady, stimulus)
	w.ready.pushTask(wt)
	w.dispatch()
}

// dispatch starts ready tasks on free threads, deferring while a GC pause
// holds the process.
func (w *Worker) dispatch() {
	now := w.c.kernel.Now()
	if w.gcBusyUntil > now {
		inc := w.incarnation
		w.c.kernel.At(w.gcBusyUntil, func() {
			if w.alive && w.incarnation == inc {
				w.dispatch()
			}
		})
		return
	}
	for len(w.freeThreads) > 0 && w.ready.Len() > 0 {
		wt := w.ready.popTask()
		if len(wt.lazy) > 0 {
			// First use of the task's pass-by-reference dependencies: demand
			// the payloads now; the task re-enters the ready queue when they
			// arrive.
			w.resolveLazy(wt)
			continue
		}
		slot := w.freeThreads[len(w.freeThreads)-1]
		w.freeThreads = w.freeThreads[:len(w.freeThreads)-1]
		w.execute(wt, slot)
	}
}

// resolveLazy demands the payloads of a task's deferred proxied
// dependencies. Payloads that landed in the meantime (another task on this
// worker demanded the same key) are skipped; if everything is already local
// the task goes straight back to ready.
func (w *Worker) resolveLazy(wt *wTask) {
	lazy := wt.lazy
	wt.lazy = nil
	var needed []depInfo
	for _, d := range lazy {
		if _, local := w.data[d.key]; local {
			continue
		}
		needed = append(needed, d)
	}
	if len(needed) == 0 {
		w.makeReady(wt, "proxy-deps-local")
		return
	}
	wt.missing = len(needed)
	w.transition(wt, WStateFetching, "proxy-resolve")
	for _, d := range needed {
		w.fetchProxy(d, wt)
	}
}

func (w *Worker) execute(wt *wTask, slot int) {
	w.transition(wt, WStateExecuting, "thread-available")
	tid := w.ThreadID(slot)
	inc := w.incarnation
	w.c.kernel.Go(func(p *sim.Proc) {
		start := p.Now()
		ctx := &TaskContext{w: w, proc: p, tid: tid, spec: wt.spec, outputSize: wt.spec.OutputSize}
		if wt.spec.Run != nil {
			wt.spec.Run(ctx)
		} else {
			d := wt.spec.EstDuration
			if d <= 0 {
				d = w.c.cfg.DefaultTaskDuration
			}
			ctx.Compute(d)
		}
		stop := p.Now()

		if !w.alive || w.incarnation != inc {
			// The worker process died while the task body was running: the
			// thread, the result, and the completion report die with it. The
			// scheduler recovers the task through eviction.
			return
		}

		if wt.cancelled {
			// Losing speculative attempt, cancelled while executing: discard
			// the result without storing, publishing, or reporting it — the
			// worker-side fence that keeps exactly one visible execution per
			// key.
			delete(w.tasks, wt.spec.Key)
			w.transition(wt, StateReleased, "speculation-cancelled")
			w.freeThreads = append(w.freeThreads, slot)
			w.dispatch()
			return
		}

		if ctx.failure != "" {
			// The task body raised: report the error instead of a result
			// (Dask's task-erred path). The thread is released; the
			// scheduler decides between retry and erred.
			w.transition(wt, StateErred, "task-erred")
			delete(w.tasks, wt.spec.Key)
			w.freeThreads = append(w.freeThreads, slot)
			w.dispatch()
			key, msg := wt.spec.Key, ctx.failure
			w.c.control(w.node, w.c.scheduler.node, func() {
				w.c.scheduler.handleErred(w.rank, key, msg)
			})
			return
		}

		w.data[wt.spec.Key] = ctx.outputSize
		w.memBytes += ctx.outputSize
		w.transition(wt, WStateMemory, "task-done")
		w.executedCount++
		rec := TaskExecution{
			Key: wt.spec.Key, Worker: w.addr, Hostname: w.node.Hostname,
			ThreadID: tid, Start: start, Stop: stop,
			OutputSize: ctx.outputSize, GraphID: wt.graphID,
			Files: ctx.fileEffects(),
		}
		for _, pl := range w.c.workerPlugins {
			pl.TaskExecuted(rec)
		}
		w.maybeGC(ctx.outputSize)

		w.freeThreads = append(w.freeThreads, slot)
		w.dispatch()
		key, size, dur := wt.spec.Key, ctx.outputSize, stop-start
		proxied := false
		if w.c.proxy != nil && size >= w.c.cfg.ProxyThresholdBytes {
			// Publish the output as a pass-by-reference blob owned by this
			// incarnation; the completion report ships only the reference.
			proxied = true
			w.c.proxy.publish(key, w.rank, inc, size, w.addr)
			w.c.addControlBytes(w.c.cfg.ProxyRefBytes)
		}
		w.c.control(w.node, w.c.scheduler.node, func() {
			w.c.scheduler.handleFinished(w.rank, key, size, dur, proxied)
		})
	})
}

// maybeGC models CPython GC pressure: every GCThresholdBytes of allocation
// churn triggers a collection whose pause scales with the held heap. The
// pause delays task dispatch and is logged as a worker warning — the
// paper's Fig. 7 "gc_collection" series.
func (w *Worker) maybeGC(newBytes int64) {
	w.gcAccum += newBytes
	if w.gcAccum < w.c.cfg.GCThresholdBytes {
		return
	}
	w.gcAccum = 0
	pause := w.c.cfg.GCPauseBase + sim.Time(float64(w.c.cfg.GCPausePerGiB)*float64(w.memBytes)/float64(1<<30))
	now := w.c.kernel.Now()
	if w.gcBusyUntil < now {
		w.gcBusyUntil = now
	}
	w.gcBusyUntil += pause
	warn := Warning{
		Kind: WarnGC, Worker: w.addr, Hostname: w.node.Hostname,
		At: now, Duration: pause,
		Message: "full garbage collection took " + pause.String(),
	}
	for _, p := range w.c.workerPlugins {
		p.WorkerWarning(warn)
	}
}

// handleFree releases a stored result (scheduler-driven refcount release).
func (w *Worker) handleFree(key TaskKey) {
	if !w.alive {
		return
	}
	if size, ok := w.data[key]; ok {
		delete(w.data, key)
		w.memBytes -= size
	}
	if wt, ok := w.tasks[key]; ok && wt.state == WStateMemory {
		w.transition(wt, StateReleased, "free-keys")
		delete(w.tasks, key)
	}
}

// handleCancel withdraws a losing speculative attempt. A queued attempt is
// removed like a stolen task; an executing attempt is flagged so its body
// discards the result on completion; an attempt that already reached memory
// (the cancel raced the completion report, which the scheduler drops) has
// its stray local replica freed. The proxy-store publish of a raced loser is
// rejected by the store's first-write-wins dedupe, so no path lets a
// cancelled attempt's output become visible.
func (w *Worker) handleCancel(key TaskKey) {
	if !w.alive {
		return
	}
	wt, ok := w.tasks[key]
	if !ok {
		return // never assigned here, or already surrendered
	}
	switch wt.state {
	case WStateExecuting:
		wt.cancelled = true
		return
	case WStateReady:
		if !w.ready.remove(wt) {
			return
		}
	case WStateWaiting, WStateFetching:
		// In-flight dependency transfers simply land as cached data.
		wt.stolen = true
	case WStateMemory:
		if size, held := w.data[key]; held {
			delete(w.data, key)
			w.memBytes -= size
		}
	}
	delete(w.tasks, key)
	w.transition(wt, StateReleased, "speculation-cancelled")
}

// handleStealRequest reports whether the task could be surrendered (it must
// still be queued, not executing or done).
func (w *Worker) handleStealRequest(key TaskKey) bool {
	wt, ok := w.tasks[key]
	if !ok || !w.alive {
		return false
	}
	switch wt.state {
	case WStateReady:
		if !w.ready.remove(wt) {
			return false
		}
	case WStateWaiting, WStateFetching:
		// Surrender before execution; any in-flight dep transfers simply
		// land as cached data.
		wt.stolen = true
	default:
		return false
	}
	delete(w.tasks, key)
	w.transition(wt, StateReleased, "steal-request")
	return true
}

// noteEventLoopBlocked records that a task body held the worker's event
// loop for [from, to), emitting one "unresponsive event loop" warning per
// monitor threshold crossed — matching how Tornado's monitor logs repeat
// while the loop stays wedged. Each GIL-holding segment reports its own
// episode (concurrent holders each delay the loop in turn).
func (w *Worker) noteEventLoopBlocked(from, to sim.Time) {
	thr := w.c.cfg.EventLoopMonitorThreshold
	if to > w.blockedUntil {
		w.blockedUntil = to
	}
	inc := w.incarnation
	for t := from + thr; t <= to; t += thr {
		at := t
		blockedFor := at - from
		w.c.kernel.At(at, func() {
			if !w.alive || w.incarnation != inc {
				return
			}
			warn := Warning{
				Kind: WarnEventLoop, Worker: w.addr, Hostname: w.node.Hostname,
				At: at, Duration: blockedFor,
				Message: "event loop was unresponsive for " + blockedFor.String(),
			}
			for _, p := range w.c.workerPlugins {
				p.WorkerWarning(warn)
			}
		})
	}
}

// TaskContext is the execution context handed to task bodies.
type TaskContext struct {
	w          *Worker
	proc       *sim.Proc
	tid        uint64
	spec       *TaskSpec
	outputSize int64
	failure    string
	// wrotePaths collects the paths the body opened for writing, in open
	// order (deduplicated), so the completion record can carry the task's
	// filesystem effects.
	wrotePaths []string
}

// Key returns the executing task's key.
func (ctx *TaskContext) Key() TaskKey { return ctx.spec.Key }

// ThreadID returns the executing thread's global ID (the "pthread ID" that
// also appears in Darshan DXT records).
func (ctx *TaskContext) ThreadID() uint64 { return ctx.tid }

// Worker returns the address of the executing worker.
func (ctx *TaskContext) Worker() string { return ctx.w.addr }

// Hostname returns the executing node's hostname.
func (ctx *TaskContext) Hostname() string { return ctx.w.node.Hostname }

// Now returns the current virtual time.
func (ctx *TaskContext) Now() sim.Time { return ctx.proc.Now() }

// Proc returns the simulation process executing this task, for use with
// blocking primitives like posixio file methods.
func (ctx *TaskContext) Proc() *sim.Proc { return ctx.proc }

// RNG returns a deterministic stream unique to this task key, so task-level
// randomness reproduces per seed without cross-task coupling.
func (ctx *TaskContext) RNG() *sim.RNG {
	return ctx.w.c.kernel.RNG("task/" + string(ctx.spec.Key))
}

// SetOutputSize overrides the task's result size in distributed memory.
func (ctx *TaskContext) SetOutputSize(n int64) { ctx.outputSize = n }

// Compute spends nominal CPU time: scaled by the node's speed factor,
// jittered by the configured OS-noise CV, and — for event-loop-blocking
// tasks — feeding the unresponsive-loop monitor.
func (ctx *TaskContext) Compute(nominal sim.Time) {
	d := ctx.w.node.ComputeDuration(nominal)
	if f := ctx.w.slowFactor; f > 1 {
		// Brownout: the host is degraded, every compute segment stretches.
		d = sim.Time(float64(d) * f)
	}
	if cv := ctx.w.c.cfg.ComputeJitterCV; cv > 0 {
		d = ctx.w.rng.JitterTime(d, cv)
	}
	if ctx.spec.BlocksEventLoop {
		now := ctx.proc.Now()
		ctx.w.noteEventLoopBlocked(now, now+d)
	}
	ctx.proc.Sleep(d)
}

// Open opens a file through the cluster's instrumented POSIX layer on
// behalf of this task's thread.
func (ctx *TaskContext) Open(path string, flags int) (*posixio.File, error) {
	if flags&(posixio.WRONLY|posixio.CREATE) != 0 {
		norm := pfs.Normalize(path)
		seen := false
		for _, p := range ctx.wrotePaths {
			if p == norm {
				seen = true
				break
			}
		}
		if !seen {
			ctx.wrotePaths = append(ctx.wrotePaths, norm)
		}
	}
	f, err := ctx.w.c.fs.Open(ctx.proc, ctx.w.tracer, ctx.tid, path, flags)
	if err != nil {
		return nil, err
	}
	// A browned-out worker's I/O service time dilates along with its
	// compute; the factor is sampled per operation so a mid-task slowdown
	// (or recovery) takes effect immediately.
	w := ctx.w
	f.SetDilation(func() float64 { return w.slowFactor })
	return f, nil
}

// fileEffects snapshots the sizes of every file this task opened for
// writing, sorted by path — the write-side filesystem effects recorded on
// the execution record so resumption can replay them without re-running the
// body.
func (ctx *TaskContext) fileEffects() []FileEffect {
	if len(ctx.wrotePaths) == 0 {
		return nil
	}
	effects := make([]FileEffect, 0, len(ctx.wrotePaths))
	fsys := ctx.w.c.fs.PFS()
	for _, p := range ctx.wrotePaths {
		size := int64(0)
		if f := fsys.Lookup(p); f != nil {
			size = f.Size
		}
		effects = append(effects, FileEffect{Path: p, SizeAfter: size})
	}
	sort.Slice(effects, func(i, j int) bool { return effects[i].Path < effects[j].Path })
	return effects
}

// Measure runs a real Go function on the executing thread and charges its
// wall-clock duration to the virtual clock — the bridge that lets example
// programs run genuine computations under full instrumentation.
func (ctx *TaskContext) Measure(fn func()) {
	startWall := nowWall()
	fn()
	elapsed := nowWall() - startWall
	if elapsed < 0 {
		elapsed = 0
	}
	if f := ctx.w.slowFactor; f > 1 {
		elapsed = int64(float64(elapsed) * f)
	}
	if ctx.spec.BlocksEventLoop {
		now := ctx.proc.Now()
		ctx.w.noteEventLoopBlocked(now, now+sim.Time(elapsed))
	}
	ctx.proc.Sleep(sim.Time(elapsed))
}

// Fail marks the task as failed with the given message; the body should
// return promptly afterwards. The scheduler will retry the task up to its
// MaxRetries before marking it erred.
func (ctx *TaskContext) Fail(msg string) { ctx.failure = msg }

// Failed reports whether Fail was called.
func (ctx *TaskContext) Failed() bool { return ctx.failure != "" }
