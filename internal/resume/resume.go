package resume

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"taskprov/internal/dask"
	"taskprov/internal/mofka"
	mcluster "taskprov/internal/mofka/cluster"
	"taskprov/internal/provenance"
	"taskprov/internal/sim"
)

// ErrCompleted reports that the data dir's last attempt finished cleanly —
// there is nothing to resume.
var ErrCompleted = errors.New("resume: run completed; nothing to resume")

// State is the reconstructed scheduler frontier a new session incarnation
// seeds itself with.
type State struct {
	// Attempt is the incarnation number the resumed session runs as
	// (previous attempt + 1).
	Attempt int
	// ResumedFrom is the crashed attempt being continued.
	ResumedFrom int

	// Memos maps every provably completed task to its memo: output size,
	// and — when its blob still lives in the proxy store — the owning worker
	// rank to revalidate it against.
	Memos map[dask.TaskKey]dask.ResumeMemo
	// ExecCounts is the number of recorded executions per key in the
	// surviving log (for no-duplicate-execution assertions; recomputation of
	// lost outputs legitimately appends more).
	ExecCounts map[dask.TaskKey]int
	// DoneGraphs lists graphs whose done event reached the log; the resumed
	// scheduler suppresses their duplicate emission.
	DoneGraphs []int

	// FileEffects is the write-side filesystem history of all completed
	// tasks, ordered by completion time: replaying it with last-writer-wins
	// rebuilds the PFS state memoized tasks would otherwise have left
	// behind.
	FileEffects []dask.FileEffect

	// ResumeBase is the virtual time the resumed kernel fast-forwards to
	// before anything runs, placing the new attempt's events strictly after
	// every surviving event of the crashed one.
	ResumeBase sim.Time

	// Frontier is the merged completion frontier (checkpoint ∪ WAL tail) the
	// resumed session seeds its own checkpointer with, so an attempt-3 resume
	// still sees attempt-1 completions.
	Frontier *Checkpoint
}

// IsRunDir reports whether dir holds a resumable durable event log (single
// broker or sharded cluster).
func IsRunDir(dir string) bool {
	return mcluster.IsClusterDir(dir) || mofka.IsDataDir(dir)
}

// Reconstruct replays dataDir's provenance into a resumable State: lineage
// is read (and validated — a completed run refuses), the frontier checkpoint
// is loaded, and the WAL tail newer than the checkpoint is applied on top.
// The log is opened read-only; nothing on disk changes.
func Reconstruct(dataDir string) (*State, error) {
	if !IsRunDir(dataDir) {
		return nil, fmt.Errorf("resume: %s holds no durable event log", dataDir)
	}
	lineage, err := LoadLineage(dataDir)
	if err != nil {
		return nil, err
	}
	prior := lineage.Last()
	if prior.Attempt == 0 {
		// Pre-lineage data dir: a clean run wrote final metadata
		// (wall_seconds > 0); anything else is a crashed attempt 1.
		completed, err := legacyCompleted(dataDir)
		if err != nil {
			return nil, err
		}
		if completed {
			return nil, ErrCompleted
		}
		prior = Attempt{Attempt: 1}
	}
	if prior.Completed {
		return nil, ErrCompleted
	}

	cp, err := LoadCheckpoint(dataDir)
	if err != nil {
		return nil, err
	}
	if cp != nil && cp.Attempt != prior.Attempt {
		// A checkpoint from an older incarnation (the newer one crashed
		// before its first tick): still valid — it summarizes a prefix of
		// the same merged log — but events after its snapshot time span more
		// than one attempt, which the count-based tail replay handles.
		_ = cp
	}
	if cp == nil {
		cp = NewCheckpoint(prior.Attempt)
		cp.AtSeconds = -1 // replay everything
	}

	var broker *mofka.Broker
	if mcluster.IsClusterDir(dataDir) {
		broker, err = mcluster.OpenPostMortem(dataDir)
	} else {
		broker, err = mofka.OpenPostMortem(dataDir)
	}
	if err != nil {
		return nil, fmt.Errorf("resume: open log: %w", err)
	}
	defer func() { _ = broker.Close() }() // read-only in-memory view

	st := &State{
		Attempt:     prior.Attempt + 1,
		ResumedFrom: prior.Attempt,
		Memos:       make(map[dask.TaskKey]dask.ResumeMemo),
		ExecCounts:  make(map[dask.TaskKey]int),
	}

	// Completed tasks: checkpointed frontier plus the execution-record tail.
	type doneTask struct {
		graph int
		size  int64
		stop  float64
		files []dask.FileEffect
	}
	tasks := make(map[string]doneTask, len(cp.Tasks))
	for key, t := range cp.Tasks {
		tasks[key] = doneTask{graph: t.GraphID, size: t.Size, stop: t.StopSeconds, files: t.Files}
	}
	execs, err := provenance.DrainTopic(broker, provenance.TopicExecutions)
	if err != nil {
		return nil, fmt.Errorf("resume: executions: %w", err)
	}
	maxAt := cp.AtSeconds
	for _, m := range execs {
		rec := provenance.ParseExecution(m)
		st.ExecCounts[rec.Key]++
		stop := rec.Stop.Seconds()
		maxAt = math.Max(maxAt, stop)
		if prev, ok := tasks[string(rec.Key)]; !ok || stop >= prev.stop {
			tasks[string(rec.Key)] = doneTask{graph: rec.GraphID, size: rec.OutputSize, stop: stop, files: rec.Files}
		}
	}

	// Live blobs, reconstructed count-based: partitioned topics lose
	// cross-partition ordering, but publishes and frees per key are balanced
	// deltas, so (checkpoint presence + tail publishes − tail frees) > 0
	// means resident. Owner/size come from the newest surviving publish.
	type blobState struct {
		residual int
		owner    int
		size     int64
		at       float64
	}
	blobs := make(map[string]*blobState, len(cp.Blobs))
	for _, b := range cp.Blobs {
		blobs[b.Key] = &blobState{residual: 1, owner: b.Owner, size: b.Size, at: cp.AtSeconds}
	}
	proxyEvents, err := provenance.DrainTopic(broker, provenance.TopicProxy)
	if err != nil {
		return nil, fmt.Errorf("resume: proxy events: %w", err)
	}
	for _, m := range proxyEvents {
		ev := provenance.ParseProxyEvent(m)
		at := ev.At.Seconds()
		maxAt = math.Max(maxAt, at)
		if at <= cp.AtSeconds {
			continue // already reflected in the checkpoint
		}
		b := blobs[string(ev.Key)]
		if b == nil {
			b = &blobState{at: -1}
			blobs[string(ev.Key)] = b
		}
		switch ev.Op {
		case dask.ProxyOpPublish:
			b.residual++
			if at >= b.at {
				b.owner = dask.RankFromAddr(ev.Worker)
				b.size = ev.Bytes
				b.at = at
			}
		case dask.ProxyOpFree, dask.ProxyOpReclaim:
			b.residual--
		}
	}

	// Memoize: every completed task, resolvable when its blob survived. A
	// blob without an execution record (the record was in an unflushed
	// batch; topics lose their tails independently) still memoizes — the
	// publish proves completion.
	for key, t := range tasks {
		memo := dask.ResumeMemo{Size: t.size, Owner: -1}
		if b := blobs[key]; b != nil && b.residual > 0 {
			memo.Resolvable = true
			memo.Owner = b.owner
			if b.size > 0 {
				memo.Size = b.size
			}
		}
		st.Memos[dask.TaskKey(key)] = memo
	}
	for key, b := range blobs {
		if _, known := tasks[key]; known || b.residual <= 0 {
			continue
		}
		st.Memos[dask.TaskKey(key)] = dask.ResumeMemo{Size: b.size, Resolvable: true, Owner: b.owner}
	}

	// Completed graphs. Two distinct notions: doneLogged (the done event
	// itself survives in the WAL — the resumed session must suppress its
	// duplicate) and doneEvidenced (checkpoint Done marks too — the event may
	// have died in an unflushed batch, so the resumed session must RE-emit it
	// or the merged log never records the graph finishing).
	doneLogged := make(map[int]bool)
	doneEvidenced := make(map[int]bool)
	for id, g := range cp.Graphs {
		if g.Done {
			var n int
			if _, err := fmt.Sscanf(id, "%d", &n); err == nil {
				doneEvidenced[n] = true
			}
		}
	}
	graphEvents, err := provenance.DrainTopic(broker, provenance.TopicGraphs)
	if err != nil {
		return nil, fmt.Errorf("resume: graph events: %w", err)
	}
	for _, m := range graphEvents {
		maxAt = math.Max(maxAt, provenance.Num(m, "at"))
		if provenance.Str(m, "event") == "done" {
			id := int(provenance.Num(m, "graph_id"))
			doneLogged[id] = true
			doneEvidenced[id] = true
		}
	}
	for id := range doneLogged {
		st.DoneGraphs = append(st.DoneGraphs, id)
	}
	sort.Ints(st.DoneGraphs)

	// File effects in completion order: later writers win (CREATE truncates,
	// so replay must preserve order, not take maxima).
	type timedEffects struct {
		stop  float64
		key   string
		files []dask.FileEffect
	}
	var ordered []timedEffects
	for key, t := range tasks {
		if len(t.files) > 0 {
			ordered = append(ordered, timedEffects{stop: t.stop, key: key, files: t.files})
		}
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].stop != ordered[j].stop {
			return ordered[i].stop < ordered[j].stop
		}
		return ordered[i].key < ordered[j].key
	})
	for _, te := range ordered {
		st.FileEffects = append(st.FileEffects, te.files...)
	}

	// The remaining topics only contribute to the clock frontier.
	for _, topic := range []string{
		provenance.TopicTaskMeta, provenance.TopicTransitions, provenance.TopicTransfers,
		provenance.TopicWarnings, provenance.TopicHeartbeats, provenance.TopicSteals,
	} {
		metas, err := provenance.DrainTopic(broker, topic)
		if err != nil {
			continue // topic may not exist in minimal logs
		}
		for _, m := range metas {
			maxAt = math.Max(maxAt, provenance.Num(m, "at"))
			maxAt = math.Max(maxAt, provenance.Num(m, "stop"))
		}
	}
	if maxAt < 0 {
		maxAt = 0
	}
	st.ResumeBase = sim.Seconds(math.Ceil(maxAt) + 1)

	// The merged frontier, re-checkpointed under the new attempt so the
	// resumed session's own checkpoints keep covering prior attempts' work.
	fr := NewCheckpoint(st.Attempt)
	fr.AtSeconds = st.ResumeBase.Seconds()
	for key, t := range tasks {
		fr.Tasks[key] = FrontierTask{GraphID: t.graph, Size: t.size, StopSeconds: t.stop, Files: t.files}
		g := fr.Graphs[strconv.Itoa(t.graph)]
		g.Completed++
		fr.Graphs[strconv.Itoa(t.graph)] = g
	}
	for id := range doneEvidenced {
		g := fr.Graphs[strconv.Itoa(id)]
		g.Done = true
		fr.Graphs[strconv.Itoa(id)] = g
	}
	var blobKeys []string
	for key, b := range blobs {
		if b.residual > 0 {
			blobKeys = append(blobKeys, key)
		}
	}
	sort.Strings(blobKeys)
	for _, key := range blobKeys {
		b := blobs[key]
		fr.Blobs = append(fr.Blobs, FrontierBlob{Key: key, Owner: b.owner, Size: b.size})
	}
	st.Frontier = fr
	return st, nil
}

// legacyCompleted detects a finished pre-lineage run from its metadata.json
// (written only at clean end, with a positive wall time).
func legacyCompleted(dataDir string) (bool, error) {
	b, err := os.ReadFile(filepath.Join(dataDir, "metadata.json"))
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("resume: read metadata: %w", err)
	}
	var m struct {
		WallSeconds float64 `json:"wall_seconds"`
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return false, fmt.Errorf("resume: corrupt metadata: %w", err)
	}
	return m.WallSeconds > 0, nil
}
