// Package frame is a small, typed, columnar dataframe library — the uniform
// tabular representation PERFRECUP stores every data source in (Darshan
// records, Mofka task events, job metadata), "facilitating compliance with
// FAIR principles, especially interoperability and reusability" (§I). It
// supports the operations the paper's analyses need: filter, sort, group-by
// aggregation, hash joins on shared identifiers, and CSV round-trips.
package frame

import (
	"fmt"
	"math"
	"sort"
)

// Dtype is a column's element type.
type Dtype int

// Column element types.
const (
	Int Dtype = iota
	Float
	String
	Bool
)

// String returns the dtype name.
func (d Dtype) String() string {
	switch d {
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("dtype(%d)", int(d))
	}
}

// Series is one named, typed column.
type Series struct {
	name  string
	dtype Dtype
	ints  []int64
	flts  []float64
	strs  []string
	bools []bool
}

// Ints creates an int64 column.
func Ints(name string, vals ...int64) *Series {
	return &Series{name: name, dtype: Int, ints: vals}
}

// Floats creates a float64 column.
func Floats(name string, vals ...float64) *Series {
	return &Series{name: name, dtype: Float, flts: vals}
}

// Strings creates a string column.
func Strings(name string, vals ...string) *Series {
	return &Series{name: name, dtype: String, strs: vals}
}

// Bools creates a bool column.
func Bools(name string, vals ...bool) *Series {
	return &Series{name: name, dtype: Bool, bools: vals}
}

// Name returns the column name.
func (s *Series) Name() string { return s.name }

// Dtype returns the column type.
func (s *Series) Dtype() Dtype { return s.dtype }

// Len returns the number of elements.
func (s *Series) Len() int {
	switch s.dtype {
	case Int:
		return len(s.ints)
	case Float:
		return len(s.flts)
	case String:
		return len(s.strs)
	default:
		return len(s.bools)
	}
}

// Int returns element i of an Int column.
func (s *Series) Int(i int) int64 { s.mustBe(Int); return s.ints[i] }

// Float returns element i of a Float column (Int columns convert).
func (s *Series) Float(i int) float64 {
	switch s.dtype {
	case Float:
		return s.flts[i]
	case Int:
		return float64(s.ints[i])
	default:
		panic(fmt.Sprintf("frame: column %q (%v) is not numeric", s.name, s.dtype))
	}
}

// Str returns element i of a String column.
func (s *Series) Str(i int) string { s.mustBe(String); return s.strs[i] }

// Bool returns element i of a Bool column.
func (s *Series) Bool(i int) bool { s.mustBe(Bool); return s.bools[i] }

// Value returns element i as an any-typed value.
func (s *Series) Value(i int) any {
	switch s.dtype {
	case Int:
		return s.ints[i]
	case Float:
		return s.flts[i]
	case String:
		return s.strs[i]
	default:
		return s.bools[i]
	}
}

// keyString renders element i as a grouping/join key.
func (s *Series) keyString(i int) string {
	switch s.dtype {
	case Int:
		return fmt.Sprintf("i%d", s.ints[i])
	case Float:
		return fmt.Sprintf("f%g", s.flts[i])
	case String:
		return "s" + s.strs[i]
	default:
		if s.bools[i] {
			return "b1"
		}
		return "b0"
	}
}

func (s *Series) mustBe(d Dtype) {
	if s.dtype != d {
		panic(fmt.Sprintf("frame: column %q is %v, not %v", s.name, s.dtype, d))
	}
}

// IsNumeric reports whether the column supports Float().
func (s *Series) IsNumeric() bool { return s.dtype == Int || s.dtype == Float }

// Floats64 returns the column as a float slice (numeric columns only).
func (s *Series) Floats64() []float64 {
	out := make([]float64, s.Len())
	for i := range out {
		out[i] = s.Float(i)
	}
	return out
}

// take builds a new series from the given row indices.
func (s *Series) take(idx []int) *Series {
	out := &Series{name: s.name, dtype: s.dtype}
	switch s.dtype {
	case Int:
		out.ints = make([]int64, len(idx))
		for j, i := range idx {
			out.ints[j] = s.ints[i]
		}
	case Float:
		out.flts = make([]float64, len(idx))
		for j, i := range idx {
			out.flts[j] = s.flts[i]
		}
	case String:
		out.strs = make([]string, len(idx))
		for j, i := range idx {
			out.strs[j] = s.strs[i]
		}
	default:
		out.bools = make([]bool, len(idx))
		for j, i := range idx {
			out.bools[j] = s.bools[i]
		}
	}
	return out
}

// appendValue appends element i of src (same dtype) to s.
func (s *Series) appendValue(src *Series, i int) {
	switch s.dtype {
	case Int:
		s.ints = append(s.ints, src.ints[i])
	case Float:
		s.flts = append(s.flts, src.flts[i])
	case String:
		s.strs = append(s.strs, src.strs[i])
	default:
		s.bools = append(s.bools, src.bools[i])
	}
}

// appendZero appends the dtype's zero value (used for left-join misses).
func (s *Series) appendZero() {
	switch s.dtype {
	case Int:
		s.ints = append(s.ints, 0)
	case Float:
		s.flts = append(s.flts, math.NaN())
	case String:
		s.strs = append(s.strs, "")
	default:
		s.bools = append(s.bools, false)
	}
}

// Frame is an immutable-by-convention table of equal-length columns.
type Frame struct {
	cols   []*Series
	byName map[string]int
}

// New builds a frame, validating that all columns have equal length and
// unique names.
func New(cols ...*Series) (*Frame, error) {
	f := &Frame{byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := f.byName[c.name]; dup {
			return nil, fmt.Errorf("frame: duplicate column %q", c.name)
		}
		if i > 0 && c.Len() != cols[0].Len() {
			return nil, fmt.Errorf("frame: column %q has %d rows, want %d", c.name, c.Len(), cols[0].Len())
		}
		f.byName[c.name] = i
		f.cols = append(f.cols, c)
	}
	return f, nil
}

// MustNew is New panicking on error, for statically correct construction.
func MustNew(cols ...*Series) *Frame {
	f, err := New(cols...)
	if err != nil {
		panic(err)
	}
	return f
}

// NRows returns the row count.
func (f *Frame) NRows() int {
	if len(f.cols) == 0 {
		return 0
	}
	return f.cols[0].Len()
}

// NCols returns the column count.
func (f *Frame) NCols() int { return len(f.cols) }

// Columns returns the column names in order.
func (f *Frame) Columns() []string {
	out := make([]string, len(f.cols))
	for i, c := range f.cols {
		out[i] = c.name
	}
	return out
}

// Col returns the named column; it panics if absent (analysis code treats a
// missing column as a schema bug).
func (f *Frame) Col(name string) *Series {
	i, ok := f.byName[name]
	if !ok {
		panic(fmt.Sprintf("frame: no column %q (have %v)", name, f.Columns()))
	}
	return f.cols[i]
}

// HasCol reports whether the column exists.
func (f *Frame) HasCol(name string) bool {
	_, ok := f.byName[name]
	return ok
}

// Select returns a frame with only the named columns, in the given order.
func (f *Frame) Select(names ...string) *Frame {
	var cols []*Series
	for _, n := range names {
		cols = append(cols, f.Col(n))
	}
	return MustNew(cols...)
}

// WithColumn returns a frame with the column appended (or replaced if the
// name exists).
func (f *Frame) WithColumn(s *Series) *Frame {
	if f.NCols() > 0 && s.Len() != f.NRows() {
		panic(fmt.Sprintf("frame: WithColumn %q has %d rows, want %d", s.name, s.Len(), f.NRows()))
	}
	var cols []*Series
	replaced := false
	for _, c := range f.cols {
		if c.name == s.name {
			cols = append(cols, s)
			replaced = true
		} else {
			cols = append(cols, c)
		}
	}
	if !replaced {
		cols = append(cols, s)
	}
	return MustNew(cols...)
}

// Filter returns the rows for which keep returns true.
func (f *Frame) Filter(keep func(i int) bool) *Frame {
	var idx []int
	for i := 0; i < f.NRows(); i++ {
		if keep(i) {
			idx = append(idx, i)
		}
	}
	return f.Take(idx)
}

// Take returns the frame restricted to the given row indices, in order.
func (f *Frame) Take(idx []int) *Frame {
	cols := make([]*Series, len(f.cols))
	for i, c := range f.cols {
		cols[i] = c.take(idx)
	}
	return MustNew(cols...)
}

// Head returns the first n rows (fewer if the frame is shorter).
func (f *Frame) Head(n int) *Frame {
	if n > f.NRows() {
		n = f.NRows()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return f.Take(idx)
}

// SortBy returns the frame sorted by the named column (stable; ascending
// unless desc).
func (f *Frame) SortBy(name string, desc bool) *Frame {
	col := f.Col(name)
	idx := make([]int, f.NRows())
	for i := range idx {
		idx[i] = i
	}
	less := func(a, b int) bool {
		switch col.dtype {
		case Int:
			return col.ints[a] < col.ints[b]
		case Float:
			return col.flts[a] < col.flts[b]
		case String:
			return col.strs[a] < col.strs[b]
		default:
			return !col.bools[a] && col.bools[b]
		}
	}
	sort.SliceStable(idx, func(i, j int) bool {
		if desc {
			return less(idx[j], idx[i])
		}
		return less(idx[i], idx[j])
	})
	return f.Take(idx)
}

// Concat appends frames with identical schemas (names, order, dtypes).
func Concat(frames ...*Frame) (*Frame, error) {
	if len(frames) == 0 {
		return MustNew(), nil
	}
	first := frames[0]
	out := make([]*Series, first.NCols())
	for i, c := range first.cols {
		out[i] = &Series{name: c.name, dtype: c.dtype}
	}
	for _, f := range frames {
		if f.NCols() != first.NCols() {
			return nil, fmt.Errorf("frame: concat schema mismatch: %v vs %v", f.Columns(), first.Columns())
		}
		for i, c := range f.cols {
			if c.name != out[i].name || c.dtype != out[i].dtype {
				return nil, fmt.Errorf("frame: concat column %d mismatch: %s/%v vs %s/%v",
					i, c.name, c.dtype, out[i].name, out[i].dtype)
			}
			for r := 0; r < c.Len(); r++ {
				out[i].appendValue(c, r)
			}
		}
	}
	return New(out...)
}

// String renders a compact preview (up to 10 rows) for debugging.
func (f *Frame) String() string {
	s := fmt.Sprintf("Frame[%dx%d]", f.NRows(), f.NCols())
	n := f.NRows()
	if n > 10 {
		n = 10
	}
	s += fmt.Sprintf(" cols=%v", f.Columns())
	for i := 0; i < n; i++ {
		s += "\n "
		for _, c := range f.cols {
			s += fmt.Sprintf("%v\t", c.Value(i))
		}
	}
	return s
}
