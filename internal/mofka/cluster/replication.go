package cluster

import (
	"fmt"
	"sort"
	"sync"

	"taskprov/internal/mofka"
)

// topicState is the cluster-level view of one topic: its creation config
// plus per-partition replication state. Node brokers hold the actual event
// data; topicState holds who leads, what is acknowledged, and producer
// sequence bookkeeping.
type topicState struct {
	cfg   mofka.TopicConfig
	parts []*partState
}

// partState is the replication state of one partition. ps.mu serializes
// appends, reads, elections, and catch-up for the partition; it is always
// acquired before (never while holding) the cluster-wide c.mu.
type partState struct {
	topic string
	index int

	mu       sync.Mutex
	replicas []int // node ids, rendezvous rank order; [0] is preferred leader
	leader   int   // current leader node id, -1 when no replica is alive
	epoch    uint64
	acked    uint64 // acknowledged high-water mark: consumers see [0, acked)

	// applied tracks, per replica node and producer id, the highest
	// replicated batch sequence number — the dedup table that makes
	// producer retries across leader changes exactly-once per replica.
	applied map[int]map[string]uint64

	// trustedLen records, per dead replica node, the acknowledged high-water
	// mark at the moment the node was declared dead: the longest prefix of
	// that node's log guaranteed consistent with the survivors. Anything the
	// node holds beyond it is an unacknowledged tail whose offsets the
	// cluster may have reused for quorum-acknowledged events, so a restart
	// truncates the rejoining log here before the replica re-enters donor
	// selection. Lazily allocated; entries are consumed by RestartBroker.
	trustedLen map[int]uint64
}

// appliedSeq returns the highest applied sequence for (node, producer).
func (ps *partState) appliedSeq(node int, producer string) uint64 {
	if m := ps.applied[node]; m != nil {
		return m[producer]
	}
	return 0
}

func (ps *partState) setApplied(node int, producer string, seq uint64) {
	m := ps.applied[node]
	if m == nil {
		m = make(map[string]uint64)
		ps.applied[node] = m
	}
	if seq > m[producer] {
		m[producer] = seq
	}
}

// copyApplied replaces dst's dedup table with a deep copy of src's — called
// after a full catch-up, when dst holds exactly src's prefix.
func (ps *partState) copyApplied(dst, src int) {
	m := make(map[string]uint64, len(ps.applied[src]))
	for k, v := range ps.applied[src] {
		m[k] = v
	}
	ps.applied[dst] = m
}

// EnsureTopic opens the topic cluster-wide, creating it if absent: the
// replica set of every partition is computed by rendezvous hashing over the
// current membership and fixed for the topic's lifetime, and the topic is
// created on every node broker (nodes outside a partition's replica set
// simply keep that partition empty).
func (c *Cluster) EnsureTopic(cfg mofka.TopicConfig) (*ClusterTopic, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("%w: empty topic name", mofka.ErrInvalidEvent)
	}
	if cfg.Partitions < 0 || cfg.Partitions > mofka.MaxPartitions {
		return nil, fmt.Errorf("%w: topic %s: partition count %d out of range [0,%d]",
			mofka.ErrInvalidEvent, cfg.Name, cfg.Partitions, mofka.MaxPartitions)
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 1
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if ts, ok := c.topics[cfg.Name]; ok {
		if ts.cfg.Partitions != cfg.Partitions {
			c.mu.Unlock()
			return nil, fmt.Errorf("%w: topic %s exists with %d partitions, requested %d",
				mofka.ErrTopicExists, cfg.Name, ts.cfg.Partitions, cfg.Partitions)
		}
		c.mu.Unlock()
		return &ClusterTopic{c: c, name: cfg.Name, parts: cfg.Partitions}, nil
	}
	nodes := len(c.nodes)
	reps := make([]replica, nodes)
	for i, n := range c.nodes {
		reps[i] = n.rep
	}
	ts := c.buildTopicStateLocked(cfg, nodes)
	c.mu.Unlock()

	// Create the topic on every member outside c.mu (remote members mean a
	// network round-trip per node).
	for i, rep := range reps {
		if err := rep.ensureTopic(cfg); err != nil {
			return nil, fmt.Errorf("cluster: create %s on node %d: %w", cfg.Name, i, err)
		}
	}

	c.mu.Lock()
	if existing, ok := c.topics[cfg.Name]; ok {
		ts = existing // lost a create race; both computed identical placement
	} else {
		c.topics[cfg.Name] = ts
	}
	c.mu.Unlock()
	return &ClusterTopic{c: c, name: cfg.Name, parts: ts.cfg.Partitions}, nil
}

// buildTopicStateLocked computes placement for a new topic. Caller holds
// c.mu.
func (c *Cluster) buildTopicStateLocked(cfg mofka.TopicConfig, nodes int) *topicState {
	ts := &topicState{cfg: cfg}
	for i := 0; i < cfg.Partitions; i++ {
		set := replicaSet(cfg.Name, i, nodes, c.cfg.ReplicationFactor)
		leader := -1
		for _, r := range set {
			if c.nodes[r].alive {
				leader = r
				break
			}
		}
		ts.parts = append(ts.parts, &partState{
			topic:    cfg.Name,
			index:    i,
			replicas: set,
			leader:   leader,
			epoch:    1,
			applied:  make(map[int]map[string]uint64),
		})
	}
	return ts
}

// Topics lists cluster topic names in sorted order.
func (c *Cluster) Topics() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.topics))
	for n := range c.topics {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Topic returns a handle for an existing cluster topic.
func (c *Cluster) Topic(name string) (*ClusterTopic, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ts, ok := c.topics[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", mofka.ErrNoTopic, name)
	}
	return &ClusterTopic{c: c, name: name, parts: ts.cfg.Partitions}, nil
}

func (c *Cluster) partition(topic string, part int) (*partState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ts, ok := c.topics[topic]
	if !ok {
		return nil, fmt.Errorf("%w: %s", mofka.ErrNoTopic, topic)
	}
	if part < 0 || part >= len(ts.parts) {
		return nil, fmt.Errorf("%w: %s[%d]", mofka.ErrNoPartition, topic, part)
	}
	return ts.parts[part], nil
}

// replicaOf returns node id's replica handle and liveness.
func (c *Cluster) replicaOf(id int) (replica, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.nodes) {
		return nil, false
	}
	return c.nodes[id].rep, c.nodes[id].alive
}

// Append replicates one producer batch into (topic, part) with quorum
// acknowledgement. producer/seq implement idempotent retry: a batch the
// cluster has already applied to a replica is acknowledged there without
// re-appending, so producers may retry freely across failures and leader
// changes. epoch is the producer's cached fencing epoch; a stale value
// fails with ErrFenced and the current epoch is returned for the retry.
// producer=="" skips sequence tracking (non-idempotent raw appends).
//
// The returned epoch is always the partition's current epoch.
func (c *Cluster) Append(topic string, part int, producer string, seq uint64, epoch uint64, metas, datas [][]byte) (uint64, error) {
	ps, err := c.partition(topic, part)
	if err != nil {
		return 0, err
	}
	ps.mu.Lock()
	curEpoch, evs, err := c.appendLocked(ps, producer, seq, epoch, metas, datas)
	ps.mu.Unlock()
	c.health.emit(evs)
	return curEpoch, err
}

func (c *Cluster) appendLocked(ps *partState, producer string, seq uint64, epoch uint64, metas, datas [][]byte) (uint64, []Event, error) {
	var evs []Event
	if c.IsClosed() {
		return ps.epoch, nil, ErrClosed
	}
	if epoch != ps.epoch {
		return ps.epoch, nil, fmt.Errorf("%w: have epoch %d, current %d", ErrFenced, epoch, ps.epoch)
	}
	// A leader that died without a detected failure (remote member crash
	// between sweeps) surfaces here: elect before appending. If no alive
	// leader exists even after the election, the partition is unavailable —
	// reported as such (not as a fence) so producers back off instead of
	// hot-looping on route refreshes.
	if ps.leader < 0 || !c.nodeAlive(ps.leader) {
		evs = append(evs, c.electLocked(ps)...)
		if ps.leader < 0 || !c.nodeAlive(ps.leader) {
			return ps.epoch, evs, ErrUnavailable
		}
		return ps.epoch, evs, fmt.Errorf("%w: leader changed", ErrFenced)
	}
	alive := ps.aliveReplicas(c)
	if len(alive) < c.cfg.Quorum {
		evs = append(evs, Event{
			Kind: EventUnderReplicated, Node: ps.leader, Topic: ps.topic, Partition: ps.index,
			Epoch: ps.epoch, At: c.cfg.NowSeconds(),
			Detail: fmt.Sprintf("%d alive of %d replicas, quorum %d", len(alive), len(ps.replicas), c.cfg.Quorum),
		})
		return ps.epoch, evs, ErrUnavailable
	}

	leaderRep, _ := c.replicaOf(ps.leader)
	batch := uint64(len(metas))

	// Leader first. Dedup: a retried batch the leader already holds is
	// acknowledged without re-appending.
	leaderHas := producer != "" && ps.appliedSeq(ps.leader, producer) >= seq
	if !leaderHas {
		if err := leaderRep.append(ps.topic, ps.index, metas, datas); err != nil {
			return ps.epoch, evs, fmt.Errorf("cluster: leader %d append %s[%d]: %w", ps.leader, ps.topic, ps.index, err)
		}
		if producer != "" {
			ps.setApplied(ps.leader, producer, seq)
		}
	}
	leaderLen, err := leaderRep.length(ps.topic, ps.index)
	if err != nil {
		return ps.epoch, evs, err
	}

	// Followers, rank order. A follower in lockstep takes the batch
	// directly; a lagging one (it missed an earlier quorum-failed batch, or
	// it just rejoined) is first healed to the leader's full prefix —
	// preserving prefix consistency — which delivers this batch too.
	acks := 1
	for _, r := range alive {
		if r == ps.leader {
			continue
		}
		rep, ok := c.replicaOf(r)
		if !ok {
			continue
		}
		if producer != "" && ps.appliedSeq(r, producer) >= seq {
			acks++
			continue
		}
		flen, err := rep.length(ps.topic, ps.index)
		if err != nil {
			continue // replica unreachable: no ack
		}
		switch {
		case !leaderHas && flen == leaderLen-batch:
			if err := rep.append(ps.topic, ps.index, metas, datas); err != nil {
				continue
			}
		default:
			copied, err := c.syncReplicaLocked(ps, r, ps.leader, leaderLen)
			if err != nil {
				continue
			}
			if copied > 0 {
				evs = append(evs, Event{
					Kind: EventCatchUp, Node: r, Topic: ps.topic, Partition: ps.index,
					Epoch: ps.epoch, At: c.cfg.NowSeconds(),
					Detail: fmt.Sprintf("copied %d events from node %d", copied, ps.leader),
				})
			}
		}
		if producer != "" {
			ps.setApplied(r, producer, seq)
		}
		acks++
	}

	if acks < c.cfg.Quorum {
		evs = append(evs, Event{
			Kind: EventUnderReplicated, Node: ps.leader, Topic: ps.topic, Partition: ps.index,
			Epoch: ps.epoch, At: c.cfg.NowSeconds(),
			Detail: fmt.Sprintf("append reached %d of %d quorum acks", acks, c.cfg.Quorum),
		})
		return ps.epoch, evs, ErrUnavailable
	}
	// Quorum holds the leader's entire prefix (every acking follower was
	// either in lockstep or fully healed), so the whole leader log is now
	// acknowledged.
	if leaderLen > ps.acked {
		ps.acked = leaderLen
	}
	return ps.epoch, evs, nil
}

// aliveReplicas returns the partition's alive replica node ids in rank
// order. Caller holds ps.mu.
func (ps *partState) aliveReplicas(c *Cluster) []int {
	var out []int
	for _, r := range ps.replicas {
		if c.nodeAlive(r) {
			out = append(out, r)
		}
	}
	return out
}

// syncReplicaLocked copies the partition's events from donor to dst in
// CatchUpBatch chunks until dst holds the donor's prefix [0, want), and
// adopts the donor's dedup table. dst's current length is probed fresh here
// rather than trusted from the caller — a stale or defaulted value would
// re-append events dst already holds, duplicating them. Caller holds ps.mu.
// Returns the number of events copied.
func (c *Cluster) syncReplicaLocked(ps *partState, dst, donor int, want uint64) (uint64, error) {
	dstRep, ok := c.replicaOf(dst)
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoNode, dst)
	}
	donorRep, ok := c.replicaOf(donor)
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoNode, donor)
	}
	have, err := dstRep.length(ps.topic, ps.index)
	if err != nil {
		return 0, err
	}
	var copied uint64
	for have < want {
		n := int(want - have)
		if n > c.cfg.CatchUpBatch {
			n = c.cfg.CatchUpBatch
		}
		evs, err := donorRep.read(ps.topic, ps.index, have, n, true)
		if err != nil {
			return copied, err
		}
		if len(evs) == 0 {
			break
		}
		metas := make([][]byte, len(evs))
		datas := make([][]byte, len(evs))
		for i, ev := range evs {
			metas[i] = ev.Metadata
			datas[i] = ev.Data
		}
		if err := dstRep.append(ps.topic, ps.index, metas, datas); err != nil {
			return copied, err
		}
		have += uint64(len(evs))
		copied += uint64(len(evs))
	}
	if copied > 0 || have == want {
		ps.copyApplied(dst, donor)
	}
	return copied, nil
}

// electLocked reconciles a partition after a membership change: the
// highest-ranked alive replica becomes leader, the new leader is healed
// from the longest surviving log (leader-first appends mean a dead leader's
// unacknowledged tail — and only that tail — can be lost), and the other
// survivors are healed from the new leader. Leadership changes bump the
// fencing epoch, invalidating every producer's cached route. Caller holds
// ps.mu; returned events must be emitted after the lock is released.
func (c *Cluster) electLocked(ps *partState) []Event {
	var evs []Event
	now := c.cfg.NowSeconds()
	alive := ps.aliveReplicas(c)
	if len(alive) == 0 {
		if ps.leader >= 0 {
			ps.leader = -1
			ps.epoch++
			evs = append(evs, Event{
				Kind: EventUnderReplicated, Node: -1, Topic: ps.topic, Partition: ps.index,
				Epoch: ps.epoch, At: now, Detail: "no alive replicas",
			})
		}
		return evs
	}

	// Longest surviving log is the catch-up donor: it holds every
	// acknowledged event (acked events live on >= quorum replicas, and
	// replica logs are prefix-consistent). A replica whose length probe
	// fails is excluded from donor selection, leadership, and healing this
	// round — treating a failed probe as length 0 would re-append the
	// donor's whole prefix onto data the replica already holds.
	donor, donorLen := -1, uint64(0)
	lengths := make(map[int]uint64, len(alive))
	for _, r := range alive {
		rep, _ := c.replicaOf(r)
		n, err := rep.length(ps.topic, ps.index)
		if err != nil {
			continue
		}
		lengths[r] = n
		if donor < 0 || n > donorLen {
			donor, donorLen = r, n
		}
	}
	if donor < 0 {
		return evs
	}

	newLeader := -1
	for _, r := range alive {
		if _, ok := lengths[r]; ok {
			newLeader = r
			break
		}
	}
	healed := 1 // the donor holds its own full prefix
	if newLeader != donor {
		copied, err := c.syncReplicaLocked(ps, newLeader, donor, donorLen)
		if err == nil {
			healed++
			if copied > 0 {
				evs = append(evs, Event{
					Kind: EventCatchUp, Node: newLeader, Topic: ps.topic, Partition: ps.index,
					Epoch: ps.epoch, At: now,
					Detail: fmt.Sprintf("copied %d events from node %d", copied, donor),
				})
			}
		} else {
			// The preferred leader cannot be healed right now; lead from the
			// donor instead so acknowledged data stays serveable.
			newLeader = donor
		}
	}
	for _, r := range alive {
		if r == newLeader || r == donor {
			continue
		}
		if _, ok := lengths[r]; !ok {
			continue
		}
		copied, err := c.syncReplicaLocked(ps, r, newLeader, donorLen)
		if err != nil {
			continue
		}
		healed++
		if copied > 0 {
			evs = append(evs, Event{
				Kind: EventCatchUp, Node: r, Topic: ps.topic, Partition: ps.index,
				Epoch: ps.epoch, At: now,
				Detail: fmt.Sprintf("copied %d events from node %d", copied, newLeader),
			})
		}
	}

	if newLeader != ps.leader {
		ps.epoch++
		ps.leader = newLeader
		evs = append(evs, Event{
			Kind: EventLeaderElected, Node: newLeader, Topic: ps.topic, Partition: ps.index,
			Epoch: ps.epoch, At: now,
			Detail: fmt.Sprintf("rank %d of %v", rankOf(ps.replicas, newLeader), ps.replicas),
		})
	}
	if len(alive) < c.cfg.Quorum {
		evs = append(evs, Event{
			Kind: EventUnderReplicated, Node: newLeader, Topic: ps.topic, Partition: ps.index,
			Epoch: ps.epoch, At: now,
			Detail: fmt.Sprintf("%d alive of %d replicas, quorum %d", len(alive), len(ps.replicas), c.cfg.Quorum),
		})
	} else if healed >= c.cfg.Quorum && donorLen > ps.acked {
		// The donor's full prefix now provably lives on >= quorum replicas
		// (the donor plus every replica healed to it this round): the
		// reconciled log is acknowledged. Replicas that could not be probed
		// or healed do not count toward the quorum.
		ps.acked = donorLen
	}
	return evs
}

func rankOf(replicas []int, node int) int {
	for i, r := range replicas {
		if r == node {
			return i
		}
	}
	return -1
}

// Read returns up to max events of the partition's acknowledged prefix
// starting at offset from. Unacknowledged leader-only suffixes are never
// visible to consumers — they could be lost in a failover.
func (c *Cluster) Read(topic string, part int, from uint64, max int, withData bool) ([]mofka.Event, error) {
	ps, err := c.partition(topic, part)
	if err != nil {
		return nil, err
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return c.readLocked(ps, from, max, withData)
}

func (c *Cluster) readLocked(ps *partState, from uint64, max int, withData bool) ([]mofka.Event, error) {
	if from >= ps.acked {
		return nil, nil
	}
	if ps.leader < 0 {
		return nil, ErrUnavailable
	}
	rep, ok := c.replicaOf(ps.leader)
	if !ok {
		return nil, ErrUnavailable
	}
	if avail := ps.acked - from; uint64(max) > avail {
		max = int(avail)
	}
	return rep.read(ps.topic, ps.index, from, max, withData)
}

// Length returns the partition's acknowledged length — what consumers can
// observe.
func (c *Cluster) Length(topic string, part int) (uint64, error) {
	ps, err := c.partition(topic, part)
	if err != nil {
		return 0, err
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.acked, nil
}

// Epoch returns the partition's current fencing epoch.
func (c *Cluster) Epoch(topic string, part int) (uint64, error) {
	ps, err := c.partition(topic, part)
	if err != nil {
		return 0, err
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.epoch, nil
}

// CommitCursor durably records a consumer's next-unread offset on every
// alive replica of the partition, so the cursor survives any single broker
// loss exactly as the events do.
func (c *Cluster) CommitCursor(consumer, topic string, part int, next uint64) error {
	ps, err := c.partition(topic, part)
	if err != nil {
		return err
	}
	ps.mu.Lock()
	alive := ps.aliveReplicas(c)
	ps.mu.Unlock()
	committed := 0
	var firstErr error
	for _, r := range alive {
		rep, ok := c.replicaOf(r)
		if !ok {
			continue
		}
		if err := rep.commitCursor(consumer, topic, part, next); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		committed++
	}
	if committed == 0 {
		if firstErr != nil {
			return firstErr
		}
		return ErrUnavailable
	}
	return nil
}

// LoadCursor returns a consumer's committed next-unread offset: the maximum
// across the partition's alive replicas (commits land on all of them; a
// replica that was dead during a commit reports a stale value).
func (c *Cluster) LoadCursor(consumer, topic string, part int) uint64 {
	ps, err := c.partition(topic, part)
	if err != nil {
		return 0
	}
	ps.mu.Lock()
	alive := ps.aliveReplicas(c)
	ps.mu.Unlock()
	var max uint64
	for _, r := range alive {
		rep, ok := c.replicaOf(r)
		if !ok {
			continue
		}
		if n, err := rep.loadCursor(consumer, topic, part); err == nil && n > max {
			max = n
		}
	}
	return max
}

// recoverTopics rebuilds cluster topic state after reopening a durable
// cluster: each node broker has already replayed its own WAL; the cluster
// recomputes placement (a pure function, so it matches the original run),
// reconciles replica divergence left by the crash, and acknowledges the
// longest recovered prefix.
func (c *Cluster) recoverTopics() error {
	c.mu.Lock()
	nodes := len(c.nodes)
	names := make(map[string]mofka.TopicConfig)
	for _, n := range c.nodes {
		if n.local == nil {
			continue
		}
		for _, name := range n.local.Topics() {
			if _, ok := names[name]; ok {
				continue
			}
			t, err := n.local.OpenTopic(name)
			if err != nil {
				c.mu.Unlock()
				return err
			}
			names[name] = t.Config()
		}
	}
	reps := make([]replica, nodes)
	for i, n := range c.nodes {
		reps[i] = n.rep
	}
	sortedNames := make([]string, 0, len(names))
	for name := range names {
		sortedNames = append(sortedNames, name)
	}
	sort.Strings(sortedNames)
	states := make([]*topicState, 0, len(sortedNames))
	for _, name := range sortedNames {
		ts := c.buildTopicStateLocked(names[name], nodes)
		c.topics[name] = ts
		states = append(states, ts)
	}
	c.mu.Unlock()

	var evs []Event
	for _, ts := range states {
		for _, rep := range reps {
			if err := rep.ensureTopic(ts.cfg); err != nil {
				return err
			}
		}
		for _, ps := range ts.parts {
			ps.mu.Lock()
			evs = append(evs, c.electLocked(ps)...)
			ps.mu.Unlock()
		}
	}
	c.health.emit(evs)
	return nil
}

// ReadView materializes the cluster's acknowledged state as a standalone
// in-memory broker: every topic, every partition's acknowledged prefix, and
// every committed cursor. Post-run analysis (perfrecup views, the live
// monitor's final replay, DrainTopic helpers) works on the view unchanged —
// the cluster looks exactly like the single broker those tools were built
// for.
func (c *Cluster) ReadView() (*mofka.Broker, error) {
	view := mofka.NewStandaloneBroker()
	c.mu.Lock()
	states := make([]*topicState, 0, len(c.topics))
	for _, ts := range c.topics {
		states = append(states, ts)
	}
	c.mu.Unlock()

	for _, ts := range states {
		cfg := ts.cfg
		vt, err := view.CreateTopic(cfg)
		if err != nil {
			return nil, err
		}
		for _, ps := range ts.parts {
			vp, err := vt.Partition(ps.index)
			if err != nil {
				return nil, err
			}
			ps.mu.Lock()
			var from uint64
			for {
				evs, err := c.readLocked(ps, from, c.cfg.CatchUpBatch, true)
				if err != nil {
					ps.mu.Unlock()
					return nil, err
				}
				if len(evs) == 0 {
					break
				}
				metas := make([][]byte, len(evs))
				datas := make([][]byte, len(evs))
				for i, ev := range evs {
					metas[i] = ev.Metadata
					datas[i] = ev.Data
				}
				if err := vp.Append(metas, datas); err != nil {
					ps.mu.Unlock()
					return nil, err
				}
				from += uint64(len(evs))
			}
			ps.mu.Unlock()
		}
	}

	// Cursors: merge every node's committed cursors (max wins) into the view.
	c.mu.Lock()
	locals := make([]*mofka.Broker, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n.alive && n.local != nil {
			locals = append(locals, n.local)
		}
	}
	c.mu.Unlock()
	type ckey struct {
		consumer, topic string
		part            int
	}
	cursors := make(map[ckey]uint64)
	for _, b := range locals {
		for _, cur := range b.Cursors() {
			k := ckey{cur.Consumer, cur.Topic, cur.Partition}
			if cur.Next > cursors[k] {
				cursors[k] = cur.Next
			}
		}
	}
	for k, next := range cursors {
		if err := view.CommitCursor(k.consumer, k.topic, k.part, next); err != nil {
			return nil, err
		}
	}
	return view, nil
}
