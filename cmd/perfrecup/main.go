// Command perfrecup analyzes run directories written by cmd/taskprov: it
// loads the heterogeneous artifacts (Darshan binary logs, Mofka event
// topics, metadata) into uniform views and prints the paper's tables and
// figures.
//
// Usage:
//
//	perfrecup table1   runs/xgboost-0001 [more run dirs...]
//	perfrecup phases   runs/ip-* runs/xgb-*      (Fig. 3)
//	perfrecup iotimeline runs/ip-0001            (Fig. 4)
//	perfrecup comm     runs/resnet152-0001       (Fig. 5)
//	perfrecup tasks    runs/xgboost-0001         (Fig. 6)
//	perfrecup warnings runs/xgboost-0001         (Fig. 7)
//	perfrecup lineage  runs/xgboost-0001 -key "('getitem__get_categories-...', 63)"  (Fig. 8)
//	perfrecup export   runs/xgboost-0001 -view executions > executions.csv
//	perfrecup critpath runs/xgboost-0001             (bottleneck attribution)
//	perfrecup whatif   runs/xgboost-0001 -scenario "workers=16 net=0.5"
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"taskprov/internal/core"
	"taskprov/internal/darshan"
	"taskprov/internal/mofka"
	"taskprov/internal/mofka/cluster"
	"taskprov/internal/perfrecup"
	"taskprov/internal/perfrecup/frame"
	"taskprov/internal/whatif"
)

func main() {
	if len(os.Args) < 3 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "table1":
		err = cmdTable1(args)
	case "phases":
		err = cmdPhases(args)
	case "iotimeline":
		err = cmdIOTimeline(args)
	case "comm":
		err = cmdComm(args)
	case "tasks":
		err = cmdTasks(args)
	case "warnings":
		err = cmdWarnings(args)
	case "lineage":
		err = cmdLineage(args)
	case "export":
		err = cmdExport(args)
	case "window":
		err = cmdWindow(args)
	case "compare":
		err = cmdCompare(args)
	case "darshan":
		err = cmdDarshan(args)
	case "svg":
		err = cmdSVG(args)
	case "correlate":
		err = cmdCorrelate(args)
	case "heatmap":
		err = cmdHeatmap(args)
	case "cluster":
		err = cmdCluster(args)
	case "proxy":
		err = cmdProxy(args)
	case "speculate":
		err = cmdSpeculate(args)
	case "metadata":
		err = cmdMetadata(args)
	case "critpath":
		err = cmdCritPath(args)
	case "whatif":
		err = cmdWhatIf(args)
	default:
		fmt.Fprintf(os.Stderr, "perfrecup: unknown command %q (valid: %s)\n", cmd, commandList)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfrecup:", err)
		os.Exit(1)
	}
}

// commandList is the one-line valid-command inventory printed on an unknown
// command (and in the usage string) — keep it in sync with main's switch.
const commandList = "table1|phases|iotimeline|comm|tasks|warnings|lineage|export|window|compare|darshan|svg|correlate|heatmap|cluster|proxy|speculate|metadata|critpath|whatif"

func usage() {
	fmt.Fprintf(os.Stderr, "usage: perfrecup <%s> <run dir...> [flags]\n", commandList)
}

// load accepts all artifact layouts: a run directory written by
// cmd/taskprov (metadata.json + mofka/*.jsonl), a durable broker data
// directory (topics/ + segment files), or a sharded cluster directory
// (cluster.json + node-NN/ replica logs) — the latter two load post-mortem
// straight from the on-disk event logs.
func load(dir string) (*core.RunArtifacts, error) {
	if cluster.IsClusterDir(dir) || mofka.IsDataDir(dir) {
		return perfrecup.LoadEventLog(dir)
	}
	return core.LoadDir(dir)
}

func cmdTable1(dirs []string) error {
	type agg struct {
		graphs, tasks, files       int
		opsLo, opsHi, comLo, comHi int64
		runs                       int
	}
	byWorkflow := map[string]*agg{}
	var order []string
	for _, dir := range dirs {
		art, err := load(dir)
		if err != nil {
			return err
		}
		name := art.Meta.Workflow
		a, ok := byWorkflow[name]
		if !ok {
			a = &agg{opsLo: 1 << 62, comLo: 1 << 62}
			byWorkflow[name] = a
			order = append(order, name)
		}
		graphs, err := art.TaskGraphs()
		if err != nil {
			return err
		}
		tasks, err := art.DistinctTasks()
		if err != nil {
			return err
		}
		comms, err := art.TotalCommunications()
		if err != nil {
			return err
		}
		ops := art.TotalIOOps()
		a.graphs, a.tasks, a.files = graphs, tasks, art.DistinctFiles()
		if ops < a.opsLo {
			a.opsLo = ops
		}
		if ops > a.opsHi {
			a.opsHi = ops
		}
		if comms < a.comLo {
			a.comLo = comms
		}
		if comms > a.comHi {
			a.comHi = comms
		}
		a.runs++
	}
	fmt.Println("Workflows        Task graphs  Distinct tasks  Distinct files  I/O operation  Communications  (runs)")
	for _, name := range order {
		a := byWorkflow[name]
		fmt.Printf("%-16s %-12d %-15d %-15d %d-%-10d %d-%-10d %d\n",
			name, a.graphs, a.tasks, a.files, a.opsLo, a.opsHi, a.comLo, a.comHi, a.runs)
	}
	return nil
}

func cmdPhases(dirs []string) error {
	byWorkflow := map[string][]perfrecup.PhaseBreakdown{}
	var order []string
	for _, dir := range dirs {
		art, err := load(dir)
		if err != nil {
			return err
		}
		b, err := perfrecup.Phases(art)
		if err != nil {
			return err
		}
		if _, ok := byWorkflow[b.Workflow]; !ok {
			order = append(order, b.Workflow)
		}
		byWorkflow[b.Workflow] = append(byWorkflow[b.Workflow], b)
	}
	sort.Strings(order)
	var stats []perfrecup.PhaseStats
	for _, name := range order {
		stats = append(stats, perfrecup.AggregatePhases(byWorkflow[name]))
	}
	fmt.Print(perfrecup.RenderPhaseStats(stats))
	return nil
}

func cmdIOTimeline(args []string) error {
	fs := flag.NewFlagSet("iotimeline", flag.ExitOnError)
	bins := fs.Int("bins", 120, "time bins")
	small := fs.Int64("small", 1<<20, "bytes below which accesses render lowercase")
	dir := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	art, err := load(dir)
	if err != nil {
		return err
	}
	out, err := perfrecup.IOTimeline(art, *bins, *small)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

func cmdComm(args []string) error {
	art, err := load(args[0])
	if err != nil {
		return err
	}
	buckets, err := perfrecup.CommScatter(art)
	if err != nil {
		return err
	}
	fmt.Print(perfrecup.RenderCommScatter(buckets))
	return nil
}

func cmdTasks(args []string) error {
	fs := flag.NewFlagSet("tasks", flag.ExitOnError)
	top := fs.Int("top", 15, "longest tasks to list")
	dir := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	art, err := load(dir)
	if err != nil {
		return err
	}
	pc, err := perfrecup.ParallelCoords(art)
	if err != nil {
		return err
	}
	fmt.Print(perfrecup.RenderParallelCoords(pc, *top))
	return nil
}

func cmdWarnings(args []string) error {
	fs := flag.NewFlagSet("warnings", flag.ExitOnError)
	bin := fs.Float64("bin", 100, "histogram bin width in seconds")
	dir := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	art, err := load(dir)
	if err != nil {
		return err
	}
	h, err := perfrecup.WarningHistogram(art, *bin)
	if err != nil {
		return err
	}
	fmt.Print(perfrecup.RenderWarningHistogram(h, *bin))
	return nil
}

func cmdLineage(args []string) error {
	fs := flag.NewFlagSet("lineage", flag.ExitOnError)
	key := fs.String("key", "", "task key (exact)")
	prefix := fs.String("prefix", "", "pick the longest task with this prefix")
	dir := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	art, err := load(dir)
	if err != nil {
		return err
	}
	k := *key
	if k == "" && *prefix != "" {
		pc, err := perfrecup.ParallelCoords(art)
		if err != nil {
			return err
		}
		for i := 0; i < pc.NRows(); i++ {
			if pc.Col("prefix").Str(i) == *prefix {
				k = pc.Col("key").Str(i)
				break
			}
		}
	}
	if k == "" {
		return fmt.Errorf("need -key or -prefix")
	}
	l, err := perfrecup.BuildLineage(art, k)
	if err != nil {
		return err
	}
	fmt.Print(l.Render())
	return nil
}

// exportViews maps -view names to their builders; exportViewNames keeps the
// presentation order for the flag help and the unknown-view error.
var exportViews = map[string]func(*core.RunArtifacts) (*frame.Frame, error){
	"executions":  perfrecup.ExecutionsView,
	"transitions": perfrecup.TransitionsView,
	"transfers":   perfrecup.TransfersView,
	"warnings":    perfrecup.WarningsView,
	"dxt":         perfrecup.DXTView,
	"posix":       perfrecup.PosixView,
	"taskmeta":    perfrecup.TaskMetaView,
	"heartbeats":  perfrecup.HeartbeatsView,
	"taskio":      perfrecup.TaskIOSummary,
	"proxy":       perfrecup.ProxyView,
	"critpath":    perfrecup.CritPathView,
	"speculation": perfrecup.SpeculationTimelineView,
}

var exportViewNames = []string{
	"executions", "transitions", "transfers", "warnings", "dxt", "posix",
	"taskmeta", "heartbeats", "taskio", "proxy", "critpath", "speculation",
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	view := fs.String("view", "executions", strings.Join(exportViewNames, "|"))
	dir := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	build, ok := exportViews[*view]
	if !ok {
		return fmt.Errorf("unknown view %q (valid: %s)", *view, strings.Join(exportViewNames, "|"))
	}
	art, err := load(dir)
	if err != nil {
		return err
	}
	f, err := build(art)
	if err != nil {
		return err
	}
	return f.WriteCSV(os.Stdout)
}

// cmdWindow zooms into a time period of one run (§IV-D "zooming through a
// specific time period").
func cmdWindow(args []string) error {
	fs := flag.NewFlagSet("window", flag.ExitOnError)
	from := fs.Float64("from", 0, "window start (seconds)")
	to := fs.Float64("to", 0, "window end (seconds; 0 = end of run)")
	dir := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	art, err := load(dir)
	if err != nil {
		return err
	}
	end := *to
	if end <= 0 {
		end = art.Meta.WallSeconds
	}
	w, err := perfrecup.Window(art, *from, end)
	if err != nil {
		return err
	}
	fmt.Print(w.Render())
	return nil
}

// cmdCompare contrasts the scheduling of two runs (§IV-D "whether tasks
// were scheduled in the same order or not").
func cmdCompare(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("compare needs two run directories")
	}
	a, err := load(args[0])
	if err != nil {
		return err
	}
	b, err := load(args[1])
	if err != nil {
		return err
	}
	cmp, err := perfrecup.CompareSchedules(a, b)
	if err != nil {
		return err
	}
	fmt.Print(cmp.Render())
	return nil
}

// cmdDarshan prints the darshan-parser-style job summary of a run's logs.
func cmdDarshan(args []string) error {
	fs := flag.NewFlagSet("darshan", flag.ExitOnError)
	top := fs.Int("top", 10, "files to list")
	dir := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	art, err := load(dir)
	if err != nil {
		return err
	}
	fmt.Print(darshan.Summarize(art.DarshanLogs, *top).Render())
	return nil
}

// cmdSVG writes a figure as an SVG file.
func cmdSVG(args []string) error {
	fs := flag.NewFlagSet("svg", flag.ExitOnError)
	fig := fs.String("figure", "iotimeline", "iotimeline|comm|warnings|phases|critpath")
	out := fs.String("o", "figure.svg", "output file")
	bin := fs.Float64("bin", 100, "warning histogram bin (seconds)")
	dir := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	art, err := load(dir)
	if err != nil {
		return err
	}
	var svg string
	switch *fig {
	case "iotimeline":
		svg, err = perfrecup.IOTimelineSVG(art)
	case "comm":
		svg, err = perfrecup.CommScatterSVG(art)
	case "warnings":
		h, herr := perfrecup.WarningHistogram(art, *bin)
		if herr != nil {
			return herr
		}
		svg = perfrecup.WarningHistogramSVG(h, *bin)
	case "phases":
		b, perr := perfrecup.Phases(art)
		if perr != nil {
			return perr
		}
		svg = perfrecup.PhaseBarsSVG([]perfrecup.PhaseStats{perfrecup.AggregatePhases([]perfrecup.PhaseBreakdown{b})})
	case "critpath":
		svg, err = perfrecup.CritPathSVG(art)
	default:
		return fmt.Errorf("unknown figure %q (valid: iotimeline|comm|warnings|phases|critpath)", *fig)
	}
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(svg))
	return nil
}

// cmdCorrelate prints the warning/long-task and duration/size correlations.
func cmdCorrelate(args []string) error {
	fs := flag.NewFlagSet("correlate", flag.ExitOnError)
	bin := fs.Float64("bin", 50, "time bin width (seconds)")
	dir := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	art, err := load(dir)
	if err != nil {
		return err
	}
	rep, err := perfrecup.Correlate(art, *bin)
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	return nil
}

// cmdHeatmap prints the merged Darshan HEATMAP module across workers.
func cmdHeatmap(args []string) error {
	art, err := load(args[0])
	if err != nil {
		return err
	}
	var hs []*darshan.Heatmap
	for _, l := range art.DarshanLogs {
		hs = append(hs, l.Heatmap)
	}
	merged := darshan.MergeHeatmaps(hs)
	if merged == nil {
		return fmt.Errorf("no heatmap data in %s", args[0])
	}
	fmt.Print(merged.Render())
	return nil
}

// cmdCluster prints the Mofka cluster-health lane: the replication and
// failover timeline a sharded run recorded on its warnings topic.
func cmdCluster(args []string) error {
	art, err := load(args[0])
	if err != nil {
		return err
	}
	f, err := perfrecup.ClusterTimelineView(art)
	if err != nil {
		return err
	}
	tl := perfrecup.RenderClusterTimeline(f)
	if tl == "" {
		fmt.Println("no cluster events (single-broker run)")
		return nil
	}
	fmt.Printf("cluster timeline (%d events):\n%s", f.NRows(), tl)
	return nil
}

// cmdProxy prints the pass-by-reference data-plane lane: per-operation
// counts, blob bytes, the store's resident footprint over time, and the
// demand-to-arrival resolution latency distribution.
func cmdProxy(args []string) error {
	art, err := load(args[0])
	if err != nil {
		return err
	}
	f, err := perfrecup.ProxyView(art)
	if err != nil {
		return err
	}
	if f.NRows() == 0 {
		fmt.Println("no proxy-store events (direct transfers only)")
		return nil
	}
	type opAgg struct {
		n     int64
		bytes int64
	}
	ops := map[string]*opAgg{}
	var order []string
	var peak, final int64
	var resolves []float64
	opCol := f.Col("op")
	bytesCol := f.Col("bytes")
	residentCol := f.Col("resident")
	resolveCol := f.Col("resolve_latency")
	for i := 0; i < f.NRows(); i++ {
		op := opCol.Str(i)
		a, ok := ops[op]
		if !ok {
			a = &opAgg{}
			ops[op] = a
			order = append(order, op)
		}
		a.n++
		a.bytes += bytesCol.Int(i)
		if r := residentCol.Int(i); r > peak {
			peak = r
		}
		// The drain concatenates partitions and events can share a virtual
		// timestamp, so the final footprint comes from the commutative delta
		// sum rather than any single event's snapshot.
		switch op {
		case "publish":
			final += bytesCol.Int(i)
		case "free", "reclaim":
			final -= bytesCol.Int(i)
		}
		if op == "resolve" {
			resolves = append(resolves, resolveCol.Float(i))
		}
	}
	sort.Strings(order)
	fmt.Printf("proxy store lane (%d events):\n", f.NRows())
	fmt.Println("op        n       bytes")
	for _, op := range order {
		a := ops[op]
		fmt.Printf("%-9s %-7d %d\n", op, a.n, a.bytes)
	}
	fmt.Printf("resident: peak %d B, final %d B\n", peak, final)
	if len(resolves) > 0 {
		fmt.Printf("resolve latency: mean %.5fs p95 %.5fs max %.5fs (%d resolves)\n",
			perfrecup.Mean(resolves), perfrecup.Percentile(resolves, 95),
			maxFloat(resolves), len(resolves))
	}
	return nil
}

// cmdSpeculate prints the gray-failure tolerance lane: duplicate launches,
// first-completion winners, cancelled losers with their wasted runtime,
// promotions, RPC retries, and retry-budget denials.
func cmdSpeculate(args []string) error {
	art, err := load(args[0])
	if err != nil {
		return err
	}
	f, err := perfrecup.SpeculationTimelineView(art)
	if err != nil {
		return err
	}
	tl := perfrecup.RenderSpeculationTimeline(f)
	if tl == "" {
		fmt.Println("no speculation events (hedging off and no retries)")
		return nil
	}
	fmt.Printf("speculation timeline (%d events):\n%s", f.NRows(), tl)
	return nil
}

func maxFloat(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// cmdCritPath prints the run's critical path: makespan attribution by
// category, the heaviest chain steps, and the full chain.
func cmdCritPath(args []string) error {
	art, err := load(args[0])
	if err != nil {
		return err
	}
	out, err := perfrecup.RenderCritPath(art)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

// cmdWhatIf replays the run's calibrated model under perturbed scenarios
// and prints the predicted makespan deltas. -scenario may repeat.
func cmdWhatIf(args []string) error {
	fs := flag.NewFlagSet("whatif", flag.ContinueOnError)
	var scenarios scenarioFlags
	fs.Var(&scenarios, "scenario", `scenario spec, repeatable (e.g. "workers=8 net=0.5", "proxy=off", "baseline")`)
	dir := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if len(scenarios) == 0 {
		scenarios = scenarioFlags{whatif.Scenario{}}
	}
	art, err := load(dir)
	if err != nil {
		return err
	}
	model, err := art.ExtractModel()
	if err != nil {
		return err
	}
	var results []*whatif.Result
	for _, s := range scenarios {
		r, err := model.Replay(s)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	fmt.Print(perfrecup.RenderWhatIf(model, results))
	return nil
}

// scenarioFlags collects repeated -scenario values.
type scenarioFlags []whatif.Scenario

func (f *scenarioFlags) String() string {
	parts := make([]string, len(*f))
	for i, s := range *f {
		parts[i] = s.String()
	}
	return strings.Join(parts, "; ")
}

func (f *scenarioFlags) Set(v string) error {
	s, err := whatif.ParseScenario(v)
	if err != nil {
		return err
	}
	*f = append(*f, s)
	return nil
}

// cmdMetadata prints the run's layered provenance chart (Fig. 1).
func cmdMetadata(args []string) error {
	art, err := load(args[0])
	if err != nil {
		return err
	}
	fmt.Print(art.Meta.RenderChart())
	return nil
}
