GO ?= go

.PHONY: build vet lint test race bench bench-cluster bench-proxy bench-whatif bench-speculation chaos cluster property resume fuzz whatif speculate verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet; staticcheck runs when the binary is on PATH
# (CI installs it, bare dev machines skip cleanly rather than failing).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not on PATH; skipping"; fi

test:
	$(GO) test ./...

# The broker, durable log, and live monitor are all concurrency-heavy; run
# the whole tree under the race detector.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Cluster replication overhead, recorded as JSON for tracking across
# changes (BENCH_cluster.json is checked in; regenerate after perf work).
bench-cluster:
	$(GO) test -run '^$$' -bench 'PushBatch' -benchmem ./internal/mofka/cluster/ \
		| $(GO) run ./tools/benchjson > BENCH_cluster.json
	cat BENCH_cluster.json

# Pass-by-reference data plane: scheduler control-path bytes for a 16x64MB
# gather, direct relay vs proxy refs (BENCH_proxystore.json is checked in;
# the proxy lane's control-B/op must stay >= 10x below direct).
bench-proxy:
	$(GO) test -run '^$$' -bench 'BenchmarkProxyTransfer' -benchtime 3x ./internal/dask/ \
		| $(GO) run ./tools/benchjson > BENCH_proxystore.json
	cat BENCH_proxystore.json

# Seeded, deterministic fault-injection and recovery suites, race-enabled:
# the chaos plan parser/controller, the scheduler crash-recovery tests
# (including the crash-vs-baseline property test), and the end-to-end
# degraded sessions in core/perfrecup/live.
chaos:
	$(GO) test -race -run 'TestParse|TestArm|TestEmptyPlan|TestWorkerCrash|TestLostKey|TestWorkerRestart|TestRepeatedCrash|TestCrash|TestChaos|TestRecoveryTimeline|TestAggregatorRecovery' \
		./internal/chaos/ ./internal/dask/ ./internal/core/ ./internal/perfrecup/ ./internal/live/

# The sharded, replicated cluster suites, race-enabled: placement, quorum
# replication, failover/fencing, consumer groups, and the end-to-end cluster
# sessions (broker kill mid-workflow, zero acknowledged loss, deterministic
# failover timeline).
cluster:
	$(GO) test -race ./internal/mofka/cluster/
	$(GO) test -race -run 'TestCluster' ./internal/core/

# Property push, race-enabled: random DAGs through the scheduler (exactly
# once, dependency order, determinism) and random kill/restart schedules
# under the proxy data plane (holder/refcount/quiescence invariants).
property:
	$(GO) test -race -run 'TestRandomDAG' ./internal/dask/ ./internal/core/

# Run-resumption gate, race-enabled: kill -9 of the whole session at three
# points of a seeded run (plus random DAGs at random kill points, plus the
# paper workloads), resumed from the durable provenance log — merged outputs
# and graph results must be identical to an uninterrupted run, with no task
# re-executed whose output was still resolvable.
resume:
	$(GO) test -race -run 'TestResume|TestSchedulerKillAtTask|TestSessionClose|TestRandomDAGsSurviveSchedulerKill' ./internal/core/
	$(GO) test -count=1 -run 'TestResumeEquivalence' ./internal/workloads/

# What-if validation: self-replay of the unchanged scenario on the seeded
# ImageProcessing and xgboost runs must predict the measured makespan within
# +/-10%, the critical path must attribute >=95% of it to named categories,
# and the report must render byte-identically across live/WAL/post-mortem
# loads.
whatif:
	$(GO) test -count=1 -run 'TestSelfReplayValidation|TestCriticalPathAttribution' ./internal/whatif/
	$(GO) test -count=1 -run 'TestCritPathGoldenDeterminism|TestCriticalPathLane' ./internal/perfrecup/ ./internal/live/

# Critical-path and replay cost on a 20k-task DAG, recorded as JSON
# (BENCH_whatif.json is checked in; regenerate after perf work).
bench-whatif:
	$(GO) test -run '^$$' -bench 'BenchmarkCriticalPath|BenchmarkWhatIfReplay|BenchmarkSlack' -benchmem ./internal/whatif/ \
		| $(GO) run ./tools/benchjson > BENCH_whatif.json
	cat BENCH_whatif.json

# Gray-failure acceptance gate, race-enabled: the brownout grammar and its
# arm paths, the hedged-execution acceptance run (speculation must recover
# >=40% of the makespan a factor-8 brownout costs, with exactly one execution
# record per key and the proxy footprint back at baseline), random DAGs under
# brownouts and kills, bounded retry storms, heartbeat-jitter desync, and the
# speculation views/lanes.
speculate:
	$(GO) test -race -run 'TestParseEveryDirective|TestUnknownDirectiveListsAll|TestParseSlowNetErrors|TestArmSlowdowns|TestArmLinkFaults' ./internal/chaos/
	$(GO) test -race -run 'TestBrownoutSpeculationAcceptance|TestHeartbeatJitterDesynchronizesMultiRestart|TestRetryStormBoundedUnderChaos' ./internal/core/
	$(GO) test -race -run 'TestRandomDAGsSurviveBrownoutsWithSpeculation' ./internal/dask/
	$(GO) test -race -run 'TestRetry' ./internal/mochi/mercury/
	$(GO) test -race -run 'TestAggregatorSpeculationLane|TestStragglerDetectorAdvisor' ./internal/live/
	$(GO) test -race -run 'TestSpeculationTimeline' ./internal/perfrecup/

# The brownout acceptance scenario's makespans (hedging off vs on), recorded
# as JSON for tracking across changes (BENCH_speculation.json is checked in;
# the speculated lane's makespan-s must stay well below browned-out's).
bench-speculation:
	$(GO) test -run '^$$' -bench 'BenchmarkBrownoutSpeculation' -benchtime 1x ./internal/core/ \
		| $(GO) run ./tools/benchjson > BENCH_speculation.json
	cat BENCH_speculation.json

# WAL crash-recovery fuzzing: replay the checked-in seed corpus, then fuzz
# live for a short burst (arbitrary segment bytes must never panic recovery
# and must keep exactly the valid frame prefix).
fuzz:
	$(GO) test -run 'FuzzWALRecover' ./internal/mofka/wal/
	$(GO) test -run '^$$' -fuzz 'FuzzWALRecover' -fuzztime 20s ./internal/mofka/wal/

# Everything CI runs.
verify: build lint test race chaos cluster property resume fuzz whatif speculate
