// Command taskprov runs the paper's workflows under the full
// characterization stack (Dask-model WMS + Darshan + Mofka) and writes the
// collected artifacts — Darshan binary logs, Mofka event topics as JSONL,
// and the provenance-chart metadata — to a run directory that cmd/perfrecup
// analyzes.
//
// Usage:
//
//	taskprov run -workflow xgboost -seed 1 -out runs/xgb-0001
//	taskprov run -workflow imageprocessing -runs 10 -out runs/ip
//	taskprov resume runs-wal/xgb-0001
//	taskprov watch -data-dir runs-wal/xgb-0001 -http 127.0.0.1:9090
//	taskprov watch -broker 127.0.0.1:7777 -once
//	taskprov whatif -run runs/xgb-0001 -scenario "workers=16 net=0.5"
//	taskprov list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"taskprov/internal/core"
	"taskprov/internal/live"
	"taskprov/internal/mochi/mercury"
	"taskprov/internal/mofka"
	"taskprov/internal/mofka/cluster"
	"taskprov/internal/perfrecup"
	"taskprov/internal/whatif"
	"taskprov/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "resume":
		err = cmdResume(os.Args[2:])
	case "watch":
		err = cmdWatch(os.Args[2:], nil)
	case "whatif":
		err = cmdWhatIf(os.Args[2:], os.Stdout)
	case "list":
		err = cmdList()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "taskprov:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  taskprov run -workflow <name> [-seed N] [-runs N] [-out DIR] [-data-dir DIR] [-force] [-cluster N] [-replication N] [-quorum N] [-live] [-live-http ADDR] [-chaos SPEC] [-speculate] [-speculate-quantile Q] [-proxy-threshold BYTES] [-proxy-prefetch] [-no-dxt] [-no-collect] [-no-steal]
  taskprov resume [-out DIR] [-fsync POLICY] [-chaos SPEC] DATA_DIR
  taskprov watch (-data-dir DIR | -broker ADDR) [-http ADDR] [-interval DUR] [-once] [-json]
  taskprov whatif -run DIR [-scenario SPEC]... [-critpath] [-json]
  taskprov list`)
}

func cmdList() error {
	for _, name := range workloads.Names() {
		t := workloads.TableI[name]
		fmt.Printf("%-16s paper: %d graphs, %d tasks, %d files, io %d-%d, comms %d-%d, %d runs\n",
			name, t.TaskGraphs, t.DistinctTasks, t.DistinctFiles,
			t.IOOpsLow, t.IOOpsHigh, t.CommsLow, t.CommsHigh, workloads.Runs(name))
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	workflow := fs.String("workflow", "", "workflow name (see `taskprov list`)")
	seed := fs.Uint64("seed", 1, "base run seed")
	runs := fs.Int("runs", 1, "number of runs (seeds seed..seed+runs-1)")
	out := fs.String("out", "runs", "output directory (one subdirectory per run)")
	dataDir := fs.String("data-dir", "", "root for durable Mofka event logs (one subdirectory per run; empty = in-memory)")
	fsync := fs.String("fsync", "batch", "durable log fsync policy: batch|interval|never")
	force := fs.Bool("force", false, "move an existing event log for the run aside (<dir>.old-<n>) instead of refusing")
	clusterN := fs.Int("cluster", 0, "back the provenance stream with a sharded Mofka cluster of N broker replicas (0 = single broker)")
	replication := fs.Int("replication", 0, "with -cluster, replicas per partition (0 = cluster default)")
	quorum := fs.Int("quorum", 0, "with -cluster, append acknowledgement quorum (0 = majority of replication)")
	liveMon := fs.Bool("live", false, "attach the live monitor (streaming aggregates + online anomaly detection)")
	liveHTTP := fs.String("live-http", "", "with -live, serve /snapshot /metrics /events on this address during the run")
	chaosSpec := fs.String("chaos", "", `fault-injection spec, e.g. "kill worker=3 at=20s restart=10s" or "slow worker=2 at=1m factor=8" (see internal/chaos)`)
	speculate := fs.Bool("speculate", false, "enable speculative (hedged) task execution: duplicate straggling tasks, first completion wins")
	specQuantile := fs.Float64("speculate-quantile", 0, "with -speculate, per-prefix completed-duration quantile for straggler candidacy (0 = default 0.75)")
	proxyThreshold := fs.Int64("proxy-threshold", 0, "pass outputs of at least BYTES by reference through the proxy store (0 = direct transfers)")
	proxyPrefetch := fs.Bool("proxy-prefetch", false, "with -proxy-threshold, resolve proxied dependencies eagerly at assignment instead of at first use")
	noDXT := fs.Bool("no-dxt", false, "disable Darshan DXT tracing")
	noCollect := fs.Bool("no-collect", false, "disable all instrumentation (overhead ablation)")
	noSteal := fs.Bool("no-steal", false, "disable work stealing (scheduling ablation)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workflow == "" {
		return fmt.Errorf("missing -workflow")
	}
	// Validate flag inputs up front: absurd values fail with one clear
	// error here instead of a confusing failure mid-run (core.Run validates
	// the full SessionConfig again per run).
	if *runs < 1 {
		return fmt.Errorf("-runs %d: need at least 1", *runs)
	}
	if *runs > 10000 {
		return fmt.Errorf("-runs %d is absurd (max 10000)", *runs)
	}
	if *clusterN < 0 || *replication < 0 || *quorum < 0 {
		return fmt.Errorf("-cluster/-replication/-quorum must be >= 0")
	}
	if *clusterN == 0 && (*replication != 0 || *quorum != 0) {
		return fmt.Errorf("-replication/-quorum need -cluster N")
	}
	if *proxyThreshold < 0 {
		return fmt.Errorf("-proxy-threshold must be >= 0")
	}
	if *proxyPrefetch && *proxyThreshold == 0 {
		return fmt.Errorf("-proxy-prefetch needs -proxy-threshold BYTES")
	}
	if *specQuantile != 0 && !*speculate {
		return fmt.Errorf("-speculate-quantile needs -speculate")
	}
	if *specQuantile < 0 || *specQuantile >= 1 {
		return fmt.Errorf("-speculate-quantile %g: need 0 <= q < 1", *specQuantile)
	}
	for r := 0; r < *runs; r++ {
		s := *seed + uint64(r)
		wf, err := workloads.New(*workflow)
		if err != nil {
			return err
		}
		jobID := fmt.Sprintf("%s-%04d", *workflow, s)
		cfg := workloads.DefaultSession(*workflow, jobID, s)
		cfg.DarshanDXT = !*noDXT
		cfg.DisableCollection = *noCollect
		if *dataDir != "" {
			cfg.MofkaDataDir = filepath.Join(*dataDir, jobID)
			cfg.MofkaSyncPolicy = *fsync
			if *force {
				moved, err := moveAsideDataDir(cfg.MofkaDataDir)
				if err != nil {
					return err
				}
				if moved != "" {
					fmt.Printf("taskprov: moved stale event log %s -> %s\n", cfg.MofkaDataDir, moved)
				}
			}
		}
		if *noSteal {
			cfg.Dask.WorkStealing = false
		}
		cfg.Dask.ProxyThresholdBytes = *proxyThreshold
		cfg.Dask.ProxyPrefetch = *proxyPrefetch
		cfg.LiveMonitor = *liveMon
		cfg.LiveHTTPAddr = *liveHTTP
		cfg.ChaosSpec = *chaosSpec
		if *speculate {
			cfg.Speculation.Enabled = true
			cfg.Speculation.Quantile = *specQuantile
		}
		cfg.ClusterBrokers = *clusterN
		cfg.ClusterReplication = *replication
		cfg.ClusterQuorum = *quorum
		if err := cfg.Validate(); err != nil {
			return err
		}
		art, err := core.Run(cfg, wf)
		if err != nil {
			return fmt.Errorf("run %s: %w", jobID, err)
		}
		dir := filepath.Join(*out, jobID)
		if !*noCollect {
			if err := art.WriteDir(dir); err != nil {
				return fmt.Errorf("write %s: %w", dir, err)
			}
		}
		row := fmt.Sprintf("%s wall=%.1fs", jobID, art.Meta.WallSeconds)
		if !*noCollect {
			if r, err := perfrecup.RenderTableIRow(art); err == nil {
				row = fmt.Sprintf("%s wall=%.1fs -> %s", r, art.Meta.WallSeconds, dir)
			}
		}
		fmt.Println(row)
		if art.Live != nil {
			fmt.Printf("  live: %d events, %d tasks, %d transfers, %d anomalies\n",
				art.Live.Events, art.Live.Tasks, art.Live.Transfers, len(art.Live.Anomalies))
		}
		if *chaosSpec != "" && !*noCollect {
			if f, err := perfrecup.RecoveryTimelineView(art); err == nil {
				if tl := perfrecup.RenderRecoveryTimeline(f); tl != "" {
					fmt.Printf("  recovery timeline (%d events):\n%s", f.NRows(), tl)
				}
			}
		}
		if *clusterN > 0 && !*noCollect {
			if f, err := perfrecup.ClusterTimelineView(art); err == nil {
				if tl := perfrecup.RenderClusterTimeline(f); tl != "" {
					fmt.Printf("  cluster timeline (%d events):\n%s", f.NRows(), tl)
				}
			}
		}
		if *speculate && !*noCollect {
			if f, err := perfrecup.SpeculationTimelineView(art); err == nil {
				if tl := perfrecup.RenderSpeculationTimeline(f); tl != "" {
					fmt.Printf("  speculation timeline (%d events):\n%s", f.NRows(), tl)
				}
			}
		}
		if *proxyThreshold > 0 && !*noCollect {
			if f, err := perfrecup.ProxyView(art); err == nil && f.NRows() > 0 {
				ops := map[string]int{}
				for i := 0; i < f.NRows(); i++ {
					ops[f.Col("op").Str(i)]++
				}
				fmt.Printf("  proxy store: %d publishes, %d resolves, %d misses, %d frees, %d reclaims\n",
					ops["publish"], ops["resolve"], ops["miss"], ops["free"], ops["reclaim"])
			}
		}
	}
	return nil
}

// cmdResume continues a crashed run from its durable event log: the run's
// own metadata.json rebuilds the workflow and session configuration, the
// provenance stream is replayed to reconstruct the completion frontier, and
// a new session incarnation appends to the same data dir until the workflow
// finishes. The crashed attempt's chaos spec is deliberately NOT re-armed —
// the point of resuming is to get past the fault — but -chaos can inject
// fresh faults into the resumed attempt (which can itself be resumed).
func cmdResume(args []string) error {
	fs := flag.NewFlagSet("resume", flag.ExitOnError)
	out := fs.String("out", "runs", "output directory for the completed run's artifacts")
	fsync := fs.String("fsync", "batch", "durable log fsync policy: batch|interval|never")
	chaosSpec := fs.String("chaos", "", "fault-injection spec for the resumed attempt (default: none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("resume: need exactly one durable data DIR (from `taskprov run -data-dir`)")
	}
	dir := fs.Arg(0)
	b, err := os.ReadFile(filepath.Join(dir, "metadata.json"))
	if err != nil {
		return fmt.Errorf("resume: %s is not a resumable data dir: %w", dir, err)
	}
	meta, err := core.DecodeMetadata(b)
	if err != nil {
		return fmt.Errorf("resume: %s/metadata.json: %w", dir, err)
	}
	wf, err := workloads.New(meta.Workflow)
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}

	// Rebuild the session the crashed run was started with, from its own
	// metadata — same workflow, seed, and data-plane knobs.
	cfg := workloads.DefaultSession(meta.Workflow, meta.JobID, meta.Seed)
	cfg.DarshanDXT = meta.Instrumentation.DXTEnabled
	cfg.Dask.WorkStealing = meta.DaskConfig.WorkStealing
	cfg.Dask.ProxyThresholdBytes = meta.DaskConfig.ProxyThresholdBytes
	cfg.Dask.ProxyPrefetch = meta.DaskConfig.ProxyPrefetch
	cfg.ClusterBrokers = meta.Instrumentation.ClusterBrokers
	cfg.ClusterReplication = meta.Instrumentation.ClusterReplication
	if meta.Instrumentation.SpeculationEnabled {
		cfg.Speculation.Enabled = true
		cfg.Speculation.MaxConcurrent = meta.Instrumentation.SpeculationMax
		cfg.Speculation.Quantile = meta.Instrumentation.SpeculationQuantile
		cfg.Speculation.Budget = meta.Instrumentation.SpeculationBudget
	}
	cfg.MofkaSyncPolicy = *fsync
	cfg.ResumeFrom = dir
	cfg.ChaosSpec = *chaosSpec
	if err := cfg.Validate(); err != nil {
		return err
	}
	if meta.Instrumentation.Chaos != "" {
		fmt.Printf("taskprov: crashed attempt ran under chaos %q — not re-armed\n", meta.Instrumentation.Chaos)
	}

	art, err := core.Run(cfg, wf)
	if err != nil {
		return fmt.Errorf("resume %s: %w", meta.JobID, err)
	}
	outDir := filepath.Join(*out, meta.JobID)
	if err := art.WriteDir(outDir); err != nil {
		return fmt.Errorf("write %s: %w", outDir, err)
	}
	row := fmt.Sprintf("%s wall=%.1fs", meta.JobID, art.Meta.WallSeconds)
	if r, err := perfrecup.RenderTableIRow(art); err == nil {
		row = fmt.Sprintf("%s wall=%.1fs -> %s", r, art.Meta.WallSeconds, outDir)
	}
	fmt.Println(row)
	fmt.Printf("  resumed: attempt %d (from attempt %d), merged event log in %s\n",
		art.Meta.Attempt, art.Meta.ResumedFrom, dir)
	return nil
}

// moveAsideDataDir renames an existing event log out of the way
// (<dir>.old-<n>, first free n) so the run can start fresh. Returns the new
// name, or "" when dir held no event log.
func moveAsideDataDir(dir string) (string, error) {
	if !mofka.IsDataDir(dir) && !cluster.IsClusterDir(dir) {
		return "", nil
	}
	for n := 1; ; n++ {
		dst := fmt.Sprintf("%s.old-%d", dir, n)
		if _, err := os.Stat(dst); err == nil {
			continue
		} else if !os.IsNotExist(err) {
			return "", err
		}
		if err := os.Rename(dir, dst); err != nil {
			return "", fmt.Errorf("move stale event log aside: %w", err)
		}
		return dst, nil
	}
}

// cmdWatch attaches live monitoring to an existing run: either tailing a
// durable data dir as it grows (works on the log of a crashed run too) or
// attaching to a running mofkad broker over Mercury RPC. started, when
// non-nil, receives the bound HTTP address (used by tests).
func cmdWatch(args []string, started chan<- string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	dataDir := fs.String("data-dir", "", "durable Mofka data dir to tail")
	brokerAddr := fs.String("broker", "", "address of a running mofkad broker to attach to")
	httpAddr := fs.String("http", "", "serve /snapshot /metrics /events /healthz on this address")
	interval := fs.Duration("interval", time.Second, "refresh interval")
	once := fs.Bool("once", false, "print one snapshot and exit")
	asJSON := fs.Bool("json", false, "print snapshots as JSON instead of one-line status")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*dataDir == "") == (*brokerAddr == "") {
		return fmt.Errorf("watch: need exactly one of -data-dir or -broker")
	}
	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, "taskprov watch: "+format+"\n", a...) }

	var src live.Source
	var stop func()
	if *dataDir != "" {
		t, err := live.TailWAL(*dataDir, live.TailOptions{Interval: *interval, Logf: logf})
		if err != nil {
			return err
		}
		src, stop = t, t.Stop
	} else {
		cli, err := mercury.Dial(*brokerAddr)
		if err != nil {
			return err
		}
		t, err := live.TailRemote(mofka.NewRemote(cli), live.TailOptions{Interval: *interval, Logf: logf})
		if err != nil {
			_ = cli.Close()
			return err
		}
		src, stop = t, func() { t.Stop(); _ = cli.Close() }
	}
	defer stop()

	if *once {
		return printSnapshot(src.Snapshot(), *asJSON)
	}
	if *httpAddr != "" {
		srv, err := live.Serve(*httpAddr, src)
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		fmt.Printf("taskprov watch: serving on http://%s (/snapshot /metrics /events)\n", srv.Addr())
		if started != nil {
			started <- srv.Addr()
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		return nil
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			return nil
		case <-tick.C:
			if err := printSnapshot(src.Snapshot(), *asJSON); err != nil {
				return err
			}
		}
	}
}

// cmdWhatIf loads a finished run (run dir, durable data dir, or cluster
// dir), extracts the calibrated whatif model, and replays it under the
// requested scenarios — self-replay ("baseline") when none are given. out
// receives the report (tests pass a buffer).
func cmdWhatIf(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("whatif", flag.ContinueOnError)
	runDir := fs.String("run", "", "run directory, durable Mofka data dir, or cluster dir")
	var scenarios scenarioFlags
	fs.Var(&scenarios, "scenario", `scenario spec, repeatable: "workers=8 threads=4 net=0.5 pfs=2 proxy=1048576|off steal=on|off" (default baseline self-replay)`)
	critpath := fs.Bool("critpath", false, "also print the run's critical-path report")
	asJSON := fs.Bool("json", false, "print replay results as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runDir == "" {
		return fmt.Errorf("whatif: missing -run DIR")
	}
	var art *core.RunArtifacts
	var err error
	if cluster.IsClusterDir(*runDir) || mofka.IsDataDir(*runDir) {
		art, err = perfrecup.LoadEventLog(*runDir)
	} else {
		art, err = core.LoadDir(*runDir)
	}
	if err != nil {
		return err
	}
	model, err := art.ExtractModel()
	if err != nil {
		return err
	}
	if len(scenarios) == 0 {
		scenarios = scenarioFlags{whatif.Scenario{}}
	}
	var results []*whatif.Result
	for _, s := range scenarios {
		r, err := model.Replay(s)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprint(out, perfrecup.RenderWhatIf(model, results)); err != nil {
			return err
		}
	}
	if *critpath {
		rep, err := perfrecup.RenderCritPath(art)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprint(out, rep); err != nil {
			return err
		}
	}
	return nil
}

// scenarioFlags collects repeated -scenario values.
type scenarioFlags []whatif.Scenario

func (f *scenarioFlags) String() string {
	parts := make([]string, len(*f))
	for i, s := range *f {
		parts[i] = s.String()
	}
	return strings.Join(parts, "; ")
}

func (f *scenarioFlags) Set(v string) error {
	s, err := whatif.ParseScenario(v)
	if err != nil {
		return err
	}
	*f = append(*f, s)
	return nil
}

func printSnapshot(s live.Summary, asJSON bool) error {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(s)
	}
	warns := 0
	for _, n := range s.Warnings {
		warns += n
	}
	_, err := fmt.Printf("events=%d tasks=%d transfers=%d io_ops=%d warnings=%d anomalies=%d wall=%.1fs\n",
		s.Events, s.Tasks, s.Transfers, s.IOOps, warns, len(s.Anomalies), s.WallSeconds)
	return err
}
