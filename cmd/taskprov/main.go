// Command taskprov runs the paper's workflows under the full
// characterization stack (Dask-model WMS + Darshan + Mofka) and writes the
// collected artifacts — Darshan binary logs, Mofka event topics as JSONL,
// and the provenance-chart metadata — to a run directory that cmd/perfrecup
// analyzes.
//
// Usage:
//
//	taskprov run -workflow xgboost -seed 1 -out runs/xgb-0001
//	taskprov run -workflow imageprocessing -runs 10 -out runs/ip
//	taskprov list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"taskprov/internal/core"
	"taskprov/internal/perfrecup"
	"taskprov/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "list":
		err = cmdList()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "taskprov:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  taskprov run -workflow <name> [-seed N] [-runs N] [-out DIR] [-data-dir DIR] [-no-dxt] [-no-collect] [-no-steal]
  taskprov list`)
}

func cmdList() error {
	for _, name := range workloads.Names() {
		t := workloads.TableI[name]
		fmt.Printf("%-16s paper: %d graphs, %d tasks, %d files, io %d-%d, comms %d-%d, %d runs\n",
			name, t.TaskGraphs, t.DistinctTasks, t.DistinctFiles,
			t.IOOpsLow, t.IOOpsHigh, t.CommsLow, t.CommsHigh, workloads.Runs(name))
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	workflow := fs.String("workflow", "", "workflow name (see `taskprov list`)")
	seed := fs.Uint64("seed", 1, "base run seed")
	runs := fs.Int("runs", 1, "number of runs (seeds seed..seed+runs-1)")
	out := fs.String("out", "runs", "output directory (one subdirectory per run)")
	dataDir := fs.String("data-dir", "", "root for durable Mofka event logs (one subdirectory per run; empty = in-memory)")
	fsync := fs.String("fsync", "batch", "durable log fsync policy: batch|interval|never")
	noDXT := fs.Bool("no-dxt", false, "disable Darshan DXT tracing")
	noCollect := fs.Bool("no-collect", false, "disable all instrumentation (overhead ablation)")
	noSteal := fs.Bool("no-steal", false, "disable work stealing (scheduling ablation)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workflow == "" {
		return fmt.Errorf("missing -workflow")
	}
	for r := 0; r < *runs; r++ {
		s := *seed + uint64(r)
		wf, err := workloads.New(*workflow)
		if err != nil {
			return err
		}
		jobID := fmt.Sprintf("%s-%04d", *workflow, s)
		cfg := workloads.DefaultSession(*workflow, jobID, s)
		cfg.DarshanDXT = !*noDXT
		cfg.DisableCollection = *noCollect
		if *dataDir != "" {
			cfg.MofkaDataDir = filepath.Join(*dataDir, jobID)
			cfg.MofkaSyncPolicy = *fsync
		}
		if *noSteal {
			cfg.Dask.WorkStealing = false
		}
		art, err := core.Run(cfg, wf)
		if err != nil {
			return fmt.Errorf("run %s: %w", jobID, err)
		}
		dir := filepath.Join(*out, jobID)
		if !*noCollect {
			if err := art.WriteDir(dir); err != nil {
				return fmt.Errorf("write %s: %w", dir, err)
			}
		}
		row := fmt.Sprintf("%s wall=%.1fs", jobID, art.Meta.WallSeconds)
		if !*noCollect {
			if r, err := perfrecup.RenderTableIRow(art); err == nil {
				row = fmt.Sprintf("%s wall=%.1fs -> %s", r, art.Meta.WallSeconds, dir)
			}
		}
		fmt.Println(row)
	}
	return nil
}
