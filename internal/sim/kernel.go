package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel it before it fires.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int // position in the heap, -1 once removed
	cancel bool
}

// At reports the virtual time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an event that already
// fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() { e.cancel = true }

// eventHeap orders events by (time, sequence). The sequence number makes the
// ordering of simultaneous events deterministic: they fire in scheduling
// order.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is a single-threaded discrete-event simulator. All methods must be
// called from the goroutine running the simulation (typically from inside
// event callbacks, or before Run).
type Kernel struct {
	now     Time
	heap    eventHeap
	seq     uint64
	stopped bool
	steps   uint64
	rng     *RNG
}

// NewKernel returns a kernel at virtual time zero whose root RNG is seeded
// with seed. Two kernels with the same seed and the same event program evolve
// identically.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: NewRNG(seed)}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Steps reports how many events have fired so far.
func (k *Kernel) Steps() uint64 { return k.steps }

// RNG returns a deterministic random stream derived from the kernel seed and
// the given name. Calling RNG twice with the same name returns streams with
// identical state, so each component should derive its stream once.
func (k *Kernel) RNG(name string) *RNG { return k.rng.Split(name) }

// At schedules fn to run at the absolute virtual time t. Scheduling in the
// past panics: it indicates a causality bug in the caller.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	e := &Event{at: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.heap, e)
	return e
}

// After schedules fn to run d after the current virtual time. Negative delays
// are clamped to zero.
func (k *Kernel) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// Stop makes Run return after the currently firing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Every schedules fn to fire every d of virtual time, starting d from now,
// until the returned stop function is called. Periodic loops keep the event
// heap non-empty, so programs using Every must end their runs with Stop (as
// the heartbeat and stealing loops already require).
func (k *Kernel) Every(d Time, fn func()) (stop func()) {
	if d <= 0 {
		panic(fmt.Sprintf("sim: Every with non-positive period %v", d))
	}
	stopped := false
	var schedule func()
	schedule = func() {
		k.After(d, func() {
			if stopped {
				return
			}
			fn()
			if !stopped {
				schedule()
			}
		})
	}
	schedule()
	return func() { stopped = true }
}

// Run fires events in timestamp order until no events remain or Stop is
// called. It returns the final virtual time.
func (k *Kernel) Run() Time {
	k.stopped = false
	for len(k.heap) > 0 && !k.stopped {
		e := heap.Pop(&k.heap).(*Event)
		if e.cancel {
			continue
		}
		k.now = e.at
		k.steps++
		e.fn()
	}
	return k.now
}

// RunUntil fires events until the next event would be after deadline, no
// events remain, or Stop is called. The clock is advanced to deadline if the
// simulation ran out of events earlier. It returns the final virtual time.
func (k *Kernel) RunUntil(deadline Time) Time {
	k.stopped = false
	for len(k.heap) > 0 && !k.stopped {
		if k.heap[0].at > deadline {
			break
		}
		e := heap.Pop(&k.heap).(*Event)
		if e.cancel {
			continue
		}
		k.now = e.at
		k.steps++
		e.fn()
	}
	if k.now < deadline {
		k.now = deadline
	}
	return k.now
}

// Pending reports the number of scheduled (possibly cancelled) events.
func (k *Kernel) Pending() int { return len(k.heap) }
