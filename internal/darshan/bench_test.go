package darshan

import (
	"bytes"
	"fmt"
	"testing"

	"taskprov/internal/posixio"
	"taskprov/internal/sim"
)

// BenchmarkTracerReadEvent measures the per-operation instrumentation cost
// (counters + DXT append), the overhead Darshan pays on every POSIX call.
func BenchmarkTracerReadEvent(b *testing.B) {
	r := NewRuntime(Config{JobID: "b", DXTEnabled: true, DXTBufferSegments: b.N + 1})
	rec := posixio.OpRecord{Path: "/f", TID: 7, Offset: 0, Bytes: 4 << 20,
		Start: sim.Seconds(1), End: sim.Seconds(1.001)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ReadEvent(rec)
	}
}

// BenchmarkLogRoundTrip measures binary serialization of a realistic log.
func BenchmarkLogRoundTrip(b *testing.B) {
	r := NewRuntime(Config{JobID: "b", DXTEnabled: true})
	for f := 0; f < 100; f++ {
		path := fmt.Sprintf("/f%03d", f)
		for i := 0; i < 20; i++ {
			r.ReadEvent(posixio.OpRecord{Path: path, TID: uint64(i % 8), Offset: int64(i) << 20,
				Bytes: 1 << 20, Start: sim.Seconds(float64(i)), End: sim.Seconds(float64(i) + 0.01)})
		}
	}
	log := r.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := log.Write(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadLog(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
