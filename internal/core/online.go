package core

import (
	"fmt"

	"taskprov/internal/mofka"
	"taskprov/internal/posixio"
)

// TopicIOTrace is the Mofka topic the online I/O tracer publishes to.
const TopicIOTrace = "io-trace"

// OnlineIOTracer implements the paper's future-work plan to "shift to
// capturing Darshan records and pushing them to Mofka at runtime to have a
// fully online system": it wraps a per-worker posixio.Tracer (normally the
// Darshan runtime) and additionally streams every POSIX operation as a
// Mofka event the moment it completes, so in-situ consumers see I/O
// activity without waiting for the post-mortem log.
type OnlineIOTracer struct {
	inner    posixio.Tracer
	producer *mofka.Producer
	rank     int
	hostname string
}

// NewOnlineIOTracer wraps inner (which may be nil for stream-only tracing)
// with a live Mofka feed on broker's TopicIOTrace topic.
func NewOnlineIOTracer(broker *mofka.Broker, opts mofka.ProducerOptions, inner posixio.Tracer, rank int, hostname string) (*OnlineIOTracer, error) {
	t, err := broker.OpenOrCreateTopic(mofka.TopicConfig{Name: TopicIOTrace, Partitions: 2})
	if err != nil {
		return nil, fmt.Errorf("core: online tracer topic: %w", err)
	}
	return &OnlineIOTracer{
		inner:    inner,
		producer: t.NewProducer(opts),
		rank:     rank,
		hostname: hostname,
	}, nil
}

var _ posixio.Tracer = (*OnlineIOTracer)(nil)

func (o *OnlineIOTracer) event(op string, rec posixio.OpRecord) mofka.Metadata {
	return mofka.Metadata{
		"op": op, "rank": o.rank, "hostname": o.hostname,
		"path": rec.Path, "thread_id": rec.TID,
		"offset": rec.Offset, "bytes": rec.Bytes,
		"start": rec.Start.Seconds(), "end": rec.End.Seconds(),
	}
}

func (o *OnlineIOTracer) push(op string, rec posixio.OpRecord) {
	if err := o.producer.Push(o.event(op, rec), nil); err != nil {
		panic(fmt.Sprintf("core: online io trace push: %v", err))
	}
}

// OpenEvent implements posixio.Tracer.
func (o *OnlineIOTracer) OpenEvent(rec posixio.OpRecord, created bool) {
	if o.inner != nil {
		o.inner.OpenEvent(rec, created)
	}
	op := "open"
	if created {
		op = "create"
	}
	o.push(op, rec)
}

// ReadEvent implements posixio.Tracer.
func (o *OnlineIOTracer) ReadEvent(rec posixio.OpRecord) {
	if o.inner != nil {
		o.inner.ReadEvent(rec)
	}
	o.push("read", rec)
}

// WriteEvent implements posixio.Tracer.
func (o *OnlineIOTracer) WriteEvent(rec posixio.OpRecord) {
	if o.inner != nil {
		o.inner.WriteEvent(rec)
	}
	o.push("write", rec)
}

// CloseEvent implements posixio.Tracer.
func (o *OnlineIOTracer) CloseEvent(rec posixio.OpRecord) {
	if o.inner != nil {
		o.inner.CloseEvent(rec)
	}
	o.push("close", rec)
}

// Flush ships pending trace batches.
func (o *OnlineIOTracer) Flush() error { return o.producer.Flush() }
