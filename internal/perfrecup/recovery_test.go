package perfrecup

import (
	"fmt"
	"strings"
	"testing"

	"taskprov/internal/core"
	"taskprov/internal/dask"
	"taskprov/internal/sim"
)

// crashyWorkflow is a two-layer cross-dependent graph long enough for a 6s
// worker kill to land mid-run.
type crashyWorkflow struct{ width int }

func (c *crashyWorkflow) Name() string        { return "crashy" }
func (c *crashyWorkflow) Stage(env *core.Env) {}
func (c *crashyWorkflow) Run(p *sim.Proc, cl *dask.Client, env *core.Env) {
	g := dask.NewGraph(1)
	var mids []dask.TaskKey
	for i := 0; i < c.width; i++ {
		g.Add(&dask.TaskSpec{
			Key:         dask.TaskKey(fmt.Sprintf("src-%02d", i)),
			EstDuration: sim.Seconds(1), OutputSize: 1 << 20,
		})
	}
	for i := 0; i < c.width; i++ {
		k := dask.TaskKey(fmt.Sprintf("mid-%02d", i))
		mids = append(mids, k)
		g.Add(&dask.TaskSpec{
			Key: k,
			Deps: []dask.TaskKey{
				dask.TaskKey(fmt.Sprintf("src-%02d", i)),
				dask.TaskKey(fmt.Sprintf("src-%02d", (i+1)%c.width)),
			},
			EstDuration: sim.Milliseconds(1500), OutputSize: 1 << 18,
		})
	}
	g.Add(&dask.TaskSpec{Key: "sink-00", Deps: mids, EstDuration: sim.Milliseconds(100), OutputSize: 256})
	cl.SubmitAndWait(p, g)
}

func TestRecoveryTimelineView(t *testing.T) {
	cfg := core.DefaultSessionConfig("job-chaos", 17)
	cfg.Platform.NodeSpeedCV = 0
	cfg.PFS.InterferenceLoad = 0
	cfg.Dask.WorkersPerNode = 2
	cfg.Dask.ThreadsPerWorker = 2
	cfg.ChaosSpec = "kill worker=1 at=6s restart=4s"
	art, err := core.Run(cfg, &crashyWorkflow{width: 32})
	if err != nil {
		t.Fatal(err)
	}

	f, err := RecoveryTimelineView(art)
	if err != nil {
		t.Fatal(err)
	}
	if f.NRows() == 0 {
		t.Fatal("no recovery events in timeline for a chaos run")
	}
	kinds := make(map[string]bool)
	at := f.Col("at")
	for i := 0; i < f.NRows(); i++ {
		kinds[f.Col("kind").Str(i)] = true
		if i > 0 && at.Float(i) < at.Float(i-1) {
			t.Fatalf("timeline not sorted by time at row %d", i)
		}
	}
	for _, want := range []string{"worker_lost", "task_rescheduled", "worker_rejoined"} {
		if !kinds[want] {
			t.Errorf("timeline missing %s events (got %v)", want, kinds)
		}
	}
	out := RenderRecoveryTimeline(f)
	if !strings.Contains(out, "worker_lost") {
		t.Fatalf("rendered timeline missing worker_lost:\n%s", out)
	}
}

// TestRecoveryTimelineEmptyWithoutChaos: a fault-free run yields an empty
// (but well-formed) timeline.
func TestRecoveryTimelineEmptyWithoutChaos(t *testing.T) {
	art := miniRun(t)
	f, err := RecoveryTimelineView(art)
	if err != nil {
		t.Fatal(err)
	}
	if f.NRows() != 0 {
		t.Fatalf("fault-free run produced %d recovery events", f.NRows())
	}
	if out := RenderRecoveryTimeline(f); strings.TrimSpace(out) != "" {
		t.Fatalf("rendered empty timeline not empty: %q", out)
	}
}
