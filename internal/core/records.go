// Package core is the paper's primary contribution: the layered
// characterization framework. It wires the WMS (internal/dask), the I/O
// characterization tool (internal/darshan), and the event streaming service
// (internal/mofka) into instrumented workflow runs, captures the provenance
// chart's metadata layers (Fig. 1), and produces the RunArtifacts that
// PERFRECUP analyzes.
//
// Collection follows the paper's architecture exactly: scheduler and worker
// plugins intercept WMS events and push them to Mofka topics ("Dask as the
// producer"), Darshan runtimes per worker collect I/O counters and DXT
// traces independently, and the two are only fused later, at analysis time,
// on shared identifiers (hostname, pthread ID, timestamps).
package core

import (
	"fmt"

	"taskprov/internal/dask"
	"taskprov/internal/mofka"
	"taskprov/internal/sim"
)

// Mofka topic names used by the provenance plugins.
const (
	TopicTaskMeta    = "task-meta"
	TopicTransitions = "task-transitions"
	TopicExecutions  = "task-executions"
	TopicTransfers   = "transfers"
	TopicWarnings    = "warnings"
	TopicHeartbeats  = "heartbeats"
	TopicSteals      = "steals"
	TopicGraphs      = "graph-events"
)

// AllTopics lists every topic the plugins produce into.
func AllTopics() []string {
	return []string{
		TopicTaskMeta, TopicTransitions, TopicExecutions, TopicTransfers,
		TopicWarnings, TopicHeartbeats, TopicSteals, TopicGraphs,
	}
}

// seconds renders a virtual time as float seconds for event metadata.
func seconds(t sim.Time) float64 { return t.Seconds() }

// TaskMetaEvent encodes a TaskMeta as Mofka event metadata.
func TaskMetaEvent(m dask.TaskMeta) mofka.Metadata {
	deps := make([]any, len(m.Deps))
	for i, d := range m.Deps {
		deps[i] = string(d)
	}
	return mofka.Metadata{
		"key": string(m.Key), "prefix": m.Prefix, "group": m.Group,
		"graph_id": m.GraphID, "deps": deps, "at": seconds(m.At),
	}
}

// TransitionEvent encodes a Transition as Mofka event metadata.
func TransitionEvent(t dask.Transition) mofka.Metadata {
	return mofka.Metadata{
		"key": string(t.Key), "from": string(t.From), "to": string(t.To),
		"stimulus": t.Stimulus, "location": t.Location, "at": seconds(t.At),
	}
}

// ExecutionEvent encodes a TaskExecution as Mofka event metadata.
func ExecutionEvent(e dask.TaskExecution) mofka.Metadata {
	return mofka.Metadata{
		"key": string(e.Key), "worker": e.Worker, "hostname": e.Hostname,
		"thread_id": e.ThreadID, "start": seconds(e.Start), "stop": seconds(e.Stop),
		"output_size": e.OutputSize, "graph_id": e.GraphID,
	}
}

// TransferEvent encodes a Transfer as Mofka event metadata.
func TransferEvent(t dask.Transfer) mofka.Metadata {
	return mofka.Metadata{
		"key": string(t.Key), "from": t.From, "to": t.To, "bytes": t.Bytes,
		"start": seconds(t.Start), "stop": seconds(t.Stop), "same_node": t.SameNode,
	}
}

// WarningEvent encodes a Warning as Mofka event metadata.
func WarningEvent(w dask.Warning) mofka.Metadata {
	return mofka.Metadata{
		"kind": string(w.Kind), "worker": w.Worker, "hostname": w.Hostname,
		"at": seconds(w.At), "duration": seconds(w.Duration), "message": w.Message,
	}
}

// HeartbeatEvent encodes a WorkerMetrics sample as Mofka event metadata.
func HeartbeatEvent(m dask.WorkerMetrics) mofka.Metadata {
	return mofka.Metadata{
		"worker": m.Worker, "at": seconds(m.At), "memory": m.Memory,
		"executing": m.Executing, "ready": m.Ready,
	}
}

// StealEventMeta encodes a StealEvent as Mofka event metadata.
func StealEventMeta(s dask.StealEvent) mofka.Metadata {
	return mofka.Metadata{
		"key": string(s.Key), "victim": s.Victim, "thief": s.Thief, "at": seconds(s.At),
	}
}

// GraphDoneEvent encodes a graph completion as Mofka event metadata.
func GraphDoneEvent(graphID int, at sim.Time) mofka.Metadata {
	return mofka.Metadata{"graph_id": graphID, "event": "done", "at": seconds(at)}
}

// ---- decoding (used by PERFRECUP loaders) ----

func str(m mofka.Metadata, k string) string {
	s, _ := m[k].(string)
	return s
}

func num(m mofka.Metadata, k string) float64 {
	switch v := m[k].(type) {
	case float64:
		return v
	case int:
		return float64(v)
	case int64:
		return float64(v)
	case uint64:
		return float64(v)
	default:
		return 0
	}
}

// ParseTransition decodes metadata written by TransitionEvent.
func ParseTransition(m mofka.Metadata) dask.Transition {
	return dask.Transition{
		Key:      dask.TaskKey(str(m, "key")),
		From:     dask.TaskState(str(m, "from")),
		To:       dask.TaskState(str(m, "to")),
		Stimulus: str(m, "stimulus"),
		Location: str(m, "location"),
		At:       sim.Seconds(num(m, "at")),
	}
}

// ParseExecution decodes metadata written by ExecutionEvent.
func ParseExecution(m mofka.Metadata) dask.TaskExecution {
	return dask.TaskExecution{
		Key:        dask.TaskKey(str(m, "key")),
		Worker:     str(m, "worker"),
		Hostname:   str(m, "hostname"),
		ThreadID:   uint64(num(m, "thread_id")),
		Start:      sim.Seconds(num(m, "start")),
		Stop:       sim.Seconds(num(m, "stop")),
		OutputSize: int64(num(m, "output_size")),
		GraphID:    int(num(m, "graph_id")),
	}
}

// ParseTransfer decodes metadata written by TransferEvent.
func ParseTransfer(m mofka.Metadata) dask.Transfer {
	sameNode, _ := m["same_node"].(bool)
	return dask.Transfer{
		Key:      dask.TaskKey(str(m, "key")),
		From:     str(m, "from"),
		To:       str(m, "to"),
		Bytes:    int64(num(m, "bytes")),
		Start:    sim.Seconds(num(m, "start")),
		Stop:     sim.Seconds(num(m, "stop")),
		SameNode: sameNode,
	}
}

// ParseWarning decodes metadata written by WarningEvent.
func ParseWarning(m mofka.Metadata) dask.Warning {
	return dask.Warning{
		Kind:     dask.WarningKind(str(m, "kind")),
		Worker:   str(m, "worker"),
		Hostname: str(m, "hostname"),
		At:       sim.Seconds(num(m, "at")),
		Duration: sim.Seconds(num(m, "duration")),
		Message:  str(m, "message"),
	}
}

// ParseTaskMeta decodes metadata written by TaskMetaEvent.
func ParseTaskMeta(m mofka.Metadata) dask.TaskMeta {
	var deps []dask.TaskKey
	if raw, ok := m["deps"].([]any); ok {
		for _, d := range raw {
			if s, ok := d.(string); ok {
				deps = append(deps, dask.TaskKey(s))
			}
		}
	}
	return dask.TaskMeta{
		Key:     dask.TaskKey(str(m, "key")),
		Prefix:  str(m, "prefix"),
		Group:   str(m, "group"),
		GraphID: int(num(m, "graph_id")),
		Deps:    deps,
		At:      sim.Seconds(num(m, "at")),
	}
}

// ParseHeartbeat decodes metadata written by HeartbeatEvent.
func ParseHeartbeat(m mofka.Metadata) dask.WorkerMetrics {
	return dask.WorkerMetrics{
		Worker:    str(m, "worker"),
		At:        sim.Seconds(num(m, "at")),
		Memory:    int64(num(m, "memory")),
		Executing: int(num(m, "executing")),
		Ready:     int(num(m, "ready")),
	}
}

// ParseSteal decodes metadata written by StealEventMeta.
func ParseSteal(m mofka.Metadata) dask.StealEvent {
	return dask.StealEvent{
		Key:    dask.TaskKey(str(m, "key")),
		Victim: str(m, "victim"),
		Thief:  str(m, "thief"),
		At:     sim.Seconds(num(m, "at")),
	}
}

// mustParse asserts an event's metadata decodes, panicking with context on
// corruption (events are produced by this same package).
func mustParse(ev mofka.Event) mofka.Metadata {
	m, err := ev.ParseMetadata()
	if err != nil {
		panic(fmt.Sprintf("core: corrupt event %s[%d]/%d: %v", ev.Topic, ev.Partition, ev.ID, err))
	}
	return m
}

// DrainTopic pulls every event of a topic and decodes its metadata.
func DrainTopic(b *mofka.Broker, topic string) ([]mofka.Metadata, error) {
	t, err := b.OpenTopic(topic)
	if err != nil {
		return nil, err
	}
	c, err := t.NewConsumer(mofka.ConsumerOptions{NoData: true})
	if err != nil {
		return nil, err
	}
	evs, err := c.Drain()
	if err != nil {
		return nil, err
	}
	out := make([]mofka.Metadata, len(evs))
	for i, ev := range evs {
		out[i] = mustParse(ev)
	}
	return out, nil
}
