package resume

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// LineageFile is the attempt-lineage record's file name inside a run's data
// directory.
const LineageFile = "attempts.json"

// Attempt is one session incarnation against a data dir. The lineage record
// is the fencing token between incarnations: attempt N+1 starts only after
// reading attempt N's entry, and workers of attempt N died with its kernel —
// stale blob references are additionally fenced by owner incarnation inside
// the proxy store.
type Attempt struct {
	// Attempt numbers incarnations from 1 (the original run).
	Attempt int `json:"attempt"`
	// ResumedFrom is the attempt this one continued (0 for the original).
	ResumedFrom int `json:"resumed_from,omitempty"`
	// StartSeconds is the virtual time the incarnation's clock started at.
	StartSeconds float64 `json:"start_seconds"`
	// Completed flips true when the incarnation finished its workflow and
	// wrote final metadata. A data dir whose last attempt completed refuses
	// to resume.
	Completed bool `json:"completed"`
	// EndSeconds is the virtual time the incarnation completed at (0 while
	// running or crashed).
	EndSeconds float64 `json:"end_seconds,omitempty"`
}

// Lineage is the full attempt history of a data dir, newest last.
type Lineage struct {
	Attempts []Attempt `json:"attempts"`
}

// Last returns the newest attempt (zero value when the lineage is empty).
func (l Lineage) Last() Attempt {
	if len(l.Attempts) == 0 {
		return Attempt{}
	}
	return l.Attempts[len(l.Attempts)-1]
}

// LoadLineage reads dataDir's attempt history. A missing file yields an
// empty lineage (a pre-lineage data dir; the caller decides how to interpret
// it, typically as a single crashed or completed attempt 1).
func LoadLineage(dataDir string) (Lineage, error) {
	b, err := os.ReadFile(filepath.Join(dataDir, LineageFile))
	if os.IsNotExist(err) {
		return Lineage{}, nil
	}
	if err != nil {
		return Lineage{}, fmt.Errorf("resume: read lineage: %w", err)
	}
	var l Lineage
	if err := json.Unmarshal(b, &l); err != nil {
		return Lineage{}, fmt.Errorf("resume: corrupt lineage: %w", err)
	}
	return l, nil
}

// AppendAttempt records a new incarnation in dataDir's lineage, returning
// the updated history.
func AppendAttempt(dataDir string, a Attempt) (Lineage, error) {
	l, err := LoadLineage(dataDir)
	if err != nil {
		return Lineage{}, err
	}
	l.Attempts = append(l.Attempts, a)
	if err := writeLineage(dataDir, l); err != nil {
		return Lineage{}, err
	}
	return l, nil
}

// CompleteAttempt marks attempt n completed at endSeconds in dataDir's
// lineage.
func CompleteAttempt(dataDir string, n int, endSeconds float64) error {
	l, err := LoadLineage(dataDir)
	if err != nil {
		return err
	}
	found := false
	for i := range l.Attempts {
		if l.Attempts[i].Attempt == n {
			l.Attempts[i].Completed = true
			l.Attempts[i].EndSeconds = endSeconds
			found = true
		}
	}
	if !found {
		return fmt.Errorf("resume: attempt %d not in lineage", n)
	}
	return writeLineage(dataDir, l)
}

func writeLineage(dataDir string, l Lineage) error {
	b, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return fmt.Errorf("resume: encode lineage: %w", err)
	}
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return fmt.Errorf("resume: lineage dir: %w", err)
	}
	if err := atomicWriteFile(filepath.Join(dataDir, LineageFile), b); err != nil {
		return fmt.Errorf("resume: write lineage: %w", err)
	}
	return nil
}
