// Package workloads implements the paper's three evaluation workflows as
// calibrated task-graph generators: the ImageProcessing pipeline (§IV-B,
// BCSS histology images through normalization/grayscale/Gaussian/
// segmentation), ResNet152 batch prediction (Imagewang images through
// load/transform/predict delayed tasks), and XGBOOST regression training on
// NYC TLC parquet records (monthly prep graphs + distributed training +
// prediction).
//
// The generators are calibrated to Table I: task-graph counts, distinct
// task counts, distinct file counts, and the published I/O-operation and
// communication ranges. Dataset structure (file sizes, chunk counts) is
// drawn from fixed dataset seeds so it is identical across runs, as a real
// dataset would be; run-to-run variability comes only from the run seed
// (placement, noise, scheduling).
package workloads

import (
	"fmt"

	"taskprov/internal/core"
	"taskprov/internal/sim"
)

// datasetSeed fixes dataset structure across runs. Distinct from any run
// seed by construction.
const datasetSeed uint64 = 0xDA7A5E7

// pseudoHash renders a deterministic 12-hex-digit "dask hash" for task
// keys (wide enough that birthday collisions across ~10^4 keys are
// negligible).
func pseudoHash(parts ...any) string {
	h := uint64(1469598103934665603)
	for _, p := range parts {
		for _, b := range []byte(fmt.Sprint(p)) {
			h ^= uint64(b)
			h *= 1099511628211
		}
		h ^= 0xFF // part separator: ("a",1,12) must differ from ("a",11,2)
		h *= 1099511628211
	}
	return fmt.Sprintf("%012x", h&0xFFFFFFFFFFFF)
}

// tupleKey renders a Dask collection task key: "('name-hash', index)".
func tupleKey(name, hash string, index int) string {
	return fmt.Sprintf("('%s-%s', %d)", name, hash, index)
}

// datasetRNG returns the fixed-structure RNG stream for a workload.
func datasetRNG(workload string) *sim.RNG {
	return sim.NewRNG(datasetSeed).Split(workload)
}

// TableITarget holds the paper's Table I row for one workflow, used by
// tests and the benchmark harness to check reproduction fidelity.
type TableITarget struct {
	TaskGraphs    int
	DistinctTasks int
	DistinctFiles int
	IOOpsLow      int64
	IOOpsHigh     int64
	CommsLow      int64
	CommsHigh     int64
}

// TableI is the paper's Table I.
var TableI = map[string]TableITarget{
	"imageprocessing": {TaskGraphs: 3, DistinctTasks: 5440, DistinctFiles: 151,
		IOOpsLow: 5274, IOOpsHigh: 5287, CommsLow: 3141, CommsHigh: 3247},
	"resnet152": {TaskGraphs: 1, DistinctTasks: 8645, DistinctFiles: 3929,
		IOOpsLow: 2057, IOOpsHigh: 2302, CommsLow: 3751, CommsHigh: 3976},
	"xgboost": {TaskGraphs: 74, DistinctTasks: 10348, DistinctFiles: 61,
		IOOpsLow: 867, IOOpsHigh: 1670, CommsLow: 1464, CommsHigh: 2027},
}

// New returns the named workflow generator ("imageprocessing",
// "resnet152", or "xgboost").
func New(name string) (core.Workflow, error) {
	switch name {
	case "imageprocessing":
		return NewImageProcessing(), nil
	case "resnet152":
		return NewResNet152(), nil
	case "xgboost":
		return NewXGBoost(), nil
	default:
		return nil, fmt.Errorf("workloads: unknown workflow %q (have imageprocessing, resnet152, xgboost)", name)
	}
}

// Names lists the available workflows in paper order.
func Names() []string { return []string{"imageprocessing", "resnet152", "xgboost"} }

// DefaultSession returns the paper-equivalent session configuration for the
// named workflow: the Polaris-like platform (2 worker nodes, 4 workers per
// node, 8 threads per worker), Lustre-like storage, and the workflow's
// instrumentation settings. ResNet152 keeps the default-sized DXT trace
// buffer that the paper's runs overflowed (footnote 9): 273 segments per
// worker process reproduces the observed 2057–2302 op under-count against
// ~5700 actual operations.
func DefaultSession(name, jobID string, seed uint64) core.SessionConfig {
	cfg := core.DefaultSessionConfig(jobID, seed)
	if name == "resnet152" {
		cfg.DXTBufferSegments = 287
		// The paper observed all 3929 distinct files despite the DXT
		// truncation, so its Darshan record table was large enough; raise
		// ours accordingly (the per-worker file count can exceed the 1024
		// default when load placement skews).
		cfg.DarshanMaxFileRecords = 4096
	}
	return cfg
}

// Runs returns the paper's run count per workflow: 10 for ImageProcessing
// and ResNet152, 50 for XGBOOST ("because it showed more variability").
func Runs(name string) int {
	if name == "xgboost" {
		return 50
	}
	return 10
}
