package darshan

import (
	"fmt"
	"sort"
	"strings"
)

// Summary is an aggregate report over one or more per-process logs — the
// equivalent of darshan-parser/PyDarshan's job summary, which the paper's
// analysis pipeline builds on ("availability of flexible analysis tools").
type Summary struct {
	JobID     string
	Processes int
	Files     int

	Opens, Reads, Writes    int64
	BytesRead, BytesWritten int64
	ReadTime, WriteTime     float64 // cumulative seconds across processes
	MetaTime                float64

	// Observed time window across all processes.
	Start, End float64

	// Aggregate access-size histograms.
	SizeHistRead  [NumSizeBuckets]int64
	SizeHistWrite [NumSizeBuckets]int64

	// Completeness.
	Partial        bool
	DXTDropped     int64
	RecordsDropped int64

	// Per-file aggregates, sorted by total bytes moved (descending).
	TopFiles []FileSummary
}

// FileSummary aggregates one path across processes.
type FileSummary struct {
	Path         string
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
	Processes    int
}

// Summarize merges logs (typically: one per worker process of a job) into a
// job-level report. maxTop bounds TopFiles (0 = 10).
func Summarize(logs []*Log, maxTop int) Summary {
	if maxTop <= 0 {
		maxTop = 10
	}
	s := Summary{Processes: len(logs)}
	perFile := map[string]*FileSummary{}
	for _, l := range logs {
		if s.JobID == "" {
			s.JobID = l.Job.JobID
		}
		if l.Job.Partial {
			s.Partial = true
		}
		s.DXTDropped += l.Job.DXTDropped
		s.RecordsDropped += l.Job.RecordsDropped
		if s.Start == 0 || (l.Job.StartTime > 0 && l.Job.StartTime < s.Start) {
			s.Start = l.Job.StartTime
		}
		if l.Job.EndTime > s.End {
			s.End = l.Job.EndTime
		}
		for _, rec := range l.Records {
			c := rec.Counters
			s.Opens += c.Opens
			s.Reads += c.Reads
			s.Writes += c.Writes
			s.BytesRead += c.BytesRead
			s.BytesWritten += c.BytesWritten
			s.ReadTime += c.ReadTime
			s.WriteTime += c.WriteTime
			s.MetaTime += c.MetaTime
			for i := range c.SizeHistRead {
				s.SizeHistRead[i] += c.SizeHistRead[i]
				s.SizeHistWrite[i] += c.SizeHistWrite[i]
			}
			fs, ok := perFile[rec.Path]
			if !ok {
				fs = &FileSummary{Path: rec.Path}
				perFile[rec.Path] = fs
			}
			fs.Reads += c.Reads
			fs.Writes += c.Writes
			fs.BytesRead += c.BytesRead
			fs.BytesWritten += c.BytesWritten
			fs.Processes++
		}
	}
	s.Files = len(perFile)
	all := make([]FileSummary, 0, len(perFile))
	for _, fs := range perFile {
		all = append(all, *fs)
	}
	sort.Slice(all, func(i, j int) bool {
		bi := all[i].BytesRead + all[i].BytesWritten
		bj := all[j].BytesRead + all[j].BytesWritten
		if bi != bj {
			return bi > bj
		}
		return all[i].Path < all[j].Path
	})
	if len(all) > maxTop {
		all = all[:maxTop]
	}
	s.TopFiles = all
	return s
}

// Render formats the summary in a darshan-parser-ish plain-text layout.
func (s Summary) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "darshan job summary: %s (%d processes, %d files)\n", s.JobID, s.Processes, s.Files)
	fmt.Fprintf(&sb, "  window: [%.3fs, %.3fs]\n", s.Start, s.End)
	fmt.Fprintf(&sb, "  posix: %d opens, %d reads (%d B), %d writes (%d B)\n",
		s.Opens, s.Reads, s.BytesRead, s.Writes, s.BytesWritten)
	fmt.Fprintf(&sb, "  time:  %.3fs read, %.3fs write, %.3fs meta\n", s.ReadTime, s.WriteTime, s.MetaTime)
	if s.Partial {
		fmt.Fprintf(&sb, "  WARNING: log is PARTIAL (%d DXT segments dropped, %d record-table misses)\n",
			s.DXTDropped, s.RecordsDropped)
	}
	sb.WriteString("  access sizes (reads/writes):\n")
	for i := 0; i < NumSizeBuckets; i++ {
		if s.SizeHistRead[i] == 0 && s.SizeHistWrite[i] == 0 {
			continue
		}
		fmt.Fprintf(&sb, "    %-9s %8d / %-8d\n", SizeBucketLabel(i), s.SizeHistRead[i], s.SizeHistWrite[i])
	}
	sb.WriteString("  top files by bytes:\n")
	for _, f := range s.TopFiles {
		fmt.Fprintf(&sb, "    %-48s r=%-6d w=%-6d %d B\n",
			f.Path, f.Reads, f.Writes, f.BytesRead+f.BytesWritten)
	}
	return sb.String()
}
