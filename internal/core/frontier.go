package core

import (
	"sort"
	"strconv"
	"sync"

	"taskprov/internal/dask"
	"taskprov/internal/resume"
	"taskprov/internal/sim"
)

// frontierPlugin observes the run and maintains the completion frontier the
// periodic checkpoint snapshots: completed tasks (with their file effects),
// graph done marks, and live proxy-store blobs. It is both a scheduler and a
// worker plugin. On a resumed session it starts from the reconstructed
// frontier so checkpoints keep covering prior attempts' work.
type frontierPlugin struct {
	dask.NopSchedulerPlugin
	dask.NopWorkerPlugin

	mu      sync.Mutex
	attempt int
	tasks   map[string]resume.FrontierTask
	done    map[int]bool
	blobs   map[string]resume.FrontierBlob
}

func newFrontierPlugin(attempt int, seed *resume.Checkpoint) *frontierPlugin {
	f := &frontierPlugin{
		attempt: attempt,
		tasks:   make(map[string]resume.FrontierTask),
		done:    make(map[int]bool),
		blobs:   make(map[string]resume.FrontierBlob),
	}
	if seed != nil {
		for key, t := range seed.Tasks {
			f.tasks[key] = t
		}
		for id, g := range seed.Graphs {
			if !g.Done {
				continue
			}
			if n, err := strconv.Atoi(id); err == nil {
				f.done[n] = true
			}
		}
		for _, b := range seed.Blobs {
			f.blobs[b.Key] = b
		}
	}
	return f
}

// TaskExecuted records a task completion in the frontier. Re-executions
// overwrite (latest effects win, matching the resume-side merge).
func (f *frontierPlugin) TaskExecuted(e dask.TaskExecution) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tasks[string(e.Key)] = resume.FrontierTask{
		GraphID:     e.GraphID,
		Size:        e.OutputSize,
		StopSeconds: e.Stop.Seconds(),
		Files:       e.Files,
	}
}

// GraphDone marks a graph's done event as emitted.
func (f *frontierPlugin) GraphDone(id int, at sim.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.done[id] = true
}

// ProxyEvent tracks blob residency: publishes add (or replace) a blob, frees
// and crash reclaims remove it.
func (f *frontierPlugin) ProxyEvent(e dask.ProxyEvent) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch e.Op {
	case dask.ProxyOpPublish:
		f.blobs[string(e.Key)] = resume.FrontierBlob{
			Key:   string(e.Key),
			Owner: dask.RankFromAddr(e.Worker),
			Size:  e.Bytes,
		}
	case dask.ProxyOpFree, dask.ProxyOpReclaim:
		delete(f.blobs, string(e.Key))
	}
}

// snapshot materializes the frontier as a checkpoint taken at virtual time
// at. Per-graph completed counts are derived from the task set.
func (f *frontierPlugin) snapshot(at sim.Time) *resume.Checkpoint {
	f.mu.Lock()
	defer f.mu.Unlock()
	cp := resume.NewCheckpoint(f.attempt)
	cp.AtSeconds = at.Seconds()
	for key, t := range f.tasks {
		cp.Tasks[key] = t
		g := cp.Graphs[strconv.Itoa(t.GraphID)]
		g.Completed++
		cp.Graphs[strconv.Itoa(t.GraphID)] = g
	}
	for id := range f.done {
		g := cp.Graphs[strconv.Itoa(id)]
		g.Done = true
		cp.Graphs[strconv.Itoa(id)] = g
	}
	keys := make([]string, 0, len(f.blobs))
	for key := range f.blobs {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		cp.Blobs = append(cp.Blobs, f.blobs[key])
	}
	return cp
}
