package frame

import (
	"fmt"
	"math"
	"sort"
)

// AggFunc identifies a group aggregation.
type AggFunc int

// Aggregations supported by GroupBy.Agg.
const (
	Sum AggFunc = iota
	Mean
	Min
	Max
	Count
	Std // sample standard deviation
	First
	P50 // median
	P95
	P99
)

// String returns the aggregation's column-name suffix.
func (a AggFunc) String() string {
	switch a {
	case Sum:
		return "sum"
	case Mean:
		return "mean"
	case Min:
		return "min"
	case Max:
		return "max"
	case Count:
		return "count"
	case Std:
		return "std"
	case First:
		return "first"
	case P50:
		return "p50"
	case P95:
		return "p95"
	case P99:
		return "p99"
	default:
		return fmt.Sprintf("agg(%d)", int(a))
	}
}

// Agg pairs a source column with an aggregation.
type Agg struct {
	Col string
	Fn  AggFunc
	// As optionally names the output column; default "<col>_<fn>".
	As string
}

// GroupBy is a deferred grouping over one or more key columns.
type GroupBy struct {
	f    *Frame
	keys []string
}

// GroupBy starts a grouped aggregation over the key columns.
func (f *Frame) GroupBy(keys ...string) *GroupBy {
	for _, k := range keys {
		f.Col(k) // validate
	}
	return &GroupBy{f: f, keys: keys}
}

// Groups returns the row indices of each group, keyed by the concatenated
// key string, plus a deterministic (first-appearance) ordering of keys.
func (g *GroupBy) groups() (map[string][]int, []string) {
	byKey := make(map[string][]int)
	var order []string
	keyCols := make([]*Series, len(g.keys))
	for i, k := range g.keys {
		keyCols[i] = g.f.Col(k)
	}
	for r := 0; r < g.f.NRows(); r++ {
		key := ""
		for _, c := range keyCols {
			key += c.keyString(r) + "\x00"
		}
		if _, seen := byKey[key]; !seen {
			order = append(order, key)
		}
		byKey[key] = append(byKey[key], r)
	}
	return byKey, order
}

// Agg computes the aggregations per group. The result has the key columns
// (first-row representative values) followed by one column per aggregation,
// with groups in first-appearance order.
func (g *GroupBy) Agg(aggs ...Agg) *Frame {
	byKey, order := g.groups()

	keyOut := make([]*Series, len(g.keys))
	for i, k := range g.keys {
		keyOut[i] = &Series{name: k, dtype: g.f.Col(k).dtype}
	}
	aggOut := make([]*Series, len(aggs))
	for i, a := range aggs {
		name := a.As
		if name == "" {
			name = a.Col + "_" + a.Fn.String()
		}
		dt := Float
		if a.Fn == Count {
			dt = Int
		}
		if a.Fn == First {
			dt = g.f.Col(a.Col).dtype
		}
		aggOut[i] = &Series{name: name, dtype: dt}
	}

	for _, key := range order {
		rows := byKey[key]
		for i, k := range g.keys {
			keyOut[i].appendValue(g.f.Col(k), rows[0])
		}
		for i, a := range aggs {
			col := g.f.Col(a.Col)
			switch a.Fn {
			case Count:
				aggOut[i].ints = append(aggOut[i].ints, int64(len(rows)))
			case First:
				aggOut[i].appendValue(col, rows[0])
			default:
				aggOut[i].flts = append(aggOut[i].flts, aggregate(col, rows, a.Fn))
			}
		}
	}
	return MustNew(append(keyOut, aggOut...)...)
}

func aggregate(col *Series, rows []int, fn AggFunc) float64 {
	if len(rows) == 0 {
		return math.NaN()
	}
	switch fn {
	case Sum, Mean:
		s := 0.0
		for _, r := range rows {
			s += col.Float(r)
		}
		if fn == Mean {
			return s / float64(len(rows))
		}
		return s
	case Min:
		m := col.Float(rows[0])
		for _, r := range rows[1:] {
			if v := col.Float(r); v < m {
				m = v
			}
		}
		return m
	case Max:
		m := col.Float(rows[0])
		for _, r := range rows[1:] {
			if v := col.Float(r); v > m {
				m = v
			}
		}
		return m
	case Std:
		if len(rows) < 2 {
			return 0
		}
		mean := aggregate(col, rows, Mean)
		ss := 0.0
		for _, r := range rows {
			d := col.Float(r) - mean
			ss += d * d
		}
		return math.Sqrt(ss / float64(len(rows)-1))
	case P50, P95, P99:
		q := map[AggFunc]float64{P50: 0.50, P95: 0.95, P99: 0.99}[fn]
		sorted := make([]float64, len(rows))
		for i, r := range rows {
			sorted[i] = col.Float(r)
		}
		sort.Float64s(sorted)
		return quantileSorted(sorted, q)
	default:
		panic(fmt.Sprintf("frame: unknown aggregation %v", fn))
	}
}

// UniqueStrings returns the distinct values of a string column, sorted.
func (f *Frame) UniqueStrings(col string) []string {
	c := f.Col(col)
	set := map[string]struct{}{}
	for i := 0; i < c.Len(); i++ {
		set[c.Str(i)] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// ColumnStats summarizes one numeric column.
type ColumnStats struct {
	Name               string
	Count              int
	Mean, Std          float64
	Min, P25, P50, P75 float64
	Max                float64
}

// Describe computes pandas-style summary statistics for every numeric
// column.
func (f *Frame) Describe() []ColumnStats {
	var out []ColumnStats
	for _, c := range f.cols {
		if !c.IsNumeric() {
			continue
		}
		vals := c.Floats64()
		st := ColumnStats{Name: c.Name(), Count: len(vals)}
		if len(vals) > 0 {
			sorted := append([]float64(nil), vals...)
			sort.Float64s(sorted)
			st.Min, st.Max = sorted[0], sorted[len(sorted)-1]
			st.P25 = quantileSorted(sorted, 0.25)
			st.P50 = quantileSorted(sorted, 0.50)
			st.P75 = quantileSorted(sorted, 0.75)
			sum := 0.0
			for _, v := range vals {
				sum += v
			}
			st.Mean = sum / float64(len(vals))
			if len(vals) > 1 {
				ss := 0.0
				for _, v := range vals {
					d := v - st.Mean
					ss += d * d
				}
				st.Std = math.Sqrt(ss / float64(len(vals)-1))
			}
		}
		out = append(out, st)
	}
	return out
}

// quantileSorted interpolates the q-quantile of an ascending slice.
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 0 {
		return math.NaN()
	}
	rank := q * float64(len(s)-1)
	lo := int(rank)
	hi := lo + 1
	if hi >= len(s) {
		return s[len(s)-1]
	}
	w := rank - float64(lo)
	return s[lo]*(1-w) + s[hi]*w
}
