package dask

import (
	"sort"
	"strconv"
	"strings"
)

// ResumeMemo is the per-task verdict a resumed session derives from the
// previous attempt's provenance: the task completed, produced Size bytes,
// and its output either still lives in the proxy store under Owner
// (Resolvable) or died with the old session and must be recomputed on
// demand.
type ResumeMemo struct {
	Size       int64
	Resolvable bool
	Owner      int // owning worker rank for resolvable blobs
}

// RankFromAddr recovers a worker's rank from its Dask-style address
// (tcp://<hostname>:<40000+rank>). Returns -1 when the address does not
// parse — provenance from a foreign topology, or the scheduler pseudo-addr.
func RankFromAddr(addr string) int {
	i := strings.LastIndexByte(addr, ':')
	if i < 0 {
		return -1
	}
	port, err := strconv.Atoi(addr[i+1:])
	if err != nil || port < 40000 {
		return -1
	}
	return port - 40000
}

// SeedResume installs the previous attempt's completion frontier before
// Start: memoized tasks are recognized at graph registration (completed
// tasks skip execution; resolvable outputs re-enter distributed memory as
// live proxy blobs owned by the recorded rank), and graphs listed in
// doneGraphs suppress their duplicate graph-done provenance event. Blobs are
// republished silently — the publish already happened in attempt N-1 and is
// in the merged log; re-emitting it would double-count the event stream.
func (c *Cluster) SeedResume(memos map[TaskKey]ResumeMemo, doneGraphs []int) {
	if c.scheduler.started {
		panic("dask: SeedResume after Start")
	}
	memo := make(map[TaskKey]ResumeMemo, len(memos))
	keys := make([]TaskKey, 0, len(memos))
	for k, m := range memos {
		memo[k] = m
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		m := memo[key]
		if !m.Resolvable {
			continue
		}
		if c.proxy == nil || m.Owner < 0 || m.Owner >= len(c.workers) || m.Size <= 0 {
			m.Resolvable = false
			memo[key] = m
			continue
		}
		w := c.workers[m.Owner]
		c.proxy.store.Publish(string(key), m.Owner, w.incarnation, m.Size)
		w.data[key] = m.Size
		w.memBytes += m.Size
		c.scheduler.workers[m.Owner].memory += m.Size
		if c.resumeSeeded == nil {
			c.resumeSeeded = make(map[TaskKey]bool)
		}
		c.resumeSeeded[key] = true
	}
	c.scheduler.memo = memo
	done := make(map[int]bool, len(doneGraphs))
	for _, id := range doneGraphs {
		done[id] = true
	}
	c.scheduler.doneGraphs = done
}

// ReleaseResumeOrphans settles the attempt-long references resume holds on
// revived blobs so residency drains to what an uninterrupted run leaves
// behind. Client-held results (gathered keys) and graph outputs stay
// resident, exactly as they would after a crash-free run; every other pinned
// blob — a survivor whose consumers all finished either before the crash or
// during the resumed attempt — is freed, as the uninterrupted run's refcount
// drain would have done. Blobs SeedResume published whose keys no
// resubmitted graph ever claimed are freed too. Intended after the run
// completes, when no scheduler message is in flight. Emits normal free
// events so resident accounting in the merged provenance stays balanced.
func (c *Cluster) ReleaseResumeOrphans() (blobs int, bytes int64) {
	if c.proxy == nil {
		return 0, 0
	}
	free := func(key TaskKey) {
		if freed, size := c.proxy.store.Free(string(key)); freed {
			c.proxy.emit(ProxyOpFree, key, "scheduler", size, 0)
			blobs++
			bytes += size
		}
	}
	for _, key := range c.scheduler.resumePins {
		ts := c.scheduler.tasks[key]
		if ts != nil && (ts.clientRef || ts.isOutput) {
			// Drop the resume pin; the client/output reference keeps the
			// blob resident, matching an uninterrupted run.
			c.proxy.store.Release(string(key))
			continue
		}
		free(key)
	}
	c.scheduler.resumePins = nil
	orphans := make([]TaskKey, 0, len(c.resumeSeeded))
	for key := range c.resumeSeeded {
		orphans = append(orphans, key)
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })
	for _, key := range orphans {
		if c.proxy.store.Refs(string(key)) == 0 {
			free(key)
		}
	}
	c.resumeSeeded = nil
	return blobs, bytes
}

// resumeMemo returns the memo for key, re-validated against the seeded
// owner: if the owner was killed again between seeding and graph
// registration its blob was wiped with it, demoting the memo to
// recompute-on-demand. (Checked through the worker's data map, not
// Store.Resolve, so validation does not perturb hit/miss statistics.)
func (s *Scheduler) resumeMemo(key TaskKey) (ResumeMemo, bool) {
	m, ok := s.memo[key]
	if !ok {
		return ResumeMemo{}, false
	}
	if m.Resolvable {
		w := s.c.workers[m.Owner]
		if s.c.proxy == nil || !w.alive || !w.HasData(key) {
			m.Resolvable = false
		}
	}
	return m, true
}
