// Package posixio provides a synchronous, POSIX-flavoured file API on top of
// the pfs model, for use inside sim.Proc task bodies. It is the layer the
// Darshan reproduction instruments: every open/read/write/close can be
// observed by a Tracer with the issuing thread's ID and virtual timestamps —
// exactly the join keys the paper adds to DXT (§III-E3).
package posixio

import (
	"errors"
	"fmt"

	"taskprov/internal/pfs"
	"taskprov/internal/sim"
)

// Open flags, a minimal subset of POSIX semantics.
const (
	RDONLY = 1 << iota // open existing file for reading
	WRONLY             // open for writing
	CREATE             // create (truncate) the file
)

// ErrNotExist is returned when opening a missing file without CREATE.
var ErrNotExist = errors.New("posixio: file does not exist")

// OpRecord describes one completed POSIX operation as seen by a Tracer.
type OpRecord struct {
	Path   string
	TID    uint64 // issuing thread ("pthread") ID
	Offset int64
	Bytes  int64
	Start  sim.Time
	End    sim.Time
}

// Tracer observes POSIX operations. The Darshan runtime implements it; a nil
// tracer disables instrumentation at zero cost.
type Tracer interface {
	OpenEvent(rec OpRecord, created bool)
	ReadEvent(rec OpRecord)
	WriteEvent(rec OpRecord)
	CloseEvent(rec OpRecord)
}

// FS binds the POSIX layer to a PFS instance.
type FS struct {
	pfs *pfs.FileSystem
}

// NewFS wraps a pfs.FileSystem.
func NewFS(fsys *pfs.FileSystem) *FS { return &FS{pfs: fsys} }

// PFS exposes the underlying file system model.
func (fs *FS) PFS() *pfs.FileSystem { return fs.pfs }

// File is an open file descriptor bound to the thread that opened it. Dask
// workers execute each task on a dedicated thread, so a descriptor never
// migrates between threads in this model.
type File struct {
	fs     *FS
	file   *pfs.File
	path   string
	tid    uint64
	tracer Tracer
	offset int64
	closed bool
	dilate func() float64
}

// SetDilation installs a service-time dilation source for this descriptor:
// after each blocking read or write, the issuing process sleeps an extra
// (factor−1) times the operation's elapsed time, where factor is sampled at
// completion. Brownout fault injection uses this to model a slow-not-dead
// worker whose I/O crawls; the stretched window is what the tracer records,
// so Darshan-side views see the degradation too. A nil or ≤1 factor is free.
func (f *File) SetDilation(fn func() float64) { f.dilate = fn }

// dilated stretches the just-finished operation that started at start by the
// descriptor's dilation factor, returning once the extra service time has
// elapsed.
func (f *File) dilated(p *sim.Proc, start sim.Time) {
	if f.dilate == nil {
		return
	}
	if factor := f.dilate(); factor > 1 {
		p.Sleep(sim.Time(float64(p.Now()-start) * (factor - 1)))
	}
}

// Open opens path with the given flags from process p, on behalf of thread
// tid, reporting operations to tracer (which may be nil). It blocks the
// process for the metadata round trip.
func (fs *FS) Open(p *sim.Proc, tracer Tracer, tid uint64, path string, flags int) (*File, error) {
	start := p.Now()
	var got *pfs.File
	created := false
	if flags&CREATE != 0 {
		p.Await(func(done func()) {
			fs.pfs.Create(path, func(f *pfs.File) { got = f; done() })
		})
		created = true
	} else {
		p.Await(func(done func()) {
			fs.pfs.Open(path, func(f *pfs.File) { got = f; done() })
		})
	}
	if got == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	f := &File{fs: fs, file: got, path: got.Path, tid: tid, tracer: tracer}
	if tracer != nil {
		tracer.OpenEvent(OpRecord{Path: f.path, TID: tid, Start: start, End: p.Now()}, created)
	}
	return f, nil
}

// Path returns the canonical path of the open file.
func (f *File) Path() string { return f.path }

// Size returns the file's current size.
func (f *File) Size() int64 { return f.file.Size }

// Offset returns the descriptor's current file offset.
func (f *File) Offset() int64 { return f.offset }

// Pread reads size bytes at offset off, blocking the process until the I/O
// completes. It returns the number of bytes actually read (clamped at EOF).
func (f *File) Pread(p *sim.Proc, off, size int64) int64 {
	start := p.Now()
	var n int64
	p.Await(func(done func()) {
		f.fs.pfs.Read(f.file, off, size, func(got int64) { n = got; done() })
	})
	f.dilated(p, start)
	if f.tracer != nil {
		f.tracer.ReadEvent(OpRecord{Path: f.path, TID: f.tid, Offset: off, Bytes: n, Start: start, End: p.Now()})
	}
	return n
}

// Pwrite writes size bytes at offset off, blocking the process until the
// I/O completes. It returns the number of bytes written.
func (f *File) Pwrite(p *sim.Proc, off, size int64) int64 {
	start := p.Now()
	var n int64
	p.Await(func(done func()) {
		f.fs.pfs.Write(f.file, off, size, func(got int64) { n = got; done() })
	})
	f.dilated(p, start)
	if f.tracer != nil {
		f.tracer.WriteEvent(OpRecord{Path: f.path, TID: f.tid, Offset: off, Bytes: n, Start: start, End: p.Now()})
	}
	return n
}

// Read reads from the current offset and advances it.
func (f *File) Read(p *sim.Proc, size int64) int64 {
	n := f.Pread(p, f.offset, size)
	f.offset += n
	return n
}

// Write writes at the current offset and advances it.
func (f *File) Write(p *sim.Proc, size int64) int64 {
	n := f.Pwrite(p, f.offset, size)
	f.offset += n
	return n
}

// Seek whence values (POSIX).
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Lseek repositions the descriptor offset and returns the new offset.
func (f *File) Lseek(off int64, whence int) int64 {
	switch whence {
	case SeekSet:
		f.offset = off
	case SeekCur:
		f.offset += off
	case SeekEnd:
		f.offset = f.file.Size + off
	}
	if f.offset < 0 {
		f.offset = 0
	}
	return f.offset
}

// Close releases the descriptor. Closing twice is a no-op.
func (f *File) Close(p *sim.Proc) {
	if f.closed {
		return
	}
	f.closed = true
	now := p.Now()
	if f.tracer != nil {
		f.tracer.CloseEvent(OpRecord{Path: f.path, TID: f.tid, Start: now, End: now})
	}
}
