package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"taskprov/internal/live"
	"taskprov/internal/mofka"
	"taskprov/internal/whatif"
)

func TestCmdList(t *testing.T) {
	if err := cmdList(); err != nil {
		t.Fatal(err)
	}
}

func TestCmdRunWritesArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("full workflow run")
	}
	dir := t.TempDir()
	err := cmdRun([]string{
		"-workflow", "imageprocessing", "-seed", "2", "-runs", "1", "-out", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	runDir := filepath.Join(dir, "imageprocessing-0002")
	for _, p := range []string{
		"metadata.json",
		filepath.Join("darshan", "rank0000.darshan"),
		filepath.Join("mofka", "task-executions.jsonl"),
		filepath.Join("mofka", "transfers.jsonl"),
	} {
		if _, err := os.Stat(filepath.Join(runDir, p)); err != nil {
			t.Fatalf("missing artifact %s: %v", p, err)
		}
	}
}

func TestCmdRunValidation(t *testing.T) {
	if err := cmdRun([]string{"-out", t.TempDir()}); err == nil {
		t.Fatal("missing -workflow accepted")
	}
	if err := cmdRun([]string{"-workflow", "ghost", "-out", t.TempDir()}); err == nil {
		t.Fatal("unknown workflow accepted")
	}
}

func TestCmdRunAblationFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("full workflow run")
	}
	dir := t.TempDir()
	// -no-collect runs without writing artifacts and must not error.
	err := cmdRun([]string{
		"-workflow", "imageprocessing", "-seed", "3", "-out", dir, "-no-collect",
	})
	if err != nil {
		t.Fatal(err)
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 0 {
		t.Fatalf("no-collect run wrote artifacts: %v", entries)
	}
}

func TestMoveAsideDataDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	// Not a data dir: nothing moves.
	if dst, err := moveAsideDataDir(dir); err != nil || dst != "" {
		t.Fatalf("moveAside on missing dir = %q, %v", dst, err)
	}
	mkDataDir := func() {
		b, err := mofka.NewDurableBroker(mofka.Options{DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.OpenOrCreateTopic(mofka.TopicConfig{Name: "t", Partitions: 1}); err != nil {
			t.Fatal(err)
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
	}
	mkDataDir()
	dst, err := moveAsideDataDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if dst != dir+".old-1" || !mofka.IsDataDir(dst) {
		t.Fatalf("moved to %q (data dir: %v)", dst, mofka.IsDataDir(dst))
	}
	if mofka.IsDataDir(dir) {
		t.Fatal("original dir still holds an event log")
	}
	// A second stale log picks the next free suffix.
	mkDataDir()
	if dst, err = moveAsideDataDir(dir); err != nil || dst != dir+".old-2" {
		t.Fatalf("second moveAside = %q, %v", dst, err)
	}
}

// TestCmdRunForceAndWatch covers the -force flow end to end plus
// `taskprov watch -once` over the resulting durable log.
func TestCmdRunForceAndWatch(t *testing.T) {
	if testing.Short() {
		t.Skip("full workflow run")
	}
	out, wal := t.TempDir(), t.TempDir()
	base := []string{"-workflow", "imageprocessing", "-seed", "7", "-out", out, "-data-dir", wal, "-live"}
	if err := cmdRun(base); err != nil {
		t.Fatal(err)
	}
	runWAL := filepath.Join(wal, "imageprocessing-0007")
	if !mofka.IsDataDir(runWAL) {
		t.Fatalf("%s is not a data dir", runWAL)
	}
	// Same seed again: refused without -force, accepted with it.
	if err := cmdRun(base); err == nil {
		t.Fatal("rerun over an existing event log succeeded without -force")
	}
	if err := cmdRun(append(base, "-force")); err != nil {
		t.Fatal(err)
	}
	if !mofka.IsDataDir(runWAL + ".old-1") {
		t.Fatal("stale log was not moved to .old-1")
	}

	// watch -once -json over the new log prints a parseable Summary.
	stdout := os.Stdout
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = pw
	watchErr := cmdWatch([]string{"-data-dir", runWAL, "-once", "-json"}, nil)
	_ = pw.Close()
	os.Stdout = stdout
	raw, err := io.ReadAll(pr)
	if err != nil {
		t.Fatal(err)
	}
	if watchErr != nil {
		t.Fatal(watchErr)
	}
	var sum live.Summary
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatalf("watch -json output unparseable: %v\n%s", err, raw)
	}
	if sum.Tasks == 0 || sum.Workflow != "imageprocessing" {
		t.Fatalf("watch summary = %+v", sum)
	}
}

// TestCmdWhatIf covers the whatif subcommand end to end: run a workflow,
// persist it, and replay scenarios from the run directory and the WAL.
func TestCmdWhatIf(t *testing.T) {
	if testing.Short() {
		t.Skip("full workflow run")
	}
	out, wal := t.TempDir(), t.TempDir()
	err := cmdRun([]string{
		"-workflow", "imageprocessing", "-seed", "9", "-out", out, "-data-dir", wal,
	})
	if err != nil {
		t.Fatal(err)
	}
	runDir := filepath.Join(out, "imageprocessing-0009")

	var buf strings.Builder
	err = cmdWhatIf([]string{"-run", runDir,
		"-scenario", "baseline", "-scenario", "workers=2 threads=1", "-critpath"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{"what-if replay", "baseline", "workers=2 threads=1", "critical path"} {
		if !strings.Contains(got, want) {
			t.Errorf("whatif output missing %q:\n%s", want, got)
		}
	}

	// -json emits parseable results, and the WAL dir loads identically.
	var jsonBuf strings.Builder
	walDir := filepath.Join(wal, "imageprocessing-0009")
	if err := cmdWhatIf([]string{"-run", walDir, "-json"}, &jsonBuf); err != nil {
		t.Fatal(err)
	}
	var results []whatif.Result
	if err := json.Unmarshal([]byte(jsonBuf.String()), &results); err != nil {
		t.Fatalf("whatif -json unparseable: %v\n%s", err, jsonBuf.String())
	}
	if len(results) != 1 || results[0].Scenario != "baseline" {
		t.Fatalf("whatif -json results = %+v", results)
	}
	// Self-replay of the unchanged configuration stays within the validation
	// tolerance.
	if d := results[0].DeltaFraction; d < -0.10 || d > 0.10 {
		t.Errorf("baseline self-replay off by %.1f%%", 100*d)
	}

	// Bad inputs fail instead of exiting.
	if err := cmdWhatIf([]string{"-scenario", "baseline"}, io.Discard); err == nil {
		t.Fatal("whatif without -run accepted")
	}
	if err := cmdWhatIf([]string{"-run", filepath.Join(t.TempDir(), "nope")}, io.Discard); err == nil {
		t.Fatal("whatif on missing dir accepted")
	}
}
