// Package ssg reimplements the interface shape of Mochi's SSG (scalable
// service groups) component: named process groups with membership, heartbeat
// liveness, and observer notifications on join/leave/failure. Mofka brokers
// and the provenance collectors register in a group so consumers can
// discover partitions and detect dead producers.
//
// Liveness is driven by an explicit clock (Sweep) rather than wall-clock
// timers so the component is deterministic under test and usable from the
// simulation; RunSweeper provides a real-time driver for daemon use.
package ssg

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// MemberID identifies a member within a group.
type MemberID uint64

// State is a member's liveness state.
type State int

// Member liveness states.
const (
	Alive State = iota
	Suspect
	Dead
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Member is one process in a group.
type Member struct {
	ID       MemberID
	Address  string
	State    State
	JoinedAt time.Time
	LastSeen time.Time
}

// EventKind classifies membership notifications.
type EventKind int

// Membership notification kinds.
const (
	EventJoin EventKind = iota
	EventLeave
	EventSuspect
	EventFail
	EventRejoin
)

// Event is a membership change notification.
type Event struct {
	Kind   EventKind
	Member Member
}

// Observer receives membership events. Callbacks run synchronously under the
// group's lock-free snapshot; they must not call back into the group.
type Observer func(Event)

// Config tunes failure detection.
type Config struct {
	SuspectAfter time.Duration // no heartbeat for this long: Suspect
	DeadAfter    time.Duration // no heartbeat for this long: Dead
}

// DefaultConfig mirrors SSG's SWIM-ish defaults at a small scale.
func DefaultConfig() Config {
	return Config{SuspectAfter: 2 * time.Second, DeadAfter: 5 * time.Second}
}

// Group is a named membership group. All methods are safe for concurrent
// use.
type Group struct {
	name string
	cfg  Config

	mu        sync.Mutex
	members   map[MemberID]*Member
	nextID    MemberID
	observers []Observer
}

// NewGroup creates an empty group.
func NewGroup(name string, cfg Config) *Group {
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = DefaultConfig().SuspectAfter
	}
	if cfg.DeadAfter <= cfg.SuspectAfter {
		cfg.DeadAfter = cfg.SuspectAfter * 2
	}
	return &Group{name: name, cfg: cfg, members: make(map[MemberID]*Member)}
}

// Name returns the group name.
func (g *Group) Name() string { return g.name }

// Observe registers an observer for membership events.
func (g *Group) Observe(o Observer) {
	g.mu.Lock()
	g.observers = append(g.observers, o)
	g.mu.Unlock()
}

// notify must be called without holding g.mu.
func (g *Group) notify(obs []Observer, ev Event) {
	for _, o := range obs {
		o(ev)
	}
}

// Join adds a member at address and returns its ID. now is the join time.
func (g *Group) Join(address string, now time.Time) MemberID {
	g.mu.Lock()
	id := g.nextID
	g.nextID++
	m := &Member{ID: id, Address: address, State: Alive, JoinedAt: now, LastSeen: now}
	g.members[id] = m
	obs := append([]Observer(nil), g.observers...)
	ev := Event{Kind: EventJoin, Member: *m}
	g.mu.Unlock()
	g.notify(obs, ev)
	return id
}

// Leave removes a member gracefully.
func (g *Group) Leave(id MemberID) bool {
	g.mu.Lock()
	m, ok := g.members[id]
	if !ok {
		g.mu.Unlock()
		return false
	}
	delete(g.members, id)
	obs := append([]Observer(nil), g.observers...)
	ev := Event{Kind: EventLeave, Member: *m}
	g.mu.Unlock()
	g.notify(obs, ev)
	return true
}

// Heartbeat records liveness for a member at time now. A heartbeat from a
// Suspect member revives it (EventRejoin); heartbeats from Dead members are
// ignored (they must re-Join).
func (g *Group) Heartbeat(id MemberID, now time.Time) bool {
	g.mu.Lock()
	m, ok := g.members[id]
	if !ok || m.State == Dead {
		g.mu.Unlock()
		return false
	}
	revived := m.State == Suspect
	m.State = Alive
	m.LastSeen = now
	var obs []Observer
	var ev Event
	if revived {
		obs = append([]Observer(nil), g.observers...)
		ev = Event{Kind: EventRejoin, Member: *m}
	}
	g.mu.Unlock()
	if revived {
		g.notify(obs, ev)
	}
	return true
}

// Fail forcibly transitions a member to Dead at time now, firing EventFail.
// It is the path external failure detectors use — chaos-injected broker
// crashes and gateway ping timeouts — instead of waiting out the heartbeat
// timeouts. Returns false when the member is unknown or already Dead.
func (g *Group) Fail(id MemberID, now time.Time) bool {
	g.mu.Lock()
	m, ok := g.members[id]
	if !ok || m.State == Dead {
		g.mu.Unlock()
		return false
	}
	m.State = Dead
	m.LastSeen = now
	obs := append([]Observer(nil), g.observers...)
	ev := Event{Kind: EventFail, Member: *m}
	g.mu.Unlock()
	g.notify(obs, ev)
	return true
}

// Sweep advances failure detection to time now, transitioning silent members
// to Suspect and then Dead, and returns the number of state changes.
func (g *Group) Sweep(now time.Time) int {
	g.mu.Lock()
	var events []Event
	for _, m := range g.members {
		silent := now.Sub(m.LastSeen)
		switch {
		case m.State == Alive && silent >= g.cfg.SuspectAfter && silent < g.cfg.DeadAfter:
			m.State = Suspect
			events = append(events, Event{Kind: EventSuspect, Member: *m})
		case m.State != Dead && silent >= g.cfg.DeadAfter:
			m.State = Dead
			events = append(events, Event{Kind: EventFail, Member: *m})
		}
	}
	obs := append([]Observer(nil), g.observers...)
	g.mu.Unlock()
	// Map iteration order is random; notify in member-ID order so sweeps are
	// deterministic (simulation replays depend on a stable event sequence).
	sort.Slice(events, func(i, j int) bool { return events[i].Member.ID < events[j].Member.ID })
	for _, ev := range events {
		g.notify(obs, ev)
	}
	return len(events)
}

// Members returns a snapshot of the membership sorted by ID.
func (g *Group) Members() []Member {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Member, 0, len(g.members))
	for _, m := range g.members {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Alive returns the snapshot of members currently in the Alive state.
func (g *Group) AliveMembers() []Member {
	var out []Member
	for _, m := range g.Members() {
		if m.State == Alive {
			out = append(out, m)
		}
	}
	return out
}

// Lookup returns the member with the given ID.
func (g *Group) Lookup(id MemberID) (Member, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	m, ok := g.members[id]
	if !ok {
		return Member{}, false
	}
	return *m, true
}

// Size returns the number of non-removed members (any state).
func (g *Group) Size() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.members)
}

// RunSweeper drives Sweep with wall-clock time every interval until stop is
// closed. It is the daemon-mode driver; simulations call Sweep directly.
func (g *Group) RunSweeper(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case now := <-t.C:
			g.Sweep(now)
		case <-stop:
			return
		}
	}
}
