package dask

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"taskprov/internal/sim"
)

func timeNow() int64 { return time.Now().UnixNano() }

// randomDAG builds a layered random DAG with the given rng stream.
func randomDAG(id int, rng *sim.RNG, layers, width int) *Graph {
	g := NewGraph(id)
	var prev []TaskKey
	for l := 0; l < layers; l++ {
		n := rng.IntBetween(1, width)
		var cur []TaskKey
		for i := 0; i < n; i++ {
			key := TaskKey(fmt.Sprintf("t-%02d-%02d", l, i))
			var deps []TaskKey
			for _, p := range prev {
				if rng.Bool(0.4) {
					deps = append(deps, p)
				}
			}
			// Ensure connectivity beyond layer 0.
			if l > 0 && len(deps) == 0 {
				deps = append(deps, prev[rng.Intn(len(prev))])
			}
			g.Add(&TaskSpec{
				Key: key, Deps: deps,
				EstDuration: sim.Milliseconds(rng.Uniform(5, 120)),
				OutputSize:  int64(rng.IntBetween(1, 64)) << 16,
			})
			cur = append(cur, key)
		}
		prev = cur
	}
	return g
}

// TestRandomDAGsScheduleCorrectly is the scheduler's core property test:
// for arbitrary layered DAGs, every task executes exactly once, no task
// starts before all of its dependencies finished, transitions are
// well-formed, and the run is deterministic per seed.
func TestRandomDAGsScheduleCorrectly(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		seed := uint64(1000 + trial)
		gen := sim.NewRNG(seed).Split("dag")
		env := newEnv(seed, smallCfg())
		g := randomDAG(1, gen, gen.IntBetween(2, 6), 8)
		total := g.Len()
		env.runWorkflow(func(p *sim.Proc, cl *Client) {
			cl.SubmitAndWait(p, g)
		})

		// Exactly-once execution.
		execTimes := map[TaskKey]TaskExecution{}
		for _, e := range env.rec.execs {
			if _, dup := execTimes[e.Key]; dup {
				t.Fatalf("seed %d: task %s executed twice", seed, e.Key)
			}
			execTimes[e.Key] = e
		}
		if len(execTimes) != total {
			t.Fatalf("seed %d: executed %d/%d tasks", seed, len(execTimes), total)
		}

		// Dependency ordering.
		for _, k := range g.Keys() {
			spec, _ := g.Task(k)
			for _, d := range spec.Deps {
				if execTimes[k].Start < execTimes[d].Stop {
					t.Fatalf("seed %d: %s started %v before dep %s finished %v",
						seed, k, execTimes[k].Start, d, execTimes[d].Stop)
				}
			}
		}

		// Transition well-formedness: per (key, location), each transition's
		// From matches the previous To.
		last := map[string]TaskState{}
		for _, tr := range env.rec.schedTrans {
			id := string(tr.Key)
			if prev, ok := last[id]; ok && tr.From != prev {
				t.Fatalf("seed %d: scheduler transition chain broken for %s: %s -> (%s->%s)",
					seed, tr.Key, prev, tr.From, tr.To)
			}
			last[id] = tr.To
		}

		// Every leaf ends in scheduler-side memory.
		for _, k := range g.Leaves() {
			if env.c.Scheduler().TaskState(k) != StateMemory {
				t.Fatalf("seed %d: leaf %s in state %s", seed, k, env.c.Scheduler().TaskState(k))
			}
		}
	}
}

// TestRandomDAGDeterminism re-runs one random DAG under the same seed and
// requires identical execution records.
func TestRandomDAGDeterminism(t *testing.T) {
	run := func() []TaskExecution {
		gen := sim.NewRNG(77).Split("dag")
		env := newEnv(77, smallCfg())
		g := randomDAG(1, gen, 5, 6)
		env.runWorkflow(func(p *sim.Proc, cl *Client) {
			cl.SubmitAndWait(p, g)
		})
		return env.rec.execs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("execution counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("execution %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestRandomDAGWithIO mixes I/O-performing tasks into random DAGs and
// checks Darshan-visible effects stay consistent with execution.
func TestRandomDAGWithIO(t *testing.T) {
	seed := uint64(31)
	gen := sim.NewRNG(seed).Split("dag")
	env := newEnv(seed, smallCfg())
	g := randomDAG(1, gen, 4, 6)
	// Augment: every root also writes a file.
	for i, k := range g.Roots() {
		spec, _ := g.Task(k)
		path := fmt.Sprintf("/lus/prop/out-%02d", i)
		inner := spec.EstDuration
		spec.EstDuration = 0
		spec.Run = func(ctx *TaskContext) {
			ctx.Compute(inner)
			f, err := ctx.Open(path, 0x2|0x4) // WRONLY|CREATE
			if err != nil {
				panic(err)
			}
			f.Write(ctx.Proc(), 1<<20)
			f.Close(ctx.Proc())
		}
	}
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
	})
	roots := len(g.Roots())
	files := env.c.FS().PFS().List("/lus/prop")
	if len(files) != roots {
		t.Fatalf("files = %d, want %d", len(files), roots)
	}
}

// TestSchedulerScales runs a large random workload (20k tasks) and bounds
// the real time the scheduler machinery takes — a regression guard against
// accidentally quadratic bookkeeping.
func TestSchedulerScales(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	start := timeNow()
	gen := sim.NewRNG(7).Split("stress")
	env := newEnv(7, DefaultConfig())
	g := NewGraph(1)
	const roots = 2000
	total := 0
	for r := 0; r < roots; r++ {
		root := TaskKey(fmt.Sprintf("src-%05d", r))
		g.Add(&TaskSpec{Key: root, EstDuration: sim.Milliseconds(gen.Uniform(5, 40)), OutputSize: 1 << 20})
		total++
		fan := gen.IntBetween(5, 13)
		for c := 0; c < fan; c++ {
			g.Add(&TaskSpec{
				Key:  TaskKey(fmt.Sprintf("child-%05d-%02d", r, c)),
				Deps: []TaskKey{root}, EstDuration: sim.Milliseconds(gen.Uniform(5, 30)),
				OutputSize: 1 << 16,
			})
			total++
		}
	}
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
	})
	if len(env.rec.execs) != total {
		t.Fatalf("executed %d/%d", len(env.rec.execs), total)
	}
	if el := timeNow() - start; el > 60e9 {
		t.Fatalf("stress run took %.1fs of real time", float64(el)/1e9)
	}
}

// TestRandomDAGsSurviveWorkerKills is the chaos property: random DAGs run
// with the pass-by-reference data plane enabled while a random kill/restart
// schedule takes workers down mid-flight. Whatever the schedule, after the
// run quiesces three invariants must hold: every key the scheduler reports
// in memory has at least one live holder; no task is stranded in waiting or
// processing; and the proxy store's refcounts and resident bytes reconcile
// with the recorded event stream.
func TestRandomDAGsSurviveWorkerKills(t *testing.T) {
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			seed := uint64(7000 + trial)
			gen := sim.NewRNG(seed).Split("chaos")
			g := randomDAG(1, gen.Split("dag"), gen.IntBetween(3, 5), 8)
			env := newEnv(seed, proxyCfg(1<<17))

			// One or two distinct ranks die at random times; each restarts a
			// few seconds later so per-task retry budgets are never exhausted
			// (a task can lose its worker at most once per victim).
			kills := gen.IntBetween(1, 2)
			ranks := gen.Perm(len(env.c.Workers()))[:kills]
			var lastRestart sim.Time
			for _, r := range ranks {
				r := r
				killAt := sim.Seconds(gen.Uniform(1, 6))
				restartAt := killAt + sim.Seconds(gen.Uniform(2, 4))
				env.k.At(killAt, func() { env.c.KillWorker(r) })
				env.k.At(restartAt, func() { env.c.RestartWorker(r) })
				if restartAt > lastRestart {
					lastRestart = restartAt
				}
			}

			env.runWorkflow(func(p *sim.Proc, cl *Client) {
				cl.SubmitAndWait(p, g)
				if e := cl.GraphError(1); e != "" {
					t.Errorf("graph erred: %s", e)
				}
				// Quiesce past the whole kill schedule: a short graph can
				// finish before the last kill/restart fires, and TTL sweeps,
				// rejoins, and refcount releases need time to settle.
				settle := env.c.cfg.WorkerTTL + sim.Seconds(2)
				deadline := lastRestart + settle
				if d := deadline - env.k.Now(); d > settle {
					p.Sleep(d)
				} else {
					p.Sleep(settle)
				}
			})

			sched := env.c.Scheduler()
			for _, k := range g.Keys() {
				switch st := sched.TaskState(k); st {
				case StateMemory:
					holders := 0
					for _, w := range env.c.Workers() {
						if w.Alive() && w.HasData(k) {
							holders++
						}
					}
					if holders == 0 {
						t.Errorf("task %s in memory with no live holder", k)
					}
				case StateWaiting, StateProcessing:
					t.Errorf("task %s stuck in %q after quiescence", k, st)
				}
			}

			// Proxy store invariants: no blob outlives its owner, refcounts
			// never go negative, and the published/released/resident balance
			// from the event stream matches the store's live footprint.
			store := env.c.ProxyStore()
			for _, key := range store.Keys() {
				if refs := store.Refs(key); refs < 0 {
					t.Errorf("blob %s has negative refcount %d", key, refs)
				}
				ref, ok := store.Resolve(key)
				if !ok {
					continue
				}
				if w := env.c.Workers()[ref.Owner]; !w.Alive() {
					t.Errorf("blob %s owned by dead worker %d", key, ref.Owner)
				}
			}
			st := env.c.ProxyStats()
			if st.Resident < 0 {
				t.Errorf("negative resident bytes: %+v", st)
			}
			var published, released int64
			for _, ev := range env.rec.proxyEvents {
				switch ev.Op {
				case ProxyOpPublish:
					published += ev.Bytes
				case ProxyOpFree, ProxyOpReclaim:
					released += ev.Bytes
				}
			}
			if published != released+st.Resident {
				t.Errorf("resident delta stream unbalanced: published %d, released %d, resident %d",
					published, released, st.Resident)
			}
		})
	}
}

// TestRandomDAGsSurviveBrownoutsWithSpeculation is the gray-failure property:
// random DAGs run with the pass-by-reference data plane AND hedged execution
// enabled while a random brownout schedule degrades workers (sometimes healing
// them, sometimes mixing in a kill/restart). Whatever the schedule: the graph
// completes, no task is stranded, every speculative launch settles exactly
// once (won, failed, or promoted), duplicate execution records only exist for
// keys that were actually hedged, and the proxy store's refcount/delta
// balance reconciles — cancelled losers never publish visible outputs.
func TestRandomDAGsSurviveBrownoutsWithSpeculation(t *testing.T) {
	const trials = 8
	totalLaunched := 0
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			seed := uint64(8000 + trial)
			gen := sim.NewRNG(seed).Split("brownout")
			g := randomDAG(1, gen.Split("dag"), gen.IntBetween(3, 5), 8)
			cfg := proxyCfg(1 << 17)
			cfg.Speculation.Enabled = true
			cfg.Speculation.MinRuntime = sim.Milliseconds(50)
			cfg.Speculation.SlowFactor = 1.5
			env := newEnv(seed, cfg)

			// One or two workers brown out at random times by 4-10x; some
			// heal, some stay degraded for the rest of the run.
			slows := gen.IntBetween(1, 2)
			ranks := gen.Perm(len(env.c.Workers()))
			var lastEvent sim.Time
			for i := 0; i < slows; i++ {
				r := ranks[i]
				at := sim.Seconds(gen.Uniform(0.2, 3))
				factor := gen.Uniform(4, 10)
				env.k.At(at, func() { env.c.SlowWorker(r, factor) })
				if at > lastEvent {
					lastEvent = at
				}
				if gen.Bool(0.5) {
					heal := at + sim.Seconds(gen.Uniform(1, 4))
					env.k.At(heal, func() { env.c.ClearSlowdown(r) })
					if heal > lastEvent {
						lastEvent = heal
					}
				}
			}
			// Half the trials also lose a (different) worker outright.
			killed := gen.Bool(0.5)
			if killed {
				r := ranks[len(ranks)-1]
				killAt := sim.Seconds(gen.Uniform(1, 5))
				restartAt := killAt + sim.Seconds(gen.Uniform(2, 4))
				env.k.At(killAt, func() { env.c.KillWorker(r) })
				env.k.At(restartAt, func() { env.c.RestartWorker(r) })
				if restartAt > lastEvent {
					lastEvent = restartAt
				}
			}

			env.runWorkflow(func(p *sim.Proc, cl *Client) {
				cl.SubmitAndWait(p, g)
				if e := cl.GraphError(1); e != "" {
					t.Errorf("graph erred: %s", e)
				}
				settle := env.c.cfg.WorkerTTL + sim.Seconds(2)
				deadline := lastEvent + settle
				if d := deadline - env.k.Now(); d > settle {
					p.Sleep(d)
				} else {
					p.Sleep(settle)
				}
			})

			// No task stranded; every in-memory key has a live holder.
			sched := env.c.Scheduler()
			for _, k := range g.Keys() {
				switch st := sched.TaskState(k); st {
				case StateMemory:
					holders := 0
					for _, w := range env.c.Workers() {
						if w.Alive() && w.HasData(k) {
							holders++
						}
					}
					if holders == 0 {
						t.Errorf("task %s in memory with no live holder", k)
					}
				case StateWaiting, StateProcessing:
					t.Errorf("task %s stuck in %q after quiescence", k, st)
				}
			}

			// Speculation bookkeeping: every launch settles exactly once, and
			// every win cancels exactly one loser.
			var launched, won, cancelled, failed, promoted int
			hedged := map[TaskKey]bool{}
			for _, ev := range env.rec.specEvents {
				switch ev.Kind {
				case SpecLaunched:
					launched++
					hedged[ev.Key] = true
				case SpecWon:
					won++
				case SpecCancelled:
					cancelled++
				case SpecFailed:
					failed++
				case SpecPromoted:
					promoted++
				}
			}
			if launched != won+failed+promoted {
				t.Errorf("speculation launches unsettled: launched %d, won %d, failed %d, promoted %d",
					launched, won, failed, promoted)
			}
			if cancelled != won {
				t.Errorf("win/cancel pairing broken: won %d, cancelled %d", won, cancelled)
			}
			totalLaunched += launched

			// Execution records: every key ran. In kill-free trials a key only
			// executes more than once if it was actually hedged (recovery
			// recomputation is the one other legitimate source of duplicates).
			execsPerKey := map[TaskKey]int{}
			for _, e := range env.rec.execs {
				execsPerKey[e.Key]++
			}
			for _, k := range g.Keys() {
				n := execsPerKey[k]
				if n == 0 {
					t.Errorf("task %s never executed", k)
					continue
				}
				if n > 1 && !hedged[k] && !killed {
					t.Errorf("task %s executed %d times without speculation or recovery", k, n)
				}
			}

			// Proxy-store invariants: refcounts non-negative, owners alive,
			// and the published/released/resident delta balance holds — a
			// cancelled loser whose publish leaked would break it.
			store := env.c.ProxyStore()
			for _, key := range store.Keys() {
				if refs := store.Refs(key); refs < 0 {
					t.Errorf("blob %s has negative refcount %d", key, refs)
				}
				ref, ok := store.Resolve(key)
				if !ok {
					continue
				}
				if w := env.c.Workers()[ref.Owner]; !w.Alive() {
					t.Errorf("blob %s owned by dead worker %d", key, ref.Owner)
				}
			}
			st := env.c.ProxyStats()
			if st.Resident < 0 {
				t.Errorf("negative resident bytes: %+v", st)
			}
			var published, released int64
			for _, ev := range env.rec.proxyEvents {
				switch ev.Op {
				case ProxyOpPublish:
					published += ev.Bytes
				case ProxyOpFree, ProxyOpReclaim:
					released += ev.Bytes
				}
			}
			if published != released+st.Resident {
				t.Errorf("resident delta stream unbalanced: published %d, released %d, resident %d",
					published, released, st.Resident)
			}
		})
	}
	if totalLaunched == 0 {
		t.Fatal("no trial launched a speculation — the schedule no longer exercises hedging")
	}
}
