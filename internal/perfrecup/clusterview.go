package perfrecup

import (
	"fmt"
	"sort"
	"strings"

	"taskprov/internal/core"
	"taskprov/internal/perfrecup/frame"
)

// ClusterTimelineView tabulates the Mofka cluster's replication/failover
// lane: every warning whose kind carries the "cluster_" prefix (broker
// dead/rejoined, leader elections, replica catch-up, under-replication,
// consumer-group rebalances — see internal/mofka/cluster), sorted by
// (at, kind, worker, message) so the view is deterministic regardless of
// partition drain order. Empty for single-broker runs.
func ClusterTimelineView(art *core.RunArtifacts) (*frame.Frame, error) {
	metas, err := core.DrainTopic(art.Broker, core.TopicWarnings)
	if err != nil {
		return nil, err
	}
	type row struct {
		kind, broker, msg string
		at                float64
	}
	var rows []row
	for _, m := range metas {
		w := core.ParseWarning(m)
		if !strings.HasPrefix(string(w.Kind), "cluster_") {
			continue
		}
		rows = append(rows, row{
			kind: string(w.Kind), broker: w.Worker, msg: w.Message, at: w.At.Seconds(),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].at != rows[j].at {
			return rows[i].at < rows[j].at
		}
		if rows[i].kind != rows[j].kind {
			return rows[i].kind < rows[j].kind
		}
		if rows[i].broker != rows[j].broker {
			return rows[i].broker < rows[j].broker
		}
		return rows[i].msg < rows[j].msg
	})
	n := len(rows)
	at := make([]float64, n)
	kind := make([]string, n)
	broker := make([]string, n)
	msg := make([]string, n)
	for i, r := range rows {
		at[i], kind[i], broker[i], msg[i] = r.at, r.kind, r.broker, r.msg
	}
	return frame.New(
		frame.Floats("at", at...),
		frame.Strings("kind", kind...),
		frame.Strings("broker", broker...),
		frame.Strings("message", msg...),
	)
}

// RenderClusterTimeline formats the cluster-health view as a readable
// timeline, one line per event:
//
//	[  42.000s] cluster_broker_dead    broker-1: killed
//
// Returns "" when the run recorded no cluster events (single-broker runs).
func RenderClusterTimeline(f *frame.Frame) string {
	if f.NRows() == 0 {
		return ""
	}
	at := f.Col("at")
	kind := f.Col("kind")
	broker := f.Col("broker")
	msg := f.Col("message")
	var b strings.Builder
	for i := 0; i < f.NRows(); i++ {
		fmt.Fprintf(&b, "[%9.3fs] %-24s %s: %s\n", at.Float(i), kind.Str(i), broker.Str(i), msg.Str(i))
	}
	return b.String()
}
