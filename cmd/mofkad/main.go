// Command mofkad runs a Mofka broker over TCP, exposing the
// event-streaming RPCs (create_topic, push, pull, commit) through the
// Mercury wire protocol. It is the deployment mode for consumers that run
// on different nodes than the instrumented workflow.
//
// With -data-dir the broker is backed by the durable segmented event log:
// every topic, event, and committed cursor persists under the directory,
// survives restarts (including crashes — torn segment tails are truncated
// on reopen), and can later be analyzed post-mortem with
// `perfrecup <cmd> <data-dir>`.
//
// With -live the daemon additionally runs the live monitoring subsystem
// (internal/live) against its own broker: streaming aggregates and online
// anomaly detection over the provenance topics, served on -live-http.
//
// With -brokers N the daemon serves a sharded, replicated Mofka cluster of
// N broker replicas behind one RPC gateway (internal/mofka/cluster):
// partitions are placed by rendezvous hashing, appends are acknowledged
// after a replica quorum, and a background sweeper drives SSG failure
// detection and leader failover. Plain mofka clients work unchanged against
// the gateway. With -join ADDR the daemon instead runs a single broker and
// registers it as a remote replica member of the cluster behind ADDR.
//
// Usage:
//
//	mofkad -listen 127.0.0.1:7777 [-config bedrock.json]
//	       [-data-dir /path/to/log] [-fsync batch|interval|never]
//	       [-live] [-live-http 127.0.0.1:9090]
//	       [-brokers N [-replication N] [-quorum N]]
//	       [-join ADDR]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"taskprov/internal/live"
	"taskprov/internal/mochi/bedrock"
	"taskprov/internal/mochi/mercury"
	"taskprov/internal/mofka"
	"taskprov/internal/mofka/cluster"
	"taskprov/internal/mofka/wal"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7777", "TCP listen address")
	configPath := flag.String("config", "", "optional bedrock JSON config (its address overrides -listen)")
	dataDir := flag.String("data-dir", "", "directory for the durable event log (empty = in-memory only)")
	fsync := flag.String("fsync", "batch", "durable log fsync policy: batch|interval|never")
	brokers := flag.Int("brokers", 0, "serve a sharded cluster of N broker replicas behind this gateway (0 = single broker)")
	replication := flag.Int("replication", 0, "with -brokers, replicas per partition (0 = cluster default)")
	quorum := flag.Int("quorum", 0, "with -brokers, append acknowledgement quorum (0 = majority of replication)")
	joinAddr := flag.String("join", "", "join the cluster behind this gateway address as a remote replica member")
	sweep := flag.Duration("sweep", time.Second, "with -brokers, failure-detector sweep interval")
	liveMon := flag.Bool("live", false, "run the live monitor against this broker")
	liveHTTP := flag.String("live-http", "", "with -live, serve /snapshot /metrics /events on this address")
	flag.Parse()

	if *brokers < 0 || *replication < 0 || *quorum < 0 {
		fatal(fmt.Errorf("-brokers/-replication/-quorum must be >= 0"))
	}
	if *brokers == 0 && (*replication != 0 || *quorum != 0) {
		fatal(fmt.Errorf("-replication/-quorum need -brokers N"))
	}
	if *brokers > 0 && *joinAddr != "" {
		fatal(fmt.Errorf("-brokers and -join are mutually exclusive: a gateway hosts replicas, a joiner is one"))
	}
	if *brokers > 0 && *liveMon {
		fatal(fmt.Errorf("-live needs single-broker mode; watch a cluster gateway with `taskprov watch -broker ADDR`"))
	}

	cfg := bedrock.DefaultConfig(*listen)
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			fatal(err)
		}
		cfg, err = bedrock.ParseConfig(data)
		if err != nil {
			fatal(err)
		}
	}
	if mercury.IsLocal(cfg.Address) {
		fatal(fmt.Errorf("mofkad needs a TCP address, got %q", cfg.Address))
	}
	pol, err := wal.ParseSyncPolicy(*fsync)
	if err != nil {
		fatal(err)
	}
	dep, err := bedrock.Deploy(cfg, nil)
	if err != nil {
		fatal(err)
	}
	defer dep.Shutdown()

	if *brokers > 0 {
		runCluster(dep, *brokers, *replication, *quorum, *dataDir, *fsync, pol, *sweep)
		return
	}

	broker, err := mofka.NewBrokerOptions(dep, mofka.Options{
		DataDir: *dataDir,
		WAL:     wal.Options{Sync: pol},
	})
	if err != nil {
		fatal(err)
	}
	broker.RegisterRPCs(dep.Endpoint())
	durability := "in-memory"
	if *dataDir != "" {
		durability = fmt.Sprintf("durable log %s (fsync=%s, %d topics recovered)",
			*dataDir, *fsync, len(broker.Topics()))
	}
	fmt.Printf("mofkad: serving on %s (yokan dbs: %v, warabi targets: %v, %s)\n",
		dep.Addr(), cfg.Yokan.Databases, cfg.Warabi.Targets, durability)

	if *joinAddr != "" {
		node, err := cluster.JoinRemote(*joinAddr, dep.Addr(), 10*time.Second)
		if err != nil {
			fatal(fmt.Errorf("join %s: %w", *joinAddr, err))
		}
		fmt.Printf("mofkad: joined cluster at %s as broker node %d\n", *joinAddr, node)
	}

	var monitor *live.Monitor
	if *liveMon {
		monitor = live.NewMonitor(broker, live.MonitorOptions{
			Logf: func(format string, a ...any) { fmt.Fprintf(os.Stderr, "mofkad: "+format+"\n", a...) },
		})
		if *liveHTTP != "" {
			srv, err := live.Serve(*liveHTTP, monitor)
			if err != nil {
				fatal(err)
			}
			defer func() { _ = srv.Close() }()
			fmt.Printf("mofkad: live monitor on http://%s (/snapshot /metrics /events)\n", srv.Addr())
		} else {
			fmt.Println("mofkad: live monitor attached")
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("mofkad: shutting down")
	// Flush and fsync every partition log before the process exits, so a
	// clean shutdown loses nothing regardless of the fsync policy.
	if err := broker.Close(); err != nil {
		fatal(err)
	}
	if monitor != nil {
		// Broker is closed: the monitor drains what's left and exits.
		monitor.Stop()
	}
}

// runCluster serves a sharded, replicated cluster behind the deployed
// endpoint until interrupted.
func runCluster(dep *bedrock.Deployment, brokers, replication, quorum int, dataDir, fsync string, pol wal.SyncPolicy, sweep time.Duration) {
	cl, err := cluster.New(cluster.Config{
		Brokers:           brokers,
		ReplicationFactor: replication,
		Quorum:            quorum,
		DataDir:           dataDir,
		WAL:               wal.Options{Sync: pol},
	})
	if err != nil {
		fatal(err)
	}
	cl.RegisterRPCs(dep.Endpoint())

	stop := make(chan struct{})
	go cl.RunSweeper(sweep, stop)

	durability := "in-memory"
	if dataDir != "" {
		durability = fmt.Sprintf("durable logs under %s (fsync=%s per node, %d topics recovered)", dataDir, fsync, len(cl.Topics()))
	}
	fmt.Printf("mofkad: cluster gateway on %s (%d brokers, %s)\n", dep.Addr(), cl.Brokers(), durability)
	fmt.Printf("mofkad: join more replicas with `mofkad -listen HOST:PORT -join %s`\n", dep.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("mofkad: shutting down cluster")
	close(stop)
	if err := cl.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mofkad:", err)
	os.Exit(1)
}
