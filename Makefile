GO ?= go

.PHONY: build vet test race bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The broker, durable log, and live monitor are all concurrency-heavy; run
# the whole tree under the race detector.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Everything CI runs.
verify: build vet test race
