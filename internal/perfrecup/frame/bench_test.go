package frame

import (
	"fmt"
	"testing"
)

func benchFrame(n int) *Frame {
	keys := make([]string, n)
	workers := make([]string, n)
	durs := make([]float64, n)
	sizes := make([]int64, n)
	for i := 0; i < n; i++ {
		keys[i] = fmt.Sprintf("task-%06d", i)
		workers[i] = fmt.Sprintf("w%d", i%8)
		durs[i] = float64(i%977) / 100
		sizes[i] = int64(i%4096) << 10
	}
	return MustNew(
		Strings("key", keys...), Strings("worker", workers...),
		Floats("duration", durs...), Ints("size", sizes...),
	)
}

func BenchmarkGroupByAgg(b *testing.B) {
	f := benchFrame(20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.GroupBy("worker").Agg(
			Agg{Col: "duration", Fn: Mean},
			Agg{Col: "size", Fn: Sum},
			Agg{Col: "duration", Fn: Count, As: "n"},
		)
	}
}

func BenchmarkHashJoin(b *testing.B) {
	l := benchFrame(20000)
	r := benchFrame(20000).Select("key", "duration")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Join(r, Inner, "key"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSortBy(b *testing.B) {
	f := benchFrame(20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SortBy("duration", true)
	}
}

func BenchmarkGroupByPercentiles(b *testing.B) {
	f := benchFrame(20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.GroupBy("worker").Agg(
			Agg{Col: "duration", Fn: P50},
			Agg{Col: "duration", Fn: P95},
			Agg{Col: "duration", Fn: P99},
		)
	}
}
