// Package yokan reimplements the interface shape of Mochi's Yokan
// microservice: named databases holding an ordered key/value space plus
// document collections with monotonically increasing IDs. Mofka stores event
// metadata and topic configuration in Yokan; the provenance framework reads
// it back at analysis time.
package yokan

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Database is one ordered key/value space with named document collections.
// All methods are safe for concurrent use.
type Database struct {
	name string

	mu          sync.RWMutex
	kv          *skiplist
	collections map[string]*Collection
}

// NewDatabase creates an empty database. The name is diagnostic.
func NewDatabase(name string) *Database {
	return &Database{
		name:        name,
		kv:          newSkiplist(int64(len(name)) + 42),
		collections: make(map[string]*Collection),
	}
}

// Name returns the database name.
func (db *Database) Name() string { return db.name }

// Put stores value under key, replacing any existing value. The value slice
// is copied.
func (db *Database) Put(key string, value []byte) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.kv.put(key, append([]byte(nil), value...))
}

// Get returns the value for key.
func (db *Database) Get(key string) ([]byte, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	v, ok := db.kv.get(key)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Exists reports whether key is present.
func (db *Database) Exists(key string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.kv.get(key)
	return ok
}

// Erase removes key, reporting whether it existed.
func (db *Database) Erase(key string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.kv.del(key)
}

// Count returns the number of keys.
func (db *Database) Count() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.kv.size
}

// KeyValue is a key with its value, as returned by ListKeyVals.
type KeyValue struct {
	Key   string
	Value []byte
}

// ListKeys returns up to max keys >= from that start with prefix, in order.
// max <= 0 means no limit.
func (db *Database) ListKeys(from, prefix string, max int) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []string
	for n := db.kv.seek(from); n != nil; n = n.next[0] {
		if prefix != "" && !strings.HasPrefix(n.key, prefix) {
			if n.key > prefix {
				break // keys are ordered; we are past the prefix range
			}
			continue // still before the prefix range
		}
		out = append(out, n.key)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// ListKeyVals returns up to max key/value pairs >= from with the given
// prefix, in key order. Values are copies.
func (db *Database) ListKeyVals(from, prefix string, max int) []KeyValue {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []KeyValue
	for n := db.kv.seek(from); n != nil; n = n.next[0] {
		if prefix != "" && !strings.HasPrefix(n.key, prefix) {
			if n.key > prefix {
				break
			}
			continue
		}
		out = append(out, KeyValue{Key: n.key, Value: append([]byte(nil), n.value...)})
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// Collection returns the named document collection, creating it on first
// use.
func (db *Database) Collection(name string) *Collection {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.collections[name]
	if !ok {
		c = &Collection{name: name}
		db.collections[name] = c
	}
	return c
}

// CollectionNames lists the existing collections.
func (db *Database) CollectionNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []string
	for n := range db.collections {
		out = append(out, n)
	}
	return out
}

// Collection is an append-mostly document store with uint64 IDs assigned in
// insertion order, mirroring Yokan's document collection API.
type Collection struct {
	name string
	mu   sync.RWMutex
	docs [][]byte // nil entry = erased
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Store appends a document and returns its ID. The document is copied.
func (c *Collection) Store(doc []byte) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.docs = append(c.docs, append([]byte(nil), doc...))
	return uint64(len(c.docs) - 1)
}

// Load returns document id.
func (c *Collection) Load(id uint64) ([]byte, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if id >= uint64(len(c.docs)) || c.docs[id] == nil {
		return nil, false
	}
	return append([]byte(nil), c.docs[id]...), true
}

// Update replaces document id, reporting whether it existed.
func (c *Collection) Update(id uint64, doc []byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id >= uint64(len(c.docs)) || c.docs[id] == nil {
		return false
	}
	c.docs[id] = append([]byte(nil), doc...)
	return true
}

// Erase tombstones document id.
func (c *Collection) Erase(id uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id >= uint64(len(c.docs)) || c.docs[id] == nil {
		return false
	}
	c.docs[id] = nil
	return true
}

// TruncateTo discards every document with ID >= n; subsequent Stores assign
// IDs starting at n again. This is the in-memory counterpart of event-log
// truncation: the replication layer uses it to drop a replica's divergent
// tail so offsets stay dense.
func (c *Collection) TruncateTo(n uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < uint64(len(c.docs)) {
		c.docs = c.docs[:n]
	}
}

// Size returns the number of live documents.
func (c *Collection) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, d := range c.docs {
		if d != nil {
			n++
		}
	}
	return n
}

// LastID returns the highest assigned ID and whether any document was ever
// stored.
func (c *Collection) LastID() (uint64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.docs) == 0 {
		return 0, false
	}
	return uint64(len(c.docs) - 1), true
}

// Iter calls fn for each live document with ID >= from, in ID order, until
// fn returns false or max documents have been visited (max <= 0: no limit).
func (c *Collection) Iter(from uint64, max int, fn func(id uint64, doc []byte) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	visited := 0
	for id := from; id < uint64(len(c.docs)); id++ {
		if c.docs[id] == nil {
			continue
		}
		if !fn(id, c.docs[id]) {
			return
		}
		visited++
		if max > 0 && visited >= max {
			return
		}
	}
}

// ---- persistence ----

type snapshot struct {
	Name        string
	Keys        []string
	Values      [][]byte
	Collections map[string][][]byte
}

// Snapshot serializes the database (keys, values, collections) to w.
func (db *Database) Snapshot(w io.Writer) error {
	db.mu.RLock()
	snap := snapshot{Name: db.name, Collections: make(map[string][][]byte)}
	for n := db.kv.first(); n != nil; n = n.next[0] {
		snap.Keys = append(snap.Keys, n.key)
		snap.Values = append(snap.Values, n.value)
	}
	for name, c := range db.collections {
		c.mu.RLock()
		snap.Collections[name] = append([][]byte(nil), c.docs...)
		c.mu.RUnlock()
	}
	db.mu.RUnlock()
	return gob.NewEncoder(w).Encode(&snap)
}

// Restore loads a database previously written by Snapshot.
func Restore(r io.Reader) (*Database, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("yokan: restore: %w", err)
	}
	db := NewDatabase(snap.Name)
	for i, k := range snap.Keys {
		db.kv.put(k, snap.Values[i])
	}
	for name, docs := range snap.Collections {
		db.collections[name] = &Collection{name: name, docs: docs}
	}
	return db, nil
}

// Equal reports whether two databases hold identical KV contents (used by
// tests and by replication checks).
func Equal(a, b *Database) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	b.mu.RLock()
	defer b.mu.RUnlock()
	if a.kv.size != b.kv.size {
		return false
	}
	na, nb := a.kv.first(), b.kv.first()
	for na != nil && nb != nil {
		if na.key != nb.key || !bytes.Equal(na.value, nb.value) {
			return false
		}
		na, nb = na.next[0], nb.next[0]
	}
	return na == nil && nb == nil
}

// Store manages a namespace of databases, like a Yokan provider managing
// multiple backends.
type Store struct {
	mu  sync.Mutex
	dbs map[string]*Database
}

// NewStore creates an empty provider.
func NewStore() *Store { return &Store{dbs: make(map[string]*Database)} }

// Open returns the named database, creating it on first use.
func (s *Store) Open(name string) *Database {
	s.mu.Lock()
	defer s.mu.Unlock()
	db, ok := s.dbs[name]
	if !ok {
		db = NewDatabase(name)
		s.dbs[name] = db
	}
	return db
}

// Names lists the open databases.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for n := range s.dbs {
		out = append(out, n)
	}
	return out
}

// Drop removes the named database.
func (s *Store) Drop(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.dbs, name)
}
