package perfrecup

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation (0 for fewer than 2 values).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// CV returns the coefficient of variation (std/mean), the paper's
// normalized variability measure. Zero mean yields NaN.
func CV(xs []float64) float64 { return Std(xs) / Mean(xs) }

// MinMax returns the extremes (NaNs for empty input).
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Percentile returns the p-th percentile (0..100) by linear interpolation.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	w := rank - float64(lo)
	return s[lo]*(1-w) + s[hi]*w
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// series (NaN if degenerate).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of two equal-length
// series.
func Spearman(xs, ys []float64) float64 {
	return Pearson(ranks(xs), ranks(ys))
}

// ranks assigns average ranks (ties share the mean rank).
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// Histogram bins values into nbins equal-width bins over [lo, hi]; values
// outside the range clamp into the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram computes the histogram.
func NewHistogram(xs []float64, lo, hi float64, nbins int) Histogram {
	if nbins <= 0 {
		nbins = 1
	}
	h := Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := 0
		if width > 0 {
			b = int((x - lo) / width)
		}
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		h.Counts[b]++
	}
	return h
}

// BinEdges returns the lower edge of each bin.
func (h Histogram) BinEdges() []float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	out := make([]float64, len(h.Counts))
	for i := range out {
		out[i] = h.Lo + float64(i)*width
	}
	return out
}

// Total returns the total count across bins.
func (h Histogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}
