// Package bedrock reimplements the role of Mochi's Bedrock bootstrapper: a
// JSON configuration describes which microservices (Yokan databases, Warabi
// targets, SSG groups) a process should host and under which Mercury
// address, and Deploy instantiates them as one Deployment handle. Mofka
// builds its brokers on top of a bedrock Deployment, exactly as the real
// Mofka is bootstrapped by the real Bedrock.
package bedrock

import (
	"encoding/json"
	"fmt"
	"time"

	"taskprov/internal/mochi/mercury"
	"taskprov/internal/mochi/ssg"
	"taskprov/internal/mochi/warabi"
	"taskprov/internal/mochi/yokan"
)

// Config is the JSON deployment description.
type Config struct {
	// Address is the Mercury address the deployment listens on. Addresses
	// with the "local://" scheme are in-process; anything else is treated
	// as a TCP host:port to listen on.
	Address string       `json:"address"`
	Yokan   YokanConfig  `json:"yokan"`
	Warabi  WarabiConfig `json:"warabi"`
	SSG     SSGConfig    `json:"ssg"`
}

// YokanConfig lists databases to create.
type YokanConfig struct {
	Databases []string `json:"databases"`
}

// WarabiConfig lists blob targets to create.
type WarabiConfig struct {
	Targets []string `json:"targets"`
}

// SSGConfig lists membership groups to create.
type SSGConfig struct {
	Groups []SSGGroupConfig `json:"groups"`
}

// SSGGroupConfig describes one group's failure detection thresholds.
type SSGGroupConfig struct {
	Name           string `json:"name"`
	SuspectAfterMS int64  `json:"suspect_after_ms"`
	DeadAfterMS    int64  `json:"dead_after_ms"`
}

// DefaultConfig returns a single-process composition suitable for running a
// Mofka-style service in tandem with a workflow.
func DefaultConfig(address string) Config {
	return Config{
		Address: address,
		Yokan:   YokanConfig{Databases: []string{"metadata"}},
		Warabi:  WarabiConfig{Targets: []string{"data"}},
		SSG: SSGConfig{Groups: []SSGGroupConfig{{
			Name: "members", SuspectAfterMS: 2000, DeadAfterMS: 5000,
		}}},
	}
}

// ParseConfig decodes a JSON configuration.
func ParseConfig(data []byte) (Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("bedrock: parse config: %w", err)
	}
	if c.Address == "" {
		return Config{}, fmt.Errorf("bedrock: config missing address")
	}
	return c, nil
}

// Deployment is a bootstrapped composition of microservices.
type Deployment struct {
	cfg      Config
	endpoint *mercury.Endpoint
	registry *mercury.Registry
	server   *mercury.Server

	Yokan  *yokan.Store
	Warabi *warabi.Provider
	groups map[string]*ssg.Group
}

// Deploy instantiates the configured services. For local:// addresses the
// endpoint is registered in reg (which must be non-nil); for TCP addresses a
// server is started and reg may be nil.
func Deploy(cfg Config, reg *mercury.Registry) (*Deployment, error) {
	if cfg.Address == "" {
		return nil, fmt.Errorf("bedrock: config missing address")
	}
	d := &Deployment{
		cfg:      cfg,
		registry: reg,
		Yokan:    yokan.NewStore(),
		Warabi:   warabi.NewProvider(),
		groups:   make(map[string]*ssg.Group),
	}
	for _, db := range cfg.Yokan.Databases {
		d.Yokan.Open(db)
	}
	for _, tg := range cfg.Warabi.Targets {
		d.Warabi.Target(tg)
	}
	for _, gc := range cfg.SSG.Groups {
		d.groups[gc.Name] = ssg.NewGroup(gc.Name, ssg.Config{
			SuspectAfter: time.Duration(gc.SuspectAfterMS) * time.Millisecond,
			DeadAfter:    time.Duration(gc.DeadAfterMS) * time.Millisecond,
		})
	}
	if mercury.IsLocal(cfg.Address) {
		if reg == nil {
			return nil, fmt.Errorf("bedrock: local address %q requires a registry", cfg.Address)
		}
		d.endpoint = reg.Listen(cfg.Address)
	} else {
		d.endpoint = mercury.NewEndpoint(cfg.Address)
		srv, err := mercury.Serve(d.endpoint, cfg.Address)
		if err != nil {
			return nil, fmt.Errorf("bedrock: listen %q: %w", cfg.Address, err)
		}
		d.server = srv
	}
	return d, nil
}

// Config returns the deployment's configuration.
func (d *Deployment) Config() Config { return d.cfg }

// Endpoint returns the Mercury endpoint services register RPCs on.
func (d *Deployment) Endpoint() *mercury.Endpoint { return d.endpoint }

// Addr returns the address clients should dial: the configured local label,
// or the actual TCP address for network deployments.
func (d *Deployment) Addr() string {
	if d.server != nil {
		return d.server.Addr()
	}
	return d.cfg.Address
}

// Group returns the named SSG group, or nil if not configured.
func (d *Deployment) Group(name string) *ssg.Group { return d.groups[name] }

// SelfCaller returns a Caller that reaches this deployment's own endpoint,
// regardless of transport.
func (d *Deployment) SelfCaller() (mercury.Caller, error) {
	if d.server != nil {
		return mercury.Dial(d.server.Addr())
	}
	return d.registry.Bind(d.cfg.Address), nil
}

// Shutdown stops network listeners and unregisters local endpoints.
func (d *Deployment) Shutdown() {
	if d.server != nil {
		_ = d.server.Close()
	}
	if d.registry != nil && mercury.IsLocal(d.cfg.Address) {
		d.registry.Close(d.cfg.Address)
	}
}
