package mofka

import (
	"fmt"
	"sync"
	"time"
)

// ProducerOptions tunes batching. Mofka's real producer batches events and
// ships them with background threads; the same knobs exist here.
type ProducerOptions struct {
	// BatchSize flushes a partition's pending batch when it reaches this
	// many events. Default 128.
	BatchSize int
	// MaxBatchBytes flushes when pending payload bytes reach this size.
	// Default 4 MiB.
	MaxBatchBytes int64
	// FlushInterval, when positive, starts a background goroutine flushing
	// all partitions periodically. Zero (default) means size-triggered and
	// manual flushes only — the deterministic mode simulations use.
	FlushInterval time.Duration
	// Partitioner picks the partition for an event. The default cycles
	// round-robin, matching Mofka's default.
	Partitioner func(metadata []byte, partitions int) int

	// FlushRetries is how many times a failing batch append is retried
	// in-line (with exponential backoff starting at RetryBackoff) before the
	// producer gives up for now, keeps the batch buffered, and reports
	// degraded mode. Default 3.
	FlushRetries int
	// RetryBackoff is the initial backoff between in-line retries,
	// doubling each attempt. Default 5ms.
	RetryBackoff time.Duration
	// MaxPendingBatches bounds the per-partition backlog of sealed but
	// unshipped batches accumulated while the broker is unreachable. Beyond
	// the bound the oldest batches are dropped (counted by Stats), trading
	// provenance completeness for bounded memory — degraded, not wedged.
	// Default 64.
	MaxPendingBatches int
	// OnDegraded fires once when the producer starts buffering because
	// appends fail persistently; OnRecovered fires once when the backlog
	// later drains completely. Both are invoked without internal locks held,
	// so callbacks may push to other topics.
	OnDegraded  func(err error)
	OnRecovered func()
}

func (o *ProducerOptions) setDefaults() {
	if o.BatchSize <= 0 {
		o.BatchSize = 128
	}
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 4 << 20
	}
	if o.FlushRetries <= 0 {
		o.FlushRetries = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 5 * time.Millisecond
	}
	if o.MaxPendingBatches <= 0 {
		o.MaxPendingBatches = 64
	}
}

// Producer pushes events into a topic with batching. Safe for concurrent
// use.
type Producer struct {
	topic *Topic
	opts  ProducerOptions

	mu       sync.Mutex
	open     []pendingBatch   // per-partition batch accepting new events
	queues   [][]pendingBatch // per-partition FIFO of sealed, unshipped batches
	rr       int
	closed   bool
	degraded bool
	pushed   uint64
	flushes  uint64
	dropped  uint64

	// shipMu serializes shipping so a partition's batches land in seal
	// order even under concurrent pushers.
	shipMu sync.Mutex

	stopFlusher chan struct{}
	flusherDone chan struct{}
}

type pendingBatch struct {
	metas [][]byte
	datas [][]byte
	bytes int64
}

// NewProducer creates a producer for the topic.
func (t *Topic) NewProducer(opts ProducerOptions) *Producer {
	opts.setDefaults()
	p := &Producer{
		topic:  t,
		opts:   opts,
		open:   make([]pendingBatch, len(t.partitions)),
		queues: make([][]pendingBatch, len(t.partitions)),
	}
	if opts.FlushInterval > 0 {
		p.stopFlusher = make(chan struct{})
		p.flusherDone = make(chan struct{})
		go p.flushLoop()
	}
	return p
}

func (p *Producer) flushLoop() {
	defer close(p.flusherDone)
	tick := time.NewTicker(p.opts.FlushInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			_ = p.Flush() // periodic flush retries next tick
		case <-p.stopFlusher:
			return
		}
	}
}

// Push enqueues one event. The metadata and data slices are copied. The
// event becomes visible to consumers after its batch flushes (by size
// trigger, interval, Flush, or Close).
func (p *Producer) Push(metadata Metadata, data []byte) error {
	return p.PushRaw(metadata.Encode(), data)
}

// PushRaw enqueues one event with pre-encoded JSON metadata.
func (p *Producer) PushRaw(metadata, data []byte) error {
	if v := p.topic.cfg.Validator; v != nil {
		if err := v(metadata); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidEvent, err)
		}
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	var idx int
	if p.opts.Partitioner != nil {
		idx = p.opts.Partitioner(metadata, len(p.topic.partitions))
		if idx < 0 || idx >= len(p.topic.partitions) {
			p.mu.Unlock()
			return fmt.Errorf("%w: partitioner chose %d of %d", ErrNoPartition, idx, len(p.topic.partitions))
		}
	} else {
		idx = p.rr
		p.rr = (p.rr + 1) % len(p.topic.partitions)
	}
	b := &p.open[idx]
	b.metas = append(b.metas, append([]byte(nil), metadata...))
	b.datas = append(b.datas, append([]byte(nil), data...))
	b.bytes += int64(len(data))
	p.pushed++
	needFlush := len(b.metas) >= p.opts.BatchSize || b.bytes >= p.opts.MaxBatchBytes
	if needFlush {
		p.sealLocked(idx)
	}
	p.mu.Unlock()
	if needFlush {
		return p.ship()
	}
	return nil
}

// sealLocked moves partition idx's open batch onto its shipping queue.
// Callers hold p.mu.
func (p *Producer) sealLocked(idx int) {
	if len(p.open[idx].metas) == 0 {
		return
	}
	p.queues[idx] = append(p.queues[idx], p.open[idx])
	p.open[idx] = pendingBatch{}
	p.flushes++
}

// ship drains every partition's sealed-batch queue, retrying failures with
// backoff. Batches that still cannot be appended stay queued (bounded by
// MaxPendingBatches) for the next flush — a broker outage degrades the
// producer instead of losing whole batches. Returns the first append error.
func (p *Producer) ship() error {
	p.shipMu.Lock()
	var firstErr error
	for idx := range p.topic.partitions {
		if err := p.drainPartition(idx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	p.mu.Lock()
	backlog := 0
	for i := range p.queues {
		backlog += len(p.queues[i])
	}
	notifyDegraded := firstErr != nil && !p.degraded
	notifyRecovered := firstErr == nil && backlog == 0 && p.degraded
	if notifyDegraded {
		p.degraded = true
	}
	if notifyRecovered {
		p.degraded = false
	}
	p.mu.Unlock()
	p.shipMu.Unlock()
	if notifyDegraded && p.opts.OnDegraded != nil {
		p.opts.OnDegraded(firstErr)
	}
	if notifyRecovered && p.opts.OnRecovered != nil {
		p.opts.OnRecovered()
	}
	return firstErr
}

func (p *Producer) drainPartition(idx int) error {
	for {
		p.mu.Lock()
		if len(p.queues[idx]) == 0 {
			p.mu.Unlock()
			return nil
		}
		b := p.queues[idx][0]
		p.mu.Unlock()
		if err := p.appendWithRetry(idx, b); err != nil {
			p.enforceBound(idx)
			return err
		}
		p.mu.Lock()
		p.queues[idx] = p.queues[idx][1:]
		p.mu.Unlock()
	}
}

func (p *Producer) appendWithRetry(idx int, b pendingBatch) error {
	backoff := p.opts.RetryBackoff
	var err error
	for attempt := 0; ; attempt++ {
		err = p.topic.partitions[idx].appendBatch(b.metas, b.datas)
		if err == nil || attempt >= p.opts.FlushRetries {
			return err
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// enforceBound drops partition idx's oldest queued batches past
// MaxPendingBatches, counting the dropped events.
func (p *Producer) enforceBound(idx int) {
	p.mu.Lock()
	over := len(p.queues[idx]) - p.opts.MaxPendingBatches
	for i := 0; i < over; i++ {
		p.dropped += uint64(len(p.queues[idx][i].metas))
	}
	if over > 0 {
		p.queues[idx] = append([]pendingBatch(nil), p.queues[idx][over:]...)
	}
	p.mu.Unlock()
}

// Flush seals and ships every pending batch. On error the unshipped batches
// remain queued for the next attempt; the first append error is returned.
func (p *Producer) Flush() error {
	p.mu.Lock()
	for i := range p.open {
		p.sealLocked(i)
	}
	p.mu.Unlock()
	return p.ship()
}

// Close flushes pending events and stops the background flusher. Further
// pushes fail with ErrClosed. If the final flush fails, its first error is
// returned and any still-unshipped batches are abandoned with the producer.
func (p *Producer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	if p.stopFlusher != nil {
		close(p.stopFlusher)
		<-p.flusherDone
	}
	return p.Flush()
}

// Degraded reports whether the producer is currently buffering because
// appends fail.
func (p *Producer) Degraded() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.degraded
}

// Backlog reports the number of sealed batches still awaiting shipment.
func (p *Producer) Backlog() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for i := range p.queues {
		n += len(p.queues[i])
	}
	return n
}

// Stats reports events pushed, batches flushed, and events dropped under
// backlog pressure, for overhead ablations.
func (p *Producer) Stats() (pushed, flushes uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pushed, p.flushes
}

// Dropped reports events discarded because the degraded-mode backlog
// exceeded MaxPendingBatches.
func (p *Producer) Dropped() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}
