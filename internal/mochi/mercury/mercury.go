// Package mercury is a small RPC fabric inspired by the Mochi suite's
// Mercury/Margo layer: named endpoints expose handlers, and clients call
// them by address. Two transports are provided — an in-process registry
// (the common case: Mofka runs in tandem with the workflow, in user space)
// and a length-prefixed TCP wire protocol for the standalone broker daemon.
package mercury

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"
)

// Handler processes one RPC. It receives the request payload and returns the
// response payload. Returning an error propagates a remote error string to
// the caller.
type Handler func(req []byte) ([]byte, error)

// ErrNoEndpoint is returned when dialing an unregistered local address.
var ErrNoEndpoint = errors.New("mercury: no such endpoint")

// ErrNoRPC is returned when calling an RPC name the endpoint does not expose.
var ErrNoRPC = errors.New("mercury: no such rpc")

// ErrTimeout is returned when a call exceeds its deadline: the peer is
// unreachable or wedged, as opposed to a handler returning an error
// (RemoteError). Callers use the distinction to decide between retrying
// elsewhere and surfacing the handler failure.
var ErrTimeout = errors.New("mercury: call timed out")

// RemoteError wraps an error string produced by a remote handler.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "mercury: remote: " + e.Msg }

// Endpoint is a service-side RPC dispatch table.
type Endpoint struct {
	addr     string
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewEndpoint creates an endpoint with the given address label.
func NewEndpoint(addr string) *Endpoint {
	return &Endpoint{addr: addr, handlers: make(map[string]Handler)}
}

// Addr returns the endpoint's address label.
func (e *Endpoint) Addr() string { return e.addr }

// Register installs a handler for the RPC name, replacing any previous one.
func (e *Endpoint) Register(name string, h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handlers[name] = h
}

// dispatch runs the handler for name.
func (e *Endpoint) dispatch(name string, req []byte) ([]byte, error) {
	e.mu.RLock()
	h := e.handlers[name]
	e.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("%w: %q on %s", ErrNoRPC, name, e.addr)
	}
	return h(req)
}

// Interceptor is middleware around in-process RPC dispatch: it receives the
// destination address, the RPC name, the request, and a next function that
// performs the real dispatch. Fault injection installs interceptors to drop,
// delay, or fail calls without the endpoints' knowledge.
type Interceptor func(addr, rpc string, req []byte, next Handler) ([]byte, error)

// Registry resolves in-process addresses to endpoints.
type Registry struct {
	mu          sync.RWMutex
	endpoints   map[string]*Endpoint
	interceptor Interceptor
}

// NewRegistry creates an empty in-process address space.
func NewRegistry() *Registry {
	return &Registry{endpoints: make(map[string]*Endpoint)}
}

// Listen registers and returns a new endpoint at addr. Re-listening on an
// occupied address replaces the previous endpoint (mirroring service
// restart).
func (r *Registry) Listen(addr string) *Endpoint {
	e := NewEndpoint(addr)
	r.mu.Lock()
	r.endpoints[addr] = e
	r.mu.Unlock()
	return e
}

// Close removes the endpoint at addr.
func (r *Registry) Close(addr string) {
	r.mu.Lock()
	delete(r.endpoints, addr)
	r.mu.Unlock()
}

// SetInterceptor installs (or, with nil, removes) the registry's dispatch
// middleware. There is at most one; chains compose inside the interceptor.
func (r *Registry) SetInterceptor(i Interceptor) {
	r.mu.Lock()
	r.interceptor = i
	r.mu.Unlock()
}

// Call performs an in-process RPC to addr.
func (r *Registry) Call(addr, rpc string, req []byte) ([]byte, error) {
	r.mu.RLock()
	e := r.endpoints[addr]
	icpt := r.interceptor
	r.mu.RUnlock()
	next := func(req []byte) ([]byte, error) {
		if e == nil {
			return nil, fmt.Errorf("%w: %s", ErrNoEndpoint, addr)
		}
		return e.dispatch(rpc, req)
	}
	if icpt != nil {
		return icpt(addr, rpc, req, next)
	}
	return next(req)
}

// Addrs lists the registered endpoint addresses.
func (r *Registry) Addrs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for a := range r.endpoints {
		out = append(out, a)
	}
	return out
}

// ---- TCP transport ----
//
// Wire format (all integers big-endian uint32):
//
//	request:  len(name) name len(payload) payload
//	response: status(0 ok, 1 error) len(payload) payload
//
// One request/response pair at a time per connection; clients that need
// concurrency open multiple connections.

const maxFrame = 64 << 20 // 64 MiB guards against corrupt length prefixes

func writeFrame(w io.Writer, b []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("mercury: frame of %d bytes exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// Server serves an endpoint's handlers over TCP.
type Server struct {
	ep     *Endpoint
	ln     net.Listener
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
}

// Serve starts a TCP server for the endpoint on the given listen address
// (e.g. "127.0.0.1:0"). The returned server reports its actual address via
// Addr.
func Serve(ep *Endpoint, listen string) (*Server, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	s := &Server{ep: ep, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() { _ = conn.Close() }()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	for {
		name, err := readFrame(conn)
		if err != nil {
			return
		}
		req, err := readFrame(conn)
		if err != nil {
			return
		}
		resp, herr := s.ep.dispatch(string(name), req)
		var status [1]byte
		if herr != nil {
			status[0] = 1
			resp = []byte(herr.Error())
		}
		if _, err := conn.Write(status[:]); err != nil {
			return
		}
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// Close stops accepting and waits for in-flight connections to finish their
// current request.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	return err
}

// DefaultCallTimeout bounds each Call when no explicit timeout was set. A
// dead peer must surface as ErrTimeout rather than blocking the caller
// forever.
const DefaultCallTimeout = 30 * time.Second

// Client is a TCP RPC client with a single underlying connection. Calls are
// serialized; it is safe for concurrent use.
type Client struct {
	addr    string
	mu      sync.Mutex
	conn    net.Conn
	closed  bool
	timeout time.Duration
}

// Dial connects to a TCP mercury server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{addr: addr, conn: conn, timeout: DefaultCallTimeout}, nil
}

// SetTimeout sets the per-call deadline. Zero or negative restores the
// default; there is deliberately no way to disable the deadline entirely.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	if d <= 0 {
		d = DefaultCallTimeout
	}
	c.timeout = d
	c.mu.Unlock()
}

// Call performs one RPC over the client's connection, bounded by the
// per-call timeout. A deadline expiry returns ErrTimeout (wrapped) and tears
// down the connection — the request/response stream is mid-frame and cannot
// be reused — so the next Call redials.
func (c *Client) Call(rpc string, req []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("mercury: client closed")
	}
	if c.conn == nil {
		conn, err := net.Dial("tcp", c.addr)
		if err != nil {
			return nil, err
		}
		c.conn = conn
	}
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return nil, err
	}
	resp, err := c.doCall(rpc, req)
	if err != nil {
		var rerr *RemoteError
		if !errors.As(err, &rerr) {
			// Transport failure: the connection state is unknown, drop it so
			// the next call starts clean.
			_ = c.conn.Close()
			c.conn = nil
			if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
				return nil, fmt.Errorf("%w: %s %q after %v", ErrTimeout, c.addr, rpc, c.timeout)
			}
		}
		return nil, err
	}
	return resp, nil
}

func (c *Client) doCall(rpc string, req []byte) ([]byte, error) {
	if err := writeFrame(c.conn, []byte(rpc)); err != nil {
		return nil, err
	}
	if err := writeFrame(c.conn, req); err != nil {
		return nil, err
	}
	var status [1]byte
	if _, err := io.ReadFull(c.conn, status[:]); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if status[0] != 0 {
		return nil, &RemoteError{Msg: string(resp)}
	}
	return resp, nil
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Caller abstracts "something that can issue RPCs to an address", satisfied
// by both the in-process Registry (via Bind) and TCP clients.
type Caller interface {
	Call(rpc string, req []byte) ([]byte, error)
}

// Bound is a Registry scoped to one destination address, satisfying Caller.
type Bound struct {
	reg  *Registry
	addr string
}

// Bind returns a Caller that sends every RPC to addr via the registry.
func (r *Registry) Bind(addr string) *Bound { return &Bound{reg: r, addr: addr} }

// Call implements Caller.
func (b *Bound) Call(rpc string, req []byte) ([]byte, error) {
	return b.reg.Call(b.addr, rpc, req)
}

// IsLocal reports whether an address looks like an in-process label rather
// than a host:port. Local labels use the "local://" scheme.
func IsLocal(addr string) bool { return strings.HasPrefix(addr, "local://") }
