package dask

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"

	"taskprov/internal/mochi/ssg"
	"taskprov/internal/platform"
	"taskprov/internal/sim"
)

// Scheduler is the dynamic task scheduler: it tracks every task's state,
// decides worker placement with Dask's locality+occupancy heuristic, and
// runs the work-stealing loop.
type Scheduler struct {
	c    *Cluster
	node *platform.Node

	tasks   map[TaskKey]*schedTask
	workers []*workerHandle
	graphs  map[int]*graphState

	prefixDur map[string]*durAvg
	rng       *sim.RNG

	// queued holds root tasks withheld from saturated workers (Dask's
	// root-task queuing / worker-saturation behaviour), ordered by
	// priority.
	queued rootHeap

	// stealing tracks keys with an in-flight steal request.
	stealing map[TaskKey]bool

	// group is the SSG membership group the scheduler maintains over its
	// workers: heartbeats feed it, and a liveness sweep declares silent
	// workers dead, triggering eviction and task recovery.
	group      *ssg.Group
	memberRank map[ssg.MemberID]int

	// memo holds the previous attempt's completion frontier when this
	// scheduler is resuming a crashed run (SeedResume): tasks found here at
	// graph registration are memoized instead of re-executed. doneGraphs
	// lists graphs whose graph-done provenance event already made it to the
	// previous attempt's log, suppressing a duplicate emission.
	memo       map[TaskKey]ResumeMemo
	doneGraphs map[int]bool
	// resumePins lists keys whose revived blobs carry an attempt-long pin
	// reference (see schedTask.resumePinned), dropped after the run.
	resumePins []TaskKey

	// Speculative (hedged) execution state: the optional external straggler
	// advisor, the per-prefix completed-duration history behind the built-in
	// quantile policy, and the in-flight / per-run launch counters that bound
	// hedging (see speculate.go).
	specAdvisor  SpeculationAdvisor
	specSamples  map[string][]float64
	specInFlight int
	specLaunches int

	nextPriority int
	stealCount   int
	lostCount    int
	started      bool
}

// saturationLimit is how many assigned-but-unfinished tasks a worker may
// hold before root tasks are withheld scheduler-side (Dask's
// worker-saturation factor of ~1.2).
func (s *Scheduler) saturationLimit() int {
	t := s.c.cfg.ThreadsPerWorker
	extra := t / 4
	if extra < 1 {
		extra = 1
	}
	return t + extra
}

type schedTask struct {
	spec     *TaskSpec
	graphID  int
	state    TaskState
	priority int
	retries  int

	waitingOn  map[TaskKey]struct{}
	dependents []TaskKey

	whoHas       map[int]struct{} // worker ranks holding the result
	processingOn int              // rank, valid in StateProcessing
	size         int64

	// startedAt is when the current primary assignment was dispatched — the
	// speculation tick measures elapsed runtime against it.
	startedAt sim.Time
	// speculating marks a live duplicate (hedged) attempt on speculativeOn,
	// dispatched specStartedAt; the first attempt to report wins and the
	// other is cancelled (see speculate.go).
	speculating   bool
	speculativeOn int
	specStartedAt sim.Time

	// viaProxy marks a result published to the proxy store: dependents
	// receive a reference instead of a payload, and the blob's refcount
	// mirrors pendingDependents (+1 while the result is a held output).
	viaProxy bool

	pendingDependents int
	isOutput          bool

	// resumePinned marks a memoized task whose surviving blob SeedResume
	// revived: the blob stays resident (and the task in memory) for the whole
	// resumed attempt so later recomputation of lost downstream results never
	// re-executes it. The pin reference is dropped by ReleaseResumeOrphans.
	resumePinned bool
	// clientRef marks a proxied key a client gather has resolved: the client
	// holds the result for the rest of the run, mirrored by one blob
	// reference that is never dropped (and never freed out from under it).
	clientRef bool

	// suspicious counts how many times a worker died while running this
	// task; past AllowedFailures the task erres instead of rescheduling
	// forever (Dask's SuspiciousCount).
	suspicious int
	// completedOnce guards graph completion accounting: a recomputed task
	// that finishes (or erres) again must not decrement the graph's
	// outstanding count twice.
	completedOnce bool
}

type workerHandle struct {
	w          *Worker
	rank       int
	connected  bool
	occupancy  sim.Time
	processing map[TaskKey]struct{}
	memory     int64

	// SSG membership: the current incarnation's member ID, valid while
	// joined. everConnected distinguishes a first connect from a rejoin.
	ssgID         ssg.MemberID
	joined        bool
	everConnected bool

	// In-flight steal accounting, so one tick's batch of moves does not
	// over-correct the imbalance.
	inbound  int
	outbound int
}

type graphState struct {
	remaining int
	errMsg    string
}

type durAvg struct {
	total sim.Time
	n     int64
}

func (a *durAvg) add(d sim.Time) { a.total += d; a.n++ }
func (a *durAvg) mean() sim.Time {
	if a.n == 0 {
		return 0
	}
	return a.total / sim.Time(a.n)
}

func newScheduler(c *Cluster, node *platform.Node) *Scheduler {
	s := &Scheduler{
		c:          c,
		node:       node,
		tasks:       make(map[TaskKey]*schedTask),
		graphs:      make(map[int]*graphState),
		prefixDur:   make(map[string]*durAvg),
		stealing:    make(map[TaskKey]bool),
		memberRank:  make(map[ssg.MemberID]int),
		specSamples: make(map[string][]float64),
		rng:         c.kernel.RNG("dask/scheduler"),
	}
	s.group = ssg.NewGroup("dask/workers", ssg.Config{
		SuspectAfter: time.Duration(c.cfg.WorkerTTL) / 2,
		DeadAfter:    time.Duration(c.cfg.WorkerTTL),
	})
	s.group.Observe(s.onMembership)
	return s
}

// ssgNow maps the virtual clock onto the wall-clock type SSG speaks.
func (s *Scheduler) ssgNow() time.Time { return time.Unix(0, int64(s.c.kernel.Now())) }

func (s *Scheduler) registerWorkers(ws []*Worker) {
	for _, w := range ws {
		s.workers = append(s.workers, &workerHandle{
			w: w, rank: w.rank, processing: make(map[TaskKey]struct{}),
		})
	}
}

// Node returns the platform node hosting the scheduler.
func (s *Scheduler) Node() *platform.Node { return s.node }

// Steals reports how many tasks were successfully work-stolen so far.
func (s *Scheduler) Steals() int { return s.stealCount }

// TaskState reports the scheduler-side state of a task ("" if unknown).
func (s *Scheduler) TaskState(k TaskKey) TaskState {
	ts, ok := s.tasks[k]
	if !ok {
		return ""
	}
	return ts.state
}

// HasInMemory reports whether the task's result is in distributed memory.
func (s *Scheduler) HasInMemory(k TaskKey) bool {
	ts, ok := s.tasks[k]
	return ok && ts.state == StateMemory
}

func (s *Scheduler) start() {
	if s.started {
		return
	}
	s.started = true
	if s.c.cfg.WorkStealing {
		s.c.kernel.After(s.c.cfg.StealInterval, s.stealTick)
	}
	if s.c.cfg.WorkerTTL > 0 {
		// The TTL sweep period carries the same deterministic jitter as worker
		// heartbeats, so a batch of simultaneously restarted workers is never
		// evicted in one synchronized storm on an exact sweep boundary.
		sweepRNG := s.c.kernel.RNG("dask/scheduler/sweep")
		var sweep func()
		sweep = func() {
			s.group.Sweep(s.ssgNow())
			s.c.kernel.After(sweepRNG.JitterTime(s.c.cfg.HeartbeatInterval, s.c.cfg.HeartbeatJitterCV), sweep)
		}
		s.c.kernel.After(sweepRNG.JitterTime(s.c.cfg.HeartbeatInterval, s.c.cfg.HeartbeatJitterCV), sweep)
	}
	if s.c.cfg.Speculation.Enabled {
		s.c.kernel.Every(s.c.cfg.Speculation.Interval, s.speculationTick)
	}
}

func (s *Scheduler) workerConnected(rank int) {
	wh := s.workers[rank]
	if wh.connected {
		// A fresh worker process reconnected before the previous incarnation
		// was declared dead: its state is gone, so evict the old one first.
		s.evictWorker(wh, "worker restarted")
	}
	rejoin := wh.everConnected
	if wh.joined {
		delete(s.memberRank, wh.ssgID)
		s.group.Leave(wh.ssgID)
	}
	wh.ssgID = s.group.Join(wh.w.addr, s.ssgNow())
	wh.joined = true
	s.memberRank[wh.ssgID] = rank
	wh.connected = true
	wh.everConnected = true
	if rejoin {
		s.emitRecovery(WarnWorkerRejoined, wh.w.addr, wh.w.node.Hostname,
			fmt.Sprintf("worker %s rejoined the cluster", wh.w.addr))
	}
	s.drainQueued()
}

// handleHeartbeat records a worker heartbeat in the membership group,
// reviving Suspect members.
func (s *Scheduler) handleHeartbeat(rank int) {
	wh := s.workers[rank]
	if !wh.connected || !wh.joined {
		return
	}
	s.group.Heartbeat(wh.ssgID, s.ssgNow())
}

// onMembership reacts to SSG liveness verdicts: a member declared dead is
// evicted, with all its tasks and data recovered elsewhere.
func (s *Scheduler) onMembership(ev ssg.Event) {
	if ev.Kind != ssg.EventFail {
		return
	}
	rank, ok := s.memberRank[ev.Member.ID]
	if !ok {
		return
	}
	wh := s.workers[rank]
	if !wh.connected || !wh.joined || wh.ssgID != ev.Member.ID {
		return
	}
	s.evictWorker(wh, "missed heartbeats")
}

// emitRecovery fans a failure/recovery warning out to the worker plugins, so
// it lands on the warnings provenance topic alongside GC and event-loop
// warnings.
func (s *Scheduler) emitRecovery(kind WarningKind, worker, hostname, msg string) {
	w := Warning{
		Kind: kind, Worker: worker, Hostname: hostname,
		At: s.c.kernel.Now(), Message: msg,
	}
	for _, p := range s.c.workerPlugins {
		p.WorkerWarning(w)
	}
}

// LostWorkers reports how many worker evictions the scheduler performed.
func (s *Scheduler) LostWorkers() int { return s.lostCount }

// evictWorker removes a dead worker from the cluster's working set: its SSG
// membership is dropped, its in-memory replicas are forgotten (keys whose
// last replica lived there are recomputed from their dependencies), and the
// tasks it was processing are rescheduled — Dask's resilience model.
func (s *Scheduler) evictWorker(wh *workerHandle, reason string) {
	if !wh.connected {
		return
	}
	wh.connected = false
	if wh.joined {
		delete(s.memberRank, wh.ssgID)
		s.group.Leave(wh.ssgID)
		wh.joined = false
	}
	wh.occupancy, wh.memory = 0, 0
	wh.inbound, wh.outbound = 0, 0
	wh.processing = make(map[TaskKey]struct{})
	s.lostCount++
	addr, host := wh.w.addr, wh.w.node.Hostname
	s.emitRecovery(WarnWorkerLost, addr, host,
		fmt.Sprintf("worker %s declared dead (%s); evicting", addr, reason))

	// Sweep the dead worker's proxy blobs before re-planning: references to
	// them now dangle, and the recompute pass below republishes what is
	// still needed under a new owner.
	if s.c.proxy != nil {
		if blobs, bytes := s.c.proxy.reclaimWorker(wh.rank, addr); blobs > 0 {
			s.emitRecovery(WarnBlobReclaimed, addr, host, reclaimMessage(addr, blobs, bytes))
		}
	}

	// Collect affected tasks and process them in priority order (priorities
	// follow topological submission order, so lost dependencies are handled
	// before the tasks that consume them). Never iterate the raw task map:
	// the recovery event sequence must reproduce exactly per seed.
	var affected []*schedTask
	for _, ts := range s.tasks {
		_, holds := ts.whoHas[wh.rank]
		if holds || (ts.state == StateProcessing && ts.processingOn == wh.rank) ||
			(ts.speculating && ts.speculativeOn == wh.rank) {
			affected = append(affected, ts)
		}
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i].priority < affected[j].priority })

	for _, ts := range affected {
		if ts.speculating && ts.speculativeOn == wh.rank {
			// The duplicate attempt died with its worker; the primary
			// continues alone. (Handle bookkeeping was zeroed above.)
			s.clearSpeculation(ts, "duplicate attempt's worker died")
			continue
		}
		if _, holds := ts.whoHas[wh.rank]; holds {
			delete(ts.whoHas, wh.rank)
			if len(ts.whoHas) == 0 && ts.state == StateMemory {
				if s.needed(ts) {
					s.emitRecovery(WarnKeyRecomputed, addr, host,
						fmt.Sprintf("key %s lost its last replica; recomputing", ts.spec.Key))
					s.recomputeKey(ts)
				} else {
					s.transition(ts, StateReleased, "lost-data")
				}
			}
			continue
		}
		if ts.speculating {
			// The primary died while a duplicate is in flight: the duplicate
			// is promoted to sole attempt — exactly the scenario hedging
			// exists for, so no requeue and no suspicion charge.
			s.promoteSpeculative(ts, "primary attempt's worker died")
			continue
		}
		// Processing on the dead worker: requeue, unless this task has now
		// killed its host too many times to be trusted.
		ts.suspicious++
		if ts.suspicious > s.c.cfg.AllowedFailures {
			s.markErred(ts, fmt.Sprintf("worker died %d times while running it", ts.suspicious))
			continue
		}
		s.emitRecovery(WarnTaskRescheduled, addr, host,
			fmt.Sprintf("task %s was processing on dead worker; rescheduling", ts.spec.Key))
		s.rescheduleTask(ts, "worker-lost")
	}
	s.drainQueued()
}

// needed reports whether a task's result must exist: it is a graph output
// the client holds, or a pending dependent still consumes it.
func (s *Scheduler) needed(ts *schedTask) bool {
	return ts.isOutput || ts.pendingDependents > 0
}

// addDependent registers dep edges idempotently (recovery may re-wire an
// edge the original graph wiring already recorded).
func addDependent(dt *schedTask, key TaskKey) {
	for _, k := range dt.dependents {
		if k == key {
			return
		}
	}
	dt.dependents = append(dt.dependents, key)
}

// recomputeKey transitions a lost in-memory key back to waiting so it is
// recomputed from its dependencies (whoHas shrank to zero while still
// needed). Waiting dependents had already checked this key off their
// waiting sets when it first reached memory, so it must be re-added —
// otherwise they are assigned the moment their remaining deps finish and
// fetch a key that exists nowhere.
func (s *Scheduler) recomputeKey(ts *schedTask) {
	key := ts.spec.Key
	for _, dep := range ts.dependents {
		dt := s.tasks[dep]
		if dt.state == StateWaiting {
			dt.waitingOn[key] = struct{}{}
		}
	}
	s.transition(ts, StateReleased, "lost-data")
	s.reviveReleased(ts)
}

// reviveReleased re-acquires the dependencies of a released task and returns
// it to waiting, recursively reviving dependencies that were themselves
// freed by refcounting. Dependency refcounts are re-taken here and released
// again when the task re-finishes, keeping the accounting symmetric.
func (s *Scheduler) reviveReleased(ts *schedTask) {
	ts.waitingOn = make(map[TaskKey]struct{})
	for _, d := range ts.spec.Deps {
		dt := s.tasks[d]
		dt.pendingDependents++
		addDependent(dt, ts.spec.Key)
		if dt.state == StateMemory {
			if dt.viaProxy {
				// Mirror the re-taken refcount on the live blob.
				s.c.proxy.retain(d, 1)
			}
			continue
		}
		ts.waitingOn[d] = struct{}{}
		if dt.state == StateReleased {
			s.reviveReleased(dt)
		}
	}
	s.transition(ts, StateWaiting, "recompute")
	if len(ts.waitingOn) == 0 {
		s.maybeSchedule(ts)
	}
}

// rescheduleTask requeues a task whose assignment died under it. Its
// dependency refcounts are still held (the task never finished), so only the
// waiting set is rebuilt against current data locations.
func (s *Scheduler) rescheduleTask(ts *schedTask, stimulus string) {
	ts.waitingOn = make(map[TaskKey]struct{})
	for _, d := range ts.spec.Deps {
		dt := s.tasks[d]
		if dt.state == StateMemory {
			continue
		}
		ts.waitingOn[d] = struct{}{}
		addDependent(dt, ts.spec.Key)
		if dt.state == StateReleased {
			s.reviveReleased(dt)
		}
	}
	s.transition(ts, StateWaiting, stimulus)
	if len(ts.waitingOn) == 0 {
		s.maybeSchedule(ts)
	}
}

// handleMissingData processes a worker's report that a dependency fetch from
// srcRank failed because the source process died: the dead source is
// scrubbed from the affected keys' replica sets (recomputing any key that
// lost its last replica) and the surrendered tasks are rescheduled.
func (s *Scheduler) handleMissingData(rank, srcRank int, keys []TaskKey) {
	wh := s.workers[rank]
	src := s.workers[srcRank]
	for _, k := range keys {
		ts, ok := s.tasks[k]
		if !ok || ts.state != StateProcessing {
			continue
		}
		if ts.speculating && ts.speculativeOn == rank {
			// The duplicate attempt surrendered mid-fetch; the primary
			// continues alone. The dead source is still scrubbed from the
			// dependency replica sets.
			s.clearSpeculation(ts, "duplicate attempt lost a dependency source mid-fetch")
			s.scrubDeadSource(ts, src)
			continue
		}
		if ts.processingOn != rank {
			continue
		}
		delete(wh.processing, k)
		wh.occupancy -= s.estimate(ts.spec.Prefix())
		if wh.occupancy < 0 {
			wh.occupancy = 0
		}
		s.scrubDeadSource(ts, src)
		if ts.speculating {
			// The primary surrendered while a duplicate is in flight: promote
			// the duplicate instead of rescheduling alongside it.
			s.promoteSpeculative(ts, "primary attempt lost a dependency source mid-fetch")
			continue
		}
		s.emitRecovery(WarnTaskRescheduled, wh.w.addr, wh.w.node.Hostname,
			fmt.Sprintf("task %s lost a dependency source mid-fetch; rescheduling", k))
		s.rescheduleTask(ts, "missing-data")
	}
	s.drainQueued()
}

// scrubDeadSource removes a dead source worker from a surrendered task's
// dependency replica sets, recomputing any key that lost its last replica.
func (s *Scheduler) scrubDeadSource(ts *schedTask, src *workerHandle) {
	for _, d := range ts.spec.Deps {
		dt := s.tasks[d]
		if _, held := dt.whoHas[src.rank]; !held || src.w.alive {
			continue
		}
		delete(dt.whoHas, src.rank)
		if len(dt.whoHas) == 0 && dt.state == StateMemory && s.needed(dt) {
			s.emitRecovery(WarnKeyRecomputed, src.w.addr, src.w.node.Hostname,
				fmt.Sprintf("key %s lost its last replica; recomputing", dt.spec.Key))
			s.recomputeKey(dt)
		}
	}
}

// ConnectedWorkers reports how many workers completed their handshake.
func (s *Scheduler) ConnectedWorkers() int {
	n := 0
	for _, wh := range s.workers {
		if wh.connected {
			n++
		}
	}
	return n
}

func (s *Scheduler) estimate(prefix string) sim.Time {
	if a, ok := s.prefixDur[prefix]; ok && a.n > 0 {
		return a.mean()
	}
	return s.c.cfg.DefaultTaskDuration
}

// handleGraph registers a submitted graph and schedules its runnable tasks.
func (s *Scheduler) handleGraph(g *Graph) {
	now := s.c.kernel.Now()
	s.graphs[g.ID] = &graphState{remaining: g.Len()}

	leaves := make(map[TaskKey]bool)
	for _, k := range g.Leaves() {
		leaves[k] = true
	}
	order := g.Keys()
	newTasks := make([]*schedTask, 0, len(order))
	memoized := 0
	for _, k := range order {
		spec, _ := g.Task(k)
		if _, dup := s.tasks[k]; dup {
			panic(fmt.Sprintf("dask: task %q resubmitted in graph %d", k, g.ID))
		}
		ts := &schedTask{
			spec:          spec,
			graphID:       g.ID,
			state:         StateReleased,
			priority:      s.nextPriority,
			waitingOn:     make(map[TaskKey]struct{}),
			whoHas:        make(map[int]struct{}),
			isOutput:      leaves[k],
			speculativeOn: -1,
		}
		s.nextPriority++
		s.tasks[k] = ts

		for _, p := range s.c.schedPlugins {
			p.TaskAdded(TaskMeta{
				Key: k, Prefix: spec.Prefix(), Group: spec.Group(),
				GraphID: g.ID, Deps: spec.Deps, At: now,
			})
		}

		if m, ok := s.resumeMemo(k); ok {
			// Completed in a previous attempt: memoize instead of
			// re-executing. Resolvable outputs re-enter distributed memory
			// backed by their surviving proxy blob; lost ones stay released
			// and are recomputed only if a live consumer (or gather) demands
			// them. Dependency edges are not wired — the previous attempt
			// already consumed them.
			ts.size = m.Size
			ts.completedOnce = true
			memoized++
			if m.Resolvable {
				ts.viaProxy = true
				ts.resumePinned = true
				ts.whoHas[m.Owner] = struct{}{}
				s.transition(ts, StateMemory, "resume-memo")
				// Pin the surviving blob for the whole attempt (plus the usual
				// output reference): the resumed run cannot predict which lost
				// downstream results a later gather will recompute, and an
				// eagerly freed survivor would force re-executing a task whose
				// output was still resolvable. ReleaseResumeOrphans drops the
				// pins after the run.
				n := 1
				if ts.isOutput {
					n++
				}
				s.c.proxy.retain(k, n)
				s.resumePins = append(s.resumePins, k)
				delete(s.c.resumeSeeded, k)
			} else {
				s.transition(ts, StateReleased, "resume-lost")
			}
			continue
		}
		newTasks = append(newTasks, ts)
	}
	// Wire dependencies, treating deps absent from this graph as externals
	// that must already be in distributed memory.
	for _, ts := range newTasks {
		for _, d := range ts.spec.Deps {
			dt, ok := s.tasks[d]
			if !ok {
				panic(fmt.Sprintf("dask: task %q depends on unknown key %q", ts.spec.Key, d))
			}
			dt.pendingDependents++
			if dt.state != StateMemory {
				ts.waitingOn[d] = struct{}{}
				dt.dependents = append(dt.dependents, ts.spec.Key)
			} else if dt.viaProxy {
				// Cross-graph dependency on a live blob: mirror the new
				// dependent on its refcount.
				s.c.proxy.retain(d, 1)
			}
		}
	}
	for _, ts := range newTasks {
		s.transition(ts, StateWaiting, "update-graph")
		if len(ts.waitingOn) == 0 {
			s.maybeSchedule(ts)
		}
	}
	// Revive completed-but-lost dependencies that live consumers wired:
	// their outputs died with the crashed session, so they are the
	// deliberately recomputed tail. Runs after the update-graph transitions
	// so every still-released task reachable here has completed once.
	for _, ts := range newTasks {
		for _, d := range ts.spec.Deps {
			if dt := s.tasks[d]; dt.state == StateReleased && dt.completedOnce {
				s.reviveReleased(dt)
			}
		}
	}
	// Memoized tasks count as finished for graph completion; a fully
	// memoized graph completes (and notifies the client) right here.
	for i := 0; i < memoized; i++ {
		s.finishGraphTask(g.ID)
	}
}

func (s *Scheduler) transition(ts *schedTask, to TaskState, stimulus string) {
	from := ts.state
	ts.state = to
	s.c.emitSchedTransition(Transition{
		Key: ts.spec.Key, From: from, To: to,
		Stimulus: stimulus, Location: "scheduler", At: s.c.kernel.Now(),
	})
}

// decideWorker reproduces Dask's placement heuristic: minimize estimated
// start time = occupancy per thread + cost of fetching the dependencies the
// candidate does not hold; near-ties break randomly (a deliberate source of
// run-to-run placement variability, as in Dask's worker_objective).
func (s *Scheduler) decideWorker(ts *schedTask) *workerHandle {
	allowed := func(wh *workerHandle) bool {
		if !wh.connected {
			return false
		}
		if len(ts.spec.Restrictions) == 0 {
			return true
		}
		for _, r := range ts.spec.Restrictions {
			if r == wh.w.addr {
				return true
			}
		}
		return false
	}
	// Planning bandwidth mirrors distributed's default 100 MB/s estimate:
	// transfer avoidance dominates placement for large dependencies.
	const netBW = 100e6
	isRoot := len(ts.spec.Deps) == 0
	// Like Dask's decide_worker, tasks with dependencies choose among the
	// workers already holding some of that data; balance is restored by
	// work stealing rather than by eager spreading. Restrictions override
	// the candidate narrowing.
	holders := map[int]bool{}
	if !isRoot && len(ts.spec.Restrictions) == 0 {
		for _, d := range ts.spec.Deps {
			if dt := s.tasks[d]; dt != nil {
				for r := range dt.whoHas {
					holders[r] = true
				}
			}
		}
		// When every data holder is deeply backlogged (a fan-out burst just
		// landed, e.g. all chunk tasks of one image becoming ready at
		// once), the least-occupied worker becomes a candidate too:
		// consumers spill away from their data and fetch it, which is
		// where much of the cross-worker traffic in Table I comes from.
		spillDepth := 2 * s.saturationLimit()
		spill := len(holders) > 0
		for r := range holders {
			if len(s.workers[r].processing) < spillDepth {
				spill = false
				break
			}
		}
		if spill {
			leastRank, leastOcc := -1, sim.Time(0)
			for _, wh := range s.workers {
				if !wh.connected {
					continue
				}
				if leastRank < 0 || wh.occupancy < leastOcc {
					leastRank, leastOcc = wh.rank, wh.occupancy
				}
			}
			if leastRank >= 0 {
				holders[leastRank] = true
			}
		}
	}
	best := []*workerHandle(nil)
	bestScore := math.Inf(1)
	for _, wh := range s.workers {
		if !allowed(wh) {
			continue
		}
		if isRoot && len(wh.processing) >= s.saturationLimit() {
			continue // withhold root tasks from saturated workers
		}
		if len(holders) > 0 && !holders[wh.rank] {
			continue
		}
		fetch := int64(0)
		missing := 0
		for _, d := range ts.spec.Deps {
			dt := s.tasks[d]
			if dt == nil {
				continue
			}
			if _, has := dt.whoHas[wh.rank]; !has {
				fetch += dt.size
				missing++
			}
		}
		score := wh.occupancy.Seconds()/float64(s.c.cfg.ThreadsPerWorker) +
			float64(fetch)/netBW + 0.01*float64(missing)
		switch {
		case score < bestScore-1e-9:
			bestScore = score
			best = best[:0]
			best = append(best, wh)
		case score <= bestScore+1e-9:
			best = append(best, wh)
		}
	}
	if len(best) == 0 {
		return nil
	}
	return best[s.rng.Intn(len(best))]
}

func (s *Scheduler) maybeSchedule(ts *schedTask) {
	wh := s.decideWorker(ts)
	if wh == nil {
		if len(ts.spec.Deps) == 0 && s.ConnectedWorkers() > 0 {
			// All candidate workers are saturated: withhold the root task
			// scheduler-side until a slot frees (Dask's queued state).
			s.queued.push(ts)
			return
		}
		// No connected worker yet: retry shortly (tasks are submitted
		// after the client waited for workers, so this is rare).
		s.c.kernel.After(sim.Milliseconds(50), func() {
			if ts.state == StateWaiting {
				s.maybeSchedule(ts)
			}
		})
		return
	}
	s.assign(ts, wh, "waiting")
}

// drainQueued assigns withheld root tasks while any worker has slack.
func (s *Scheduler) drainQueued() {
	for s.queued.Len() > 0 {
		ts := s.queued.peek()
		if ts.state != StateWaiting {
			s.queued.pop() // released or already handled; drop
			continue
		}
		wh := s.decideWorker(ts)
		if wh == nil {
			return
		}
		s.queued.pop()
		s.assign(ts, wh, "queue-slot")
	}
}

func (s *Scheduler) assign(ts *schedTask, wh *workerHandle, stimulus string) {
	ts.processingOn = wh.rank
	ts.startedAt = s.c.kernel.Now()
	wh.processing[ts.spec.Key] = struct{}{}
	wh.occupancy += s.estimate(ts.spec.Prefix())
	s.transition(ts, StateProcessing, stimulus)
	s.sendAssignment(ts, wh)
}

// sendAssignment ships a task's compute-task message (spec, priority, and
// dependency locations/references) to a worker — shared by primary
// assignments and speculative duplicates.
func (s *Scheduler) sendAssignment(ts *schedTask, wh *workerHandle) {
	deps := make([]depInfo, 0, len(ts.spec.Deps))
	for _, d := range ts.spec.Deps {
		dt := s.tasks[d]
		holders := make([]int, 0, len(dt.whoHas))
		for r := range dt.whoHas {
			holders = append(holders, r)
		}
		deps = append(deps, depInfo{key: d, size: dt.size, holders: holders, viaProxy: dt.viaProxy})
		if dt.viaProxy {
			// The assignment carries a proxy reference instead of a payload
			// location set the worker must pull through eagerly.
			s.c.addControlBytes(s.c.cfg.ProxyRefBytes)
		}
	}
	a := assignment{spec: ts.spec, graphID: ts.graphID, priority: ts.priority, deps: deps}
	s.c.control(s.node, wh.w.node, func() { wh.w.handleAssign(a) })
}

// handleErred processes a worker's task-failure report: the task is
// retried up to its MaxRetries, then marked erred, which transitively erres
// every waiting dependent (Dask's upstream-failure propagation) and
// eventually completes the graph with an error.
func (s *Scheduler) handleErred(rank int, key TaskKey, msg string) {
	ts, ok := s.tasks[key]
	if !ok || ts.state != StateProcessing {
		return
	}
	if ts.speculating && ts.speculativeOn == rank {
		// The duplicate attempt erred; the primary continues alone. Hedging
		// is an optimization, so a duplicate failure never errs the task.
		s.clearSpeculation(ts, fmt.Sprintf("duplicate attempt erred: %s", msg))
		return
	}
	if ts.processingOn != rank {
		return
	}
	wh := s.workers[rank]
	delete(wh.processing, key)
	wh.occupancy -= s.estimate(ts.spec.Prefix())
	if wh.occupancy < 0 {
		wh.occupancy = 0
	}
	if ts.speculating {
		// The primary erred while a duplicate is in flight: promote the
		// duplicate to sole attempt instead of burning a retry.
		s.promoteSpeculative(ts, fmt.Sprintf("primary attempt erred: %s", msg))
		return
	}
	if ts.retries < ts.spec.MaxRetries {
		ts.retries++
		s.transition(ts, StateWaiting, "retry")
		s.maybeSchedule(ts)
		return
	}
	s.markErred(ts, msg)
	s.drainQueued()
}

// markErred transitions a task (and, transitively, its waiting dependents)
// to erred and accounts for graph completion.
func (s *Scheduler) markErred(ts *schedTask, msg string) {
	if ts.state == StateErred {
		return
	}
	s.transition(ts, StateErred, "task-erred")
	gs := s.graphs[ts.graphID]
	if gs.errMsg == "" {
		gs.errMsg = fmt.Sprintf("task %s erred: %s", ts.spec.Key, msg)
	}
	if !ts.completedOnce {
		ts.completedOnce = true
		s.finishGraphTask(ts.graphID)
	}
	for _, dep := range ts.dependents {
		dt := s.tasks[dep]
		if dt.state == StateWaiting {
			s.markErred(dt, fmt.Sprintf("upstream %s erred", ts.spec.Key))
		}
	}
}

// finishGraphTask decrements a graph's outstanding-task count and notifies
// the client when the graph drains (successfully or not).
func (s *Scheduler) finishGraphTask(graphID int) {
	gs := s.graphs[graphID]
	gs.remaining--
	if gs.remaining != 0 {
		return
	}
	now := s.c.kernel.Now()
	if !s.doneGraphs[graphID] {
		// A resumed run suppresses the plugin event for graphs whose done
		// event already reached the previous attempt's log — the merged
		// provenance keeps exactly one done record per graph. The client is
		// always notified (it is waiting on this attempt's submission).
		for _, p := range s.c.schedPlugins {
			p.GraphDone(graphID, now)
		}
	}
	errMsg := gs.errMsg
	s.c.control(s.node, s.c.client.node, func() { s.c.client.graphDone(graphID, errMsg) })
}

// handleFinished processes a worker's task-completion report. proxied marks
// a result published to the proxy store instead of shipped directly.
func (s *Scheduler) handleFinished(rank int, key TaskKey, size int64, dur sim.Time, proxied bool) {
	ts, ok := s.tasks[key]
	if !ok || ts.state != StateProcessing {
		return // stale report (e.g. task was stolen mid-flight)
	}
	if ts.processingOn != rank && !(ts.speculating && ts.speculativeOn == rank) {
		return // neither the primary nor the live duplicate attempt
	}
	if ts.speculating {
		if proxied {
			if ref, ok := s.c.proxy.lookup(key); ok && ref.Owner != rank {
				// Both attempts raced to publish and the store's
				// first-write-wins fence kept the other attempt's blob. Drop
				// this report — the blob owner's report is in flight and wins,
				// so the scheduler's winner and the store's owner never
				// diverge.
				return
			}
		}
		s.settleSpeculation(ts, rank)
	}
	wh := s.workers[rank]
	delete(wh.processing, key)
	wh.occupancy -= s.estimate(ts.spec.Prefix())
	if wh.occupancy < 0 {
		wh.occupancy = 0
	}
	pfx := ts.spec.Prefix()
	if _, ok := s.prefixDur[pfx]; !ok {
		s.prefixDur[pfx] = &durAvg{}
	}
	s.prefixDur[pfx].add(dur)
	s.observeSpecDuration(pfx, dur)

	ts.size = size
	ts.viaProxy = proxied
	ts.whoHas[rank] = struct{}{}
	wh.memory += size
	s.transition(ts, StateMemory, "task-finished")
	if proxied {
		// Mirror the scheduler's dependent refcount onto the blob, plus one
		// reference pinning graph outputs until the client lets go.
		n := ts.pendingDependents
		if ts.isOutput {
			n++
		}
		s.c.proxy.retain(key, n)
	}

	for _, dep := range ts.dependents {
		dt := s.tasks[dep]
		delete(dt.waitingOn, key)
		if len(dt.waitingOn) == 0 && dt.state == StateWaiting {
			s.maybeSchedule(dt)
		}
	}
	// Reference counting: release inputs no longer needed by any pending
	// dependent (and that are not graph outputs).
	for _, d := range ts.spec.Deps {
		dt := s.tasks[d]
		dt.pendingDependents--
		if dt.viaProxy {
			s.c.proxy.release(d)
		}
		if dt.pendingDependents <= 0 && !dt.isOutput && !dt.resumePinned && !dt.clientRef && dt.state == StateMemory {
			s.release(dt)
		}
	}

	s.drainQueued()
	if !ts.completedOnce {
		ts.completedOnce = true
		s.finishGraphTask(ts.graphID)
	}
}

func (s *Scheduler) release(ts *schedTask) {
	// Broadcast: consumers hold fetched replicas the scheduler never hears
	// about, so every connected worker gets the free message (Dask's
	// free-keys fan-out).
	key := ts.spec.Key
	for _, wh := range s.workers {
		if !wh.connected {
			continue
		}
		w := wh.w
		if _, holds := ts.whoHas[wh.rank]; holds {
			wh.memory -= ts.size
		}
		s.c.control(s.node, w.node, func() { w.handleFree(key) })
	}
	ts.whoHas = make(map[int]struct{})
	if ts.viaProxy {
		// The refcount drain above normally destroyed the blob already; this
		// covers paths that free a key without draining references.
		s.c.proxy.free(key)
	}
	s.transition(ts, StateReleased, "no-dependents")
}

// handleGather serves one client gather request. In the direct data plane
// the payload relays through the scheduler process — Dask's
// gather(direct=False) default — charging its full size to the control path
// twice (owner -> scheduler, scheduler -> client). With the proxy store the
// scheduler replies with the blob reference and the client pulls the payload
// peer-to-peer from the owner, so the control path carries only
// ProxyRefBytes. A key not (yet, or no longer) in memory polls until the
// recompute machinery lands it; an erred key delivers zero bytes.
func (s *Scheduler) handleGather(key TaskKey, deliver func(size int64)) {
	retry := func() {
		s.c.kernel.After(sim.Milliseconds(100), func() { s.handleGather(key, deliver) })
	}
	ts, ok := s.tasks[key]
	if !ok || ts.state == StateErred {
		s.c.control(s.node, s.c.client.node, func() { deliver(0) })
		return
	}
	if ts.state == StateReleased && ts.completedOnce {
		// A completed-then-lost key (memoized from a previous attempt, or
		// refcount-released) being gathered: recompute it on demand, then
		// fall into the retry loop until it lands back in memory.
		s.reviveReleased(ts)
	}
	if ts.state != StateMemory {
		retry()
		return
	}
	rank := -1
	for r := range ts.whoHas {
		if rank < 0 || r < rank {
			rank = r
		}
	}
	if rank < 0 {
		retry()
		return
	}
	owner := s.workers[rank]
	if !owner.connected || !owner.w.alive {
		// Holder died but eviction has not caught up; the recompute pass
		// will land the key somewhere alive.
		retry()
		return
	}
	size := ts.size
	if ts.viaProxy {
		if !ts.clientRef {
			// The client holds the gathered result from here on: one blob
			// reference it never drops, so later consumers draining their
			// refcounts cannot destroy a client-held blob.
			ts.clientRef = true
			s.c.proxy.retain(key, 1)
		}
		s.c.addControlBytes(s.c.cfg.ProxyRefBytes)
		s.c.control(s.node, s.c.client.node, func() {
			demand := s.c.kernel.Now()
			s.c.plat.Transfer(owner.w.node, s.c.client.node, size, func(sim.Time) {
				stop := s.c.kernel.Now()
				rec := Transfer{
					Key: key, From: owner.w.addr, To: "client", Bytes: size,
					Start: demand, Stop: stop, SameNode: owner.w.node == s.c.client.node,
					ViaProxy: true, ResolveLatency: stop - demand,
				}
				for _, p := range s.c.workerPlugins {
					p.TransferReceived(rec)
				}
				s.c.proxy.resolved(key, "client", size, stop-demand)
				deliver(size)
			})
		})
		return
	}
	s.c.addControlBytes(size)
	s.c.plat.Transfer(owner.w.node, s.node, size, func(sim.Time) {
		s.c.addControlBytes(size)
		s.c.plat.Transfer(s.node, s.c.client.node, size, func(sim.Time) {
			deliver(size)
		})
	})
}

// stealTick is the work-stealing loop: idle workers take queued (not yet
// executing) tasks from saturated ones. Several moves may be issued per
// tick (Dask rebalances in batches), with in-flight requests tracked so the
// same task is not stolen twice.
func (s *Scheduler) stealTick() {
	defer s.c.kernel.After(s.c.cfg.StealInterval, s.stealTick)
	threads := s.c.cfg.ThreadsPerWorker
	for moves := 0; moves < 2*threads; moves++ {
		var thief, victim *workerHandle
		for _, wh := range s.workers {
			if !wh.connected {
				continue
			}
			load := len(wh.processing) + wh.inbound
			if load < threads && (thief == nil || load < len(thief.processing)+thief.inbound) {
				thief = wh
			}
			if len(wh.processing)-wh.outbound > threads+1 &&
				(victim == nil || len(wh.processing)-wh.outbound > len(victim.processing)-victim.outbound) {
				victim = wh
			}
		}
		if thief == nil || victim == nil || thief == victim {
			return
		}
		// Pick the victim's queued task with the highest priority number
		// that we believe has not started (the victim confirms) and is not
		// already being stolen.
		var pick *schedTask
		for k := range victim.processing {
			ts := s.tasks[k]
			if len(ts.spec.Restrictions) > 0 || s.stealing[k] || ts.speculating {
				// Speculated tasks are pinned: moving either attempt would
				// race the first-completion-wins settlement.
				continue
			}
			if pick == nil || ts.priority > pick.priority {
				pick = ts // steal from the back of the queue, like Dask
			}
		}
		if pick == nil {
			return
		}
		key := pick.spec.Key
		s.stealing[key] = true
		victim.outbound++
		thief.inbound++
		vw, tw := victim, thief
		s.c.control(s.node, vw.w.node, func() {
			ok := vw.w.handleStealRequest(key)
			s.c.control(vw.w.node, s.node, func() { s.stealResponse(key, vw, tw, ok) })
		})
	}
}

func (s *Scheduler) stealResponse(key TaskKey, victim, thief *workerHandle, ok bool) {
	delete(s.stealing, key)
	// Eviction zeroes the in-flight counters; a response that straddled the
	// eviction must not push them negative.
	if victim.outbound--; victim.outbound < 0 {
		victim.outbound = 0
	}
	if thief.inbound--; thief.inbound < 0 {
		thief.inbound = 0
	}
	if !ok {
		return
	}
	ts := s.tasks[key]
	if ts == nil || ts.state != StateProcessing || ts.processingOn != victim.rank {
		return
	}
	delete(victim.processing, key)
	victim.occupancy -= s.estimate(ts.spec.Prefix())
	if victim.occupancy < 0 {
		victim.occupancy = 0
	}
	// The task visibly returns to waiting, so the captured transition chain
	// stays well-formed.
	s.transition(ts, StateWaiting, "stolen")
	if !thief.connected {
		// The thief died while the steal was in flight: re-plan instead of
		// assigning into the void.
		s.maybeSchedule(ts)
		return
	}
	s.stealCount++
	now := s.c.kernel.Now()
	for _, p := range s.c.schedPlugins {
		p.Stolen(StealEvent{Key: key, Victim: victim.w.addr, Thief: thief.w.addr, At: now})
	}
	s.assign(ts, thief, "stolen")
}

// taskHeap orders worker-ready tasks by priority (lower = earlier).
type taskHeap []*wTask

func (h taskHeap) Len() int           { return len(h) }
func (h taskHeap) Less(i, j int) bool { return h[i].priority < h[j].priority }
func (h taskHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)        { *h = append(*h, x.(*wTask)) }
func (h *taskHeap) Pop() any          { old := *h; n := len(old); t := old[n-1]; *h = old[:n-1]; return t }
func (h *taskHeap) pushTask(t *wTask) { heap.Push(h, t) }
func (h *taskHeap) popTask() *wTask   { return heap.Pop(h).(*wTask) }
func (h *taskHeap) remove(t *wTask) bool {
	for i, x := range *h {
		if x == t {
			heap.Remove(h, i)
			return true
		}
	}
	return false
}

// rootHeap is a priority queue of withheld root tasks.
type rootHeap []*schedTask

func (h rootHeap) Len() int           { return len(h) }
func (h rootHeap) Less(i, j int) bool { return h[i].priority < h[j].priority }
func (h rootHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *rootHeap) Push(x any)        { *h = append(*h, x.(*schedTask)) }
func (h *rootHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}
func (h *rootHeap) push(t *schedTask) { heap.Push(h, t) }
func (h *rootHeap) pop() *schedTask   { return heap.Pop(h).(*schedTask) }
func (h rootHeap) peek() *schedTask   { return h[0] }
