package ssg

import (
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func cfg() Config {
	return Config{SuspectAfter: 2 * time.Second, DeadAfter: 5 * time.Second}
}

func TestJoinLeaveMembership(t *testing.T) {
	g := NewGroup("workers", cfg())
	a := g.Join("node0:1234", t0)
	b := g.Join("node1:1234", t0)
	if a == b {
		t.Fatal("duplicate member IDs")
	}
	if g.Size() != 2 {
		t.Fatalf("Size = %d", g.Size())
	}
	if !g.Leave(a) || g.Leave(a) {
		t.Fatal("Leave semantics wrong")
	}
	ms := g.Members()
	if len(ms) != 1 || ms[0].ID != b {
		t.Fatalf("Members = %+v", ms)
	}
}

func TestHeartbeatKeepsAlive(t *testing.T) {
	g := NewGroup("g", cfg())
	id := g.Join("n0", t0)
	g.Heartbeat(id, t0.Add(1*time.Second))
	g.Sweep(t0.Add(2500 * time.Millisecond)) // 1.5s silent < SuspectAfter
	m, _ := g.Lookup(id)
	if m.State != Alive {
		t.Fatalf("state = %v, want alive", m.State)
	}
}

func TestSuspectThenDead(t *testing.T) {
	g := NewGroup("g", cfg())
	id := g.Join("n0", t0)
	var events []Event
	g.Observe(func(e Event) { events = append(events, e) })

	if n := g.Sweep(t0.Add(3 * time.Second)); n != 1 {
		t.Fatalf("first sweep changes = %d", n)
	}
	if m, _ := g.Lookup(id); m.State != Suspect {
		t.Fatalf("state = %v, want suspect", m.State)
	}
	if n := g.Sweep(t0.Add(6 * time.Second)); n != 1 {
		t.Fatalf("second sweep changes = %d", n)
	}
	if m, _ := g.Lookup(id); m.State != Dead {
		t.Fatalf("state = %v, want dead", m.State)
	}
	if len(events) != 2 || events[0].Kind != EventSuspect || events[1].Kind != EventFail {
		t.Fatalf("events = %+v", events)
	}
}

func TestAliveStraightToDead(t *testing.T) {
	g := NewGroup("g", cfg())
	id := g.Join("n0", t0)
	g.Sweep(t0.Add(10 * time.Second))
	if m, _ := g.Lookup(id); m.State != Dead {
		t.Fatalf("long-silent member state = %v, want dead", m.State)
	}
}

func TestSuspectRevivesOnHeartbeat(t *testing.T) {
	g := NewGroup("g", cfg())
	id := g.Join("n0", t0)
	var rejoins int
	g.Observe(func(e Event) {
		if e.Kind == EventRejoin {
			rejoins++
		}
	})
	g.Sweep(t0.Add(3 * time.Second))
	if !g.Heartbeat(id, t0.Add(3500*time.Millisecond)) {
		t.Fatal("heartbeat rejected for suspect member")
	}
	if m, _ := g.Lookup(id); m.State != Alive {
		t.Fatalf("state = %v after revival", m.State)
	}
	if rejoins != 1 {
		t.Fatalf("rejoin events = %d", rejoins)
	}
}

func TestDeadMemberHeartbeatIgnored(t *testing.T) {
	g := NewGroup("g", cfg())
	id := g.Join("n0", t0)
	g.Sweep(t0.Add(10 * time.Second))
	if g.Heartbeat(id, t0.Add(11*time.Second)) {
		t.Fatal("dead member heartbeat accepted")
	}
}

func TestObserverSeesJoinLeave(t *testing.T) {
	g := NewGroup("g", cfg())
	var kinds []EventKind
	g.Observe(func(e Event) { kinds = append(kinds, e.Kind) })
	id := g.Join("n0", t0)
	g.Leave(id)
	if len(kinds) != 2 || kinds[0] != EventJoin || kinds[1] != EventLeave {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestAliveMembersFilters(t *testing.T) {
	g := NewGroup("g", cfg())
	a := g.Join("n0", t0)
	g.Join("n1", t0.Add(4*time.Second))
	g.Sweep(t0.Add(4 * time.Second)) // a silent 4s -> suspect
	alive := g.AliveMembers()
	if len(alive) != 1 || alive[0].Address != "n1" {
		t.Fatalf("alive = %+v", alive)
	}
	if m, _ := g.Lookup(a); m.State != Suspect {
		t.Fatalf("a state = %v", m.State)
	}
}

func TestConfigValidation(t *testing.T) {
	g := NewGroup("g", Config{})
	id := g.Join("n0", t0)
	// Defaults should apply: not dead instantly.
	g.Sweep(t0.Add(time.Millisecond))
	if m, _ := g.Lookup(id); m.State != Alive {
		t.Fatalf("instant sweep changed state to %v", m.State)
	}
}

func TestStateString(t *testing.T) {
	if Alive.String() != "alive" || Suspect.String() != "suspect" || Dead.String() != "dead" {
		t.Fatal("State.String wrong")
	}
}

func TestConcurrentHeartbeats(t *testing.T) {
	g := NewGroup("g", cfg())
	ids := make([]MemberID, 16)
	for i := range ids {
		ids[i] = g.Join("n", t0)
	}
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id MemberID) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				g.Heartbeat(id, t0.Add(time.Duration(i)*time.Millisecond))
			}
		}(id)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			g.Sweep(t0.Add(time.Duration(i) * time.Millisecond))
		}
		close(done)
	}()
	wg.Wait()
	<-done
	if len(g.AliveMembers()) != 16 {
		t.Fatalf("alive = %d, want 16", len(g.AliveMembers()))
	}
}

func TestRunSweeperStops(t *testing.T) {
	g := NewGroup("g", cfg())
	stop := make(chan struct{})
	doneCh := make(chan struct{})
	go func() {
		g.RunSweeper(time.Millisecond, stop)
		close(doneCh)
	}()
	time.Sleep(5 * time.Millisecond)
	close(stop)
	select {
	case <-doneCh:
	case <-time.After(time.Second):
		t.Fatal("RunSweeper did not stop")
	}
}
